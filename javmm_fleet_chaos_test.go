package javmm_test

import (
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"

	"javmm"
	"javmm/internal/chaos"
)

var (
	fleetChaosPlans = flag.Int("fleet-chaos-plans", 40,
		"plans per phase of TestFleetChaosSearch (CI runs 100)")
	fleetChaosRepro = flag.String("fleet-chaos-repro", "",
		"write TestFleetChaosSearch's shrunken repro (one javmm-migrate CLI line) to this file")
)

// TestFleetChaosSearch is the fleet twin of TestChaosSearch: the acceptance
// gate for the orchestrator chaos plane and the test CI's fleet-orchestrator
// job runs with -fleet-chaos-plans=100. Phase one plants the known invariant
// bug — the digest audit disabled — and requires the search to find a fault
// plan whose in-flight corruption silently reaches a completed move's image,
// shrink it deterministically to a minimal repro, and report it as the exact
// javmm-migrate -cluster/-plan/-fault argument list. Phase two runs the same
// plan population against the real configuration and requires every fleet
// invariant (verified images, clean resumable aborts, admission caps) to
// hold.
func TestFleetChaosSearch(t *testing.T) {
	// Base seed 1: the planted-bug phase finds a corrupting plan within the
	// default -fleet-chaos-plans window.
	const baseSeed = 1

	planted := chaos.SearchFleet(chaos.FleetOptions{
		Seed: baseSeed, Plans: *fleetChaosPlans, DisableIntegrityAudit: true, Log: t.Logf,
	})
	v := planted.Violation
	if v == nil {
		t.Fatalf("audit disabled, yet no fleet violation in %d plans", planted.PlansRun)
	}
	if v.Invariant != "image-diverged" {
		t.Fatalf("violation %q (%s), want image-diverged", v.Invariant, v.Detail)
	}
	if len(v.Shrunk) == 0 || len(v.Shrunk) > len(v.Plan) {
		t.Fatalf("shrunk plan has %d rules, original %d", len(v.Shrunk), len(v.Plan))
	}
	corrupt := false
	for _, r := range v.Shrunk {
		if r.Site == javmm.FaultCorruptPageStream {
			corrupt = true
		}
	}
	if !corrupt {
		t.Fatalf("shrunk plan %v lost the corruption rule", v.Shrunk)
	}

	// Deterministic from the fixed seed: a second search finds the same
	// violation, shrunk the same way.
	again := chaos.SearchFleet(chaos.FleetOptions{
		Seed: baseSeed, Plans: *fleetChaosPlans, DisableIntegrityAudit: true,
	})
	if again.Violation == nil || !reflect.DeepEqual(again.Violation, v) {
		t.Fatalf("fleet chaos search is not deterministic:\n first %+v\nsecond %+v", v, again.Violation)
	}

	repro := shellJoin(v.Repro())
	t.Logf("planted-bug repro: javmm-migrate %s", repro)
	if *fleetChaosRepro != "" {
		if err := os.WriteFile(*fleetChaosRepro, []byte("javmm-migrate "+repro+"\n"), 0o644); err != nil {
			t.Fatalf("writing repro artifact: %v", err)
		}
	}

	// Phase two: with the audit on, the same window must be violation-free.
	clean := chaos.SearchFleet(chaos.FleetOptions{Seed: baseSeed, Plans: *fleetChaosPlans, Log: t.Logf})
	if cv := clean.Violation; cv != nil {
		t.Fatalf("fleet invariant %q violated by seed %d (%s, move %q): %s\nplan: %v\nrepro: javmm-migrate %s",
			cv.Invariant, cv.Seed, cv.Mode, cv.VM, cv.Detail, cv.Plan, shellJoin(cv.Repro()))
	}
	if clean.PlansRun != *fleetChaosPlans {
		t.Fatalf("clean phase ran %d plans, want %d", clean.PlansRun, *fleetChaosPlans)
	}
}

// shellJoin renders an argument list as one shell-pasteable line: the
// cluster/plan values carry spaces and semicolons, so they get quoted.
func shellJoin(args []string) string {
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteByte(' ')
		}
		if strings.ContainsAny(a, " ;") {
			b.WriteString("'" + a + "'")
		} else {
			b.WriteString(a)
		}
	}
	return b.String()
}

var (
	fleetHealPlans = flag.Int("fleet-heal-plans", 40,
		"plans per phase of TestFleetHealChaosSearch (CI runs 100)")
	fleetHealRepro = flag.String("fleet-heal-repro", "",
		"write TestFleetHealChaosSearch's shrunken repro (one javmm-migrate CLI line) to this file")
)

// TestFleetHealChaosSearch is the healing twin of TestFleetChaosSearch and
// the acceptance gate for the self-healing layer: fault plans now draw the
// host-scoped sites (host.crash, host.flaky) aimed at the trial
// destinations, every trial runs with retry/relocation/breaker healing on,
// and the healing invariants are checked — terminal outcomes only (verified
// image on an admissible host, or a cleanly resumable source), admission
// caps held across every retry and relocation, byte-identical same-seed
// replay. Phase one plants the digest-audit bug to prove the searcher still
// has teeth with healing enabled and requires the shrunken repro to carry
// the healing flags; phase two requires the real configuration to survive
// the same window violation-free.
func TestFleetHealChaosSearch(t *testing.T) {
	// Base seed 2: the planted-bug phase finds a corrupting plan within the
	// default -fleet-heal-plans window (the healing draw universe shifts
	// every sequence, so the seed differs from TestFleetChaosSearch's).
	const baseSeed = 2

	planted := chaos.SearchFleet(chaos.FleetOptions{
		Seed: baseSeed, Plans: *fleetHealPlans, Heal: true,
		DisableIntegrityAudit: true, Log: t.Logf,
	})
	v := planted.Violation
	if v == nil {
		t.Fatalf("audit disabled, yet no violation in %d healing plans", planted.PlansRun)
	}
	if v.Invariant != "image-diverged" {
		t.Fatalf("violation %q (%s), want image-diverged", v.Invariant, v.Detail)
	}
	if !v.Heal {
		t.Fatal("violation does not record the healing configuration")
	}
	if len(v.Shrunk) == 0 || len(v.Shrunk) > len(v.Plan) {
		t.Fatalf("shrunk plan has %d rules, original %d", len(v.Shrunk), len(v.Plan))
	}
	repro := v.Repro()
	line := shellJoin(repro)
	t.Logf("planted-bug healing repro: javmm-migrate %s", line)
	// The repro must pin the healing policy: replaying it without -retry
	// would run a different orchestrator.
	for _, flagName := range []string{"-retry", "-max-attempts", "-move-deadline", "-plan-deadline", "-breaker"} {
		found := false
		for _, a := range repro {
			if a == flagName {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("repro %v lacks %s", repro, flagName)
		}
	}
	if *fleetHealRepro != "" {
		if err := os.WriteFile(*fleetHealRepro, []byte("javmm-migrate "+line+"\n"), 0o644); err != nil {
			t.Fatalf("writing repro artifact: %v", err)
		}
	}

	// Deterministic from the fixed seed.
	again := chaos.SearchFleet(chaos.FleetOptions{
		Seed: baseSeed, Plans: *fleetHealPlans, Heal: true, DisableIntegrityAudit: true,
	})
	if again.Violation == nil || !reflect.DeepEqual(again.Violation, v) {
		t.Fatalf("healing chaos search is not deterministic:\n first %+v\nsecond %+v", v, again.Violation)
	}

	// Phase two: real configuration, same window, violation-free.
	clean := chaos.SearchFleet(chaos.FleetOptions{Seed: baseSeed, Plans: *fleetHealPlans, Heal: true, Log: t.Logf})
	if cv := clean.Violation; cv != nil {
		t.Fatalf("healing invariant %q violated by seed %d (%s, move %q): %s\nplan: %v\nrepro: javmm-migrate %s",
			cv.Invariant, cv.Seed, cv.Mode, cv.VM, cv.Detail, cv.Plan, shellJoin(cv.Repro()))
	}
	if clean.PlansRun != *fleetHealPlans {
		t.Fatalf("clean phase ran %d plans, want %d", clean.PlansRun, *fleetHealPlans)
	}
}
