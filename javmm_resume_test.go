package javmm_test

import (
	"errors"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"javmm"
	"javmm/internal/chaos"
	"javmm/internal/obs/ledger"
)

var (
	chaosPlans = flag.Int("chaos-plans", 12,
		"plans per phase of TestChaosSearch (CI runs 200)")
	chaosRepro = flag.String("chaos-repro", "",
		"write TestChaosSearch's shrunken repro (one javmm-migrate CLI line) to this file")
)

// resumeCase is one row of the abort-at-every-site resume matrix: a fault
// plan that (alone or helped by a cancel deadline) aborts a run mid-flight
// at one injection site, and what the resumed run must look like.
type resumeCase struct {
	name string
	spec string
	mode javmm.Mode
	// cancel forces the abort for sites whose fault is transient (bandwidth
	// collapse, netlink loss/delay, a swallowed handshake): the site fires,
	// then CancelAfter aborts the run mid-stream.
	cancel time.Duration
	// fullCopy marks tokens the resume must refuse wholesale: a crashed
	// destination's image is discarded and nothing survives into the token.
	fullCopy bool
	// refetchDominates marks cases where the token is kept but the digest
	// cross-check voids most of it (an always-on corrupt stream): the
	// resume must refetch more pages than it trusts.
	refetchDominates bool
}

func resumeMatrix() []resumeCase {
	return []resumeCase{
		{name: "link-partition", spec: "link.partition@2s,for=120s", mode: javmm.ModeJAVMM},
		{name: "link-bandwidth", spec: "link.bandwidth@500ms,for=60s,factor=0.05",
			mode: javmm.ModeJAVMM, cancel: 2 * time.Second},
		{name: "netlink-loss", spec: "netlink.loss#1,count=64",
			mode: javmm.ModeJAVMM, cancel: 2 * time.Second},
		{name: "netlink-delay", spec: "netlink.delay#1,delay=10ms,count=64",
			mode: javmm.ModeJAVMM, cancel: 2 * time.Second},
		// The swallowed handshake fires at suspension time (~7.4s into this
		// rig's run) and degrades the run to vanilla semantics; the cancel
		// then aborts the degraded run mid-iteration.
		{name: "lkm-handshake", spec: "lkm.handshake",
			mode: javmm.ModeJAVMM, cancel: 8 * time.Second},
		{name: "dest-receive", spec: "dest.receive#100,count=1000000", mode: javmm.ModeJAVMM},
		{name: "dest-crash", spec: "dest.crash@3s", mode: javmm.ModeJAVMM, fullCopy: true},
		{name: "postcopy-fetch", spec: "postcopy.fetch#1,count=1000000", mode: javmm.ModeHybrid},
		// Every page of the aborted run goes out corrupted, so the resume's
		// digest cross-check voids nearly the whole token. (Not quite all of
		// it: in the version-store model a corrupted payload can coincide
		// byte-for-byte with the content a later guest write produced, and a
		// destination page that provably equals the current source content
		// is sound to trust.)
		{name: "corrupt-stream", spec: "corrupt-page-stream,count=1000000",
			mode: javmm.ModeJAVMM, cancel: 2 * time.Second, refetchDominates: true},
	}
}

// cleanBytesCache memoizes the fault-free baseline per mode so the matrix
// boots each baseline VM once.
var cleanBytesCache = map[javmm.Mode]uint64{}

func cleanRunBytes(t *testing.T, mode javmm.Mode) uint64 {
	t.Helper()
	if b, ok := cleanBytesCache[mode]; ok {
		return b
	}
	vm := bootSmall(t, mode == javmm.ModeJAVMM, 7)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	cleanBytesCache[mode] = res.TotalBytes()
	return cleanBytesCache[mode]
}

// TestAbortResumeEverySite aborts one migration mid-run at every injection
// site, resumes each from its token with the faults detached, and asserts
// the pair converges: the resumed run verifies, both ledgers reconcile with
// their reports, resume-refetch traffic is tagged as such, and the combined
// wire volume stays under twice a clean run of the same mode.
func TestAbortResumeEverySite(t *testing.T) {
	for _, tc := range resumeMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			vm := bootSmall(t, tc.mode == javmm.ModeJAVMM, 7)
			plan, err := javmm.ParseFaultPlan([]string{tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			inj, err := javmm.NewFaultInjector(vm.Clock, plan)
			if err != nil {
				t.Fatal(err)
			}
			ledA := javmm.NewLedger()
			engine := javmm.EngineConfig{}
			engine.Recovery.EnableResume = true
			engine.CancelAfter = tc.cancel
			resA, err := javmm.Migrate(vm, javmm.MigrateOptions{
				Mode:   tc.mode,
				Faults: inj,
				Ledger: ledA,
				Engine: engine,
			})
			if err == nil {
				t.Fatal("faulted run completed; the matrix case must abort mid-run")
			}
			if !errors.Is(err, javmm.ErrRetriesExhausted) && !errors.Is(err, javmm.ErrDestinationLost) &&
				!errors.Is(err, javmm.ErrCancelled) {
				t.Fatalf("abort error %v is not a clean abort", err)
			}
			if len(inj.Events()) == 0 {
				t.Fatalf("site %s never fired before the abort", tc.spec)
			}
			if resA == nil || resA.ResumeToken() == nil {
				t.Fatal("abort with EnableResume minted no resume token")
			}
			// The aborted run's partial ledger still reconciles with its
			// partial report.
			sumA := ledA.Summary()
			if sumA.TotalSends != resA.TotalPagesSent || sumA.TotalBytes != resA.TotalBytes() {
				t.Fatalf("aborted ledger (%d sends, %d bytes) does not reconcile with report (%d, %d)",
					sumA.TotalSends, sumA.TotalBytes, resA.TotalPagesSent, resA.TotalBytes())
			}

			// The guest keeps running (and re-dirtying memory) between the
			// abort and the resume.
			vm.Driver.Run(2 * time.Second)
			if vm.Driver.Err != nil {
				t.Fatal(vm.Driver.Err)
			}

			// Resume with fresh options: the injector stays detached, so the
			// continuation runs fault-free.
			ledB := javmm.NewLedger()
			resB, err := javmm.Resume(vm, resA, javmm.MigrateOptions{Ledger: ledB})
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if resB.VerifyErr != nil {
				t.Fatalf("resumed destination does not verify: %v", resB.VerifyErr)
			}
			if resB.Mode != tc.mode {
				t.Fatalf("resume ran mode %v, token said %v", resB.Mode, tc.mode)
			}
			rs := resB.Report.Resume
			if rs == nil {
				t.Fatal("resumed run carries no resume section")
			}
			if rs.FullFirstCopy != tc.fullCopy {
				t.Fatalf("FullFirstCopy = %v, want %v (trusted %d, refetch %d)",
					rs.FullFirstCopy, tc.fullCopy, rs.TrustedPages, rs.RefetchPages)
			}
			sumB := ledB.Summary()
			if !tc.fullCopy {
				if rs.TrustedPages == 0 {
					t.Fatal("kept destination but the token vouched for no pages")
				}
				if rs.RefetchPages > 0 && sumB.SendBytes(ledger.ReasonResumeRefetch) == 0 {
					t.Fatalf("%d refetch pages but no resume-refetch traffic in the ledger", rs.RefetchPages)
				}
			}
			if tc.refetchDominates && rs.RefetchPages <= rs.TrustedPages {
				t.Fatalf("corrupted stream, yet trusted %d >= refetched %d",
					rs.TrustedPages, rs.RefetchPages)
			}
			// The resumed run's accounting reconciles in full.
			if _, err := javmm.Attribute(resB, ledB); err != nil {
				t.Fatalf("resumed attribution does not reconcile: %v", err)
			}
			// Combined, the pair reconciles too, and costs less than running
			// the migration twice from scratch.
			clean := cleanRunBytes(t, tc.mode)
			combined := resA.TotalBytes() + resB.TotalBytes()
			if sumA.TotalBytes+sumB.TotalBytes != combined {
				t.Fatalf("combined ledgers %d bytes != combined reports %d bytes",
					sumA.TotalBytes+sumB.TotalBytes, combined)
			}
			if combined >= 2*clean {
				t.Fatalf("abort+resume moved %d bytes, not under 2x the clean run's %d", combined, clean)
			}
		})
	}
}

// TestChaosSearch is the acceptance gate for the chaos plane, and the test
// CI's chaos-search job runs with -chaos-plans=200. Phase one plants the
// known invariant bug — the digest audit disabled — and requires the search
// to find a silently-corrupting plan and shrink it deterministically to a
// minimal repro; phase two runs the same plan population against the real
// configuration and requires every invariant to hold.
func TestChaosSearch(t *testing.T) {
	// Base seed chosen so the planted-bug phase finds a corrupting plan
	// within the default -chaos-plans window.
	const baseSeed = 33

	planted := chaos.Search(chaos.Options{
		Seed: baseSeed, Plans: *chaosPlans, DisableIntegrityAudit: true, Log: t.Logf,
	})
	v := planted.Violation
	if v == nil {
		t.Fatalf("audit disabled, yet no violation in %d plans", planted.PlansRun)
	}
	if v.Invariant != "silent-corruption" {
		t.Fatalf("violation %q (%s), want silent-corruption", v.Invariant, v.Detail)
	}
	if len(v.Shrunk) == 0 || len(v.Shrunk) > len(v.Plan) {
		t.Fatalf("shrunk plan has %d rules, original %d", len(v.Shrunk), len(v.Plan))
	}
	corrupt := false
	for _, r := range v.Shrunk {
		if r.Site == javmm.FaultCorruptPageStream {
			corrupt = true
		}
	}
	if !corrupt {
		t.Fatalf("shrunk plan %v lost the corruption rule", v.Shrunk)
	}

	// Deterministic from the fixed seed: a second search finds the same
	// violation, shrunk the same way.
	again := chaos.Search(chaos.Options{
		Seed: baseSeed, Plans: *chaosPlans, DisableIntegrityAudit: true,
	})
	if again.Violation == nil || !reflect.DeepEqual(again.Violation, v) {
		t.Fatalf("chaos search is not deterministic:\n first %+v\nsecond %+v", v, again.Violation)
	}

	repro := strings.Join(v.Repro(), " ")
	t.Logf("planted-bug repro: javmm-migrate %s", repro)
	if *chaosRepro != "" {
		if err := os.WriteFile(*chaosRepro, []byte(repro+"\n"), 0o644); err != nil {
			t.Fatalf("writing repro artifact: %v", err)
		}
	}

	// Phase two: with the audit on, the same window must be violation-free.
	clean := chaos.Search(chaos.Options{Seed: baseSeed, Plans: *chaosPlans, Log: t.Logf})
	if cv := clean.Violation; cv != nil {
		t.Fatalf("invariant %q violated by seed %d (%s): %s\nplan: %v\nrepro: javmm-migrate %s",
			cv.Invariant, cv.Seed, cv.Mode, cv.Detail, cv.Plan, strings.Join(cv.Repro(), " "))
	}
	if clean.PlansRun != *chaosPlans {
		t.Fatalf("clean phase ran %d plans, want %d", clean.PlansRun, *chaosPlans)
	}
}
