// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end-to-end (boot, warm up,
// migrate, reduce) and reports the paper-relevant quantities as custom
// metrics alongside the usual time/allocs. EXPERIMENTS.md records the
// paper-vs-measured comparison; `go run ./cmd/javmm-experiments` prints the
// full tables.
package javmm_test

import (
	"testing"
	"time"

	"javmm/internal/experiments"
	"javmm/internal/migration"
	"javmm/internal/obs/perf"
	"javmm/internal/workload"
)

// benchOpts runs experiments at the paper's full scale with a single seed.
func benchOpts() experiments.Options {
	return experiments.Options{
		Warmup:     300 * time.Second,
		Cooldown:   60 * time.Second,
		Seeds:      []int64{1},
		ProfileDur: 600 * time.Second,
	}
}

// BenchmarkFigure1_XenDerbyIterations regenerates Figure 1: per-iteration
// behaviour of vanilla Xen migrating the 2 GiB derby VM.
func BenchmarkFigure1_XenDerbyIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tab.Rows)), "iterations")
	}
}

// BenchmarkFigure5_HeapProfile regenerates Figure 5: heap usage and GC
// behaviour of all nine workloads over a 10-minute profiling run.
func BenchmarkFigure5_HeapProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tab.Rows)), "workloads")
	}
}

// BenchmarkFigure8_CompilerProgress regenerates Figures 8 and 9: migration
// progress and per-iteration memory disposition for the compiler VM under
// Xen and JAVMM.
func BenchmarkFigure8_CompilerProgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig8, fig9, err := experiments.Figure8and9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(fig8.Rows)), "iterations")
		_ = fig9
	}
}

// compareBench runs a Xen-vs-JAVMM comparison and reports the reductions.
func compareBench(b *testing.B, names []string, overrides experiments.MaxYoungOverrides) []experiments.Comparison {
	b.Helper()
	var profs []workload.Profile
	for _, n := range names {
		p, err := workload.Lookup(n)
		if err != nil {
			b.Fatal(err)
		}
		profs = append(profs, p)
	}
	cs, err := experiments.CompareWorkloads(profs, benchOpts(), overrides)
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkFigure10_MigrationPerformance regenerates Figure 10 (and Table 2
// and the §5.3 CPU/memory extras): derby, crypto and scimark under both
// migrators.
func BenchmarkFigure10_MigrationPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareBench(b, []string{"derby", "crypto", "scimark"}, nil)
		timeT, trafficT, downT, attribT, cpuT := experiments.Figure10(cs)
		_ = experiments.Table2(cs)
		for _, tab := range []*experiments.Table{timeT, trafficT, downT, cpuT} {
			if len(tab.Rows) != 3 {
				b.Fatalf("table %q rows = %d", tab.Title, len(tab.Rows))
			}
		}
		if len(attribT.Rows) != 6 {
			b.Fatalf("attribution table rows = %d, want 6", len(attribT.Rows))
		}
		// Headline metric: derby migration-time reduction (paper: 82 %).
		derby := cs[0]
		x := derby.Xen[0].Report.TotalTime.Seconds()
		j := derby.Javmm[0].Report.TotalTime.Seconds()
		b.ReportMetric((x-j)/x*100, "%time-reduction-derby")
	}
}

// BenchmarkFigure11_Throughput regenerates Figure 11: throughput timelines
// around migration for derby, crypto and scimark.
func BenchmarkFigure11_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := compareBench(b, []string{"derby", "crypto", "scimark"}, nil)
		tabs := experiments.Figure11(cs, 80)
		if len(tabs) != 3 {
			b.Fatalf("timelines = %d", len(tabs))
		}
	}
}

// BenchmarkFigure12_YoungGenSweep regenerates Figure 12 and Table 3: the
// category-1 young-generation size sweep (xml 1.5 GiB, derby 1 GiB,
// compiler 0.5 GiB).
func BenchmarkFigure12_YoungGenSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		overrides := experiments.Table3Overrides()
		cs := compareBench(b, []string{"xml", "derby", "compiler"}, overrides)
		timeT, trafficT, downT := experiments.Figure12(cs)
		_ = experiments.Table3(cs, overrides)
		for _, tab := range []*experiments.Table{timeT, trafficT, downT} {
			if len(tab.Rows) != 3 {
				b.Fatalf("table %q rows = %d", tab.Title, len(tab.Rows))
			}
		}
		// Headline: xml traffic reduction (paper: 93 %).
		xml := cs[0]
		x := float64(xml.Xen[0].Report.TotalBytes())
		j := float64(xml.Javmm[0].Report.TotalBytes())
		b.ReportMetric((x-j)/x*100, "%traffic-reduction-xml")
	}
}

// BenchmarkAblation_Compression regenerates X2: the §6 compress-unskipped
// extension on derby.
func BenchmarkAblation_Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCompression(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CacheAware regenerates X3: the memcached-like cache
// application under vanilla and assisted migration.
func BenchmarkAblation_CacheAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCache(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Policy regenerates X4: the §6 intelligent-mode policy on
// derby (favourable) and scimark (unfavourable).
func BenchmarkAblation_Policy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPolicy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_FinalUpdate regenerates X5: the two §3.3.4 final-update
// designs.
func BenchmarkAblation_FinalUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFinalUpdate(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ALB regenerates X6: the Application-Level Ballooning
// baseline (§2) against JAVMM on derby.
func BenchmarkAblation_ALB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationALB(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Scale regenerates X7: the §6 scaling claim (8 GiB VM on
// 10 GbE keeps JAVMM's relative advantage).
func BenchmarkAblation_Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScale(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PostCopy regenerates X8: the post-copy baseline (§2)
// against pre-copy and JAVMM.
func BenchmarkAblation_PostCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPostCopy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Replication regenerates X9: RemusDB-style checkpoint
// replication with memory deprotection through the framework.
func BenchmarkAblation_Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReplication(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Congestion regenerates X10: migration under mid-flight
// link congestion.
func BenchmarkAblation_Congestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCongestion(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_G1 regenerates X11: JAVMM with the region-based
// collector (§6 future work).
func BenchmarkAblation_G1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationG1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_FreePages regenerates X12: OS-assisted free-page
// skipping under heavy and light load.
func BenchmarkAblation_FreePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFreePages(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Delta regenerates X13: the XBZRLE-style delta
// compression baseline (§2).
func BenchmarkAblation_Delta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDelta(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_XenDerby measures one full vanilla migration (the paper's
// baseline path) as a single unit of work.
func BenchmarkEngine_XenDerby(b *testing.B) {
	prof, err := workload.Lookup("derby")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMigration(experiments.RunOpts{
			Profile: prof, Mode: migration.ModeVanilla, Seed: int64(i), Warmup: 300 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Report.TotalTime.Seconds(), "virtual-s")
		b.ReportMetric(float64(r.Report.TotalBytes())/1e9, "virtual-GB")
	}
}

// BenchmarkEngine_JavmmDerby measures one full app-assisted migration.
func BenchmarkEngine_JavmmDerby(b *testing.B) {
	prof, err := workload.Lookup("derby")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMigration(experiments.RunOpts{
			Profile: prof, Mode: migration.ModeAppAssisted, Seed: int64(i), Warmup: 300 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Report.TotalTime.Seconds(), "virtual-s")
		b.ReportMetric(r.WorkloadDowntime.Seconds(), "virtual-downtime-s")
	}
}

// BenchmarkEngine_JavmmDerbyStageProfile is BenchmarkEngine_JavmmDerby with
// the real-clock stage profiler attached, reporting where the simulator's own
// CPU time goes as stage-share custom metrics. Comparing its ns/op against
// the unprofiled benchmark bounds the profiler's overhead; the engine's
// transparency contract (TestPerfProfilerTransparent) guarantees the virtual
// results are unchanged.
func BenchmarkEngine_JavmmDerbyStageProfile(b *testing.B) {
	prof, err := workload.Lookup("derby")
	if err != nil {
		b.Fatal(err)
	}
	stages := perf.NewProfiler(perf.WithAllocs())
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMigration(experiments.RunOpts{
			Profile: prof, Mode: migration.ModeAppAssisted, Seed: int64(i),
			Warmup:       300 * time.Second,
			EngineConfig: &migration.Config{Perf: stages},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Report.TotalTime.Seconds(), "virtual-s")
	}
	var total int64
	snap := stages.Snapshot()
	for _, st := range snap {
		total += st.SelfNs
	}
	for _, st := range snap {
		if total > 0 {
			b.ReportMetric(float64(st.SelfNs)/float64(total)*100, st.Stage+"-share-%")
		}
	}
}
