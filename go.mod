module javmm

go 1.22
