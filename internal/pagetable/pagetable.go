// Package pagetable implements the guest-side memory management the LKM
// depends on: a physical frame allocator for the VM's pseudo-physical memory
// and per-process address spaces with walkable page tables.
//
// The paper's framework bridges the semantic gap between applications (which
// speak virtual addresses) and the migration daemon (which speaks PFNs) by
// having the guest kernel perform page-table walks (§3.3.2). This package is
// that machinery. Translation fidelity matters: when a skip-over area shrinks
// because memory was deallocated, the PFNs leaving the area are no longer in
// the page tables (§3.3.4) — tests rely on that behaviour being real.
package pagetable

import (
	"fmt"

	"javmm/internal/mem"
)

// FrameAllocator hands out page frames of a VM's pseudo-physical memory.
//
// Fresh frames are issued in a deterministic golden-ratio permutation of the
// frame space rather than lowest-first: on real hardware the machine frames
// backing consecutively-allocated virtual pages are effectively uncorrelated
// with the migration daemon's ascending-PFN scan order, and that
// decorrelation is what gives pre-copy its "skip pages already re-dirtied
// this round" savings (paper Figure 9). Released frames are recycled LIFO,
// like a per-CPU free list.
type FrameAllocator struct {
	free    *mem.Bitmap // set bit = frame free
	numFree uint64
	total   uint64

	stride   uint64 // coprime with total: generates the permutation
	cursor   uint64 // next frame in the permutation walk
	recycled []mem.PFN
}

// NewFrameAllocator returns an allocator over frames [0, total). Reserved
// frames (e.g. guest kernel text) can be carved out with Reserve.
func NewFrameAllocator(total uint64) *FrameAllocator {
	f := &FrameAllocator{free: mem.NewBitmap(total), numFree: total, total: total}
	f.free.SetAll()
	// Golden-ratio stride, adjusted to be coprime with total so the walk
	// visits every frame exactly once per lap.
	f.stride = uint64(float64(total)*0.6180339887) | 1
	if f.stride == 0 {
		f.stride = 1
	}
	for gcd(f.stride, total) != 1 {
		f.stride += 2
	}
	return f
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Total returns the number of frames the allocator manages.
func (f *FrameAllocator) Total() uint64 { return f.total }

// Free returns the number of unallocated frames.
func (f *FrameAllocator) Free() uint64 { return f.numFree }

// Reserve marks the frame range [start, start+n) as allocated forever.
// It panics if any frame is already in use: reservations happen at boot.
func (f *FrameAllocator) Reserve(start mem.PFN, n uint64) {
	for p := start; p < start+mem.PFN(n); p++ {
		if !f.free.Test(p) {
			panic(fmt.Sprintf("pagetable: Reserve(%d,%d): frame %d already allocated", start, n, p))
		}
		f.free.Clear(p)
		f.numFree--
	}
}

// Alloc returns a free frame, or an error if memory is exhausted. Recycled
// frames are reused LIFO; otherwise the next free frame in the permutation
// sequence is issued.
func (f *FrameAllocator) Alloc() (mem.PFN, error) {
	if f.numFree == 0 {
		return mem.NoPFN, fmt.Errorf("pagetable: out of guest frames (%d total)", f.total)
	}
	for n := len(f.recycled); n > 0; n = len(f.recycled) {
		p := f.recycled[n-1]
		f.recycled = f.recycled[:n-1]
		if f.free.Test(p) { // may have been Reserved meanwhile
			f.free.Clear(p)
			f.numFree--
			return p, nil
		}
	}
	// Walk the permutation until a free frame turns up. Since numFree > 0
	// and the stride is coprime with total, at most `total` steps suffice.
	for i := uint64(0); i < f.total; i++ {
		p := mem.PFN(f.cursor)
		f.cursor = (f.cursor + f.stride) % f.total
		if f.free.Test(p) {
			f.free.Clear(p)
			f.numFree--
			return p, nil
		}
	}
	return mem.NoPFN, fmt.Errorf("pagetable: allocator inconsistency: numFree=%d but no free frame found", f.numFree)
}

// Release returns frame p to the free pool. Double-free panics: it is a
// kernel bug, not a recoverable condition.
func (f *FrameAllocator) Release(p mem.PFN) {
	if f.free.Test(p) {
		panic(fmt.Sprintf("pagetable: double free of frame %d", p))
	}
	f.free.Set(p)
	f.numFree++
	f.recycled = append(f.recycled, p)
}

// Allocated reports whether frame p is currently allocated.
func (f *FrameAllocator) Allocated(p mem.PFN) bool { return !f.free.Test(p) }

// AddressSpace is one process's virtual address space: a two-level page table
// mapping virtual page numbers to PFNs. Walks are real table traversals, and
// the WalkSteps counter lets experiments account for walk costs (the paper
// defers an alternative final-update design because full re-walks are slow,
// §3.3.4 — ablation X5 quantifies this).
type AddressSpace struct {
	frames *FrameAllocator
	// Two-level table: directory index = vpn >> dirShift.
	dir       map[uint64]*ptTable
	mapped    uint64
	WalkSteps uint64 // page-table entries touched by Translate/Walk calls
}

const (
	dirShift  = 9 // 512 entries per leaf table, like x86-64 PTE pages
	leafMask  = (1 << dirShift) - 1
	leafSlots = 1 << dirShift
	leafEmpty = mem.NoPFN
)

type ptTable struct {
	entries [leafSlots]mem.PFN
	used    int
}

func newPTTable() *ptTable {
	t := &ptTable{}
	for i := range t.entries {
		t.entries[i] = leafEmpty
	}
	return t
}

// NewAddressSpace returns an empty address space drawing frames from frames.
func NewAddressSpace(frames *FrameAllocator) *AddressSpace {
	return &AddressSpace{frames: frames, dir: make(map[uint64]*ptTable)}
}

// Mapped returns the number of virtual pages currently mapped.
func (a *AddressSpace) Mapped() uint64 { return a.mapped }

// Map installs vpn→pfn for the page containing va. Mapping an already-mapped
// page panics; remapping must go through Remap so callers are explicit about
// the §3.3.4 case-(2) events they are simulating.
func (a *AddressSpace) Map(va mem.VA, p mem.PFN) {
	vpn := va.PageOf()
	t := a.dir[vpn>>dirShift]
	if t == nil {
		t = newPTTable()
		a.dir[vpn>>dirShift] = t
	}
	if t.entries[vpn&leafMask] != leafEmpty {
		panic(fmt.Sprintf("pagetable: Map(%#x): page already mapped", uint64(va)))
	}
	t.entries[vpn&leafMask] = p
	t.used++
	a.mapped++
}

// Remap changes the frame backing va's page and returns the old frame.
// It panics if the page is unmapped.
func (a *AddressSpace) Remap(va mem.VA, p mem.PFN) mem.PFN {
	vpn := va.PageOf()
	t := a.dir[vpn>>dirShift]
	if t == nil || t.entries[vpn&leafMask] == leafEmpty {
		panic(fmt.Sprintf("pagetable: Remap(%#x): page not mapped", uint64(va)))
	}
	old := t.entries[vpn&leafMask]
	t.entries[vpn&leafMask] = p
	return old
}

// Unmap removes the mapping for va's page and returns the frame it used.
// It panics if the page is unmapped.
func (a *AddressSpace) Unmap(va mem.VA) mem.PFN {
	vpn := va.PageOf()
	di := vpn >> dirShift
	t := a.dir[di]
	if t == nil || t.entries[vpn&leafMask] == leafEmpty {
		panic(fmt.Sprintf("pagetable: Unmap(%#x): page not mapped", uint64(va)))
	}
	p := t.entries[vpn&leafMask]
	t.entries[vpn&leafMask] = leafEmpty
	t.used--
	if t.used == 0 {
		delete(a.dir, di)
	}
	a.mapped--
	return p
}

// Translate returns the frame backing va, or (NoPFN, false) if unmapped.
func (a *AddressSpace) Translate(va mem.VA) (mem.PFN, bool) {
	a.WalkSteps++
	vpn := va.PageOf()
	t := a.dir[vpn>>dirShift]
	if t == nil {
		return mem.NoPFN, false
	}
	p := t.entries[vpn&leafMask]
	if p == leafEmpty {
		return mem.NoPFN, false
	}
	return p, true
}

// Walk visits every mapped page in the page-aligned range r in ascending VA
// order, calling fn with the page's base VA and frame. This is the LKM's
// page-table walk (§3.3.2): unmapped pages in the range are silently skipped,
// exactly as a real walk finds no PTE.
func (a *AddressSpace) Walk(r mem.VARange, fn func(va mem.VA, p mem.PFN)) {
	r = r.PageAlignInward()
	for va := r.Start; va < r.End; va += mem.PageSize {
		a.WalkSteps++
		if p, ok := a.Translate(va); ok {
			fn(va, p)
		}
	}
}

// MapRange allocates fresh frames for every page of the page-aligned range r.
// On allocation failure it unwinds its own mappings and returns the error.
func (a *AddressSpace) MapRange(r mem.VARange) error {
	r = r.PageAlignInward()
	var done []mem.VA
	for va := r.Start; va < r.End; va += mem.PageSize {
		p, err := a.frames.Alloc()
		if err != nil {
			for _, d := range done {
				a.frames.Release(a.Unmap(d))
			}
			return fmt.Errorf("pagetable: MapRange(%v): %w", r, err)
		}
		a.Map(va, p)
		done = append(done, va)
	}
	return nil
}

// UnmapRange unmaps every mapped page in the page-aligned range r and
// releases the frames. It returns the number of pages freed. This is the
// §3.3.4 deallocation path: after UnmapRange, the PFNs that backed the range
// can no longer be found by page-table walks.
func (a *AddressSpace) UnmapRange(r mem.VARange) uint64 {
	r = r.PageAlignInward()
	var n uint64
	for va := r.Start; va < r.End; va += mem.PageSize {
		if _, ok := a.Translate(va); ok {
			a.frames.Release(a.Unmap(va))
			n++
		}
	}
	return n
}
