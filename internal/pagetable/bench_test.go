package pagetable

import (
	"testing"

	"javmm/internal/mem"
)

func BenchmarkFrameAllocReleaseCycle(b *testing.B) {
	f := NewFrameAllocator(1 << 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := f.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		f.Release(p)
	}
}

func BenchmarkAddressSpaceTranslate(b *testing.B) {
	f := NewFrameAllocator(1 << 18)
	a := NewAddressSpace(f)
	r := mem.VARange{Start: 0x10000000, End: 0x10000000 + (1<<17)*mem.PageSize}
	if err := a.MapRange(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := r.Start + mem.VA((uint64(i)&(1<<17-1))*mem.PageSize)
		if _, ok := a.Translate(va); !ok {
			b.Fatal("unmapped")
		}
	}
}

// BenchmarkAddressSpaceWalk measures the LKM's first-bitmap-update walk over
// a 1 GiB skip-over area.
func BenchmarkAddressSpaceWalk(b *testing.B) {
	f := NewFrameAllocator(1 << 19)
	a := NewAddressSpace(f)
	r := mem.VARange{Start: 0x10000000, End: 0x10000000 + (1<<18)*mem.PageSize}
	if err := a.MapRange(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		a.Walk(r, func(mem.VA, mem.PFN) { n++ })
		if n != 1<<18 {
			b.Fatal("walk incomplete")
		}
	}
}
