package pagetable

import (
	"math/rand"
	"testing"

	"javmm/internal/mem"
)

func TestFrameAllocatorExhaustion(t *testing.T) {
	f := NewFrameAllocator(3)
	seen := map[mem.PFN]bool{}
	for i := 0; i < 3; i++ {
		p, err := f.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if seen[p] {
			t.Fatalf("frame %d allocated twice", p)
		}
		seen[p] = true
	}
	if _, err := f.Alloc(); err == nil {
		t.Fatal("Alloc succeeded with no free frames")
	}
	if f.Free() != 0 {
		t.Fatalf("Free() = %d, want 0", f.Free())
	}
}

func TestFrameAllocatorReleaseRecycles(t *testing.T) {
	f := NewFrameAllocator(2)
	p1, _ := f.Alloc()
	p2, _ := f.Alloc()
	f.Release(p1)
	p3, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatalf("recycled frame %d, want %d", p3, p1)
	}
	_ = p2
}

func TestFrameAllocatorDoubleFreePanics(t *testing.T) {
	f := NewFrameAllocator(2)
	p, _ := f.Alloc()
	f.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Release(p)
}

func TestFrameAllocatorReserve(t *testing.T) {
	f := NewFrameAllocator(10)
	f.Reserve(0, 4)
	if f.Free() != 6 {
		t.Fatalf("Free() = %d after Reserve, want 6", f.Free())
	}
	for i := 0; i < 6; i++ {
		p, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if p < 4 {
			t.Fatalf("Alloc returned reserved frame %d", p)
		}
	}
}

func TestFrameAllocatorReserveConflictPanics(t *testing.T) {
	f := NewFrameAllocator(4)
	p, _ := f.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve over allocated frame did not panic")
		}
	}()
	f.Reserve(p, 1)
}

func TestFrameAllocatorAllocated(t *testing.T) {
	f := NewFrameAllocator(4)
	p, _ := f.Alloc()
	if !f.Allocated(p) {
		t.Fatal("Allocated = false for live frame")
	}
	f.Release(p)
	if f.Allocated(p) {
		t.Fatal("Allocated = true for freed frame")
	}
}

func TestAddressSpaceMapTranslateUnmap(t *testing.T) {
	f := NewFrameAllocator(16)
	a := NewAddressSpace(f)
	va := mem.VA(0x4000)
	p, _ := f.Alloc()
	a.Map(va, p)
	got, ok := a.Translate(va)
	if !ok || got != p {
		t.Fatalf("Translate = %d,%v, want %d,true", got, ok, p)
	}
	// Offsets within the page translate to the same frame.
	got, ok = a.Translate(va + 0xabc)
	if !ok || got != p {
		t.Fatalf("Translate mid-page = %d,%v", got, ok)
	}
	if a.Mapped() != 1 {
		t.Fatalf("Mapped = %d, want 1", a.Mapped())
	}
	if back := a.Unmap(va); back != p {
		t.Fatalf("Unmap returned %d, want %d", back, p)
	}
	if _, ok := a.Translate(va); ok {
		t.Fatal("Translate succeeded after Unmap")
	}
}

func TestAddressSpaceDoubleMapPanics(t *testing.T) {
	f := NewFrameAllocator(4)
	a := NewAddressSpace(f)
	a.Map(0x1000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Map did not panic")
		}
	}()
	a.Map(0x1000, 1)
}

func TestAddressSpaceUnmapUnmappedPanics(t *testing.T) {
	a := NewAddressSpace(NewFrameAllocator(4))
	defer func() {
		if recover() == nil {
			t.Fatal("Unmap of unmapped page did not panic")
		}
	}()
	a.Unmap(0x1000)
}

func TestAddressSpaceRemap(t *testing.T) {
	f := NewFrameAllocator(4)
	a := NewAddressSpace(f)
	a.Map(0x1000, 2)
	old := a.Remap(0x1000, 3)
	if old != 2 {
		t.Fatalf("Remap returned %d, want 2", old)
	}
	got, _ := a.Translate(0x1000)
	if got != 3 {
		t.Fatalf("Translate after Remap = %d, want 3", got)
	}
}

func TestMapRangeUnmapRange(t *testing.T) {
	f := NewFrameAllocator(64)
	a := NewAddressSpace(f)
	r := mem.VARange{Start: 0x10000, End: 0x10000 + 8*mem.PageSize}
	if err := a.MapRange(r); err != nil {
		t.Fatal(err)
	}
	if a.Mapped() != 8 {
		t.Fatalf("Mapped = %d, want 8", a.Mapped())
	}
	if f.Free() != 56 {
		t.Fatalf("Free = %d, want 56", f.Free())
	}
	if n := a.UnmapRange(r); n != 8 {
		t.Fatalf("UnmapRange freed %d, want 8", n)
	}
	if f.Free() != 64 {
		t.Fatalf("Free = %d after UnmapRange, want 64", f.Free())
	}
}

func TestMapRangeUnwindsOnExhaustion(t *testing.T) {
	f := NewFrameAllocator(4)
	a := NewAddressSpace(f)
	r := mem.VARange{Start: 0x10000, End: 0x10000 + 8*mem.PageSize}
	if err := a.MapRange(r); err == nil {
		t.Fatal("MapRange succeeded beyond available frames")
	}
	if f.Free() != 4 {
		t.Fatalf("Free = %d after failed MapRange, want 4 (unwound)", f.Free())
	}
	if a.Mapped() != 0 {
		t.Fatalf("Mapped = %d after failed MapRange, want 0", a.Mapped())
	}
}

func TestWalkVisitsMappedOnlyInOrder(t *testing.T) {
	f := NewFrameAllocator(64)
	a := NewAddressSpace(f)
	a.Map(0x2000, 10)
	a.Map(0x4000, 11)
	a.Map(0x9000, 12)
	var vas []mem.VA
	var pfns []mem.PFN
	a.Walk(mem.VARange{Start: 0x1000, End: 0xa000}, func(va mem.VA, p mem.PFN) {
		vas = append(vas, va)
		pfns = append(pfns, p)
	})
	wantVAs := []mem.VA{0x2000, 0x4000, 0x9000}
	if len(vas) != 3 {
		t.Fatalf("Walk visited %v", vas)
	}
	for i := range vas {
		if vas[i] != wantVAs[i] {
			t.Fatalf("Walk order %v, want %v", vas, wantVAs)
		}
	}
	if pfns[0] != 10 || pfns[1] != 11 || pfns[2] != 12 {
		t.Fatalf("Walk frames %v", pfns)
	}
}

func TestWalkAlignsRangeInward(t *testing.T) {
	f := NewFrameAllocator(8)
	a := NewAddressSpace(f)
	a.Map(0x1000, 1)
	a.Map(0x2000, 2)
	var visited []mem.VA
	// [0x1800,0x3000) aligns inward to [0x2000,0x3000): only page 0x2000.
	a.Walk(mem.VARange{Start: 0x1800, End: 0x3000}, func(va mem.VA, p mem.PFN) {
		visited = append(visited, va)
	})
	if len(visited) != 1 || visited[0] != 0x2000 {
		t.Fatalf("Walk visited %v, want [0x2000]", visited)
	}
	// [0x1800,0x2fff) aligns inward to empty: page 0x2000 is not wholly inside.
	visited = nil
	a.Walk(mem.VARange{Start: 0x1800, End: 0x2fff}, func(va mem.VA, p mem.PFN) {
		visited = append(visited, va)
	})
	if len(visited) != 0 {
		t.Fatalf("Walk over sub-page tail visited %v, want none", visited)
	}
}

func TestWalkStepsCounterAdvances(t *testing.T) {
	f := NewFrameAllocator(8)
	a := NewAddressSpace(f)
	a.Map(0x1000, 1)
	before := a.WalkSteps
	a.Walk(mem.VARange{Start: 0x0, End: 0x8000}, func(mem.VA, mem.PFN) {})
	if a.WalkSteps <= before {
		t.Fatal("WalkSteps did not advance")
	}
}

// Property: after any interleaving of MapRange/UnmapRange, frames held by
// mappings plus free frames equals the total, and Translate agrees with a
// shadow map.
func TestAddressSpaceRandomOpsConservation(t *testing.T) {
	const frames = 256
	rng := rand.New(rand.NewSource(7))
	f := NewFrameAllocator(frames)
	a := NewAddressSpace(f)
	shadow := map[mem.VA]mem.PFN{}
	for i := 0; i < 2000; i++ {
		va := mem.VA(rng.Intn(512)) * mem.PageSize
		if _, mapped := shadow[va]; mapped {
			if rng.Intn(2) == 0 {
				p := a.Unmap(va)
				if shadow[va] != p {
					t.Fatalf("Unmap(%#x) = %d, shadow %d", uint64(va), p, shadow[va])
				}
				f.Release(p)
				delete(shadow, va)
			} else {
				got, ok := a.Translate(va)
				if !ok || got != shadow[va] {
					t.Fatalf("Translate(%#x) = %d,%v, shadow %d", uint64(va), got, ok, shadow[va])
				}
			}
		} else if f.Free() > 0 {
			p, err := f.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			a.Map(va, p)
			shadow[va] = p
		}
		if a.Mapped() != uint64(len(shadow)) {
			t.Fatalf("Mapped = %d, shadow %d", a.Mapped(), len(shadow))
		}
		if f.Free()+a.Mapped() != frames {
			t.Fatalf("conservation violated: free %d + mapped %d != %d", f.Free(), a.Mapped(), frames)
		}
	}
}
