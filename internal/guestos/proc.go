package guestos

import (
	"fmt"
	"strconv"
	"strings"

	"javmm/internal/mem"
)

// ProcEntry is the /proc control file through which an application passes
// skip-over VA ranges to the LKM (paper §3.3.2). Each application opens its
// own entry, bound to its netlink socket identity, and writes line-oriented
// text commands:
//
//	skip 0x3b00-0x8aff[,0x...-0x...]     report skip-over areas
//	shrink 0x6b00-0x8aff[,...]           VA ranges left an area
//	ready 0x3b00-0x5fff[,...]            suspension-ready, final areas
//	ready                                suspension-ready, no skip areas left
//	hint strong|fast|none 0xA-0xB[,...]  compression hints (§6 extension)
//
// The text surface exists because the paper uses one; programmatic callers
// (the TI agent) may also send the equivalent netlink messages directly.
type ProcEntry struct {
	sock *Socket
}

// OpenProc opens the application's /proc control entry.
func OpenProc(sock *Socket) *ProcEntry { return &ProcEntry{sock: sock} }

// Write parses and executes one command line.
func (p *ProcEntry) Write(line string) error {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return fmt.Errorf("guestos: empty /proc command")
	}
	verb := fields[0]
	if verb == "hint" {
		if len(fields) != 3 {
			return fmt.Errorf("guestos: /proc hint: want `hint LEVEL RANGES`")
		}
		var level uint8
		switch fields[1] {
		case "fast":
			level = HintFast
		case "strong":
			level = HintStrong
		case "none":
			level = HintNone
		default:
			return fmt.Errorf("guestos: /proc hint: unknown level %q", fields[1])
		}
		ranges, err := ParseVARanges(fields[2])
		if err != nil {
			return fmt.Errorf("guestos: /proc hint: %w", err)
		}
		return p.sock.Send(MsgCompressionHints{App: p.sock.App(), Areas: ranges, Level: level})
	}
	var ranges []mem.VARange
	if len(fields) > 1 {
		var err error
		ranges, err = ParseVARanges(fields[1])
		if err != nil {
			return fmt.Errorf("guestos: /proc %s: %w", verb, err)
		}
	}
	switch verb {
	case "skip":
		if len(ranges) == 0 {
			return fmt.Errorf("guestos: /proc skip: no ranges")
		}
		return p.sock.Send(MsgReportAreas{App: p.sock.App(), Areas: ranges})
	case "shrink":
		if len(ranges) == 0 {
			return fmt.Errorf("guestos: /proc shrink: no ranges")
		}
		return p.sock.Send(MsgAreaShrunk{App: p.sock.App(), Left: ranges})
	case "ready":
		return p.sock.Send(MsgSuspensionReady{App: p.sock.App(), Areas: ranges})
	default:
		return fmt.Errorf("guestos: unknown /proc command %q", verb)
	}
}

// ParseVARanges parses "0xA-0xB[,0xC-0xD...]" into VA ranges. Hex (0x) and
// decimal forms are accepted; each range must have Start < End.
func ParseVARanges(s string) ([]mem.VARange, error) {
	var out []mem.VARange
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("range %q: want START-END", part)
		}
		start, err := parseAddr(lo)
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", part, err)
		}
		end, err := parseAddr(hi)
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", part, err)
		}
		if end <= start {
			return nil, fmt.Errorf("range %q: end not after start", part)
		}
		out = append(out, mem.VARange{Start: mem.VA(start), End: mem.VA(end)})
	}
	return out, nil
}

func parseAddr(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "0x"); ok {
		return strconv.ParseUint(rest, 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// FormatVARanges renders ranges in the syntax ParseVARanges accepts.
func FormatVARanges(ranges []mem.VARange) string {
	parts := make([]string, len(ranges))
	for i, r := range ranges {
		parts[i] = fmt.Sprintf("%#x-%#x", uint64(r.Start), uint64(r.End))
	}
	return strings.Join(parts, ",")
}

// Status renders a human-readable snapshot of the LKM for /proc reads and
// debugging.
func (l *LKM) Status() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state: %s\n", l.state)
	fmt.Fprintf(&b, "transfer bits cleared: %d\n", l.transfer.Len()-l.transfer.Count())
	fmt.Fprintf(&b, "apps: %d\n", len(l.apps))
	fmt.Fprintf(&b, "pfn cache high water: %d entries (%d bytes)\n", l.CacheHighWater, l.CacheBytes())
	fmt.Fprintf(&b, "invalid messages: %d\n", l.InvalidMsgs)
	return b.String()
}
