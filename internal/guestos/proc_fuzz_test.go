package guestos

import (
	"strings"
	"testing"
)

// FuzzParseVARanges exercises the /proc range parser. Run with
// `go test -fuzz FuzzParseVARanges ./internal/guestos` for open-ended
// fuzzing; the seed corpus below runs as part of the normal test suite.
func FuzzParseVARanges(f *testing.F) {
	for _, seed := range []string{
		"0x1000-0x2000",
		"0x1000-0x2000,0x3000-0x4000",
		"4096-8192",
		"0x-0x",
		"-",
		",",
		"0xffffffffffffffff-0x0",
		"0x0-0xffffffffffffffff",
		"1-2,3-4,5-6,7-8,9-10",
		strings.Repeat("0x1-0x2,", 100) + "0x1-0x2",
		"0x1000-0x2000,garbage",
		"  0x10 - 0x20  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ranges, err := ParseVARanges(s)
		if err != nil {
			return
		}
		// Parsed ranges must be well-formed and re-parseable.
		for _, r := range ranges {
			if r.End <= r.Start {
				t.Fatalf("parser accepted inverted range %v from %q", r, s)
			}
		}
		back, err := ParseVARanges(FormatVARanges(ranges))
		if err != nil {
			t.Fatalf("format/parse round trip failed for %q: %v", s, err)
		}
		if len(back) != len(ranges) {
			t.Fatalf("round trip changed arity for %q", s)
		}
		for i := range back {
			if back[i] != ranges[i] {
				t.Fatalf("round trip changed ranges for %q: %v vs %v", s, ranges, back)
			}
		}
	})
}
