package guestos

import (
	"strings"
	"testing"
	"time"

	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// testGuest builds a small guest: 8192 pages (32 MiB), kernel reservation
// included.
func testGuest(t *testing.T) (*Guest, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("guest", clock, mem.NewVersionStore(8192), 2)
	g := NewGuest(dom, LKMConfig{Clock: clock})
	return g, clock
}

func TestBusMulticastOrderAndClose(t *testing.T) {
	b := NewBus()
	var order []int
	s1 := b.Subscribe(func(any) { order = append(order, 1) })
	s2 := b.Subscribe(func(any) { order = append(order, 2) })
	b.Multicast("x")
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("multicast order %v", order)
	}
	s1.Close()
	order = nil
	b.Multicast("y")
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("after close, multicast order %v", order)
	}
	if b.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d", b.Subscribers())
	}
	_ = s2
}

func TestBusSendWithoutKernel(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(func(any) {})
	if err := s.Send("msg"); err == nil {
		t.Fatal("Send without kernel receiver succeeded")
	}
}

func TestBusSendToKernel(t *testing.T) {
	b := NewBus()
	var gotFrom AppID
	var gotMsg any
	b.BindKernel(func(from AppID, msg any) { gotFrom, gotMsg = from, msg })
	s := b.Subscribe(func(any) {})
	if err := s.Send("hello"); err != nil {
		t.Fatal(err)
	}
	if gotFrom != s.App() || gotMsg != "hello" {
		t.Fatalf("kernel got (%d, %v)", gotFrom, gotMsg)
	}
}

func TestParseVARanges(t *testing.T) {
	got, err := ParseVARanges("0x1000-0x2000,4096-8192")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (mem.VARange{Start: 0x1000, End: 0x2000}) ||
		got[1] != (mem.VARange{Start: 4096, End: 8192}) {
		t.Fatalf("ParseVARanges = %v", got)
	}
	for _, bad := range []string{"", "x", "0x10", "0x20-0x10", "0x10-0x10", "zz-0x10"} {
		if _, err := ParseVARanges(bad); err == nil {
			t.Errorf("ParseVARanges(%q) succeeded", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []mem.VARange{{Start: 0x1000, End: 0x2000}, {Start: 0xa000, End: 0xf000}}
	out, err := ParseVARanges(FormatVARanges(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %v -> %v", in, out)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip %v -> %v", in, out)
		}
	}
}

func TestProcEntryCommands(t *testing.T) {
	g, _ := testGuest(t)
	proc := g.NewProcess("app")
	area := mem.VARange{Start: 0x100000, End: 0x100000 + 16*mem.PageSize}
	if err := proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	sock := g.LKM.RegisterApp(proc, func(any) {})
	pe := OpenProc(sock)

	g.LKM.DaemonEndpoint().Notify(EvMigrationBegin{})
	if err := pe.Write("skip " + FormatVARanges([]mem.VARange{area})); err != nil {
		t.Fatal(err)
	}
	cleared := g.LKM.TransferBitmap().Len() - g.LKM.TransferBitmap().Count()
	if cleared != 16 {
		t.Fatalf("cleared bits = %d, want 16", cleared)
	}
	if err := pe.Write("bogus 0x0-0x1"); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := pe.Write("skip"); err == nil {
		t.Fatal("skip without ranges accepted")
	}
	if err := pe.Write(""); err == nil {
		t.Fatal("empty command accepted")
	}

	// Compression hints through /proc.
	if err := pe.Write("hint strong " + FormatVARanges([]mem.VARange{area})); err != nil {
		t.Fatal(err)
	}
	if g.LKM.HintedPages != 16 {
		t.Fatalf("HintedPages = %d after /proc hint", g.LKM.HintedPages)
	}
	for _, bad := range []string{"hint", "hint turbo 0x1000-0x2000", "hint strong zz"} {
		if err := pe.Write(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestLKMInitialState(t *testing.T) {
	g, _ := testGuest(t)
	if g.LKM.State() != StateInitialized {
		t.Fatalf("state = %v", g.LKM.State())
	}
	tb := g.LKM.TransferBitmap()
	if tb.Count() != tb.Len() {
		t.Fatal("transfer bitmap not initialized all-set")
	}
	if g.LKM.BitmapBytes() != 1024 {
		t.Fatalf("BitmapBytes = %d, want 1024 for 8192 pages", g.LKM.BitmapBytes())
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{
		StateInitialized:      "INITIALIZED",
		StateMigrationStarted: "MIGRATION_STARTED",
		StateEnteringLastIter: "ENTERING_LAST_ITER",
		StateSuspensionReady:  "SUSPENSION_READY",
		StateResumed:          "RESUMED",
		State(99):             "State(99)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// appHarness wires a scripted application into the LKM for workflow tests.
type appHarness struct {
	proc *Process
	sock *Socket
	// areas reported on query and on prepare.
	queryAreas []mem.VARange
	readyAreas []mem.VARange
	// readyDelay defers the suspension-ready response by virtual time;
	// zero responds immediately. Negative means never respond.
	readyDelay time.Duration
	clock      *simclock.Clock

	queries, prepares, resumes int
}

func newAppHarness(g *Guest, clock *simclock.Clock, name string) *appHarness {
	h := &appHarness{proc: g.NewProcess(name), clock: clock}
	h.sock = g.LKM.RegisterApp(h.proc, h.onMsg)
	return h
}

func (h *appHarness) onMsg(msg any) {
	switch msg.(type) {
	case MsgQuerySkipAreas:
		h.queries++
		if len(h.queryAreas) > 0 {
			h.sock.Send(MsgReportAreas{App: h.sock.App(), Areas: h.queryAreas})
		}
	case MsgPrepareSuspension:
		h.prepares++
		if h.readyDelay < 0 {
			return // never responds: straggler
		}
		respond := func() {
			h.sock.Send(MsgSuspensionReady{App: h.sock.App(), Areas: h.readyAreas})
		}
		if h.readyDelay == 0 {
			respond()
		} else {
			h.clock.AfterFunc(h.readyDelay, func(time.Duration) { respond() })
		}
	case MsgVMResumed:
		h.resumes++
	}
}

func pagesAt(start mem.VA, n uint64) mem.VARange {
	return mem.VARange{Start: start, End: start + mem.VA(n*mem.PageSize)}
}

func TestWorkflowHappyPath(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x100000, 64)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	// Suspension-ready keeps only the tail 8 pages skipped (like the From
	// space leaving the young gen: the first 8 pages hold live data).
	live := pagesAt(area.Start, 8)
	h.readyAreas = area.Subtract(live)

	var ready []EvSuspensionReady
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if ev, ok := msg.(EvSuspensionReady); ok {
			ready = append(ready, ev)
		}
	})

	daemon.Notify(EvMigrationBegin{})
	if g.LKM.State() != StateMigrationStarted {
		t.Fatalf("state = %v", g.LKM.State())
	}
	if h.queries != 1 {
		t.Fatalf("queries = %d", h.queries)
	}
	tb := g.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != 64 {
		t.Fatalf("first update skipped %d pages, want 64", skipped)
	}

	daemon.Notify(EvEnteringLastIter{})
	if len(ready) != 1 {
		t.Fatalf("suspension-ready events = %d, want 1", len(ready))
	}
	if g.LKM.State() != StateSuspensionReady {
		t.Fatalf("state = %v", g.LKM.State())
	}
	// The 8 live pages left the skip-over set: their bits are set again.
	if skipped := tb.Len() - tb.Count(); skipped != 56 {
		t.Fatalf("after final update skipped %d pages, want 56", skipped)
	}
	var liveSkipped int
	h.proc.AS.Walk(live, func(va mem.VA, p mem.PFN) {
		if !tb.Test(p) {
			liveSkipped++
		}
	})
	if liveSkipped != 0 {
		t.Fatalf("%d live pages still skip-marked", liveSkipped)
	}
	if ready[0].FinalUpdate <= 0 {
		t.Fatal("final update duration not accounted")
	}
	if ready[0].Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d", ready[0].Fallbacks)
	}

	daemon.Notify(EvVMResumed{})
	if h.resumes != 1 {
		t.Fatalf("resumes = %d", h.resumes)
	}
	if g.LKM.State() != StateInitialized {
		t.Fatalf("state after resume = %v", g.LKM.State())
	}
	if tb.Count() != tb.Len() {
		t.Fatal("transfer bitmap not reset after resume")
	}
}

func TestShrinkUsesPFNCacheAfterFree(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x200000, 32)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(EvMigrationBegin{})

	// Record which PFNs back the tail 8 pages, then deallocate them — the
	// exact case §3.3.4 designs the PFN cache for: after the free, page
	// tables can no longer find the departing PFNs.
	leaving := pagesAt(area.Start+24*mem.PageSize, 8)
	var leavingPFNs []mem.PFN
	h.proc.AS.Walk(leaving, func(va mem.VA, p mem.PFN) { leavingPFNs = append(leavingPFNs, p) })
	h.proc.Free(leaving)

	h.sock.Send(MsgAreaShrunk{App: h.sock.App(), Left: []mem.VARange{leaving}})

	tb := g.LKM.TransferBitmap()
	for _, p := range leavingPFNs {
		if !tb.Test(p) {
			t.Fatalf("PFN %d left the area but transfer bit still cleared", p)
		}
	}
	if skipped := tb.Len() - tb.Count(); skipped != 24 {
		t.Fatalf("skipped = %d, want 24", skipped)
	}
	if g.LKM.ShrinkEvents != 1 {
		t.Fatalf("ShrinkEvents = %d", g.LKM.ShrinkEvents)
	}
}

func TestExpandDeferredToFinalUpdate(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x300000, 16)
	grown := pagesAt(0x300000, 32)
	if err := h.proc.Alloc(grown); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	h.readyAreas = []mem.VARange{grown}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})

	daemon.Notify(EvMigrationBegin{})
	tb := g.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != 16 {
		t.Fatalf("skipped after first update = %d, want 16", skipped)
	}
	// Expansion is NOT reported mid-migration (paper: no notification on
	// expand); the final update picks it up.
	daemon.Notify(EvEnteringLastIter{})
	if skipped := tb.Len() - tb.Count(); skipped != 32 {
		t.Fatalf("skipped after final update = %d, want 32", skipped)
	}
}

func TestPrepareTimeoutFallsBackToFullTransfer(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x400000, 16)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	h.readyDelay = -1 // never responds

	var ready []EvSuspensionReady
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if ev, ok := msg.(EvSuspensionReady); ok {
			ready = append(ready, ev)
		}
	})
	daemon.Notify(EvMigrationBegin{})
	daemon.Notify(EvEnteringLastIter{})
	if len(ready) != 0 {
		t.Fatal("suspension-ready before timeout")
	}
	clock.Advance(11 * time.Second) // default timeout 10s
	if len(ready) != 1 {
		t.Fatalf("suspension-ready events = %d, want 1 after timeout", len(ready))
	}
	if ready[0].Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", ready[0].Fallbacks)
	}
	tb := g.LKM.TransferBitmap()
	if tb.Count() != tb.Len() {
		t.Fatal("straggler's area not restored to full transfer")
	}
	if g.LKM.FallbackApps != 1 {
		t.Fatalf("FallbackApps = %d", g.LKM.FallbackApps)
	}
}

func TestDelayedReadyArrivesBeforeTimeout(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x500000, 16)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	h.readyAreas = []mem.VARange{area}
	h.readyDelay = 900 * time.Millisecond // like an enforced GC finishing

	var readyAt time.Duration = -1
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if _, ok := msg.(EvSuspensionReady); ok {
			readyAt = clock.Now()
		}
	})
	daemon.Notify(EvMigrationBegin{})
	daemon.Notify(EvEnteringLastIter{})
	clock.Advance(2 * time.Second)
	if readyAt != 900*time.Millisecond {
		t.Fatalf("ready at %v, want 900ms", readyAt)
	}
	// Timer must have been cancelled: advancing past the timeout changes
	// nothing.
	before := g.LKM.FallbackApps
	clock.Advance(20 * time.Second)
	if g.LKM.FallbackApps != before {
		t.Fatal("timeout fired after all apps were ready")
	}
}

func TestMultipleAppsCoordination(t *testing.T) {
	g, clock := testGuest(t)
	h1 := newAppHarness(g, clock, "app1")
	h2 := newAppHarness(g, clock, "app2")
	a1 := pagesAt(0x100000, 16)
	a2 := pagesAt(0x200000, 24)
	if err := h1.proc.Alloc(a1); err != nil {
		t.Fatal(err)
	}
	if err := h2.proc.Alloc(a2); err != nil {
		t.Fatal(err)
	}
	h1.queryAreas = []mem.VARange{a1}
	h2.queryAreas = []mem.VARange{a2}
	h1.readyAreas = []mem.VARange{a1}
	h2.readyAreas = []mem.VARange{a2}
	h1.readyDelay = 100 * time.Millisecond
	h2.readyDelay = 300 * time.Millisecond

	var readyAt time.Duration = -1
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if _, ok := msg.(EvSuspensionReady); ok {
			readyAt = clock.Now()
		}
	})
	daemon.Notify(EvMigrationBegin{})
	tb := g.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != 40 {
		t.Fatalf("skipped = %d, want 40 across two apps", skipped)
	}
	daemon.Notify(EvEnteringLastIter{})
	clock.Advance(time.Second)
	// The LKM waits for the slower app: ready only after both responded.
	if readyAt != 300*time.Millisecond {
		t.Fatalf("ready at %v, want 300ms (slowest app)", readyAt)
	}
}

func TestAppWithNoAreasIsNotWaitedOn(t *testing.T) {
	g, clock := testGuest(t)
	h1 := newAppHarness(g, clock, "hasareas")
	h2 := newAppHarness(g, clock, "noareas")
	a1 := pagesAt(0x100000, 8)
	if err := h1.proc.Alloc(a1); err != nil {
		t.Fatal(err)
	}
	h1.queryAreas = []mem.VARange{a1}
	h1.readyAreas = []mem.VARange{a1}
	h2.readyDelay = -1 // never responds, but has no areas either

	var ready int
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if _, ok := msg.(EvSuspensionReady); ok {
			ready++
		}
	})
	daemon.Notify(EvMigrationBegin{})
	daemon.Notify(EvEnteringLastIter{})
	if ready != 1 {
		t.Fatalf("ready = %d: LKM waited on an app with no skip-over areas", ready)
	}
}

func TestInvalidTransitionsCounted(t *testing.T) {
	g, _ := testGuest(t)
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(EvEnteringLastIter{}) // wrong state
	daemon.Notify(EvVMResumed{})        // wrong state
	daemon.Notify("garbage")
	if g.LKM.InvalidMsgs != 3 {
		t.Fatalf("InvalidMsgs = %d, want 3", g.LKM.InvalidMsgs)
	}
	// Messages from unknown apps are dropped.
	g.Bus.BindKernel(g.LKM.onAppMessage)
	g.LKM.onAppMessage(999, MsgReportAreas{App: 999})
	if g.LKM.InvalidMsgs != 4 {
		t.Fatalf("InvalidMsgs = %d, want 4", g.LKM.InvalidMsgs)
	}
}

func TestReportAreasOutsideMigrationDropped(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x100000, 8)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.sock.Send(MsgReportAreas{App: h.sock.App(), Areas: []mem.VARange{area}})
	tb := g.LKM.TransferBitmap()
	if tb.Count() != tb.Len() {
		t.Fatal("report outside migration cleared transfer bits")
	}
	if g.LKM.InvalidMsgs != 1 {
		t.Fatalf("InvalidMsgs = %d", g.LKM.InvalidMsgs)
	}
}

func TestSecondMigrationAfterResume(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x100000, 16)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	h.readyAreas = []mem.VARange{area}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})

	for round := 1; round <= 2; round++ {
		daemon.Notify(EvMigrationBegin{})
		tb := g.LKM.TransferBitmap()
		if skipped := tb.Len() - tb.Count(); skipped != 16 {
			t.Fatalf("round %d: skipped = %d, want 16", round, skipped)
		}
		daemon.Notify(EvEnteringLastIter{})
		if g.LKM.State() != StateSuspensionReady {
			t.Fatalf("round %d: state = %v", round, g.LKM.State())
		}
		daemon.Notify(EvVMResumed{})
		if g.LKM.State() != StateInitialized {
			t.Fatalf("round %d: state after resume = %v", round, g.LKM.State())
		}
	}
	if h.queries != 2 || h.resumes != 2 {
		t.Fatalf("queries = %d resumes = %d, want 2 each", h.queries, h.resumes)
	}
}

func TestCacheAccounting(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	area := pagesAt(0x100000, 100)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(EvMigrationBegin{})
	if g.LKM.CacheHighWater != 100 {
		t.Fatalf("CacheHighWater = %d, want 100", g.LKM.CacheHighWater)
	}
	if g.LKM.CacheBytes() != 400 {
		t.Fatalf("CacheBytes = %d, want 400", g.LKM.CacheBytes())
	}
}

func TestUnalignedAreaAlignedInward(t *testing.T) {
	g, clock := testGuest(t)
	h := newAppHarness(g, clock, "app")
	// Area covering pages 0x100000..0x110000 but with ragged edges.
	if err := h.proc.Alloc(pagesAt(0x100000, 16)); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{{Start: 0x100b00, End: 0x10fafe}}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(EvMigrationBegin{})
	tb := g.LKM.TransferBitmap()
	// Aligned inward: [0x101000, 0x10f000) = 14 pages.
	if skipped := tb.Len() - tb.Count(); skipped != 14 {
		t.Fatalf("skipped = %d, want 14", skipped)
	}
}

func TestCompressionHints(t *testing.T) {
	g, _ := testGuest(t)
	h := newAppHarness(g, g.Dom.Clock(), "app")
	area := pagesAt(0x100000, 16)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})

	// Hints outside migration are rejected.
	h.sock.Send(MsgCompressionHints{App: h.sock.App(), Areas: []mem.VARange{area}, Level: HintStrong})
	if g.LKM.InvalidMsgs != 1 {
		t.Fatalf("InvalidMsgs = %d", g.LKM.InvalidMsgs)
	}

	daemon.Notify(EvMigrationBegin{})
	h.sock.Send(MsgCompressionHints{App: h.sock.App(), Areas: []mem.VARange{area}, Level: HintStrong})
	if g.LKM.HintedPages != 16 {
		t.Fatalf("HintedPages = %d, want 16", g.LKM.HintedPages)
	}
	var strongs int
	h.proc.AS.Walk(area, func(va mem.VA, p mem.PFN) {
		if g.LKM.HintFor(p) == HintStrong {
			strongs++
		}
	})
	if strongs != 16 {
		t.Fatalf("strong-hinted pages = %d", strongs)
	}
	// Unknown levels are rejected.
	h.sock.Send(MsgCompressionHints{App: h.sock.App(), Areas: []mem.VARange{area}, Level: 99})
	if g.LKM.InvalidMsgs != 2 {
		t.Fatalf("InvalidMsgs = %d", g.LKM.InvalidMsgs)
	}
	// Re-hinting overrides.
	h.sock.Send(MsgCompressionHints{App: h.sock.App(), Areas: []mem.VARange{area}, Level: HintNone})
	h.proc.AS.Walk(area, func(va mem.VA, p mem.PFN) {
		if g.LKM.HintFor(p) != HintNone {
			t.Fatal("re-hint did not override")
		}
	})
	// Migration end clears hints.
	daemon.Notify(EvMigrationAborted{})
	if g.LKM.HintedPages != 0 {
		t.Fatal("hints survived migration end")
	}
	h.proc.AS.Walk(area, func(va mem.VA, p mem.PFN) {
		if g.LKM.HintFor(p) != HintDefault {
			t.Fatal("hint map not reset")
		}
	})
}

// TestRemapInsideSkipAreaAssumption documents the paper's §3.3.4 case-(2)
// assumption: pages in skip-over areas are not remapped (page sharing,
// compaction, in-guest migration) during migration. The LKM's PFN cache goes
// stale on a remap — the OLD frame keeps its cleared bit while the NEW frame
// is never cleared. The test demonstrates both halves: migration stays
// CORRECT for the new frame (it is transferred, conservatively), while the
// old frame's cleared bit persists until the area shrinks or migration ends
// — exactly the exposure the paper accepts by assumption.
func TestRemapInsideSkipAreaAssumption(t *testing.T) {
	g, _ := testGuest(t)
	h := newAppHarness(g, g.Dom.Clock(), "app")
	area := pagesAt(0x100000, 8)
	if err := h.proc.Alloc(area); err != nil {
		t.Fatal(err)
	}
	h.queryAreas = []mem.VARange{area}
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(EvMigrationBegin{})

	va := area.Start
	oldPFN, _ := h.proc.AS.Translate(va)
	newPFN, err := g.Frames.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	h.proc.AS.Remap(va, newPFN) // §3.3.4 case (2), assumed absent

	tb := g.LKM.TransferBitmap()
	if tb.Test(oldPFN) {
		t.Fatal("old frame's bit set without notification (unexpectedly clever LKM?)")
	}
	// The new frame is conservatively transferable: correctness holds.
	if !tb.Test(newPFN) {
		t.Fatal("new frame skip-marked without ever being reported")
	}
	// After migration ends, the stale clearance is wiped with everything
	// else.
	daemon.Notify(EvMigrationAborted{})
	if !tb.Test(oldPFN) {
		t.Fatal("stale clearance survived migration end")
	}
}

func TestDirtyKernelPageBounds(t *testing.T) {
	g, _ := testGuest(t)
	g.DirtyKernelPage(0) // fine
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-reservation kernel dirty did not panic")
		}
	}()
	g.DirtyKernelPage(KernelReservedPages)
}

func TestProcessWriteSegfaultPanics(t *testing.T) {
	g, _ := testGuest(t)
	p := g.NewProcess("app")
	defer func() {
		if recover() == nil {
			t.Fatal("write to unmapped VA did not panic")
		}
	}()
	p.Write(0xdead000)
}

func TestProcessWriteSetsDirty(t *testing.T) {
	g, _ := testGuest(t)
	p := g.NewProcess("app")
	r := pagesAt(0x100000, 4)
	if err := p.Alloc(r); err != nil {
		t.Fatal(err)
	}
	g.Dom.EnableLogDirty()
	if n := p.WriteRange(r); n != 4 {
		t.Fatalf("WriteRange wrote %d pages", n)
	}
	if g.Dom.DirtyCount() != 4 {
		t.Fatalf("DirtyCount = %d, want 4", g.Dom.DirtyCount())
	}
}

func TestStatusRendering(t *testing.T) {
	g, _ := testGuest(t)
	s := g.LKM.Status()
	if !strings.Contains(s, "INITIALIZED") || !strings.Contains(s, "apps: 0") {
		t.Fatalf("Status = %q", s)
	}
}
