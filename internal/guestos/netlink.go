// Package guestos implements the guest-side half of the application-assisted
// live migration framework (paper §3): the netlink-style message bus between
// the kernel and applications, the /proc control interface, and the Loadable
// Kernel Module (LKM) that owns the transfer bitmap, performs VA→PFN
// translation, and coordinates the migration workflow.
package guestos

import (
	"fmt"
	"strings"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/obs"
)

// AppID identifies an application process to the LKM, like a PID on the
// netlink socket.
type AppID int

// Netlink message types, mirroring Figure 4 of the paper.
type (
	// MsgQuerySkipAreas is multicast by the LKM when migration begins:
	// "skip-over areas?".
	MsgQuerySkipAreas struct{}

	// MsgPrepareSuspension is multicast by the LKM before the last
	// iteration: "prep. for suspension! skip-over areas?".
	MsgPrepareSuspension struct{}

	// MsgVMResumed is multicast by the LKM after the VM resumes at the
	// destination: "VM resumed!".
	MsgVMResumed struct{}

	// MsgReportAreas is an application's response to MsgQuerySkipAreas,
	// carrying the current VA ranges of its skip-over areas.
	MsgReportAreas struct {
		App   AppID
		Areas []mem.VARange
	}

	// MsgAreaShrunk notifies the LKM that VA ranges left a skip-over area
	// (paper §3.3.4: shrink must be reported immediately).
	MsgAreaShrunk struct {
		App  AppID
		Left []mem.VARange
	}

	// MsgSuspensionReady is an application's "ready for suspension!"
	// response, carrying the final VA ranges of its skip-over areas. For
	// JAVMM this is the post-GC young generation minus the occupied From
	// space (paper §4.3.2).
	MsgSuspensionReady struct {
		App   AppID
		Areas []mem.VARange
	}
)

// Socket is an application's endpoint on the netlink multicast group. The
// application receives LKM multicasts through the handler it subscribed with
// and sends messages to the kernel with Send.
type Socket struct {
	bus *Bus
	app AppID
}

// App returns the application ID bound to the socket.
func (s *Socket) App() AppID { return s.app }

// Send delivers a message from the application to the kernel (the LKM).
// Under fault injection a message can be silently dropped (netlink.loss) or
// delivered after a delay of virtual time (netlink.delay) — late messages
// arrive in whatever LKM state holds by then, exercising the workflow's
// invalid-message handling.
func (s *Socket) Send(msg any) error {
	if s.bus.kernel == nil {
		return fmt.Errorf("guestos: netlink send from app %d: no kernel receiver", s.app)
	}
	if s.bus.faults.Fire(faults.SiteNetlinkLoss) {
		s.bus.dropped++
		return nil
	}
	s.bus.tracer.Emit(obs.TrackNetlink, obs.KindNetlink, msgName(msg), nil,
		obs.Str("dir", "send"), obs.Int("app", int(s.app)))
	if r, ok := s.bus.faults.FireRule(faults.SiteNetlinkDelay); ok {
		s.bus.delayed++
		bus, app := s.bus, s.app
		bus.faults.After(r.Delay, func() {
			if bus.kernel != nil {
				bus.toKernel++
				bus.kernel(app, msg)
			}
		})
		return nil
	}
	s.bus.toKernel++
	s.bus.kernel(s.app, msg)
	return nil
}

// Close removes the socket from the multicast group. A closed socket's
// application stops receiving LKM queries — from the framework's point of
// view it behaves like an application that exited.
func (s *Socket) Close() {
	delete(s.bus.subs, s.app)
}

// Bus is the netlink multicast group shared by the LKM and applications
// (paper §3.3.1: bi-directional, asynchronous, capable of multicasting).
type Bus struct {
	subs     map[AppID]func(msg any)
	kernel   func(from AppID, msg any)
	nextID   AppID
	toKernel uint64
	toApps   uint64
	dropped  uint64
	delayed  uint64
	tracer   *obs.Tracer
	faults   *faults.Injector
}

// SetTracer attaches a tracer: every kernel-bound send and every multicast
// is recorded as a netlink.msg event on the netlink track, named after the
// message type. A nil tracer detaches.
func (b *Bus) SetTracer(t *obs.Tracer) { b.tracer = t }

// SetFaults attaches a fault injector: kernel-bound sends and individual
// multicast deliveries become subject to netlink.loss (dropped) and
// netlink.delay (late delivery) rules. A nil injector changes nothing.
func (b *Bus) SetFaults(inj *faults.Injector) { b.faults = inj }

// msgName renders a message's type name without the package prefix
// ("MsgReportAreas", not "guestos.MsgReportAreas").
func msgName(msg any) string {
	name := fmt.Sprintf("%T", msg)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// NewBus returns an empty multicast group.
func NewBus() *Bus {
	return &Bus{subs: make(map[AppID]func(msg any)), nextID: 1}
}

// BindKernel installs the kernel-side receiver (the LKM).
func (b *Bus) BindKernel(fn func(from AppID, msg any)) { b.kernel = fn }

// Subscribe adds an application to the multicast group and returns its
// socket. The handler receives every LKM multicast.
func (b *Bus) Subscribe(handler func(msg any)) *Socket {
	id := b.nextID
	b.nextID++
	b.subs[id] = handler
	return &Socket{bus: b, app: id}
}

// Multicast delivers msg to every subscribed application, in subscription
// order (deterministic iteration). Each delivery is individually subject to
// loss and delay faults, so one application can miss a query the others
// received.
func (b *Bus) Multicast(msg any) {
	b.tracer.Emit(obs.TrackNetlink, obs.KindNetlink, msgName(msg), nil,
		obs.Str("dir", "multicast"), obs.Int("subscribers", len(b.subs)))
	// Iterate in AppID order for determinism.
	for id := AppID(1); id < b.nextID; id++ {
		h, ok := b.subs[id]
		if !ok {
			continue
		}
		if b.faults.Fire(faults.SiteNetlinkLoss) {
			b.dropped++
			continue
		}
		if r, ok := b.faults.FireRule(faults.SiteNetlinkDelay); ok {
			b.delayed++
			h := h
			b.faults.After(r.Delay, func() {
				b.toApps++
				h(msg)
			})
			continue
		}
		b.toApps++
		h(msg)
	}
}

// Subscribers returns the number of live subscriptions.
func (b *Bus) Subscribers() int { return len(b.subs) }

// Stats returns (messages to kernel, multicast deliveries to apps).
func (b *Bus) Stats() (toKernel, toApps uint64) { return b.toKernel, b.toApps }

// FaultStats returns (messages dropped, messages delayed) by injection.
func (b *Bus) FaultStats() (dropped, delayed uint64) { return b.dropped, b.delayed }
