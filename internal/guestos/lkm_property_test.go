package guestos

import (
	"math/rand"
	"testing"
	"time"

	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// TestLKMRandomizedInvariants drives the LKM with randomized daemon events
// and application messages — including out-of-order and duplicate ones — and
// checks after every step:
//
//  1. cleared transfer bits == live PFN-cache entries (the §3.3.4
//     bookkeeping never leaks or double-counts),
//  2. the state machine stays in a defined state,
//  3. after resume or abort, the bitmap is fully set and the state is
//     INITIALIZED.
func TestLKMRandomizedInvariants(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 977))
		clock := simclock.New()
		dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(16384), 2)
		g := NewGuest(dom, LKMConfig{Clock: clock})

		// Two model applications with their own mapped regions.
		type modelApp struct {
			proc *Process
			sock *Socket
			// mapped pieces the app may report/shrink, keyed by range.
			pieces []mem.VARange
		}
		var apps []*modelApp
		for i := 0; i < 2; i++ {
			a := &modelApp{proc: g.NewProcess("app")}
			a.sock = g.LKM.RegisterApp(a.proc, func(any) {})
			base := mem.VA(0x1000000 * (i + 1))
			for j := 0; j < 4; j++ {
				r := mem.VARange{
					Start: base + mem.VA(j*0x100000),
					End:   base + mem.VA(j*0x100000+(16+rng.Intn(48))*mem.PageSize),
				}
				if err := a.proc.Alloc(r); err != nil {
					t.Fatal(err)
				}
				a.pieces = append(a.pieces, r)
			}
			apps = append(apps, a)
		}

		daemon := g.LKM.DaemonEndpoint()
		daemon.Bind(func(any) {})

		check := func(step int) {
			tb := g.LKM.TransferBitmap()
			cleared := int(tb.Len() - tb.Count())
			if cleared != g.LKM.CacheEntries() {
				t.Fatalf("trial %d step %d: cleared bits %d != cache entries %d (state %v)",
					trial, step, cleared, g.LKM.CacheEntries(), g.LKM.State())
			}
			switch g.LKM.State() {
			case StateInitialized, StateMigrationStarted, StateEnteringLastIter,
				StateSuspensionReady, StateResumed:
			default:
				t.Fatalf("trial %d step %d: undefined state %v", trial, step, g.LKM.State())
			}
		}

		for step := 0; step < 400; step++ {
			a := apps[rng.Intn(len(apps))]
			piece := a.pieces[rng.Intn(len(a.pieces))]
			switch rng.Intn(10) {
			case 0:
				daemon.Notify(EvMigrationBegin{})
			case 1:
				daemon.Notify(EvEnteringLastIter{})
			case 2:
				daemon.Notify(EvVMResumed{})
			case 3:
				daemon.Notify(EvMigrationAborted{})
			case 4, 5:
				a.sock.Send(MsgReportAreas{App: a.sock.App(), Areas: []mem.VARange{piece}})
			case 6:
				// Shrink a random prefix of a piece.
				cut := mem.VARange{
					Start: piece.Start,
					End:   piece.Start + mem.VA((1+rng.Intn(8))*mem.PageSize),
				}
				a.sock.Send(MsgAreaShrunk{App: a.sock.App(), Left: []mem.VARange{cut}})
			case 7:
				a.sock.Send(MsgSuspensionReady{App: a.sock.App(), Areas: []mem.VARange{piece}})
			case 8:
				clock.Advance(time.Duration(rng.Intn(2000)) * time.Millisecond)
			case 9:
				// Duplicate-report storm (the G1 re-reporting pattern).
				for k := 0; k < 3; k++ {
					a.sock.Send(MsgReportAreas{App: a.sock.App(), Areas: []mem.VARange{piece}})
				}
			}
			check(step)
		}

		// Drive to a clean end from any state.
		daemon.Notify(EvMigrationAborted{})
		tb := g.LKM.TransferBitmap()
		if tb.Count() != tb.Len() {
			t.Fatalf("trial %d: bitmap not fully set after abort", trial)
		}
		if g.LKM.State() != StateInitialized {
			t.Fatalf("trial %d: state %v after abort", trial, g.LKM.State())
		}
		if g.LKM.CacheEntries() != 0 {
			t.Fatalf("trial %d: cache not empty after abort", trial)
		}
	}
}

// TestLKMAbortFromEveryState checks the abort path out of each migration
// stage.
func TestLKMAbortFromEveryState(t *testing.T) {
	build := func() (*Guest, *hypervisor.Endpoint, *Socket, *Process) {
		clock := simclock.New()
		dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(4096), 1)
		g := NewGuest(dom, LKMConfig{Clock: clock})
		proc := g.NewProcess("app")
		r := mem.VARange{Start: 0x100000, End: 0x100000 + 32*mem.PageSize}
		if err := proc.Alloc(r); err != nil {
			t.Fatal(err)
		}
		var sock *Socket
		sock = g.LKM.RegisterApp(proc, func(msg any) {
			if _, ok := msg.(MsgQuerySkipAreas); ok {
				sock.Send(MsgReportAreas{App: sock.App(), Areas: []mem.VARange{r}})
			}
		})
		daemon := g.LKM.DaemonEndpoint()
		daemon.Bind(func(any) {})
		return g, daemon, sock, proc
	}

	// Abort from MIGRATION_STARTED.
	g, daemon, _, _ := build()
	daemon.Notify(EvMigrationBegin{})
	daemon.Notify(EvMigrationAborted{})
	if g.LKM.State() != StateInitialized || g.LKM.TransferBitmap().Count() != g.LKM.TransferBitmap().Len() {
		t.Fatal("abort from MIGRATION_STARTED did not reset")
	}

	// Abort from ENTERING_LAST_ITER (app never becomes ready).
	g, daemon, _, _ = build()
	daemon.Notify(EvMigrationBegin{})
	daemon.Notify(EvEnteringLastIter{})
	daemon.Notify(EvMigrationAborted{})
	if g.LKM.State() != StateInitialized {
		t.Fatal("abort from ENTERING_LAST_ITER did not reset")
	}
	// The prepare timer must be dead: advancing past the timeout changes
	// nothing.
	before := g.LKM.FallbackApps
	g.Dom.Clock().Advance(30 * time.Second)
	if g.LKM.FallbackApps != before {
		t.Fatal("prepare timer fired after abort")
	}

	// Abort in INITIALIZED is invalid.
	g, daemon, _, _ = build()
	daemon.Notify(EvMigrationAborted{})
	if g.LKM.InvalidMsgs != 1 {
		t.Fatalf("InvalidMsgs = %d", g.LKM.InvalidMsgs)
	}
}
