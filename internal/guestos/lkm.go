package guestos

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// State is the LKM's workflow state (paper §3.3.5 and Figure 4). The LKM
// transitions between states based on messages exchanged with the migration
// daemon and the applications.
type State int

// LKM workflow states.
const (
	StateInitialized State = iota
	StateMigrationStarted
	StateEnteringLastIter
	StateSuspensionReady
	StateResumed
)

// String renders the state name as in the paper's Figure 4.
func (s State) String() string {
	switch s {
	case StateInitialized:
		return "INITIALIZED"
	case StateMigrationStarted:
		return "MIGRATION_STARTED"
	case StateEnteringLastIter:
		return "ENTERING_LAST_ITER"
	case StateSuspensionReady:
		return "SUSPENSION_READY"
	case StateResumed:
		return "RESUMED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Event-channel messages between the migration daemon and the LKM.
type (
	// EvMigrationBegin is sent by the daemon when migration starts.
	EvMigrationBegin struct{}
	// EvEnteringLastIter is sent before the daemon wants to pause the VM.
	EvEnteringLastIter struct{}
	// EvVMResumed is sent after the VM resumes at the destination.
	EvVMResumed struct{}
	// EvMigrationAborted is sent when a migration is cancelled mid-flight:
	// the VM keeps running at the source. The LKM releases applications
	// exactly as on resumption and resets for the next migration.
	EvMigrationAborted struct{}
	// EvSuspensionReady is sent by the LKM once the final transfer bitmap
	// update is done: "ask migration to pause VM". FinalUpdate is the
	// virtual time the update took (paper §5.3 reports <300 µs); Fallbacks
	// counts applications that timed out and had their skip-over areas
	// restored to full transfer (paper §6, security discussion).
	EvSuspensionReady struct {
		FinalUpdate time.Duration
		Fallbacks   int
	}
)

// LKMConfig tunes the LKM.
type LKMConfig struct {
	// Clock is the virtual clock (required).
	Clock *simclock.Clock
	// WalkCostPerPage is the virtual cost of one page-table-walk step in
	// the final bitmap update. Default 100 ns.
	WalkCostPerPage time.Duration
	// CacheCostPerPage is the virtual cost of one PFN-cache operation in
	// the final bitmap update. Default 100 ns.
	CacheCostPerPage time.Duration
	// PrepareTimeout bounds how long the LKM waits for applications to
	// become suspension-ready before falling back to transferring their
	// skip-over areas in full. Zero means the 10 s default; a negative
	// value disables the timeout entirely, recreating the unbounded-delay
	// hazard the paper's §6 warns about (tests use this).
	PrepareTimeout time.Duration

	// FinalUpdateRewalk selects the alternative final-update design the
	// paper considered and deferred (§3.3.4): applications do not notify
	// shrinkage; instead the final update re-walks the page tables of ALL
	// skip-over areas and diffs against the PFNs found in the first
	// update. Slower final update, no mid-migration shrink traffic. The
	// migration engine must then run its conservative last iteration
	// (migration.Config.ConservativeLastIter) to stay correct.
	FinalUpdateRewalk bool
}

func (c *LKMConfig) fillDefaults() {
	if c.WalkCostPerPage == 0 {
		c.WalkCostPerPage = 100 * time.Nanosecond
	}
	if c.CacheCostPerPage == 0 {
		c.CacheCostPerPage = 100 * time.Nanosecond
	}
	if c.PrepareTimeout == 0 {
		c.PrepareTimeout = 10 * time.Second
	}
}

// appState is the LKM's memory of one application's skip-over areas
// (paper §3.3.4: "it remembers the VA range" and "caches PFNs as they are
// found in a skip-over area").
type appState struct {
	proc     *Process
	areas    []mem.VARange      // page-aligned remembered areas
	cache    map[mem.VA]mem.PFN // PFN cache: skip-page VA -> PFN
	ready    bool               // responded suspension-ready this migration
	hasAreas bool               // reported at least one non-empty area
}

// LKM is the loadable kernel module of the framework: communication proxy,
// semantic-gap bridge and transfer-bitmap owner (paper Figure 2).
type LKM struct {
	guest *Guest
	cfg   LKMConfig
	ec    *hypervisor.EventChannel
	state State

	transfer *mem.Bitmap // set = transfer if dirty; cleared = skip

	apps map[AppID]*appState

	prepareTimer *simclock.Timer

	// Statistics for experiment reporting and tests.
	CacheHighWater  int           // max live PFN-cache entries
	FinalUpdates    int           // final bitmap updates performed
	LastFinalUpdate time.Duration // duration of the most recent final update
	FallbackApps    int           // apps that timed out during prepare (total)
	InvalidMsgs     int           // messages dropped for wrong state/app
	ShrinkEvents    int           // MsgAreaShrunk handled
	IgnoredShrinks  int           // MsgAreaShrunk ignored in rewalk mode
	HintedPages     int           // pages carrying a non-default compression hint
	LostHandshakes  int           // suspension-ready notifications swallowed by fault injection

	hints         []uint8 // per-page compression hints (§6 extension)
	lastFallbacks int     // stragglers in the current prepare window

	tracer  *obs.Tracer
	metrics *obs.Metrics
	faults  *faults.Injector
}

// SetFaults attaches a fault injector: an lkm.handshake rule swallows the
// suspension-ready notification on its way to the migration daemon, so the
// engine's handshake wait times out and the run degrades to vanilla
// pre-copy. A nil injector changes nothing.
func (l *LKM) SetFaults(inj *faults.Injector) { l.faults = inj }

// SetObs attaches a tracer and metrics registry. State transitions are
// emitted as lkm.state events on the LKM track (named after the state being
// entered, as in the paper's Figure 4); final updates, fallbacks and the
// PFN-cache size are recorded as metrics. Either argument may be nil.
func (l *LKM) SetObs(t *obs.Tracer, m *obs.Metrics) {
	l.tracer = t
	l.metrics = m
}

// setState performs a workflow transition and traces it.
func (l *LKM) setState(next State) {
	prev := l.state
	l.state = next
	l.tracer.Emit(obs.TrackLKM, obs.KindLKMState, next.String(), nil,
		obs.Str("from", prev.String()), obs.Str("to", next.String()))
}

// loadLKM is called by NewGuest: the LKM is loaded when the guest is created,
// in preparation for possible migration (paper §3.3.5, "Before migration").
func loadLKM(g *Guest, cfg LKMConfig) *LKM {
	if cfg.Clock == nil {
		panic("guestos: LKMConfig.Clock is required")
	}
	cfg.fillDefaults()
	l := &LKM{
		guest:    g,
		cfg:      cfg,
		ec:       hypervisor.NewEventChannel(),
		state:    StateInitialized,
		transfer: mem.NewBitmap(g.Dom.NumPages()),
		apps:     make(map[AppID]*appState),
	}
	l.transfer.SetAll() // default: transfer every dirty page (§3.3.4)
	l.ec.Guest().Bind(l.onDaemonEvent)
	g.Bus.BindKernel(l.onAppMessage)
	return l
}

// DaemonEndpoint returns the dom0 side of the LKM's event channel. The
// migration daemon binds its handler here and notifies the LKM through it.
func (l *LKM) DaemonEndpoint() *hypervisor.Endpoint { return l.ec.Daemon() }

// DaemonProtocol adapts the LKM's five-state workflow (Figure 4) to the
// migration engine's SuspensionProtocol stage: the daemon-side half of the
// event-channel handshake, packaged so the engine needs no knowledge of the
// LKM's event types. One value serves one migration; Protocol() returns a
// fresh adapter each time.
type DaemonProtocol struct {
	lkm   *LKM
	ep    *hypervisor.Endpoint
	ready bool
	ev    EvSuspensionReady
}

// Protocol returns the LKM's suspension protocol for one migration. The
// returned value structurally satisfies migration.SuspensionProtocol.
func (l *LKM) Protocol() *DaemonProtocol {
	return &DaemonProtocol{lkm: l, ep: l.DaemonEndpoint()}
}

// Begin binds the daemon-side readiness handler, shares the transfer bitmap
// and notifies the LKM that migration has started.
func (p *DaemonProtocol) Begin() *mem.Bitmap {
	p.ready = false
	p.ev = EvSuspensionReady{}
	p.ep.Bind(func(msg any) {
		if ev, ok := msg.(EvSuspensionReady); ok {
			// The handshake fault models a wedged daemon-side notification
			// path (§4.2's non-responsive contingency): the LKM believes it
			// reported readiness, but the engine never hears it.
			if p.lkm.faults.Fire(faults.SiteLKMHandshake) {
				p.lkm.LostHandshakes++
				return
			}
			p.ready = true
			p.ev = ev
		}
	})
	transfer := p.lkm.TransferBitmap()
	p.ep.Notify(EvMigrationBegin{})
	return transfer
}

// EnterLastIter tells the LKM pre-copy has converged: applications should
// prepare for suspension (enforced GC, final skip-area reports).
func (p *DaemonProtocol) EnterLastIter() { p.ep.Notify(EvEnteringLastIter{}) }

// Ready reports whether the LKM has signalled suspension-readiness (the
// final bitmap update is done).
func (p *DaemonProtocol) Ready() bool { return p.ready }

// Outcome returns the final bitmap update's duration and the number of
// applications that timed out during prepare. Valid once Ready is true.
func (p *DaemonProtocol) Outcome() (time.Duration, int) {
	return p.ev.FinalUpdate, p.ev.Fallbacks
}

// Resumed tells the LKM the VM is active at the destination: release the
// held applications and reset for the next migration.
func (p *DaemonProtocol) Resumed() { p.ep.Notify(EvVMResumed{}) }

// Aborted tells the LKM the migration was cancelled: release applications
// exactly as on resumption and reset.
func (p *DaemonProtocol) Aborted() { p.ep.Notify(EvMigrationAborted{}) }

// State returns the current workflow state.
func (l *LKM) State() State { return l.state }

// TransferBitmap exposes the transfer bitmap to the migration daemon (shared
// when migration begins, paper §3.3.3). The daemon must treat it as
// read-only.
func (l *LKM) TransferBitmap() *mem.Bitmap { return l.transfer }

// BitmapBytes returns the transfer bitmap's memory cost: one bit per page.
func (l *LKM) BitmapBytes() uint64 { return (l.guest.Dom.NumPages() + 7) / 8 }

// ArmDirtyEpoch starts a new dirty epoch in the hypervisor on the daemon's
// behalf and returns its number. abortRun calls this at the instant the
// source VM resumes, so a later Resume can ask exactly which pages the guest
// wrote while the migration was interrupted.
func (l *LKM) ArmDirtyEpoch() uint64 { return l.guest.Dom.BeginDirtyEpoch() }

// DirtySince returns the pages the guest dirtied since epoch was armed, or
// ok=false when the epoch is stale (a different migration armed a newer one)
// or was never armed — in which case the resuming daemon must distrust every
// page.
func (l *LKM) DirtySince(epoch uint64) (*mem.Bitmap, bool) {
	return l.guest.Dom.DirtySince(epoch)
}

// CacheBytes returns the PFN cache's peak memory cost at 4 bytes per entry
// (paper §3.3.4: "1 MB per GB of skip-over area with 4-byte entries").
func (l *LKM) CacheBytes() uint64 { return uint64(l.CacheHighWater) * 4 }

// CacheEntries returns the current number of live PFN-cache entries across
// all applications. The LKM maintains the invariant that every cleared
// transfer bit has exactly one cache entry (and vice versa); tests verify it.
func (l *LKM) CacheEntries() int {
	var total int
	for _, st := range l.apps {
		total += len(st.cache)
	}
	return total
}

// RegisterApp subscribes an application to the migration multicast group,
// associating its process (whose page tables the LKM will walk) with the
// socket. handler receives the LKM's multicasts.
func (l *LKM) RegisterApp(proc *Process, handler func(msg any)) *Socket {
	sock := l.guest.Bus.Subscribe(handler)
	l.apps[sock.App()] = &appState{
		proc:  proc,
		cache: make(map[mem.VA]mem.PFN),
	}
	return sock
}

// --- daemon-side events -----------------------------------------------

func (l *LKM) onDaemonEvent(msg any) {
	switch msg.(type) {
	case EvMigrationBegin:
		l.onMigrationBegin()
	case EvEnteringLastIter:
		l.onEnteringLastIter()
	case EvVMResumed:
		l.onVMResumed()
	case EvMigrationAborted:
		l.onAborted()
	default:
		l.InvalidMsgs++
	}
}

// onAborted resets the LKM after a cancelled migration. Applications receive
// the same "migration over" multicast as on resumption: whatever preparation
// they performed (purges, enforced GCs) stands, and execution continues at
// the source.
func (l *LKM) onAborted() {
	if l.state == StateInitialized {
		l.InvalidMsgs++
		return
	}
	if l.prepareTimer != nil {
		l.prepareTimer.Stop()
		l.prepareTimer = nil
	}
	l.tracer.Emit(obs.TrackLKM, obs.KindLKMAbort, "migration-aborted", nil,
		obs.Str("state", l.state.String()))
	l.state = StateSuspensionReady // satisfy onVMResumed's precondition (not a real transition, untraced)
	l.onVMResumed()
}

func (l *LKM) onMigrationBegin() {
	if l.state != StateInitialized {
		l.InvalidMsgs++
		return
	}
	l.setState(StateMigrationStarted)
	// Query running applications for skip-over areas; responses arrive as
	// MsgReportAreas and trigger the first transfer bitmap update.
	l.guest.Bus.Multicast(MsgQuerySkipAreas{})
}

func (l *LKM) onEnteringLastIter() {
	if l.state != StateMigrationStarted {
		l.InvalidMsgs++
		return
	}
	l.setState(StateEnteringLastIter)
	l.LastFinalUpdate = 0
	l.lastFallbacks = 0
	l.guest.Bus.Multicast(MsgPrepareSuspension{})
	if l.state != StateEnteringLastIter {
		// Applications that responded synchronously during the multicast
		// already completed the prepare stage.
		return
	}
	if l.allReady() {
		l.completePrepare()
		return
	}
	if l.cfg.PrepareTimeout > 0 {
		l.prepareTimer = l.cfg.Clock.AfterFunc(l.cfg.PrepareTimeout, func(time.Duration) {
			l.onPrepareTimeout()
		})
	}
}

func (l *LKM) onVMResumed() {
	if l.state != StateSuspensionReady {
		l.InvalidMsgs++
		return
	}
	l.setState(StateResumed)
	l.guest.Bus.Multicast(MsgVMResumed{})
	// Go back to INITIALIZED in preparation for the next migration
	// (paper Figure 4): forget areas, drop caches, reset the bitmap.
	for _, st := range l.apps {
		st.areas = nil
		st.cache = make(map[mem.VA]mem.PFN)
		st.ready = false
		st.hasAreas = false
	}
	l.transfer.SetAll()
	l.resetHints()
	l.setState(StateInitialized)
}

// --- application-side messages ------------------------------------------

func (l *LKM) onAppMessage(from AppID, msg any) {
	st, ok := l.apps[from]
	if !ok {
		l.InvalidMsgs++
		return
	}
	switch m := msg.(type) {
	case MsgReportAreas:
		if l.state != StateMigrationStarted {
			l.InvalidMsgs++
			return
		}
		l.firstUpdate(st, m.Areas)
	case MsgAreaShrunk:
		if l.cfg.FinalUpdateRewalk {
			// Alternative design: shrink is discovered by the final
			// re-walk instead (paper §3.3.4).
			l.IgnoredShrinks++
			return
		}
		// Shrink notifications are honoured while migration is under way.
		// Once the app is suspension-ready its areas must not shrink
		// (paper §3.3.4); such a message indicates a misbehaving app and
		// is dropped — the pages would already be protected by timeouts.
		if (l.state != StateMigrationStarted && l.state != StateEnteringLastIter) || st.ready {
			l.InvalidMsgs++
			return
		}
		l.ShrinkEvents++
		l.shrink(st, m.Left)
	case MsgCompressionHints:
		// Hints are advisory metadata and accepted during live migration
		// stages (§6 extension).
		if l.state != StateMigrationStarted && l.state != StateEnteringLastIter {
			l.InvalidMsgs++
			return
		}
		l.applyHints(st, m.Areas, m.Level)
	case MsgSuspensionReady:
		if l.state != StateEnteringLastIter || st.ready {
			l.InvalidMsgs++
			return
		}
		st.ready = true
		l.finalUpdateForApp(st, m.Areas)
		if l.allReady() {
			l.completePrepare()
		}
	default:
		l.InvalidMsgs++
	}
}

// allReady reports whether every application that contributed skip-over
// areas has responded suspension-ready.
func (l *LKM) allReady() bool {
	for _, st := range l.apps {
		if st.hasAreas && !st.ready {
			return false
		}
	}
	return true
}

// completePrepare finishes the ENTERING_LAST_ITER stage: the final transfer
// bitmap update is complete, so ask the migration daemon to pause the VM.
func (l *LKM) completePrepare() {
	if l.prepareTimer != nil {
		l.prepareTimer.Stop()
		l.prepareTimer = nil
	}
	l.setState(StateSuspensionReady)
	l.FinalUpdates++
	if m := l.metrics; m != nil {
		m.Counter("lkm.final_updates").Inc()
		m.Counter("lkm.fallback_apps").Add(int64(l.lastFallbacks))
		m.Counter("lkm.final_update_total_ns").AddDuration(l.LastFinalUpdate)
		m.Histogram("lkm.final_update_ns").Observe(float64(l.LastFinalUpdate))
	}
	l.ec.Guest().Notify(EvSuspensionReady{
		FinalUpdate: l.LastFinalUpdate,
		Fallbacks:   l.lastFallbacks,
	})
}

// onPrepareTimeout handles applications that never became suspension-ready:
// their skip-over areas are restored to full transfer so migration stays
// correct, and migration proceeds without them (paper §6 recommends exactly
// this timeout discipline).
func (l *LKM) onPrepareTimeout() {
	if l.state != StateEnteringLastIter {
		return
	}
	for _, st := range l.apps {
		if st.hasAreas && !st.ready {
			l.restoreAll(st)
			st.ready = true
			l.FallbackApps++
			l.lastFallbacks++
		}
	}
	l.completePrepare()
}

// --- transfer bitmap updates ---------------------------------------------

// firstUpdate performs the first transfer bitmap update for one application
// (paper §3.3.4): align each reported area inward to page boundaries, find
// its PFNs by page-table walks, clear their transfer bits, and cache the
// PFNs for later shrink handling.
func (l *LKM) firstUpdate(st *appState, areas []mem.VARange) {
	for _, a := range areas {
		aligned := a.PageAlignInward()
		if aligned.Empty() {
			continue
		}
		st.areas = append(st.areas, aligned)
		st.hasAreas = true
		st.proc.AS.Walk(aligned, func(va mem.VA, p mem.PFN) {
			l.transfer.Clear(p)
			st.cache[va] = p
		})
	}
	l.noteCacheSize(st)
}

// shrink handles VA ranges leaving a skip-over area: set the transfer bits
// of the departing pages immediately, using the PFN cache rather than the
// page tables (the frames may already be freed), and forget them.
func (l *LKM) shrink(st *appState, left []mem.VARange) {
	for _, r := range left {
		// Align outward: if any byte of a page left the area, the page can
		// no longer be skipped in its entirety.
		start := r.Start.PageBase()
		end := (r.End + mem.PageMask).PageBase()
		for va := start; va < end; va += mem.PageSize {
			if p, ok := st.cache[va]; ok {
				l.transfer.Set(p)
				delete(st.cache, va)
			}
		}
		// Update the remembered areas.
		var next []mem.VARange
		for _, a := range st.areas {
			next = append(next, a.Subtract(mem.VARange{Start: start, End: end})...)
		}
		st.areas = next
	}
}

// finalUpdateForApp performs this application's share of the final transfer
// bitmap update (paper §3.3.4): expanded space is walked and cleared;
// shrunk space is restored from the PFN cache. The virtual cost of the walk
// and cache operations is accumulated into LastFinalUpdate; the migration
// daemon charges it to downtime.
func (l *LKM) finalUpdateForApp(st *appState, areas []mem.VARange) {
	var final []mem.VARange
	for _, a := range areas {
		if aligned := a.PageAlignInward(); !aligned.Empty() {
			final = append(final, aligned)
		}
	}

	var walked, cacheOps int

	if l.cfg.FinalUpdateRewalk {
		// Re-walk every final area from scratch and diff against the PFNs
		// remembered since the first update.
		fresh := make(map[mem.VA]mem.PFN, len(st.cache))
		for _, a := range final {
			st.proc.AS.Walk(a, func(va mem.VA, pfn mem.PFN) {
				fresh[va] = pfn
				l.transfer.Clear(pfn)
				walked++
			})
		}
		for va, pfn := range st.cache {
			cacheOps++
			if _, still := fresh[va]; !still {
				l.transfer.Set(pfn)
			}
		}
		st.cache = fresh
		st.areas = final
		l.noteCacheSize(st)
		const baseCompareCost = 2 * time.Microsecond
		l.LastFinalUpdate += baseCompareCost +
			time.Duration(walked)*l.cfg.WalkCostPerPage +
			time.Duration(cacheOps)*l.cfg.CacheCostPerPage
		return
	}

	// Expanded space: pages in the new areas not remembered from before.
	for _, n := range final {
		pieces := []mem.VARange{n}
		for _, o := range st.areas {
			var next []mem.VARange
			for _, p := range pieces {
				next = append(next, p.Subtract(o)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			st.proc.AS.Walk(p, func(va mem.VA, pfn mem.PFN) {
				l.transfer.Clear(pfn)
				st.cache[va] = pfn
				walked++
			})
		}
	}

	// Shrunk space: remembered pages no longer in the new areas.
	for _, o := range st.areas {
		pieces := []mem.VARange{o}
		for _, n := range final {
			var next []mem.VARange
			for _, p := range pieces {
				next = append(next, p.Subtract(n)...)
			}
			pieces = next
		}
		for _, p := range pieces {
			for va := p.Start; va < p.End; va += mem.PageSize {
				if pfn, ok := st.cache[va]; ok {
					l.transfer.Set(pfn)
					delete(st.cache, va)
					cacheOps++
				}
			}
		}
	}

	st.areas = final
	l.noteCacheSize(st)
	// Each app's share costs a fixed comparison overhead (querying and
	// diffing the reported ranges) plus per-page walk and cache work. The
	// paper reports the final update completing within 300 µs (§5.3).
	const baseCompareCost = 2 * time.Microsecond
	l.LastFinalUpdate += baseCompareCost +
		time.Duration(walked)*l.cfg.WalkCostPerPage +
		time.Duration(cacheOps)*l.cfg.CacheCostPerPage
}

// restoreAll restores full transfer for an application's entire skip-over
// set — the straggler fallback.
func (l *LKM) restoreAll(st *appState) {
	for va, p := range st.cache {
		l.transfer.Set(p)
		delete(st.cache, va)
	}
	st.areas = nil
}

func (l *LKM) noteCacheSize(st *appState) {
	var total int
	for _, s := range l.apps {
		total += len(s.cache)
	}
	_ = st
	if total > l.CacheHighWater {
		l.CacheHighWater = total
	}
	l.metrics.Gauge("lkm.cache_entries").Set(float64(total))
}
