package guestos

import "javmm/internal/mem"

// Compression hints, the §6 extension: "To exploit compression at a lower
// CPU cost, we are extending the framework to compress only the memory pages
// that have not been skipped over. The transfer bitmap can use multiple bits
// per VM memory page to indicate the suitable compression methods to apply."
//
// The LKM keeps a per-page hint level next to the transfer bitmap.
// Applications mark areas whose content they know to be compressible (e.g.
// a JVM's old generation: long-lived, pointer- and string-heavy data) or
// explicitly incompressible (already-compressed media buffers). The
// migration engine consults the hints for pages it actually sends.
const (
	// HintDefault applies the engine's uniform policy.
	HintDefault uint8 = iota
	// HintFast marks lightly-compressible content: cheap algorithm, modest
	// ratio.
	HintFast
	// HintStrong marks highly-compressible content: expensive algorithm,
	// strong ratio.
	HintStrong
	// HintNone marks incompressible content: send raw, skip the CPU.
	HintNone
)

// MsgCompressionHints is sent by an application to label areas of its
// memory with a compression hint.
type MsgCompressionHints struct {
	App   AppID
	Areas []mem.VARange
	Level uint8
}

// hintsInit lazily allocates the hint map (one byte per page — the
// simulator's rendering of "multiple bits per page").
func (l *LKM) hintsInit() {
	if l.hints == nil {
		l.hints = make([]uint8, l.guest.Dom.NumPages())
	}
}

// applyHints records a hint for every mapped page of the app's areas.
func (l *LKM) applyHints(st *appState, areas []mem.VARange, level uint8) {
	if level > HintNone {
		l.InvalidMsgs++
		return
	}
	l.hintsInit()
	for _, a := range areas {
		st.proc.AS.Walk(a.PageAlignInward(), func(va mem.VA, p mem.PFN) {
			l.hints[p] = level
		})
	}
	l.HintedPages = 0
	for _, h := range l.hints {
		if h != HintDefault {
			l.HintedPages++
		}
	}
}

// HintFor returns the compression hint for page p (HintDefault when no app
// hinted it). The migration engine calls this for pages it sends.
func (l *LKM) HintFor(p mem.PFN) uint8 {
	if l.hints == nil {
		return HintDefault
	}
	return l.hints[p]
}

// resetHints clears the hint map at migration end.
func (l *LKM) resetHints() {
	l.hints = nil
	l.HintedPages = 0
}
