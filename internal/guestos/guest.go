package guestos

import (
	"fmt"

	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/pagetable"
)

// Guest ties a hypervisor domain to its in-guest operating system state: the
// physical frame allocator, the process table, the netlink bus and the LKM.
// It is the "Linux 3.1 guest" of the paper's prototype (§3.3).
type Guest struct {
	Dom    *hypervisor.Domain
	Frames *pagetable.FrameAllocator
	Bus    *Bus
	LKM    *LKM

	procs []*Process
}

// KernelReservedPages is the number of frames carved out at boot for the
// guest kernel image and static data. These pages are mapped and occasionally
// dirtied but never belong to any skip-over area.
const KernelReservedPages = 4096 // 16 MiB

// NewGuest boots a guest OS inside dom: reserves kernel frames, creates the
// netlink bus and loads the LKM with the given configuration.
func NewGuest(dom *hypervisor.Domain, cfg LKMConfig) *Guest {
	frames := pagetable.NewFrameAllocator(dom.NumPages())
	if dom.NumPages() > KernelReservedPages {
		frames.Reserve(0, KernelReservedPages)
	}
	g := &Guest{
		Dom:    dom,
		Frames: frames,
		Bus:    NewBus(),
	}
	g.LKM = loadLKM(g, cfg)
	return g
}

// NewProcess creates a process with an empty address space.
func (g *Guest) NewProcess(name string) *Process {
	p := &Process{
		guest: g,
		AS:    pagetable.NewAddressSpace(g.Frames),
		name:  name,
	}
	g.procs = append(g.procs, p)
	return p
}

// Processes returns the process table.
func (g *Guest) Processes() []*Process { return g.procs }

// DirtyKernelPage models background kernel activity dirtying reserved frame
// i (timers, slab, network buffers). These writes keep vanilla migration
// honest: even an idle guest never converges to zero dirty pages.
func (g *Guest) DirtyKernelPage(i uint64) {
	if i >= KernelReservedPages || i >= g.Dom.NumPages() {
		panic(fmt.Sprintf("guestos: DirtyKernelPage(%d) outside kernel reservation", i))
	}
	g.Dom.WritePage(mem.PFN(i))
}

// Process is a user process in the guest: a named address space whose writes
// flow through the domain so log-dirty tracking observes them.
type Process struct {
	guest *Guest
	AS    *pagetable.AddressSpace
	name  string
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Guest returns the owning guest.
func (p *Process) Guest() *Guest { return p.guest }

// Alloc maps fresh physical frames behind the page-aligned VA range r, like
// mmap(MAP_ANONYMOUS) with every page touched. As a real kernel does, each
// frame is zeroed before the process sees it — which is also what keeps
// migration honest when frames recycle out of skip-over areas: the zeroing
// write dirties the page, so its (new) content reaches the destination
// instead of whatever the frame held while it was skippable.
func (p *Process) Alloc(r mem.VARange) error {
	if err := p.AS.MapRange(r); err != nil {
		return err
	}
	p.WriteRange(r)
	return nil
}

// Free unmaps the page-aligned VA range r and releases its frames, like
// munmap. It returns the number of pages freed. After Free, walks over r
// find nothing — the §3.3.4 property the PFN cache exists for.
func (p *Process) Free(r mem.VARange) uint64 {
	return p.AS.UnmapRange(r)
}

// Write stores to the page containing va. Unmapped addresses panic (a
// segfault would crash the workload; in the simulator it is always a bug).
func (p *Process) Write(va mem.VA) {
	pfn, ok := p.AS.Translate(va)
	if !ok {
		panic(fmt.Sprintf("guestos: process %q segfault at %#x", p.name, uint64(va)))
	}
	p.guest.Dom.WritePage(pfn)
}

// WriteRange stores to every whole page of r (aligned inward). It returns
// the number of pages written.
func (p *Process) WriteRange(r mem.VARange) uint64 {
	r = r.PageAlignInward()
	var n uint64
	for va := r.Start; va < r.End; va += mem.PageSize {
		p.Write(va)
		n++
	}
	return n
}
