package netsim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"javmm/internal/mem"
)

// The page-stream wire protocol carries migrated pages between real
// processes (or goroutines) over any io.ReadWriter, typically a TCP
// connection. Integration tests use it with byte-backed page stores to check
// end-to-end content equality of a migration — the property the simulated
// experiments assert via version stamps.
//
// Frame layout (big-endian):
//
//	kind   uint8   1 = page, 2 = end-of-iteration, 3 = end-of-stream
//	pfn    uint64  (page frames only)
//	length uint32  payload length (page frames only)
//	payload bytes
const (
	framePage         = 1
	frameEndIteration = 2
	frameEndStream    = 3
)

// A Frame is one decoded protocol message.
type Frame struct {
	Kind    uint8
	PFN     mem.PFN
	Payload []byte
}

// PageWriter encodes frames onto a stream.
type PageWriter struct {
	w *bufio.Writer
}

// NewPageWriter returns a writer encoding onto w.
func NewPageWriter(w io.Writer) *PageWriter {
	return &PageWriter{w: bufio.NewWriter(w)}
}

// WritePage sends one page frame.
func (pw *PageWriter) WritePage(p mem.PFN, payload []byte) error {
	var hdr [13]byte
	hdr[0] = framePage
	binary.BigEndian.PutUint64(hdr[1:9], uint64(p))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(payload)
	return err
}

// EndIteration marks a pre-copy round boundary.
func (pw *PageWriter) EndIteration() error {
	return pw.w.WriteByte(frameEndIteration)
}

// EndStream marks migration completion and flushes buffered frames.
func (pw *PageWriter) EndStream() error {
	if err := pw.w.WriteByte(frameEndStream); err != nil {
		return err
	}
	return pw.w.Flush()
}

// Flush pushes buffered frames to the underlying stream.
func (pw *PageWriter) Flush() error { return pw.w.Flush() }

// PageReader decodes frames from a stream.
type PageReader struct {
	r *bufio.Reader
}

// NewPageReader returns a reader decoding from r.
func NewPageReader(r io.Reader) *PageReader {
	return &PageReader{r: bufio.NewReader(r)}
}

// maxFramePayload bounds payload allocations against corrupt headers.
const maxFramePayload = 1 << 20

// Next reads the next frame. At end-of-stream it returns a frame with
// Kind == frameEndStream and nil error; subsequent calls return io.EOF.
func (pr *PageReader) Next() (Frame, error) {
	kind, err := pr.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	switch kind {
	case frameEndIteration, frameEndStream:
		return Frame{Kind: kind}, nil
	case framePage:
		var hdr [12]byte
		if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
			return Frame{}, fmt.Errorf("netsim: truncated page header: %w", err)
		}
		pfn := mem.PFN(binary.BigEndian.Uint64(hdr[:8]))
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n > maxFramePayload {
			return Frame{}, fmt.Errorf("netsim: page payload %d exceeds limit", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(pr.r, payload); err != nil {
			return Frame{}, fmt.Errorf("netsim: truncated page payload: %w", err)
		}
		return Frame{Kind: framePage, PFN: pfn, Payload: payload}, nil
	default:
		return Frame{}, fmt.Errorf("netsim: unknown frame kind %d", kind)
	}
}

// FrameKind helpers exported for tests and the migration engine.
const (
	FramePage         = framePage
	FrameEndIteration = frameEndIteration
	FrameEndStream    = frameEndStream
)
