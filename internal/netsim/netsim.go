// Package netsim provides the network substrate for migration experiments:
// a bandwidth/latency-modelled Link driven by the virtual clock, and a real
// TCP page-stream protocol used by integration tests to move page contents
// between an actual source and destination.
//
// The paper's testbed is a gigabit Ethernet LAN between two blades (§5.1);
// the network is the bottleneck that makes pre-copy migration struggle
// (Figure 1). Link reproduces exactly that property: each transfer of n
// bytes costs n/bandwidth of virtual time, during which the guest keeps
// dirtying memory.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// ErrPartitioned is returned by SendErr while a fault-injected network
// partition covers the current virtual time. The transfer carries no bytes;
// the caller retries (with backoff) until the partition heals or its retry
// budget runs out.
var ErrPartitioned = errors.New("netsim: link partitioned")

// ErrHostDown is returned by a fabric port's Transfer/SendErr while a
// host.crash fault window covers the port's destination host: the host is
// gone, so the failure is permanent for this flow (unlike a partition, which
// heals). The migration engine treats it like a destination crash and aborts
// the move rather than retrying.
var ErrHostDown = errors.New("netsim: destination host down")

// Common effective bandwidths. A gigabit link moves 125 MB/s at line rate;
// after Ethernet/IP/TCP framing the payload rate observed by migration tools
// is ~117 MB/s, consistent with the paper's §4.2 arithmetic (950 MB in a bit
// over 7 s).
const (
	GigabitEffective    = 117 * 1000 * 1000 // bytes/sec
	TenGigabitEffective = 1170 * 1000 * 1000
)

// Link models a point-to-point network path with fixed latency and a
// (possibly time-varying) bandwidth. Link does not advance the clock itself:
// callers ask for the cost of a transfer and interleave clock advancement
// with guest execution (DESIGN.md §6).
type Link struct {
	clock     *simclock.Clock
	bandwidth uint64 // bytes per second, base value
	latency   time.Duration

	// Modulator, if non-nil, scales the base bandwidth at a given virtual
	// time; it returns a factor in (0, 1]. Experiments use it to model
	// background traffic on the migration path.
	Modulator func(now time.Duration) float64

	bytesSent   uint64
	sends       uint64
	failedSends uint64
	busy        time.Duration

	metrics *obs.Metrics
	faults  *faults.Injector

	// fabric/path/flow/destHost are set only on ports minted by Fabric.Dial;
	// a plain NewLink link never arbitrates and keeps the legacy cost model
	// exactly.
	fabric   *Fabric
	path     []*trunk
	flow     *flowStat
	destHost string
}

// SetMetrics attaches a metrics registry: Send accounts net.bytes_sent,
// net.sends and net.busy_ns counters, plus a net.bandwidth_bps histogram
// weighted by transfer duration (so its weighted mean is the effective
// utilized bandwidth). A nil registry detaches.
func (l *Link) SetMetrics(m *obs.Metrics) { l.metrics = m }

// SetFaults attaches a fault injector: partition windows make SendErr fail
// with ErrPartitioned and bandwidth-collapse windows scale Bandwidth by the
// rule's factor. A nil injector (the default) changes nothing.
func (l *Link) SetFaults(inj *faults.Injector) { l.faults = inj }

// NewLink returns a link with the given payload bandwidth (bytes/sec) and
// one-way latency.
func NewLink(clock *simclock.Clock, bandwidth uint64, latency time.Duration) *Link {
	if bandwidth == 0 {
		panic("netsim: zero-bandwidth link")
	}
	return &Link{clock: clock, bandwidth: bandwidth, latency: latency}
}

// NewGigabit returns a link modelling the paper's testbed network.
func NewGigabit(clock *simclock.Clock) *Link {
	return NewLink(clock, GigabitEffective, 100*time.Microsecond)
}

// Bandwidth returns the link's current payload bandwidth in bytes/sec,
// after modulation and any fault-injected bandwidth collapse.
func (l *Link) Bandwidth() uint64 {
	bw := l.bandwidth
	if l.Modulator != nil {
		bw = uint64(float64(bw) * checkModFactor(l.Modulator(l.clock.Now())))
	}
	if f := l.faults.BandwidthFactor(); f < 1 {
		bw = uint64(float64(bw) * f)
	}
	if bw == 0 {
		bw = 1
	}
	return bw
}

// checkModFactor validates a Modulator return value. The legal range is
// (0, 1]; anything else — including NaN, which slips through naive "f <= 0
// || f > 1" comparisons because every comparison with NaN is false — would
// corrupt transfer-cost arithmetic silently, so it panics instead.
func checkModFactor(f float64) float64 {
	if !(f > 0 && f <= 1) { // NaN fails this too: !(false) = panic
		panic(fmt.Sprintf("netsim: modulator factor %v out of (0,1]", f))
	}
	return f
}

// Latency returns the link's one-way latency.
func (l *Link) Latency() time.Duration { return l.latency }

// TransferTime returns the virtual time needed to push n payload bytes
// through the link at its current bandwidth, excluding latency. A non-empty
// transfer always costs at least 1ns: the float arithmetic rounds sub-ns
// costs (small payloads on very fast links) down to zero, which would let
// busy-time accounting and effective-bandwidth metrics record transfers
// that took no time at all.
func (l *Link) TransferTime(n uint64) time.Duration {
	bw := l.Bandwidth()
	d := time.Duration(float64(n) / float64(bw) * float64(time.Second))
	if n > 0 && d <= 0 {
		d = 1
	}
	return d
}

// Send accounts for a transfer of n payload bytes and returns its duration
// (excluding latency). The caller advances the clock; Send only does the
// bookkeeping so that per-iteration transfer rates can be reported
// (Figure 1's "transfer rate" series).
func (l *Link) Send(n uint64) time.Duration {
	d := l.TransferTime(n)
	l.bytesSent += n
	l.sends++
	l.busy += d
	if m := l.metrics; m != nil {
		m.Counter("net.bytes_sent").Add(int64(n))
		m.Counter("net.sends").Inc()
		m.Counter("net.busy_ns").AddDuration(d)
		m.Histogram("net.bandwidth_bps").ObserveWeighted(float64(l.Bandwidth()), d)
	}
	return d
}

// SendErr is Send under fault injection: while a partition window is
// active it fails with ErrPartitioned, carrying no bytes and costing no
// busy time. The migration engine sends through this path so partitions
// surface as retryable errors; Send keeps the legacy always-succeeds
// contract for callers with no fault story (e.g. the replication stream).
func (l *Link) SendErr(n uint64) (time.Duration, error) {
	if l.hostDown() {
		l.failedSends++
		if m := l.metrics; m != nil {
			m.Counter("net.failed_sends").Inc()
		}
		return 0, ErrHostDown
	}
	if l.faults.LinkDown() {
		l.failedSends++
		if m := l.metrics; m != nil {
			m.Counter("net.failed_sends").Inc()
		}
		return 0, ErrPartitioned
	}
	return l.Send(n), nil
}

// hostDown reports whether the port's destination host is inside a
// host.crash fault window. Only fabric ports have a destination identity;
// plain links always report false.
func (l *Link) hostDown() bool {
	return l.fabric != nil && l.fabric.hostFaults.HostDown(l.destHost)
}

// BytesSent returns total payload bytes accounted through Send.
func (l *Link) BytesSent() uint64 { return l.bytesSent }

// FailedSends returns the number of sends refused by a partition.
func (l *Link) FailedSends() uint64 { return l.failedSends }

// Sends returns the number of Send calls.
func (l *Link) Sends() uint64 { return l.sends }

// Busy returns cumulative transfer time accounted through Send.
func (l *Link) Busy() time.Duration { return l.busy }

// RoundTrip returns the cost of a small control-message round trip: twice
// the latency. The migration workflow's control messages (skip-over queries,
// suspension-ready notifications) ride on this.
func (l *Link) RoundTrip() time.Duration { return 2 * l.latency }
