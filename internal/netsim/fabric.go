package netsim

import (
	"fmt"
	"math"
	"strings"
	"time"

	"javmm/internal/faults"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Fabric models a shared network: hosts (optionally NIC-capped) attached to
// named links, with concurrent transfers arbitrating bandwidth. Where Link
// charges each transfer n/bandwidth in isolation, a fabric port's transfers
// contend: every shared segment divides its capacity evenly among the
// transfers crossing it (progressive fair share), and a transfer's cost is
// integrated over the intervals between contender changes. All arbitration
// is event-driven on the virtual clock, so an N-tenant run is exactly as
// deterministic as a single-tenant one.
//
// Dial returns an ordinary *Link, so the migration engine and every existing
// call site work unchanged; arbitration-aware callers use Link.Transfer /
// Transfer.Wait instead of Send to observe contended durations.
type Fabric struct {
	clock   *simclock.Clock
	metrics *obs.Metrics
	tracer  *obs.Tracer

	hosts  map[string]*fabricHost
	order  []string // host insertion order (deterministic BFS)
	trunks []*trunk // NICs then shared links, insertion order
	flows  []*flowStat

	// hostFaults, when set, scopes host.crash windows onto the fabric: a
	// port dialled to a crashed host refuses admission with ErrHostDown.
	hostFaults *faults.Injector

	active []*Transfer // admission order — the deterministic settle order
	lastAt time.Duration
	timer  *simclock.Timer
	nextAt time.Duration
}

// flowStat is the per-port (per src->dst flow) accounting of a fabric:
// what the flow moved, and how much contended reality cost it beyond the
// uncontended ideal of its path's bottleneck bandwidth.
type flowStat struct {
	name    string
	idealBW uint64 // path bottleneck bandwidth, bytes/sec
	bytes   uint64
	sends   uint64
	// queueing is Σ max(0, contended − ideal) over completed transfers: the
	// extra time fair-share arbitration (and stalls) cost this flow.
	queueing time.Duration
	// stall is the subset of queueing spent at rate zero (partitions).
	stall time.Duration
}

type fabricHost struct {
	name  string
	nic   *trunk   // nil: uncapped NIC
	links []*trunk // shared links this host attaches to
}

// trunk is one capacity-carrying segment (a host NIC or a shared link).
type trunk struct {
	name      string
	bandwidth uint64 // bytes/sec
	latency   time.Duration
	shared    bool
	faults    *faults.Injector

	count     int // active transfers crossing this trunk
	bytesSent uint64
	sends     uint64
	busy      time.Duration // union of intervals with >=1 active transfer
	maxConc   int
	// settled is the integral of the trunk's aggregate settled rate over
	// time, in (float) bytes: the continuous twin of bytesSent. On an idle
	// fabric the two agree to within a sub-byte residue per completed
	// transfer (LinkUsage.ConservationError), which is the fabric's
	// byte-conservation invariant.
	settled float64
	// lastConc is the last concurrent-transfer count a contention event was
	// emitted for (shared trunks with a tracer attached).
	lastConc int
}

// stallRecheck bounds the event step whenever a rate can change outside the
// fabric's own event set: fault windows (partitions, bandwidth collapses)
// open and close at plan times the fabric cannot see, so integration falls
// back to this fixed, deterministic quantum while an injector is attached or
// a transfer is fully stalled.
const stallRecheck = time.Millisecond

// NewFabric returns an empty fabric on the given clock.
func NewFabric(clock *simclock.Clock) *Fabric {
	return &Fabric{clock: clock, hosts: make(map[string]*fabricHost)}
}

// SetMetrics attaches a metrics registry: each trunk accounts
// fabric.<name>.bytes_sent / .sends / .busy_ns counters, a
// fabric.<name>.active gauge of its concurrent-transfer count, a
// fabric.<name>.utilization gauge (settled aggregate rate over effective
// capacity — its time-weighted mean is the link's overall utilization) and a
// fabric.<name>.settled_bytes gauge carrying the continuous byte-
// conservation integral. A nil registry detaches.
func (f *Fabric) SetMetrics(m *obs.Metrics) { f.metrics = m }

// SetTracer attaches a tracer: every arbitrated transfer becomes a span on
// its flow's track ("fabric/<src>-><dst>", begin at admission, end at
// completion with duration/queueing/stall attached), and every change in a
// shared link's concurrent-transfer count an instant event on the link's
// track. A nil tracer detaches. Transfers on one port are serial (the engine
// waits on each), so per-flow spans nest trivially.
func (f *Fabric) SetTracer(t *obs.Tracer) { f.tracer = t }

// AddHost adds a host. nicBW, when non-zero, caps the host's aggregate
// in+out bandwidth (its NIC becomes a trunk on every path that touches the
// host); zero means the NIC is never the bottleneck.
func (f *Fabric) AddHost(name string, nicBW uint64) {
	if _, ok := f.hosts[name]; ok {
		panic(fmt.Sprintf("netsim: duplicate host %q", name))
	}
	h := &fabricHost{name: name}
	if nicBW > 0 {
		h.nic = &trunk{name: name + "/nic", bandwidth: nicBW}
		f.trunks = append(f.trunks, h.nic)
	}
	f.hosts[name] = h
	f.order = append(f.order, name)
}

// AddLink adds a named shared link with the given payload bandwidth and
// one-way latency, and attaches the named hosts to it. Every transfer whose
// path crosses the link contends for its bandwidth.
func (f *Fabric) AddLink(name string, bandwidth uint64, latency time.Duration, hosts ...string) {
	if bandwidth == 0 {
		panic("netsim: zero-bandwidth fabric link")
	}
	for _, t := range f.trunks {
		if t.name == name {
			panic(fmt.Sprintf("netsim: duplicate link %q", name))
		}
	}
	tk := &trunk{name: name, bandwidth: bandwidth, latency: latency, shared: true}
	f.trunks = append(f.trunks, tk)
	for _, hn := range hosts {
		f.attach(hn, tk)
	}
}

// AttachHost attaches an existing host to an existing shared link.
func (f *Fabric) AttachHost(host, link string) {
	for _, t := range f.trunks {
		if t.name == link && t.shared {
			f.attach(host, t)
			return
		}
	}
	panic(fmt.Sprintf("netsim: no link %q", link))
}

func (f *Fabric) attach(hostName string, tk *trunk) {
	h, ok := f.hosts[hostName]
	if !ok {
		panic(fmt.Sprintf("netsim: no host %q", hostName))
	}
	h.links = append(h.links, tk)
}

// SetLinkFaults attaches a fault injector to a shared link: a partition
// window stalls every tenant of the link (rates drop to zero until it
// heals), a bandwidth-collapse window shrinks everyone's fair share.
func (f *Fabric) SetLinkFaults(link string, inj *faults.Injector) {
	for _, t := range f.trunks {
		if t.name == link {
			t.faults = inj
			return
		}
	}
	panic(fmt.Sprintf("netsim: no link %q", link))
}

// SetHostFaults attaches a fault injector whose host.crash windows the
// fabric enforces at admission: Transfer and SendErr on a port dialled to a
// covered destination host fail fast with ErrHostDown instead of stalling.
// A nil injector detaches.
func (f *Fabric) SetHostFaults(inj *faults.Injector) { f.hostFaults = inj }

// Dial returns a point-to-point port from src to dst: a *Link whose
// transfers cross the (BFS-shortest, insertion-order-deterministic) path of
// trunks between the two hosts and contend with everything else on them.
// The port's nominal bandwidth is the path's bottleneck capacity and its
// latency the sum of per-segment latencies (floored at the caller-visible
// minimum of 1ns only if every segment is zero); per-port Modulator and
// fault injectors keep their Link semantics — the injector gates admission,
// the shared-link injectors govern in-flight rates.
func (f *Fabric) Dial(src, dst string) (*Link, error) {
	hs, ok := f.hosts[src]
	if !ok {
		return nil, fmt.Errorf("netsim: no host %q", src)
	}
	hd, ok := f.hosts[dst]
	if !ok {
		return nil, fmt.Errorf("netsim: no host %q", dst)
	}
	shared, err := f.route(hs, hd)
	if err != nil {
		return nil, err
	}
	var path []*trunk
	if hs.nic != nil {
		path = append(path, hs.nic)
	}
	path = append(path, shared...)
	if hd.nic != nil {
		path = append(path, hd.nic)
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("netsim: %s->%s has no capacity-carrying segment (add a link or NIC caps)", src, dst)
	}
	bw := uint64(math.MaxUint64)
	var lat time.Duration
	for _, t := range path {
		if t.bandwidth < bw {
			bw = t.bandwidth
		}
		lat += t.latency
	}
	l := NewLink(f.clock, bw, lat)
	l.fabric = f
	l.path = path
	l.destHost = dst
	// Register the port as a named flow for per-flow fair-share accounting.
	// Repeat dials of the same pair get #2, #3, ... suffixes so every flow
	// name (and trace track) stays unique and deterministic in dial order.
	name := src + "->" + dst
	dup := 0
	for _, fl := range f.flows {
		if fl.name == name || strings.HasPrefix(fl.name, name+"#") {
			dup++
		}
	}
	if dup > 0 {
		name = fmt.Sprintf("%s#%d", name, dup+1)
	}
	l.flow = &flowStat{name: name, idealBW: bw}
	f.flows = append(f.flows, l.flow)
	return l, nil
}

// route BFS-walks the host/link bipartite graph and returns the shared links
// along the shortest src->dst path. Ties break by host/link insertion order.
// Route returns the names of the shared links a src→dst flow crosses, in
// path order (NIC trunks excluded). The orchestrator uses it for per-link
// admission accounting without opening a port.
func (f *Fabric) Route(src, dst string) ([]string, error) {
	hs, ok := f.hosts[src]
	if !ok {
		return nil, fmt.Errorf("netsim: no host %q", src)
	}
	hd, ok := f.hosts[dst]
	if !ok {
		return nil, fmt.Errorf("netsim: no host %q", dst)
	}
	shared, err := f.route(hs, hd)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(shared))
	for i, t := range shared {
		names[i] = t.name
	}
	return names, nil
}

func (f *Fabric) route(src, dst *fabricHost) ([]*trunk, error) {
	if src == dst {
		return nil, nil
	}
	type hop struct {
		host *fabricHost
		via  []*trunk
	}
	seen := map[*fabricHost]bool{src: true}
	frontier := []hop{{host: src}}
	for len(frontier) > 0 {
		var next []hop
		for _, h := range frontier {
			for _, lk := range h.host.links {
				for _, name := range f.order {
					peer := f.hosts[name]
					if seen[peer] || !hostOn(peer, lk) {
						continue
					}
					via := append(append([]*trunk(nil), h.via...), lk)
					if peer == dst {
						return via, nil
					}
					seen[peer] = true
					next = append(next, hop{host: peer, via: via})
				}
			}
		}
		frontier = next
	}
	return nil, fmt.Errorf("netsim: no path %s->%s", src.name, dst.name)
}

func hostOn(h *fabricHost, tk *trunk) bool {
	for _, lk := range h.links {
		if lk == tk {
			return true
		}
	}
	return false
}

// Transfer is one in-flight arbitrated transfer on a fabric port.
type Transfer struct {
	fabric    *Fabric
	port      *Link
	n         uint64
	remaining float64 // bytes still to move
	rate      float64 // bytes/sec under the current contender set
	start     time.Duration
	done      bool
	dur       time.Duration
	stall     time.Duration // time spent at rate zero (partitions)
	span      *obs.Span     // flow-track span when a tracer is attached
	waiters   []*simclock.Proc
}

// Arbitrated reports whether the link is a fabric port, i.e. whether
// Transfer contends for shared bandwidth. Plain NewLink links report false
// and keep the paper's private-link cost model bit-for-bit.
func (l *Link) Arbitrated() bool { return l.fabric != nil }

// Transfer admits n payload bytes onto the port's path and returns the
// in-flight transfer; Wait blocks (cooperatively, under a scheduler) until
// it completes. Admission fails with ErrPartitioned while the port's own
// injector holds the link down — the same retry contract as SendErr; a
// partition arriving mid-flight on a shared link instead stalls the transfer
// until the window heals. Calling Transfer on a non-fabric link panics: the
// caller must gate on Arbitrated().
func (l *Link) Transfer(n uint64) (*Transfer, error) {
	if l.fabric == nil {
		panic("netsim: Transfer on a non-fabric link (gate on Arbitrated)")
	}
	if l.hostDown() {
		l.failedSends++
		if m := l.metrics; m != nil {
			m.Counter("net.failed_sends").Inc()
		}
		return nil, ErrHostDown
	}
	if l.faults.LinkDown() {
		l.failedSends++
		if m := l.metrics; m != nil {
			m.Counter("net.failed_sends").Inc()
		}
		return nil, ErrPartitioned
	}
	return l.fabric.admit(l, n), nil
}

// admit settles the fabric to now, adds the transfer to the contender set
// and re-arbitrates every rate.
func (f *Fabric) admit(port *Link, n uint64) *Transfer {
	now := f.clock.Now()
	f.settle(now)
	tr := &Transfer{
		fabric:    f,
		port:      port,
		n:         n,
		remaining: float64(n),
		start:     now,
	}
	if f.tracer != nil && port.flow != nil {
		tr.span = f.tracer.Begin(obs.TrackFabric+"/"+port.flow.name,
			obs.KindTransfer, "transfer", obs.Uint64("bytes", n))
	}
	f.active = append(f.active, tr)
	f.recalc(now)
	return tr
}

// settle integrates every active transfer's progress over [lastAt, now] at
// the rates fixed by the last recalc, and accrues per-trunk busy time. The
// iteration order is the admission order — fixed, so the float arithmetic is
// deterministic.
func (f *Fabric) settle(now time.Duration) {
	dt := now - f.lastAt
	f.lastAt = now
	if dt <= 0 || len(f.active) == 0 {
		return
	}
	sec := dt.Seconds()
	for _, tr := range f.active {
		if tr.rate > 0 {
			moved := tr.rate * sec
			tr.remaining -= moved
			// The moved bytes settle onto every trunk of the path: the
			// continuous side of the byte-conservation invariant.
			for _, t := range tr.port.path {
				t.settled += moved
			}
		} else {
			tr.stall += dt
		}
	}
	for _, t := range f.trunks {
		if t.count > 0 {
			t.busy += dt
		}
		if f.metrics != nil {
			f.metrics.Gauge("fabric." + t.name + ".settled_bytes").Set(t.settled)
		}
	}
}

// completeEps absorbs the sub-byte float residue left by rounding completion
// times up to whole nanoseconds.
const completeEps = 1e-6

// recalc re-derives every transfer's fair-share rate from the current
// contender set, completes transfers that have no bytes left (which changes
// the set, so it loops to a fixed point), and schedules the next event.
func (f *Fabric) recalc(now time.Duration) {
	for {
		for _, t := range f.trunks {
			t.count = 0
		}
		for _, tr := range f.active {
			for _, t := range tr.port.path {
				t.count++
			}
		}
		for _, t := range f.trunks {
			if t.count > t.maxConc {
				t.maxConc = t.count
			}
			if f.metrics != nil {
				f.metrics.Gauge("fabric." + t.name + ".active").Set(float64(t.count))
			}
			if f.tracer != nil && t.shared && t.count != t.lastConc {
				f.tracer.Emit(obs.TrackFabric+"/"+t.name, obs.KindContention,
					"contention", nil, obs.Int("active", t.count))
			}
			t.lastConc = t.count
		}
		for _, tr := range f.active {
			tr.rate = math.Inf(1)
			for _, t := range tr.port.path {
				if share := t.effBandwidth() / float64(t.count); share < tr.rate {
					tr.rate = share
				}
			}
		}
		if f.metrics != nil {
			// Settled aggregate rate over effective capacity: the
			// utilization gauge whose time-weighted mean is the trunk's
			// overall utilization.
			for _, t := range f.trunks {
				agg := 0.0
				for _, tr := range f.active {
					for _, pt := range tr.port.path {
						if pt == t {
							agg += tr.rate
						}
					}
				}
				util := 0.0
				if bw := t.effBandwidth(); bw > 0 {
					util = agg / bw
				}
				f.metrics.Gauge("fabric." + t.name + ".utilization").Set(util)
			}
		}
		finished := false
		live := f.active[:0]
		for _, tr := range f.active {
			if tr.remaining <= completeEps {
				f.complete(tr, now)
				finished = true
			} else {
				live = append(live, tr)
			}
		}
		f.active = live
		if !finished {
			break
		}
	}
	f.schedule(now)
}

// effBandwidth is the trunk's current capacity: zero while a fault-injected
// partition covers it, scaled down during a bandwidth-collapse window.
func (t *trunk) effBandwidth() float64 {
	if t.faults.LinkDown() {
		return 0
	}
	bw := float64(t.bandwidth)
	if fct := t.faults.BandwidthFactor(); fct < 1 {
		bw *= fct
	}
	return bw
}

// complete finalizes a transfer at now: whole-byte accounting lands on the
// port (Send's exact bookkeeping) and on every trunk of its path, and
// waiters are queued to resume.
func (f *Fabric) complete(tr *Transfer, now time.Duration) {
	tr.done = true
	tr.dur = now - tr.start
	if tr.n > 0 && tr.dur <= 0 {
		tr.dur = 1 // same floor as TransferTime: no free non-empty transfers
	}
	p := tr.port
	p.bytesSent += tr.n
	p.sends++
	p.busy += tr.dur
	if m := p.metrics; m != nil {
		m.Counter("net.bytes_sent").Add(int64(tr.n))
		m.Counter("net.sends").Inc()
		m.Counter("net.busy_ns").AddDuration(tr.dur)
		if tr.dur > 0 {
			m.Histogram("net.bandwidth_bps").ObserveWeighted(
				float64(tr.n)/tr.dur.Seconds(), tr.dur)
		}
	}
	for _, t := range p.path {
		t.bytesSent += tr.n
		t.sends++
		if f.metrics != nil {
			f.metrics.Counter("fabric." + t.name + ".bytes_sent").Add(int64(tr.n))
			f.metrics.Counter("fabric." + t.name + ".sends").Inc()
		}
	}
	if fl := p.flow; fl != nil {
		fl.bytes += tr.n
		fl.sends++
		// Queueing is what contention cost beyond the flow's uncontended
		// ideal (its path-bottleneck transfer time); stall is the part spent
		// at rate zero.
		queue := tr.dur - idealTransferTime(tr.n, fl.idealBW)
		if queue < 0 {
			queue = 0
		}
		fl.queueing += queue
		fl.stall += tr.stall
		if tr.span != nil {
			tr.span.End(obs.Dur("duration", tr.dur),
				obs.Dur("queueing", queue), obs.Dur("stall", tr.stall))
			tr.span = nil
		}
	}
	waiters := tr.waiters
	tr.waiters = nil
	if s := f.clock.Scheduler(); s != nil {
		for _, w := range waiters {
			s.Ready(w)
		}
	}
}

// schedule arms the fabric's single timer for the earliest completion under
// current rates — or a fixed stall-recheck quantum when a rate can change at
// a time the fabric cannot predict (fault windows) or a transfer is fully
// stalled by a partition.
func (f *Fabric) schedule(now time.Duration) {
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	if len(f.active) == 0 {
		return
	}
	next := time.Duration(math.MaxInt64)
	stalled, faulty := false, false
	for _, tr := range f.active {
		if tr.rate <= 0 {
			stalled = true
			continue
		}
		d := time.Duration(math.Ceil(tr.remaining / tr.rate * 1e9))
		if d < 1 {
			d = 1
		}
		if d < next {
			next = d
		}
		for _, t := range tr.port.path {
			if t.faults != nil {
				faulty = true
			}
		}
	}
	if (stalled || faulty) && next > stallRecheck {
		next = stallRecheck
	}
	f.nextAt = now + next
	f.timer = f.clock.AfterFunc(next, func(at time.Duration) {
		f.timer = nil
		f.settle(at)
		f.recalc(at)
	})
}

// Wait blocks until the transfer completes and returns its contended
// duration. Inside a scheduler process it parks cooperatively; outside one
// it drives the clock itself, advancing event to event — the caller-driven
// equivalent of "d := link.Send(n); clock.Advance(d)" with contention priced
// in. The error is always nil today (mid-flight faults stall rather than
// fail) and reserved for future cancellation.
func (tr *Transfer) Wait() (time.Duration, error) {
	c := tr.fabric.clock
	if s := c.Scheduler(); s != nil && s.Active() != nil {
		p := s.Active()
		for !tr.done {
			tr.waiters = append(tr.waiters, p)
			p.Park()
		}
		return tr.dur, nil
	}
	for !tr.done {
		if tr.fabric.timer == nil {
			panic("netsim: pending transfer with no scheduled fabric event")
		}
		c.Advance(tr.fabric.nextAt - c.Now())
	}
	return tr.dur, nil
}

// Done reports whether the transfer has completed.
func (tr *Transfer) Done() bool { return tr.done }

// Duration returns the completed transfer's contended duration (zero while
// in flight).
func (tr *Transfer) Duration() time.Duration { return tr.dur }

// Bytes returns the transfer's payload size.
func (tr *Transfer) Bytes() uint64 { return tr.n }

// idealTransferTime is the uncontended cost of n bytes at bw — the same
// formula (and 1ns floor) as Link.TransferTime, without modulation.
func idealTransferTime(n, bw uint64) time.Duration {
	d := time.Duration(float64(n) / float64(bw) * float64(time.Second))
	if n > 0 && d <= 0 {
		d = 1
	}
	return d
}

// LinkUsage is one trunk's accounting in a FabricReport.
type LinkUsage struct {
	Name          string        `json:"name"`
	Bandwidth     uint64        `json:"bandwidth_bps"`
	BytesSent     uint64        `json:"bytes_sent"`
	Transfers     uint64        `json:"transfers"`
	Busy          time.Duration `json:"busy_ns"`
	MaxConcurrent int           `json:"max_concurrent"`
	// SettledBytes is the continuous byte integral (∫ aggregate rate dt);
	// Utilization the mean fraction of capacity in use while the trunk was
	// busy: SettledBytes / (Bandwidth × Busy).
	SettledBytes float64 `json:"settled_bytes"`
	Utilization  float64 `json:"utilization"`
}

// ConservationError is the byte-conservation residue: |settled − sent|.
// With no transfers in flight it is bounded by a sub-byte rounding residue
// per completed transfer (completion times round up to whole nanoseconds),
// i.e. at most one byte per transfer on any practical bandwidth.
func (u LinkUsage) ConservationError() float64 {
	return math.Abs(u.SettledBytes - float64(u.BytesSent))
}

// FlowUsage is one flow's (Dial port's) accounting in a FabricReport.
type FlowUsage struct {
	Name string `json:"name"`
	// Bandwidth is the flow's uncontended ideal: its path's bottleneck.
	Bandwidth uint64 `json:"bandwidth_bps"`
	BytesSent uint64 `json:"bytes_sent"`
	Transfers uint64 `json:"transfers"`
	// Queueing is the cumulative extra time fair-share arbitration cost the
	// flow beyond its ideal transfer times; Stall the subset spent fully
	// stalled (partitions).
	Queueing time.Duration `json:"queueing_ns"`
	Stall    time.Duration `json:"stall_ns"`
}

// FabricReport is the merged utilization view over every trunk (NICs and
// shared links) in insertion order, plus per-flow fair-share accounting in
// dial order — deterministic, so it participates in golden comparisons.
type FabricReport struct {
	Links []LinkUsage `json:"links"`
	Flows []FlowUsage `json:"flows,omitempty"`
}

// VerifyConservation checks every link's byte-conservation residue against
// the settle bound: the fixed-point arbiter's continuous byte integral may
// differ from the discrete send count by at most one byte per completed
// transfer (completion instants round up to whole nanoseconds) plus one byte
// of terminal float residue. A report that breaks this bound means the
// fair-share settling lost or invented bytes — the fleet runner asserts it
// after every plan.
func (r FabricReport) VerifyConservation() error {
	for _, u := range r.Links {
		if res := u.ConservationError(); res > float64(u.Transfers+1) {
			return fmt.Errorf(
				"netsim: link %s conservation residue %.3f bytes exceeds bound %d (sent %d bytes over %d transfers, settled %.3f)",
				u.Name, res, u.Transfers+1, u.BytesSent, u.Transfers, u.SettledBytes)
		}
	}
	return nil
}

// Link returns the named link's usage row, and whether it was present.
func (r FabricReport) Link(name string) (LinkUsage, bool) {
	for _, u := range r.Links {
		if u.Name == name {
			return u, true
		}
	}
	return LinkUsage{}, false
}

// Report settles the fabric to the current instant and returns per-trunk
// utilization and per-flow accounting.
func (f *Fabric) Report() FabricReport {
	f.settle(f.clock.Now())
	var rep FabricReport
	for _, t := range f.trunks {
		u := LinkUsage{
			Name:          t.name,
			Bandwidth:     t.bandwidth,
			BytesSent:     t.bytesSent,
			Transfers:     t.sends,
			Busy:          t.busy,
			MaxConcurrent: t.maxConc,
			SettledBytes:  t.settled,
		}
		if t.busy > 0 && t.bandwidth > 0 {
			u.Utilization = t.settled / (float64(t.bandwidth) * t.busy.Seconds())
		}
		rep.Links = append(rep.Links, u)
	}
	for _, fl := range f.flows {
		rep.Flows = append(rep.Flows, FlowUsage{
			Name:      fl.name,
			Bandwidth: fl.idealBW,
			BytesSent: fl.bytes,
			Transfers: fl.sends,
			Queueing:  fl.queueing,
			Stall:     fl.stall,
		})
	}
	return rep
}
