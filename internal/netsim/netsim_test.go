package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

func TestTransferTimeScalesWithBytes(t *testing.T) {
	l := NewLink(simclock.New(), 100, 0) // 100 B/s
	if got := l.TransferTime(100); got != time.Second {
		t.Fatalf("TransferTime(100) = %v, want 1s", got)
	}
	if got := l.TransferTime(50); got != 500*time.Millisecond {
		t.Fatalf("TransferTime(50) = %v, want 500ms", got)
	}
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-bandwidth link did not panic")
		}
	}()
	NewLink(simclock.New(), 0, 0)
}

func TestSendAccounting(t *testing.T) {
	l := NewLink(simclock.New(), 1000, time.Millisecond)
	d1 := l.Send(500)
	d2 := l.Send(250)
	if d1 != 500*time.Millisecond || d2 != 250*time.Millisecond {
		t.Fatalf("durations %v %v", d1, d2)
	}
	if l.BytesSent() != 750 {
		t.Fatalf("BytesSent = %d", l.BytesSent())
	}
	if l.Sends() != 2 {
		t.Fatalf("Sends = %d", l.Sends())
	}
	if l.Busy() != 750*time.Millisecond {
		t.Fatalf("Busy = %v", l.Busy())
	}
	if l.RoundTrip() != 2*time.Millisecond {
		t.Fatalf("RoundTrip = %v", l.RoundTrip())
	}
}

func TestModulatorScalesBandwidth(t *testing.T) {
	clock := simclock.New()
	l := NewLink(clock, 1000, 0)
	l.Modulator = func(now time.Duration) float64 {
		if now >= time.Second {
			return 0.5
		}
		return 1.0
	}
	if got := l.TransferTime(1000); got != time.Second {
		t.Fatalf("unmodulated TransferTime = %v", got)
	}
	clock.Advance(time.Second)
	if got := l.TransferTime(1000); got != 2*time.Second {
		t.Fatalf("modulated TransferTime = %v, want 2s", got)
	}
}

func TestModulatorOutOfRangePanics(t *testing.T) {
	l := NewLink(simclock.New(), 1000, 0)
	l.Modulator = func(time.Duration) float64 { return 1.5 }
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range modulator did not panic")
		}
	}()
	l.Bandwidth()
}

func TestGigabitDefaults(t *testing.T) {
	l := NewGigabit(simclock.New())
	// 2 GiB at gigabit-effective should take 18-19 virtual seconds — the
	// first-iteration cost seen in the paper's Figure 8.
	d := l.TransferTime(2 << 30)
	if d < 17*time.Second || d > 20*time.Second {
		t.Fatalf("2 GiB over gigabit = %v, want ~18s", d)
	}
}

func TestPageStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPageWriter(&buf)
	if err := w.WritePage(42, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.EndIteration(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(7, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndStream(); err != nil {
		t.Fatal(err)
	}

	r := NewPageReader(&buf)
	f, err := r.Next()
	if err != nil || f.Kind != FramePage || f.PFN != 42 || string(f.Payload) != "abc" {
		t.Fatalf("frame 1 = %+v, err %v", f, err)
	}
	f, err = r.Next()
	if err != nil || f.Kind != FrameEndIteration {
		t.Fatalf("frame 2 = %+v, err %v", f, err)
	}
	f, err = r.Next()
	if err != nil || f.Kind != FramePage || f.PFN != 7 || len(f.Payload) != 0 {
		t.Fatalf("frame 3 = %+v, err %v", f, err)
	}
	f, err = r.Next()
	if err != nil || f.Kind != FrameEndStream {
		t.Fatalf("frame 4 = %+v, err %v", f, err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("after end-of-stream err = %v, want EOF", err)
	}
}

func TestPageStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewPageWriter(&buf)
	if err := w.WritePage(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	r := NewPageReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
}

func TestPageStreamUnknownKind(t *testing.T) {
	r := NewPageReader(bytes.NewReader([]byte{99}))
	if _, err := r.Next(); err == nil {
		t.Fatal("unknown frame kind accepted")
	}
}

func TestPageStreamOversizePayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(FramePage)
	buf.Write(make([]byte, 8))                // pfn
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	r := NewPageReader(&buf)
	if _, err := r.Next(); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

// errWriter fails after n bytes.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestPageWriterSurfacesWriteErrors(t *testing.T) {
	w := NewPageWriter(&errWriter{left: 4})
	// The bufio layer absorbs small writes; an explicit flush must fail.
	if err := w.WritePage(1, make([]byte, 8192)); err == nil {
		if err := w.Flush(); err == nil {
			t.Fatal("write beyond failing writer reported no error")
		}
	}
	w2 := NewPageWriter(&errWriter{left: 0})
	if err := w2.EndStream(); err == nil {
		t.Fatal("EndStream on dead writer reported no error")
	}
}

// TestPageStreamOverTCP moves page frames through a real TCP connection,
// the transport the integration migration tests use.
func TestPageStreamOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()

	type result struct {
		frames []Frame
		err    error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		r := NewPageReader(conn)
		var frames []Frame
		for {
			f, err := r.Next()
			if err != nil {
				done <- result{err: err}
				return
			}
			frames = append(frames, f)
			if f.Kind == FrameEndStream {
				done <- result{frames: frames}
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := NewPageWriter(conn)
	store := mem.NewByteStore(4)
	store.Write(0)
	store.Write(3)
	for p := mem.PFN(0); p < 4; p++ {
		if err := w.WritePage(p, store.Export(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndStream(); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.frames) != 5 {
		t.Fatalf("received %d frames, want 5", len(res.frames))
	}
	dst := mem.NewByteStore(4)
	for _, f := range res.frames[:4] {
		if err := dst.Import(f.PFN, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	for p := mem.PFN(0); p < 4; p++ {
		if dst.Version(p) != store.Version(p) {
			t.Fatalf("page %d version mismatch after TCP transfer", p)
		}
		if !bytes.Equal(dst.Page(p), store.Page(p)) {
			t.Fatalf("page %d content mismatch after TCP transfer", p)
		}
	}
}

func TestTransferTimeNeverRoundsToZero(t *testing.T) {
	// Regression: a 4-byte control payload on a 10-gigabit link costs
	// ~0.0034ns, which the float arithmetic used to round down to 0ns —
	// making tiny transfers invisible to busy-time accounting.
	l := NewLink(simclock.New(), TenGigabitEffective, 0)
	if d := l.TransferTime(4); d < 1 {
		t.Fatalf("TransferTime(4) = %v, want >= 1ns", d)
	}
	if d := l.TransferTime(0); d != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0 (empty transfer is free)", d)
	}
	// Busy time now reflects every non-empty send.
	l.Send(1)
	if l.Busy() < 1 {
		t.Fatalf("Busy = %v after a 1-byte send, want >= 1ns", l.Busy())
	}
}

func TestSendErrPartition(t *testing.T) {
	clock := simclock.New()
	inj, err := faults.NewInjector(clock, faults.Plan{
		{Site: faults.SiteLinkPartition, At: time.Second, For: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	l := NewLink(clock, 1000, 0)
	l.SetFaults(inj)

	if d, err := l.SendErr(100); err != nil || d != 100*time.Millisecond {
		t.Fatalf("pre-partition SendErr = (%v, %v)", d, err)
	}
	clock.Advance(time.Second)
	if _, err := l.SendErr(100); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("in-partition SendErr err = %v, want ErrPartitioned", err)
	}
	if l.FailedSends() != 1 {
		t.Fatalf("FailedSends = %d, want 1", l.FailedSends())
	}
	if l.BytesSent() != 100 {
		t.Fatalf("BytesSent = %d: a refused send must carry no bytes", l.BytesSent())
	}
	clock.Advance(time.Second)
	if _, err := l.SendErr(100); err != nil {
		t.Fatalf("post-heal SendErr err = %v", err)
	}
}

func TestBandwidthCollapseFault(t *testing.T) {
	clock := simclock.New()
	inj, err := faults.NewInjector(clock, faults.Plan{
		{Site: faults.SiteLinkBandwidth, For: time.Second, Factor: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	l := NewLink(clock, 1000, 0)
	l.SetFaults(inj)
	if bw := l.Bandwidth(); bw != 100 {
		t.Fatalf("collapsed bandwidth = %d, want 100", bw)
	}
	clock.Advance(2 * time.Second)
	if bw := l.Bandwidth(); bw != 1000 {
		t.Fatalf("healed bandwidth = %d, want 1000", bw)
	}
}
