package netsim

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"javmm/internal/faults"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Satellite: Modulator return values are validated for the whole illegal
// range. NaN is the case the old "f <= 0 || f > 1" check let through
// silently — every comparison with NaN is false — so it is pinned here
// alongside the ordinary out-of-range values.
func TestModulatorValidationPinned(t *testing.T) {
	for _, tc := range []struct {
		name   string
		factor float64
		panics bool
	}{
		{"full", 1.0, false},
		{"half", 0.5, false},
		{"zero", 0.0, true},
		{"negative", -0.25, true},
		{"above-one", 1.5, true},
		{"nan", math.NaN(), true},
		{"inf", math.Inf(1), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLink(simclock.New(), 1000, 0)
			l.Modulator = func(time.Duration) float64 { return tc.factor }
			defer func() {
				if got := recover() != nil; got != tc.panics {
					t.Fatalf("factor %v: panic=%v, want %v", tc.factor, got, tc.panics)
				}
			}()
			l.Bandwidth()
		})
	}
}

// sharedPair builds the canonical contention topology: two sources, one
// destination-side shared link of bw bytes/sec everyone crosses.
func sharedPair(bw uint64) (*simclock.Clock, *Fabric, *Link, *Link) {
	clock := simclock.New()
	f := NewFabric(clock)
	f.AddHost("src0", 0)
	f.AddHost("src1", 0)
	f.AddHost("dst", 0)
	f.AddLink("backbone", bw, 0, "src0", "src1", "dst")
	a, err := f.Dial("src0", "dst")
	if err != nil {
		panic(err)
	}
	b, err := f.Dial("src1", "dst")
	if err != nil {
		panic(err)
	}
	return clock, f, a, b
}

// A lone transfer on a fabric port costs exactly what the legacy Link
// charges: the trivial single-tenant fabric is cost-identical.
func TestFabricSingleTenantMatchesLink(t *testing.T) {
	clock, _, a, _ := sharedPair(1000)
	tr, err := a.Transfer(2000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tr.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * time.Second; d != want {
		t.Fatalf("uncontended transfer took %v, want %v", d, want)
	}
	if clock.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", clock.Now())
	}
	if a.BytesSent() != 2000 || a.Sends() != 1 || a.Busy() != 2*time.Second {
		t.Fatalf("port accounting = %d bytes / %d sends / %v busy", a.BytesSent(), a.Sends(), a.Busy())
	}
}

// Satellite: two equal transfers admitted together on one shared link each
// observe ~half the bandwidth — both finish at 2x the solo time.
func TestFabricFairShareHalves(t *testing.T) {
	clock, _, a, b := sharedPair(1000)
	ta, _ := a.Transfer(1000)
	tb, _ := b.Transfer(1000)
	da, _ := ta.Wait()
	db, _ := tb.Wait()
	// Solo: 1s each. Contended the whole way: 2s each.
	if da != 2*time.Second || db != 2*time.Second {
		t.Fatalf("contended durations %v / %v, want 2s each", da, db)
	}
	if clock.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", clock.Now())
	}
	// Observed per-transfer rate is ~half the link: 1000 bytes in 2s.
	if rate := float64(ta.Bytes()) / da.Seconds(); rate < 480 || rate > 520 {
		t.Fatalf("observed rate %.0f B/s, want ~500", rate)
	}
}

// Progressive fair share: a transfer's cost integrates over contender-set
// changes. B arrives halfway through A's solo run; A gets full bandwidth
// before, half after.
func TestFabricProgressiveShare(t *testing.T) {
	clock, _, a, b := sharedPair(1000)
	ta, _ := a.Transfer(1000) // solo: 1s
	clock.Advance(500 * time.Millisecond)
	tb, _ := b.Transfer(1000)
	da, _ := ta.Wait()
	db, _ := tb.Wait()
	// A: 500ms at 1000 B/s (500 B) + 500 B at 500 B/s (1s) = 1.5s total.
	if da != 1500*time.Millisecond {
		t.Fatalf("A took %v, want 1.5s", da)
	}
	// B: 1s at 500 B/s (500 B) until A finishes, then 500 B at full = 1.5s.
	if db != 1500*time.Millisecond {
		t.Fatalf("B took %v, want 1.5s", db)
	}
}

// Satellite: byte conservation — the shared link's bytesSent equals the sum
// of per-transfer (and per-port) bytes, with no float residue.
func TestFabricByteConservation(t *testing.T) {
	_, f, a, b := sharedPair(117_000_000)
	sizes := []uint64{4096, 1 << 20, 3 << 20, 12345, 999999, 4096 * 7}
	var want uint64
	var trs []*Transfer
	for i, n := range sizes {
		port := a
		if i%2 == 1 {
			port = b
		}
		tr, err := port.Transfer(n)
		if err != nil {
			t.Fatal(err)
		}
		want += n
		trs = append(trs, tr)
	}
	for _, tr := range trs {
		if _, err := tr.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.Report()
	if len(rep.Links) != 1 {
		t.Fatalf("report has %d links, want 1", len(rep.Links))
	}
	bk := rep.Links[0]
	if bk.Name != "backbone" || bk.BytesSent != want {
		t.Fatalf("backbone carried %d bytes, want %d", bk.BytesSent, want)
	}
	if got := a.BytesSent() + b.BytesSent(); got != want {
		t.Fatalf("ports account %d bytes, want %d", got, want)
	}
	if bk.Transfers != uint64(len(sizes)) {
		t.Fatalf("backbone transfers = %d, want %d", bk.Transfers, len(sizes))
	}
	if bk.MaxConcurrent != len(sizes) {
		t.Fatalf("max concurrent = %d, want %d", bk.MaxConcurrent, len(sizes))
	}
}

// Satellite: a fault-injected partition on the shared link stalls every
// tenant; both finish late by the partition length (within the stall-recheck
// quantum).
func TestFabricSharedPartitionStallsAllTenants(t *testing.T) {
	clock, f, a, b := sharedPair(1000)
	inj, err := faults.NewInjector(clock, faults.Plan{{
		Site: faults.SiteLinkPartition,
		At:   200 * time.Millisecond,
		For:  600 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin() // windows are relative to arming
	f.SetLinkFaults("backbone", inj)
	ta, _ := a.Transfer(500) // contended: 1s, partition adds 600ms
	tb, _ := b.Transfer(500)
	da, _ := ta.Wait()
	db, _ := tb.Wait()
	want := 1600 * time.Millisecond
	if da < want || da > want+2*stallRecheck {
		t.Fatalf("A took %v, want ~%v (stalled by the partition)", da, want)
	}
	if db < want || db > want+2*stallRecheck {
		t.Fatalf("B took %v, want ~%v (stalled by the partition)", db, want)
	}
}

// A port-level partition gates admission with the SendErr retry contract.
func TestFabricPortPartitionGatesAdmission(t *testing.T) {
	clock, _, a, _ := sharedPair(1000)
	inj, err := faults.NewInjector(clock, faults.Plan{{
		Site: faults.SiteLinkPartition,
		At:   0,
		For:  100 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	a.SetFaults(inj)
	if _, err := a.Transfer(100); err != ErrPartitioned {
		t.Fatalf("admission during partition: err = %v, want ErrPartitioned", err)
	}
	if a.FailedSends() != 1 {
		t.Fatalf("failedSends = %d, want 1", a.FailedSends())
	}
	clock.Advance(150 * time.Millisecond)
	tr, err := a.Transfer(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Under a scheduler, N processes transferring concurrently settle to the
// same durations as the caller-driven drive, and repeated runs are
// byte-identical.
func TestFabricUnderSchedulerDeterministic(t *testing.T) {
	run := func() ([]time.Duration, FabricReport) {
		clock := simclock.New()
		sched := simclock.NewScheduler(clock)
		f := NewFabric(clock)
		f.AddHost("dst", 0)
		ports := make([]*Link, 3)
		for i := range ports {
			f.AddHost([]string{"s0", "s1", "s2"}[i], 0)
		}
		f.AddLink("backbone", 1000, 0, "s0", "s1", "s2", "dst")
		for i := range ports {
			p, err := f.Dial([]string{"s0", "s1", "s2"}[i], "dst")
			if err != nil {
				t.Fatal(err)
			}
			ports[i] = p
		}
		durs := make([]time.Duration, 3)
		for i := range ports {
			i := i
			sched.Go([]string{"s0", "s1", "s2"}[i], func() {
				clock.Advance(time.Duration(i) * 250 * time.Millisecond)
				tr, err := ports[i].Transfer(1000)
				if err != nil {
					t.Error(err)
					return
				}
				durs[i], _ = tr.Wait()
			})
		}
		sched.Run()
		return durs, f.Report()
	}
	d1, r1 := run()
	d2, r2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("two scheduled runs diverged:\n%v %+v\n%v %+v", d1, r1, d2, r2)
	}
	// Staggered arrivals: s0 runs solo for 250ms, then shares. Everyone's
	// duration must be at least the solo cost and the set must be ordered
	// (earlier arrivals see less lifetime contention here).
	for i, d := range d1 {
		if d < time.Second {
			t.Fatalf("transfer %d took %v, less than the solo cost", i, d)
		}
	}
	var total uint64
	for _, lu := range r1.Links {
		if lu.Name == "backbone" {
			total = lu.BytesSent
		}
	}
	if total != 3000 {
		t.Fatalf("backbone carried %d bytes, want 3000", total)
	}
}

// NIC caps participate in arbitration: two transfers from one NIC-capped
// host split the NIC even when the backbone is fat.
func TestFabricNICCapArbitrates(t *testing.T) {
	clock := simclock.New()
	f := NewFabric(clock)
	f.AddHost("src", 1000) // NIC is the bottleneck
	f.AddHost("d0", 0)
	f.AddHost("d1", 0)
	f.AddLink("backbone", 1_000_000, 0, "src", "d0", "d1")
	p0, err := f.Dial("src", "d0")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := f.Dial("src", "d1")
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := p0.Transfer(1000)
	t1, _ := p1.Transfer(1000)
	d0, _ := t0.Wait()
	d1, _ := t1.Wait()
	if d0 != 2*time.Second || d1 != 2*time.Second {
		t.Fatalf("NIC-capped pair took %v / %v, want 2s each", d0, d1)
	}
	if clock.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", clock.Now())
	}
}

// The settled-bytes integral conserves bytes: once the fabric is idle, each
// trunk's continuous integral agrees with its whole-byte counter to within
// the sub-byte rounding residue per transfer, and its utilization lands in
// (0, 1].
func TestFabricSettledBytesConservation(t *testing.T) {
	_, f, a, b := sharedPair(117_000_000)
	sizes := []uint64{4096, 1 << 20, 3 << 20, 12345, 999999}
	var trs []*Transfer
	for i, n := range sizes {
		port := a
		if i%2 == 1 {
			port = b
		}
		tr, err := port.Transfer(n)
		if err != nil {
			t.Fatal(err)
		}
		trs = append(trs, tr)
	}
	for _, tr := range trs {
		if _, err := tr.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.Report()
	bk, ok := rep.Link("backbone")
	if !ok {
		t.Fatal("no backbone row")
	}
	if tol := float64(bk.Transfers); bk.ConservationError() > tol {
		t.Fatalf("conservation error %.3f bytes over %d transfers (settled %.3f, sent %d)",
			bk.ConservationError(), bk.Transfers, bk.SettledBytes, bk.BytesSent)
	}
	if bk.Utilization <= 0 || bk.Utilization > 1.0001 {
		t.Fatalf("utilization = %v, want (0,1]", bk.Utilization)
	}
	// Concurrent equal transfers saturate the link while busy.
	if bk.Utilization < 0.99 {
		t.Fatalf("saturated link reports utilization %v, want ~1", bk.Utilization)
	}
}

// Per-flow accounting: a contended flow's queueing is the extra time beyond
// its uncontended ideal; a solo flow's queueing is zero.
func TestFabricFlowQueueing(t *testing.T) {
	_, f, a, b := sharedPair(1000)
	ta, _ := a.Transfer(1000) // solo ideal: 1s
	tb, _ := b.Transfer(1000)
	da, _ := ta.Wait()
	tb.Wait()
	rep := f.Report()
	if len(rep.Flows) != 2 {
		t.Fatalf("report has %d flows, want 2", len(rep.Flows))
	}
	fa := rep.Flows[0]
	if fa.Name != "src0->dst" || fa.BytesSent != 1000 || fa.Transfers != 1 {
		t.Fatalf("flow A = %+v", fa)
	}
	// Contended 2s against a 1s ideal: 1s of queueing, no stall.
	if want := da - time.Second; fa.Queueing != want {
		t.Fatalf("flow A queueing = %v, want %v", fa.Queueing, want)
	}
	if fa.Stall != 0 {
		t.Fatalf("flow A stall = %v, want 0", fa.Stall)
	}

	// A later solo transfer adds no queueing.
	ts, _ := a.Transfer(500)
	ts.Wait()
	rep = f.Report()
	if got := rep.Flows[0].Queueing; got != da-time.Second {
		t.Fatalf("solo transfer added queueing: %v", got)
	}
}

// A mid-flight partition shows up as per-flow stall (rate-zero time), within
// the stall-recheck quantum.
func TestFabricFlowStallAccounting(t *testing.T) {
	clock, f, a, _ := sharedPair(1000)
	inj, err := faults.NewInjector(clock, faults.Plan{{
		Site: faults.SiteLinkPartition,
		At:   200 * time.Millisecond,
		For:  600 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	f.SetLinkFaults("backbone", inj)
	tr, _ := a.Transfer(500) // solo 500ms + 600ms partition
	tr.Wait()
	fl := f.Report().Flows[0]
	if fl.Stall < 600*time.Millisecond || fl.Stall > 600*time.Millisecond+2*stallRecheck {
		t.Fatalf("flow stall = %v, want ~600ms", fl.Stall)
	}
	if fl.Queueing < fl.Stall {
		t.Fatalf("queueing %v < stall %v", fl.Queueing, fl.Stall)
	}
}

// With a tracer attached, every transfer becomes a span on its flow's track
// and contention changes become instants on the link's track — and repeat
// runs are byte-identical through the Chrome exporter.
func TestFabricTracerSpans(t *testing.T) {
	run := func() []byte {
		clock := simclock.New()
		f := NewFabric(clock)
		f.AddHost("src0", 0)
		f.AddHost("src1", 0)
		f.AddHost("dst", 0)
		f.AddLink("backbone", 1000, 0, "src0", "src1", "dst")
		tr := obs.New(clock)
		f.SetTracer(tr)
		a, _ := f.Dial("src0", "dst")
		b, _ := f.Dial("src1", "dst")
		ta, _ := a.Transfer(1000)
		tb, _ := b.Transfer(500)
		ta.Wait()
		tb.Wait()

		var begins, ends, contention int
		for _, e := range tr.Events() {
			switch {
			case e.Kind == obs.KindTransfer && e.Phase == obs.PhaseBegin:
				begins++
				if e.Track != obs.TrackFabric+"/src0->dst" && e.Track != obs.TrackFabric+"/src1->dst" {
					t.Fatalf("transfer span on track %q", e.Track)
				}
			case e.Kind == obs.KindTransfer && e.Phase == obs.PhaseEnd:
				ends++
			case e.Kind == obs.KindContention:
				contention++
				if e.Track != obs.TrackFabric+"/backbone" {
					t.Fatalf("contention event on track %q", e.Track)
				}
			case e.Kind == obs.KindSpanError:
				t.Fatalf("span error in fabric trace: %+v", e)
			}
		}
		if begins != 2 || ends != 2 {
			t.Fatalf("transfer spans = %d begins / %d ends, want 2/2", begins, ends)
		}
		if contention == 0 {
			t.Fatal("no contention events")
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("fabric trace not byte-identical across runs")
	}
}

// Duplicate dials of the same host pair get unique, deterministic flow
// names.
func TestFabricDuplicateDialFlowNames(t *testing.T) {
	_, f, _, _ := sharedPair(1000)
	if _, err := f.Dial("src0", "dst"); err != nil {
		t.Fatal(err)
	}
	rep := f.Report()
	if len(rep.Flows) != 3 {
		t.Fatalf("%d flows, want 3", len(rep.Flows))
	}
	if rep.Flows[0].Name != "src0->dst" || rep.Flows[2].Name != "src0->dst#2" {
		t.Fatalf("flow names = %q, %q, %q", rep.Flows[0].Name, rep.Flows[1].Name, rep.Flows[2].Name)
	}
}

// Dial surfaces unroutable pairs and unknown hosts as errors.
func TestFabricDialErrors(t *testing.T) {
	f := NewFabric(simclock.New())
	f.AddHost("a", 0)
	f.AddHost("b", 0)
	if _, err := f.Dial("a", "zzz"); err == nil {
		t.Fatal("Dial to unknown host succeeded")
	}
	if _, err := f.Dial("a", "b"); err == nil {
		t.Fatal("Dial with no connecting link succeeded")
	}
}

// Regression for the settle-residue bound under heavy contention: eight
// flows with mutually-prime sizes arrive in overlapping waves, forcing the
// fair-share fixed point through dozens of recalc events, and the residue
// must stay within one byte per transfer on every trunk —
// FabricReport.VerifyConservation, the invariant the fleet runner asserts
// after every plan.
func TestFabricVerifyConservationEightFlows(t *testing.T) {
	clock := simclock.New()
	f := NewFabric(clock)
	const flows = 8
	hosts := make([]string, 0, flows+1)
	for i := 0; i < flows; i++ {
		h := fmt.Sprintf("src%d", i)
		f.AddHost(h, 50_000_000) // NIC caps add per-host trunks to the bound check
		hosts = append(hosts, h)
	}
	f.AddHost("dst", 0)
	f.AddLink("backbone", 117_000_000, 100*time.Microsecond, append(hosts, "dst")...)

	ports := make([]*Link, flows)
	for i := range ports {
		p, err := f.Dial(hosts[i], "dst")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = p
	}
	// Three waves of staggered transfers per flow: flows join and leave the
	// contender set at different instants, churning the settle fixed point.
	sizes := []uint64{999983, 4096*3 + 1, 1<<20 + 7, 123457, 777767, 4095, 1<<19 + 13, 666013}
	var trs []*Transfer
	for wave := 0; wave < 3; wave++ {
		for i, p := range ports {
			n := sizes[(i+wave)%len(sizes)] + uint64(wave*911)
			tr, err := p.Transfer(n)
			if err != nil {
				t.Fatal(err)
			}
			trs = append(trs, tr)
		}
		clock.Advance(time.Duration(wave+1) * 3 * time.Millisecond)
	}
	for _, tr := range trs {
		if _, err := tr.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.Report()
	if err := rep.VerifyConservation(); err != nil {
		t.Fatal(err)
	}
	for _, u := range rep.Links {
		if res := u.ConservationError(); res > float64(u.Transfers+1) {
			t.Fatalf("link %s residue %.3f exceeds bound %d", u.Name, res, u.Transfers+1)
		}
	}
	// The bound is real: a report whose settled integral drifted past it
	// must fail verification.
	bad := rep
	bad.Links = append([]LinkUsage(nil), rep.Links...)
	bad.Links[0].SettledBytes += float64(bad.Links[0].Transfers + 2)
	if err := bad.VerifyConservation(); err == nil {
		t.Fatal("doctored report passed VerifyConservation")
	}
}

// Route exposes the shared links a flow would cross, for admission
// accounting.
func TestFabricRoute(t *testing.T) {
	f := NewFabric(simclock.New())
	f.AddHost("a", 0)
	f.AddHost("b", 0)
	f.AddHost("c", 0)
	f.AddLink("tor", 1000, 0, "a", "b")
	f.AddLink("spine", 1000, 0, "b", "c")
	route, err := f.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != "tor" || route[1] != "spine" {
		t.Fatalf("route = %v, want [tor spine]", route)
	}
	if _, err := f.Route("a", "zzz"); err == nil {
		t.Fatal("Route to unknown host succeeded")
	}
}
