// Package replication implements Remus-style continuous VM checkpointing
// with RemusDB's "memory deprotection" (paper §2): the closest published
// relative of application-assisted migration. A protected VM is paused
// briefly at every epoch; the pages dirtied since the previous epoch are
// shipped to a backup host, which can resume the VM if the primary fails.
//
// Deprotection reuses the migration framework verbatim: applications declare
// skip-over areas through the same LKM and transfer bitmap, and the
// checkpoint stream simply never carries those pages. For a Java VM this
// means young-generation garbage is not replicated — the experiment the
// RemusDB authors speculated about ("data structures to be suitably omitted
// by this technique are yet to be identified") with JAVMM's answer.
//
// Failover semantics under deprotection: the backup resumes from the last
// epoch with skip-over areas unreplicated, so the application-level contract
// is the same as for migration — those areas must be recoverable or
// unneeded. For JAVMM this is safe only at collection boundaries; the
// replicator therefore reports how much of each epoch's dirty set it
// deprotected so policies can bound the exposure.
package replication

import (
	"errors"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
)

// Config tunes the replicator.
type Config struct {
	// Epoch is the checkpoint interval (Remus commonly runs 25-100 ms).
	Epoch time.Duration
	// Deprotect consults the LKM's transfer bitmap, omitting skip-over
	// pages from checkpoints (RemusDB memory deprotection).
	Deprotect bool
	// CheckpointPauseBase models the stop-and-copy-into-buffer pause at
	// each epoch boundary (the output commit happens asynchronously).
	CheckpointPauseBase time.Duration
	// PausePerPage is the additional pause per dirty page captured.
	PausePerPage time.Duration
}

// FillDefaults populates unset fields.
func (c *Config) FillDefaults() {
	if c.Epoch == 0 {
		c.Epoch = 100 * time.Millisecond
	}
	if c.CheckpointPauseBase == 0 {
		c.CheckpointPauseBase = 500 * time.Microsecond
	}
	if c.PausePerPage == 0 {
		c.PausePerPage = 100 * time.Nanosecond
	}
}

// EpochStats describes one checkpoint.
type EpochStats struct {
	Index       int
	At          time.Duration
	DirtyPages  uint64
	SentPages   uint64
	Deprotected uint64 // dirty pages omitted via the transfer bitmap
	Pause       time.Duration
	CommitTime  time.Duration // network time to push the epoch
}

// Report summarizes a protection run.
type Report struct {
	Epochs      []EpochStats
	TotalBytes  uint64
	TotalPages  uint64
	Deprotected uint64
	TotalPause  time.Duration
	Duration    time.Duration
}

// AvgPause returns the mean per-epoch pause.
func (r *Report) AvgPause() time.Duration {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.TotalPause / time.Duration(len(r.Epochs))
}

// Replicator continuously checkpoints a domain to a backup store.
type Replicator struct {
	Dom    *hypervisor.Domain
	LKM    *guestos.LKM // required when Config.Deprotect is set
	Link   *netsim.Link
	Clock  *simclock.Clock
	Exec   migration.GuestExecutor // may be nil for an idle guest
	Backup *migration.Destination
	Cfg    Config
}

// Errors returned by Protect.
var (
	ErrNoBackup      = errors.New("replication: backup destination required")
	ErrNoLKM         = errors.New("replication: deprotection requires an LKM")
	ErrAlreadyDirty  = errors.New("replication: domain already in log-dirty mode")
	errNotProtecting = errors.New("replication: protection window must be positive")
)

// Protect runs continuous checkpointing for the given virtual duration and
// returns the report. The first checkpoint ships the full memory image (the
// initial synchronization); subsequent epochs ship dirty deltas.
//
// Under deprotection the engine queries the LKM exactly like migration does:
// EvMigrationBegin at start (apps report skip-over areas) and EvVMResumed at
// the end (protection ends; the LKM resets). Shrink notifications are
// honoured throughout, so a shrinking young generation re-protects its
// departed pages immediately.
func (r *Replicator) Protect(window time.Duration) (*Report, error) {
	switch {
	case r.Dom == nil, r.Clock == nil, r.Link == nil:
		return nil, errors.New("replication: Dom, Clock and Link are required")
	case r.Backup == nil:
		return nil, ErrNoBackup
	case r.Cfg.Deprotect && r.LKM == nil:
		return nil, ErrNoLKM
	case window <= 0:
		return nil, errNotProtecting
	}
	r.Cfg.FillDefaults()
	if r.Dom.LogDirtyEnabled() {
		return nil, ErrAlreadyDirty
	}
	if err := r.Dom.EnableLogDirty(); err != nil {
		return nil, err
	}
	defer r.Dom.DisableLogDirty()

	var transfer *mem.Bitmap
	if r.Cfg.Deprotect {
		ep := r.LKM.DaemonEndpoint()
		ep.Bind(func(any) {}) // suspension events are not used by Remus
		ep.Notify(guestos.EvMigrationBegin{})
		transfer = r.LKM.TransferBitmap()
		defer func() {
			// End of protection: reset the LKM via the abort path (no
			// suspension happened).
			ep.Notify(guestos.EvMigrationAborted{})
		}()
	}

	rep := &Report{}
	n := r.Dom.NumPages()
	dirty := mem.NewBitmap(n)
	wire := r.Dom.Store().WireSize()

	// Initial full synchronization; the protection window is measured in
	// steady state, after the backup holds a complete image.
	r.checkpoint(rep, 0, fullBitmap(n), transfer, wire)
	start := r.Clock.Now()

	epoch := 1
	for r.Clock.Now()-start < window {
		slice := r.Cfg.Epoch
		if rem := window - (r.Clock.Now() - start); rem < slice {
			slice = rem
		}
		r.advance(slice)
		r.Dom.PeekAndClear(dirty)
		r.checkpoint(rep, epoch, dirty, transfer, wire)
		epoch++
	}
	rep.Duration = r.Clock.Now() - start
	return rep, nil
}

func fullBitmap(n uint64) *mem.Bitmap {
	b := mem.NewBitmap(n)
	b.SetAll()
	return b
}

// checkpoint captures and ships one epoch.
func (r *Replicator) checkpoint(rep *Report, index int, dirty, transfer *mem.Bitmap, wire uint64) {
	st := EpochStats{Index: index, At: r.Clock.Now(), DirtyPages: dirty.Count()}

	// Select what this epoch replicates: dirty pages minus deprotected
	// skip-over pages (the latter are never even copied into the commit
	// buffer — the saving RemusDB's deprotection is after).
	var toShip []mem.PFN
	dirty.Range(func(p mem.PFN) bool {
		if transfer != nil && !transfer.Test(p) {
			st.Deprotected++
			return true
		}
		toShip = append(toShip, p)
		return true
	})
	st.SentPages = uint64(len(toShip))

	// Capture: the VM pauses while the selected pages are copied into the
	// commit buffer, then resumes; the network push overlaps the next
	// epoch (Remus's asynchronous output commit).
	st.Pause = r.Cfg.CheckpointPauseBase +
		time.Duration(st.SentPages)*r.Cfg.PausePerPage
	r.Dom.Pause()
	for _, p := range toShip {
		// The checkpoint stream has no fault story (yet): receive errors
		// cannot occur on an injector-free destination.
		_ = r.Backup.ReceiveCheckpointPage(p, r.Dom.Store().Export(p))
	}
	r.Clock.Advance(st.Pause)
	r.Dom.Unpause()

	st.CommitTime = r.Link.Send(st.SentPages * wire)
	// The commit is asynchronous: guest time advances with it.
	r.advance(st.CommitTime)

	rep.Epochs = append(rep.Epochs, st)
	rep.TotalPages += st.SentPages
	rep.TotalBytes += st.SentPages * wire
	rep.Deprotected += st.Deprotected
	rep.TotalPause += st.Pause
}

func (r *Replicator) advance(d time.Duration) {
	if d <= 0 {
		return
	}
	if r.Exec != nil && !r.Dom.Paused() {
		r.Exec.Run(d)
		return
	}
	r.Clock.Advance(d)
}
