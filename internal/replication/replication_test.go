package replication

import (
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// dirtier rewrites a mapped range cyclically, with an optional skip-over
// registration. It implements migration.GuestExecutor.
type dirtier struct {
	clock  *simclock.Clock
	proc   *guestos.Process
	hot    mem.VARange
	rate   float64
	cursor mem.VA
	carry  float64
	sock   *guestos.Socket
	skip   []mem.VARange
}

func newDirtier(g *guestos.Guest, clock *simclock.Clock, hot mem.VARange, rate float64) *dirtier {
	d := &dirtier{clock: clock, proc: g.NewProcess("dirtier"), hot: hot, rate: rate, cursor: hot.Start}
	if err := d.proc.Alloc(hot); err != nil {
		panic(err)
	}
	return d
}

func (d *dirtier) register(g *guestos.Guest, skip []mem.VARange) {
	d.skip = skip
	d.sock = g.LKM.RegisterApp(d.proc, func(msg any) {
		if _, ok := msg.(guestos.MsgQuerySkipAreas); ok {
			d.sock.Send(guestos.MsgReportAreas{App: d.sock.App(), Areas: d.skip})
		}
	})
}

func (d *dirtier) Run(dur time.Duration) {
	end := d.clock.Now() + dur
	for d.clock.Now() < end {
		step := time.Millisecond
		if rem := end - d.clock.Now(); rem < step {
			step = rem
		}
		w := d.rate*step.Seconds() + d.carry
		n := int(w)
		d.carry = w - float64(n)
		for i := 0; i < n; i++ {
			d.proc.Write(d.cursor)
			d.cursor += mem.PageSize
			if d.cursor >= d.hot.End {
				d.cursor = d.hot.Start
			}
		}
		d.clock.Advance(step)
	}
}

func newRig(pages uint64) (*guestos.Guest, *simclock.Clock, *Replicator) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(pages), 2)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	r := &Replicator{
		Dom:    dom,
		LKM:    g.LKM,
		Link:   netsim.NewLink(clock, 100*1000*1000, 0),
		Clock:  clock,
		Backup: migration.NewDestination(pages),
	}
	return g, clock, r
}

func TestProtectIdleGuest(t *testing.T) {
	_, _, r := newRig(2048)
	rep, err := r.Protect(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) < 10 {
		t.Fatalf("epochs = %d, want ~10 for 1s at 100ms", len(rep.Epochs))
	}
	// Initial sync ships everything; idle epochs ship nothing.
	if rep.Epochs[0].SentPages != 2048 {
		t.Fatalf("initial sync sent %d pages", rep.Epochs[0].SentPages)
	}
	for _, e := range rep.Epochs[1:] {
		if e.SentPages != 0 {
			t.Fatalf("idle epoch %d sent %d pages", e.Index, e.SentPages)
		}
	}
	if r.Dom.LogDirtyEnabled() {
		t.Fatal("log-dirty left enabled")
	}
}

func TestProtectCapturesDirtyDeltas(t *testing.T) {
	g, clock, r := newRig(4096)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	d := newDirtier(g, clock, hot, 10000)
	r.Exec = d
	rep, err := r.Protect(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var deltaPages uint64
	for _, e := range rep.Epochs[1:] {
		deltaPages += e.SentPages
		if e.SentPages+e.Deprotected != e.DirtyPages {
			t.Fatalf("epoch %d: sent %d + deprotected %d != dirty %d",
				e.Index, e.SentPages, e.Deprotected, e.DirtyPages)
		}
	}
	if deltaPages == 0 {
		t.Fatal("no dirty deltas captured")
	}
	// The backup has every hot page at some version.
	var missing int
	d.proc.AS.Walk(hot, func(va mem.VA, p mem.PFN) {
		if r.Backup.Store.Version(p) == 0 {
			missing++
		}
	})
	if missing != 0 {
		t.Fatalf("%d hot pages never reached the backup", missing)
	}
	if rep.AvgPause() <= 0 {
		t.Fatal("no checkpoint pauses recorded")
	}
}

func TestDeprotectionOmitsSkipAreas(t *testing.T) {
	run := func(deprotect bool) *Report {
		g, clock, r := newRig(4096)
		hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 512*mem.PageSize}
		d := newDirtier(g, clock, hot, 20000)
		d.register(g, []mem.VARange{hot})
		r.Exec = d
		r.Cfg.Deprotect = deprotect
		rep, err := r.Protect(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// The LKM must be reset for future migrations either way.
		if g.LKM.State() != guestos.StateInitialized {
			t.Fatalf("LKM state after protection = %v", g.LKM.State())
		}
		return rep
	}
	plain := run(false)
	dep := run(true)
	if dep.Deprotected == 0 {
		t.Fatal("deprotection omitted nothing")
	}
	if dep.TotalBytes >= plain.TotalBytes {
		t.Fatalf("deprotected traffic %d >= plain %d", dep.TotalBytes, plain.TotalBytes)
	}
	if dep.AvgPause() >= plain.AvgPause() {
		t.Fatalf("deprotected avg pause %v >= plain %v (capture copies fewer pages)",
			dep.AvgPause(), plain.AvgPause())
	}
}

func TestProtectValidation(t *testing.T) {
	_, _, r := newRig(64)
	if _, err := r.Protect(0); err == nil {
		t.Fatal("zero window accepted")
	}
	r.Backup = nil
	if _, err := r.Protect(time.Second); err != ErrNoBackup {
		t.Fatalf("err = %v, want ErrNoBackup", err)
	}
	_, _, r2 := newRig(64)
	r2.Cfg.Deprotect = true
	r2.LKM = nil
	if _, err := r2.Protect(time.Second); err != ErrNoLKM {
		t.Fatalf("err = %v, want ErrNoLKM", err)
	}
	_, _, r3 := newRig(64)
	r3.Dom.EnableLogDirty()
	if _, err := r3.Protect(time.Second); err != ErrAlreadyDirty {
		t.Fatalf("err = %v, want ErrAlreadyDirty", err)
	}
}

// TestJavaVMDeprotection protects a real derby VM: RemusDB's open question
// answered with JAVMM's skip-over areas — young-generation garbage is not
// replicated.
func TestJavaVMDeprotection(t *testing.T) {
	if testing.Short() {
		t.Skip("full VM protection run is slow in -short mode")
	}
	run := func(deprotect bool) *Report {
		prof, err := workload.Lookup("derby")
		if err != nil {
			t.Fatal(err)
		}
		vm, err := workload.Boot(workload.BootConfig{Profile: prof, Assisted: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		vm.Driver.Run(60 * time.Second)
		r := &Replicator{
			Dom:    vm.Dom,
			LKM:    vm.Guest.LKM,
			Link:   netsim.NewLink(vm.Clock, netsim.GigabitEffective, 0),
			Clock:  vm.Clock,
			Exec:   vm.Driver,
			Backup: migration.NewDestination(vm.Dom.NumPages()),
			Cfg:    Config{Deprotect: deprotect},
		}
		rep, err := r.Protect(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if vm.Driver.Err != nil {
			t.Fatal(vm.Driver.Err)
		}
		return rep
	}
	plain := run(false)
	dep := run(true)
	// Derby dirties ~280 MB/s of young garbage: deprotection must cut the
	// checkpoint stream drastically.
	if float64(dep.TotalBytes) > 0.6*float64(plain.TotalBytes) {
		t.Fatalf("deprotected stream %d not ≪ plain %d", dep.TotalBytes, plain.TotalBytes)
	}
}
