package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetClearTest(t *testing.T) {
	b := NewBitmap(130)
	for _, p := range []PFN{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(p) {
			t.Fatalf("fresh bitmap has bit %d set", p)
		}
		b.Set(p)
		if !b.Test(p) {
			t.Fatalf("bit %d not set after Set", p)
		}
		b.Clear(p)
		if b.Test(p) {
			t.Fatalf("bit %d set after Clear", p)
		}
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	b := NewBitmap(10)
	for name, fn := range map[string]func(){
		"Set":   func() { b.Set(10) },
		"Clear": func() { b.Clear(10) },
		"Test":  func() { b.Test(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(10) on 10-bit bitmap did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBitmapSetAllCount(t *testing.T) {
	for _, n := range []uint64{1, 63, 64, 65, 100, 128, 1000} {
		b := NewBitmap(n)
		b.SetAll()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count after SetAll = %d", n, got)
		}
		b.ClearAll()
		if got := b.Count(); got != 0 {
			t.Fatalf("n=%d: Count after ClearAll = %d", n, got)
		}
	}
}

func TestBitmapClone(t *testing.T) {
	b := NewBitmap(100)
	b.Set(7)
	c := b.Clone()
	c.Set(8)
	if b.Test(8) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(7) {
		t.Fatal("Clone dropped original bit")
	}
}

func TestBitmapCopyFrom(t *testing.T) {
	a, b := NewBitmap(70), NewBitmap(70)
	a.Set(3)
	b.Set(60)
	b.CopyFrom(a)
	if !b.Test(3) || b.Test(60) {
		t.Fatal("CopyFrom did not overwrite")
	}
}

func TestBitmapBooleanOps(t *testing.T) {
	a, b := NewBitmap(128), NewBitmap(128)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Test(2) {
		t.Fatal("And wrong")
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if andnot.Count() != 1 || !andnot.Test(1) {
		t.Fatal("AndNot wrong")
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 3 {
		t.Fatal("Or wrong")
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	a, b := NewBitmap(64), NewBitmap(65)
	for name, fn := range map[string]func(){
		"And":      func() { a.And(b) },
		"AndNot":   func() { a.AndNot(b) },
		"Or":       func() { a.Or(b) },
		"CopyFrom": func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBitmapRangeOrderAndStop(t *testing.T) {
	b := NewBitmap(200)
	want := []PFN{0, 5, 63, 64, 150, 199}
	for _, p := range want {
		b.Set(p)
	}
	var got []PFN
	b.Range(func(p PFN) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
	var count int
	b.Range(func(PFN) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Range did not stop: visited %d", count)
	}
}

func TestBitmapNextSet(t *testing.T) {
	b := NewBitmap(200)
	b.Set(5)
	b.Set(64)
	b.Set(199)
	cases := []struct {
		from, want PFN
	}{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b.Clear(199)
	if got := b.NextSet(65); got != NoPFN {
		t.Errorf("NextSet past last bit = %d, want NoPFN", got)
	}
	if got := b.NextSet(200); got != NoPFN {
		t.Errorf("NextSet out of range = %d, want NoPFN", got)
	}
}

// TestBitmapQuickAgainstMap cross-checks the bitmap against a map[PFN]bool
// reference under random operations.
func TestBitmapQuickAgainstMap(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(42))
	b := NewBitmap(n)
	ref := make(map[PFN]bool)
	for i := 0; i < 5000; i++ {
		p := PFN(rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			b.Set(p)
			ref[p] = true
		case 1:
			b.Clear(p)
			delete(ref, p)
		case 2:
			if b.Test(p) != ref[p] {
				t.Fatalf("step %d: Test(%d) = %v, ref %v", i, p, b.Test(p), ref[p])
			}
		}
	}
	if got := b.Count(); got != uint64(len(ref)) {
		t.Fatalf("Count = %d, ref %d", got, len(ref))
	}
}

// De Morgan on bitmaps: a &^ b == a & ^b is implicit in AndNot; check
// count identity |a| = |a&b| + |a&^b| with testing/quick over random words.
func TestBitmapCountIdentity(t *testing.T) {
	f := func(aw, bw [3]uint64) bool {
		a, b := NewBitmap(192), NewBitmap(192)
		for i := 0; i < 3; i++ {
			a.words[i] = aw[i]
			b.words[i] = bw[i]
		}
		and := a.Clone()
		and.And(b)
		andnot := a.Clone()
		andnot.AndNot(b)
		return a.Count() == and.Count()+andnot.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
