package mem

import "testing"

func TestPageDigestKnownVectors(t *testing.T) {
	// FNV-1a reference vectors.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := PageDigest([]byte(c.in)); got != c.want {
			t.Errorf("PageDigest(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestPageDigestDistinguishesPayloads(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b := []byte{1, 2, 3, 4, 5, 6, 7, 9}
	if PageDigest(a) == PageDigest(b) {
		t.Fatal("single-bit payload change did not change the digest")
	}
	if PageDigest(a) != PageDigest(append([]byte(nil), a...)) {
		t.Fatal("digest is not a pure function of payload bytes")
	}
}

func TestMixDigestOrderAndPFNSensitive(t *testing.T) {
	da, db := PageDigest([]byte("aaaa")), PageDigest([]byte("bbbb"))
	ab := MixDigest(MixDigest(0, 1, da), 2, db)
	ba := MixDigest(MixDigest(0, 2, db), 1, da)
	if ab == ba {
		t.Fatal("rolling digest is order-insensitive; audit trail would miss reordering")
	}
	// Same payloads delivered to swapped PFNs must differ too.
	swapped := MixDigest(MixDigest(0, 2, da), 1, db)
	if ab == swapped {
		t.Fatal("rolling digest ignores which PFN received which payload")
	}
}
