package mem

// Page content digests for end-to-end transfer integrity.
//
// Every page payload crossing the migration link carries an FNV-1a digest of
// its exported bytes; the destination recomputes the digest on receipt and
// keeps a per-PFN table plus a run-level rolling summary. The switchover
// audit compares the source's expectation against the destination's table,
// so a payload corrupted in flight (the corrupt-page-stream fault site, or a
// real-world bit flip) can never complete a migration silently.
//
// FNV-1a is used deliberately: it is dependency-free, deterministic across
// runs and platforms (the simulator's reproducibility contract), and cheap
// enough to compute inline on every transfer. It is an integrity check
// against accidental corruption, not a cryptographic MAC.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PageDigest returns the FNV-1a 64-bit digest of a page payload as exported
// by a PageStore. It accepts any payload length, so it works for both the
// VersionStore's 8-byte version export and the ByteStore's full-page export.
func PageDigest(payload []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range payload {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// MixDigest folds one per-page digest (tagged with its PFN so that swapped
// payloads still change the summary) into a run-level rolling digest. The
// mix is order-dependent, which is what an audit trail wants: the rolling
// value identifies the exact receive sequence, not just the final state.
func MixDigest(rolling uint64, p PFN, digest uint64) uint64 {
	h := rolling ^ (uint64(p) * fnvPrime64)
	h ^= digest
	h *= fnvPrime64
	return h
}
