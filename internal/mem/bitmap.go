package mem

import "math/bits"

// Bitmap is a fixed-size bitset indexed by PFN. Both the hypervisor's dirty
// bitmap and the guest kernel's transfer bitmap (paper §3.3.3) are Bitmaps:
// one bit per VM memory page, so 32 KiB of bitmap per GiB of VM memory.
//
// The zero value is not usable; create Bitmaps with NewBitmap.
type Bitmap struct {
	words []uint64
	n     uint64 // number of valid bits
}

// NewBitmap returns a bitmap covering n pages, all bits cleared.
func NewBitmap(n uint64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits (pages) the bitmap covers.
func (b *Bitmap) Len() uint64 { return b.n }

// Set sets the bit for p. Out-of-range PFNs panic: a PFN beyond the VM's
// memory indicates a page-table walk bug, which must not be masked.
func (b *Bitmap) Set(p PFN) {
	b.check(p)
	b.words[p>>6] |= 1 << (p & 63)
}

// Clear clears the bit for p.
func (b *Bitmap) Clear(p PFN) {
	b.check(p)
	b.words[p>>6] &^= 1 << (p & 63)
}

// Test reports whether the bit for p is set.
func (b *Bitmap) Test(p PFN) bool {
	b.check(p)
	return b.words[p>>6]&(1<<(p&63)) != 0
}

func (b *Bitmap) check(p PFN) {
	if uint64(p) >= b.n {
		panic("mem: bitmap index out of range")
	}
}

// SetAll sets every valid bit. The transfer bitmap is initialized with all
// bits set: by default every dirty page is transferred (paper §3.3.4).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll clears every bit.
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so popcounts stay exact.
func (b *Bitmap) trim() {
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// CopyFrom overwrites b with src. The bitmaps must be the same length.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.n != src.n {
		panic("mem: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
}

// And intersects b with o in place (b &= o).
func (b *Bitmap) And(o *Bitmap) {
	if b.n != o.n {
		panic("mem: And length mismatch")
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// AndNot removes o's set bits from b in place (b &^= o).
func (b *Bitmap) AndNot(o *Bitmap) {
	if b.n != o.n {
		panic("mem: AndNot length mismatch")
	}
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Or unions o into b in place (b |= o).
func (b *Bitmap) Or(o *Bitmap) {
	if b.n != o.n {
		panic("mem: Or length mismatch")
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// Range calls fn for every set bit in ascending PFN order. If fn returns
// false, iteration stops.
func (b *Bitmap) Range(fn func(p PFN) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(PFN(wi*64 + bit)) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the first set bit at or after p, or NoPFN if none.
func (b *Bitmap) NextSet(p PFN) PFN {
	if uint64(p) >= b.n {
		return NoPFN
	}
	wi := int(p >> 6)
	w := b.words[wi] >> (p & 63) << (p & 63) // mask bits below p
	for {
		if w != 0 {
			return PFN(wi*64 + bits.TrailingZeros64(w))
		}
		wi++
		if wi >= len(b.words) {
			return NoPFN
		}
		w = b.words[wi]
	}
}
