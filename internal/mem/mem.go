// Package mem provides the memory primitives shared by the guest, the
// hypervisor and the migration engine: page geometry, typed page frame
// numbers and virtual addresses, bitmaps, and page stores.
//
// The simulator works at the same granularity as Xen's migration tooling:
// 4 KiB pages identified by Page Frame Numbers (PFNs) in the guest's
// pseudo-physical address space. Applications, as in the paper, speak Virtual
// Addresses (VAs); the guest kernel bridges the two (paper §3.2).
package mem

import "fmt"

const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a guest memory page in bytes (4 KiB), matching
	// the page size assumed throughout the paper (§3.3.3).
	PageSize = 1 << PageShift
	// PageMask masks the offset bits of an address.
	PageMask = PageSize - 1
)

// PFN is a guest page frame number: an index into the VM's contiguous
// pseudo-physical memory. The migration daemon transfers memory in PFN space
// (paper §3.2).
type PFN uint64

// VA is a guest virtual address. Applications describe skip-over areas as VA
// ranges (paper §3.3.2).
type VA uint64

// NoPFN marks an unmapped translation.
const NoPFN = PFN(^uint64(0))

// PageOf returns the virtual page number containing va.
func (va VA) PageOf() uint64 { return uint64(va) >> PageShift }

// Offset returns the offset of va within its page.
func (va VA) Offset() uint64 { return uint64(va) & PageMask }

// PageBase returns the address of the first byte of va's page.
func (va VA) PageBase() VA { return va &^ VA(PageMask) }

// Bytes returns the byte address of the first byte of the frame.
func (p PFN) Bytes() uint64 { return uint64(p) << PageShift }

// VARange is a half-open virtual address range [Start, End). Applications
// report skip-over areas as VARanges.
type VARange struct {
	Start VA
	End   VA
}

// Len returns the number of bytes covered by the range.
func (r VARange) Len() uint64 {
	if r.End <= r.Start {
		return 0
	}
	return uint64(r.End - r.Start)
}

// Empty reports whether the range covers no bytes.
func (r VARange) Empty() bool { return r.End <= r.Start }

// Contains reports whether va lies inside the range.
func (r VARange) Contains(va VA) bool { return va >= r.Start && va < r.End }

// Overlaps reports whether the two ranges share any byte.
func (r VARange) Overlaps(o VARange) bool {
	return !r.Empty() && !o.Empty() && r.Start < o.End && o.Start < r.End
}

// Intersect returns the overlap of the two ranges (possibly empty).
func (r VARange) Intersect(o VARange) VARange {
	out := VARange{Start: maxVA(r.Start, o.Start), End: minVA(r.End, o.End)}
	if out.Empty() {
		return VARange{}
	}
	return out
}

// PageAlignInward shrinks the range to whole pages: the start rounds up to the
// next page boundary and the end rounds down to the previous one. This is the
// alignment rule the LKM applies to application-specified skip-over areas so
// that every page in the aligned range may be skipped in its entirety
// (paper §3.3.2). The result may be empty.
func (r VARange) PageAlignInward() VARange {
	start := VA((uint64(r.Start) + PageMask) &^ uint64(PageMask))
	end := r.End &^ VA(PageMask)
	if end <= start {
		return VARange{}
	}
	return VARange{Start: start, End: end}
}

// Pages returns the number of whole pages in a page-aligned range.
func (r VARange) Pages() uint64 { return r.Len() / PageSize }

// String renders the range like "[0x3b000,0x8b000)".
func (r VARange) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Start), uint64(r.End))
}

// Subtract returns the parts of r not covered by o, in address order. The
// result has zero, one or two ranges. The LKM uses it to compute the VA
// ranges that joined or left a skip-over area between bitmap updates.
func (r VARange) Subtract(o VARange) []VARange {
	if r.Empty() {
		return nil
	}
	if !r.Overlaps(o) {
		return []VARange{r}
	}
	var out []VARange
	if o.Start > r.Start {
		out = append(out, VARange{Start: r.Start, End: o.Start})
	}
	if o.End < r.End {
		out = append(out, VARange{Start: o.End, End: r.End})
	}
	return out
}

func minVA(a, b VA) VA {
	if a < b {
		return a
	}
	return b
}

func maxVA(a, b VA) VA {
	if a > b {
		return a
	}
	return b
}
