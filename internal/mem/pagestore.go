package mem

import (
	"encoding/binary"
	"fmt"
)

// PageStore holds the contents of a VM's pseudo-physical memory and is the
// interface between the guest (which writes pages) and the migration engine
// (which copies pages between hosts).
//
// Two implementations are provided. VersionStore models each page's content
// as a monotonically increasing version stamp; a "transfer" copies the stamp.
// This is cheap enough to simulate multi-GiB VMs and still lets tests verify
// migration correctness exactly (destination version == source version for
// every page that had to be migrated). ByteStore holds real 4 KiB buffers and
// backs the real-TCP integration tests and the compression extension.
type PageStore interface {
	// NumPages returns the number of pages in the store.
	NumPages() uint64
	// Write records a guest write to page p. It returns the page's new
	// version.
	Write(p PFN) uint64
	// Version returns the page's current version (0 = never written).
	Version(p PFN) uint64
	// Export serializes page p for transmission.
	Export(p PFN) []byte
	// Import overwrites page p with data produced by Export.
	Import(p PFN, data []byte) error
	// WireSize returns the number of bytes a page transfer occupies on the
	// network. For both stores this is PageSize: the version encoding is a
	// modelling shortcut, not a claim of compression.
	WireSize() uint64
}

// VersionStore is the versioned PageStore used by the deterministic
// simulations. The zero value is not usable; use NewVersionStore.
type VersionStore struct {
	versions []uint64
}

// NewVersionStore returns a store of n pages, all at version 0.
func NewVersionStore(n uint64) *VersionStore {
	return &VersionStore{versions: make([]uint64, n)}
}

// NumPages implements PageStore.
func (s *VersionStore) NumPages() uint64 { return uint64(len(s.versions)) }

// Write implements PageStore.
func (s *VersionStore) Write(p PFN) uint64 {
	s.versions[p]++
	return s.versions[p]
}

// Version implements PageStore.
func (s *VersionStore) Version(p PFN) uint64 { return s.versions[p] }

// Export implements PageStore. The wire format is the 8-byte big-endian
// version.
func (s *VersionStore) Export(p PFN) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, s.versions[p])
	return buf
}

// Import implements PageStore.
func (s *VersionStore) Import(p PFN, data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("mem: version page payload is %d bytes, want 8", len(data))
	}
	s.versions[p] = binary.BigEndian.Uint64(data)
	return nil
}

// WireSize implements PageStore.
func (s *VersionStore) WireSize() uint64 { return PageSize }

// ByteStore is a PageStore with real page contents. Guest writes stamp a
// deterministic pattern derived from the page's version so that two stores
// agree byte-for-byte iff their versions agree.
type ByteStore struct {
	versions []uint64
	data     []byte
}

// NewByteStore returns a byte-backed store of n pages.
func NewByteStore(n uint64) *ByteStore {
	return &ByteStore{
		versions: make([]uint64, n),
		data:     make([]byte, n*PageSize),
	}
}

// NumPages implements PageStore.
func (s *ByteStore) NumPages() uint64 { return uint64(len(s.versions)) }

// Write implements PageStore.
func (s *ByteStore) Write(p PFN) uint64 {
	s.versions[p]++
	s.stamp(p)
	return s.versions[p]
}

// stamp fills the page with a pattern derived from (pfn, version).
func (s *ByteStore) stamp(p PFN) {
	page := s.Page(p)
	v := s.versions[p]
	binary.BigEndian.PutUint64(page[:8], uint64(p))
	binary.BigEndian.PutUint64(page[8:16], v)
	// A simple xorshift fill makes the page content version-dependent
	// throughout, so a partial copy cannot masquerade as a full one.
	x := uint64(p)*0x9e3779b97f4a7c15 + v
	for off := 16; off < PageSize; off += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.BigEndian.PutUint64(page[off:off+8], x)
	}
}

// Page returns the live 4 KiB slice backing page p.
func (s *ByteStore) Page(p PFN) []byte {
	off := uint64(p) * PageSize
	return s.data[off : off+PageSize]
}

// Version implements PageStore.
func (s *ByteStore) Version(p PFN) uint64 { return s.versions[p] }

// Export implements PageStore. The wire format is version followed by the
// raw page bytes.
func (s *ByteStore) Export(p PFN) []byte {
	buf := make([]byte, 8+PageSize)
	binary.BigEndian.PutUint64(buf[:8], s.versions[p])
	copy(buf[8:], s.Page(p))
	return buf
}

// Import implements PageStore.
func (s *ByteStore) Import(p PFN, data []byte) error {
	if len(data) != 8+PageSize {
		return fmt.Errorf("mem: byte page payload is %d bytes, want %d", len(data), 8+PageSize)
	}
	s.versions[p] = binary.BigEndian.Uint64(data[:8])
	copy(s.Page(p), data[8:])
	return nil
}

// WireSize implements PageStore.
func (s *ByteStore) WireSize() uint64 { return PageSize }
