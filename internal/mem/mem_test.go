package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	va := VA(0x3b07)
	if got := va.PageOf(); got != 3 {
		t.Fatalf("PageOf = %d, want 3", got)
	}
	if got := va.Offset(); got != 0xb07 {
		t.Fatalf("Offset = %#x, want 0xb07", got)
	}
	if got := va.PageBase(); got != 0x3000 {
		t.Fatalf("PageBase = %#x, want 0x3000", got)
	}
	if got := PFN(3).Bytes(); got != 0x3000 {
		t.Fatalf("PFN(3).Bytes = %#x, want 0x3000", got)
	}
}

func TestVARangeBasics(t *testing.T) {
	r := VARange{Start: 0x1000, End: 0x3000}
	if r.Len() != 0x2000 {
		t.Fatalf("Len = %#x", r.Len())
	}
	if r.Empty() {
		t.Fatal("non-empty range reported Empty")
	}
	if !r.Contains(0x1000) || r.Contains(0x3000) {
		t.Fatal("Contains boundary semantics wrong (half-open expected)")
	}
	if (VARange{Start: 5, End: 5}).Len() != 0 {
		t.Fatal("empty range has nonzero Len")
	}
	if (VARange{Start: 9, End: 4}).Len() != 0 {
		t.Fatal("inverted range has nonzero Len")
	}
}

func TestVARangeOverlapsIntersect(t *testing.T) {
	a := VARange{Start: 0x1000, End: 0x3000}
	b := VARange{Start: 0x2000, End: 0x4000}
	c := VARange{Start: 0x3000, End: 0x4000}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping ranges not detected")
	}
	if a.Overlaps(c) {
		t.Fatal("touching half-open ranges should not overlap")
	}
	got := a.Intersect(b)
	if got.Start != 0x2000 || got.End != 0x3000 {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint Intersect not empty")
	}
}

// TestPageAlignInward checks the §3.3.2 rule: start rounds up, end rounds
// down, so every page in the aligned range is wholly inside the original.
func TestPageAlignInward(t *testing.T) {
	cases := []struct {
		in, want VARange
	}{
		{VARange{0x3b00, 0x8aff}, VARange{0x4000, 0x8000}},
		{VARange{0x4000, 0x8000}, VARange{0x4000, 0x8000}},
		{VARange{0x4001, 0x4fff}, VARange{}},
		{VARange{0x0, 0x1000}, VARange{0x0, 0x1000}},
		{VARange{0x10, 0x20}, VARange{}},
	}
	for _, c := range cases {
		if got := c.in.PageAlignInward(); got != c.want {
			t.Errorf("PageAlignInward(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPageAlignInwardProperty(t *testing.T) {
	f := func(start, length uint32) bool {
		r := VARange{Start: VA(start), End: VA(start) + VA(length)}
		a := r.PageAlignInward()
		if a.Empty() {
			return true
		}
		// Aligned boundaries, and contained in the original.
		return a.Start.Offset() == 0 && a.End.Offset() == 0 &&
			a.Start >= r.Start && a.End <= r.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubtract(t *testing.T) {
	r := VARange{0x1000, 0x5000}
	cases := []struct {
		o    VARange
		want []VARange
	}{
		{VARange{0x2000, 0x3000}, []VARange{{0x1000, 0x2000}, {0x3000, 0x5000}}},
		{VARange{0x0, 0x6000}, nil},
		{VARange{0x5000, 0x6000}, []VARange{r}},
		{VARange{0x1000, 0x2000}, []VARange{{0x2000, 0x5000}}},
		{VARange{0x4000, 0x6000}, []VARange{{0x1000, 0x4000}}},
	}
	for _, c := range cases {
		got := r.Subtract(c.o)
		if len(got) != len(c.want) {
			t.Errorf("Subtract(%v) = %v, want %v", c.o, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Subtract(%v)[%d] = %v, want %v", c.o, i, got[i], c.want[i])
			}
		}
	}
}

// TestSubtractProperty: the subtraction pieces exactly tile r minus o.
func TestSubtractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		r := VARange{VA(rng.Intn(100)), VA(rng.Intn(100))}
		o := VARange{VA(rng.Intn(100)), VA(rng.Intn(100))}
		pieces := r.Subtract(o)
		var total uint64
		for _, p := range pieces {
			if p.Empty() {
				t.Fatalf("Subtract produced empty piece %v", p)
			}
			if p.Overlaps(o) {
				t.Fatalf("piece %v overlaps subtracted %v", p, o)
			}
			if p.Start < r.Start || p.End > r.End {
				t.Fatalf("piece %v outside %v", p, r)
			}
			total += p.Len()
		}
		want := r.Len() - r.Intersect(o).Len()
		if total != want {
			t.Fatalf("Subtract(%v, %v) covers %d bytes, want %d", r, o, total, want)
		}
	}
}
