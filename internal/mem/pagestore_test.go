package mem

import (
	"bytes"
	"testing"
)

func TestVersionStoreWriteBumps(t *testing.T) {
	s := NewVersionStore(4)
	if s.Version(2) != 0 {
		t.Fatal("fresh page has nonzero version")
	}
	if v := s.Write(2); v != 1 {
		t.Fatalf("first Write = %d, want 1", v)
	}
	if v := s.Write(2); v != 2 {
		t.Fatalf("second Write = %d, want 2", v)
	}
	if s.Version(3) != 0 {
		t.Fatal("Write leaked to another page")
	}
}

func TestVersionStoreExportImportRoundTrip(t *testing.T) {
	src := NewVersionStore(4)
	dst := NewVersionStore(4)
	src.Write(1)
	src.Write(1)
	src.Write(3)
	for p := PFN(0); p < 4; p++ {
		if err := dst.Import(p, src.Export(p)); err != nil {
			t.Fatal(err)
		}
	}
	for p := PFN(0); p < 4; p++ {
		if dst.Version(p) != src.Version(p) {
			t.Fatalf("page %d: dst %d src %d", p, dst.Version(p), src.Version(p))
		}
	}
}

func TestVersionStoreImportBadPayload(t *testing.T) {
	s := NewVersionStore(1)
	if err := s.Import(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestVersionStoreWireSizeIsPage(t *testing.T) {
	if got := NewVersionStore(1).WireSize(); got != PageSize {
		t.Fatalf("WireSize = %d, want %d", got, PageSize)
	}
}

func TestByteStoreStampDeterministic(t *testing.T) {
	a, b := NewByteStore(2), NewByteStore(2)
	a.Write(1)
	b.Write(1)
	if !bytes.Equal(a.Page(1), b.Page(1)) {
		t.Fatal("same (pfn,version) produced different contents")
	}
	a.Write(1)
	if bytes.Equal(a.Page(1), b.Page(1)) {
		t.Fatal("different versions produced identical contents")
	}
}

func TestByteStoreContentsDifferAcrossPages(t *testing.T) {
	s := NewByteStore(2)
	s.Write(0)
	s.Write(1)
	if bytes.Equal(s.Page(0), s.Page(1)) {
		t.Fatal("distinct pages at same version have identical contents")
	}
}

func TestByteStoreExportImportRoundTrip(t *testing.T) {
	src := NewByteStore(3)
	dst := NewByteStore(3)
	src.Write(0)
	src.Write(2)
	src.Write(2)
	for p := PFN(0); p < 3; p++ {
		if err := dst.Import(p, src.Export(p)); err != nil {
			t.Fatal(err)
		}
	}
	for p := PFN(0); p < 3; p++ {
		if dst.Version(p) != src.Version(p) {
			t.Fatalf("page %d version mismatch", p)
		}
		if !bytes.Equal(dst.Page(p), src.Page(p)) {
			t.Fatalf("page %d content mismatch", p)
		}
	}
}

func TestByteStoreImportBadPayload(t *testing.T) {
	s := NewByteStore(1)
	if err := s.Import(0, make([]byte, PageSize)); err == nil {
		t.Fatal("payload without version header accepted")
	}
}

func TestPageStoreInterfaceCompliance(t *testing.T) {
	var _ PageStore = NewVersionStore(1)
	var _ PageStore = NewByteStore(1)
}
