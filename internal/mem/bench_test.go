package mem

import "testing"

// Benchmarks for the primitives on the migration hot path: the engine tests
// and iterates bitmap bits for every page of every round.

func BenchmarkBitmapSetClear(b *testing.B) {
	bm := NewBitmap(1 << 19) // 2 GiB of pages
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := PFN(i) & (1<<19 - 1)
		bm.Set(p)
		bm.Clear(p)
	}
}

func BenchmarkBitmapTest(b *testing.B) {
	bm := NewBitmap(1 << 19)
	for p := PFN(0); p < 1<<19; p += 3 {
		bm.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Test(PFN(i) & (1<<19 - 1))
	}
}

func BenchmarkBitmapCount(b *testing.B) {
	bm := NewBitmap(1 << 19)
	bm.SetAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Count()
	}
}

func BenchmarkBitmapRangeSparse(b *testing.B) {
	bm := NewBitmap(1 << 19)
	for p := PFN(0); p < 1<<19; p += 64 {
		bm.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		bm.Range(func(PFN) bool { n++; return true })
	}
}

func BenchmarkBitmapAndNot(b *testing.B) {
	x, y := NewBitmap(1<<19), NewBitmap(1<<19)
	x.SetAll()
	for p := PFN(0); p < 1<<19; p += 2 {
		y.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndNot(y)
		x.Or(y)
	}
}

func BenchmarkVersionStoreWrite(b *testing.B) {
	s := NewVersionStore(1 << 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write(PFN(i) & (1<<19 - 1))
	}
}

func BenchmarkVersionStoreExportImport(b *testing.B) {
	src := NewVersionStore(1 << 10)
	dst := NewVersionStore(1 << 10)
	for p := PFN(0); p < 1<<10; p++ {
		src.Write(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := PFN(i) & (1<<10 - 1)
		if err := dst.Import(p, src.Export(p)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByteStoreWrite(b *testing.B) {
	s := NewByteStore(1 << 12)
	b.SetBytes(PageSize)
	for i := 0; i < b.N; i++ {
		s.Write(PFN(i) & (1<<12 - 1))
	}
}

func BenchmarkBitmapRangeDense(b *testing.B) {
	bm := NewBitmap(1 << 19)
	for p := PFN(0); p < 1<<19; p += 2 {
		bm.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		bm.Range(func(PFN) bool { n++; return true })
	}
}

func BenchmarkBitmapNextSet(b *testing.B) {
	bm := NewBitmap(1 << 19)
	for p := PFN(0); p < 1<<19; p += 7 {
		bm.Set(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		for p := bm.NextSet(0); p != NoPFN; p = bm.NextSet(p + 1) {
			n++
		}
	}
}

// The digest primitives run once per page crossing the link (and once per
// audited page at switchover), so their per-call cost scales every
// integrity-enabled migration.

func BenchmarkPageDigest4K(b *testing.B) {
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i * 31)
	}
	b.SetBytes(PageSize)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += PageDigest(page)
	}
	benchDigestSink = sink
}

func BenchmarkPageDigest8B(b *testing.B) {
	word := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += PageDigest(word)
	}
	benchDigestSink = sink
}

func BenchmarkMixDigest(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = MixDigest(sink, PFN(i), uint64(i)*0x9E3779B97F4A7C15)
	}
	benchDigestSink = sink
}

// benchDigestSink defeats dead-code elimination of the digest benchmarks.
var benchDigestSink uint64
