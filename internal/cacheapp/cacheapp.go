// Package cacheapp implements a memcached-like in-guest caching application,
// the second application family the paper's §6 proposes for the
// application-assisted migration framework: "the application can specify a
// portion of its caching memory space to be skipped over by the migration
// daemon, effectively shrinking the cache in the destination. To reduce the
// resulting performance impact ... the application can purge the least
// frequently and/or the least recently used cache data."
//
// The app keeps a contiguous cache region: a hot head (frequently written,
// always retained) and a cold tail (LRU victims). During migration it
// reports the cold tail as its skip-over area; when asked to prepare for
// suspension it purges those entries from its index and confirms readiness.
// After resumption the cold tail is empty: lookups that would have hit it
// miss and refill it gradually, which is the throughput dip the extension
// trades for migration speed.
package cacheapp

import (
	"errors"
	"fmt"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// Config parameterizes the cache application.
type Config struct {
	Guest *guestos.Guest
	Clock *simclock.Clock

	// CacheBase/CacheBytes place the cache region in the process VA space.
	CacheBase  mem.VA
	CacheBytes uint64
	// HotFraction of the cache is retained across migration (default 0.25).
	HotFraction float64

	// OpsPerSec is the request rate at full hit ratio.
	OpsPerSec float64
	// WritePagesPerSec is the steady-state update rate (hot pages).
	WritePagesPerSec float64
	// RefillPagesPerSec is how fast cold misses repopulate the purged tail
	// after resumption.
	RefillPagesPerSec float64
	// MissPenalty scales throughput for the purged fraction: a request
	// hitting a purged entry completes at MissPenalty of hit speed
	// (default 0.3).
	MissPenalty float64

	// Assisted registers the app with the LKM for app-assisted migration.
	Assisted bool
}

func (c *Config) fillDefaults() error {
	if c.Guest == nil || c.Clock == nil {
		return errors.New("cacheapp: Guest and Clock are required")
	}
	if c.CacheBytes == 0 {
		return errors.New("cacheapp: CacheBytes is required")
	}
	if c.CacheBase == 0 {
		c.CacheBase = 1 << 30
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.25
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("cacheapp: HotFraction %v out of [0,1]", c.HotFraction)
	}
	if c.OpsPerSec == 0 {
		c.OpsPerSec = 10000
	}
	if c.WritePagesPerSec == 0 {
		c.WritePagesPerSec = 5000
	}
	if c.RefillPagesPerSec == 0 {
		c.RefillPagesPerSec = 2000
	}
	if c.MissPenalty == 0 {
		c.MissPenalty = 0.3
	}
	return nil
}

// App is a running cache application. It implements
// migration.GuestExecutor.
type App struct {
	cfg   Config
	proc  *guestos.Process
	sock  *guestos.Socket
	clock *simclock.Clock

	region mem.VARange
	hotEnd mem.VA // [region.Start, hotEnd) is retained across migration

	// purged tracks how much of the cold tail is invalid (bytes from the
	// cold start). refillCursor advances as misses repopulate it.
	purgedFrom   mem.VA // purged range is [purgedFrom, region.End); 0 = none
	refillCursor mem.VA

	writeCursor mem.VA // cyclic hot-page update position
	writeCarry  float64
	refillCarry float64

	TotalOps  float64
	Purges    int
	migrating bool
}

// Launch maps the cache region, pre-populates it and (optionally) registers
// the app with the LKM.
func Launch(cfg Config) (*App, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	a := &App{cfg: cfg, clock: cfg.Clock}
	a.proc = cfg.Guest.NewProcess("cached")
	a.region = mem.VARange{Start: cfg.CacheBase, End: cfg.CacheBase + mem.VA(cfg.CacheBytes)}.PageAlignInward()
	if a.region.Empty() {
		return nil, fmt.Errorf("cacheapp: cache region %v empty after alignment", a.region)
	}
	if err := a.proc.Alloc(a.region); err != nil {
		return nil, fmt.Errorf("cacheapp: mapping cache: %w", err)
	}
	hotPages := uint64(float64(a.region.Pages()) * cfg.HotFraction)
	a.hotEnd = a.region.Start + mem.VA(hotPages*mem.PageSize)
	a.writeCursor = a.region.Start
	// Populate the cache: every page written once.
	a.proc.WriteRange(a.region)

	if cfg.Assisted {
		a.sock = cfg.Guest.LKM.RegisterApp(a.proc, a.onNetlink)
	}
	return a, nil
}

// Region returns the cache's VA range.
func (a *App) Region() mem.VARange { return a.region }

// ColdRegion returns the purgeable tail.
func (a *App) ColdRegion() mem.VARange {
	return mem.VARange{Start: a.hotEnd, End: a.region.End}
}

// PurgedRegion returns the currently invalid (purged, not yet refilled)
// range; empty if none. Verification predicates use it: purged pages carry
// no meaningful content until rewritten.
func (a *App) PurgedRegion() mem.VARange {
	if a.purgedFrom == 0 {
		return mem.VARange{}
	}
	return mem.VARange{Start: a.refillCursor, End: a.region.End}
}

// HitRatio returns the fraction of the cache that currently holds valid
// data.
func (a *App) HitRatio() float64 {
	total := float64(a.region.Len())
	if total == 0 {
		return 0
	}
	invalid := float64(a.PurgedRegion().Len())
	return (total - invalid) / total
}

// Proc exposes the app's process (for verification walks in tests).
func (a *App) Proc() *guestos.Process { return a.proc }

func (a *App) onNetlink(msg any) {
	switch msg.(type) {
	case guestos.MsgQuerySkipAreas:
		a.migrating = true
		a.sock.Send(guestos.MsgReportAreas{App: a.sock.App(), Areas: []mem.VARange{a.ColdRegion()}})
	case guestos.MsgPrepareSuspension:
		if !a.migrating {
			return
		}
		// Purge LRU-cold entries from the index: the destination will see
		// the tail as empty. The memory stays mapped; the app promises not
		// to read it before rewriting (paper §6).
		a.purgedFrom = a.hotEnd
		a.refillCursor = a.hotEnd
		a.Purges++
		a.sock.Send(guestos.MsgSuspensionReady{App: a.sock.App(), Areas: []mem.VARange{a.ColdRegion()}})
	case guestos.MsgVMResumed:
		a.migrating = false
	}
}

// Run implements migration.GuestExecutor: serve requests for d, updating
// hot entries and refilling purged entries on misses.
func (a *App) Run(d time.Duration) {
	const step = time.Millisecond
	end := a.clock.Now() + d
	for a.clock.Now() < end {
		q := step
		if rem := end - a.clock.Now(); rem < q {
			q = rem
		}
		secs := q.Seconds()

		// Request throughput degrades with the invalid fraction.
		hit := a.HitRatio()
		rate := a.cfg.OpsPerSec * (hit + (1-hit)*a.cfg.MissPenalty)
		a.TotalOps += rate * secs

		// Hot-entry updates.
		w := a.cfg.WritePagesPerSec*secs + a.writeCarry
		n := int(w)
		a.writeCarry = w - float64(n)
		for i := 0; i < n; i++ {
			a.proc.Write(a.writeCursor)
			a.writeCursor += mem.PageSize
			if a.writeCursor >= a.hotEnd {
				a.writeCursor = a.region.Start
			}
		}

		// Misses refill the purged tail (writes, so migration would carry
		// the rebuilt content if another migration followed).
		if !a.PurgedRegion().Empty() {
			r := a.cfg.RefillPagesPerSec*secs + a.refillCarry
			m := int(r)
			a.refillCarry = r - float64(m)
			for i := 0; i < m && a.refillCursor < a.region.End; i++ {
				a.proc.Write(a.refillCursor)
				a.refillCursor += mem.PageSize
			}
			if a.refillCursor >= a.region.End {
				a.purgedFrom = 0 // fully rebuilt
			}
		}

		a.clock.Advance(q)
	}
}
