package cacheapp

import (
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
)

func launch(t *testing.T, assisted bool) (*App, *guestos.Guest, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(65536), 2) // 256 MiB
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	app, err := Launch(Config{
		Guest:      g,
		Clock:      clock,
		CacheBytes: 64 << 20,
		Assisted:   assisted,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app, g, clock
}

func TestLaunchPopulatesCache(t *testing.T) {
	app, g, _ := launch(t, false)
	if app.Region().Pages() != 16384 {
		t.Fatalf("region pages = %d", app.Region().Pages())
	}
	// Every cache page written once at populate time.
	var unwritten int
	app.Proc().AS.Walk(app.Region(), func(va mem.VA, p mem.PFN) {
		if g.Dom.Store().Version(p) == 0 {
			unwritten++
		}
	})
	if unwritten != 0 {
		t.Fatalf("%d cache pages never populated", unwritten)
	}
	if app.HitRatio() != 1.0 {
		t.Fatalf("fresh HitRatio = %v", app.HitRatio())
	}
}

func TestConfigValidation(t *testing.T) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(1024), 1)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	if _, err := Launch(Config{Clock: clock, CacheBytes: 1 << 20}); err == nil {
		t.Fatal("missing guest accepted")
	}
	if _, err := Launch(Config{Guest: g, Clock: clock}); err == nil {
		t.Fatal("missing cache size accepted")
	}
	if _, err := Launch(Config{Guest: g, Clock: clock, CacheBytes: 1 << 20, HotFraction: 2}); err == nil {
		t.Fatal("bad hot fraction accepted")
	}
}

func TestRunServesAndWrites(t *testing.T) {
	app, g, _ := launch(t, false)
	g.Dom.EnableLogDirty()
	app.Run(2 * time.Second)
	if app.TotalOps < 15000 {
		t.Fatalf("ops = %v, want ~20000", app.TotalOps)
	}
	if g.Dom.DirtyCount() == 0 {
		t.Fatal("no cache writes observed")
	}
}

func TestColdRegionGeometry(t *testing.T) {
	app, _, _ := launch(t, false)
	cold := app.ColdRegion()
	if cold.Start <= app.Region().Start || cold.End != app.Region().End {
		t.Fatalf("cold region %v within %v", cold, app.Region())
	}
	// Hot fraction 0.25: cold is 75 % of the cache.
	if got := float64(cold.Len()) / float64(app.Region().Len()); got < 0.74 || got > 0.76 {
		t.Fatalf("cold fraction = %v", got)
	}
}

func TestPurgeAndRefillCycle(t *testing.T) {
	app, g, clock := launch(t, true)
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	// Cold region skip-marked.
	tb := g.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != app.ColdRegion().Pages() {
		t.Fatalf("skipped = %d, want cold pages %d", skipped, app.ColdRegion().Pages())
	}
	daemon.Notify(guestos.EvEnteringLastIter{})
	if app.Purges != 1 {
		t.Fatalf("Purges = %d", app.Purges)
	}
	if app.HitRatio() >= 1.0 {
		t.Fatal("hit ratio did not drop after purge")
	}
	daemon.Notify(guestos.EvVMResumed{})

	// Refill: hit ratio climbs back to 1 as misses rebuild the tail.
	low := app.HitRatio()
	for i := 0; i < 100 && app.HitRatio() < 1.0; i++ {
		app.Run(time.Second)
	}
	if app.HitRatio() != 1.0 {
		t.Fatalf("cache never refilled: HitRatio = %v", app.HitRatio())
	}
	if low >= 1.0 {
		t.Fatal("purge had no effect")
	}
	if app.PurgedRegion().Len() != 0 {
		t.Fatal("purged region non-empty after refill")
	}
	_ = clock
}

func TestThroughputDipsAfterPurge(t *testing.T) {
	app, g, _ := launch(t, true)
	daemon := g.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	app.Run(time.Second)
	before := app.TotalOps

	daemon.Notify(guestos.EvMigrationBegin{})
	daemon.Notify(guestos.EvEnteringLastIter{})
	daemon.Notify(guestos.EvVMResumed{})
	app.Run(time.Second)
	dip := app.TotalOps - before
	if dip >= before {
		t.Fatalf("post-purge throughput %v not below pre-purge %v", dip, before)
	}
}

// TestAssistedMigrationSkipsColdTail migrates a VM running the cache app and
// checks that the cold tail was skipped, the hot head arrived intact, and
// the purged predicate makes verification pass.
func TestAssistedMigrationSkipsColdTail(t *testing.T) {
	app, g, clock := launch(t, true)
	app.Run(5 * time.Second)

	dest := migration.NewDestination(g.Dom.NumPages())
	src := &migration.Source{
		Dom:   g.Dom,
		LKM:   g.LKM,
		Link:  netsim.NewLink(clock, 50*1000*1000, 0),
		Clock: clock,
		Exec:  app,
		Dest:  dest,
		Cfg:   migration.Config{Mode: migration.ModeAppAssisted},
	}
	rep, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	// Traffic well below a full memory copy: the cold tail (48 MiB of the
	// 256 MiB VM) never crossed the wire.
	if rep.TotalBytes() >= g.Dom.MemoryBytes() {
		t.Fatalf("traffic %d >= memory %d despite skipping", rep.TotalBytes(), g.Dom.MemoryBytes())
	}
	err = migration.VerifyMigration(g.Dom.Store(), dest.Store, rep.FinalTransfer,
		func(p mem.PFN) bool { return g.Frames.Allocated(p) })
	if err != nil {
		t.Fatal(err)
	}
	// Hot pages specifically must match at the destination.
	hot := mem.VARange{Start: app.Region().Start, End: app.hotEnd}
	var bad int
	app.Proc().AS.Walk(hot, func(va mem.VA, p mem.PFN) {
		if g.Dom.Store().Version(p) != dest.Store.Version(p) {
			bad++
		}
	})
	if bad != 0 {
		t.Fatalf("%d hot cache pages diverge at destination", bad)
	}

	vanillaTraffic := func() uint64 {
		app2, g2, clock2 := launch(t, false)
		app2.Run(5 * time.Second)
		dest2 := migration.NewDestination(g2.Dom.NumPages())
		src2 := &migration.Source{
			Dom: g2.Dom, Link: netsim.NewLink(clock2, 50*1000*1000, 0),
			Clock: clock2, Exec: app2, Dest: dest2,
			Cfg: migration.Config{Mode: migration.ModeVanilla},
		}
		rep2, err := src2.Migrate()
		if err != nil {
			t.Fatal(err)
		}
		return rep2.TotalBytes()
	}()
	if rep.TotalBytes() >= vanillaTraffic {
		t.Fatalf("assisted traffic %d >= vanilla %d", rep.TotalBytes(), vanillaTraffic)
	}
}
