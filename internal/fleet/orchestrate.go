package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/fleetobs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/sla"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// The orchestrator: executes a compiled batch plan on a cluster under one
// of three launch orderings. Everything — guests, engines and the
// orchestrator's own decision loop — runs as cooperative processes on one
// virtual clock, so a whole plan replays bit-identically at the same seed.

// Ordering selects the orchestrator's launch policy.
type Ordering int

// Launch orderings, from dumbest to smartest.
const (
	// OrderNaive launches every migration at once (warmup instant), with
	// no admission control: the baseline real clusters melt under.
	OrderNaive Ordering = iota
	// OrderAdmission launches FIFO behind the admission policy's per-link
	// and per-host caps.
	OrderAdmission
	// OrderCycleAware adds workload-cycle timing on top of admission:
	// each VM launches inside its quiet window, launches predicted (or
	// observed) not to converge are deferred, and every deferral is
	// bounded by QuietHorizon so nothing starves.
	OrderCycleAware
)

// String names the ordering for CLI flags and experiment tables.
func (o Ordering) String() string {
	switch o {
	case OrderNaive:
		return "naive"
	case OrderAdmission:
		return "admission"
	case OrderCycleAware:
		return "cycle-aware"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// ParseOrdering is String's inverse.
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "naive":
		return OrderNaive, nil
	case "admission":
		return OrderAdmission, nil
	case "cycle-aware", "cycle":
		return OrderCycleAware, nil
	}
	return 0, fmt.Errorf("fleet: unknown ordering %q (want naive, admission or cycle-aware)", s)
}

// OrchestratorOptions parameterizes one plan execution.
type OrchestratorOptions struct {
	// Cluster is the declared topology; Plan the batch plan to compile
	// against it. Moves, when non-empty, bypasses Plan compilation.
	Cluster *Cluster
	Plan    *Plan
	Moves   []Move

	// Mode is the migration algorithm every engine runs.
	Mode migration.Mode
	// Seed is the base workload seed; move i boots with Seed + i.
	Seed int64
	// Ordering selects the launch policy (default OrderCycleAware).
	Ordering Ordering
	// Admission bounds concurrency for OrderAdmission and OrderCycleAware;
	// OrderNaive ignores it.
	Admission AdmissionPolicy
	// Retry, when Enabled, turns on the self-healing layer: failed moves are
	// retried (token-reusing) or relocated under attempt/deadline budgets
	// and a per-host circuit breaker. Disabled, Orchestrate is exactly the
	// legacy one-attempt-per-move orchestrator.
	Retry RetryPolicy

	// Warmup is how long the guests run before the orchestrator makes its
	// first launch decision (default 60 s).
	Warmup time.Duration
	// DecisionQuantum is the orchestrator's deterministic decision tick
	// (default 500 ms): deferred launches are reconsidered at this period.
	DecisionQuantum time.Duration
	// QuietHorizon bounds every cycle-aware deferral: a move that has
	// waited this long launches at the next admissible tick regardless of
	// quiet windows or convergence predictions (default 5 min).
	QuietHorizon time.Duration
	// GuestQuantum is the guest processes' pause-check granularity
	// (default 1 ms).
	GuestQuantum time.Duration

	// Engine overrides engine defaults; Mode above wins over Engine.Mode.
	Engine migration.Config
	// Faults, when non-nil, attaches the fault-injection plane to every
	// shared link, engine, destination, LKM and bus — the chaos runner's
	// hook into batch plans.
	Faults *faults.Injector
	// FaultPlan, when Faults is nil, is materialized into an injector on the
	// plan's own clock (the clock does not exist before Orchestrate runs, so
	// callers cannot build timed injectors themselves).
	FaultPlan faults.Plan
	// Collect attaches the full fleet observability plane (Result.Obs).
	Collect bool
	// OnProgress receives every VM's live progress points.
	OnProgress func(vm string, p migration.Progress)
	// SLA, when non-nil, prices each completed migration and aggregates
	// the fleet cost — the objective the cycle-aware ordering minimizes.
	SLA *sla.Model
	// SkipVerify disables the per-VM post-migration consistency check.
	SkipVerify bool
}

func (o *OrchestratorOptions) fillDefaults() error {
	if o.Cluster == nil {
		return fmt.Errorf("fleet: orchestrate: no cluster")
	}
	if err := o.Cluster.Validate(); err != nil {
		return err
	}
	if o.Warmup == 0 {
		o.Warmup = 60 * time.Second
	}
	if o.DecisionQuantum == 0 {
		o.DecisionQuantum = 500 * time.Millisecond
	}
	if o.QuietHorizon == 0 {
		o.QuietHorizon = 5 * time.Minute
	}
	if o.GuestQuantum == 0 {
		o.GuestQuantum = time.Millisecond
	}
	if o.Retry.Enabled {
		o.Retry.fillDefaults()
	}
	return nil
}

// MoveResult is one executed (or still-deferred-at-abort) move: the VM's
// migration outcome plus the orchestrator's scheduling record.
type MoveResult struct {
	VMResult
	// From/To are the move's source and destination hosts; Route the
	// shared links the flow crossed.
	From, To string
	Route    []string

	// EligibleAt is when the move entered the launch queue (the warmup
	// instant); LaunchedAt when the orchestrator granted it.
	EligibleAt, LaunchedAt time.Duration
	// Deferrals counts decision ticks at which the orchestrator
	// considered and declined the launch.
	Deferrals int
	// QuietLaunch reports a launch inside the VM's quiet window; Forced a
	// bounded-wait launch after QuietHorizon overrode the cycle logic.
	QuietLaunch, Forced bool

	// Outcome is the healing layer's terminal classification; Attempts the
	// per-launch record (empty when healing is disabled — the legacy
	// single-attempt fields StartAt/EndAt/Err tell the whole story then).
	Outcome  MoveOutcome
	Attempts []Attempt
	// Relocations counts destination re-selections; HealBackoff total
	// healing backoff time; TokenSavedBytes wire bytes token reuse avoided
	// resending across all attempts.
	Relocations     int
	HealBackoff     time.Duration
	TokenSavedBytes uint64

	src   *migration.Source
	guest frameChecker
}

type frameChecker interface {
	Allocated(mem.PFN) bool
}

// SourceRunning reports whether the move's source VM is executing (not
// paused) — the "failed moves leave their source cleanly resumed" healing
// invariant. True also for moves that never launched: the source never
// stopped.
func (m *MoveResult) SourceRunning() bool {
	return m.src == nil || !m.src.Dom.Paused()
}

// PlanResult is a whole executed plan.
type PlanResult struct {
	// Ordering the plan ran under.
	Ordering Ordering
	// Moves are the per-move outcomes in compiled plan order.
	Moves []MoveResult
	// Fabric is the merged link/flow accounting; its byte conservation is
	// verified before Orchestrate returns.
	Fabric netsim.FabricReport
	// MakeSpan is first launch to last completion.
	MakeSpan time.Duration
	// Obs is the fleet observability collector (nil unless Collect).
	Obs *fleetobs.Collector
	// SLA is the fleet cost aggregate (nil unless Options.SLA).
	SLA *sla.FleetCost

	clock     *simclock.Clock
	fabric    *netsim.Fabric
	linkNames []string
	faults    *faults.Injector
	heal      *healState
}

// detachFaults removes the fault plane from every layer, so a resumed
// migration runs fault-free.
func (r *PlanResult) detachFaults() {
	if r.faults == nil {
		return
	}
	for _, l := range r.linkNames {
		r.fabric.SetLinkFaults(l, nil)
	}
	r.fabric.SetHostFaults(nil)
	for i := range r.Moves {
		m := &r.Moves[i]
		if m.src == nil {
			continue
		}
		m.src.Dest.SetFaults(nil)
		m.src.LKM.SetFaults(nil)
	}
	r.faults = nil
}

// ResumeAborted resumes move i's aborted migration from its recovery token
// with the fault plane detached, then verifies the destination image (for
// pre-copy completions). The guests are no longer executing — the plan's
// scheduler has drained — so the resume drives the clock directly, exactly
// like a post-abort operator retry.
func (r *PlanResult) ResumeAborted(i int) (*migration.Report, error) {
	if i < 0 || i >= len(r.Moves) {
		return nil, fmt.Errorf("fleet: resume: no move %d", i)
	}
	m := &r.Moves[i]
	if m.Report == nil || m.Report.Recovery == nil || m.Report.Recovery.Token == nil {
		return nil, fmt.Errorf("fleet: resume: move %d (%s) has no resume token", i, m.Name)
	}
	r.detachFaults()
	cfg := m.src.Cfg
	cfg.Faults = nil
	cfg.Ledger = nil
	re := &migration.Source{
		Dom: m.src.Dom, LKM: m.src.LKM, Link: m.src.Link, Clock: r.clock,
		Dest: m.src.Dest, Cfg: cfg,
	}
	rep, err := re.Resume(m.Report.Recovery.Token)
	if err != nil {
		return rep, fmt.Errorf("fleet: resume of %s failed: %w", m.Name, err)
	}
	if rep.PostCopy == nil {
		if verr := migration.VerifyMigration(
			m.src.Dom.Store(), m.src.Dest.Store, rep.FinalTransfer,
			m.guest.Allocated); verr != nil {
			return rep, fmt.Errorf("fleet: resumed %s but image diverged: %w", m.Name, verr)
		}
	}
	return rep, nil
}

// Orchestrate executes a batch plan: compiles it against the cluster,
// boots the moving VMs onto one shared clock and fabric, and launches each
// migration according to the ordering. The returned PlanResult carries
// per-move outcomes, scheduling records, fabric accounting (byte
// conservation verified) and the SLA aggregate.
func Orchestrate(opts OrchestratorOptions) (*PlanResult, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	moves := opts.Moves
	if len(moves) == 0 && opts.Plan != nil {
		var err error
		if moves, err = opts.Plan.Compile(opts.Cluster); err != nil {
			return nil, err
		}
	}
	res := &PlanResult{Ordering: opts.Ordering, faults: opts.Faults}
	if len(moves) == 0 {
		// An empty plan is a successful no-op: nothing to boot, nothing to
		// move, empty accounting.
		return res, nil
	}
	n := len(moves)

	clock := simclock.New()
	if opts.Faults == nil && len(opts.FaultPlan) > 0 {
		inj, err := faults.NewInjector(clock, opts.FaultPlan)
		if err != nil {
			return nil, fmt.Errorf("fleet: fault plan: %w", err)
		}
		opts.Faults = inj
		res.faults = inj
	}
	sched := simclock.NewScheduler(clock)
	var coll *fleetobs.Collector
	if opts.Collect {
		coll = fleetobs.New(clock)
	}
	fabric := opts.Cluster.Fabric(clock)
	if coll != nil {
		fabric.SetTracer(coll.FabricTracer())
		fabric.SetMetrics(coll.FleetMetrics())
	}
	res.clock = clock
	res.fabric = fabric
	for _, l := range opts.Cluster.Links {
		res.linkNames = append(res.linkNames, l.Name)
		if opts.Faults != nil {
			fabric.SetLinkFaults(l.Name, opts.Faults)
		}
	}
	if opts.Faults != nil {
		// Host-scoped fault rules (host.crash) make the fabric's ports refuse
		// transfers toward a downed destination host, fail-fast.
		fabric.SetHostFaults(opts.Faults)
	}

	res.Moves = make([]MoveResult, n)
	// Live progress fan-in: the cycle-aware policy watches in-flight
	// convergence signals; the collector and user callback ride the same
	// stream.
	lastProgress := make([]migration.Progress, n)
	haveProgress := make([]bool, n)
	vmIndex := make(map[string]int, n)
	observe := func(vm string, p migration.Progress) {
		if i, ok := vmIndex[vm]; ok {
			lastProgress[i] = p
			haveProgress[i] = true
		}
		if opts.OnProgress != nil {
			opts.OnProgress(vm, p)
		}
	}
	if coll != nil {
		coll.OnProgress = observe
	}

	vms := make([]*workload.VM, n)
	profs := make([]workload.Profile, n)
	planes := make([]*fleetobs.VMPlane, n)
	for i, mv := range moves {
		m := &res.Moves[i]
		m.From, m.To = mv.From, mv.To
		prof, err := mv.VM.Profile()
		if err != nil {
			return nil, fmt.Errorf("fleet: move %d: %w", i, err)
		}
		profs[i] = prof
		route, err := fabric.Route(mv.From, mv.To)
		if err != nil {
			return nil, fmt.Errorf("fleet: move %d (%s): %w", i, mv.VM.Name, err)
		}
		m.Route = route
		var plane *fleetobs.VMPlane
		if coll != nil {
			plane = coll.AttachVM(mv.VM.Name)
		}
		planes[i] = plane
		vm, err := workload.Boot(workload.BootConfig{
			Name:     mv.VM.Name,
			MemBytes: mv.VM.memBytes(),
			Profile:  prof,
			Assisted: opts.Mode == migration.ModeAppAssisted,
			Seed:     opts.Seed + int64(i),
			Clock:    clock,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: booting %s: %w", mv.VM.Name, err)
		}
		if plane != nil {
			vm.AttachObs(plane.Tracer, plane.Metrics)
		}
		port, err := fabric.Dial(mv.From, mv.To)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		dest := migration.NewDestination(vm.Dom.NumPages())
		dest.SetHostName(mv.To)

		cfg := opts.Engine
		cfg.Mode = opts.Mode
		if opts.Retry.Enabled {
			// Healing retries reuse the abort's ResumeToken; that only saves
			// anything when aborts keep the destination image.
			cfg.Recovery.EnableResume = true
		}
		if opts.Faults != nil {
			cfg.Faults = opts.Faults
			dest.SetFaults(opts.Faults)
			vm.Guest.LKM.SetFaults(opts.Faults)
			vm.Guest.Bus.SetFaults(opts.Faults)
		}
		if plane != nil {
			port.SetMetrics(plane.Metrics)
			dest.SetMetrics(plane.Metrics)
			cfg.Tracer = plane.Tracer
			cfg.Metrics = plane.Metrics
			cfg.Ledger = plane.Ledger
		} else {
			vmName := mv.VM.Name
			cfg.OnProgress = func(p migration.Progress) { observe(vmName, p) }
		}
		guest := vm.Guest
		m.src = &migration.Source{
			Dom:   vm.Dom,
			LKM:   guest.LKM,
			Link:  port,
			Clock: clock,
			Dest:  dest,
			Cfg:   cfg,
			GuestFree: func(p mem.PFN) bool {
				return !guest.Frames.Allocated(p)
			},
			HintFor: guest.LKM.HintFor,
		}
		m.guest = guest.Frames
		m.Name = vm.Dom.Name()
		m.dest = dest
		vms[i] = vm
		vmIndex[m.Name] = i
	}

	// Launch state, mutated only under the cooperative scheduler.
	granted := make([]bool, n)
	inflight := make([]bool, n)
	adm := newAdmissionState(opts.Admission)
	remaining := n
	var heal *healState
	if opts.Retry.Enabled {
		heal = newHealState(opts.Retry, n, opts.Warmup)
		res.heal = heal
	}

	for i := range vms {
		vm := vms[i]
		q := opts.GuestQuantum
		sched.Go(vm.Dom.Name()+"/guest", func() {
			for remaining > 0 {
				if vm.Dom.Paused() {
					clock.Advance(q)
				} else {
					vm.Driver.Run(q)
				}
			}
		})
	}
	// finishMove is the shared success bookkeeping: workload downtime
	// attribution and the completion-instant verify.
	finishMove := func(i int, report *migration.Report) {
		vm, m := vms[i], &res.Moves[i]
		hist := vm.Heap.GCHistory()
		for j := len(hist) - 1; j >= 0; j-- {
			if st := hist[j]; st.Enforced {
				m.EnforcedGC = st.Duration
				break
			}
		}
		m.WorkloadDowntime = report.VMDowntime
		if report.EffectiveMode() == migration.ModeAppAssisted {
			m.WorkloadDowntime += m.EnforcedGC + report.FinalUpdate
		}
		// Verify at the completion instant, while this process still
		// holds the baton (see fleet.Run).
		if !opts.SkipVerify && report.PostCopy == nil {
			m.VerifyErr = migration.VerifyMigration(
				vm.Dom.Store(), m.src.Dest.Store, report.FinalTransfer,
				m.guest.Allocated)
		}
	}

	for i := range vms {
		i := i
		vm := vms[i]
		m := &res.Moves[i]
		if opts.Retry.Enabled {
			plane := planes[i]
			pol := &opts.Retry
			sched.Go(vm.Dom.Name()+"/engine", func() {
				defer func() { remaining-- }()
				// Per-move jitter PRNG: the whole healing schedule replays
				// byte-identically at the same policy seed.
				rng := rand.New(rand.NewSource(pol.Seed + int64(i)))
				var token *migration.ResumeToken
				for {
					sched.Wait(func() bool { return granted[i] || heal.abandon[i] }, opts.DecisionQuantum)
					if heal.abandon[i] {
						m.Outcome = OutcomeFailed
						if m.Err == nil {
							m.Err = fmt.Errorf("fleet: heal: %s: plan deadline %v exceeded before launch",
								m.Name, pol.PlanDeadline)
						} else {
							m.Err = fmt.Errorf("fleet: heal: %s: deadline exhausted: %w", m.Name, m.Err)
						}
						return
					}
					heal.attempts[i]++
					att := Attempt{
						To: m.To, Route: append([]string(nil), m.Route...),
						StartAt: clock.Now(), TokenReused: token != nil,
					}
					if heal.attempts[i] == 1 {
						m.StartAt = att.StartAt
					}
					var report *migration.Report
					var err error
					if token != nil {
						report, err = m.src.Resume(token)
					} else {
						report, err = m.src.Migrate()
					}
					att.EndAt = clock.Now()
					m.EndAt = att.EndAt
					m.Report = report
					inflight[i] = false
					granted[i] = false
					if opts.Ordering != OrderNaive {
						adm.release(att.Route, att.To)
					}
					if report != nil && report.Resume != nil {
						att.SavedBytes = report.Resume.SavedBytes
						att.RefetchPages = report.Resume.RefetchPages
						m.TokenSavedBytes += report.Resume.SavedBytes
					}
					if err == nil {
						m.Attempts = append(m.Attempts, att)
						m.Err = nil
						if werr := vm.Driver.Err; werr != nil {
							m.Err = fmt.Errorf("fleet: workload failed during migration: %w", werr)
							m.Outcome = OutcomeFailed
							return
						}
						switch {
						case m.Relocations > 0:
							m.Outcome = OutcomeRelocated
						case heal.attempts[i] > 1:
							m.Outcome = OutcomeRetried
						default:
							m.Outcome = OutcomeCompleted
						}
						finishMove(i, report)
						return
					}
					// Failure: classify, feed the breaker, keep the freshest
					// token (a discarded image's token is worthless — Resume
					// degrades on it — but carrying it is harmless).
					att.Err = err.Error()
					permanent := errors.Is(err, migration.ErrDestinationLost)
					att.Transient = !permanent
					m.Err = err
					failedHost := m.To
					if heal.breaker.fail(failedHost, clock.Now()) && coll != nil {
						coll.FleetMetrics().Counter("fleet.heal.breaker_opens").Inc()
					}
					if report != nil && report.Recovery != nil && report.Recovery.Token != nil {
						token = report.Recovery.Token
					}
					now := clock.Now()
					if heal.attempts[i] >= pol.MaxAttempts {
						m.Attempts = append(m.Attempts, att)
						m.Err = fmt.Errorf("fleet: heal: %s: %d attempts exhausted: %w",
							m.Name, heal.attempts[i], err)
						m.Outcome = OutcomeFailed
						return
					}
					if now >= heal.planEnd || now-heal.firstLaunch[i] >= pol.MoveDeadline {
						m.Attempts = append(m.Attempts, att)
						m.Err = fmt.Errorf("fleet: heal: %s: deadline blown after %d attempts: %w",
							m.Name, heal.attempts[i], err)
						m.Outcome = OutcomeFailed
						return
					}
					if permanent && !pol.DisableRelocation {
						newTo, rerr := heal.pickDestination(&opts, res, moves, i, failedHost, clock.Now())
						for rerr != nil {
							// All candidates breaker-open: wait out the
							// earliest cooldown if the deadlines allow — a
							// bounded sleep, not a spin — then re-select.
							var ho *HostOpenError
							if !errors.As(rerr, &ho) {
								break
							}
							if ho.Until >= heal.planEnd ||
								ho.Until-heal.firstLaunch[i] >= pol.MoveDeadline {
								break
							}
							sched.Sleep(ho.Until - clock.Now())
							newTo, rerr = heal.pickDestination(&opts, res, moves, i, failedHost, clock.Now())
						}
						if rerr != nil {
							m.Attempts = append(m.Attempts, att)
							m.Err = fmt.Errorf("fleet: heal: %s: cannot relocate off %s: %w",
								m.Name, failedHost, rerr)
							m.Outcome = OutcomeFailed
							return
						}
						port, derr := fabric.Dial(m.From, newTo)
						route, rterr := fabric.Route(m.From, newTo)
						if derr != nil || rterr != nil {
							m.Attempts = append(m.Attempts, att)
							m.Err = fmt.Errorf("fleet: heal: %s: rewiring to %s: %w",
								m.Name, newTo, errors.Join(derr, rterr))
							m.Outcome = OutcomeFailed
							return
						}
						ndest := migration.NewDestination(vm.Dom.NumPages())
						ndest.SetHostName(newTo)
						if opts.Faults != nil {
							ndest.SetFaults(opts.Faults)
						}
						if plane != nil {
							port.SetMetrics(plane.Metrics)
							ndest.SetMetrics(plane.Metrics)
						}
						m.src.Link = port
						m.src.Dest = ndest
						m.dest = ndest
						m.To = newTo
						m.Route = route
						m.Relocations++
						if coll != nil {
							coll.FleetMetrics().Counter("fleet.heal.relocations").Inc()
						}
					}
					d := healBackoff(rng, pol, heal.attempts[i])
					att.Backoff = d
					m.HealBackoff += d
					heal.notBefore[i] = clock.Now() + d
					if until, open := heal.breaker.open(m.To, clock.Now()); open && until > heal.notBefore[i] {
						heal.notBefore[i] = until
					}
					m.Attempts = append(m.Attempts, att)
					heal.pending[i] = true
					if coll != nil {
						fm := coll.FleetMetrics()
						fm.Counter("fleet.heal.retries").Inc()
						fm.Counter("fleet.heal.backoff_ns").AddDuration(d)
					}
				}
			})
			continue
		}
		sched.Go(vm.Dom.Name()+"/engine", func() {
			defer func() { remaining-- }()
			sched.Wait(func() bool { return granted[i] }, opts.DecisionQuantum)
			m.StartAt = clock.Now()
			report, err := m.src.Migrate()
			m.EndAt = clock.Now()
			m.Report = report
			inflight[i] = false
			if opts.Ordering != OrderNaive {
				adm.release(m.Route, m.To)
			}
			if err != nil {
				m.Err = err
				m.Outcome = OutcomeFailed
				return
			}
			if werr := vm.Driver.Err; werr != nil {
				m.Err = fmt.Errorf("fleet: workload failed during migration: %w", werr)
				m.Outcome = OutcomeFailed
				return
			}
			m.Outcome = OutcomeCompleted
			finishMove(i, report)
		})
	}

	// The orchestrator process: one decision tick every DecisionQuantum,
	// granting launches in compiled plan order. With healing enabled it
	// keeps ticking for the plan's whole life, re-granting retries and
	// relocations through the same decision logic (admission and cycle
	// policy hold across relaunches) and abandoning moves whose deadlines
	// passed; without it, the legacy single-grant loop runs unchanged.
	sched.Go("orchestrator", func() {
		if d := opts.Warmup - clock.Now(); d > 0 {
			sched.Sleep(d)
		}
		for i := range res.Moves {
			res.Moves[i].EligibleAt = clock.Now()
		}
		if heal != nil {
			for i := range heal.pending {
				heal.pending[i] = true
			}
			for remaining > 0 {
				now := clock.Now()
				for i := range res.Moves {
					if !heal.pending[i] || granted[i] || heal.abandon[i] {
						continue
					}
					m := &res.Moves[i]
					if now >= heal.planEnd ||
						(heal.launchedOnce[i] && now-heal.firstLaunch[i] >= opts.Retry.MoveDeadline) {
						heal.abandon[i] = true
						heal.pending[i] = false
						continue
					}
					if now < heal.notBefore[i] {
						continue // backoff/cooldown gate, not a deferral
					}
					if _, open := heal.breaker.open(m.To, now); open {
						continue
					}
					if decideLaunch(&opts, res, profs, lastProgress, haveProgress, inflight, adm, i) {
						if !heal.launchedOnce[i] {
							m.LaunchedAt = now
							m.QuietLaunch = profs[i].Cycle.Enabled() && profs[i].Cycle.QuietAt(now)
							heal.launchedOnce[i] = true
							heal.firstLaunch[i] = now
						}
						granted[i] = true
						inflight[i] = true
						if opts.Ordering != OrderNaive {
							adm.admit(m.Route, m.To)
						}
						heal.pending[i] = false
					} else {
						m.Deferrals++
					}
				}
				if remaining > 0 {
					sched.Sleep(opts.DecisionQuantum)
				}
			}
			return
		}
		launched := 0
		for launched < n {
			for i := range res.Moves {
				if granted[i] {
					continue
				}
				m := &res.Moves[i]
				if decideLaunch(&opts, res, profs, lastProgress, haveProgress, inflight, adm, i) {
					m.LaunchedAt = clock.Now()
					m.QuietLaunch = profs[i].Cycle.Enabled() && profs[i].Cycle.QuietAt(clock.Now())
					granted[i] = true
					inflight[i] = true
					if opts.Ordering != OrderNaive {
						adm.admit(m.Route, m.To)
					}
					launched++
				} else {
					m.Deferrals++
				}
			}
			if launched < n {
				sched.Sleep(opts.DecisionQuantum)
			}
		}
	})
	sched.Run()

	var first, last time.Duration
	started := false
	for i := range res.Moves {
		m := &res.Moves[i]
		if m.StartAt == 0 && m.EndAt == 0 {
			continue // abandoned before its first attempt: no span to count
		}
		if !started || m.StartAt < first {
			first = m.StartAt
			started = true
		}
		if m.EndAt > last {
			last = m.EndAt
		}
	}
	res.MakeSpan = last - first
	res.Fabric = fabric.Report()
	res.Obs = coll
	for i := range res.Moves {
		res.Moves[i].Samples = vms[i].Driver.Samples()
	}
	// The standing fabric invariant: fair-share settling may not lose or
	// invent bytes, on any link, after any plan.
	if err := res.Fabric.VerifyConservation(); err != nil {
		return nil, fmt.Errorf("fleet: after %s plan: %w", opts.Ordering, err)
	}
	if opts.SLA != nil {
		costs := make([]sla.Cost, 0, n)
		for i := range res.Moves {
			m := &res.Moves[i]
			if m.Err != nil || m.Report == nil {
				continue
			}
			var led *ledger.Ledger
			if coll != nil {
				led = coll.VMs()[i].Ledger
			}
			a := attrib.Build(m.Report, m.EnforcedGC, led)
			if err := a.Reconcile(m.Report); err != nil {
				m.Err = fmt.Errorf("fleet: attribution for %s does not reconcile: %w", m.Name, err)
				continue
			}
			c := sla.Build(m.Name, *opts.SLA, a, m.Samples)
			if err := c.Reconcile(*opts.SLA, a, m.Samples); err != nil {
				m.Err = fmt.Errorf("fleet: SLA cost for %s does not reconcile: %w", m.Name, err)
				continue
			}
			m.SLACost = &c
			costs = append(costs, c)
		}
		f := sla.Aggregate(costs)
		res.SLA = &f
	}
	return res, nil
}

// decideLaunch is one launch decision for move i at the current tick.
func decideLaunch(opts *OrchestratorOptions, res *PlanResult, profs []workload.Profile,
	lastProgress []migration.Progress, haveProgress, inflight []bool,
	adm *admissionState, i int) bool {
	m := &res.Moves[i]
	switch opts.Ordering {
	case OrderNaive:
		return true
	case OrderAdmission:
		return adm.admissible(m.Route, m.To)
	}
	// Cycle-aware: admission first — its caps are inviolable, even for a
	// forced launch.
	if !adm.admissible(m.Route, m.To) {
		return false
	}
	now := opts.clockNow(res)
	if now-m.EligibleAt >= opts.QuietHorizon {
		// Bounded wait: the move has been deferred long enough; launch at
		// the first admissible tick no matter what the cycle says.
		m.Forced = true
		return true
	}
	cyc := profs[i].Cycle
	if cyc.Enabled() && !cyc.QuietAt(now) {
		return false
	}
	// Static convergence prediction: will pre-copy outrun dirtying at the
	// bandwidth this flow would get if launched now?
	sharers := 1
	for j := range inflight {
		if j != i && inflight[j] && routesOverlap(res.Moves[j].Route, m.Route) {
			sharers++
		}
	}
	bw := opts.Cluster.bottleneckBandwidth(m.Route, m.From, m.To)
	rate := float64(bw) / float64(sharers)
	dirty := predictedDirtyByteRate(profs[i]) * cyc.ActivityAt(now)
	if _, conv := migration.EstimateETA(moveMemBytes(m, profs[i]), rate, dirty); !conv {
		return false
	}
	// Dynamic back-pressure: an in-flight migration on a shared link that
	// reports itself non-converging is consuming bandwidth indefinitely;
	// piling on makes both worse.
	for j := range inflight {
		if j == i || !inflight[j] || !haveProgress[j] {
			continue
		}
		p := lastProgress[j]
		if !p.Converging && p.Phase == migration.ProgressPreCopy &&
			routesOverlap(res.Moves[j].Route, m.Route) {
			return false
		}
	}
	return true
}

// clockNow reads the plan clock (indirection keeps decideLaunch testable).
func (o *OrchestratorOptions) clockNow(res *PlanResult) time.Duration {
	return res.clock.Now()
}

func routesOverlap(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// predictedDirtyByteRate estimates a profile's full-speed dirtying in
// bytes/sec: young-generation allocation plus page-grain old/JIT/kernel
// churn.
func predictedDirtyByteRate(p workload.Profile) float64 {
	pages := p.OldMutatePagesPerSec + p.JITPagesPerSec + p.KernelPagesPerSec
	return float64(p.AllocBytesPerSec) + pages*float64(mem.PageSize)
}

// moveMemBytes is the bytes-remaining estimate for the convergence
// prediction: the VM's whole memory (the first pre-copy round ships
// everything).
func moveMemBytes(m *MoveResult, prof workload.Profile) uint64 {
	if m.src != nil {
		return m.src.Dom.NumPages() * mem.PageSize
	}
	return prof.MaxYoungBytes + prof.MaxOldBytes
}
