package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"javmm/internal/netsim"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// The cluster model: hosts with capacity grouped into racks, a link topology
// declared on the netsim fabric, and VM placements. It is the world the
// orchestrator plans over — batch plans name hosts and racks, admission
// control counts against link and host capacity, and Cluster.Fabric turns
// the declaration into the live arbitrated network every engine migrates
// across.

// HostSpec is one physical host.
type HostSpec struct {
	// Name identifies the host; Rack groups hosts for drain plans (empty =
	// rackless).
	Name string
	Rack string
	// CPUCores and RAMBytes bound placement: the sum of resident VM memory
	// may not exceed RAMBytes. Zero means uncounted (infinite).
	CPUCores int
	RAMBytes uint64
	// NICBandwidth, when non-zero, caps the host's NIC trunk on the fabric.
	NICBandwidth uint64
}

// LinkSpec is one shared fabric link.
type LinkSpec struct {
	Name      string
	Bandwidth uint64
	Latency   time.Duration
	Hosts     []string
}

// VMSpec is one VM placement.
type VMSpec struct {
	Name string
	Host string
	// Workload names a catalog profile (default derby).
	Workload string
	// MemBytes is the VM memory (default 2 GiB).
	MemBytes uint64
	// Cycle, when enabled, overrides the profile's activity cycle — the
	// quiet-phase structure the cycle-aware scheduler exploits.
	Cycle workload.CycleSpec
}

// Cluster is the whole declared topology.
type Cluster struct {
	Hosts []HostSpec
	Links []LinkSpec
	VMs   []VMSpec
}

// Host returns the named host spec, and whether it exists.
func (c *Cluster) Host(name string) (HostSpec, bool) {
	for _, h := range c.Hosts {
		if h.Name == name {
			return h, true
		}
	}
	return HostSpec{}, false
}

// VM returns the named VM spec, and whether it exists.
func (c *Cluster) VM(name string) (VMSpec, bool) {
	for _, v := range c.VMs {
		if v.Name == name {
			return v, true
		}
	}
	return VMSpec{}, false
}

// RackHosts returns the names of the hosts in a rack, in declaration order.
func (c *Cluster) RackHosts(rack string) []string {
	var out []string
	for _, h := range c.Hosts {
		if h.Rack == rack {
			out = append(out, h.Name)
		}
	}
	return out
}

// vmsOn returns the VMs resident on a host, in declaration order.
func (c *Cluster) vmsOn(host string) []VMSpec {
	var out []VMSpec
	for _, v := range c.VMs {
		if v.Host == host {
			out = append(out, v)
		}
	}
	return out
}

// usedRAM sums the memory of the VMs resident on a host.
func (c *Cluster) usedRAM(host string) uint64 {
	var used uint64
	for _, v := range c.VMs {
		if v.Host == host {
			used += v.memBytes()
		}
	}
	return used
}

func (v VMSpec) memBytes() uint64 {
	if v.MemBytes == 0 {
		return 2 << 30
	}
	return v.MemBytes
}

func (v VMSpec) workloadName() string {
	if v.Workload == "" {
		return "derby"
	}
	return v.Workload
}

// Profile resolves the VM's workload profile with its cycle override.
func (v VMSpec) Profile() (workload.Profile, error) {
	prof, err := workload.Lookup(v.workloadName())
	if err != nil {
		return workload.Profile{}, err
	}
	if v.Cycle.Enabled() {
		prof.Cycle = v.Cycle
	}
	return prof, nil
}

// Validate checks the topology: unique names, placements on declared hosts,
// link endpoints on declared hosts, RAM capacity respected, workloads and
// cycles well-formed. When no links are declared it synthesizes a default
// gigabit "backbone" connecting every host, so minimal clusters stay
// one-liners.
func (c *Cluster) Validate() error {
	if len(c.Hosts) == 0 {
		return fmt.Errorf("fleet: cluster declares no hosts")
	}
	hosts := make(map[string]bool, len(c.Hosts))
	for _, h := range c.Hosts {
		if h.Name == "" {
			return fmt.Errorf("fleet: host with empty name")
		}
		if hosts[h.Name] {
			return fmt.Errorf("fleet: duplicate host %q", h.Name)
		}
		hosts[h.Name] = true
	}
	if len(c.Links) == 0 && len(c.Hosts) >= 2 {
		// A single-host cluster legitimately has no links; plans against it
		// fail later with a typed destination-exhaustion error, not here.
		all := make([]string, len(c.Hosts))
		for i, h := range c.Hosts {
			all[i] = h.Name
		}
		c.Links = []LinkSpec{{
			Name:      "backbone",
			Bandwidth: netsim.GigabitEffective,
			Latency:   100 * time.Microsecond,
			Hosts:     all,
		}}
	}
	links := make(map[string]bool, len(c.Links))
	for _, l := range c.Links {
		if l.Name == "" {
			return fmt.Errorf("fleet: link with empty name")
		}
		if links[l.Name] {
			return fmt.Errorf("fleet: duplicate link %q", l.Name)
		}
		links[l.Name] = true
		if l.Bandwidth == 0 {
			return fmt.Errorf("fleet: link %q has zero bandwidth", l.Name)
		}
		if len(l.Hosts) < 2 {
			return fmt.Errorf("fleet: link %q connects %d hosts (need ≥ 2)", l.Name, len(l.Hosts))
		}
		for _, h := range l.Hosts {
			if !hosts[h] {
				return fmt.Errorf("fleet: link %q references unknown host %q", l.Name, h)
			}
		}
	}
	vms := make(map[string]bool, len(c.VMs))
	for _, v := range c.VMs {
		if v.Name == "" {
			return fmt.Errorf("fleet: VM with empty name")
		}
		if vms[v.Name] {
			return fmt.Errorf("fleet: duplicate VM %q", v.Name)
		}
		vms[v.Name] = true
		if !hosts[v.Host] {
			return fmt.Errorf("fleet: VM %q placed on unknown host %q", v.Name, v.Host)
		}
		if _, err := v.Profile(); err != nil {
			return fmt.Errorf("fleet: VM %q: %w", v.Name, err)
		}
		if err := v.Cycle.Validate(); err != nil {
			return fmt.Errorf("fleet: VM %q: %w", v.Name, err)
		}
	}
	for _, h := range c.Hosts {
		if h.RAMBytes == 0 {
			continue
		}
		if used := c.usedRAM(h.Name); used > h.RAMBytes {
			return fmt.Errorf("fleet: host %q overcommitted: %d MiB of VMs in %d MiB of RAM",
				h.Name, used>>20, h.RAMBytes>>20)
		}
	}
	return nil
}

// Fabric realizes the topology on a netsim fabric: one AddHost per host
// (with its NIC cap) and one AddLink per declared link.
func (c *Cluster) Fabric(clock *simclock.Clock) *netsim.Fabric {
	f := netsim.NewFabric(clock)
	for _, h := range c.Hosts {
		f.AddHost(h.Name, h.NICBandwidth)
	}
	for _, l := range c.Links {
		f.AddLink(l.Name, l.Bandwidth, l.Latency, l.Hosts...)
	}
	return f
}

// linkBandwidth returns the declared bandwidth of a link by name (0 when
// unknown).
func (c *Cluster) linkBandwidth(name string) uint64 {
	for _, l := range c.Links {
		if l.Name == name {
			return l.Bandwidth
		}
	}
	return 0
}

// bottleneckBandwidth is the uncontended path bottleneck for a from→to
// flow: the minimum over its route's links plus both endpoints' NIC caps.
func (c *Cluster) bottleneckBandwidth(route []string, from, to string) uint64 {
	bw := uint64(0)
	consider := func(b uint64) {
		if b > 0 && (bw == 0 || b < bw) {
			bw = b
		}
	}
	for _, name := range route {
		consider(c.linkBandwidth(name))
	}
	if h, ok := c.Host(from); ok {
		consider(h.NICBandwidth)
	}
	if h, ok := c.Host(to); ok {
		consider(h.NICBandwidth)
	}
	return bw
}

// ParseCluster parses the declarative cluster grammar: statements separated
// by semicolons or newlines, tokens by whitespace. Comments run from # to
// end of line.
//
//	host H [rack R] [ram 16G] [cores 16] [nic 1G]
//	link L bw 1G [lat 100us] hosts a,b,c
//	vm V on H [workload derby] [mem 2G] [cycle <period>/<quietStart>/<quietLen>/<factor>[/<phase>]]
//
// Sizes accept K/M/G/T binary suffixes; durations use Go syntax (100us,
// 1500ms); the cycle clause declares the VM's quiet window, e.g.
// "cycle 60s/40s/15s/0.1" (60 s period, quiet 40–55 s, 10 % activity).
func ParseCluster(text string) (*Cluster, error) {
	c := &Cluster{}
	for _, stmt := range splitStatements(text) {
		toks := strings.Fields(stmt)
		if len(toks) == 0 {
			continue
		}
		switch toks[0] {
		case "host":
			h, err := parseHost(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("fleet: %q: %w", stmt, err)
			}
			c.Hosts = append(c.Hosts, h)
		case "link":
			l, err := parseLink(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("fleet: %q: %w", stmt, err)
			}
			c.Links = append(c.Links, l)
		case "vm":
			v, err := parseVM(toks[1:])
			if err != nil {
				return nil, fmt.Errorf("fleet: %q: %w", stmt, err)
			}
			c.VMs = append(c.VMs, v)
		default:
			return nil, fmt.Errorf("fleet: %q: unknown statement %q (want host/link/vm)", stmt, toks[0])
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func splitStatements(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			if s := strings.TrimSpace(stmt); s != "" {
				out = append(out, s)
			}
		}
	}
	return out
}

func parseHost(toks []string) (HostSpec, error) {
	if len(toks) == 0 {
		return HostSpec{}, fmt.Errorf("host needs a name")
	}
	h := HostSpec{Name: toks[0]}
	toks = toks[1:]
	for len(toks) > 0 {
		if len(toks) < 2 {
			return HostSpec{}, fmt.Errorf("dangling token %q", toks[0])
		}
		key, val := toks[0], toks[1]
		toks = toks[2:]
		var err error
		switch key {
		case "rack":
			h.Rack = val
		case "ram":
			h.RAMBytes, err = parseSize(val)
		case "cores":
			h.CPUCores, err = strconv.Atoi(val)
		case "nic":
			h.NICBandwidth, err = parseSize(val)
		default:
			return HostSpec{}, fmt.Errorf("unknown host attribute %q", key)
		}
		if err != nil {
			return HostSpec{}, fmt.Errorf("host %s %s: %w", key, val, err)
		}
	}
	return h, nil
}

func parseLink(toks []string) (LinkSpec, error) {
	if len(toks) == 0 {
		return LinkSpec{}, fmt.Errorf("link needs a name")
	}
	l := LinkSpec{Name: toks[0], Latency: 100 * time.Microsecond}
	toks = toks[1:]
	for len(toks) > 0 {
		if len(toks) < 2 {
			return LinkSpec{}, fmt.Errorf("dangling token %q", toks[0])
		}
		key, val := toks[0], toks[1]
		toks = toks[2:]
		var err error
		switch key {
		case "bw":
			l.Bandwidth, err = parseSize(val)
		case "lat":
			l.Latency, err = time.ParseDuration(val)
		case "hosts":
			l.Hosts = strings.Split(val, ",")
		default:
			return LinkSpec{}, fmt.Errorf("unknown link attribute %q", key)
		}
		if err != nil {
			return LinkSpec{}, fmt.Errorf("link %s %s: %w", key, val, err)
		}
	}
	return l, nil
}

func parseVM(toks []string) (VMSpec, error) {
	if len(toks) < 3 || toks[1] != "on" {
		return VMSpec{}, fmt.Errorf("vm needs \"vm <name> on <host>\"")
	}
	v := VMSpec{Name: toks[0], Host: toks[2]}
	toks = toks[3:]
	for len(toks) > 0 {
		if len(toks) < 2 {
			return VMSpec{}, fmt.Errorf("dangling token %q", toks[0])
		}
		key, val := toks[0], toks[1]
		toks = toks[2:]
		var err error
		switch key {
		case "workload":
			v.Workload = val
		case "mem":
			v.MemBytes, err = parseSize(val)
		case "cycle":
			v.Cycle, err = parseCycle(val)
		default:
			return VMSpec{}, fmt.Errorf("unknown vm attribute %q", key)
		}
		if err != nil {
			return VMSpec{}, fmt.Errorf("vm %s %s: %w", key, val, err)
		}
	}
	return v, nil
}

// parseCycle parses period/quietStart/quietLen/factor[/phase].
func parseCycle(spec string) (workload.CycleSpec, error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 4 && len(parts) != 5 {
		return workload.CycleSpec{}, fmt.Errorf("want period/quietStart/quietLen/factor[/phase]")
	}
	var c workload.CycleSpec
	var err error
	if c.Period, err = time.ParseDuration(parts[0]); err != nil {
		return workload.CycleSpec{}, err
	}
	if c.QuietStart, err = time.ParseDuration(parts[1]); err != nil {
		return workload.CycleSpec{}, err
	}
	if c.QuietLen, err = time.ParseDuration(parts[2]); err != nil {
		return workload.CycleSpec{}, err
	}
	if c.QuietFactor, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return workload.CycleSpec{}, err
	}
	if len(parts) == 5 {
		if c.Phase, err = time.ParseDuration(parts[4]); err != nil {
			return workload.CycleSpec{}, err
		}
	}
	return c, c.Validate()
}

// parseSize parses a byte (or bytes/sec) size with optional binary
// K/M/G/T suffix: "2G", "512M", "125000000".
func parseSize(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
	case 'M', 'm':
		mult = 1 << 20
	case 'G', 'g':
		mult = 1 << 30
	case 'T', 't':
		mult = 1 << 40
	}
	num := s
	if mult > 1 {
		num = s[:len(s)-1]
	}
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
