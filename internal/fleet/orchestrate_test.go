package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"javmm/internal/migration"
	"javmm/internal/obs/sla"
	"javmm/internal/workload"
)

// orchCluster builds the canonical test topology: one host to evacuate and
// two destination hosts in another rack, all on one shared backbone.
func orchCluster(n int, withCycles bool) *Cluster {
	c := &Cluster{
		Hosts: []HostSpec{
			{Name: "src", Rack: "a", RAMBytes: 64 << 30},
			{Name: "d1", Rack: "b", RAMBytes: 64 << 30},
			{Name: "d2", Rack: "b", RAMBytes: 64 << 30},
		},
	}
	wl := []string{"compress", "crypto", "mpeg", "serial"}
	for i := 0; i < n; i++ {
		v := VMSpec{
			Name:     fmt.Sprintf("vm%d", i),
			Host:     "src",
			Workload: wl[i%len(wl)],
			MemBytes: 2 << 30,
		}
		if withCycles {
			v.Cycle = workload.CycleSpec{
				Period:      20 * time.Second,
				QuietStart:  8 * time.Second,
				QuietLen:    8 * time.Second,
				QuietFactor: 0.1,
				Phase:       time.Duration(i) * 3 * time.Second,
			}
		}
		c.VMs = append(c.VMs, v)
	}
	return c
}

func evacuatePlan(t *testing.T) *Plan {
	t.Helper()
	p, err := ParseMigrationPlan("evacuate host src")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func orchOpts(t *testing.T, n int, mode migration.Mode, ord Ordering) OrchestratorOptions {
	t.Helper()
	return OrchestratorOptions{
		Cluster:         orchCluster(n, true),
		Plan:            evacuatePlan(t),
		Mode:            mode,
		Seed:            7,
		Ordering:        ord,
		Admission:       AdmissionPolicy{MaxPerLink: 2, MaxPerHost: 2},
		Warmup:          5 * time.Second,
		DecisionQuantum: 250 * time.Millisecond,
		QuietHorizon:    30 * time.Second,
		SLA:             &sla.Model{DowntimePenaltyPerSec: 1, DipPenaltyPerOp: 0.001},
	}
}

// compareMoves asserts byte-identity of the replayed plan: per-VM Reports,
// the full scheduling record, fabric accounting and fleet cost.
func comparePlans(t *testing.T, a, b *PlanResult) {
	t.Helper()
	if len(a.Moves) != len(b.Moves) {
		t.Fatalf("move counts diverge: %d vs %d", len(a.Moves), len(b.Moves))
	}
	for i := range a.Moves {
		x, y := &a.Moves[i], &b.Moves[i]
		if x.Err != nil || y.Err != nil {
			t.Fatalf("move %s errored: %v / %v", x.Name, x.Err, y.Err)
		}
		if x.VerifyErr != nil || y.VerifyErr != nil {
			t.Fatalf("move %s failed verification: %v / %v", x.Name, x.VerifyErr, y.VerifyErr)
		}
		if !reflect.DeepEqual(x.Report, y.Report) {
			t.Fatalf("move %s reports diverge between runs", x.Name)
		}
		if x.StartAt != y.StartAt || x.EndAt != y.EndAt ||
			x.EligibleAt != y.EligibleAt || x.LaunchedAt != y.LaunchedAt {
			t.Fatalf("move %s timing diverges: [%v %v %v %v] vs [%v %v %v %v]",
				x.Name, x.EligibleAt, x.LaunchedAt, x.StartAt, x.EndAt,
				y.EligibleAt, y.LaunchedAt, y.StartAt, y.EndAt)
		}
		if x.Deferrals != y.Deferrals || x.QuietLaunch != y.QuietLaunch || x.Forced != y.Forced {
			t.Fatalf("move %s scheduling record diverges: (%d %v %v) vs (%d %v %v)",
				x.Name, x.Deferrals, x.QuietLaunch, x.Forced,
				y.Deferrals, y.QuietLaunch, y.Forced)
		}
		if x.WorkloadDowntime != y.WorkloadDowntime {
			t.Fatalf("move %s downtime diverges: %v vs %v", x.Name, x.WorkloadDowntime, y.WorkloadDowntime)
		}
		if !reflect.DeepEqual(x.SLACost, y.SLACost) {
			t.Fatalf("move %s SLA cost diverges", x.Name)
		}
		if !reflect.DeepEqual(x.Samples, y.Samples) {
			t.Fatalf("move %s workload samples diverge", x.Name)
		}
	}
	if !reflect.DeepEqual(a.Fabric, b.Fabric) {
		t.Fatalf("fabric reports diverge:\n%+v\n%+v", a.Fabric, b.Fabric)
	}
	if a.MakeSpan != b.MakeSpan {
		t.Fatalf("makespan diverges: %v vs %v", a.MakeSpan, b.MakeSpan)
	}
	if !reflect.DeepEqual(a.SLA, b.SLA) {
		t.Fatalf("fleet costs diverge:\n%+v\n%+v", a.SLA, b.SLA)
	}
}

// Satellite 1 (property): orchestrator determinism — same seed and plan
// replay to byte-identical per-VM Reports, scheduling records and
// FleetCost, across 2/4/8-VM plans in all four modes (and all three
// orderings, rotating). The test binary runs under -race in CI.
func TestOrchestratorDeterministic(t *testing.T) {
	modes := []migration.Mode{
		migration.ModeVanilla, migration.ModeAppAssisted,
		migration.ModePostCopy, migration.ModeHybrid,
	}
	orderings := []Ordering{OrderNaive, OrderAdmission, OrderCycleAware}
	for _, n := range []int{2, 4, 8} {
		for mi, mode := range modes {
			ord := orderings[(n/2+mi)%len(orderings)]
			t.Run(fmt.Sprintf("%dvm-%s-%s", n, mode, ord), func(t *testing.T) {
				r1, err := Orchestrate(orchOpts(t, n, mode, ord))
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Orchestrate(orchOpts(t, n, mode, ord))
				if err != nil {
					t.Fatal(err)
				}
				comparePlans(t, r1, r2)
			})
		}
	}
}

// The merged fleet trace replays byte-identically too (one representative
// mode per plan size; full-matrix report identity is covered above).
func TestOrchestratorMergedTraceByteIdentical(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dvm", n), func(t *testing.T) {
			var traces [2][]byte
			for run := range traces {
				opts := orchOpts(t, n, migration.ModeAppAssisted, OrderCycleAware)
				opts.Collect = true
				res, err := Orchestrate(opts)
				if err != nil {
					t.Fatal(err)
				}
				if res.Obs == nil {
					t.Fatal("Collect run returned no collector")
				}
				var buf bytes.Buffer
				if err := res.Obs.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
				traces[run] = append([]byte(nil), buf.Bytes()...)
			}
			if !bytes.Equal(traces[0], traces[1]) {
				t.Fatal("merged Chrome traces differ between same-seed plan replays")
			}
		})
	}
}

// Scheduler edge case: an empty plan is a successful no-op.
func TestOrchestratorEmptyPlan(t *testing.T) {
	c := orchCluster(2, false)
	p, err := ParseMigrationPlan("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Orchestrate(OrchestratorOptions{Cluster: c, Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 || res.MakeSpan != 0 {
		t.Fatalf("empty plan produced %d moves, makespan %v", len(res.Moves), res.MakeSpan)
	}
	// No plan at all behaves the same.
	if res, err = Orchestrate(OrchestratorOptions{Cluster: c}); err != nil || len(res.Moves) != 0 {
		t.Fatalf("nil plan: %v, %d moves", err, len(res.Moves))
	}
}

// Scheduler edge case: a single-host cluster cannot evacuate — the compile
// fails with the typed admission error, not a crash or a hang.
func TestOrchestratorSingleHostCluster(t *testing.T) {
	c, err := ParseCluster("host only ram 8G; vm v on only mem 1G")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseMigrationPlan("evacuate host only")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Orchestrate(OrchestratorOptions{Cluster: c, Plan: p})
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("error %v (%T), want *AdmissionError", err, err)
	}
	if adm.Resource != "destination" || adm.VM != "v" {
		t.Fatalf("AdmissionError = %+v", adm)
	}
}

// Scheduler edge case: a migration predicted never to converge (derby's
// full-speed dirty rate exceeds the backbone) is deferred — but the wait is
// bounded by QuietHorizon, after which it launches forced. Deferral, not
// starvation.
func TestOrchestratorNonConvergingDeferralBounded(t *testing.T) {
	c := &Cluster{
		Hosts: []HostSpec{
			{Name: "src", RAMBytes: 8 << 30},
			{Name: "dst", RAMBytes: 8 << 30},
		},
		// derby at full speed dirties ~296 MB/s against a 117 MB/s
		// backbone: EstimateETA says non-converging, every tick. No cycle,
		// so no quiet window ever opens.
		VMs: []VMSpec{{Name: "hot", Host: "src", Workload: "derby", MemBytes: 2 << 30}},
	}
	horizon := 10 * time.Second
	opts := OrchestratorOptions{
		Cluster:         c,
		Plan:            mustPlan(t, "evacuate host src"),
		Mode:            migration.ModeAppAssisted,
		Seed:            3,
		Ordering:        OrderCycleAware,
		Warmup:          5 * time.Second,
		DecisionQuantum: 250 * time.Millisecond,
		QuietHorizon:    horizon,
	}
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := &res.Moves[0]
	if m.Err != nil {
		t.Fatalf("forced migration failed: %v", m.Err)
	}
	if m.VerifyErr != nil {
		t.Fatalf("forced migration image diverged: %v", m.VerifyErr)
	}
	if m.Deferrals == 0 {
		t.Fatal("non-converging move was never deferred")
	}
	if !m.Forced {
		t.Fatal("bounded-wait launch not marked Forced")
	}
	waited := m.LaunchedAt - m.EligibleAt
	if waited < horizon {
		t.Fatalf("launched after %v, before the %v horizon", waited, horizon)
	}
	if max := horizon + 2*opts.DecisionQuantum; waited > max {
		t.Fatalf("starved: launched after %v, bound %v", waited, max)
	}
}

func mustPlan(t *testing.T, text string) *Plan {
	t.Helper()
	p, err := ParseMigrationPlan(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Admission control holds under load: a 6-VM evacuation behind
// MaxPerLink=2 never carries more than two concurrent migrations on the
// backbone (VerifyAdmission over the engine windows), while naive ordering
// provably over-commits the same plan.
func TestOrchestratorAdmissionNeverOvercommits(t *testing.T) {
	policy := AdmissionPolicy{MaxPerLink: 2, MaxPerHost: 2}
	opts := orchOpts(t, 6, migration.ModeAppAssisted, OrderAdmission)
	opts.Admission = policy
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Moves {
		if res.Moves[i].Err != nil {
			t.Fatalf("move %s failed: %v", res.Moves[i].Name, res.Moves[i].Err)
		}
	}
	if err := VerifyAdmission(res.Moves, policy); err != nil {
		t.Fatal(err)
	}
	// The checker has teeth: the same windows cannot fit under a cap of 1.
	if err := VerifyAdmission(res.Moves, AdmissionPolicy{MaxPerLink: 1}); err == nil {
		t.Fatal("6 migrations behind a 2-cap verified against a 1-cap")
	}
	deferred := 0
	for i := range res.Moves {
		if res.Moves[i].Deferrals > 0 {
			deferred++
		}
	}
	if deferred == 0 {
		t.Fatal("a 6-VM plan behind a 2-cap never deferred anything")
	}

	// Naive ordering launches everything at once and over-commits.
	opts = orchOpts(t, 6, migration.ModeAppAssisted, OrderNaive)
	res, err = Orchestrate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAdmission(res.Moves, policy); err == nil {
		t.Fatal("naive 6-VM launch did not over-commit a 2-cap link")
	}
}

// Cycle-aware launches land inside quiet windows (or are explicitly marked
// forced), and at least one launch actually exploits a quiet window.
func TestOrchestratorCycleAwareQuietLaunches(t *testing.T) {
	res, err := Orchestrate(orchOpts(t, 4, migration.ModeVanilla, OrderCycleAware))
	if err != nil {
		t.Fatal(err)
	}
	quiet := 0
	for i := range res.Moves {
		m := &res.Moves[i]
		if m.Err != nil {
			t.Fatalf("move %s failed: %v", m.Name, m.Err)
		}
		if !m.QuietLaunch && !m.Forced {
			t.Fatalf("move %s launched outside its quiet window without being forced (at %v)",
				m.Name, m.LaunchedAt)
		}
		if m.QuietLaunch {
			quiet++
		}
	}
	if quiet == 0 {
		t.Fatal("no launch used a quiet window")
	}
}
