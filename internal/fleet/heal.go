package fleet

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"javmm/internal/obs/ledger"
)

// The self-healing layer: when OrchestratorOptions.Retry is enabled, a move
// that fails does not simply land in the outcome table as dead. The
// orchestrator classifies the failure, and either retries the same
// destination (transient — reusing the abort's ResumeToken so only
// dirty ∪ never-received pages resend) or re-selects a destination
// (permanent — the dead host blacklisted, the stale token degrading to a
// clean first copy at the new host by destination binding). Retries carry a
// seeded exponential backoff and are bounded by a per-move attempt budget, a
// per-move deadline and a whole-plan deadline; hosts that keep killing
// migrations trip a circuit breaker and drop out of destination selection
// until a cooldown passes. A plan that exhausts its budgets completes
// partially: every move ends in a typed outcome, failed moves with their
// source VM cleanly resumed.

// RetryPolicy bounds the healing layer's persistence. The zero value (with
// Enabled false) disables healing entirely: Orchestrate behaves exactly as
// before, one attempt per move.
type RetryPolicy struct {
	// Enabled turns the healing layer on. When set, the engine's
	// Recovery.EnableResume is forced on so failed attempts keep the
	// destination image and mint reusable ResumeTokens.
	Enabled bool
	// MaxAttempts bounds launches per move, first attempt included
	// (default 3).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the seeded exponential backoff between
	// attempts: attempt k waits uniformly in [c/2, c] where
	// c = BaseBackoff·2^(k−1) clamped to MaxBackoff (defaults 2 s / 30 s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed feeds the backoff jitter PRNG; move i draws from Seed+i, so a
	// whole healing plan replays byte-identically at the same seed
	// (default 1).
	Seed int64
	// MoveDeadline bounds one move's total healing time, measured from its
	// first launch (default 10 min). A move past it fails instead of
	// retrying.
	MoveDeadline time.Duration
	// PlanDeadline bounds the whole plan, measured from the warmup instant
	// (default 30 min). When it passes, pending relaunches are abandoned and
	// the plan completes partially.
	PlanDeadline time.Duration
	// DisableRelocation pins every retry to its original destination:
	// permanent failures retry the same host (with a clean first copy)
	// instead of re-selecting. The X17 "retry-same" arm runs this.
	DisableRelocation bool
	// Breaker is the per-host circuit breaker policy.
	Breaker BreakerPolicy
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 2 * time.Second
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MoveDeadline == 0 {
		p.MoveDeadline = 10 * time.Minute
	}
	if p.PlanDeadline == 0 {
		p.PlanDeadline = 30 * time.Minute
	}
	p.Breaker.fillDefaults()
}

// BreakerPolicy is the per-host circuit breaker: Threshold failures within
// Window open the host for Cooldown. An open host is excluded from
// destination re-selection and from relaunch grants until the cooldown
// passes. Threshold < 0 disables the breaker.
type BreakerPolicy struct {
	Threshold int
	Window    time.Duration
	Cooldown  time.Duration
}

func (b *BreakerPolicy) fillDefaults() {
	if b.Threshold == 0 {
		b.Threshold = 3
	}
	if b.Window == 0 {
		b.Window = 2 * time.Minute
	}
	if b.Cooldown == 0 {
		b.Cooldown = 5 * time.Minute
	}
}

// String renders the policy in the CLI's K/window/cooldown form
// (ParseBreakerPolicy's inverse).
func (b BreakerPolicy) String() string {
	if b.Threshold < 0 {
		return "off"
	}
	return fmt.Sprintf("%d/%s/%s", b.Threshold, b.Window, b.Cooldown)
}

// ParseBreakerPolicy parses "K/window/cooldown" (e.g. "3/2m/5m"), or "off"
// to disable the breaker.
func ParseBreakerPolicy(s string) (BreakerPolicy, error) {
	if s == "off" {
		return BreakerPolicy{Threshold: -1}, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return BreakerPolicy{}, fmt.Errorf("fleet: breaker %q: want K/window/cooldown (e.g. 3/2m/5m) or off", s)
	}
	k, err := strconv.Atoi(parts[0])
	if err != nil || k <= 0 {
		return BreakerPolicy{}, fmt.Errorf("fleet: breaker %q: bad threshold %q", s, parts[0])
	}
	w, err := time.ParseDuration(parts[1])
	if err != nil || w <= 0 {
		return BreakerPolicy{}, fmt.Errorf("fleet: breaker %q: bad window %q", s, parts[1])
	}
	c, err := time.ParseDuration(parts[2])
	if err != nil || c <= 0 {
		return BreakerPolicy{}, fmt.Errorf("fleet: breaker %q: bad cooldown %q", s, parts[2])
	}
	return BreakerPolicy{Threshold: k, Window: w, Cooldown: c}, nil
}

// HostOpenError is the typed error for a relaunch blocked by an open
// circuit breaker: every otherwise-admissible destination is cooling down.
// Until is the earliest instant one of them closes.
type HostOpenError struct {
	Host  string
	Until time.Duration
}

func (e *HostOpenError) Error() string {
	return fmt.Sprintf("fleet: breaker open on host %s until %s", e.Host, e.Until)
}

// MoveOutcome classifies how a move ended under the healing layer.
type MoveOutcome int

// Move outcomes.
const (
	// OutcomePending: the move never reached a terminal state (only seen on
	// results inspected mid-plan).
	OutcomePending MoveOutcome = iota
	// OutcomeCompleted: first attempt succeeded.
	OutcomeCompleted
	// OutcomeRetried: succeeded after ≥1 retry on the original destination.
	OutcomeRetried
	// OutcomeRelocated: succeeded after re-selecting a destination.
	OutcomeRelocated
	// OutcomeFailed: healing budgets exhausted; the source VM was cleanly
	// resumed and keeps running where it is.
	OutcomeFailed
)

// String names the outcome for tables and JSON.
func (o MoveOutcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeCompleted:
		return "completed"
	case OutcomeRetried:
		return "retried"
	case OutcomeRelocated:
		return "relocated"
	case OutcomeFailed:
		return "failed"
	}
	return fmt.Sprintf("MoveOutcome(%d)", int(o))
}

// Attempt is one launch of one move: where it went, when, and how it ended.
// The admission verifier re-checks caps against these windows, so every
// relaunch is held to the same policy as a first launch.
type Attempt struct {
	// To/Route are the attempt's destination and path (relocation changes
	// them between attempts).
	To    string
	Route []string
	// StartAt/EndAt bound the attempt on the virtual clock.
	StartAt, EndAt time.Duration
	// Err is the failure, empty on success; Transient whether the healing
	// layer classified it retryable-in-place.
	Err       string
	Transient bool
	// Backoff is the wait scheduled after this attempt (zero on the last).
	Backoff time.Duration
	// TokenReused reports the attempt launched as a Resume from the prior
	// abort's token; SavedBytes/RefetchPages are that resume plan's
	// accounting (zero for a clean Migrate).
	TokenReused  bool
	SavedBytes   uint64
	RefetchPages uint64
}

// hostBreaker tracks per-host failure history. All access happens under the
// cooperative scheduler, so plain maps are race-free.
type hostBreaker struct {
	pol       BreakerPolicy
	failures  map[string][]time.Duration
	openUntil map[string]time.Duration
	opens     int
}

func newHostBreaker(pol BreakerPolicy) *hostBreaker {
	return &hostBreaker{
		pol:       pol,
		failures:  map[string][]time.Duration{},
		openUntil: map[string]time.Duration{},
	}
}

// fail records one migration failure against host at now; it reports whether
// this failure tripped the breaker open.
func (b *hostBreaker) fail(host string, now time.Duration) bool {
	if b.pol.Threshold <= 0 {
		return false
	}
	f := append(b.failures[host], now)
	cut := now - b.pol.Window
	for len(f) > 0 && f[0] < cut {
		f = f[1:]
	}
	b.failures[host] = f
	if len(f) >= b.pol.Threshold {
		b.openUntil[host] = now + b.pol.Cooldown
		b.failures[host] = nil
		b.opens++
		return true
	}
	return false
}

// open reports whether host's breaker is open at now, and until when.
func (b *hostBreaker) open(host string, now time.Duration) (time.Duration, bool) {
	u, ok := b.openUntil[host]
	if !ok || now >= u {
		return 0, false
	}
	return u, true
}

// healState is the healing layer's shared launch state, mutated only under
// the cooperative scheduler (like granted/inflight in the legacy path).
type healState struct {
	pol RetryPolicy
	// pending: the move wants a (re)launch grant. abandon: the orchestrator
	// gave up on it (deadline); the engine terminalizes it as failed.
	pending, abandon []bool
	// notBefore gates relaunches behind backoff/cooldown waits.
	notBefore []time.Duration
	// attempts counts launches; firstLaunch anchors the move deadline.
	attempts     []int
	firstLaunch  []time.Duration
	launchedOnce []bool
	breaker      *hostBreaker
	// planEnd is the plan deadline instant (warmup + PlanDeadline; the clock
	// starts at zero, so it is static).
	planEnd time.Duration
}

func newHealState(pol RetryPolicy, n int, warmup time.Duration) *healState {
	return &healState{
		pol:          pol,
		pending:      make([]bool, n),
		abandon:      make([]bool, n),
		notBefore:    make([]time.Duration, n),
		attempts:     make([]int, n),
		firstLaunch:  make([]time.Duration, n),
		launchedOnce: make([]bool, n),
		breaker:      newHostBreaker(pol.Breaker),
		planEnd:      warmup + pol.PlanDeadline,
	}
}

// healBackoff is attempt k's backoff draw: uniform in [c/2, c] with
// c = BaseBackoff·2^(k−1) clamped to MaxBackoff — the same shape as the
// engine-level retry backoff, from the move's own seeded PRNG.
func healBackoff(rng *rand.Rand, pol *RetryPolicy, attempt int) time.Duration {
	ceil := pol.BaseBackoff
	for i := 1; i < attempt; i++ {
		ceil *= 2
		if ceil >= pol.MaxBackoff || ceil <= 0 {
			ceil = pol.MaxBackoff
			break
		}
	}
	if ceil > pol.MaxBackoff {
		ceil = pol.MaxBackoff
	}
	half := ceil / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// pickDestination re-selects a destination for move i after a permanent
// failure on failed: re-run the plan compiler's best-fit over the cluster
// with every other move's (possibly relocated) placement booked, the dead
// host, crash-windowed hosts and breaker-open hosts excluded. When the only
// hosts that would fit are breaker-open, the typed HostOpenError names the
// one that closes first, so the caller can wait out the cooldown instead of
// spinning or giving up early.
func (h *healState) pickDestination(opts *OrchestratorOptions, res *PlanResult,
	moves []Move, i int, failed string, now time.Duration) (string, error) {
	vm := moves[i].VM
	exclude := map[string]bool{vm.Host: true, failed: true, res.Moves[i].To: true}
	var openHosts []string
	for _, host := range opts.Cluster.Hosts {
		if opts.Faults != nil && opts.Faults.HostDown(host.Name) {
			exclude[host.Name] = true
			continue
		}
		if _, open := h.breaker.open(host.Name, now); open {
			exclude[host.Name] = true
			openHosts = append(openHosts, host.Name)
		}
	}
	pl := newPlacement(opts.Cluster)
	for j := range moves {
		if j != i {
			pl.assign(moves[j].VM, res.Moves[j].To)
		}
	}
	dest, err := pl.bestFit(vm, exclude)
	if err == nil {
		return dest, nil
	}
	// No host fits outright — would one of the breaker-open hosts? Surface
	// the earliest-closing one as a typed wait.
	bestHost, bestUntil := "", time.Duration(0)
	for _, hn := range openHosts {
		if hn == vm.Host || hn == failed || pl.freeRAM(hn) < vm.memBytes() {
			continue
		}
		until, _ := h.breaker.open(hn, now)
		if bestHost == "" || until < bestUntil {
			bestHost, bestUntil = hn, until
		}
	}
	if bestHost != "" {
		return "", &HostOpenError{Host: bestHost, Until: bestUntil}
	}
	return "", err
}

// MoveHealing is one move's healing record in the summary.
type MoveHealing struct {
	VM      string `json:"vm"`
	From    string `json:"from"`
	To      string `json:"to"`
	Outcome string `json:"outcome"`
	// Attempts counts launches; Relocations destination re-selections.
	Attempts    int `json:"attempts"`
	Relocations int `json:"relocations"`
	// Backoff is total healing backoff time; TokenSavedBytes the wire bytes
	// token reuse avoided resending; RefetchPages the pages resume plans
	// queued for refetch across all attempts.
	Backoff         time.Duration `json:"backoff_ns"`
	TokenSavedBytes uint64        `json:"token_saved_bytes"`
	RefetchPages    uint64        `json:"refetch_pages"`
	// LedgerResumeSends/Bytes are the ledger's resume-refetch bucket for the
	// VM (zero without the observability plane). Reconciliation:
	// LedgerResumeSends ≤ RefetchPages (assisted-mode bitmap skips and
	// re-dirtied pages may re-classify a queued refetch).
	LedgerResumeSends uint64 `json:"ledger_resume_sends"`
	LedgerResumeBytes uint64 `json:"ledger_resume_bytes"`
	Err               string `json:"err,omitempty"`
}

// HealingSummary is the plan's healing record: what the analyzer's Healing
// table renders and the chaos runner's invariants inspect.
type HealingSummary struct {
	Moves           []MoveHealing `json:"moves"`
	Retries         int           `json:"retries"`
	Relocations     int           `json:"relocations"`
	BreakerOpens    int           `json:"breaker_opens"`
	BackoffTotal    time.Duration `json:"backoff_total_ns"`
	TokenSavedBytes uint64        `json:"token_saved_bytes"`
}

// Healing builds the plan's healing summary from the per-move records (and
// the ledger's resume-refetch buckets when the observability plane ran).
func (r *PlanResult) Healing() *HealingSummary {
	s := &HealingSummary{}
	if r.heal != nil {
		s.BreakerOpens = r.heal.breaker.opens
	}
	ledgers := map[string]*ledger.Ledger{}
	if r.Obs != nil {
		for _, vp := range r.Obs.VMs() {
			ledgers[vp.Name] = vp.Ledger
		}
	}
	for i := range r.Moves {
		m := &r.Moves[i]
		mh := MoveHealing{
			VM: m.Name, From: m.From, To: m.To,
			Outcome:         m.Outcome.String(),
			Attempts:        len(m.Attempts),
			Relocations:     m.Relocations,
			Backoff:         m.HealBackoff,
			TokenSavedBytes: m.TokenSavedBytes,
		}
		for _, a := range m.Attempts {
			mh.RefetchPages += a.RefetchPages
		}
		if m.Err != nil {
			mh.Err = m.Err.Error()
		}
		if led := ledgers[m.Name]; led != nil {
			sum := led.Summary()
			if int(ledger.ReasonResumeRefetch) < len(sum.SendsByReason) {
				rt := sum.SendsByReason[ledger.ReasonResumeRefetch]
				mh.LedgerResumeSends = rt.Count
				mh.LedgerResumeBytes = rt.Bytes
			}
		}
		if n := len(m.Attempts); n > 1 {
			s.Retries += n - 1
		}
		s.Relocations += m.Relocations
		s.BackoffTotal += m.HealBackoff
		s.TokenSavedBytes += m.TokenSavedBytes
		s.Moves = append(s.Moves, mh)
	}
	return s
}

// WriteJSON writes the summary for javmm-analyze -heal.
func (s *HealingSummary) WriteJSON(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadHealingSummary is WriteJSON's inverse.
func ReadHealingSummary(path string) (*HealingSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &HealingSummary{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("fleet: healing summary %s: %w", path, err)
	}
	return s, nil
}
