package fleet

import (
	"reflect"
	"testing"
	"time"

	"javmm/internal/migration"
	"javmm/internal/workload"
)

func profiles(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	out := make([]workload.Profile, len(names))
	for i, n := range names {
		p, err := workload.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// fleetOpts is the canonical 4-VM contended run the acceptance criterion
// names: four VMs on one shared gigabit backbone, staggered starts.
func fleetOpts(t *testing.T, mode migration.Mode) Options {
	return Options{
		Mode:     mode,
		Profiles: profiles(t, "compress", "crypto", "derby", "xml"),
		Seed:     7,
		Warmup:   10 * time.Second,
		Stagger:  500 * time.Millisecond,
	}
}

// Acceptance: a 4-VM run over one shared link is deterministic — the same
// options produce identical per-VM Reports and an identical merged fabric
// report, run to run, under -race.
func TestFleetDeterministic(t *testing.T) {
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		t.Run(mode.String(), func(t *testing.T) {
			r1, err := Run(fleetOpts(t, mode))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(fleetOpts(t, mode))
			if err != nil {
				t.Fatal(err)
			}
			for i := range r1.VMs {
				a, b := r1.VMs[i], r2.VMs[i]
				if a.Err != nil || b.Err != nil {
					t.Fatalf("VM %s errored: %v / %v", a.Name, a.Err, b.Err)
				}
				if a.VerifyErr != nil {
					t.Fatalf("VM %s failed verification: %v", a.Name, a.VerifyErr)
				}
				if !reflect.DeepEqual(a.Report, b.Report) {
					t.Fatalf("VM %s reports diverge between runs:\n%+v\n%+v", a.Name, a.Report, b.Report)
				}
				if a.StartAt != b.StartAt || a.EndAt != b.EndAt {
					t.Fatalf("VM %s engine window diverges: [%v,%v] vs [%v,%v]",
						a.Name, a.StartAt, a.EndAt, b.StartAt, b.EndAt)
				}
			}
			if !reflect.DeepEqual(r1.Fabric, r2.Fabric) {
				t.Fatalf("fabric reports diverge:\n%+v\n%+v", r1.Fabric, r2.Fabric)
			}
			if r1.MakeSpan != r2.MakeSpan {
				t.Fatalf("makespan diverges: %v vs %v", r1.MakeSpan, r2.MakeSpan)
			}
		})
	}
}

// Contention sanity: the same VM migrating alongside three peers on one
// backbone takes longer than migrating alone on it, and the backbone's byte
// accounting covers every engine's bulk traffic.
func TestFleetContentionSlowsMigration(t *testing.T) {
	solo, err := Run(Options{
		Mode:     migration.ModeVanilla,
		Profiles: profiles(t, "compress"),
		Seed:     7,
		Warmup:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := Run(fleetOpts(t, migration.ModeVanilla))
	if err != nil {
		t.Fatal(err)
	}
	soloTime := solo.VMs[0].Report.TotalTime
	crowdTime := crowd.VMs[0].Report.TotalTime
	if crowdTime <= soloTime {
		t.Fatalf("contended migration (%v) not slower than solo (%v)", crowdTime, soloTime)
	}

	var backbone uint64
	for _, lu := range crowd.Fabric.Links {
		if lu.Name == "backbone" {
			backbone = lu.BytesSent
		}
	}
	var engines uint64
	for _, vm := range crowd.VMs {
		engines += vm.Report.TotalBytes()
	}
	// The backbone carries the engines' bulk traffic; control round-trips and
	// (post-copy) demand fetches ride the port's latency model instead, so
	// the trunk total can only be <= the engines' wire total — and for
	// pre-copy modes, equal.
	if backbone != engines {
		t.Fatalf("backbone carried %d bytes, engines report %d on the wire", backbone, engines)
	}
	if crowd.MakeSpan <= 0 {
		t.Fatalf("makespan %v, want > 0", crowd.MakeSpan)
	}
}

// Every mode drives to completion under the scheduler, including the
// post-copy and hybrid engines' switchover/prefetch paths.
func TestFleetAllModes(t *testing.T) {
	for _, mode := range []migration.Mode{
		migration.ModeVanilla, migration.ModeAppAssisted,
		migration.ModePostCopy, migration.ModeHybrid,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Run(Options{
				Mode:     mode,
				Profiles: profiles(t, "compress", "crypto"),
				Seed:     3,
				Warmup:   10 * time.Second,
				Stagger:  250 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, vm := range res.VMs {
				if vm.Err != nil {
					t.Fatalf("VM %s: %v", vm.Name, vm.Err)
				}
				if vm.VerifyErr != nil {
					t.Fatalf("VM %s verification: %v", vm.Name, vm.VerifyErr)
				}
				if vm.Report == nil || vm.Report.TotalTime <= 0 {
					t.Fatalf("VM %s produced no usable report", vm.Name)
				}
			}
		})
	}
}

// Options validation: an empty fleet is an error, not a silent no-op.
func TestFleetEmpty(t *testing.T) {
	if _, err := Run(Options{Mode: migration.ModeVanilla}); err == nil {
		t.Fatal("empty fleet ran")
	}
}
