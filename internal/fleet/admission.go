package fleet

import (
	"fmt"
	"sort"
	"time"
)

// Admission control bounds how much migration load the orchestrator may
// place on the cluster at once: per shared link (so a rack drain cannot
// collapse the backbone into N-way fair-share crawl) and per destination
// host (so an evacuation cannot funnel every inbound stream into one NIC).

// AdmissionPolicy bounds concurrent migrations.
type AdmissionPolicy struct {
	// MaxPerLink caps concurrent migrations whose route crosses any single
	// shared link (0 = unlimited).
	MaxPerLink int
	// MaxPerHost caps concurrent inbound migrations per destination host
	// (0 = unlimited).
	MaxPerHost int
}

// AdmissionError is the typed error for capacity exhaustion: a plan asked
// for a placement the cluster cannot ever satisfy (as opposed to transient
// contention, which the scheduler waits out).
type AdmissionError struct {
	// VM is the migration that could not be placed.
	VM string
	// Resource names what ran out: "ram" (destination host memory),
	// "destination" (no candidate host at all).
	Resource string
	// Name is the exhausted resource's identity (host name), when known.
	Name string
	// Need/Have quantify the shortfall for sized resources (bytes for ram).
	Need, Have uint64
}

func (e *AdmissionError) Error() string {
	switch e.Resource {
	case "ram":
		return fmt.Sprintf("fleet: admission: VM %s needs %d MiB on host %s, %d MiB free",
			e.VM, e.Need>>20, e.Name, e.Have>>20)
	case "destination":
		return fmt.Sprintf("fleet: admission: no destination host can take VM %s (%d MiB)",
			e.VM, e.Need>>20)
	}
	return fmt.Sprintf("fleet: admission: VM %s: %s %s exhausted", e.VM, e.Resource, e.Name)
}

// admissionState tracks in-flight migrations against the policy. All
// mutation happens under the cooperative scheduler (one process at a time),
// so plain maps are race-free.
type admissionState struct {
	policy  AdmissionPolicy
	perLink map[string]int
	perHost map[string]int
}

func newAdmissionState(p AdmissionPolicy) *admissionState {
	return &admissionState{
		policy:  p,
		perLink: map[string]int{},
		perHost: map[string]int{},
	}
}

// admissible reports whether a migration over route into dest fits the
// policy right now.
func (a *admissionState) admissible(route []string, dest string) bool {
	if a.policy.MaxPerLink > 0 {
		for _, l := range route {
			if a.perLink[l] >= a.policy.MaxPerLink {
				return false
			}
		}
	}
	if a.policy.MaxPerHost > 0 && a.perHost[dest] >= a.policy.MaxPerHost {
		return false
	}
	return true
}

func (a *admissionState) admit(route []string, dest string) {
	for _, l := range route {
		a.perLink[l]++
	}
	a.perHost[dest]++
}

func (a *admissionState) release(route []string, dest string) {
	for _, l := range route {
		a.perLink[l]--
	}
	a.perHost[dest]--
}

// admissionSpan is one interval a move occupied capacity for: a single
// launch under the legacy orchestrator, or one healing attempt (each
// relaunch is admitted separately and must be held to the same policy).
type admissionSpan struct {
	route      []string
	to         string
	start, end time.Duration
}

// admissionSpans explodes a move into its capacity intervals. Moves with an
// attempt record contribute one span per attempt (relocated attempts carry
// their own route/destination); legacy moves contribute their single
// StartAt..EndAt window; never-launched moves contribute nothing.
func admissionSpans(m *MoveResult) []admissionSpan {
	if len(m.Attempts) > 0 {
		out := make([]admissionSpan, 0, len(m.Attempts))
		for _, a := range m.Attempts {
			out = append(out, admissionSpan{a.Route, a.To, a.StartAt, a.EndAt})
		}
		return out
	}
	if m.Report == nil && m.Err == nil {
		return nil // never launched
	}
	if m.StartAt == 0 && m.EndAt == 0 {
		return nil // abandoned before its first attempt
	}
	return []admissionSpan{{m.Route, m.To, m.StartAt, m.EndAt}}
}

// VerifyAdmission post-checks a completed plan against the policy from the
// per-move records: at no instant may more migrations than MaxPerLink have
// been in flight across one link, nor more than MaxPerHost inbound on one
// destination. Under the healing layer every attempt is checked as its own
// interval, so the caps provably held across retries and relocations too.
// The chaos runner uses it as the "admission never over-commits" invariant.
func VerifyAdmission(moves []MoveResult, policy AdmissionPolicy) error {
	type edge struct {
		at    time.Duration
		delta int
	}
	check := func(kind, name string, edges []edge, limit int) error {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			// Ends sort before starts at the same instant: back-to-back
			// handoff is not an over-commit.
			return edges[i].delta < edges[j].delta
		})
		cur, peak := 0, 0
		for _, e := range edges {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		if peak > limit {
			return fmt.Errorf("fleet: admission over-commit: %s %s carried %d concurrent migrations (limit %d)",
				kind, name, peak, limit)
		}
		return nil
	}
	if policy.MaxPerLink > 0 {
		perLink := map[string][]edge{}
		for i := range moves {
			for _, sp := range admissionSpans(&moves[i]) {
				for _, l := range sp.route {
					perLink[l] = append(perLink[l],
						edge{sp.start, 1}, edge{sp.end, -1})
				}
			}
		}
		names := make([]string, 0, len(perLink))
		for n := range perLink {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := check("link", n, perLink[n], policy.MaxPerLink); err != nil {
				return err
			}
		}
	}
	if policy.MaxPerHost > 0 {
		perHost := map[string][]edge{}
		for i := range moves {
			for _, sp := range admissionSpans(&moves[i]) {
				perHost[sp.to] = append(perHost[sp.to],
					edge{sp.start, 1}, edge{sp.end, -1})
			}
		}
		names := make([]string, 0, len(perHost))
		for n := range perHost {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := check("host", n, perHost[n], policy.MaxPerHost); err != nil {
				return err
			}
		}
	}
	return nil
}
