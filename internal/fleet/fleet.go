// Package fleet runs N live migrations concurrently on one deterministic
// virtual clock, contending for a shared network fabric.
//
// Each VM gets two cooperative scheduler processes: a guest process that
// keeps the workload executing (and dirtying memory) in small quanta, and an
// engine process that sleeps until its start time and then drives a full
// migration. Bulk transfers go through fabric ports, so concurrent engines
// split the backbone bandwidth under progressive fair-share arbitration;
// everything else — pre-copy rounds, the suspension handshake, stop-and-copy
// — interleaves through the scheduler at timer granularity. Same options,
// same result, bit for bit, regardless of goroutine scheduling (DESIGN.md
// §15).
package fleet

import (
	"fmt"
	"time"

	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/fleetobs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/sla"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// Options parameterizes a fleet run.
type Options struct {
	// Mode is the migration algorithm every engine runs.
	Mode migration.Mode
	// Profiles boots one VM per entry (VM i runs Profiles[i]).
	Profiles []workload.Profile
	// Seed is the base workload seed; VM i boots with Seed + i.
	Seed int64
	// MemBytes is the per-VM memory (default 2 GiB).
	MemBytes uint64

	// Bandwidth is the shared backbone's payload bandwidth in bytes/sec
	// (default gigabit-effective) and Latency its one-way latency (default
	// 100 µs). Every migration crosses this one link.
	Bandwidth uint64
	Latency   time.Duration
	// NICBandwidth, when non-zero, additionally caps each source host's NIC,
	// so a single engine cannot saturate the backbone even alone.
	NICBandwidth uint64

	// Warmup is how long the guests run before the first engine starts
	// (default 60 s); engine i starts at Warmup + i*Stagger.
	Warmup  time.Duration
	Stagger time.Duration
	// GuestQuantum is the guest processes' pause-check granularity
	// (default 1 ms, the workload driver's own tick).
	GuestQuantum time.Duration

	// Attach, when non-nil, runs once per booted VM (in boot order, before
	// any virtual time passes) to attach extra applications — e.g. a cache
	// app beside the JVM. The returned executor (typically a Multiplex of
	// the VM's driver and the app) replaces the bare workload driver in
	// that VM's guest process; returning nil keeps the driver.
	Attach func(i int, vm *workload.VM) (migration.GuestExecutor, error)

	// Engine overrides engine defaults; Mode above wins over Engine.Mode.
	Engine migration.Config
	// CollectMetrics attaches one obs registry — Run builds it on the
	// fleet's shared clock and returns it as Result.Metrics — to every VM,
	// engine, destination and the fabric. One registry serves the whole
	// fleet, so per-VM counters aggregate; the per-link fabric gauges
	// (fabric.<name>.*) stay distinguishable.
	CollectMetrics bool
	// Collect attaches the full fleet observability plane (fleetobs): each
	// VM gets its own tracer, metrics registry and provenance ledger wired
	// through every instrumented layer (engine, guest OS, JVM, workload
	// driver, destination, NIC port), the fabric records its flow spans and
	// per-link gauges into the collector's fleet lane and fleet registry,
	// and every engine's progress stream is captured per VM. The collector
	// comes back as Result.Obs. Collect supersedes CollectMetrics: the
	// legacy single shared registry (Result.Metrics) stays nil.
	Collect bool
	// OnProgress, when non-nil, receives every VM's live progress points —
	// phase transitions, iteration progress, pages/bytes remaining, ETA —
	// as the engines emit them. Delivery is in virtual-time order (the
	// cooperative scheduler serializes all emission), so a renderer can
	// drive a live fleet status line from it.
	OnProgress func(vm string, p migration.Progress)
	// SLA, when non-nil, prices each completed migration against the model
	// — downtime × penalty plus the throughput-dip integral over the VM's
	// sampled workload curve — and aggregates the fleet cost as Result.SLA.
	// Each per-VM cost is reconciled tick-for-tick against the run's
	// attribution before it is accepted.
	SLA *sla.Model
	// SkipVerify disables the per-VM post-migration consistency check.
	SkipVerify bool
}

func (o *Options) fillDefaults() error {
	if len(o.Profiles) == 0 {
		return fmt.Errorf("fleet: no profiles (nothing to migrate)")
	}
	if o.MemBytes == 0 {
		o.MemBytes = 2 << 30
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = netsim.GigabitEffective
	}
	if o.Latency == 0 {
		o.Latency = 100 * time.Microsecond
	}
	if o.Warmup == 0 {
		o.Warmup = 60 * time.Second
	}
	if o.GuestQuantum == 0 {
		o.GuestQuantum = time.Millisecond
	}
	return nil
}

// VMResult is one VM's migration outcome, mirroring the single-run Result.
type VMResult struct {
	// Name is the VM's domain name ("<profile>-<i>").
	Name   string
	Report *migration.Report
	// WorkloadDowntime is stop-and-copy plus resumption, plus — for an
	// effective app-assisted run — the enforced GC and final bitmap update.
	WorkloadDowntime time.Duration
	// EnforcedGC is the pre-suspension collection's duration (zero unless
	// app-assisted).
	EnforcedGC time.Duration
	// VerifyErr is the destination-consistency outcome, checked at the
	// engine's completion instant, before any other process resumes
	// dirtying this VM's memory.
	VerifyErr error
	// Err is the migration error, if the engine aborted.
	Err error
	// StartAt/EndAt are the engine's bounds on the shared clock.
	StartAt, EndAt time.Duration

	// Samples is the VM's per-second throughput curve over the whole run
	// (warmup through the last engine's completion) — the workload data the
	// SLA dip integral prices.
	Samples []workload.Sample
	// SLACost prices this VM's migration (set when Options.SLA and the
	// migration completed).
	SLACost *sla.Cost

	dest *migration.Destination
}

// Destination returns the destination image the VM migrated into.
func (r *VMResult) Destination() *migration.Destination { return r.dest }

// Result is a whole fleet run: per-VM outcomes in boot order plus the merged
// fabric accounting.
type Result struct {
	VMs    []VMResult
	Fabric netsim.FabricReport
	// MakeSpan is the virtual time from the first engine's start to the
	// last engine's completion — the fleet-level total migration time.
	MakeSpan time.Duration
	// Metrics is the fleet-wide registry (nil unless
	// Options.CollectMetrics).
	Metrics *obs.Metrics
	// Obs is the fleet observability collector: per-VM trace lanes, labeled
	// metrics, captured progress streams, the fabric lane (nil unless
	// Options.Collect).
	Obs *fleetobs.Collector
	// SLA is the fleet cost aggregate (nil unless Options.SLA).
	SLA *sla.FleetCost
}

// Run boots the fleet onto one clock, wires every engine through one shared
// fabric link, and drives all of it to completion under the cooperative
// scheduler. Engine failures land in the per-VM Err field; Run itself only
// errors on assembly problems.
func Run(opts Options) (*Result, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	n := len(opts.Profiles)
	clock := simclock.New()
	sched := simclock.NewScheduler(clock)
	var metrics *obs.Metrics
	if opts.CollectMetrics && !opts.Collect {
		metrics = obs.NewMetrics(clock)
	}
	var coll *fleetobs.Collector
	if opts.Collect {
		coll = fleetobs.New(clock)
		coll.OnProgress = opts.OnProgress
	}

	fabric := netsim.NewFabric(clock)
	if coll != nil {
		fabric.SetTracer(coll.FabricTracer())
		fabric.SetMetrics(coll.FleetMetrics())
	} else {
		fabric.SetMetrics(metrics)
	}
	hosts := make([]string, 0, n+1)
	for i := range opts.Profiles {
		h := fmt.Sprintf("src%d", i)
		fabric.AddHost(h, opts.NICBandwidth)
		hosts = append(hosts, h)
	}
	fabric.AddHost("dst", 0)
	fabric.AddLink("backbone", opts.Bandwidth, opts.Latency, append(hosts, "dst")...)

	vms := make([]*workload.VM, n)
	srcs := make([]*migration.Source, n)
	execs := make([]migration.GuestExecutor, n)
	for i, prof := range opts.Profiles {
		name := fmt.Sprintf("%s-%d", prof.Name, i)
		var plane *fleetobs.VMPlane
		if coll != nil {
			plane = coll.AttachVM(name)
		}
		vm, err := workload.Boot(workload.BootConfig{
			Name:     name,
			MemBytes: opts.MemBytes,
			Profile:  prof,
			Assisted: opts.Mode == migration.ModeAppAssisted,
			Seed:     opts.Seed + int64(i),
			Clock:    clock,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: booting VM %d: %w", i, err)
		}
		if plane != nil {
			vm.AttachObs(plane.Tracer, plane.Metrics)
		} else if metrics != nil {
			vm.AttachObs(nil, metrics)
		}
		execs[i] = vm.Driver
		if opts.Attach != nil {
			e, err := opts.Attach(i, vm)
			if err != nil {
				return nil, fmt.Errorf("fleet: attaching to VM %d: %w", i, err)
			}
			if e != nil {
				execs[i] = e
			}
		}
		port, err := fabric.Dial(hosts[i], "dst")
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		dest := migration.NewDestination(vm.Dom.NumPages())

		cfg := opts.Engine
		cfg.Mode = opts.Mode
		if plane != nil {
			port.SetMetrics(plane.Metrics)
			dest.SetMetrics(plane.Metrics)
			cfg.Tracer = plane.Tracer
			cfg.Metrics = plane.Metrics
			cfg.Ledger = plane.Ledger
		} else {
			port.SetMetrics(metrics)
			dest.SetMetrics(metrics)
			if metrics != nil {
				cfg.Metrics = metrics
			}
			if opts.OnProgress != nil {
				vmName := name
				cb := opts.OnProgress
				cfg.OnProgress = func(p migration.Progress) { cb(vmName, p) }
			}
		}
		guest := vm.Guest
		srcs[i] = &migration.Source{
			Dom:   vm.Dom,
			LKM:   guest.LKM,
			Link:  port,
			Clock: clock,
			// Exec stays nil: the engine's advance() falls through to
			// Clock.Advance, a cooperative sleep, and the VM's own guest
			// process executes the workload meanwhile.
			Dest: dest,
			Cfg:  cfg,
			GuestFree: func(p mem.PFN) bool {
				return !guest.Frames.Allocated(p)
			},
			HintFor: guest.LKM.HintFor,
		}
		vms[i] = vm
	}

	res := &Result{VMs: make([]VMResult, n)}
	for i := range res.VMs {
		res.VMs[i].Name = vms[i].Dom.Name()
		res.VMs[i].dest = srcs[i].Dest
	}

	// remaining gates the guest processes: they keep the workloads running —
	// and contending for the fabric's attention via dirtied memory — until
	// the LAST engine completes, so late migrations see realistic load.
	// Cooperative scheduling (one process active at a time, channel-handoff
	// ordered) makes the shared counter race-free.
	remaining := n
	for i := range vms {
		vm := vms[i]
		exec := execs[i]
		q := opts.GuestQuantum
		sched.Go(vm.Dom.Name()+"/guest", func() {
			for remaining > 0 {
				if vm.Dom.Paused() {
					// Stop-and-copy (or post-copy pause): the guest is
					// frozen; idle this quantum without executing.
					clock.Advance(q)
				} else {
					exec.Run(q)
				}
			}
		})
	}
	for i := range vms {
		i := i
		vm := vms[i]
		src := srcs[i]
		startAt := opts.Warmup + time.Duration(i)*opts.Stagger
		sched.Go(vm.Dom.Name()+"/engine", func() {
			defer func() { remaining-- }()
			if d := startAt - clock.Now(); d > 0 {
				clock.Advance(d)
			}
			r := &res.VMs[i]
			r.StartAt = clock.Now()
			report, err := src.Migrate()
			r.EndAt = clock.Now()
			r.Report = report
			if err != nil {
				r.Err = err
				return
			}
			if werr := vm.Driver.Err; werr != nil {
				r.Err = fmt.Errorf("fleet: workload failed during migration: %w", werr)
				return
			}
			hist := vm.Heap.GCHistory()
			for j := len(hist) - 1; j >= 0; j-- {
				if st := hist[j]; st.Enforced {
					r.EnforcedGC = st.Duration
					break
				}
			}
			r.WorkloadDowntime = report.VMDowntime
			if report.EffectiveMode() == migration.ModeAppAssisted {
				r.WorkloadDowntime += r.EnforcedGC + report.FinalUpdate
			}
			// Verify NOW, while this process still holds the baton: no other
			// process has run since the engine finished, so the source store
			// is exactly what stop-and-copy shipped.
			if !opts.SkipVerify && report.PostCopy == nil {
				r.VerifyErr = migration.VerifyMigration(
					vm.Dom.Store(), src.Dest.Store, report.FinalTransfer,
					func(p mem.PFN) bool { return vm.Guest.Frames.Allocated(p) })
			}
		})
	}
	sched.Run()

	var first, last time.Duration
	for i := range res.VMs {
		r := &res.VMs[i]
		if i == 0 || r.StartAt < first {
			first = r.StartAt
		}
		if r.EndAt > last {
			last = r.EndAt
		}
	}
	res.MakeSpan = last - first
	res.Fabric = fabric.Report()
	// Standing invariant, checked after every fleet run: fair-share
	// settling may not lose or invent bytes on any link.
	if err := res.Fabric.VerifyConservation(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	res.Metrics = metrics
	res.Obs = coll

	for i := range res.VMs {
		res.VMs[i].Samples = vms[i].Driver.Samples()
	}
	if opts.SLA != nil {
		costs := make([]sla.Cost, 0, n)
		for i := range res.VMs {
			r := &res.VMs[i]
			if r.Err != nil || r.Report == nil {
				continue
			}
			var led *ledger.Ledger
			if coll != nil {
				led = coll.VMs()[i].Ledger
			}
			a := attrib.Build(r.Report, r.EnforcedGC, led)
			if err := a.Reconcile(r.Report); err != nil {
				r.Err = fmt.Errorf("fleet: attribution for %s does not reconcile: %w", r.Name, err)
				continue
			}
			c := sla.Build(r.Name, *opts.SLA, a, r.Samples)
			if err := c.Reconcile(*opts.SLA, a, r.Samples); err != nil {
				r.Err = fmt.Errorf("fleet: SLA cost for %s does not reconcile: %w", r.Name, err)
				continue
			}
			r.SLACost = &c
			costs = append(costs, c)
		}
		f := sla.Aggregate(costs)
		res.SLA = &f
	}
	return res, nil
}
