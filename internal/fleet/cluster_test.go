package fleet

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

const testClusterText = `
# two racks, one backbone
host h1 rack a ram 8G nic 1G
host h2 rack a ram 8G
host h3 rack b ram 16G
host h4 rack b ram 16G
link backbone bw 117M lat 100us hosts h1,h2,h3,h4
vm web on h1 workload compress mem 1G cycle 60s/40s/15s/0.1
vm db on h1 workload derby mem 2G
vm batch on h2 workload mpeg mem 1G
`

func TestParseCluster(t *testing.T) {
	c, err := ParseCluster(testClusterText)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hosts) != 4 || len(c.Links) != 1 || len(c.VMs) != 3 {
		t.Fatalf("parsed %d hosts, %d links, %d VMs", len(c.Hosts), len(c.Links), len(c.VMs))
	}
	h1, ok := c.Host("h1")
	if !ok || h1.Rack != "a" || h1.RAMBytes != 8<<30 || h1.NICBandwidth != 1<<30 {
		t.Fatalf("h1 = %+v", h1)
	}
	if got := c.RackHosts("b"); !reflect.DeepEqual(got, []string{"h3", "h4"}) {
		t.Fatalf("rack b hosts = %v", got)
	}
	l := c.Links[0]
	if l.Bandwidth != 117<<20 || l.Latency != 100*time.Microsecond || len(l.Hosts) != 4 {
		t.Fatalf("link = %+v", l)
	}
	web, ok := c.VM("web")
	if !ok || web.Host != "h1" || web.MemBytes != 1<<30 || web.Workload != "compress" {
		t.Fatalf("web = %+v", web)
	}
	if !web.Cycle.Enabled() || web.Cycle.Period != 60*time.Second ||
		web.Cycle.QuietStart != 40*time.Second || web.Cycle.QuietLen != 15*time.Second ||
		web.Cycle.QuietFactor != 0.1 {
		t.Fatalf("web cycle = %+v", web.Cycle)
	}
	prof, err := web.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Name != "compress" || !prof.Cycle.Enabled() {
		t.Fatalf("resolved profile %q cycle %+v", prof.Name, prof.Cycle)
	}
}

func TestParseClusterDefaultsAndErrors(t *testing.T) {
	// No links declared: a default backbone is synthesized over all hosts.
	c, err := ParseCluster("host a; host b; vm v on a")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Links) != 1 || c.Links[0].Name != "backbone" || len(c.Links[0].Hosts) != 2 {
		t.Fatalf("synthesized links = %+v", c.Links)
	}
	if v, _ := c.VM("v"); v.memBytes() != 2<<30 || v.workloadName() != "derby" {
		t.Fatalf("vm defaults = %+v", v)
	}

	for _, bad := range []string{
		"frob a",              // unknown statement
		"host a; host a",      // duplicate host
		"host a; vm v on zzz", // unknown placement
		"host a; link l bw 1G hosts a,zzz; vm v on a", // unknown link host
		"host a; link l bw 1G hosts a",                // single-ended link
		"host a ram 1G; vm v on a mem 2G",             // overcommit
		"host a; vm v on a workload nosuch",           // unknown workload
		"host a; vm v on a cycle 60s/70s/10s/0.1",     // quiet start past period
		"host a; vm v on a cycle 60s/0s/10s/1.5",      // factor out of range
		"host a ram",                                  // dangling attribute
	} {
		if _, err := ParseCluster(bad); err == nil {
			t.Errorf("ParseCluster(%q) succeeded, want error", bad)
		}
	}
}

func TestParsePlanAndCompileEvacuate(t *testing.T) {
	c, err := ParseCluster(testClusterText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseMigrationPlan("evacuate host h1")
	if err != nil {
		t.Fatal(err)
	}
	moves, err := p.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2 (web, db)", len(moves))
	}
	// Best fit: h3 and h4 both have 16G free; ties break by declaration
	// order, and capacity accounting interleaves the two placements.
	if moves[0].VM.Name != "web" || moves[0].From != "h1" || moves[0].To != "h3" {
		t.Fatalf("move 0 = %+v", moves[0])
	}
	if moves[1].VM.Name != "db" || moves[1].To != "h4" {
		t.Fatalf("move 1 = %+v (want db onto the now-freer h4)", moves[1])
	}
	// Deterministic: compiling again yields the identical move list.
	again, err := p.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moves, again) {
		t.Fatal("recompiled plan diverges")
	}
}

func TestCompileDrainExcludesRack(t *testing.T) {
	c, err := ParseCluster(testClusterText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseMigrationPlan("drain rack a")
	if err != nil {
		t.Fatal(err)
	}
	moves, err := p.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 3 {
		t.Fatalf("%d moves, want all 3 VMs off rack a", len(moves))
	}
	for _, m := range moves {
		if m.To != "h3" && m.To != "h4" {
			t.Fatalf("drain placed %s on %s, inside the drained rack", m.VM.Name, m.To)
		}
	}
}

func TestCompileMigrateAndRebalance(t *testing.T) {
	c, err := ParseCluster(testClusterText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseMigrationPlan("migrate vm batch to h3")
	if err != nil {
		t.Fatal(err)
	}
	moves, err := p.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].VM.Name != "batch" || moves[0].To != "h3" {
		t.Fatalf("moves = %+v", moves)
	}

	// Rebalance: h1 carries 3G of 8G (37%); target 0.25 forces a move of
	// its smallest VM to the least-utilized host.
	p, err = ParseMigrationPlan("rebalance util 0.25")
	if err != nil {
		t.Fatal(err)
	}
	moves, err = p.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance produced no moves for an over-target host")
	}
	if moves[0].VM.Name != "web" || moves[0].From != "h1" {
		t.Fatalf("rebalance moved %+v, want web off h1 (smallest first)", moves[0])
	}
}

func TestCompileCapacityExhaustionTyped(t *testing.T) {
	// Explicit destination without room: typed AdmissionError.
	c, err := ParseCluster("host a ram 8G; host b ram 1G; vm big on a mem 4G")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseMigrationPlan("migrate vm big to b")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Compile(c)
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("error %v (%T), want *AdmissionError", err, err)
	}
	if adm.Resource != "ram" || adm.Name != "b" || adm.Need != 4<<30 {
		t.Fatalf("AdmissionError = %+v", adm)
	}
	if !strings.Contains(adm.Error(), "4096 MiB") {
		t.Fatalf("error text %q lacks the shortfall", adm.Error())
	}

	// No destination at all (every other host full): typed too.
	c, err = ParseCluster("host a ram 8G; host b ram 1G; vm big on a mem 4G; vm filler on b mem 1G")
	if err != nil {
		t.Fatal(err)
	}
	p, err = ParseMigrationPlan("evacuate host a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = p.Compile(c); !errors.As(err, &adm) {
		t.Fatalf("error %v, want *AdmissionError", err)
	}
	if adm.Resource != "destination" {
		t.Fatalf("AdmissionError resource = %q, want destination", adm.Resource)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"evacuate h1",          // missing "host"
		"drain host h1",        // wrong keyword
		"rebalance util 1.5",   // out of range
		"migrate web to h3",    // missing "vm"
		"migrate vm web off",   // bad tail
		"defragment the array", // unknown directive
	} {
		if _, err := ParseMigrationPlan(bad); err == nil {
			t.Errorf("ParseMigrationPlan(%q) succeeded, want error", bad)
		}
	}
	p, err := ParseMigrationPlan("  # comments and blanks only\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Directives) != 0 {
		t.Fatalf("empty plan parsed %d directives", len(p.Directives))
	}
}
