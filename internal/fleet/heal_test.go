package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"javmm/internal/faults"
	"javmm/internal/migration"
)

// Healing-layer tests: host crashes relocate, persistent crashes exhaust
// cleanly, deadlines bound the healing budget, the breaker gates
// re-selection without spinning, and the whole healing schedule replays
// byte-identically at the same seed in every mode.

const healClusterSpec = "host src ram 64G; host d1 ram 64G; host d2 ram 64G; " +
	"vm fv0 on src workload mpeg mem 512M"

func healOrchOptions(t *testing.T, spec string, plan faults.Plan) OrchestratorOptions {
	t.Helper()
	c, err := ParseCluster(spec)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	batch, err := ParseMigrationPlan("evacuate host src")
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return OrchestratorOptions{
		Cluster:   c,
		Plan:      batch,
		Mode:      migration.ModeVanilla,
		Seed:      1,
		Ordering:  OrderAdmission,
		Admission: AdmissionPolicy{MaxPerLink: 1, MaxPerHost: 1},
		Warmup:    2 * time.Second,
		FaultPlan: plan,
		Retry:     RetryPolicy{Enabled: true},
	}
}

// A destination host that dies before the first page lands forces a
// permanent failure; the healing layer must re-select the surviving host,
// degrade the stale token to a clean first copy there (destination
// binding), and finish digest-verified.
func TestHealRelocatesAroundHostCrash(t *testing.T) {
	opts := healOrchOptions(t, healClusterSpec, faults.Plan{
		{Site: faults.SiteHostCrash, For: 10 * time.Minute, Host: "d1"},
	})
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatalf("orchestrate: %v", err)
	}
	m := &res.Moves[0]
	if m.Err != nil || m.VerifyErr != nil {
		t.Fatalf("move failed: err=%v verify=%v", m.Err, m.VerifyErr)
	}
	if m.Outcome != OutcomeRelocated || m.To != "d2" || m.Relocations != 1 {
		t.Fatalf("outcome=%s to=%s relocations=%d, want relocated to d2", m.Outcome, m.To, m.Relocations)
	}
	if len(m.Attempts) != 2 || m.Attempts[0].To != "d1" || m.Attempts[1].To != "d2" {
		t.Fatalf("attempts = %+v, want d1 then d2", m.Attempts)
	}
	if m.Attempts[0].Transient {
		t.Fatalf("first attempt should be classified permanent: %+v", m.Attempts[0])
	}
	// The token minted at d1 must not be honoured at d2: destination
	// binding degrades it to a full first copy.
	if m.Report.Resume == nil || !m.Report.Resume.FullFirstCopy ||
		!strings.Contains(m.Report.Resume.Reason, "different destination") {
		t.Fatalf("resume plan = %+v, want full first copy, token bound to a different destination", m.Report.Resume)
	}
	if err := VerifyAdmission(res.Moves, opts.Admission); err != nil {
		t.Fatalf("admission across attempts: %v", err)
	}
}

// With relocation disabled, a persistent host crash exhausts the attempt
// budget: every retry re-arms the crash window, so the move fails cleanly
// with its source resumed.
func TestHealRetrySameExhaustsOnPersistentCrash(t *testing.T) {
	opts := healOrchOptions(t, healClusterSpec, faults.Plan{
		{Site: faults.SiteHostCrash, For: 10 * time.Minute, Host: "d1"},
	})
	opts.Retry.DisableRelocation = true
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatalf("orchestrate: %v", err)
	}
	m := &res.Moves[0]
	if m.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %s, want failed", m.Outcome)
	}
	if len(m.Attempts) != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts default 3", len(m.Attempts))
	}
	for _, a := range m.Attempts {
		if a.To != "d1" {
			t.Fatalf("retry-same attempt went to %s", a.To)
		}
	}
	if m.Err == nil || !strings.Contains(m.Err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v, want attempts exhausted", m.Err)
	}
	if !m.SourceRunning() {
		t.Fatal("failed move left its source paused")
	}
	if m.HealBackoff <= 0 {
		t.Fatalf("no healing backoff recorded across %d attempts", len(m.Attempts))
	}
}

// A plan deadline bounds healing: with the attempt budget raised far above
// what the deadline allows, the exponential backoff walks past the plan
// deadline first and the move fails with a deadline error. (Deadlines apply
// at scheduling points — a fail-fast host crash gives the healer one every
// backoff interval; a stalling fault like a long partition is only observed
// once the in-flight attempt returns.)
func TestHealPlanDeadlineBoundsRetries(t *testing.T) {
	opts := healOrchOptions(t, healClusterSpec, faults.Plan{
		{Site: faults.SiteHostCrash, For: 10 * time.Minute, Host: "d1"},
	})
	opts.Retry.DisableRelocation = true
	opts.Retry.MaxAttempts = 10
	opts.Retry.PlanDeadline = 30 * time.Second
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatalf("orchestrate: %v", err)
	}
	m := &res.Moves[0]
	if m.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %s, want failed", m.Outcome)
	}
	if m.Err == nil || !strings.Contains(m.Err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline error", m.Err)
	}
	if n := len(m.Attempts); n == 0 || n >= 10 {
		t.Fatalf("attempts = %d, want the deadline (not the budget) to stop the move", n)
	}
	if !m.SourceRunning() {
		t.Fatal("failed move left its source paused")
	}
}

// When the crashed host was the only admissible destination, the plan
// degrades immediately — no spin, no wait — and completes partially.
func TestHealNoDestinationDegradesWithoutSpin(t *testing.T) {
	spec := "host src ram 64G; host d1 ram 64G; vm fv0 on src workload mpeg mem 256M"
	opts := healOrchOptions(t, spec, faults.Plan{
		{Site: faults.SiteHostCrash, For: 10 * time.Minute, Host: "d1"},
	})
	res, err := Orchestrate(opts)
	if err != nil {
		t.Fatalf("orchestrate: %v", err)
	}
	m := &res.Moves[0]
	if m.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %s, want failed", m.Outcome)
	}
	if m.Err == nil || !strings.Contains(m.Err.Error(), "cannot relocate") {
		t.Fatalf("err = %v, want a relocation failure", m.Err)
	}
	if len(m.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1 (no destination to retry against)", len(m.Attempts))
	}
	if m.EndAt > 30*time.Second {
		t.Fatalf("degradation took %v of virtual time — the healer spun or waited", m.EndAt)
	}
	if !m.SourceRunning() {
		t.Fatal("failed move left its source paused")
	}
}

// pickDestination surfaces a typed HostOpenError naming the
// earliest-closing breaker when every otherwise-fitting host is cooling
// down, and selects that host again once the cooldown passes.
func TestPickDestinationBreakerOpen(t *testing.T) {
	c, err := ParseCluster(healClusterSpec)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	pol := RetryPolicy{Enabled: true}
	pol.fillDefaults()
	h := newHealState(pol, 1, 2*time.Second)
	h.breaker.openUntil["d2"] = 90 * time.Second
	opts := &OrchestratorOptions{Cluster: c}
	moves := []Move{{VM: c.VMs[0], From: "src", To: "d1"}}
	res := &PlanResult{Moves: []MoveResult{{From: "src", To: "d1"}}}

	_, err = h.pickDestination(opts, res, moves, 0, "d1", 10*time.Second)
	ho, ok := err.(*HostOpenError)
	if !ok {
		t.Fatalf("err = %v (%T), want *HostOpenError", err, err)
	}
	if ho.Host != "d2" || ho.Until != 90*time.Second {
		t.Fatalf("HostOpenError = %+v, want d2 until 90s", ho)
	}
	// After the cooldown the same host is admissible again.
	dest, err := h.pickDestination(opts, res, moves, 0, "d1", 2*time.Minute)
	if err != nil || dest != "d2" {
		t.Fatalf("post-cooldown pick = %q, %v, want d2", dest, err)
	}
}

// Repeated failures against one host trip the breaker exactly at the
// configured threshold, and the open state expires after the cooldown.
func TestHostBreakerThresholdAndCooldown(t *testing.T) {
	b := newHostBreaker(BreakerPolicy{Threshold: 2, Window: time.Minute, Cooldown: 30 * time.Second})
	if b.fail("d1", 10*time.Second) {
		t.Fatal("breaker opened below threshold")
	}
	if !b.fail("d1", 20*time.Second) {
		t.Fatal("breaker did not open at threshold")
	}
	if until, open := b.open("d1", 25*time.Second); !open || until != 50*time.Second {
		t.Fatalf("open(25s) = %v,%v, want open until 50s", until, open)
	}
	if _, open := b.open("d1", 50*time.Second); open {
		t.Fatal("breaker still open after cooldown")
	}
	// Failures outside the window never accumulate to the threshold.
	b2 := newHostBreaker(BreakerPolicy{Threshold: 2, Window: 10 * time.Second, Cooldown: 30 * time.Second})
	b2.fail("d2", 0)
	if b2.fail("d2", 20*time.Second) {
		t.Fatal("stale failure counted toward the threshold")
	}
}

// healFingerprint reduces a plan result to its healing schedule.
func healFingerprint(res *PlanResult) string {
	var b strings.Builder
	for i := range res.Moves {
		m := &res.Moves[i]
		fmt.Fprintf(&b, "%s to=%s outcome=%s start=%d end=%d reloc=%d backoff=%d saved=%d err=%v\n",
			m.Name, m.To, m.Outcome, m.StartAt, m.EndAt, m.Relocations,
			m.HealBackoff, m.TokenSavedBytes, m.Err)
		for _, a := range m.Attempts {
			fmt.Fprintf(&b, "  to=%s start=%d end=%d backoff=%d reuse=%v err=%s\n",
				a.To, a.StartAt, a.EndAt, a.Backoff, a.TokenReused, a.Err)
		}
	}
	return b.String()
}

// Every mode's healing run — host crash on one destination, flaky windows
// on the other — replays byte-identically at the same seed (the chaos
// replay invariant, pinned here as a direct matrix so -race runs cover all
// four modes even with a tiny chaos budget).
func TestHealReplayMatrix(t *testing.T) {
	plan := faults.Plan{
		{Site: faults.SiteHostCrash, For: 3 * time.Minute, Host: "d1"},
		{Site: faults.SiteHostFlaky, At: time.Second, For: 2 * time.Second, Host: "d2"},
	}
	for _, mode := range []migration.Mode{
		migration.ModeVanilla, migration.ModeAppAssisted,
		migration.ModePostCopy, migration.ModeHybrid,
	} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			run := func() string {
				opts := healOrchOptions(t, healClusterSpec, plan)
				opts.Mode = mode
				res, err := Orchestrate(opts)
				if err != nil {
					t.Fatalf("orchestrate: %v", err)
				}
				return healFingerprint(res)
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("same-seed healing runs diverged:\n--- run1\n%s--- run2\n%s", a, b)
			}
		})
	}
}
