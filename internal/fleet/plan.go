package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// Batch plans: the declarative form operators hand the orchestrator.
// A plan is a list of directives; Compile resolves it against a cluster
// into concrete moves (VM, from-host, to-host) with deterministic best-fit
// destination choice, so the same plan on the same cluster always yields
// the same move list.

// DirectiveKind enumerates plan statement types.
type DirectiveKind string

// Plan directive kinds.
const (
	// DirectiveEvacuate moves every VM off one host.
	DirectiveEvacuate DirectiveKind = "evacuate"
	// DirectiveDrain evacuates every host in a rack; destinations are
	// chosen outside the rack.
	DirectiveDrain DirectiveKind = "drain"
	// DirectiveRebalance moves VMs off hosts whose RAM utilization exceeds
	// the target until every accounted host fits under it (or no move can
	// improve things).
	DirectiveRebalance DirectiveKind = "rebalance"
	// DirectiveMigrate moves one named VM to an explicit (or best-fit)
	// destination.
	DirectiveMigrate DirectiveKind = "migrate"
)

// Directive is one plan statement.
type Directive struct {
	Kind DirectiveKind
	// Target is the host (evacuate), rack (drain) or VM (migrate) name.
	Target string
	// Dest is the explicit destination host for migrate (empty = best fit).
	Dest string
	// TargetUtil is the rebalance utilization ceiling (default 0.6).
	TargetUtil float64
}

// Plan is a parsed batch plan.
type Plan struct {
	Directives []Directive
}

// Move is one concrete migration the compiled plan asks for.
type Move struct {
	VM   VMSpec
	From string
	To   string
}

// ParseMigrationPlan parses the plan grammar: statements separated by
// semicolons or newlines (# comments to end of line).
//
//	evacuate host H
//	drain rack R
//	rebalance [util 0.6]
//	migrate vm V [to H]
func ParseMigrationPlan(text string) (*Plan, error) {
	p := &Plan{}
	for _, stmt := range splitStatements(text) {
		toks := strings.Fields(stmt)
		d := Directive{}
		switch toks[0] {
		case "evacuate":
			if len(toks) != 3 || toks[1] != "host" {
				return nil, fmt.Errorf("fleet: %q: want \"evacuate host <name>\"", stmt)
			}
			d.Kind, d.Target = DirectiveEvacuate, toks[2]
		case "drain":
			if len(toks) != 3 || toks[1] != "rack" {
				return nil, fmt.Errorf("fleet: %q: want \"drain rack <name>\"", stmt)
			}
			d.Kind, d.Target = DirectiveDrain, toks[2]
		case "rebalance":
			d.Kind, d.TargetUtil = DirectiveRebalance, 0.6
			if len(toks) == 3 && toks[1] == "util" {
				u, err := strconv.ParseFloat(toks[2], 64)
				if err != nil || u <= 0 || u > 1 {
					return nil, fmt.Errorf("fleet: %q: bad utilization %q", stmt, toks[2])
				}
				d.TargetUtil = u
			} else if len(toks) != 1 {
				return nil, fmt.Errorf("fleet: %q: want \"rebalance [util <frac>]\"", stmt)
			}
		case "migrate":
			if len(toks) != 3 && !(len(toks) == 5 && toks[3] == "to") {
				return nil, fmt.Errorf("fleet: %q: want \"migrate vm <name> [to <host>]\"", stmt)
			}
			if toks[1] != "vm" {
				return nil, fmt.Errorf("fleet: %q: want \"migrate vm <name> [to <host>]\"", stmt)
			}
			d.Kind, d.Target = DirectiveMigrate, toks[2]
			if len(toks) == 5 {
				d.Dest = toks[4]
			}
		default:
			return nil, fmt.Errorf("fleet: %q: unknown directive %q (want evacuate/drain/rebalance/migrate)", stmt, toks[0])
		}
		p.Directives = append(p.Directives, d)
	}
	if len(p.Directives) == 0 {
		return p, nil // an empty plan is valid: nothing to do
	}
	return p, nil
}

// placement tracks VM→host assignments and per-host free RAM while the
// compiler assigns destinations.
type placement struct {
	c     *Cluster
	onto  map[string]string // vm → assigned destination
	used  map[string]uint64 // host → resident+incoming RAM
	moved map[string]bool   // vm already scheduled to move
}

func newPlacement(c *Cluster) *placement {
	p := &placement{
		c:     c,
		onto:  map[string]string{},
		used:  map[string]uint64{},
		moved: map[string]bool{},
	}
	for _, h := range c.Hosts {
		p.used[h.Name] = c.usedRAM(h.Name)
	}
	return p
}

// freeRAM is the host's remaining capacity (MaxUint-ish for uncounted
// hosts).
func (p *placement) freeRAM(host string) uint64 {
	h, _ := p.c.Host(host)
	if h.RAMBytes == 0 {
		return ^uint64(0) >> 1
	}
	if p.used[host] >= h.RAMBytes {
		return 0
	}
	return h.RAMBytes - p.used[host]
}

// assign books the VM onto dest, tracking the post-plan placement: the
// destination gains the VM's memory and the source frees it. Transient
// double-residency during the copy is the runtime admission policy's
// concern, not the planner's.
func (p *placement) assign(vm VMSpec, dest string) {
	p.onto[vm.Name] = dest
	p.used[dest] += vm.memBytes()
	if p.used[vm.Host] >= vm.memBytes() {
		p.used[vm.Host] -= vm.memBytes()
	}
	p.moved[vm.Name] = true
}

// bestFit picks the destination with the most free RAM among hosts not in
// exclude, ties broken by declaration order. Returns a typed
// AdmissionError when no host fits.
func (p *placement) bestFit(vm VMSpec, exclude map[string]bool) (string, error) {
	best, bestFree := "", uint64(0)
	found := false
	for _, h := range p.c.Hosts {
		if h.Name == vm.Host || exclude[h.Name] {
			continue
		}
		free := p.freeRAM(h.Name)
		if free < vm.memBytes() {
			continue
		}
		if !found || free > bestFree {
			best, bestFree, found = h.Name, free, true
		}
	}
	if !found {
		return "", &AdmissionError{VM: vm.Name, Resource: "destination", Need: vm.memBytes()}
	}
	return best, nil
}

// Compile resolves the plan against the cluster into concrete moves, in
// deterministic directive-then-declaration order. Destination choice is
// best-fit by free RAM with capacity accounting across the whole batch;
// impossible placements surface as typed *AdmissionError values.
func (p *Plan) Compile(c *Cluster) ([]Move, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	pl := newPlacement(c)
	var moves []Move

	addMove := func(vm VMSpec, dest string) {
		pl.assign(vm, dest)
		moves = append(moves, Move{VM: vm, From: vm.Host, To: dest})
	}
	evacuate := func(host string, exclude map[string]bool) error {
		for _, vm := range c.vmsOn(host) {
			if pl.moved[vm.Name] {
				continue
			}
			dest, err := pl.bestFit(vm, exclude)
			if err != nil {
				return err
			}
			addMove(vm, dest)
		}
		return nil
	}

	for _, d := range p.Directives {
		switch d.Kind {
		case DirectiveEvacuate:
			if _, ok := c.Host(d.Target); !ok {
				return nil, fmt.Errorf("fleet: evacuate: unknown host %q", d.Target)
			}
			if err := evacuate(d.Target, map[string]bool{d.Target: true}); err != nil {
				return nil, err
			}
		case DirectiveDrain:
			hosts := c.RackHosts(d.Target)
			if len(hosts) == 0 {
				return nil, fmt.Errorf("fleet: drain: no hosts in rack %q", d.Target)
			}
			exclude := map[string]bool{}
			for _, h := range hosts {
				exclude[h] = true
			}
			for _, h := range hosts {
				if err := evacuate(h, exclude); err != nil {
					return nil, err
				}
			}
		case DirectiveRebalance:
			if err := rebalance(c, pl, d.TargetUtil, addMove); err != nil {
				return nil, err
			}
		case DirectiveMigrate:
			vm, ok := c.VM(d.Target)
			if !ok {
				return nil, fmt.Errorf("fleet: migrate: unknown VM %q", d.Target)
			}
			if pl.moved[vm.Name] {
				return nil, fmt.Errorf("fleet: migrate: VM %q already moved by an earlier directive", vm.Name)
			}
			dest := d.Dest
			if dest == "" {
				var err error
				if dest, err = pl.bestFit(vm, map[string]bool{vm.Host: true}); err != nil {
					return nil, err
				}
			} else {
				if _, ok := c.Host(dest); !ok {
					return nil, fmt.Errorf("fleet: migrate: unknown destination host %q", dest)
				}
				if dest == vm.Host {
					return nil, fmt.Errorf("fleet: migrate: VM %q is already on %q", vm.Name, dest)
				}
				if free := pl.freeRAM(dest); free < vm.memBytes() {
					return nil, &AdmissionError{
						VM: vm.Name, Resource: "ram", Name: dest,
						Need: vm.memBytes(), Have: free,
					}
				}
			}
			addMove(vm, dest)
		}
	}
	return moves, nil
}

// rebalance greedily moves VMs (smallest first) off hosts whose RAM
// utilization exceeds the target onto the least-utilized host with room,
// until every accounted host fits or no move helps. Deterministic: hosts
// and VMs are visited in declaration order.
func rebalance(c *Cluster, pl *placement, target float64, addMove func(VMSpec, string)) error {
	util := func(host string) float64 {
		h, _ := c.Host(host)
		if h.RAMBytes == 0 {
			return 0
		}
		return float64(pl.used[host]) / float64(h.RAMBytes)
	}
	for pass := 0; pass < len(c.VMs)+1; pass++ {
		moved := false
		for _, h := range c.Hosts {
			if h.RAMBytes == 0 || util(h.Name) <= target {
				continue
			}
			// Smallest still-resident VM first: least disruption per move.
			var pick *VMSpec
			for i := range c.VMs {
				vm := &c.VMs[i]
				if vm.Host != h.Name || pl.moved[vm.Name] {
					continue
				}
				if pick == nil || vm.memBytes() < pick.memBytes() {
					pick = vm
				}
			}
			if pick == nil {
				continue
			}
			// Least-utilized destination with room that stays under target.
			best, bestUtil := "", 0.0
			for _, d := range c.Hosts {
				if d.Name == h.Name {
					continue
				}
				if pl.freeRAM(d.Name) < pick.memBytes() {
					continue
				}
				du := util(d.Name)
				if d.RAMBytes > 0 &&
					float64(pl.used[d.Name]+pick.memBytes())/float64(d.RAMBytes) > target {
					continue
				}
				if best == "" || du < bestUtil {
					best, bestUtil = d.Name, du
				}
			}
			if best == "" {
				continue // no destination improves this host; leave it
			}
			addMove(*pick, best)
			moved = true
		}
		if !moved {
			return nil
		}
	}
	return nil
}
