package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"javmm/internal/migration"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/fleetobs"
	"javmm/internal/obs/sla"
)

// obsOpts is a 2-VM contended run with the full observability plane on.
func obsOpts(t *testing.T, mode migration.Mode) Options {
	return Options{
		Mode:     mode,
		Profiles: profiles(t, "compress", "derby"),
		Seed:     7,
		Warmup:   10 * time.Second,
		Stagger:  500 * time.Millisecond,
		Collect:  true,
	}
}

func mustRunObs(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.VMs {
		r := &res.VMs[i]
		if r.Err != nil {
			t.Fatalf("VM %s errored: %v", r.Name, r.Err)
		}
		if r.VerifyErr != nil {
			t.Fatalf("VM %s failed verification: %v", r.Name, r.VerifyErr)
		}
	}
	if res.Obs == nil {
		t.Fatal("Collect run returned no collector")
	}
	return res
}

// Satellite 3's golden: a 2-VM MigrateMany with the fleet plane on emits one
// merged Chrome trace, byte-identical run to run (the test binary runs under
// -race in CI, so this is the determinism-under-race acceptance too).
func TestFleetMergedTraceByteIdentical(t *testing.T) {
	var traces [2][]byte
	var proms [2][]byte
	for run := range traces {
		res := mustRunObs(t, obsOpts(t, migration.ModeAppAssisted))
		var buf bytes.Buffer
		if err := res.Obs.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		traces[run] = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
		if err := res.Obs.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		proms[run] = append([]byte(nil), buf.Bytes()...)
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatal("merged Chrome traces differ between same-seed runs")
	}
	if !bytes.Equal(proms[0], proms[1]) {
		t.Fatal("labeled Prometheus pages differ between same-seed runs")
	}
}

// The merged trace carries one process row per VM plus the fabric row, and
// the fabric row holds per-flow transfer spans.
func TestFleetTraceLanes(t *testing.T) {
	opts := Options{
		Mode:     migration.ModeAppAssisted,
		Profiles: profiles(t, "compress", "crypto", "derby", "xml"),
		Seed:     7,
		Warmup:   10 * time.Second,
		Stagger:  500 * time.Millisecond,
		Collect:  true,
	}
	res := mustRunObs(t, opts)

	lanes := res.Obs.Lanes()
	if len(lanes) != 5 {
		t.Fatalf("lanes = %d, want 4 VMs + fabric", len(lanes))
	}
	for i, r := range res.VMs {
		if lanes[i].Name != r.Name {
			t.Fatalf("lane %d = %q, want %q", i, lanes[i].Name, r.Name)
		}
		if len(lanes[i].Events) == 0 {
			t.Fatalf("VM lane %q recorded no events", lanes[i].Name)
		}
	}
	fabric := lanes[len(lanes)-1]
	if fabric.Name != fleetobs.FabricLane {
		t.Fatalf("last lane = %q, want %q", fabric.Name, fleetobs.FabricLane)
	}
	spans := 0
	for _, e := range fabric.Events {
		if strings.HasPrefix(e.Track, "fabric/") {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("fabric lane recorded no flow spans")
	}

	var buf bytes.Buffer
	if err := res.Obs.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, r := range res.VMs {
		if !strings.Contains(out, `{"name":"process_name","ph":"M","ts":0,`) ||
			!strings.Contains(out, `"args":{"name":"`+r.Name+`"}`) {
			t.Fatalf("trace missing process row for %s", r.Name)
		}
	}
	if !strings.Contains(out, `"args":{"name":"fabric"}`) {
		t.Fatal("trace missing fabric process row")
	}

	// The flat merged stream is time-ordered with lane-prefixed tracks.
	merged := res.Obs.MergedEvents()
	if len(merged) == 0 {
		t.Fatal("no merged events")
	}
	for i, e := range merged {
		if i > 0 && e.At < merged[i-1].At {
			t.Fatalf("merged stream out of order at %d: %v after %v", i, e.At, merged[i-1].At)
		}
		if !strings.Contains(e.Track, "/") {
			t.Fatalf("merged event track %q lacks lane prefix", e.Track)
		}
	}
}

// Per-link utilization reconciles with the fabric's byte conservation: the
// backbone's settled-bytes integral matches the bytes the engines shipped
// (within the per-transfer rounding bound), the collector's fleet registry
// carries the same numbers, and utilization is a sane fraction.
func TestFleetFabricUtilizationReconciles(t *testing.T) {
	res := mustRunObs(t, obsOpts(t, migration.ModeAppAssisted))

	link, ok := res.Fabric.Link("backbone")
	if !ok {
		t.Fatal("no backbone link in fabric report")
	}
	if link.BytesSent == 0 {
		t.Fatal("backbone carried no bytes")
	}
	if err := link.ConservationError(); err > float64(link.Transfers) {
		t.Fatalf("byte conservation broken: |settled-sent| = %v over %d transfers", err, link.Transfers)
	}
	if link.Utilization <= 0 || link.Utilization > 1 {
		t.Fatalf("utilization = %v, want (0,1]", link.Utilization)
	}
	if len(res.Fabric.Flows) != len(res.VMs) {
		t.Fatalf("flows = %d, want one per VM", len(res.Fabric.Flows))
	}

	snap := res.Obs.FleetMetrics().Snapshot()
	sent, ok := snap.Counter("fabric.backbone.bytes_sent")
	if !ok {
		t.Fatal("fleet registry missing fabric.backbone.bytes_sent")
	}
	if uint64(sent) != link.BytesSent {
		t.Fatalf("fleet counter says %d bytes, fabric report says %d", sent, link.BytesSent)
	}
	// Each VM's port counts its own net.* traffic in the VM's registry;
	// summed across planes they must cover every flow's bytes exactly.
	var netSent int64
	for i, plane := range res.Obs.VMs() {
		v, ok := plane.Metrics.Snapshot().Counter("net.bytes_sent")
		if !ok {
			t.Fatalf("VM %s registry missing net.bytes_sent", res.VMs[i].Name)
		}
		netSent += v
	}
	var flowSum uint64
	for _, f := range res.Fabric.Flows {
		flowSum += f.BytesSent
	}
	if uint64(netSent) != flowSum {
		t.Fatalf("net.bytes_sent = %d, per-flow sum = %d", netSent, flowSum)
	}
}

// The live progress stream: every VM's plane captures a complete phased
// stream, the same points fan out through OnProgress tagged with the right
// VM names, and delivery is in virtual-time order.
func TestFleetProgressStream(t *testing.T) {
	type tagged struct {
		vm string
		p  migration.Progress
	}
	var live []tagged
	opts := obsOpts(t, migration.ModeAppAssisted)
	opts.OnProgress = func(vm string, p migration.Progress) {
		live = append(live, tagged{vm, p})
	}
	res := mustRunObs(t, opts)

	byVM := make(map[string]int)
	var lastAt time.Duration
	for i, e := range live {
		byVM[e.vm]++
		if e.p.At < lastAt {
			t.Fatalf("live point %d out of order: %v after %v", i, e.p.At, lastAt)
		}
		lastAt = e.p.At
	}
	for i, plane := range res.Obs.VMs() {
		name := res.VMs[i].Name
		stream := plane.Progress()
		if len(stream) < 3 {
			t.Fatalf("VM %s captured only %d progress points", name, len(stream))
		}
		if byVM[name] != len(stream) {
			t.Fatalf("VM %s: %d live points, %d captured", name, byVM[name], len(stream))
		}
		if stream[0].Phase != migration.ProgressStart {
			t.Fatalf("VM %s stream starts with %q", name, stream[0].Phase)
		}
		last := stream[len(stream)-1]
		if last.Phase != migration.ProgressDone {
			t.Fatalf("VM %s stream ends with %q", name, last.Phase)
		}
		rep := res.VMs[i].Report
		if last.BytesSent != rep.TotalBytes() {
			t.Fatalf("VM %s final progress says %d bytes, report says %d",
				name, last.BytesSent, rep.TotalBytes())
		}
		for _, p := range stream {
			if p.VM != name {
				t.Fatalf("VM %s stream carries point for %q", name, p.VM)
			}
			if p.ETA < 0 || p.ETA > migration.MaxETA {
				t.Fatalf("VM %s ETA out of range: %v", name, p.ETA)
			}
		}
	}

	// Without the collector, the direct OnProgress path delivers the same
	// per-VM streams.
	var direct []tagged
	opts2 := obsOpts(t, migration.ModeAppAssisted)
	opts2.Collect = false
	opts2.OnProgress = func(vm string, p migration.Progress) {
		direct = append(direct, tagged{vm, p})
	}
	if _, err := Run(opts2); err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(live) {
		t.Fatalf("direct path delivered %d points, collector path %d", len(direct), len(live))
	}
	for i := range direct {
		if direct[i].vm != live[i].vm || direct[i].p != live[i].p {
			t.Fatalf("streams diverge at %d:\n%v %+v\n%v %+v",
				i, direct[i].vm, direct[i].p, live[i].vm, live[i].p)
		}
	}
}

// SLA pricing rides the run: every VM gets a cost that reconciles against a
// freshly built attribution tick-for-tick, and the fleet aggregate
// re-derives from its rows.
func TestFleetSLAReconciles(t *testing.T) {
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		t.Run(mode.String(), func(t *testing.T) {
			m := sla.Default()
			opts := obsOpts(t, mode)
			opts.SLA = &m
			res := mustRunObs(t, opts)
			if res.SLA == nil {
				t.Fatal("no fleet SLA aggregate")
			}
			if len(res.SLA.PerVM) != len(res.VMs) {
				t.Fatalf("priced %d VMs, fleet has %d", len(res.SLA.PerVM), len(res.VMs))
			}
			if err := res.SLA.Reconcile(); err != nil {
				t.Fatal(err)
			}
			for i := range res.VMs {
				r := &res.VMs[i]
				if r.SLACost == nil {
					t.Fatalf("VM %s has no SLA cost", r.Name)
				}
				if len(r.Samples) == 0 {
					t.Fatalf("VM %s has no workload samples", r.Name)
				}
				led := res.Obs.VMs()[i].Ledger
				a := attrib.Build(r.Report, r.EnforcedGC, led)
				if err := a.Reconcile(r.Report); err != nil {
					t.Fatal(err)
				}
				if r.SLACost.WorkloadDowntime != a.WorkloadDowntime {
					t.Fatalf("VM %s cost prices %v downtime, attribution says %v",
						r.Name, r.SLACost.WorkloadDowntime, a.WorkloadDowntime)
				}
				if err := r.SLACost.Reconcile(m, a, r.Samples); err != nil {
					t.Fatal(err)
				}
				if r.SLACost.Total <= 0 {
					t.Fatalf("VM %s priced at %v", r.Name, r.SLACost.Total)
				}
			}
			if res.SLA.WorstVM == "" {
				t.Fatal("no worst VM named")
			}
		})
	}
}

// Collect supersedes CollectMetrics: the legacy shared registry stays nil,
// the per-VM registries carry the engine counters instead.
func TestCollectSupersedesCollectMetrics(t *testing.T) {
	opts := obsOpts(t, migration.ModeVanilla)
	opts.CollectMetrics = true
	res := mustRunObs(t, opts)
	if res.Metrics != nil {
		t.Fatal("Collect run still built the legacy shared registry")
	}
	for i, plane := range res.Obs.VMs() {
		snap := plane.Metrics.Snapshot()
		if _, ok := snap.Counter("migration.pages_sent"); !ok {
			t.Fatalf("VM %s registry missing migration.pages_sent", res.VMs[i].Name)
		}
	}
}
