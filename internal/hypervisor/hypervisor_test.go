package hypervisor

import (
	"testing"
	"time"

	"javmm/internal/mem"
	"javmm/internal/simclock"
)

func newTestDomain(pages uint64) *Domain {
	return NewDomain("test", simclock.New(), mem.NewVersionStore(pages), 4)
}

func TestDomainBasics(t *testing.T) {
	d := newTestDomain(16)
	if d.Name() != "test" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.NumPages() != 16 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	if d.MemoryBytes() != 16*mem.PageSize {
		t.Fatalf("MemoryBytes = %d", d.MemoryBytes())
	}
	if d.VCPUs() != 4 {
		t.Fatalf("VCPUs = %d", d.VCPUs())
	}
}

func TestDomainVCPUFloor(t *testing.T) {
	d := NewDomain("x", simclock.New(), mem.NewVersionStore(1), 0)
	if d.VCPUs() != 1 {
		t.Fatalf("VCPUs = %d, want floor of 1", d.VCPUs())
	}
}

func TestWritePageBumpsVersion(t *testing.T) {
	d := newTestDomain(4)
	d.WritePage(2)
	d.WritePage(2)
	if v := d.Store().Version(2); v != 2 {
		t.Fatalf("Version = %d, want 2", v)
	}
	if d.Writes() != 2 {
		t.Fatalf("Writes = %d, want 2", d.Writes())
	}
}

func TestLogDirtyTracksOnlyWhenEnabled(t *testing.T) {
	d := newTestDomain(8)
	d.WritePage(1)
	if d.DirtyCount() != 0 {
		t.Fatal("write dirtied page before log-dirty enabled")
	}
	if err := d.EnableLogDirty(); err != nil {
		t.Fatal(err)
	}
	d.WritePage(1)
	d.WritePage(3)
	if d.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d, want 2", d.DirtyCount())
	}
	d.DisableLogDirty()
	if d.DirtyCount() != 0 {
		t.Fatal("DisableLogDirty did not clear bitmap")
	}
	d.WritePage(5)
	if d.DirtyCount() != 0 {
		t.Fatal("write tracked after DisableLogDirty")
	}
}

func TestEnableLogDirtyTwiceErrors(t *testing.T) {
	d := newTestDomain(4)
	if err := d.EnableLogDirty(); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableLogDirty(); err == nil {
		t.Fatal("second EnableLogDirty succeeded")
	}
}

func TestPeekAndClearStartsNewRound(t *testing.T) {
	d := newTestDomain(8)
	d.EnableLogDirty()
	d.WritePage(1)
	d.WritePage(2)
	snap := mem.NewBitmap(8)
	if n := d.PeekAndClear(snap); n != 2 {
		t.Fatalf("PeekAndClear = %d, want 2", n)
	}
	if !snap.Test(1) || !snap.Test(2) {
		t.Fatal("snapshot missing dirty pages")
	}
	if d.DirtyCount() != 0 {
		t.Fatal("dirty bitmap not cleared")
	}
	// New round: re-dirtying sets bits again.
	d.WritePage(1)
	if !d.DirtyNow(1) || d.DirtyNow(2) {
		t.Fatal("new round tracking wrong")
	}
}

func TestPeekDoesNotClear(t *testing.T) {
	d := newTestDomain(8)
	d.EnableLogDirty()
	d.WritePage(3)
	snap := mem.NewBitmap(8)
	if n := d.Peek(snap); n != 1 {
		t.Fatalf("Peek = %d, want 1", n)
	}
	if d.DirtyCount() != 1 {
		t.Fatal("Peek cleared the bitmap")
	}
}

func TestPauseAccounting(t *testing.T) {
	clock := simclock.New()
	d := NewDomain("x", clock, mem.NewVersionStore(4), 1)
	clock.Advance(time.Second)
	d.Pause()
	d.Pause() // idempotent
	clock.Advance(2 * time.Second)
	if got := d.TotalPaused(); got != 2*time.Second {
		t.Fatalf("TotalPaused mid-pause = %v, want 2s", got)
	}
	d.Unpause()
	d.Unpause() // idempotent
	clock.Advance(time.Second)
	if got := d.TotalPaused(); got != 2*time.Second {
		t.Fatalf("TotalPaused = %v, want 2s", got)
	}
	if d.PauseCount() != 1 {
		t.Fatalf("PauseCount = %d, want 1", d.PauseCount())
	}
}

func TestWriteWhilePausedPanics(t *testing.T) {
	d := newTestDomain(4)
	d.Pause()
	defer func() {
		if recover() == nil {
			t.Fatal("write while paused did not panic")
		}
	}()
	d.WritePage(0)
}

func TestWriteTrapHookFiresOncePerPagePerRound(t *testing.T) {
	d := newTestDomain(8)
	d.EnableLogDirty()
	var traps int
	d.OnWriteTrap(func() { traps++ })
	d.WritePage(1)
	d.WritePage(1) // already dirty: no trap
	d.WritePage(2)
	if traps != 2 {
		t.Fatalf("traps = %d, want 2", traps)
	}
	snap := mem.NewBitmap(8)
	d.PeekAndClear(snap)
	d.WritePage(1) // new round: traps again
	if traps != 3 {
		t.Fatalf("traps = %d, want 3", traps)
	}
}

func TestPageFaultHookFiresBeforeWrite(t *testing.T) {
	d := newTestDomain(8)
	var faults []mem.PFN
	d.SetPageFaultHook(func(p mem.PFN) {
		faults = append(faults, p)
		// The hook observes the page BEFORE the write applies.
		if d.Store().Version(p) != 0 {
			t.Fatal("fault hook ran after the write")
		}
	})
	d.WritePage(3)
	if len(faults) != 1 || faults[0] != 3 {
		t.Fatalf("faults = %v", faults)
	}
	d.SetPageFaultHook(nil)
	d.WritePage(4)
	if len(faults) != 1 {
		t.Fatal("cleared hook still fired")
	}
}

func TestEventChannelDelivery(t *testing.T) {
	ec := NewEventChannel()
	var got []any
	ec.Guest().Bind(func(msg any) { got = append(got, msg) })
	ec.Daemon().Notify("begin")
	ec.Daemon().Notify("last-iter")
	if len(got) != 2 || got[0] != "begin" || got[1] != "last-iter" {
		t.Fatalf("guest received %v", got)
	}
	if ec.Daemon().Sent() != 2 {
		t.Fatalf("Sent = %d", ec.Daemon().Sent())
	}
}

func TestEventChannelBothDirections(t *testing.T) {
	ec := NewEventChannel()
	var daemonGot, guestGot any
	ec.Daemon().Bind(func(msg any) { daemonGot = msg })
	ec.Guest().Bind(func(msg any) { guestGot = msg })
	ec.Daemon().Notify("to-guest")
	ec.Guest().Notify("to-daemon")
	if guestGot != "to-guest" || daemonGot != "to-daemon" {
		t.Fatalf("delivery wrong: daemon=%v guest=%v", daemonGot, guestGot)
	}
}

func TestEventChannelUnboundDrops(t *testing.T) {
	ec := NewEventChannel()
	ec.Daemon().Notify("lost")
	if ec.Daemon().Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", ec.Daemon().Dropped())
	}
}

func TestEventChannelRebind(t *testing.T) {
	ec := NewEventChannel()
	var a, b int
	ec.Guest().Bind(func(any) { a++ })
	ec.Daemon().Notify(1)
	ec.Guest().Bind(func(any) { b++ })
	ec.Daemon().Notify(2)
	if a != 1 || b != 1 {
		t.Fatalf("rebind routing wrong: a=%d b=%d", a, b)
	}
}
