// Package hypervisor models the slice of Xen that live migration interacts
// with: guest domains with pseudo-physical memory, log-dirty mode (the dirty
// bitmap the pre-copy engine consumes each round), domain pause/unpause, and
// event channels (the notification primitive the migration daemon uses to
// reach the in-guest LKM, paper §3.3.1).
//
// Fidelity notes. Xen's log-dirty interface offers both CLEAN (read the
// bitmap and atomically clear it, starting a new round) and PEEK (read
// without clearing); the migration engine uses both, exactly as
// xc_domain_save does: CLEAN at round boundaries, PEEK mid-round to skip
// pages that have already been re-dirtied (paper §5.2, Figure 9's
// "skipped (already dirtied)" series).
package hypervisor

import (
	"fmt"
	"time"

	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// Domain is a guest VM: its memory pages, dirty-tracking state and scheduling
// state. All guest writes must go through WritePage so that log-dirty mode
// observes them, mirroring how shadow paging / HAP log-dirty intercepts guest
// stores.
type Domain struct {
	name  string
	clock *simclock.Clock
	store mem.PageStore

	logDirty bool
	dirty    *mem.Bitmap

	// Epoch dirty tracking for resumable migration: an independent
	// accumulating bitmap that, unlike the per-round log-dirty bitmap, is
	// never cleared by PeekAndClear. A ResumeToken records the epoch counter
	// at abort time; Resume asks for every page dirtied since that epoch.
	epoch      uint64
	epochDirty *mem.Bitmap

	paused      bool
	pausedAt    time.Duration
	totalPaused time.Duration
	pauseCount  int

	// Counters for experiment reporting.
	writes       uint64 // guest page writes observed
	dirtySetOps  uint64 // writes that newly dirtied a page this round
	vcpus        int
	writeTrapped func()          // optional log-dirty write-fault overhead hook
	pageFault    func(p mem.PFN) // optional pre-write fault hook (post-copy)
}

// NewDomain creates a domain with the given memory, backed by store. The
// store's page count fixes the domain's pseudo-physical size.
func NewDomain(name string, clock *simclock.Clock, store mem.PageStore, vcpus int) *Domain {
	if vcpus <= 0 {
		vcpus = 1
	}
	return &Domain{
		name:  name,
		clock: clock,
		store: store,
		dirty: mem.NewBitmap(store.NumPages()),
		vcpus: vcpus,
	}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// NumPages returns the domain's memory size in pages.
func (d *Domain) NumPages() uint64 { return d.store.NumPages() }

// MemoryBytes returns the domain's memory size in bytes.
func (d *Domain) MemoryBytes() uint64 { return d.store.NumPages() * mem.PageSize }

// VCPUs returns the number of virtual CPUs.
func (d *Domain) VCPUs() int { return d.vcpus }

// Store exposes the domain's page store (the migration engine exports pages
// from it; the destination imports into its own).
func (d *Domain) Store() mem.PageStore { return d.store }

// Clock returns the virtual clock the domain runs against.
func (d *Domain) Clock() *simclock.Clock { return d.clock }

// WritePage records a guest store to page p: the page content changes and,
// if log-dirty mode is on, the dirty bit is set. Writing while paused panics:
// a paused domain's vCPUs cannot execute, so such a write is a simulator bug.
func (d *Domain) WritePage(p mem.PFN) {
	if d.paused {
		panic(fmt.Sprintf("hypervisor: domain %q wrote page %d while paused", d.name, p))
	}
	if d.pageFault != nil {
		d.pageFault(p)
	}
	d.store.Write(p)
	d.writes++
	if d.epochDirty != nil {
		d.epochDirty.Set(p)
	}
	if d.logDirty && !d.dirty.Test(p) {
		d.dirty.Set(p)
		d.dirtySetOps++
		if d.writeTrapped != nil {
			d.writeTrapped()
		}
	}
}

// SetPageFaultHook installs (or clears, with nil) a hook invoked before
// every guest page write. Post-copy migration uses it to intercept accesses
// to pages that have not yet arrived at the destination.
func (d *Domain) SetPageFaultHook(fn func(p mem.PFN)) { d.pageFault = fn }

// OnWriteTrap registers a hook invoked on each first-write-per-round trap.
// The workload driver uses it to model the guest slowdown caused by log-dirty
// write faults during migration (paper §1 reports >20 % degradation for the
// derby VM under vanilla Xen migration).
func (d *Domain) OnWriteTrap(fn func()) { d.writeTrapped = fn }

// Writes returns the total guest page writes observed.
func (d *Domain) Writes() uint64 { return d.writes }

// DirtyEvents returns the total number of page-dirtying events: writes that
// newly dirtied a page within a log-dirty round. The migration engine
// differences this counter across an iteration to report the guest's
// dirtying rate (Figure 1's "dirtying rate" series).
func (d *Domain) DirtyEvents() uint64 { return d.dirtySetOps }

// EnableLogDirty turns on dirty tracking with an empty dirty bitmap.
// Enabling twice is an error: the migration engine owns this mode.
func (d *Domain) EnableLogDirty() error {
	if d.logDirty {
		return fmt.Errorf("hypervisor: log-dirty already enabled on %q", d.name)
	}
	d.logDirty = true
	d.dirty.ClearAll()
	return nil
}

// DisableLogDirty turns off dirty tracking.
func (d *Domain) DisableLogDirty() {
	d.logDirty = false
	d.dirty.ClearAll()
}

// LogDirtyEnabled reports whether dirty tracking is on.
func (d *Domain) LogDirtyEnabled() bool { return d.logDirty }

// PeekAndClear copies the dirty bitmap into dst and clears it, starting a new
// dirty round (Xen's SHADOW_OP_CLEAN). It returns the number of dirty pages.
func (d *Domain) PeekAndClear(dst *mem.Bitmap) uint64 {
	dst.CopyFrom(d.dirty)
	d.dirty.ClearAll()
	return dst.Count()
}

// Peek copies the dirty bitmap into dst without clearing (Xen's
// SHADOW_OP_PEEK). It returns the number of dirty pages.
func (d *Domain) Peek(dst *mem.Bitmap) uint64 {
	dst.CopyFrom(d.dirty)
	return dst.Count()
}

// DirtyNow reports whether page p is dirty in the current round. The
// migration engine uses it mid-round to skip pages that would be resent
// anyway.
func (d *Domain) DirtyNow(p mem.PFN) bool { return d.dirty.Test(p) }

// DirtyCount returns the number of pages dirty in the current round.
func (d *Domain) DirtyCount() uint64 { return d.dirty.Count() }

// BeginDirtyEpoch starts (or restarts) epoch dirty tracking and returns the
// new epoch number. From this call on, every guest write is accumulated in a
// bitmap that survives log-dirty round boundaries; abortRun stamps the
// current epoch into the ResumeToken, and a later Resume retrieves the pages
// written in between via DirtySince.
func (d *Domain) BeginDirtyEpoch() uint64 {
	d.epoch++
	if d.epochDirty == nil {
		d.epochDirty = mem.NewBitmap(d.store.NumPages())
	} else {
		d.epochDirty.ClearAll()
	}
	return d.epoch
}

// DirtyEpoch returns the current epoch counter (0 when epoch tracking has
// never been armed).
func (d *Domain) DirtyEpoch() uint64 { return d.epoch }

// DirtySince returns a copy of the pages dirtied since epoch tracking was
// last armed, provided the caller's epoch matches the live one. A stale or
// never-armed epoch returns (nil, false): the caller cannot trust the bitmap
// and must treat every page as potentially dirty.
func (d *Domain) DirtySince(epoch uint64) (*mem.Bitmap, bool) {
	if d.epochDirty == nil || epoch == 0 || epoch != d.epoch {
		return nil, false
	}
	return d.epochDirty.Clone(), true
}

// Pause suspends the domain's vCPUs. Pausing an already-paused domain is a
// no-op, as in Xen (pause counts are not modelled; migration pauses once).
func (d *Domain) Pause() {
	if d.paused {
		return
	}
	d.paused = true
	d.pausedAt = d.clock.Now()
	d.pauseCount++
}

// Unpause resumes the domain's vCPUs.
func (d *Domain) Unpause() {
	if !d.paused {
		return
	}
	d.paused = false
	d.totalPaused += d.clock.Now() - d.pausedAt
}

// Paused reports whether the domain is paused.
func (d *Domain) Paused() bool { return d.paused }

// TotalPaused returns cumulative virtual time spent paused.
func (d *Domain) TotalPaused() time.Duration {
	t := d.totalPaused
	if d.paused {
		t += d.clock.Now() - d.pausedAt
	}
	return t
}

// PauseCount returns how many times the domain has been paused.
func (d *Domain) PauseCount() int { return d.pauseCount }
