package hypervisor

import "fmt"

// EventChannel is Xen's inter-domain notification primitive, reduced to what
// the migration framework needs: a bidirectional port pair between the
// migration daemon in dom0 and the LKM in the guest (paper §3.3.1: "A special
// event channel port is created when the guest VM is created, through which
// the migration daemon can communicate with the LKM throughout the migration
// process").
//
// Delivery is synchronous and in-order — the simulator is single-threaded —
// but the API is message-passing so neither side holds a direct reference to
// the other, preserving the paper's isolation between dom0 and the guest.
type EventChannel struct {
	daemon *Endpoint
	guest  *Endpoint
}

// Endpoint is one side of an event channel.
type Endpoint struct {
	name    string
	peer    *Endpoint
	handler func(msg any)
	sent    uint64
	dropped uint64
}

// NewEventChannel creates a connected port pair. The daemon side lives in
// dom0's migration tooling; the guest side is bound by the LKM at load time.
func NewEventChannel() *EventChannel {
	d := &Endpoint{name: "daemon"}
	g := &Endpoint{name: "guest"}
	d.peer, g.peer = g, d
	return &EventChannel{daemon: d, guest: g}
}

// Daemon returns the dom0-side endpoint.
func (ec *EventChannel) Daemon() *Endpoint { return ec.daemon }

// Guest returns the guest-side endpoint.
func (ec *EventChannel) Guest() *Endpoint { return ec.guest }

// Bind installs the handler invoked when the peer notifies this endpoint.
// Rebinding replaces the handler.
func (e *Endpoint) Bind(fn func(msg any)) { e.handler = fn }

// Notify delivers msg to the peer endpoint. If the peer has not bound a
// handler the message is dropped and counted; the framework's timeout logic
// (paper §6, security discussion) handles unresponsive parties above this
// layer.
func (e *Endpoint) Notify(msg any) {
	e.sent++
	if e.peer.handler == nil {
		e.dropped++
		return
	}
	e.peer.handler(msg)
}

// Sent returns the number of notifications sent from this endpoint.
func (e *Endpoint) Sent() uint64 { return e.sent }

// Dropped returns the number of notifications that found no bound peer
// handler.
func (e *Endpoint) Dropped() uint64 { return e.dropped }

// String identifies the endpoint for diagnostics.
func (e *Endpoint) String() string { return fmt.Sprintf("evtchn:%s", e.name) }
