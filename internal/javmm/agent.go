// Package javmm implements the JVM Tool Interface agent that makes a HotSpot
// instance participate in application-assisted live migration (paper §4.3).
//
// The agent is loaded as the Java application starts. It creates a netlink
// socket to the LKM and, on the LKM's behalf-of-migration queries:
//
//   - reports the young generation's VA ranges as the skip-over areas,
//   - notifies the LKM when pages leave the young generation (adaptive
//     shrink or region frees at GC end),
//   - enforces a minor GC when asked to prepare for suspension, holds Java
//     threads at the Safepoint once it completes, and reports the post-GC
//     skip-over areas — the young generation minus live survivor data — so
//     the surviving objects are transferred in the last iteration,
//   - releases the threads when the VM has resumed at the destination.
//
// No modification to the Java application is required (paper §4.3.1).
//
// The agent drives collectors through the Heap interface, so both the
// contiguous parallel-scavenge heap (jvm.JVM) and the garbage-first-style
// regional heap (jvm.RegionalHeap, the paper's §6 future work) plug in. For
// region-churning collectors the agent can re-report its skip-over areas
// after every collection (Options.ReReportOnGC): without that, each minor GC
// moves the young generation out from under the transfer bitmap and JAVMM's
// benefit erodes — the effect experiment X11 measures.
package javmm

import (
	"javmm/internal/guestos"
	"javmm/internal/jvm"
	"javmm/internal/mem"
)

// Heap is the collector surface the agent needs (paper §6: "only the
// application runtime, not every individual application, needs to be
// modified to run in our framework").
type Heap interface {
	// YoungAreas returns the young generation's current VA ranges.
	YoungAreas() []mem.VARange
	// ReadyAreas returns the skip-over areas after the enforced GC, with
	// live survivor data excluded; valid while threads are held.
	ReadyAreas() []mem.VARange
	// RequestEnforcedGC schedules a collection that must not be ignored;
	// the enforced-done callback fires when it completes with threads held.
	RequestEnforcedGC()
	// ReleaseFromSafepoint releases threads held after the enforced GC.
	ReleaseFromSafepoint()
	// SetTICallbacks installs the agent's hooks: young-gen shrink events,
	// GC completions, and enforced-GC completion.
	SetTICallbacks(onShrink func(mem.VARange), onGCEnd func(jvm.GCStats), onEnforcedDone func())
}

// Options tunes agent behaviour per collector.
type Options struct {
	// ReReportOnGC re-sends the skip-over areas after every collection
	// while migration is in its live phase. Required for collectors whose
	// young generation churns through different VA ranges (RegionalHeap);
	// unnecessary for contiguous collectors, where expansion handling is
	// deferred to the final update exactly as §3.3.4 prescribes.
	ReReportOnGC bool
	// SendHints labels the old generation and code cache with compression
	// hints at migration begin (the §6 hinted-compression extension).
	SendHints bool
}

// hintProvider is optionally implemented by collectors that can classify
// their memory's compressibility.
type hintProvider interface {
	HintAreas() (strong, fast []mem.VARange)
}

// Agent is one loaded TI agent instance.
type Agent struct {
	heap Heap
	sock *guestos.Socket
	opts Options

	migrating   bool // between the begin query and VM resumption
	readySent   bool // suspension-ready already reported this migration
	prepareSeen bool // prepare-for-suspension received this migration

	// Statistics.
	Queries      int // skip-over queries answered
	ReReports    int // mid-migration area re-reports sent
	GrowReports  int // immediate young-growth reports sent
	HintsSent    int // compression-hint messages sent
	ShrinkSent   int // young-gen shrink notifications sent
	EnforcedGCs  int // enforced collections triggered
	ReadySent    int // suspension-ready notifications sent
	ResumeEvents int // VM-resumed notifications received
}

// Attach loads the agent for the standard contiguous-young-generation
// collector.
func Attach(j *jvm.JVM, g *guestos.Guest, proc *guestos.Process) *Agent {
	return AttachHeap(j, g, proc, Options{})
}

// AttachRegional loads the agent for the garbage-first-style regional
// collector, with per-GC re-reporting enabled.
func AttachRegional(h *jvm.RegionalHeap, g *guestos.Guest, proc *guestos.Process) *Agent {
	return AttachHeap(h, g, proc, Options{ReReportOnGC: true})
}

// growNotifier is optionally implemented by collectors whose young
// generation expands region-by-region between collections.
type growNotifier interface {
	SetYoungGrowCallback(func(mem.VARange))
}

// AttachHeap loads the agent for any collector: subscribes to the LKM's
// multicast group on behalf of proc (the JVM's OS process) and hooks the
// heap's TI callbacks.
func AttachHeap(h Heap, g *guestos.Guest, proc *guestos.Process, opts Options) *Agent {
	a := &Agent{heap: h, opts: opts}
	a.sock = g.LKM.RegisterApp(proc, a.onNetlink)
	h.SetTICallbacks(a.onYoungShrink, a.onGCEnd, a.onEnforcedDone)
	if gn, ok := h.(growNotifier); ok && opts.ReReportOnGC {
		gn.SetYoungGrowCallback(a.onYoungGrow)
	}
	return a
}

// Detach closes the agent's socket; the application stops participating in
// migrations (the LKM will no longer query it).
func (a *Agent) Detach() { a.sock.Close() }

// onNetlink handles the LKM's multicasts.
func (a *Agent) onNetlink(msg any) {
	switch msg.(type) {
	case guestos.MsgQuerySkipAreas:
		a.migrating = true
		a.readySent = false
		a.prepareSeen = false
		a.Queries++
		a.sock.Send(guestos.MsgReportAreas{
			App:   a.sock.App(),
			Areas: a.heap.YoungAreas(),
		})
		if hp, ok := a.heap.(hintProvider); ok && a.opts.SendHints {
			strong, fast := hp.HintAreas()
			if len(strong) > 0 {
				a.sock.Send(guestos.MsgCompressionHints{
					App: a.sock.App(), Areas: strong, Level: guestos.HintStrong,
				})
			}
			if len(fast) > 0 {
				a.sock.Send(guestos.MsgCompressionHints{
					App: a.sock.App(), Areas: fast, Level: guestos.HintFast,
				})
			}
			a.HintsSent++
		}
	case guestos.MsgPrepareSuspension:
		if !a.migrating || a.prepareSeen {
			return
		}
		a.prepareSeen = true
		a.EnforcedGCs++
		// Enforce a minor GC; the workload driver walks the threads to a
		// Safepoint and runs the collection. onEnforcedDone fires when it
		// completes with the threads still held.
		a.heap.RequestEnforcedGC()
	case guestos.MsgVMResumed:
		if !a.migrating {
			return
		}
		a.ResumeEvents++
		a.migrating = false
		// The Java application resumes execution with all live data
		// available in the destination (paper §4.3.2).
		a.heap.ReleaseFromSafepoint()
	}
}

// onYoungShrink relays pages freed from the young generation so the LKM can
// set their transfer bits immediately (paper §3.3.4 / §4.3.2).
func (a *Agent) onYoungShrink(freed mem.VARange) {
	if !a.migrating || a.readySent {
		return
	}
	a.ShrinkSent++
	a.sock.Send(guestos.MsgAreaShrunk{
		App:  a.sock.App(),
		Left: []mem.VARange{freed},
	})
}

// onYoungGrow reports a fresh young region the moment the heap expands into
// it, so its (continuously dirtied) pages become skippable immediately
// rather than at the next GC-end re-report.
func (a *Agent) onYoungGrow(grown mem.VARange) {
	if !a.migrating || a.prepareSeen || a.readySent {
		return
	}
	a.GrowReports++
	a.sock.Send(guestos.MsgReportAreas{
		App:   a.sock.App(),
		Areas: []mem.VARange{grown},
	})
}

// onGCEnd re-reports the (possibly relocated) young generation after a
// collection, for collectors whose regions churn.
func (a *Agent) onGCEnd(jvm.GCStats) {
	if !a.opts.ReReportOnGC || !a.migrating || a.prepareSeen || a.readySent {
		return
	}
	a.ReReports++
	a.sock.Send(guestos.MsgReportAreas{
		App:   a.sock.App(),
		Areas: a.heap.YoungAreas(),
	})
}

// onEnforcedDone runs when the enforced GC finishes, with Java threads still
// paused at the Safepoint. It reports the final skip-over areas so the LKM's
// final bitmap update marks the surviving objects for transfer in the last
// iteration (paper §4.3.2).
func (a *Agent) onEnforcedDone() {
	if !a.migrating || a.readySent {
		return
	}
	a.readySent = true
	a.ReadySent++
	a.sock.Send(guestos.MsgSuspensionReady{
		App:   a.sock.App(),
		Areas: a.heap.ReadyAreas(),
	})
}
