package javmm

import (
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/jvm"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// rig assembles guest + JVM + agent for direct workflow testing (the agent's
// GC execution is driven by hand here; the workload package drives it in
// integration tests).
type rig struct {
	clock *simclock.Clock
	guest *guestos.Guest
	jvm   *jvm.JVM
	agent *Agent
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(65536), 2)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	proc := g.NewProcess("java")
	j, err := jvm.New(jvm.Config{
		Proc:              proc,
		Clock:             clock,
		InitialYoungBytes: 16 << 20,
		MaxYoungBytes:     32 << 20,
		MaxOldBytes:       64 << 20,
		CodeCacheBytes:    4 << 20,
		EdenSurvival:      0.1,
		SurvivalNoise:     1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, guest: g, jvm: j, agent: Attach(j, g, proc)}
}

// runEnforcedGC plays the workload driver's role: observes the pending
// enforce request and executes the collection.
func (r *rig) runEnforcedGC(t *testing.T) {
	t.Helper()
	if !r.jvm.EnforcePending() {
		t.Fatal("no enforced GC pending")
	}
	r.clock.Advance(r.jvm.SafepointDelay())
	d := r.jvm.BeginMinorGC(true)
	r.clock.Advance(d)
	if _, err := r.jvm.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentReportsYoungGenOnQuery(t *testing.T) {
	r := newRig(t)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	if r.agent.Queries != 1 {
		t.Fatalf("Queries = %d", r.agent.Queries)
	}
	// The whole committed young generation must now be skip-marked.
	tb := r.guest.LKM.TransferBitmap()
	youngPages := r.jvm.YoungRange().Pages()
	if skipped := tb.Len() - tb.Count(); skipped != youngPages {
		t.Fatalf("skipped = %d, want young pages %d", skipped, youngPages)
	}
}

func TestAgentFullWorkflow(t *testing.T) {
	r := newRig(t)
	// Put live data into From by running a natural GC over allocated Eden.
	r.jvm.Allocate(8 << 20)
	d := r.jvm.BeginMinorGC(false)
	r.clock.Advance(d)
	if _, err := r.jvm.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}

	var ready bool
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if _, ok := msg.(guestos.EvSuspensionReady); ok {
			ready = true
		}
	})

	daemon.Notify(guestos.EvMigrationBegin{})
	daemon.Notify(guestos.EvEnteringLastIter{})
	if ready {
		t.Fatal("ready before enforced GC ran")
	}
	if r.agent.EnforcedGCs != 1 {
		t.Fatalf("EnforcedGCs = %d", r.agent.EnforcedGCs)
	}
	r.runEnforcedGC(t)
	if !ready {
		t.Fatal("not ready after enforced GC")
	}
	if !r.jvm.HeldAtSafepoint() {
		t.Fatal("threads not held")
	}

	// The From-space live pages must be transfer-marked; the rest of the
	// young generation stays skipped.
	tb := r.guest.LKM.TransferBitmap()
	live := r.jvm.FromLiveRange()
	if live.Empty() {
		t.Fatal("no survivors after enforced GC; test needs live data")
	}
	var liveSkipped, liveSeen int
	procAS := r.guest.Processes()[0].AS
	procAS.Walk(mem.VARange{Start: live.Start.PageBase(), End: (live.End + mem.PageMask).PageBase()},
		func(va mem.VA, p mem.PFN) {
			liveSeen++
			if !tb.Test(p) {
				liveSkipped++
			}
		})
	if liveSeen == 0 {
		t.Fatal("walk found no live pages")
	}
	if liveSkipped != 0 {
		t.Fatalf("%d live From pages still skip-marked", liveSkipped)
	}

	daemon.Notify(guestos.EvVMResumed{})
	if r.jvm.HeldAtSafepoint() {
		t.Fatal("threads still held after resume")
	}
	if r.agent.ResumeEvents != 1 {
		t.Fatalf("ResumeEvents = %d", r.agent.ResumeEvents)
	}
	if r.agent.migrating {
		t.Fatal("agent still in migrating state")
	}
}

func TestAgentShrinkNotificationDuringMigration(t *testing.T) {
	r := newRig(t)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})

	// No migration: shrink events are not relayed.
	r.jvm.OnYoungShrink(mem.VARange{Start: 0x1000, End: 0x2000})
	if r.agent.ShrinkSent != 0 {
		t.Fatal("shrink relayed outside migration")
	}

	// Grow the young generation first: back-to-back GCs under pressure.
	for i := 0; i < 3; i++ {
		r.jvm.Allocate(r.jvm.EdenFree())
		d := r.jvm.BeginMinorGC(false)
		r.clock.Advance(d)
		if _, err := r.jvm.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	if r.jvm.YoungCommitted() <= 16<<20 {
		t.Fatal("young generation did not grow; cannot test shrink")
	}

	daemon.Notify(guestos.EvMigrationBegin{})
	before := r.guest.LKM.ShrinkEvents
	// Trigger a real adaptive shrink: long-idle GC.
	r.clock.Advance(40 * time.Second)
	r.jvm.Allocate(4 << 20)
	d := r.jvm.BeginMinorGC(false)
	r.clock.Advance(d)
	if _, err := r.jvm.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if r.agent.ShrinkSent == 0 {
		t.Fatal("adaptive shrink not relayed during migration")
	}
	if r.guest.LKM.ShrinkEvents == before {
		t.Fatal("LKM did not process the shrink")
	}
}

func TestAgentIgnoresDuplicatePrepare(t *testing.T) {
	r := newRig(t)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	daemon.Notify(guestos.EvEnteringLastIter{})
	if r.agent.EnforcedGCs != 1 {
		t.Fatalf("EnforcedGCs = %d", r.agent.EnforcedGCs)
	}
	// A stray duplicate prepare must not request a second GC.
	r.agent.onNetlink(guestos.MsgPrepareSuspension{})
	if r.agent.EnforcedGCs != 1 {
		t.Fatalf("EnforcedGCs after dup = %d", r.agent.EnforcedGCs)
	}
}

func TestAgentSecondMigration(t *testing.T) {
	r := newRig(t)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	for round := 1; round <= 2; round++ {
		daemon.Notify(guestos.EvMigrationBegin{})
		daemon.Notify(guestos.EvEnteringLastIter{})
		r.runEnforcedGC(t)
		daemon.Notify(guestos.EvVMResumed{})
		if r.jvm.HeldAtSafepoint() {
			t.Fatalf("round %d: still held", round)
		}
	}
	if r.agent.Queries != 2 || r.agent.ReadySent != 2 || r.agent.ResumeEvents != 2 {
		t.Fatalf("agent counters: %+v", r.agent)
	}
}

func TestAgentDetach(t *testing.T) {
	r := newRig(t)
	r.agent.Detach()
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	if r.agent.Queries != 0 {
		t.Fatal("detached agent still receives queries")
	}
	// Nothing skipped: no apps responded.
	tb := r.guest.LKM.TransferBitmap()
	if tb.Count() != tb.Len() {
		t.Fatal("transfer bits cleared with no agent attached")
	}
}

// regionalRig wires a regional (G1-style) heap with the agent.
type regionalRig struct {
	clock *simclock.Clock
	guest *guestos.Guest
	heap  *jvm.RegionalHeap
	agent *Agent
}

func newRegionalRig(t *testing.T, reReport bool) *regionalRig {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(131072), 2)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	proc := g.NewProcess("java-g1")
	h, err := jvm.NewRegional(jvm.RegionalConfig{
		Proc:           proc,
		Clock:          clock,
		RegionBytes:    8 << 20,
		HeapBytes:      256 << 20,
		CodeCacheBytes: 4 << 20,
		EdenSurvival:   0.1,
		SurvivalNoise:  1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent := AttachHeap(h, g, proc, Options{ReReportOnGC: reReport})
	return &regionalRig{clock: clock, guest: g, heap: h, agent: agent}
}

func TestAgentRegionalMultiRangeQuery(t *testing.T) {
	r := newRegionalRig(t, true)
	// Churn regions so the young set fragments.
	for i := 0; i < 3; i++ {
		r.heap.Allocate(30 << 20)
		d := r.heap.BeginMinorGC(false)
		r.clock.Advance(d)
		if _, err := r.heap.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	r.heap.Allocate(30 << 20)

	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	tb := r.guest.LKM.TransferBitmap()
	skipped := tb.Len() - tb.Count()
	wantPages := r.heap.YoungCommitted() / mem.PageSize
	if skipped != wantPages {
		t.Fatalf("skipped %d pages, want young committed %d", skipped, wantPages)
	}
}

func TestAgentRegionalGrowReportsKeepSkippingEffective(t *testing.T) {
	r := newRegionalRig(t, true)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})

	before := r.agent.GrowReports
	// Allocation takes fresh regions mid-migration: each must be reported
	// and skip-marked immediately.
	r.heap.Allocate(30 << 20)
	if r.agent.GrowReports <= before {
		t.Fatal("no grow reports for fresh regions")
	}
	tb := r.guest.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != r.heap.YoungCommitted()/mem.PageSize {
		t.Fatalf("fresh regions not skip-marked: %d skipped", skipped)
	}

	// A GC churns everything; the re-report re-covers the new young set.
	d := r.heap.BeginMinorGC(false)
	r.clock.Advance(d)
	if _, err := r.heap.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if r.agent.ReReports == 0 {
		t.Fatal("no GC-end re-report")
	}
	if skipped := tb.Len() - tb.Count(); skipped != r.heap.YoungCommitted()/mem.PageSize {
		t.Fatalf("post-GC young set not skip-marked: %d skipped", skipped)
	}
}

func TestAgentRegionalNoReReportErodes(t *testing.T) {
	r := newRegionalRig(t, false)
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(any) {})
	daemon.Notify(guestos.EvMigrationBegin{})
	r.heap.Allocate(30 << 20)
	d := r.heap.BeginMinorGC(false)
	r.clock.Advance(d)
	if _, err := r.heap.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	// Old young regions freed (shrink restores their bits), new regions
	// never reported: nothing is skip-marked any more.
	tb := r.guest.LKM.TransferBitmap()
	if skipped := tb.Len() - tb.Count(); skipped != 0 {
		t.Fatalf("deferred-expansion mode still skips %d pages after churn", skipped)
	}
	if r.agent.GrowReports != 0 || r.agent.ReReports != 0 {
		t.Fatal("re-reporting fired despite being disabled")
	}
}

func TestAgentRegionalEnforcedGCWorkflow(t *testing.T) {
	r := newRegionalRig(t, true)
	r.heap.Allocate(20 << 20)
	var ready bool
	daemon := r.guest.LKM.DaemonEndpoint()
	daemon.Bind(func(msg any) {
		if _, ok := msg.(guestos.EvSuspensionReady); ok {
			ready = true
		}
	})
	daemon.Notify(guestos.EvMigrationBegin{})
	daemon.Notify(guestos.EvEnteringLastIter{})
	if !r.heap.EnforcePending() {
		t.Fatal("no enforced GC pending")
	}
	d := r.heap.BeginMinorGC(true)
	r.clock.Advance(d)
	if _, err := r.heap.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if !ready {
		t.Fatal("not suspension-ready after enforced GC")
	}
	if !r.heap.HeldAtSafepoint() {
		t.Fatal("threads not held")
	}
	daemon.Notify(guestos.EvVMResumed{})
	if r.heap.HeldAtSafepoint() {
		t.Fatal("threads still held after resume")
	}
}

func TestAgentReadyAreasExcludeLiveExactly(t *testing.T) {
	r := newRig(t)
	r.jvm.Allocate(8 << 20)
	d := r.jvm.BeginMinorGC(false)
	r.clock.Advance(d)
	if _, err := r.jvm.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	var got []mem.VARange
	r.guest.Bus.BindKernel(func(from guestos.AppID, msg any) {
		if m, ok := msg.(guestos.MsgSuspensionReady); ok {
			got = m.Areas
		}
		// Forward to the LKM is unnecessary: we only inspect the payload.
	})
	r.agent.migrating = true
	r.agent.onEnforcedDone()
	if len(got) == 0 {
		t.Fatal("no ready areas sent")
	}
	live := r.jvm.FromLiveRange()
	for _, a := range got {
		if a.Overlaps(live) {
			t.Fatalf("ready area %v overlaps live range %v", a, live)
		}
	}
	// The union of areas plus the page-rounded live range covers the young
	// generation exactly.
	var covered uint64
	for _, a := range got {
		covered += a.Len()
	}
	liveAligned := mem.VARange{Start: live.Start.PageBase(), End: (live.End + mem.PageMask).PageBase()}
	if covered+liveAligned.Len() != r.jvm.YoungRange().Len() {
		t.Fatalf("areas %v + live %v do not tile young %v", got, liveAligned, r.jvm.YoungRange())
	}
}
