// Package fleetobs is the fleet-wide observability plane: one Collector
// merges N per-VM tracers, metrics registries and provenance ledgers — plus
// the shared fabric's own lane — into a single deterministic fleet view.
//
// Three surfaces come out of a collector:
//
//   - A merged Chrome/Perfetto trace (obs.WriteChromeTraceLanes): one
//     process row per VM in boot order, the fabric's flow and link tracks as
//     the final row. Byte-identical across same-seed runs, race detector on
//     or off, because every lane records only virtual-clock events.
//   - Labeled metrics: per-VM registries exported as one Prometheus page
//     with a vm="<name>" label per series, the fleet-scoped registry (the
//     fabric's per-link utilization and conservation counters live there)
//     labeled scope="fleet".
//   - The live progress stream: every engine's migration.Progress points,
//     captured per VM and optionally fanned out through OnProgress as they
//     happen — the feed behind `javmm-migrate -peers`'s fleet status line.
package fleetobs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"javmm/internal/migration"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
	"javmm/internal/simclock"
)

// FabricLane is the name of the merged trace's fabric process row.
const FabricLane = "fabric"

// Collector owns the fleet's observability planes. Attach one VMPlane per
// VM before the run starts, wire FleetMetrics and FabricTracer into the
// fabric, then export after the run. A Collector is not safe for concurrent
// attachment; fleets attach every plane before starting the scheduler (and
// the cooperative scheduler serializes all emission during the run).
type Collector struct {
	clock  *simclock.Clock
	fleet  *obs.Metrics
	fabric *obs.Tracer
	vms    []*VMPlane

	// OnProgress, when non-nil, receives every VM's progress points as they
	// are emitted, tagged with the VM's name — the live fleet status feed.
	// Set it before the run starts.
	OnProgress func(vm string, p migration.Progress)
}

// VMPlane is one VM's observability surfaces, all on the fleet's clock.
// Wire Tracer/Metrics/Ledger into the VM's engine config and AttachObs.
type VMPlane struct {
	Name    string
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	Ledger  *ledger.Ledger

	progress []migration.Progress
}

// Progress returns the VM's captured progress stream in emission order.
func (p *VMPlane) Progress() []migration.Progress { return p.progress }

// New returns an empty collector on the fleet's shared clock.
func New(clock *simclock.Clock) *Collector {
	return &Collector{
		clock:  clock,
		fleet:  obs.NewMetrics(clock),
		fabric: obs.New(clock),
	}
}

// FleetMetrics is the fleet-scoped registry: attach it to the fabric
// (per-link utilization and settled-bytes gauges, net.* counters) and to
// anything else that is shared rather than per-VM.
func (c *Collector) FleetMetrics() *obs.Metrics { return c.fleet }

// FabricTracer is the shared fabric's trace lane: attach it via
// netsim.Fabric.SetTracer so per-flow transfer spans and contention instants
// land in the merged trace's fabric row.
func (c *Collector) FabricTracer() *obs.Tracer { return c.fabric }

// AttachVM creates the named VM's observability plane: a fresh tracer,
// metrics registry and provenance ledger, plus a subscription that captures
// the engine's progress stream (and fans it out through OnProgress).
func (c *Collector) AttachVM(name string) *VMPlane {
	p := &VMPlane{
		Name:    name,
		Tracer:  obs.New(c.clock),
		Metrics: obs.NewMetrics(c.clock),
		Ledger:  ledger.New(),
	}
	p.Tracer.Subscribe(func(e obs.Event) {
		pr, ok := e.Data.(migration.Progress)
		if !ok {
			return
		}
		p.progress = append(p.progress, pr)
		if c.OnProgress != nil {
			c.OnProgress(p.Name, pr)
		}
	})
	c.vms = append(c.vms, p)
	return p
}

// VMs returns the attached planes in attach (boot) order.
func (c *Collector) VMs() []*VMPlane { return c.vms }

// VM returns the named plane, or nil.
func (c *Collector) VM(name string) *VMPlane {
	for _, p := range c.vms {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Lanes returns the merged trace's process rows: one per VM in attach
// order, the fabric last. Feed them to obs.WriteChromeTraceLanes.
func (c *Collector) Lanes() []obs.TraceLane {
	lanes := make([]obs.TraceLane, 0, len(c.vms)+1)
	for _, p := range c.vms {
		lanes = append(lanes, obs.TraceLane{Name: p.Name, Events: p.Tracer.Events()})
	}
	lanes = append(lanes, obs.TraceLane{Name: FabricLane, Events: c.fabric.Events()})
	return lanes
}

// WriteChromeTrace writes the merged fleet trace: per-VM process rows plus
// the fabric row, byte-identical across same-seed runs.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTraceLanes(w, c.Lanes())
}

// MergedEvents returns every lane's events interleaved into one
// time-ordered stream (ties broken by lane order, then emission order) with
// each event's Track prefixed "<lane>/". The flat form for JSONL export and
// cross-VM analysis.
func (c *Collector) MergedEvents() []obs.Event {
	type keyed struct {
		lane int
		ev   obs.Event
	}
	var all []keyed
	for li, lane := range c.Lanes() {
		for _, e := range lane.Events {
			e.Track = lane.Name + "/" + e.Track
			all = append(all, keyed{lane: li, ev: e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].lane != all[j].lane {
			return all[i].lane < all[j].lane
		}
		return all[i].ev.Seq < all[j].ev.Seq
	})
	out := make([]obs.Event, len(all))
	for i, k := range all {
		out[i] = k.ev
	}
	return out
}

// LabeledSnapshots captures every registry for one labeled Prometheus page:
// each VM's snapshot labeled vm="<name>", the fleet registry labeled
// scope="fleet". Same-named series from different VMs merge under one TYPE
// header with deterministic row order.
func (c *Collector) LabeledSnapshots() []obs.LabeledSnapshot {
	snaps := make([]obs.LabeledSnapshot, 0, len(c.vms)+1)
	for _, p := range c.vms {
		snaps = append(snaps, obs.LabeledSnapshot{
			Labels:   []obs.Label{{Key: "vm", Value: p.Name}},
			Snapshot: p.Metrics.Snapshot(),
		})
	}
	snaps = append(snaps, obs.LabeledSnapshot{
		Labels:   []obs.Label{{Key: "scope", Value: "fleet"}},
		Snapshot: c.fleet.Snapshot(),
	})
	return snaps
}

// WritePrometheus renders the fleet's labeled metrics page.
func (c *Collector) WritePrometheus(w io.Writer) error {
	return obs.WritePrometheusLabeled(w, c.LabeledSnapshots())
}

// VMSnapshot is one VM's metrics in a fleet snapshot.
type VMSnapshot struct {
	Name    string              `json:"name"`
	Metrics obs.MetricsSnapshot `json:"metrics"`
}

// Snapshot is the fleet's point-in-time metrics state: per-VM registries in
// boot order plus the fleet-scoped registry. The JSON interchange form
// javmm-analyze's fleet mode ingests.
type Snapshot struct {
	VMs   []VMSnapshot        `json:"vms"`
	Fleet obs.MetricsSnapshot `json:"fleet"`
}

// Snapshot captures every registry now.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{Fleet: c.fleet.Snapshot()}
	for _, p := range c.vms {
		s.VMs = append(s.VMs, VMSnapshot{Name: p.Name, Metrics: p.Metrics.Snapshot()})
	}
	return s
}

// WriteSnapshotJSON exports a fleet snapshot as indented JSON;
// ReadSnapshotJSON parses it back.
func WriteSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshotJSON parses a snapshot written by WriteSnapshotJSON.
func ReadSnapshotJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("fleetobs: parsing fleet snapshot: %w", err)
	}
	return s, nil
}

// LabeledFromSnapshot rebuilds the labeled-snapshot list from an ingested
// fleet snapshot, so javmm-analyze can render the same Prometheus page from
// a file that a live collector would have written.
func LabeledFromSnapshot(s Snapshot) []obs.LabeledSnapshot {
	snaps := make([]obs.LabeledSnapshot, 0, len(s.VMs)+1)
	for _, v := range s.VMs {
		snaps = append(snaps, obs.LabeledSnapshot{
			Labels:   []obs.Label{{Key: "vm", Value: v.Name}},
			Snapshot: v.Metrics,
		})
	}
	snaps = append(snaps, obs.LabeledSnapshot{
		Labels:   []obs.Label{{Key: "scope", Value: "fleet"}},
		Snapshot: s.Fleet,
	})
	return snaps
}
