package obs

import (
	"sort"
	"time"

	"javmm/internal/simclock"
)

// Metrics is a registry of named instruments driven by the virtual clock.
// Like Tracer, a nil *Metrics is a valid no-op sink, and the registry is
// single-threaded. Instruments are created on first use and live for the
// registry's lifetime.
type Metrics struct {
	clock    *simclock.Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry against clock.
func NewMetrics(clock *simclock.Clock) *Metrics {
	if clock == nil {
		panic("obs: NewMetrics requires a clock")
	}
	return &Metrics{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. A nil registry
// returns a nil counter, whose methods are no-ops.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{clock: m.clock}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulating integer.
type Counter struct{ v int64 }

// Add accumulates n (negative n panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: Counter.Add with negative value")
	}
	c.v += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates a duration as nanoseconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the accumulated total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins value that additionally integrates itself over
// virtual time, yielding a time-weighted mean: a gauge set to 1.0 for 9 s
// and 0.0 for 1 s has mean 0.9 regardless of how many Set calls occurred.
type Gauge struct {
	clock    *simclock.Clock
	last     float64
	set      bool
	firstAt  time.Duration
	lastAt   time.Duration
	integral float64 // ∫ value dt, in value·seconds
}

// Set records a new value at the current virtual time.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	now := g.clock.Now()
	if !g.set {
		g.set = true
		g.firstAt = now
	} else {
		g.integral += g.last * (now - g.lastAt).Seconds()
	}
	g.last = v
	g.lastAt = now
}

// Value returns the most recently set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.last
}

// TimeWeightedMean returns the gauge's time-weighted average from its first
// Set to the current virtual time. A gauge set once and never updated has
// mean equal to that value.
func (g *Gauge) TimeWeightedMean() float64 {
	if g == nil || !g.set {
		return 0
	}
	now := g.clock.Now()
	span := (now - g.firstAt).Seconds()
	if span <= 0 {
		return g.last
	}
	return (g.integral + g.last*(now-g.lastAt).Seconds()) / span
}

// Histogram summarizes observations. Observe records unit-weight samples;
// ObserveWeighted records a sample weighted by the virtual duration it was
// in effect, so WeightedMean is a time-weighted average (the link uses it
// for utilization-style series).
type Histogram struct {
	count    uint64
	sum      float64
	min, max float64

	wsum float64 // Σ v·w_seconds
	wtot float64 // Σ w_seconds

	// samples retains every observed value for exact quantiles; sorted
	// marks whether it is currently in ascending order (Quantile sorts
	// lazily and Observe invalidates).
	samples []float64
	sorted  bool
}

// Observe records one sample with unit weight.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveWeighted records a sample weighted by the virtual time w.
func (h *Histogram) ObserveWeighted(v float64, w time.Duration) {
	if h == nil {
		return
	}
	h.Observe(v)
	h.wsum += v * w.Seconds()
	h.wtot += w.Seconds()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the unweighted mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// WeightedMean returns the time-weighted mean (0 when no weighted
// observations were recorded).
func (h *Histogram) WeightedMean() float64 {
	if h == nil || h.wtot == 0 {
		return 0
	}
	return h.wsum / h.wtot
}

// Quantile returns the exact q-quantile of the observed samples, by linear
// interpolation between order statistics. An empty histogram returns 0;
// q <= 0 returns the minimum and q >= 1 the maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(h.samples) {
		return h.samples[lo]
	}
	return h.samples[lo] + frac*(h.samples[lo+1]-h.samples[lo])
}

// CounterSample is one counter in a snapshot.
type CounterSample struct {
	Name  string
	Value int64
}

// GaugeSample is one gauge in a snapshot.
type GaugeSample struct {
	Name             string
	Value            float64
	TimeWeightedMean float64
}

// HistogramSample is one histogram in a snapshot. P50/P95/P99 are exact
// sample quantiles (see Histogram.Quantile).
type HistogramSample struct {
	Name          string
	Count         uint64
	Sum           float64
	Min, Max      float64
	Mean          float64
	WeightedMean  float64
	P50, P95, P99 float64
}

// MetricsSnapshot is a point-in-time copy of every instrument, sorted by
// name within each section — the deterministic form the CLI's --metrics
// table and the tests consume.
type MetricsSnapshot struct {
	At         time.Duration
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistogramSample
}

// Snapshot captures the registry at the current virtual time.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	s := MetricsSnapshot{At: m.clock.Now()}
	for name, c := range m.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	for name, g := range m.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{
			Name: name, Value: g.Value(), TimeWeightedMean: g.TimeWeightedMean(),
		})
	}
	for name, h := range m.hists {
		s.Histograms = append(s.Histograms, HistogramSample{
			Name: name, Count: h.Count(), Sum: h.Sum(),
			Min: h.min, Max: h.max, Mean: h.Mean(), WeightedMean: h.WeightedMean(),
			P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// sortedCopy returns the snapshot with each section re-sorted by name into
// fresh slices, leaving the receiver untouched. Snapshot already sorts, but
// snapshots that arrive from JSON or literal construction carry no ordering
// guarantee; deterministic emitters normalize through this first.
func (s MetricsSnapshot) sortedCopy() MetricsSnapshot {
	out := MetricsSnapshot{At: s.At}
	out.Counters = append([]CounterSample(nil), s.Counters...)
	out.Gauges = append([]GaugeSample(nil), s.Gauges...)
	out.Histograms = append([]HistogramSample(nil), s.Histograms...)
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// Counter returns the named counter's value from the snapshot, and whether
// it was present.
func (s MetricsSnapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram's sample from the snapshot, and
// whether it was present.
func (s MetricsSnapshot) Histogram(name string) (HistogramSample, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSample{}, false
}
