package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"javmm/internal/simclock"
)

func TestHistogramQuantile(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	h := m.Histogram("q")

	// Empty histogram: every quantile is 0.
	if h.Quantile(0.5) != 0 || h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}

	// Single sample: every quantile is that sample.
	h.Observe(7)
	for _, q := range []float64{-1, 0, 0.25, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7", q, got)
		}
	}

	// Observations out of order; quantiles see them sorted.
	h2 := m.Histogram("q2")
	for _, v := range []float64{30, 10, 20, 40} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0); got != 10 {
		t.Fatalf("q=0 -> %v, want min", got)
	}
	if got := h2.Quantile(1); got != 40 {
		t.Fatalf("q=1 -> %v, want max", got)
	}
	if got := h2.Quantile(0.5); got != 25 { // interpolates 20..30
		t.Fatalf("median = %v, want 25", got)
	}
	if got := h2.Quantile(1.0 / 3.0); got != 20 {
		t.Fatalf("q=1/3 = %v, want 20", got)
	}
	// Observing after a Quantile call re-sorts correctly.
	h2.Observe(5)
	if got := h2.Quantile(0); got != 5 {
		t.Fatalf("after new min, q=0 = %v", got)
	}

	// Nil histogram is safe.
	var hn *Histogram
	if hn.Quantile(0.9) != 0 {
		t.Fatal("nil histogram quantile not 0")
	}

	// Snapshot carries the quantiles.
	snap := m.Snapshot()
	hs, ok := snap.Histogram("q2")
	if !ok {
		t.Fatal("q2 missing from snapshot")
	}
	if hs.P50 != 20 { // samples now 5,10,20,30,40
		t.Fatalf("snapshot P50 = %v, want 20", hs.P50)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := simclock.New()
	tr := New(c)
	tr.Emit(TrackMigration, KindSuspend, "vm-suspend", nil)
	c.Advance(3 * time.Millisecond)
	sp := tr.Begin(TrackMigration, KindIteration, "iteration 1",
		Int("iter", 1), Bool("last", false))
	c.Advance(time.Millisecond)
	sp.End(Uint64("pages_sent", 42), Dur("took", time.Millisecond),
		Float("rate", 1.5), Str("mode", "xen"))

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events, want 3", len(got))
	}
	if got[0].Kind != KindSuspend || got[0].At != 0 || got[0].Seq != 0 {
		t.Fatalf("event 0 = %+v", got[0])
	}
	end := got[2]
	if end.Phase != PhaseEnd || end.At != 4*time.Millisecond {
		t.Fatalf("end event = %+v", end)
	}
	if v := end.AttrValue("pages_sent"); v != int64(42) {
		t.Fatalf("pages_sent = %v (%T)", v, v)
	}
	if v := end.AttrValue("took"); v != int64(time.Millisecond) {
		t.Fatalf("took = %v", v)
	}
	if v := end.AttrValue("rate"); v != 1.5 {
		t.Fatalf("rate = %v", v)
	}
	if v := end.AttrValue("mode"); v != "xen" {
		t.Fatalf("mode = %v", v)
	}
	if v := end.AttrValue("absent"); v != nil {
		t.Fatalf("absent attr = %v", v)
	}
	// Attrs come back sorted by key.
	for i := 1; i < len(end.Attrs); i++ {
		if end.Attrs[i-1].Key > end.Attrs[i].Key {
			t.Fatalf("attrs not sorted: %+v", end.Attrs)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank input: %v, %d events", err, len(evs))
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	m.Counter("migration.pages_sent").Add(100)
	m.Gauge("link.utilization").Set(0.75)
	m.Histogram("migration.fault_stall_ns").Observe(1000)
	m.Histogram("migration.fault_stall_ns").Observe(3000)
	c.Advance(2 * time.Second)

	var buf bytes.Buffer
	snap := m.Snapshot()
	if err := WriteMetricsJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetricsJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Counter("migration.pages_sent"); !ok || v != 100 {
		t.Fatalf("counter = %d,%v", v, ok)
	}
	h, ok := got.Histogram("migration.fault_stall_ns")
	if !ok || h.Count != 2 || h.P50 != 2000 {
		t.Fatalf("histogram = %+v,%v", h, ok)
	}
	if got.At != 2*time.Second {
		t.Fatalf("At = %v", got.At)
	}

	// Deterministic: writing twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := WriteMetricsJSON(&buf2, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("metrics JSON not deterministic")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	m.Counter("migration.pages_sent").Add(123)
	m.Gauge("link.utilization").Set(0.5)
	h := m.Histogram("migration.fault_stall_ns")
	h.Observe(100)
	h.Observe(300)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE javmm_migration_pages_sent counter\n",
		"javmm_migration_pages_sent 123\n",
		"# TYPE javmm_link_utilization gauge\n",
		"javmm_link_utilization 0.5\n",
		"javmm_link_utilization_timeweighted_mean 0.5\n",
		"# TYPE javmm_migration_fault_stall_ns summary\n",
		"javmm_migration_fault_stall_ns{quantile=\"0.5\"} 200\n",
		"javmm_migration_fault_stall_ns_sum 400\n",
		"javmm_migration_fault_stall_ns_count 2\n",
		"javmm_migration_fault_stall_ns_min 100\n",
		"javmm_migration_fault_stall_ns_max 300\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic across calls.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("prometheus output not deterministic")
	}
}

// TestWritePrometheusLabeled exercises the labeled exposition: series
// sharing a name merge into one family under a single TYPE header with
// per-snapshot label sets — no name mangling — and the emission order is
// canonical regardless of producer order.
func TestWritePrometheusLabeled(t *testing.T) {
	c := simclock.New()
	m0 := NewMetrics(c)
	m0.Counter("migration.bytes_on_wire").Add(100)
	m0.Gauge("workload.ops_per_sec").Set(50)
	m0.Histogram("migration.fault_stall_ns").Observe(10)
	m1 := NewMetrics(c)
	m1.Counter("migration.bytes_on_wire").Add(200)
	m1.Counter("migration.aborts").Inc()

	snaps := []LabeledSnapshot{
		{Labels: []Label{{Key: "vm", Value: "derby-1"}}, Snapshot: m1.Snapshot()},
		{Labels: []Label{{Key: "vm", Value: "derby-0"}}, Snapshot: m0.Snapshot()},
	}
	var buf bytes.Buffer
	if err := WritePrometheusLabeled(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE javmm_migration_bytes_on_wire counter\n" +
			"javmm_migration_bytes_on_wire{vm=\"derby-0\"} 100\n" +
			"javmm_migration_bytes_on_wire{vm=\"derby-1\"} 200\n",
		"javmm_migration_aborts{vm=\"derby-1\"} 1\n",
		"javmm_workload_ops_per_sec{vm=\"derby-0\"} 50\n",
		"javmm_migration_fault_stall_ns{vm=\"derby-0\",quantile=\"0.5\"} 10\n",
		"javmm_migration_fault_stall_ns_count{vm=\"derby-0\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE header for the shared family.
	if n := strings.Count(out, "# TYPE javmm_migration_bytes_on_wire counter"); n != 1 {
		t.Fatalf("family header appears %d times", n)
	}
	// Reversing the producer order yields identical bytes: rows are ordered
	// by canonical label rendering, not input position.
	var buf2 bytes.Buffer
	if err := WritePrometheusLabeled(&buf2, []LabeledSnapshot{snaps[1], snaps[0]}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("labeled output depends on producer order:\n%s\nvs\n%s", &buf, &buf2)
	}
}

// TestWritePrometheusLabeledEscaping pins label hygiene: keys are sanitized
// to the Prometheus alphabet, values escaped, and multi-label sets render
// key-sorted.
func TestWritePrometheusLabeledEscaping(t *testing.T) {
	s := MetricsSnapshot{Counters: []CounterSample{{Name: "x", Value: 1}}}
	var buf bytes.Buffer
	err := WritePrometheusLabeled(&buf, []LabeledSnapshot{{
		Labels: []Label{
			{Key: "zone.b", Value: "with \"quotes\" and \\slash\nnewline"},
			{Key: "a", Value: "plain"},
		},
		Snapshot: s,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := "javmm_x{a=\"plain\",zone_b=\"with \\\"quotes\\\" and \\\\slash\\nnewline\"} 1\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped output missing %q:\n%s", want, buf.String())
	}
}

// TestWritePrometheusUnlabeledEquivalence pins that WritePrometheus and a
// single unlabeled WritePrometheusLabeled call are the same writer: the
// legacy golden outputs must not move.
func TestWritePrometheusUnlabeledEquivalence(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	m.Counter("a").Add(1)
	m.Gauge("b").Set(2)
	m.Histogram("h").Observe(3)
	var plain, labeled bytes.Buffer
	if err := WritePrometheus(&plain, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusLabeled(&labeled, []LabeledSnapshot{{Snapshot: m.Snapshot()}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), labeled.Bytes()) {
		t.Fatalf("unlabeled forms differ:\n%s\nvs\n%s", &plain, &labeled)
	}
}

// TestWritePrometheusOrderStable pins the byte-identical-output guarantee
// against unsorted producers: a hand-built snapshot with sections in
// adversarial (reverse and shuffled) order must render exactly the same
// bytes as its sorted twin, with name-sorted emission per section — and the
// input snapshot must not be mutated.
func TestWritePrometheusOrderStable(t *testing.T) {
	sorted := MetricsSnapshot{
		Counters: []CounterSample{
			{Name: "a.first", Value: 1},
			{Name: "b.second", Value: 2},
			{Name: "c.third", Value: 3},
		},
		Gauges: []GaugeSample{
			{Name: "g.alpha", Value: 1.5},
			{Name: "g.beta", Value: 2.5},
		},
		Histograms: []HistogramSample{
			{Name: "h.one", Count: 1},
			{Name: "h.two", Count: 2},
		},
	}
	shuffled := MetricsSnapshot{
		Counters: []CounterSample{
			{Name: "c.third", Value: 3},
			{Name: "a.first", Value: 1},
			{Name: "b.second", Value: 2},
		},
		Gauges: []GaugeSample{
			{Name: "g.beta", Value: 2.5},
			{Name: "g.alpha", Value: 1.5},
		},
		Histograms: []HistogramSample{
			{Name: "h.two", Count: 2},
			{Name: "h.one", Count: 1},
		},
	}
	var want, got bytes.Buffer
	if err := WritePrometheus(&want, sorted); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&got, shuffled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("emission depends on producer order:\nsorted:\n%s\nshuffled:\n%s", &want, &got)
	}
	// Emission normalized without mutating the caller's snapshot.
	if shuffled.Counters[0].Name != "c.third" {
		t.Fatal("WritePrometheus mutated its input snapshot")
	}
	// And the output really is name-sorted.
	iA := bytes.Index(got.Bytes(), []byte("javmm_a_first"))
	iC := bytes.Index(got.Bytes(), []byte("javmm_c_third"))
	if iA < 0 || iC < 0 || iA > iC {
		t.Fatalf("output not name-sorted:\n%s", &got)
	}
}
