package ledger

import (
	"testing"

	"javmm/internal/mem"
)

func TestNilAndUnbegunLedgerAreSafe(t *testing.T) {
	var l *Ledger
	l.Begin(8)
	if l.PageSent(0, 1, 4096, ClassLive) != ReasonFirstCopy {
		t.Fatal("nil ledger must return the zero reason")
	}
	l.PageSkipped(0, 1, 4096, SkipBitmap)
	if l.Active() {
		t.Fatal("nil ledger reports active")
	}
	s := l.Summary()
	if s.TotalSends != 0 || len(s.SendsByReason) == 0 {
		t.Fatalf("nil summary = %+v", s)
	}
	if l.TopPages(5) != nil {
		t.Fatal("nil ledger has top pages")
	}

	fresh := New()
	fresh.PageSent(0, 1, 4096, ClassLive) // before Begin: dropped
	if got := fresh.Summary().TotalSends; got != 0 {
		t.Fatalf("un-begun ledger recorded %d sends", got)
	}
}

func TestSendClassification(t *testing.T) {
	l := New()
	l.Begin(16)

	if r := l.PageSent(3, 1, 4096, ClassLive); r != ReasonFirstCopy {
		t.Fatalf("first live send = %v, want first-copy", r)
	}
	if r := l.PageSent(3, 2, 4096, ClassLive); r != ReasonReDirtied {
		t.Fatalf("second live send = %v, want re-dirtied", r)
	}
	if r := l.PageSent(3, 3, 4096, ClassFinal); r != ReasonFinalIter {
		t.Fatalf("final send = %v, want final-iteration", r)
	}
	if r := l.PageSent(4, 3, 4096, ClassFault); r != ReasonDemandFault {
		t.Fatalf("fault send = %v, want demand-fault", r)
	}
	if r := l.PageSent(5, 3, 4096, ClassPrefetch); r != ReasonFirstCopy {
		t.Fatalf("prefetch of never-sent page = %v, want first-copy", r)
	}
	if r := l.PageSent(5, 3, 4096, ClassPrefetch); r != ReasonHybridRefetch {
		t.Fatalf("prefetch of already-sent page = %v, want hybrid-refetch", r)
	}
}

func TestWastedAndSavedBytes(t *testing.T) {
	l := New()
	l.Begin(8)

	// Page 0: sent three times (4096 each) → waste is the first two sends.
	l.PageSent(0, 1, 4096, ClassLive)
	l.PageSent(0, 2, 4096, ClassLive)
	l.PageSent(0, 3, 4096, ClassFinal)
	// Page 1: sent once → no waste.
	l.PageSent(1, 1, 4096, ClassLive)
	// Page 2: bitmap-skipped twice → 8192 saved.
	l.PageSkipped(2, 1, 4096, SkipBitmap)
	l.PageSkipped(2, 2, 4096, SkipBitmap)
	// Page 3: free-skipped once → 4096 saved.
	l.PageSkipped(3, 1, 4096, SkipFree)
	// Page 4: dirty deferral — not a saving.
	l.PageSkipped(4, 1, 4096, SkipDirty)

	s := l.Summary()
	if s.TotalSends != 4 || s.TotalBytes != 4*4096 {
		t.Fatalf("totals = %d sends, %d bytes", s.TotalSends, s.TotalBytes)
	}
	if s.WastedBytes != 2*4096 {
		t.Fatalf("wasted = %d, want %d", s.WastedBytes, 2*4096)
	}
	if s.SavedBytes != 3*4096 {
		t.Fatalf("saved = %d, want %d", s.SavedBytes, 3*4096)
	}
	if s.PagesSentOnce != 1 || s.PagesResent != 1 || s.PagesNeverSent != 6 {
		t.Fatalf("population = once %d, resent %d, never %d",
			s.PagesSentOnce, s.PagesResent, s.PagesNeverSent)
	}
	if s.MaxSends != 3 {
		t.Fatalf("max sends = %d", s.MaxSends)
	}
	if got := s.SkipsByReason[SkipDirty].Count; got != 1 {
		t.Fatalf("dirty deferrals = %d", got)
	}
	// Reason buckets sum to the totals.
	var count, bytes uint64
	for _, rt := range s.SendsByReason {
		count += rt.Count
		bytes += rt.Bytes
	}
	if count != s.TotalSends || bytes != s.TotalBytes {
		t.Fatalf("reason buckets sum to %d/%d, totals %d/%d",
			count, bytes, s.TotalSends, s.TotalBytes)
	}
}

func TestTopPagesDeterministicOrder(t *testing.T) {
	l := New()
	l.Begin(16)
	send := func(p mem.PFN, times int, wire uint64) {
		for i := 0; i < times; i++ {
			l.PageSent(p, i+1, wire, ClassLive)
		}
	}
	send(7, 3, 4096)
	send(2, 3, 4096) // ties with 7 on sends and bytes → PFN order
	send(9, 5, 4096)
	send(1, 1, 4096)

	top := l.TopPages(3)
	if len(top) != 3 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].PFN != 9 || top[0].Sends != 5 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].PFN != 2 || top[2].PFN != 7 {
		t.Fatalf("tie order = %d, %d, want 2, 7", top[1].PFN, top[2].PFN)
	}
	// Asking for more than exist returns all senders.
	if n := len(l.TopPages(100)); n != 4 {
		t.Fatalf("TopPages(100) = %d entries, want 4", n)
	}
}

func TestBeginResetsAndReuses(t *testing.T) {
	l := New()
	l.Begin(8)
	l.PageSent(0, 1, 4096, ClassLive)
	l.Begin(4) // smaller: reuses backing array
	if got := l.Summary(); got.TotalSends != 0 || got.NumPages != 4 {
		t.Fatalf("after reset: %+v", got)
	}
	if l.Sends(0) != 0 {
		t.Fatal("page record survived reset")
	}
	// Out-of-range pages are ignored, not panics.
	l.PageSent(99, 1, 4096, ClassLive)
	l.PageSkipped(99, 1, 4096, SkipFree)
	if l.Summary().TotalSends != 0 {
		t.Fatal("out-of-range send recorded")
	}
}

func TestReasonStrings(t *testing.T) {
	for _, r := range SendReasons() {
		if r.String() == "unknown" {
			t.Fatalf("reason %d has no name", r)
		}
	}
	for _, r := range SkipReasons() {
		if r.String() == "unknown" {
			t.Fatalf("skip reason %d has no name", r)
		}
	}
	if SkipDirty.Saved() || !SkipBitmap.Saved() || !SkipFree.Saved() {
		t.Fatal("Saved classification wrong")
	}
}
