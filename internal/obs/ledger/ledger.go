// Package ledger is the page-provenance layer of the observability stack:
// it answers, page by page, *why* each byte of migration traffic crossed the
// wire and what the skip policy saved.
//
// The paper's whole argument is an accounting claim — young-generation pages
// are transferred zero-or-once instead of repeatedly — and aggregate counters
// cannot check it. The ledger can: the migration engine tags every page push
// with a send class (live round, stop-and-copy, demand fault, background
// prefetch) and every page skip with its reason, and the ledger reduces that
// stream into per-PFN send counts, wasted bytes (every send of a page except
// its last), bytes saved by the skip policy, and the reason taxonomy of
// DESIGN.md §11:
//
//	first-copy      first time this page's content moves
//	re-dirtied      page re-sent in a live round because it was written again
//	final-iteration sent during stop-and-copy, while the VM is paused
//	demand-fault    fetched post-switchover because the guest touched it
//	hybrid-refetch  prefetched post-switchover after a warm-phase send went
//	                stale (ModeHybrid's re-dirtied tail)
//	resume-refetch  re-sent by a resumed run because the ResumeToken could not
//	                prove the destination's copy intact
//
// Like obs.Tracer and obs.Metrics, a nil *Ledger is a valid no-op sink and
// the ledger is single-threaded, keyed entirely to the deterministic
// simulation: two same-seed runs produce identical ledgers.
package ledger

import (
	"sort"

	"javmm/internal/mem"
)

// SendClass is the engine-side context of one page push. The ledger refines
// a class into a SendReason using its own per-page history (it alone knows
// whether a page moved before).
type SendClass int

// Send classes, as the engine's stages see them.
const (
	// ClassLive: a pre-copy (or hybrid warm) round sent the page while the
	// VM was running.
	ClassLive SendClass = iota
	// ClassFinal: the stop-and-copy iteration sent the page with the VM
	// paused.
	ClassFinal
	// ClassFault: the post-copy engine demand-fetched the page because the
	// resumed guest touched it.
	ClassFault
	// ClassPrefetch: the post-copy engine's background pre-paging pushed
	// the page.
	ClassPrefetch
	// ClassResume: a resumed run re-fetched the page because the token could
	// not prove the destination's copy intact (dirtied since the abort epoch,
	// digest mismatch, or never sent).
	ClassResume
)

// SendReason classifies why one page send happened — the attribution
// taxonomy of the analyzer's traffic tables.
type SendReason int

// Send reasons. The order is the deterministic presentation order.
const (
	ReasonFirstCopy SendReason = iota
	ReasonReDirtied
	ReasonFinalIter
	ReasonDemandFault
	ReasonHybridRefetch
	ReasonResumeRefetch

	numSendReasons
)

// String names the reason as the analyzer prints it.
func (r SendReason) String() string {
	switch r {
	case ReasonFirstCopy:
		return "first-copy"
	case ReasonReDirtied:
		return "re-dirtied"
	case ReasonFinalIter:
		return "final-iteration"
	case ReasonDemandFault:
		return "demand-fault"
	case ReasonHybridRefetch:
		return "hybrid-refetch"
	case ReasonResumeRefetch:
		return "resume-refetch"
	default:
		return "unknown"
	}
}

// SendReasons returns every reason in presentation order.
func SendReasons() []SendReason {
	return []SendReason{ReasonFirstCopy, ReasonReDirtied, ReasonFinalIter,
		ReasonDemandFault, ReasonHybridRefetch, ReasonResumeRefetch}
}

// SkipReason classifies why the engine left a considered page behind.
type SkipReason int

// Skip reasons. Bitmap skips are the application-consent path — for JAVMM,
// the young generation; free skips are the guest kernel's free list; dirty
// skips are deferrals (the page was already re-dirtied mid-round and will be
// reconsidered next round), so only the first two represent traffic truly
// saved.
const (
	SkipBitmap SkipReason = iota
	SkipFree
	SkipDirty

	numSkipReasons
)

// String names the skip reason as the analyzer prints it.
func (r SkipReason) String() string {
	switch r {
	case SkipBitmap:
		return "bitmap-skip"
	case SkipFree:
		return "free-skip"
	case SkipDirty:
		return "dirty-deferral"
	default:
		return "unknown"
	}
}

// SkipReasons returns every skip reason in presentation order.
func SkipReasons() []SkipReason { return []SkipReason{SkipBitmap, SkipFree, SkipDirty} }

// Saved reports whether a skip of this reason avoided traffic outright
// (rather than deferring it to a later round).
func (r SkipReason) Saved() bool { return r == SkipBitmap || r == SkipFree }

// pageRec is the ledger's memory of one PFN.
type pageRec struct {
	sends     uint32
	bytes     uint64 // total wire bytes across all sends
	lastBytes uint64 // wire bytes of the most recent send
	lastIter  int32  // iteration index of the most recent send
	skips     uint32
}

// ReasonTotal aggregates one reason bucket: how many events and how many
// wire bytes they account for.
type ReasonTotal struct {
	Count uint64
	Bytes uint64
}

// Ledger accumulates page provenance for one migration. Begin resizes and
// resets it, so one ledger value can observe a sequence of runs (the last
// one wins). The zero value and nil are valid no-op sinks until Begin.
type Ledger struct {
	pages []pageRec
	sends [numSendReasons]ReasonTotal
	skips [numSkipReasons]ReasonTotal
	began bool
}

// New returns an empty ledger. The engine calls Begin with the VM's page
// count when migration starts.
func New() *Ledger { return &Ledger{} }

// Begin resets the ledger for a migration of an n-page VM.
func (l *Ledger) Begin(n uint64) {
	if l == nil {
		return
	}
	if uint64(cap(l.pages)) >= n {
		l.pages = l.pages[:n]
		for i := range l.pages {
			l.pages[i] = pageRec{}
		}
	} else {
		l.pages = make([]pageRec, n)
	}
	l.sends = [numSendReasons]ReasonTotal{}
	l.skips = [numSkipReasons]ReasonTotal{}
	l.began = true
}

// Active reports whether Begin has been called (a nil ledger is inactive).
func (l *Ledger) Active() bool { return l != nil && l.began }

// classify refines a send class into the canonical reason given the page's
// history. rec is the page's record BEFORE this send is applied.
func classify(class SendClass, rec pageRec) SendReason {
	switch class {
	case ClassFinal:
		return ReasonFinalIter
	case ClassFault:
		return ReasonDemandFault
	case ClassResume:
		return ReasonResumeRefetch
	case ClassPrefetch:
		if rec.sends > 0 {
			return ReasonHybridRefetch
		}
		return ReasonFirstCopy
	default: // ClassLive
		if rec.sends > 0 {
			return ReasonReDirtied
		}
		return ReasonFirstCopy
	}
}

// PageSent records one page push of wire bytes in iteration iter, and
// returns the reason it was classified as. A nil or un-begun ledger records
// nothing and returns ReasonFirstCopy.
func (l *Ledger) PageSent(p mem.PFN, iter int, wire uint64, class SendClass) SendReason {
	if !l.Active() || uint64(p) >= uint64(len(l.pages)) {
		return ReasonFirstCopy
	}
	rec := &l.pages[p]
	reason := classify(class, *rec)
	rec.sends++
	rec.bytes += wire
	rec.lastBytes = wire
	rec.lastIter = int32(iter)
	l.sends[reason].Count++
	l.sends[reason].Bytes += wire
	return reason
}

// PageSkipped records one page skip: the engine considered p in iteration
// iter and left it behind for reason, avoiding (or deferring) raw wire
// bytes.
func (l *Ledger) PageSkipped(p mem.PFN, iter int, raw uint64, reason SkipReason) {
	if !l.Active() || uint64(p) >= uint64(len(l.pages)) {
		return
	}
	if reason < 0 || reason >= numSkipReasons {
		return
	}
	l.pages[p].skips++
	l.skips[reason].Count++
	l.skips[reason].Bytes += raw
	_ = iter
}

// Sends returns the number of times page p was sent.
func (l *Ledger) Sends(p mem.PFN) uint32 {
	if !l.Active() || uint64(p) >= uint64(len(l.pages)) {
		return 0
	}
	return l.pages[p].sends
}

// PageStat is one page's ledger entry in exported form.
type PageStat struct {
	PFN      mem.PFN
	Sends    uint32
	Bytes    uint64
	LastIter int32
	Skips    uint32
}

// TopPages returns the n hottest pages — most sends first, ties broken by
// bytes (descending) then PFN (ascending), so the order is deterministic.
// Pages never sent are excluded.
func (l *Ledger) TopPages(n int) []PageStat {
	if !l.Active() || n <= 0 {
		return nil
	}
	var out []PageStat
	for p, rec := range l.pages {
		if rec.sends == 0 {
			continue
		}
		out = append(out, PageStat{
			PFN:      mem.PFN(p),
			Sends:    rec.sends,
			Bytes:    rec.bytes,
			LastIter: rec.lastIter,
			Skips:    rec.skips,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sends != out[j].Sends {
			return out[i].Sends > out[j].Sends
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].PFN < out[j].PFN
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Summary is the ledger's aggregate view: the analyzer's tables and the
// attribution layer's traffic breakdown are built from it.
type Summary struct {
	NumPages uint64

	// TotalSends and TotalBytes cover every page push of the run; they
	// reconcile exactly with Report.TotalPagesSent and Report.TotalBytes().
	TotalSends uint64
	TotalBytes uint64

	// WastedBytes is the cost of redundancy: every send of a page except
	// its last. A run where each page moves zero-or-once wastes nothing.
	WastedBytes uint64

	// SavedBytes is the raw wire volume the skip policy avoided outright
	// (bitmap + free skips; dirty deferrals are not savings).
	SavedBytes uint64

	// Page population by send count.
	PagesNeverSent uint64
	PagesSentOnce  uint64
	PagesResent    uint64 // sent 2+ times
	MaxSends       uint32

	// SendsByReason and SkipsByReason are indexed by SendReason/SkipReason.
	SendsByReason []ReasonTotal
	SkipsByReason []ReasonTotal
}

// SendBytes returns the bytes attributed to one reason.
func (s Summary) SendBytes(r SendReason) uint64 {
	if int(r) >= len(s.SendsByReason) {
		return 0
	}
	return s.SendsByReason[r].Bytes
}

// Summary reduces the ledger. A nil or un-begun ledger summarizes to zeros.
func (l *Ledger) Summary() Summary {
	var s Summary
	if !l.Active() {
		s.SendsByReason = make([]ReasonTotal, numSendReasons)
		s.SkipsByReason = make([]ReasonTotal, numSkipReasons)
		return s
	}
	s.NumPages = uint64(len(l.pages))
	s.SendsByReason = append([]ReasonTotal(nil), l.sends[:]...)
	s.SkipsByReason = append([]ReasonTotal(nil), l.skips[:]...)
	for _, rt := range l.sends {
		s.TotalSends += rt.Count
		s.TotalBytes += rt.Bytes
	}
	for r, rt := range l.skips {
		if SkipReason(r).Saved() {
			s.SavedBytes += rt.Bytes
		}
	}
	for _, rec := range l.pages {
		switch {
		case rec.sends == 0:
			s.PagesNeverSent++
		case rec.sends == 1:
			s.PagesSentOnce++
		default:
			s.PagesResent++
		}
		if rec.sends > s.MaxSends {
			s.MaxSends = rec.sends
		}
		if rec.sends > 0 {
			s.WastedBytes += rec.bytes - rec.lastBytes
		}
	}
	return s
}
