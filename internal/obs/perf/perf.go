// Package perf is the real-clock performance-observability plane. It
// complements the virtual-clock tracer/metrics/ledger stack of package obs:
// those answer "where did the simulated time and bytes go", this package
// answers "where does the *wall* time and memory of the simulator itself go"
// — the question every raw-speed optimization must be judged by.
//
// The central type is Profiler, a per-run accumulator of wall time and
// allocation bytes attributed to named engine stages (the five pluggable
// stages of the migration engine, plus the lazy/post-copy fetch path and the
// digest/audit loops). Attribution is self-time based: a stage's SelfNs
// excludes the time spent in stages nested inside it, so shares are additive
// and sum to at most the run's wall time. The profiler is single-threaded by
// design, exactly like the engine it instruments, and a nil *Profiler is a
// valid no-op — the engine pays nothing when profiling is off.
//
// With pprof labels enabled, entering a stage also tags the goroutine with a
// {"stage": name} pprof label, so CPU and heap profiles collected via the
// -cpuprofile/-memprofile flags of javmm-migrate and javmm-bench attribute
// their samples to the same stage taxonomy.
package perf

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"time"
)

// Stage identifies one instrumented section of the migration data path.
type Stage uint8

const (
	// StageSkipPolicy is the per-page "may this page stay behind" decision
	// (transfer bitmap, free list).
	StageSkipPolicy Stage = iota
	// StageWireCodec is per-page wire encoding (compress, hints, delta).
	StageWireCodec
	// StageStopPolicy is the per-iteration convergence decision.
	StageStopPolicy
	// StageSuspension is the guest-side suspension protocol (LKM handshake:
	// Begin, EnterLastIter, Ready polling, Outcome).
	StageSuspension
	// StagePageSink is page delivery into the destination (including the
	// destination's digest recompute).
	StagePageSink
	// StageLazyFetch is the post-copy engine's demand-fetch and prefetch
	// path (link send, delivery, inline verification).
	StageLazyFetch
	// StageDigestAudit is the integrity plane's switchover audit and
	// per-fetch digest verification loops.
	StageDigestAudit

	numStages
)

var stageNames = [numStages]string{
	"skip-policy",
	"wire-codec",
	"stop-policy",
	"suspension-protocol",
	"page-sink",
	"lazy-fetch",
	"digest-audit",
}

// String returns the stage's stable snake-ish name, used in snapshots and
// pprof labels.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns every instrumented stage in canonical order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// heapAllocsMetric is the runtime/metrics cumulative allocation counter the
// profiler samples for per-stage allocation attribution. It only ever grows,
// so deltas are valid even across garbage collections.
const heapAllocsMetric = "/gc/heap/allocs:bytes"

// frame is one open stage on the profiler's stack.
type frame struct {
	stage      Stage
	start      time.Time
	childDur   time.Duration
	startAlloc uint64
	childAlloc uint64
}

// stageAcc accumulates one stage's totals.
type stageAcc struct {
	calls      uint64
	self       time.Duration
	total      time.Duration
	selfAllocB uint64
}

// Profiler attributes wall time and allocation bytes to stages. Create one
// with NewProfiler and hand it to the engine (migration.Config.Perf); read
// it back with Snapshot after the run. Not safe for concurrent use — one
// profiler per single-threaded run.
type Profiler struct {
	allocs bool
	labels bool
	sample []metrics.Sample
	stack  []frame
	acc    [numStages]stageAcc
	ctxs   [numStages]context.Context
	base   context.Context
}

// Option configures a Profiler.
type Option func(*Profiler)

// WithAllocs enables per-stage allocation accounting. Each stage entry and
// exit samples the runtime's cumulative heap-allocation counter; the deltas
// are attributed like wall time (self excludes nested stages). Costs one
// runtime/metrics read per boundary, so leave it off for timing-sensitive
// runs and on for the instrumented accounting run.
func WithAllocs() Option { return func(p *Profiler) { p.allocs = true } }

// WithPprofLabels tags the goroutine with a {"stage": name} pprof label
// while a stage is open, so -cpuprofile/-memprofile samples attribute to
// stages. Label sets are precomputed once; switching costs an atomic store.
func WithPprofLabels() Option { return func(p *Profiler) { p.labels = true } }

// NewProfiler returns an empty profiler. A nil *Profiler is also valid:
// every method no-ops.
func NewProfiler(opts ...Option) *Profiler {
	p := &Profiler{stack: make([]frame, 0, 8)}
	for _, o := range opts {
		o(p)
	}
	if p.allocs {
		p.sample = []metrics.Sample{{Name: heapAllocsMetric}}
	}
	if p.labels {
		p.base = context.Background()
		for i := Stage(0); i < numStages; i++ {
			p.ctxs[i] = pprof.WithLabels(p.base, pprof.Labels("stage", i.String()))
		}
	}
	return p
}

// readAlloc samples the cumulative heap-allocation counter.
func (p *Profiler) readAlloc() uint64 {
	metrics.Read(p.sample)
	return p.sample[0].Value.Uint64()
}

// Enter opens stage s. Every Enter must be paired with exactly one Exit;
// stages may nest arbitrarily (the engine's audit loop re-enters the codec
// and sink stages) and self-time attribution untangles the nesting.
func (p *Profiler) Enter(s Stage) {
	if p == nil {
		return
	}
	f := frame{stage: s, start: time.Now()}
	if p.allocs {
		f.startAlloc = p.readAlloc()
	}
	p.stack = append(p.stack, f)
	if p.labels {
		pprof.SetGoroutineLabels(p.ctxs[s])
	}
}

// Exit closes the innermost open stage, attributing its elapsed wall time
// (and allocation bytes, when enabled) minus whatever nested stages already
// claimed. Exit on an empty stack is a no-op rather than a panic: a profiler
// must never take the engine down.
func (p *Profiler) Exit() {
	if p == nil || len(p.stack) == 0 {
		return
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	el := time.Since(f.start)
	a := &p.acc[f.stage]
	a.calls++
	a.total += el
	a.self += el - f.childDur
	if p.allocs {
		alloc := p.readAlloc() - f.startAlloc
		a.selfAllocB += alloc - f.childAlloc
	}
	if len(p.stack) > 0 {
		parent := &p.stack[len(p.stack)-1]
		parent.childDur += el
		if p.allocs {
			parent.childAlloc += p.readAlloc() - f.startAlloc
		}
		if p.labels {
			pprof.SetGoroutineLabels(p.ctxs[parent.stage])
		}
	} else if p.labels {
		pprof.SetGoroutineLabels(p.base)
	}
}

// Time runs fn inside stage s.
func (p *Profiler) Time(s Stage, fn func()) {
	p.Enter(s)
	fn()
	p.Exit()
}

// Reset clears the accumulated totals (open frames are dropped too).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.stack = p.stack[:0]
	p.acc = [numStages]stageAcc{}
}

// StageStats is one stage's accumulated account.
type StageStats struct {
	// Stage is the stable stage name.
	Stage string `json:"stage"`
	// Calls is the number of Enter/Exit pairs.
	Calls uint64 `json:"calls"`
	// SelfNs is wall time spent in the stage excluding nested stages —
	// the additive quantity shares are computed from.
	SelfNs int64 `json:"self_ns"`
	// TotalNs is wall time including nested stages.
	TotalNs int64 `json:"total_ns"`
	// SelfAllocBytes is heap allocation attributed to the stage (0 unless
	// the profiler was built WithAllocs).
	SelfAllocBytes uint64 `json:"self_alloc_bytes,omitempty"`
}

// Snapshot returns the per-stage accounts in canonical stage order, omitting
// stages that were never entered. A nil profiler returns nil.
func (p *Profiler) Snapshot() []StageStats {
	if p == nil {
		return nil
	}
	var out []StageStats
	for i := Stage(0); i < numStages; i++ {
		a := p.acc[i]
		if a.calls == 0 {
			continue
		}
		out = append(out, StageStats{
			Stage:          i.String(),
			Calls:          a.calls,
			SelfNs:         a.self.Nanoseconds(),
			TotalNs:        a.total.Nanoseconds(),
			SelfAllocBytes: a.selfAllocB,
		})
	}
	return out
}

// SelfTotal returns the sum of every stage's self time — the portion of the
// run's wall clock the instrumented stages account for.
func (p *Profiler) SelfTotal() time.Duration {
	if p == nil {
		return 0
	}
	var t time.Duration
	for i := range p.acc {
		t += p.acc[i].self
	}
	return t
}
