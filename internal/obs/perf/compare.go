package perf

import (
	"fmt"
	"io"
	"sort"
)

// Comparator semantics, used by `javmm-bench -compare old new` and the CI
// trajectory gate:
//
//   - Deterministic metrics are compared for exact equality. Any difference
//     is a Drift — a behavior change smuggled in as a perf change — and is
//     ALWAYS fatal, even in report-only mode. CI machines can't make timing
//     promises, but they can make this one.
//   - Timing metrics are compared as relative change against per-metric
//     thresholds. Exceeding a threshold is a Regression: fatal by default,
//     advisory in report-only mode (the CI default, since baseline numbers
//     come from a different machine).
//   - Entries present in old but missing from new are Missing and fatal: a
//     shrinking matrix silently hides regressions.

// Thresholds holds the maximum tolerated relative increase per timing
// metric (0.15 = +15%). PagesPerSec is a throughput, so its threshold
// bounds relative *decrease*.
type Thresholds struct {
	NsPerOp         float64
	AllocBytesPerOp float64
	AllocsPerOp     float64
	PagesPerSec     float64
	// MinNsPerOp is a noise floor: ns_per_op changes where both sides are
	// below it are never judged. Sub-ten-nanosecond kernels quantize to
	// integer nanoseconds, so a 2ns -> 3ns wobble would read as +50%.
	MinNsPerOp int64
}

// DefaultThresholds are deliberately below the 20% bound the acceptance
// gate injects: timing noise on a quiet machine is single-digit percent,
// allocation counts are near-exact.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NsPerOp:         0.15,
		AllocBytesPerOp: 0.10,
		AllocsPerOp:     0.10,
		PagesPerSec:     0.15,
		MinNsPerOp:      100,
	}
}

// Delta is one timing-metric change between snapshots.
type Delta struct {
	// Entry is the scenario or kernel name; Metric the timing field.
	Entry  string
	Metric string
	Old    float64
	New    float64
	// Rel is the relative change, signed so that positive is worse
	// (slower, more allocation, less throughput).
	Rel float64
	// Limit is the threshold Rel was judged against.
	Limit float64
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%, limit %.0f%%)",
		d.Entry, d.Metric, d.Old, d.New, d.Rel*100, d.Limit*100)
}

// Drift is one deterministic-metric difference between snapshots.
type Drift struct {
	Entry string
	Field string
	Old   string
	New   string
}

func (d Drift) String() string {
	return fmt.Sprintf("%s %s: %q -> %q", d.Entry, d.Field, d.Old, d.New)
}

// CompareReport is the full outcome of diffing two snapshots.
type CompareReport struct {
	// Drift lists deterministic-metric differences (always fatal).
	Drift []Drift
	// Missing lists entries in old absent from new (always fatal).
	Missing []string
	// Regressions lists timing deltas past their threshold.
	Regressions []Delta
	// Improvements lists timing deltas past the threshold in the good
	// direction (informational).
	Improvements []Delta
	// New lists entries in new absent from old (informational).
	New []string
}

// OK reports whether the comparison passes. With reportOnly, timing
// regressions are tolerated; deterministic drift and missing entries never
// are.
func (r *CompareReport) OK(reportOnly bool) bool {
	if len(r.Drift) > 0 || len(r.Missing) > 0 {
		return false
	}
	return reportOnly || len(r.Regressions) == 0
}

// Compare diffs new against old. Both snapshots must carry the same schema
// (enforced at read time) and seed; a seed mismatch is reported as drift on
// the snapshot itself.
func Compare(old, new *Snapshot, th Thresholds) *CompareReport {
	old.Normalize()
	new.Normalize()
	r := &CompareReport{}
	if old.Seed != new.Seed {
		r.Drift = append(r.Drift, Drift{
			Entry: "snapshot", Field: "seed",
			Old: fmt.Sprint(old.Seed), New: fmt.Sprint(new.Seed),
		})
	}

	newScen := make(map[string]*Scenario, len(new.Scenarios))
	for i := range new.Scenarios {
		newScen[new.Scenarios[i].Name] = &new.Scenarios[i]
	}
	oldScen := make(map[string]bool, len(old.Scenarios))
	for i := range old.Scenarios {
		sc := &old.Scenarios[i]
		oldScen[sc.Name] = true
		ns, ok := newScen[sc.Name]
		if !ok {
			r.Missing = append(r.Missing, sc.Name)
			continue
		}
		r.Drift = append(r.Drift, diffDeterministic(sc.Name, sc.Deterministic, ns.Deterministic)...)
		r.judgeTiming(sc.Name, sc.Timing, ns.Timing, th)
	}
	for i := range new.Scenarios {
		if !oldScen[new.Scenarios[i].Name] {
			r.New = append(r.New, new.Scenarios[i].Name)
		}
	}

	newKern := make(map[string]*Kernel, len(new.Kernels))
	for i := range new.Kernels {
		newKern[new.Kernels[i].Name] = &new.Kernels[i]
	}
	oldKern := make(map[string]bool, len(old.Kernels))
	for i := range old.Kernels {
		k := &old.Kernels[i]
		oldKern[k.Name] = true
		nk, ok := newKern[k.Name]
		if !ok {
			r.Missing = append(r.Missing, k.Name)
			continue
		}
		r.Drift = append(r.Drift, diffKernelDet(k.Name, k.Deterministic, nk.Deterministic)...)
		r.judgeTiming(k.Name, k.Timing, nk.Timing, th)
	}
	for i := range new.Kernels {
		if !oldKern[new.Kernels[i].Name] {
			r.New = append(r.New, new.Kernels[i].Name)
		}
	}
	sort.Strings(r.Missing)
	sort.Strings(r.New)
	return r
}

// diffDeterministic compares every field of the deterministic block.
func diffDeterministic(entry string, o, n Deterministic) []Drift {
	var out []Drift
	add := func(field string, ov, nv any) {
		if ov != nv {
			out = append(out, Drift{Entry: entry, Field: field,
				Old: fmt.Sprint(ov), New: fmt.Sprint(nv)})
		}
	}
	add("mode", o.Mode, n.Mode)
	add("workload", o.Workload, n.Workload)
	add("codec", o.Codec, n.Codec)
	add("total_virtual_ns", o.TotalVirtualNs, n.TotalVirtualNs)
	add("vm_downtime_ns", o.VMDowntimeNs, n.VMDowntimeNs)
	add("workload_downtime_ns", o.WorkloadDowntimeNs, n.WorkloadDowntimeNs)
	add("iterations", o.Iterations, n.Iterations)
	add("pages_sent", o.PagesSent, n.PagesSent)
	add("pages_skipped", o.PagesSkipped, n.PagesSkipped)
	add("bytes_on_wire", o.BytesOnWire, n.BytesOnWire)
	add("post_copy_faults", o.PostCopyFaults, n.PostCopyFaults)
	add("enforced_gc", o.EnforcedGC, n.EnforcedGC)
	add("rolling_digest", o.RollingDigest, n.RollingDigest)
	return out
}

// diffKernelDet compares kernel check values key by key.
func diffKernelDet(entry string, o, n map[string]int64) []Drift {
	var out []Drift
	keys := make([]string, 0, len(o)+len(n))
	seen := make(map[string]bool)
	for k := range o {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range n {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ov, ook := o[k]
		nv, nok := n[k]
		if ook != nok || ov != nv {
			d := Drift{Entry: entry, Field: k}
			if ook {
				d.Old = fmt.Sprint(ov)
			} else {
				d.Old = "<absent>"
			}
			if nok {
				d.New = fmt.Sprint(nv)
			} else {
				d.New = "<absent>"
			}
			out = append(out, d)
		}
	}
	return out
}

// judgeTiming classifies each timing metric's relative change.
func (r *CompareReport) judgeTiming(entry string, o, n Timing, th Thresholds) {
	judge := func(metric string, ov, nv, limit float64, higherIsWorse bool) {
		if ov == 0 || limit <= 0 {
			return
		}
		rel := (nv - ov) / ov
		if !higherIsWorse {
			rel = -rel
		}
		d := Delta{Entry: entry, Metric: metric, Old: ov, New: nv, Rel: rel, Limit: limit}
		switch {
		case rel > limit:
			r.Regressions = append(r.Regressions, d)
		case rel < -limit:
			r.Improvements = append(r.Improvements, d)
		}
	}
	if o.NsPerOp >= th.MinNsPerOp || n.NsPerOp >= th.MinNsPerOp {
		judge("ns_per_op", float64(o.NsPerOp), float64(n.NsPerOp), th.NsPerOp, true)
	}
	judge("alloc_bytes_per_op", float64(o.AllocBytesPerOp), float64(n.AllocBytesPerOp), th.AllocBytesPerOp, true)
	judge("allocs_per_op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), th.AllocsPerOp, true)
	judge("pages_per_sec", o.PagesPerSec, n.PagesPerSec, th.PagesPerSec, false)
}

// WriteReport renders the comparison for humans, sections in severity order.
func WriteReport(w io.Writer, r *CompareReport, reportOnly bool) {
	if len(r.Drift) > 0 {
		fmt.Fprintf(w, "DETERMINISTIC DRIFT (%d) — fatal:\n", len(r.Drift))
		for _, d := range r.Drift {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(w, "MISSING ENTRIES (%d) — fatal:\n", len(r.Missing))
		for _, m := range r.Missing {
			fmt.Fprintf(w, "  %s\n", m)
		}
	}
	if len(r.Regressions) > 0 {
		verdict := "fatal"
		if reportOnly {
			verdict = "report-only"
		}
		fmt.Fprintf(w, "TIMING REGRESSIONS (%d) — %s:\n", len(r.Regressions), verdict)
		for _, d := range r.Regressions {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(r.Improvements) > 0 {
		fmt.Fprintf(w, "improvements (%d):\n", len(r.Improvements))
		for _, d := range r.Improvements {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(r.New) > 0 {
		fmt.Fprintf(w, "new entries (%d):\n", len(r.New))
		for _, n := range r.New {
			fmt.Fprintf(w, "  %s\n", n)
		}
	}
	if r.OK(reportOnly) && len(r.Drift)+len(r.Missing)+len(r.Regressions) == 0 {
		fmt.Fprintln(w, "comparison clean: no drift, no regressions")
	}
}
