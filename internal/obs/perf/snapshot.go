package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SchemaVersion identifies the snapshot wire format. Comparators refuse to
// diff snapshots with mismatched schemas rather than guessing.
const SchemaVersion = "javmm-bench/v1"

// Snapshot is one point on the performance trajectory: the output of a full
// javmm-bench run, committed to the repo as BENCH_NNNN.json once per
// perf-relevant PR. Every metric inside is classified as either
// deterministic (a function of the seed alone — byte-identical across runs
// and machines, compared for exact equality) or timing (a property of the
// machine and the moment — compared against per-metric thresholds).
type Snapshot struct {
	// Schema is always SchemaVersion.
	Schema string `json:"schema"`
	// Label is a free-form tag for the run ("baseline", a git describe…).
	Label string `json:"label,omitempty"`
	// Seed is the single deterministic seed the whole matrix ran at.
	Seed int64 `json:"seed"`
	// Go/OS/Arch describe the toolchain that produced the timing numbers;
	// informational only, never compared.
	Go   string `json:"go,omitempty"`
	OS   string `json:"os,omitempty"`
	Arch string `json:"arch,omitempty"`
	// Scenarios are the end-to-end matrix entries, sorted by name.
	Scenarios []Scenario `json:"scenarios"`
	// Kernels are the hot-loop microbenchmarks, sorted by name.
	Kernels []Kernel `json:"kernels"`
}

// Scenario is one end-to-end migration run of the matrix.
type Scenario struct {
	// Name is the stable matrix key, e.g. "e2e/derby/javmm/raw".
	Name string `json:"name"`
	// Deterministic holds the seed-determined outcome of the run.
	Deterministic Deterministic `json:"deterministic"`
	// Timing holds the machine-dependent real-clock measurements.
	Timing Timing `json:"timing"`
	// Stages is the per-stage wall/allocation breakdown from the
	// instrumented accounting run, in canonical stage order.
	Stages []StageShare `json:"stages,omitempty"`
}

// Kernel is one microbenchmark (a hot loop measured in isolation).
type Kernel struct {
	// Name is the stable kernel key, e.g. "kernel/mem/page-digest-4k".
	Name string `json:"name"`
	// Deterministic is an optional seed-determined check value (e.g. the
	// digest the kernel computed) proving the kernel did the same work.
	Deterministic map[string]int64 `json:"deterministic,omitempty"`
	Timing        Timing           `json:"timing"`
}

// Deterministic is the seed-determined section of a scenario: every field is
// a pure function of (seed, config) under the virtual clock, so two runs of
// the same binary — or of two binaries with behaviorally identical engines —
// must agree exactly. Any drift here is a correctness change, not noise.
type Deterministic struct {
	Mode               string `json:"mode"`
	Workload           string `json:"workload"`
	Codec              string `json:"codec"`
	TotalVirtualNs     int64  `json:"total_virtual_ns"`
	VMDowntimeNs       int64  `json:"vm_downtime_ns"`
	WorkloadDowntimeNs int64  `json:"workload_downtime_ns"`
	Iterations         int    `json:"iterations"`
	PagesSent          int64  `json:"pages_sent"`
	PagesSkipped       int64  `json:"pages_skipped"`
	BytesOnWire        int64  `json:"bytes_on_wire"`
	PostCopyFaults     int64  `json:"post_copy_faults"`
	EnforcedGC         bool   `json:"enforced_gc"`
	// RollingDigest folds the destination's final per-page digests into one
	// value (hex) — the strongest cheap witness that page *content* matched.
	RollingDigest string `json:"rolling_digest,omitempty"`
}

// Timing is the machine-dependent section: real-clock medians over Runs
// repetitions. Compared with per-metric relative thresholds, never equality.
type Timing struct {
	// Runs is how many timed repetitions the medians were taken over.
	Runs int `json:"runs"`
	// NsPerOp is the median wall time of one operation (one full migration
	// for scenarios; one kernel iteration for kernels).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocBytesPerOp / AllocsPerOp are per-operation heap allocation.
	AllocBytesPerOp int64 `json:"alloc_bytes_per_op"`
	AllocsPerOp     int64 `json:"allocs_per_op"`
	// PagesPerSec is throughput for page-oriented operations (0 when not
	// applicable), derived as pages-processed / wall-seconds.
	PagesPerSec float64 `json:"pages_per_sec,omitempty"`
}

// StageShare is one stage's slice of a scenario's instrumented run.
type StageShare struct {
	Stage string `json:"stage"`
	Calls uint64 `json:"calls"`
	// SelfNs / TotalNs mirror StageStats.
	SelfNs  int64 `json:"self_ns"`
	TotalNs int64 `json:"total_ns"`
	// AllocBytes is self-attributed heap allocation.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Share is SelfNs over the instrumented run's wall time, in [0,1].
	// Informational: shares come from the accounting run, not the timing
	// runs, and are never gated on.
	Share float64 `json:"share"`
}

// Normalize sorts the snapshot into canonical order (scenarios and kernels
// by name, kernel deterministic keys are maps so they sort at encode time).
func (s *Snapshot) Normalize() {
	sort.Slice(s.Scenarios, func(i, j int) bool { return s.Scenarios[i].Name < s.Scenarios[j].Name })
	sort.Slice(s.Kernels, func(i, j int) bool { return s.Kernels[i].Name < s.Kernels[j].Name })
}

// WriteSnapshot writes the snapshot as indented JSON. The snapshot is
// normalized first, so the same content always serializes identically.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	s.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot and checks its schema version.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("perf: reading snapshot: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: snapshot schema %q, want %q", s.Schema, SchemaVersion)
	}
	s.Normalize()
	return &s, nil
}

// ReadSnapshotFile reads a snapshot from disk.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// detSection is the deterministic-only projection serialized by
// DeterministicBytes.
type detSection struct {
	Schema    string `json:"schema"`
	Seed      int64  `json:"seed"`
	Scenarios []struct {
		Name          string        `json:"name"`
		Deterministic Deterministic `json:"deterministic"`
	} `json:"scenarios"`
	Kernels []struct {
		Name          string           `json:"name"`
		Deterministic map[string]int64 `json:"deterministic,omitempty"`
	} `json:"kernels"`
}

// DeterministicBytes serializes only the deterministic sections of the
// snapshot, canonically. Two runs at the same seed must produce byte-equal
// results here — this is what the harness's self-check and CI assert.
func (s *Snapshot) DeterministicBytes() []byte {
	s.Normalize()
	var d detSection
	d.Schema = s.Schema
	d.Seed = s.Seed
	for _, sc := range s.Scenarios {
		d.Scenarios = append(d.Scenarios, struct {
			Name          string        `json:"name"`
			Deterministic Deterministic `json:"deterministic"`
		}{sc.Name, sc.Deterministic})
	}
	for _, k := range s.Kernels {
		d.Kernels = append(d.Kernels, struct {
			Name          string           `json:"name"`
			Deterministic map[string]int64 `json:"deterministic,omitempty"`
		}{k.Name, k.Deterministic})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		// Plain data structs with no cycles or unsupported types: Encode
		// cannot fail without a programming error.
		panic("perf: encoding deterministic section: " + err.Error())
	}
	return buf.Bytes()
}

// AnalyzeSchemaVersion identifies the javmm-analyze -json document format.
const AnalyzeSchemaVersion = "javmm-analyze/v1"

// AnalyzeDoc is the machine-readable output of javmm-analyze -json. It
// shares the Deterministic metric block with bench snapshots, so trajectory
// tooling can diff an analyze run against a bench scenario directly.
type AnalyzeDoc struct {
	Schema string `json:"schema"`
	// Source describes the analyzed input (spec string for -run).
	Source string `json:"source"`
	Seed   int64  `json:"seed"`
	// Deterministic is the same block a bench scenario carries.
	Deterministic Deterministic `json:"deterministic"`
	// Components is downtime attribution: component name → nanoseconds,
	// sorted by key at encode time (Go maps marshal with sorted keys).
	Components map[string]int64 `json:"components,omitempty"`
}

// WriteAnalyzeDoc writes the document as indented JSON.
func WriteAnalyzeDoc(w io.Writer, d *AnalyzeDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadAnalyzeDoc parses a document written by WriteAnalyzeDoc.
func ReadAnalyzeDoc(r io.Reader) (*AnalyzeDoc, error) {
	var d AnalyzeDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("perf: reading analyze doc: %w", err)
	}
	if d.Schema != AnalyzeSchemaVersion {
		return nil, fmt.Errorf("perf: analyze doc schema %q, want %q", d.Schema, AnalyzeSchemaVersion)
	}
	return &d, nil
}
