package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilProfilerIsNoop(t *testing.T) {
	var p *Profiler
	p.Enter(StageSkipPolicy)
	p.Exit()
	p.Time(StageWireCodec, func() {})
	p.Reset()
	if got := p.Snapshot(); got != nil {
		t.Fatalf("nil profiler Snapshot = %v, want nil", got)
	}
	if got := p.SelfTotal(); got != 0 {
		t.Fatalf("nil profiler SelfTotal = %v, want 0", got)
	}
}

func TestProfilerCountsAndStageNames(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 3; i++ {
		p.Time(StageWireCodec, func() {})
	}
	p.Time(StagePageSink, func() {})
	stats := p.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(stats), stats)
	}
	// Canonical order: wire-codec (1) before page-sink (4).
	if stats[0].Stage != "wire-codec" || stats[0].Calls != 3 {
		t.Errorf("stats[0] = %+v, want wire-codec x3", stats[0])
	}
	if stats[1].Stage != "page-sink" || stats[1].Calls != 1 {
		t.Errorf("stats[1] = %+v, want page-sink x1", stats[1])
	}
}

func TestProfilerSelfTimeExcludesNested(t *testing.T) {
	p := NewProfiler()
	p.Enter(StageDigestAudit)
	busyWait(2 * time.Millisecond)
	p.Enter(StageWireCodec)
	busyWait(10 * time.Millisecond)
	p.Exit()
	busyWait(2 * time.Millisecond)
	p.Exit()

	stats := p.Snapshot()
	var audit, codec StageStats
	for _, s := range stats {
		switch s.Stage {
		case "digest-audit":
			audit = s
		case "wire-codec":
			codec = s
		}
	}
	if audit.TotalNs <= codec.TotalNs {
		t.Errorf("audit total %d should exceed nested codec total %d", audit.TotalNs, codec.TotalNs)
	}
	// The audit stage itself only busy-waited ~4ms; the nested codec
	// ~10ms. Self-time must strip the nested portion.
	if audit.SelfNs >= codec.SelfNs {
		t.Errorf("audit self %d should be below codec self %d after nesting subtraction",
			audit.SelfNs, codec.SelfNs)
	}
	if sum := audit.SelfNs + codec.SelfNs; sum > audit.TotalNs {
		t.Errorf("self times (%d) exceed outer total (%d): not additive", sum, audit.TotalNs)
	}
	if got := p.SelfTotal().Nanoseconds(); got != audit.SelfNs+codec.SelfNs {
		t.Errorf("SelfTotal = %d, want %d", got, audit.SelfNs+codec.SelfNs)
	}
}

func busyWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

func TestProfilerAllocTracking(t *testing.T) {
	p := NewProfiler(WithAllocs())
	var sink [][]byte
	p.Time(StagePageSink, func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	stats := p.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("got %d stages, want 1", len(stats))
	}
	if stats[0].SelfAllocBytes < 64*4096 {
		t.Errorf("SelfAllocBytes = %d, want >= %d", stats[0].SelfAllocBytes, 64*4096)
	}
}

func TestProfilerExitOnEmptyStack(t *testing.T) {
	p := NewProfiler()
	p.Exit() // must not panic
	if got := len(p.Snapshot()); got != 0 {
		t.Fatalf("spurious stage recorded: %d", got)
	}
}

func TestProfilerReset(t *testing.T) {
	p := NewProfiler()
	p.Time(StageSkipPolicy, func() {})
	p.Reset()
	if got := p.Snapshot(); got != nil {
		t.Fatalf("after Reset, Snapshot = %v, want nil", got)
	}
}

func TestStageStringStable(t *testing.T) {
	want := []string{
		"skip-policy", "wire-codec", "stop-policy", "suspension-protocol",
		"page-sink", "lazy-fetch", "digest-audit",
	}
	stages := Stages()
	if len(stages) != len(want) {
		t.Fatalf("Stages() has %d entries, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Errorf("out-of-range stage should stringify as unknown")
	}
}

func testSnapshot() *Snapshot {
	return &Snapshot{
		Schema: SchemaVersion,
		Seed:   1,
		Scenarios: []Scenario{
			{
				Name: "e2e/derby/javmm/raw",
				Deterministic: Deterministic{
					Mode: "javmm", Workload: "derby", Codec: "raw",
					TotalVirtualNs: 100e9, VMDowntimeNs: 2e9,
					WorkloadDowntimeNs: 5e9, Iterations: 7,
					PagesSent: 40000, PagesSkipped: 12000,
					BytesOnWire: 40000 * 4096, RollingDigest: "deadbeef",
				},
				Timing: Timing{Runs: 5, NsPerOp: 1e8, AllocBytesPerOp: 1 << 20, AllocsPerOp: 5000, PagesPerSec: 4e5},
				Stages: []StageShare{{Stage: "wire-codec", Calls: 40000, SelfNs: 3e7, TotalNs: 3e7, Share: 0.3}},
			},
			{
				Name: "e2e/derby/xen/raw",
				Deterministic: Deterministic{
					Mode: "xen", Workload: "derby", Codec: "raw",
					TotalVirtualNs: 120e9, VMDowntimeNs: 9e9,
					WorkloadDowntimeNs: 9e9, Iterations: 12,
					PagesSent: 90000, BytesOnWire: 90000 * 4096,
					RollingDigest: "cafebabe",
				},
				Timing: Timing{Runs: 5, NsPerOp: 2e8, AllocBytesPerOp: 2 << 20, AllocsPerOp: 9000, PagesPerSec: 4.5e5},
			},
		},
		Kernels: []Kernel{
			{
				Name:          "kernel/mem/page-digest-4k",
				Deterministic: map[string]int64{"digest": 12345},
				Timing:        Timing{Runs: 7, NsPerOp: 900, AllocBytesPerOp: 0, AllocsPerOp: 0},
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteSnapshot(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("write -> read -> write not byte-identical:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestReadSnapshotRejectsWrongSchema(t *testing.T) {
	_, err := ReadSnapshot(strings.NewReader(`{"schema":"javmm-bench/v0","seed":1,"scenarios":[],"kernels":[]}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestDeterministicBytesIgnoresTiming(t *testing.T) {
	a := testSnapshot()
	b := testSnapshot()
	// Perturb only timing: deterministic bytes must not move.
	b.Scenarios[0].Timing.NsPerOp *= 3
	b.Kernels[0].Timing.AllocsPerOp = 999
	b.Scenarios[0].Stages[0].SelfNs = 1
	if !bytes.Equal(a.DeterministicBytes(), b.DeterministicBytes()) {
		t.Errorf("timing perturbation changed deterministic bytes")
	}
	// Perturb a deterministic field: bytes must move.
	b.Scenarios[0].Deterministic.PagesSent++
	if bytes.Equal(a.DeterministicBytes(), b.DeterministicBytes()) {
		t.Errorf("deterministic perturbation did not change deterministic bytes")
	}
}

func TestDeterministicBytesOrderIndependent(t *testing.T) {
	a := testSnapshot()
	b := testSnapshot()
	b.Scenarios[0], b.Scenarios[1] = b.Scenarios[1], b.Scenarios[0]
	if !bytes.Equal(a.DeterministicBytes(), b.DeterministicBytes()) {
		t.Errorf("scenario order changed deterministic bytes")
	}
}

func TestCompareCleanSnapshotsPass(t *testing.T) {
	r := Compare(testSnapshot(), testSnapshot(), DefaultThresholds())
	if !r.OK(false) {
		t.Fatalf("identical snapshots should compare clean: %+v", r)
	}
	if len(r.Drift)+len(r.Missing)+len(r.Regressions)+len(r.Improvements) != 0 {
		t.Fatalf("identical snapshots produced findings: %+v", r)
	}
}

func TestCompareCatchesTimingRegression(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	// +25% ns/op: past the 15% threshold, must regress.
	new.Scenarios[0].Timing.NsPerOp = old.Scenarios[0].Timing.NsPerOp * 5 / 4
	r := Compare(old, new, DefaultThresholds())
	if r.OK(false) {
		t.Fatalf("+25%% ns_per_op not flagged: %+v", r)
	}
	if len(r.Regressions) != 1 || r.Regressions[0].Metric != "ns_per_op" {
		t.Fatalf("regressions = %+v, want one ns_per_op", r.Regressions)
	}
	// Report-only tolerates timing regressions.
	if !r.OK(true) {
		t.Errorf("report-only should tolerate timing regressions")
	}
}

func TestCompareNsNoiseFloor(t *testing.T) {
	// A 2ns -> 3ns wobble is integer-granularity noise, not a +50%
	// regression: below MinNsPerOp the ns_per_op judgment is skipped.
	old := testSnapshot()
	new := testSnapshot()
	old.Kernels[0].Timing.NsPerOp = 2
	new.Kernels[0].Timing.NsPerOp = 3
	r := Compare(old, new, DefaultThresholds())
	if !r.OK(false) {
		t.Fatalf("sub-floor ns wobble flagged: %+v", r.Regressions)
	}
	// Crossing the floor re-enables the judgment.
	new.Kernels[0].Timing.NsPerOp = 300
	r = Compare(old, new, DefaultThresholds())
	if len(r.Regressions) != 1 || r.Regressions[0].Metric != "ns_per_op" {
		t.Fatalf("above-floor regression not flagged: %+v", r.Regressions)
	}
}

func TestCompareThroughputDirection(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	// pages/sec dropping 25% is a regression even though the number shrank.
	new.Scenarios[0].Timing.PagesPerSec = old.Scenarios[0].Timing.PagesPerSec * 0.75
	r := Compare(old, new, DefaultThresholds())
	if len(r.Regressions) != 1 || r.Regressions[0].Metric != "pages_per_sec" {
		t.Fatalf("regressions = %+v, want one pages_per_sec", r.Regressions)
	}

	// And rising 25% is an improvement.
	new2 := testSnapshot()
	new2.Scenarios[0].Timing.PagesPerSec = old.Scenarios[0].Timing.PagesPerSec * 1.25
	r2 := Compare(old, new2, DefaultThresholds())
	if len(r2.Regressions) != 0 || len(r2.Improvements) != 1 {
		t.Fatalf("want one improvement, got %+v", r2)
	}
}

func TestCompareDeterministicDriftAlwaysFatal(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Scenarios[1].Deterministic.BytesOnWire += 4096
	r := Compare(old, new, DefaultThresholds())
	if len(r.Drift) != 1 {
		t.Fatalf("drift = %+v, want one entry", r.Drift)
	}
	if r.OK(false) || r.OK(true) {
		t.Fatalf("deterministic drift must fail in both modes")
	}
}

func TestCompareKernelDigestDrift(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Kernels[0].Deterministic["digest"] = 54321
	r := Compare(old, new, DefaultThresholds())
	if len(r.Drift) != 1 || r.Drift[0].Entry != "kernel/mem/page-digest-4k" {
		t.Fatalf("drift = %+v, want kernel digest drift", r.Drift)
	}
	if r.OK(true) {
		t.Fatalf("kernel digest drift must fail even report-only")
	}
}

func TestCompareMissingEntryFatal(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Scenarios = new.Scenarios[:1]
	r := Compare(old, new, DefaultThresholds())
	if len(r.Missing) != 1 || r.Missing[0] != "e2e/derby/xen/raw" {
		t.Fatalf("missing = %v", r.Missing)
	}
	if r.OK(true) {
		t.Fatalf("missing entries must fail even report-only")
	}
}

func TestCompareSeedMismatchIsDrift(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Seed = 2
	r := Compare(old, new, DefaultThresholds())
	if len(r.Drift) == 0 || r.Drift[0].Field != "seed" {
		t.Fatalf("seed mismatch not reported as drift: %+v", r.Drift)
	}
}

func TestCompareNewEntryInformational(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Kernels = append(new.Kernels, Kernel{Name: "kernel/mem/extra", Timing: Timing{Runs: 1, NsPerOp: 10}})
	r := Compare(old, new, DefaultThresholds())
	if !r.OK(false) {
		t.Fatalf("new entries must not fail comparison: %+v", r)
	}
	if len(r.New) != 1 || r.New[0] != "kernel/mem/extra" {
		t.Fatalf("new = %v", r.New)
	}
}

func TestWriteReportMentionsSections(t *testing.T) {
	old := testSnapshot()
	new := testSnapshot()
	new.Scenarios[0].Timing.NsPerOp *= 2
	new.Scenarios[1].Deterministic.PagesSent++
	r := Compare(old, new, DefaultThresholds())
	var buf bytes.Buffer
	WriteReport(&buf, r, true)
	out := buf.String()
	for _, want := range []string{"DETERMINISTIC DRIFT", "TIMING REGRESSIONS", "report-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeDocRoundTrip(t *testing.T) {
	d := &AnalyzeDoc{
		Schema: AnalyzeSchemaVersion,
		Source: "workload=derby mode=javmm seed=1",
		Seed:   1,
		Deterministic: Deterministic{
			Mode: "javmm", Workload: "derby", Codec: "raw",
			TotalVirtualNs: 100e9, PagesSent: 40000,
		},
		Components: map[string]int64{"stop-and-copy": 2e9, "handshake": 1e8},
	}
	var buf bytes.Buffer
	if err := WriteAnalyzeDoc(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnalyzeDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteAnalyzeDoc(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("analyze doc round trip not byte-identical:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}
