package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Exporters for recorded traces. Both are fully deterministic: events are
// written in emission order, attribute keys in the order the producer gave
// them, and all numbers with fixed formatting — so two runs of the same
// seeded simulation export byte-identical files.

// WriteJSONL writes one JSON object per event: the flat log form, greppable
// and easy to load into analysis scripts.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		bw.WriteString(`{"seq":`)
		bw.WriteString(strconv.Itoa(e.Seq))
		bw.WriteString(`,"at_ns":`)
		bw.WriteString(strconv.FormatInt(int64(e.At), 10))
		bw.WriteString(`,"track":`)
		writeJSONString(bw, e.Track)
		bw.WriteString(`,"kind":`)
		writeJSONString(bw, string(e.Kind))
		bw.WriteString(`,"name":`)
		writeJSONString(bw, e.Name)
		bw.WriteString(`,"phase":`)
		writeJSONString(bw, string(e.Phase))
		if len(e.Attrs) > 0 {
			bw.WriteString(`,"attrs":`)
			writeAttrs(bw, e.Attrs)
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// WriteChromeTrace writes the events as Chrome trace_event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in Perfetto or
// chrome://tracing. Virtual nanoseconds map to trace microseconds; each
// obs track becomes one thread of pid 1, named via thread_name metadata.
// Span begin/end pairs become ph "B"/"E"; instants become ph "i" with
// thread scope.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)

	// Assign tids by first appearance so the mapping is deterministic, and
	// name each thread after its track.
	tids := make(map[string]int)
	var order []string
	for _, e := range events {
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids) + 1
			order = append(order, e.Track)
		}
	}
	first := true
	for _, track := range order {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tids[track]))
		bw.WriteString(`,"args":{"name":`)
		writeJSONString(bw, track)
		bw.WriteString(`}}`)
	}

	for _, e := range events {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"name":`)
		writeJSONString(bw, e.Name)
		bw.WriteString(`,"cat":`)
		writeJSONString(bw, string(e.Kind))
		bw.WriteString(`,"ph":"`)
		switch e.Phase {
		case PhaseBegin:
			bw.WriteByte('B')
		case PhaseEnd:
			bw.WriteByte('E')
		default:
			bw.WriteByte('i')
		}
		bw.WriteString(`","ts":`)
		writeMicros(bw, e.At)
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tids[e.Track]))
		if e.Phase == PhaseInstant {
			bw.WriteString(`,"s":"t"`)
		}
		if len(e.Attrs) > 0 {
			bw.WriteString(`,"args":`)
			writeAttrs(bw, e.Attrs)
		}
		bw.WriteByte('}')
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// TraceLane is one process row of a merged multi-plane Chrome trace: a named
// producer (a VM, the fabric) with its own recorded event stream.
type TraceLane struct {
	Name   string
	Events []Event
}

// WriteChromeTraceLanes writes several event streams as one Chrome trace:
// lane i becomes pid i+1 (named via process_name metadata), and each lane's
// obs tracks become its threads, exactly as in WriteChromeTrace. Perfetto
// renders the lanes as stacked process groups — the fleet timeline with one
// row per VM plus the fabric. Output is byte-deterministic: lanes in the
// order given, tids by first appearance within each lane, events in each
// lane's emission order.
func WriteChromeTraceLanes(w io.Writer, lanes []TraceLane) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	laneTids := make([]map[string]int, len(lanes))
	for li, lane := range lanes {
		pid := li + 1
		if lane.Name != "" {
			comma()
			bw.WriteString(`{"name":"process_name","ph":"M","ts":0,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"args":{"name":`)
			writeJSONString(bw, lane.Name)
			bw.WriteString(`}}`)
		}
		tids := make(map[string]int)
		var order []string
		for _, e := range lane.Events {
			if _, ok := tids[e.Track]; !ok {
				tids[e.Track] = len(tids) + 1
				order = append(order, e.Track)
			}
		}
		laneTids[li] = tids
		for _, track := range order {
			comma()
			bw.WriteString(`{"name":"thread_name","ph":"M","ts":0,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.Itoa(tids[track]))
			bw.WriteString(`,"args":{"name":`)
			writeJSONString(bw, track)
			bw.WriteString(`}}`)
		}
	}
	for li, lane := range lanes {
		pid := strconv.Itoa(li + 1)
		tids := laneTids[li]
		for _, e := range lane.Events {
			comma()
			bw.WriteString(`{"name":`)
			writeJSONString(bw, e.Name)
			bw.WriteString(`,"cat":`)
			writeJSONString(bw, string(e.Kind))
			bw.WriteString(`,"ph":"`)
			switch e.Phase {
			case PhaseBegin:
				bw.WriteByte('B')
			case PhaseEnd:
				bw.WriteByte('E')
			default:
				bw.WriteByte('i')
			}
			bw.WriteString(`","ts":`)
			writeMicros(bw, e.At)
			bw.WriteString(`,"pid":`)
			bw.WriteString(pid)
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.Itoa(tids[e.Track]))
			if e.Phase == PhaseInstant {
				bw.WriteString(`,"s":"t"`)
			}
			if len(e.Attrs) > 0 {
				bw.WriteString(`,"args":`)
				writeAttrs(bw, e.Attrs)
			}
			bw.WriteByte('}')
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeMicros renders a virtual duration as trace microseconds, keeping
// sub-microsecond precision as decimals ("1234.567").
func writeMicros(w *bufio.Writer, d time.Duration) {
	us := int64(d) / 1000
	ns := int64(d) % 1000
	w.WriteString(strconv.FormatInt(us, 10))
	if ns != 0 {
		fmt.Fprintf(w, ".%03d", ns)
	}
}

func writeAttrs(w *bufio.Writer, attrs []Attr) {
	w.WriteByte('{')
	for i, a := range attrs {
		if i > 0 {
			w.WriteByte(',')
		}
		writeJSONString(w, a.Key)
		w.WriteByte(':')
		writeJSONValue(w, a.Val)
	}
	w.WriteByte('}')
}

func writeJSONValue(w *bufio.Writer, v any) {
	switch x := v.(type) {
	case nil:
		w.WriteString("null")
	case bool:
		w.WriteString(strconv.FormatBool(x))
	case string:
		writeJSONString(w, x)
	case int:
		w.WriteString(strconv.FormatInt(int64(x), 10))
	case int64:
		w.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		w.WriteString(strconv.FormatUint(x, 10))
	case time.Duration:
		w.WriteString(strconv.FormatInt(int64(x), 10))
	case float64:
		w.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	default:
		writeJSONString(w, fmt.Sprintf("%v", x))
	}
}

// writeJSONString writes s as a JSON string literal. The escaping covers
// everything the simulator emits (ASCII names and type strings) plus the
// general cases, without depending on encoding/json.
func writeJSONString(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '\t':
			w.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(w, `\u%04x`, r)
			} else {
				w.WriteRune(r)
			}
		}
	}
	w.WriteByte('"')
}
