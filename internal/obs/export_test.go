package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"javmm/internal/simclock"
)

// buildTrace records a small representative trace: nested spans on one
// track, an instant with attributes of every supported value type, and a
// second track.
func buildTrace() *Tracer {
	c := simclock.New()
	tr := New(c)
	run := tr.Begin(TrackMigration, KindMigration, "migrate javmm", Str("mode", "javmm"))
	c.Advance(1500 * time.Nanosecond)
	it := tr.Begin(TrackMigration, KindIteration, "iteration 1", Int("index", 1))
	c.Advance(time.Millisecond)
	tr.Emit(TrackJVM, KindGC, "minor GC", nil,
		Bool("enforced", false), Uint64("garbage", 12345), Float("frac", 0.25),
		Dur("pause", 70*time.Millisecond), Str("quote", `a"b`))
	it.End(Uint64("pages_sent", 100))
	run.End()
	return tr
}

func TestWriteJSONLOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		for _, k := range []string{"seq", "at_ns", "track", "kind", "name", "phase"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("line %d missing %q: %s", i, k, ln)
			}
		}
	}
	// The instant event carries its attrs, string escaping intact.
	var gc map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &gc); err != nil {
		t.Fatal(err)
	}
	attrs := gc["attrs"].(map[string]any)
	if attrs["quote"] != `a"b` {
		t.Fatalf("escaped string round-trip: %v", attrs["quote"])
	}
	if attrs["pause"] != float64(70*time.Millisecond) {
		t.Fatalf("duration attr = %v", attrs["pause"])
	}
}

func TestWriteChromeTraceRequiredFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 2 thread_name metadata + 5 events.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d traceEvents, want 7", len(doc.TraceEvents))
	}
	for i, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("traceEvent %d missing required field %q: %v", i, k, e)
			}
		}
	}
	// Begin/end pairing on the migration thread.
	var phases []string
	for _, e := range doc.TraceEvents {
		if e["ph"] != "M" && e["tid"] == float64(1) {
			phases = append(phases, e["ph"].(string))
		}
	}
	if strings.Join(phases, "") != "BBEE" {
		t.Fatalf("migration-track phases = %v, want nested B B E E", phases)
	}
}

func TestChromeTimestampIsMicroseconds(t *testing.T) {
	c := simclock.New()
	tr := New(c)
	c.Advance(1500 * time.Nanosecond) // 1.5 µs
	tr.Emit(TrackMigration, KindSuspend, "x", nil)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ts":1.500`) {
		t.Fatalf("1.5 µs not rendered as trace microseconds: %s", buf.String())
	}
}

func TestExportsAreDeterministic(t *testing.T) {
	a, b := new(bytes.Buffer), new(bytes.Buffer)
	if err := WriteChromeTrace(a, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(b, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export differs between identical runs")
	}
	a.Reset()
	b.Reset()
	if err := WriteJSONL(a, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(b, buildTrace().Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("jsonl export differs between identical runs")
	}
}

func TestJSONStringEscaping(t *testing.T) {
	c := simclock.New()
	tr := New(c)
	tr.Emit(TrackMigration, Kind("k"), "line\nbreak\ttab\\slash\"quote\x01ctl", nil)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(bytes.TrimRight(buf.Bytes(), "\n"), &obj); err != nil {
		t.Fatalf("escaped output is not valid JSON: %v\n%s", err, buf.String())
	}
	if obj["name"] != "line\nbreak\ttab\\slash\"quote\x01ctl" {
		t.Fatalf("round-trip mismatch: %q", obj["name"])
	}
}
