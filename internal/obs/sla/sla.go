// Package sla prices a migration run against a service-level agreement: the
// application-visible downtime costs a penalty per second, and every
// operation the workload lost to migration interference — the dip the
// paper's Figure 11 timelines show around each run — costs a penalty per
// operation.
//
// Like the attrib package it builds on, sla refuses numbers that do not add
// up: the downtime it prices is the attribution's WorkloadDowntime
// tick-for-tick, the dip integral is an exact sum over the analyzer's
// per-second samples, and Reconcile re-derives the whole cost from its
// inputs and rejects any drift. Fleet tooling (javmm-analyze's fleet mode,
// experiment X15) aggregates per-VM costs with Aggregate.
package sla

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"javmm/internal/obs/attrib"
	"javmm/internal/workload"
)

// Model is the pricing policy. The zero value prices nothing; Default
// returns the reference policy the tools use.
type Model struct {
	// DowntimePenaltyPerSec is the cost of one second of application-visible
	// downtime (the attribution's WorkloadDowntime, which for assisted runs
	// includes the enforced GC and final bitmap update).
	DowntimePenaltyPerSec float64 `json:"downtime_penalty_per_sec"`
	// DipPenaltyPerOp is the cost of one operation lost versus the baseline
	// throughput — the integral of max(0, baseline − observed) over the
	// workload's per-second samples.
	DipPenaltyPerOp float64 `json:"dip_penalty_per_op"`
	// BaselineOps is the expected steady-state throughput in ops/sec. Zero
	// derives it from the samples themselves (the maximum observed second),
	// which under-counts the dip slightly but needs no calibration run.
	BaselineOps float64 `json:"baseline_ops,omitempty"`
}

// Default is the reference pricing policy: one unit per second of downtime,
// a thousandth of a unit per lost operation. Experiments use it so SLA-cost
// columns are comparable across runs.
func Default() Model {
	return Model{DowntimePenaltyPerSec: 1.0, DipPenaltyPerOp: 0.001}
}

// Cost is the priced account of one migration run. Every field is derivable
// from (Model, Attribution, samples); Reconcile re-derives and compares.
type Cost struct {
	VM   string `json:"vm"`
	Mode string `json:"mode"` // effective mode (post-degradation)

	// WorkloadDowntime is copied tick-for-tick from the attribution.
	WorkloadDowntime time.Duration `json:"workload_downtime_ns"`
	DowntimeCost     float64       `json:"downtime_cost"`

	// BaselineOps is the baseline the dip was measured against (the model's,
	// or the derived maximum when the model left it zero). LostOps is the
	// dip integral Σ max(0, baseline − ops) over the samples; DipSeconds
	// counts the seconds that contributed.
	BaselineOps float64 `json:"baseline_ops"`
	LostOps     float64 `json:"lost_ops"`
	DipSeconds  int     `json:"dip_seconds"`
	DipCost     float64 `json:"dip_cost"`

	// Total = DowntimeCost + DipCost, exactly.
	Total float64 `json:"total"`
}

// Build prices one run: vm names the cost row, a is the run's reconciled
// attribution (Build does not re-check it; callers run attrib's Reconcile
// first), and samples is the analyzer's per-second throughput series
// covering the run. Identical inputs produce identical costs, bit for bit —
// the arithmetic is a fixed sequence of float64 operations.
func Build(vm string, m Model, a *attrib.Attribution, samples []workload.Sample) Cost {
	c := Cost{
		VM:               vm,
		Mode:             a.EffectiveMode.String(),
		WorkloadDowntime: a.WorkloadDowntime,
		BaselineOps:      m.BaselineOps,
	}
	if c.BaselineOps == 0 {
		for _, s := range samples {
			if s.Ops > c.BaselineOps {
				c.BaselineOps = s.Ops
			}
		}
	}
	for _, s := range samples {
		if lost := c.BaselineOps - s.Ops; lost > 0 {
			c.LostOps += lost
			c.DipSeconds++
		}
	}
	c.DowntimeCost = c.WorkloadDowntime.Seconds() * m.DowntimePenaltyPerSec
	c.DipCost = c.LostOps * m.DipPenaltyPerOp
	c.Total = c.DowntimeCost + c.DipCost
	return c
}

// Reconcile checks a cost against the inputs it claims to price: the
// downtime must match the attribution tick-for-tick, and every derived
// number must equal a fresh Build of the same inputs exactly (the arithmetic
// is deterministic, so even the floats must be bit-identical). A non-nil
// error means the cost was tampered with or built from different inputs and
// must not be presented.
func (c Cost) Reconcile(m Model, a *attrib.Attribution, samples []workload.Sample) error {
	if c.WorkloadDowntime != a.WorkloadDowntime {
		return fmt.Errorf("sla: cost prices %v of downtime, attribution says %v",
			c.WorkloadDowntime, a.WorkloadDowntime)
	}
	if got := a.EffectiveMode.String(); c.Mode != got {
		return fmt.Errorf("sla: cost mode %q, attribution says %q", c.Mode, got)
	}
	want := Build(c.VM, m, a, samples)
	if c != want {
		return fmt.Errorf("sla: cost does not re-derive from its inputs:\n got %+v\nwant %+v", c, want)
	}
	if c.Total != c.DowntimeCost+c.DipCost {
		return fmt.Errorf("sla: total %v != downtime %v + dip %v",
			c.Total, c.DowntimeCost, c.DipCost)
	}
	return nil
}

// FleetCost aggregates per-VM costs. Sums run in the order given (boot
// order, for fleet results), so aggregation is deterministic.
type FleetCost struct {
	PerVM []Cost `json:"per_vm"`

	DowntimeCost float64 `json:"downtime_cost"`
	DipCost      float64 `json:"dip_cost"`
	LostOps      float64 `json:"lost_ops"`
	Total        float64 `json:"total"`

	// WorstVM is the costliest VM (first wins a tie), "" for an empty fleet.
	WorstVM string `json:"worst_vm,omitempty"`
}

// Aggregate folds per-VM costs into the fleet view.
func Aggregate(costs []Cost) FleetCost {
	f := FleetCost{PerVM: costs}
	worst := -1.0
	for _, c := range costs {
		f.DowntimeCost += c.DowntimeCost
		f.DipCost += c.DipCost
		f.LostOps += c.LostOps
		f.Total += c.Total
		if c.Total > worst {
			worst = c.Total
			f.WorstVM = c.VM
		}
	}
	return f
}

// Reconcile checks the fleet aggregate against its per-VM rows.
func (f FleetCost) Reconcile() error {
	want := Aggregate(f.PerVM)
	if f.DowntimeCost != want.DowntimeCost || f.DipCost != want.DipCost ||
		f.LostOps != want.LostOps || f.Total != want.Total || f.WorstVM != want.WorstVM {
		return fmt.Errorf("sla: fleet aggregate does not re-derive from its rows:\n got %+v\nwant %+v", f, want)
	}
	return nil
}

// WriteJSON exports a fleet cost as indented JSON; ReadJSON parses it back.
func WriteJSON(w io.Writer, f FleetCost) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a fleet cost written by WriteJSON.
func ReadJSON(r io.Reader) (FleetCost, error) {
	var f FleetCost
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return FleetCost{}, fmt.Errorf("sla: parsing fleet cost: %w", err)
	}
	return f, nil
}
