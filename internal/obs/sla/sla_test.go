package sla_test

import (
	"bytes"
	"testing"
	"time"

	"javmm"
	"javmm/internal/migration"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/sla"
	"javmm/internal/workload"
)

// fakeAttribution builds a consistent attribution from a fabricated report.
func fakeAttribution(mode migration.Mode) *attrib.Attribution {
	r := &migration.Report{
		Mode:           mode,
		VMDowntime:     250 * time.Millisecond,
		Resumption:     170 * time.Millisecond,
		FinalUpdate:    6 * time.Millisecond,
		TotalPagesSent: 300,
		Iterations: []migration.IterationStats{
			{Index: 1, Duration: time.Second, PagesSent: 200, BytesOnWire: 200 * 4096},
			{Index: 2, Duration: 100 * time.Millisecond, Last: true, PagesSent: 100,
				BytesOnWire: 100 * 4096},
		},
	}
	return attrib.Build(r, 40*time.Millisecond, nil)
}

func TestBuildPricesDowntimeAndDip(t *testing.T) {
	a := fakeAttribution(migration.ModeVanilla) // downtime = 250ms
	m := sla.Model{DowntimePenaltyPerSec: 10, DipPenaltyPerOp: 0.5, BaselineOps: 100}
	samples := []workload.Sample{
		{Second: 0, Ops: 100}, // at baseline: no dip
		{Second: 1, Ops: 60},  // 40 lost
		{Second: 2, Ops: 0},   // suspended second: 100 lost
		{Second: 3, Ops: 120}, // above baseline: no credit
	}
	c := sla.Build("vm0", m, a, samples)
	if c.WorkloadDowntime != 250*time.Millisecond {
		t.Fatalf("downtime = %v", c.WorkloadDowntime)
	}
	if c.DowntimeCost != 2.5 {
		t.Fatalf("downtime cost = %v, want 2.5", c.DowntimeCost)
	}
	if c.LostOps != 140 || c.DipSeconds != 2 {
		t.Fatalf("lost ops = %v over %d seconds, want 140 over 2", c.LostOps, c.DipSeconds)
	}
	if c.DipCost != 70 {
		t.Fatalf("dip cost = %v, want 70", c.DipCost)
	}
	if c.Total != 72.5 {
		t.Fatalf("total = %v, want 72.5", c.Total)
	}
	if err := c.Reconcile(m, a, samples); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDerivesBaseline(t *testing.T) {
	a := fakeAttribution(migration.ModeVanilla)
	m := sla.Model{DowntimePenaltyPerSec: 1, DipPenaltyPerOp: 1}
	samples := []workload.Sample{{Second: 0, Ops: 80}, {Second: 1, Ops: 50}, {Second: 2, Ops: 90}}
	c := sla.Build("vm0", m, a, samples)
	if c.BaselineOps != 90 {
		t.Fatalf("derived baseline = %v, want 90 (max sample)", c.BaselineOps)
	}
	if c.LostOps != 10+40 {
		t.Fatalf("lost ops = %v, want 50", c.LostOps)
	}
	if err := c.Reconcile(m, a, samples); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileCatchesTampering(t *testing.T) {
	a := fakeAttribution(migration.ModeAppAssisted)
	m := sla.Default()
	samples := []workload.Sample{{Second: 0, Ops: 100}, {Second: 1, Ops: 0}}
	c := sla.Build("vm0", m, a, samples)
	if err := c.Reconcile(m, a, samples); err != nil {
		t.Fatal(err)
	}
	tamper := []func(*sla.Cost){
		func(c *sla.Cost) { c.WorkloadDowntime += time.Nanosecond },
		func(c *sla.Cost) { c.DowntimeCost *= 1.0000001 },
		func(c *sla.Cost) { c.LostOps++ },
		func(c *sla.Cost) { c.DipCost = 0 },
		func(c *sla.Cost) { c.Total += 0.01 },
		func(c *sla.Cost) { c.Mode = "xen" },
	}
	for i, f := range tamper {
		bad := c
		f(&bad)
		if err := bad.Reconcile(m, a, samples); err == nil {
			t.Fatalf("tamper %d went undetected: %+v", i, bad)
		}
	}
}

func TestAggregateAndFleetReconcile(t *testing.T) {
	a := fakeAttribution(migration.ModeVanilla)
	m := sla.Model{DowntimePenaltyPerSec: 4, DipPenaltyPerOp: 1}
	c0 := sla.Build("vm0", m, a, []workload.Sample{{Second: 0, Ops: 0}})
	c1 := sla.Build("vm1", m, a, nil)
	f := sla.Aggregate([]sla.Cost{c0, c1})
	if f.Total != c0.Total+c1.Total {
		t.Fatalf("fleet total = %v, want %v", f.Total, c0.Total+c1.Total)
	}
	if f.WorstVM != "vm0" { // vm0 carries the dip cost on top
		t.Fatalf("worst VM = %q, want vm0", f.WorstVM)
	}
	if err := f.Reconcile(); err != nil {
		t.Fatal(err)
	}
	f.Total += 1
	if err := f.Reconcile(); err == nil {
		t.Fatal("tampered fleet aggregate went undetected")
	}
}

func TestAggregateEmpty(t *testing.T) {
	f := sla.Aggregate(nil)
	if f.Total != 0 || f.WorstVM != "" {
		t.Fatalf("empty fleet = %+v", f)
	}
	if err := f.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := fakeAttribution(migration.ModeAppAssisted)
	m := sla.Default()
	samples := []workload.Sample{{Second: 0, Ops: 100}, {Second: 1, Ops: 30}}
	f := sla.Aggregate([]sla.Cost{
		sla.Build("vm0", m, a, samples),
		sla.Build("vm1", m, a, nil),
	})
	var buf bytes.Buffer
	if err := sla.WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := sla.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PerVM) != 2 || got.PerVM[0] != f.PerVM[0] || got.PerVM[1] != f.PerVM[1] {
		t.Fatalf("per-VM rows did not round-trip: %+v", got.PerVM)
	}
	if err := got.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

// TestSLAReconcilesAllModes is the end-to-end contract of satellite 3: for
// every migration mode, a real run's SLA cost prices the attribution's
// workload downtime tick-for-tick and re-derives exactly from (model,
// attribution, samples). The external test package may import the root
// javmm API even though the fleet layer under it imports sla.
func TestSLAReconcilesAllModes(t *testing.T) {
	modes := []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM, javmm.ModePostCopy, javmm.ModeHybrid}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			prof, err := javmm.Workload("derby")
			if err != nil {
				t.Fatal(err)
			}
			vm, err := javmm.BootVM(javmm.BootConfig{
				Profile:  prof,
				Assisted: mode == javmm.ModeJAVMM,
				Seed:     11,
			})
			if err != nil {
				t.Fatal(err)
			}
			vm.Driver.Run(30 * time.Second)
			led := javmm.NewLedger()
			res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode, Ledger: led})
			if err != nil {
				t.Fatal(err)
			}
			a, err := javmm.Attribute(res, led)
			if err != nil {
				t.Fatal(err)
			}
			m := sla.Default()
			samples := vm.Driver.Samples()
			c := sla.Build(vm.Dom.Name(), m, a, samples)
			if c.WorkloadDowntime != a.WorkloadDowntime {
				t.Fatalf("cost downtime %v, attribution %v", c.WorkloadDowntime, a.WorkloadDowntime)
			}
			if err := c.Reconcile(m, a, samples); err != nil {
				t.Fatal(err)
			}
			if c.WorkloadDowntime <= 0 {
				t.Fatal("run has no downtime to price")
			}
			if c.DowntimeCost <= 0 || c.Total < c.DowntimeCost {
				t.Fatalf("implausible cost: %+v", c)
			}
			// Migration suspends the workload, so the sampled curve must show
			// a priced dip (suspended seconds sample as zero ops).
			if mode != javmm.ModePostCopy && c.DipSeconds == 0 {
				t.Fatalf("no dip seconds priced in mode %v: %+v", mode, c)
			}
		})
	}
}
