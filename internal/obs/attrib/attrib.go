// Package attrib turns a migration Report (plus the optional provenance
// ledger) into an exact accounting of the run: where every tick of
// application-visible downtime went, and what every byte of traffic bought.
//
// The paper's evaluation (§5) argues about exactly these decompositions —
// Figure 9's downtime split between the enforced GC, the final bitmap update
// and the stop-and-copy transfer; Figure 10's per-iteration traffic — so the
// package enforces them as invariants rather than approximations: the
// downtime components sum tick-for-tick to the workload downtime, and the
// per-iteration and per-reason traffic each sum byte-for-byte to the
// Report's total. Reconcile checks all of it and tooling (javmm-analyze, the
// experiments harness) refuses to print numbers that do not add up.
package attrib

import (
	"fmt"
	"time"

	"javmm/internal/migration"
	"javmm/internal/obs/ledger"
)

// Component is one named slice of the downtime breakdown, in the order the
// guest experiences them.
type Component struct {
	Name string
	Dur  time.Duration
}

// IterationPoint is one row of the per-iteration series: traffic and
// dirtying for a single pre-copy round (or the lazy phase of a post-copy
// run, which appears as its single final "iteration").
type IterationPoint struct {
	Index        int
	Start        time.Duration // virtual time at round start
	Duration     time.Duration
	Last         bool
	PagesSent    uint64
	BytesOnWire  uint64
	PagesDirtied uint64
	DirtyRate    float64 // pages/sec dirtied while the round ran
	TransferRate float64 // payload bytes/sec
}

// Attribution is the reconciled accounting of one migration run.
type Attribution struct {
	// Mode is the mode the run started in; EffectiveMode is the semantics it
	// actually completed with (they differ when a failed suspension handshake
	// degraded an assisted run to vanilla pre-copy mid-flight).
	Mode          migration.Mode
	EffectiveMode migration.Mode

	// Downtime components. Their sum is WorkloadDowntime exactly; the
	// non-applicable ones are zero (e.g. EnforcedGC outside JAVMM mode).
	EnforcedGC  time.Duration // pre-suspension minor collection (JAVMM)
	FinalUpdate time.Duration // LKM final transfer-bitmap update (JAVMM)
	StopAndCopy time.Duration // VM paused: last-iteration transfer + handshakes
	Resumption  time.Duration // device reconnect / activation at destination

	// WorkloadDowntime is the application-visible downtime the components
	// decompose; VMDowntime is the subset with the VM actually paused
	// (StopAndCopy + Resumption).
	WorkloadDowntime time.Duration
	VMDowntime       time.Duration

	// FaultStall is cumulative post-switchover degradation from demand
	// faults (post-copy and hybrid runs). It is guest slowdown, not
	// downtime, so it is reported beside the components, never summed into
	// them. Faults is the fetch count behind it.
	FaultStall time.Duration
	Faults     uint64

	// TotalBytes and TotalPages mirror the Report; the iteration series and
	// (when present) the ledger's per-reason buckets both sum to them.
	TotalBytes uint64
	TotalPages uint64

	// Ledger is the per-reason traffic breakdown, valid when HasLedger.
	Ledger    ledger.Summary
	HasLedger bool

	Iterations []IterationPoint

	// Recovery surface (zero/nil on a fault-free run). Retries counts
	// transient-failure re-attempts, BackoffTotal their cumulative backoff;
	// Degraded carries the mid-flight downgrade record when the suspension
	// handshake failed; Aborted marks a run that rolled back to the source.
	Retries      int
	BackoffTotal time.Duration
	Degraded     *migration.Degradation
	Aborted      bool
	AbortReason  string
}

// Build computes the attribution for one finished run. enforcedGC is the
// duration of the pre-suspension collection (zero when none ran); led may be
// nil or inactive, in which case the per-reason breakdown is absent.
//
// The downtime model mirrors the public API's WorkloadDowntime formula: the
// VM-paused window always splits into StopAndCopy and Resumption, and JAVMM
// runs additionally charge the enforced GC and the final bitmap update —
// work the guest performs while nominally running, but which the workload
// experiences as downtime (paper §5.3).
func Build(r *migration.Report, enforcedGC time.Duration, led *ledger.Ledger) *Attribution {
	a := &Attribution{
		Mode:          r.Mode,
		EffectiveMode: r.EffectiveMode(),
		VMDowntime:    r.VMDowntime,
		Resumption:    r.Resumption,
		TotalBytes:    r.TotalBytes(),
		TotalPages:    r.TotalPagesSent,
	}
	a.StopAndCopy = r.VMDowntime - r.Resumption
	a.WorkloadDowntime = r.VMDowntime
	// The assisted-mode downtime components are keyed on the EFFECTIVE mode:
	// a run degraded to vanilla pre-copy never performed the final bitmap
	// update, and its enforced GC (if one ran before the downgrade) was paid
	// while the guest workflow was still live — vanilla semantics charge
	// neither (paper §4.2).
	if a.EffectiveMode == migration.ModeAppAssisted {
		a.EnforcedGC = enforcedGC
		a.FinalUpdate = r.FinalUpdate
		a.WorkloadDowntime += enforcedGC + r.FinalUpdate
	}
	if pc := r.PostCopy; pc != nil {
		a.FaultStall = pc.FaultStall
		a.Faults = pc.Faults
	}
	if rec := r.Recovery; rec != nil {
		a.Retries = len(rec.Retries)
		a.BackoffTotal = rec.BackoffTotal
		a.Degraded = rec.Degraded
		a.Aborted = rec.Aborted
		a.AbortReason = rec.AbortReason
	}
	if led.Active() {
		a.Ledger = led.Summary()
		a.HasLedger = true
	}
	for _, it := range r.Iterations {
		a.Iterations = append(a.Iterations, IterationPoint{
			Index:        it.Index,
			Start:        it.Start,
			Duration:     it.Duration,
			Last:         it.Last,
			PagesSent:    it.PagesSent,
			BytesOnWire:  it.BytesOnWire,
			PagesDirtied: it.PagesDirtiedDuring,
			DirtyRate:    it.DirtyRate(),
			TransferRate: it.TransferRate(),
		})
	}
	return a
}

// Components returns the downtime breakdown in guest-experienced order.
// Zero-valued components are included so rows line up across modes.
func (a *Attribution) Components() []Component {
	return []Component{
		{"enforced-gc", a.EnforcedGC},
		{"final-update", a.FinalUpdate},
		{"stop-and-copy", a.StopAndCopy},
		{"resumption", a.Resumption},
	}
}

// DowntimeSum returns the sum of the downtime components. It must equal
// WorkloadDowntime (Reconcile enforces this).
func (a *Attribution) DowntimeSum() time.Duration {
	var t time.Duration
	for _, c := range a.Components() {
		t += c.Dur
	}
	return t
}

// Reconcile checks the attribution against the Report it was built from:
// downtime components must sum tick-for-tick to the workload downtime, and
// the iteration series and ledger buckets must each sum byte-for-byte to the
// Report's traffic. A non-nil error means the instrumentation lied somewhere
// and the numbers must not be presented.
func (a *Attribution) Reconcile(r *migration.Report) error {
	if got := r.EffectiveMode(); a.EffectiveMode != got {
		return fmt.Errorf("attrib: effective mode %v, report says %v", a.EffectiveMode, got)
	}
	if a.Degraded != nil {
		// A degraded run completed with vanilla semantics: the final bitmap
		// update never happened, so charging it would invent downtime.
		if r.FinalUpdate != 0 {
			return fmt.Errorf("attrib: degraded run reports a %v final update; must be 0",
				r.FinalUpdate)
		}
		if a.EnforcedGC != 0 || a.FinalUpdate != 0 {
			return fmt.Errorf("attrib: degraded run charges assisted components (gc=%v update=%v)",
				a.EnforcedGC, a.FinalUpdate)
		}
	}
	if got := a.DowntimeSum(); got != a.WorkloadDowntime {
		return fmt.Errorf("attrib: downtime components sum to %v, workload downtime is %v",
			got, a.WorkloadDowntime)
	}
	if got := a.StopAndCopy + a.Resumption; got != a.VMDowntime {
		return fmt.Errorf("attrib: paused components sum to %v, VM downtime is %v",
			got, a.VMDowntime)
	}
	if rb := r.TotalBytes(); a.TotalBytes != rb {
		return fmt.Errorf("attrib: total bytes %d, report says %d", a.TotalBytes, rb)
	}
	var iterBytes, iterPages uint64
	for _, it := range a.Iterations {
		iterBytes += it.BytesOnWire
		iterPages += it.PagesSent
	}
	if iterBytes != a.TotalBytes {
		return fmt.Errorf("attrib: iteration series sums to %d bytes, total is %d",
			iterBytes, a.TotalBytes)
	}
	if iterPages != a.TotalPages {
		return fmt.Errorf("attrib: iteration series sums to %d pages, total is %d",
			iterPages, a.TotalPages)
	}
	if a.HasLedger {
		if a.Ledger.TotalBytes != a.TotalBytes {
			return fmt.Errorf("attrib: ledger carries %d bytes, report %d",
				a.Ledger.TotalBytes, a.TotalBytes)
		}
		if a.Ledger.TotalSends != a.TotalPages {
			return fmt.Errorf("attrib: ledger carries %d sends, report %d pages",
				a.Ledger.TotalSends, a.TotalPages)
		}
		var reasonBytes uint64
		for _, rt := range a.Ledger.SendsByReason {
			reasonBytes += rt.Bytes
		}
		if reasonBytes != a.TotalBytes {
			return fmt.Errorf("attrib: reason buckets sum to %d bytes, total is %d",
				reasonBytes, a.TotalBytes)
		}
	}
	return nil
}
