package attrib

import (
	"strings"
	"testing"
	"time"

	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/obs/ledger"
)

// report fabricates a consistent two-iteration Report for unit tests; the
// end-to-end reconciliation against real engine runs lives in the root
// package's observability tests.
func report(mode migration.Mode) *migration.Report {
	return &migration.Report{
		Mode:           mode,
		VMDowntime:     250 * time.Millisecond,
		Resumption:     170 * time.Millisecond,
		FinalUpdate:    6 * time.Millisecond,
		TotalPagesSent: 300,
		Iterations: []migration.IterationStats{
			{Index: 1, Duration: time.Second, PagesSent: 200, BytesOnWire: 200 * 4096,
				PagesDirtiedDuring: 100},
			{Index: 2, Duration: 100 * time.Millisecond, Last: true, PagesSent: 100,
				BytesOnWire: 100 * 4096},
		},
	}
}

func TestBuildVanillaDowntimeSplit(t *testing.T) {
	r := report(migration.ModeVanilla)
	// A stray enforced GC outside JAVMM mode is not workload downtime.
	a := Build(r, 40*time.Millisecond, nil)
	if a.EnforcedGC != 0 || a.FinalUpdate != 0 {
		t.Fatalf("vanilla charged GC %v / final update %v", a.EnforcedGC, a.FinalUpdate)
	}
	if a.WorkloadDowntime != r.VMDowntime {
		t.Fatalf("workload downtime %v, want %v", a.WorkloadDowntime, r.VMDowntime)
	}
	if a.StopAndCopy != 80*time.Millisecond {
		t.Fatalf("stop-and-copy = %v", a.StopAndCopy)
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
	if len(a.Components()) != 4 {
		t.Fatalf("components = %v", a.Components())
	}
}

func TestBuildJAVMMChargesGCAndFinalUpdate(t *testing.T) {
	r := report(migration.ModeAppAssisted)
	gc := 40 * time.Millisecond
	a := Build(r, gc, nil)
	want := r.VMDowntime + gc + r.FinalUpdate
	if a.WorkloadDowntime != want {
		t.Fatalf("workload downtime %v, want %v", a.WorkloadDowntime, want)
	}
	if a.DowntimeSum() != want {
		t.Fatalf("components sum %v, want %v", a.DowntimeSum(), want)
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCarriesFaultStall(t *testing.T) {
	r := report(migration.ModePostCopy)
	r.PostCopy = &migration.PostCopyStats{
		Faults: 17, FaultStall: 90 * time.Millisecond,
	}
	a := Build(r, 0, nil)
	if a.Faults != 17 || a.FaultStall != 90*time.Millisecond {
		t.Fatalf("fault stall = %d/%v", a.Faults, a.FaultStall)
	}
	// Stall is degradation, not downtime: it must not leak into the sum.
	if a.DowntimeSum() != r.VMDowntime {
		t.Fatalf("downtime sum %v includes stall", a.DowntimeSum())
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithLedgerReconciles(t *testing.T) {
	r := report(migration.ModeVanilla)
	led := ledger.New()
	led.Begin(512)
	for p := 0; p < 200; p++ {
		led.PageSent(mem.PFN(p), 1, 4096, ledger.ClassLive)
	}
	for p := 0; p < 100; p++ {
		led.PageSent(mem.PFN(p), 2, 4096, ledger.ClassFinal)
	}
	a := Build(r, 0, led)
	if !a.HasLedger {
		t.Fatal("ledger breakdown absent")
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
	if a.Ledger.SendsByReason[ledger.ReasonFinalIter].Count != 100 {
		t.Fatalf("final-iter bucket = %+v", a.Ledger.SendsByReason[ledger.ReasonFinalIter])
	}
}

func TestReconcileCatchesLies(t *testing.T) {
	r := report(migration.ModeVanilla)

	a := Build(r, 0, nil)
	a.Resumption += time.Nanosecond // one tick off must fail
	if err := a.Reconcile(r); err == nil || !strings.Contains(err.Error(), "downtime") {
		t.Fatalf("tick-off resumption not caught: %v", err)
	}

	a = Build(r, 0, nil)
	a.Iterations[0].BytesOnWire-- // one byte off must fail
	if err := a.Reconcile(r); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("byte-off series not caught: %v", err)
	}

	// A ledger that missed a send must fail reconciliation.
	led := ledger.New()
	led.Begin(512)
	for p := 0; p < 299; p++ {
		led.PageSent(mem.PFN(p), 1, 4096, ledger.ClassLive)
	}
	a = Build(r, 0, led)
	if err := a.Reconcile(r); err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("short ledger not caught: %v", err)
	}

	// Inactive ledger is simply absent, not an error.
	a = Build(r, 0, nil)
	if a.HasLedger {
		t.Fatal("nil ledger marked present")
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDegradedRunChargesVanillaSemantics(t *testing.T) {
	r := report(migration.ModeAppAssisted)
	r.FinalUpdate = 0 // a degraded run never performed the final bitmap update
	r.Recovery = &migration.RecoveryStats{
		Retries: []migration.RetryRecord{
			{Stage: "chunk-send", Attempt: 1, Backoff: 10 * time.Millisecond},
		},
		BackoffTotal: 10 * time.Millisecond,
		Degraded: &migration.Degradation{
			From: migration.ModeAppAssisted, To: migration.ModeVanilla,
			Reason: "suspension handshake timed out",
		},
	}
	// Even with an enforced GC on record (it ran before the downgrade), the
	// effective-vanilla run charges neither assisted component.
	a := Build(r, 40*time.Millisecond, nil)
	if a.EffectiveMode != migration.ModeVanilla {
		t.Fatalf("EffectiveMode = %v, want vanilla", a.EffectiveMode)
	}
	if a.EnforcedGC != 0 || a.FinalUpdate != 0 {
		t.Fatalf("degraded run charged GC %v / final update %v", a.EnforcedGC, a.FinalUpdate)
	}
	if a.WorkloadDowntime != r.VMDowntime {
		t.Fatalf("workload downtime %v, want %v", a.WorkloadDowntime, r.VMDowntime)
	}
	if a.Retries != 1 || a.BackoffTotal != 10*time.Millisecond || a.Degraded == nil {
		t.Fatalf("recovery surface lost: %+v", a)
	}
	if err := a.Reconcile(r); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileCatchesDegradeInconsistency(t *testing.T) {
	r := report(migration.ModeAppAssisted)
	r.Recovery = &migration.RecoveryStats{
		Degraded: &migration.Degradation{
			From: migration.ModeAppAssisted, To: migration.ModeVanilla,
		},
	}
	// FinalUpdate left non-zero: a degraded run claiming a final bitmap
	// update is lying about its own semantics.
	a := Build(r, 0, nil)
	if err := a.Reconcile(r); err == nil || !strings.Contains(err.Error(), "final update") {
		t.Fatalf("degraded run with final update not caught: %v", err)
	}
}
