// Package obs is the observability substrate of the simulator: structured
// tracing and metrics keyed to the virtual clock.
//
// Everything the paper's evaluation needs to *see* — per-iteration pages
// sent/skipped, dirty rates, LKM state transitions, GC pauses, link
// utilization — flows through one Tracer (nestable spans and typed instant
// events) and one Metrics registry (counters, gauges, time-weighted
// histograms). Both are driven exclusively by simclock virtual time, so a
// trace of a migration is exactly reproducible: two runs with the same seed
// produce byte-identical exports.
//
// Producers (the migration engine, the LKM, the JVM, the workload driver,
// the network link) emit through nil-safe methods, so instrumented code
// needs no guards: a nil *Tracer or *Metrics swallows every call. Consumers
// either subscribe in-process (Tracer.Subscribe — the generalization of the
// engine's old OnIteration callback) or export the recorded events with
// WriteJSONL / WriteChromeTrace after the run.
package obs

import (
	"fmt"
	"time"

	"javmm/internal/simclock"
)

// Kind classifies an event. Kinds are dot-namespaced by emitting component;
// consumers filter on them.
type Kind string

// Event kinds emitted by the instrumented components.
const (
	// KindMigration spans one whole migration run.
	KindMigration Kind = "migration.run"
	// KindIteration spans one pre-copy iteration (or stop-and-copy).
	KindIteration Kind = "migration.iteration"
	// KindIterationStats is the instant event carrying a completed
	// iteration's statistics; its Data payload is the engine's
	// IterationStats value (the event-bus form of Config.OnIteration).
	KindIterationStats Kind = "migration.iteration.stats"
	// KindChunk spans one page-chunk push through the link.
	KindChunk Kind = "migration.chunk"
	// KindPrepare spans the pre-suspension handshake (paper Figure 8(b)).
	KindPrepare Kind = "migration.prepare"
	// KindFinalUpdate spans the LKM's final transfer bitmap update charged
	// to downtime.
	KindFinalUpdate Kind = "migration.final_update"
	// KindVMPaused spans the VM's stop-and-copy suspension.
	KindVMPaused Kind = "migration.vm_paused"
	// KindResumption spans device reconnection at the destination.
	KindResumption Kind = "migration.resumption"
	// KindSuspend and KindResume mark the suspension/resumption instants.
	KindSuspend Kind = "migration.suspend"
	KindResume  Kind = "migration.resume"
	// KindThrottle marks a Clark-style write-throttle change.
	KindThrottle Kind = "migration.throttle"

	// KindLKMState marks an LKM workflow state transition (Figure 4).
	KindLKMState Kind = "lkm.state"
	// KindLKMAbort marks a migration abort observed by the LKM.
	KindLKMAbort Kind = "lkm.abort"
	// KindNetlink marks a netlink message between LKM and applications.
	KindNetlink Kind = "netlink.msg"

	// KindGC spans one stop-the-world collection (minor, enforced, full).
	KindGC Kind = "jvm.gc"
	// KindSafepoint marks Safepoint holds/releases around an enforced GC.
	KindSafepoint Kind = "jvm.safepoint"

	// KindSample is the workload analyzer's per-second throughput sample.
	KindSample Kind = "workload.sample"

	// KindFault marks an injected fault (site + occurrence) on the faults
	// track.
	KindFault Kind = "fault.injected"
	// KindRetry marks one recovery retry: the engine backed off and will
	// re-attempt a failed stage operation.
	KindRetry Kind = "migration.retry"
	// KindDegrade marks a mid-flight mode downgrade (assisted pre-copy
	// falling back to vanilla semantics after a failed handshake, §4.2).
	KindDegrade Kind = "migration.degrade"
	// KindAbort marks a failed migration's clean abort: source resumed,
	// destination discarded.
	KindAbort Kind = "migration.abort"
	// KindIntegrityAudit spans the switchover digest audit (and marks
	// per-fetch digest mismatches detected in the lazy engine).
	KindIntegrityAudit Kind = "migration.integrity_audit"
	// KindResumePlan marks a resumed run's trust decision: how much of the
	// ResumeToken's destination state was kept and why.
	KindResumePlan Kind = "migration.resume_plan"

	// KindSpanError marks a span misuse the tracer detected and refused: a
	// double close, or a close that would interleave with a more deeply
	// nested open span on the same track. The offending end event is not
	// recorded — nesting stays intact — and the error event documents the
	// instrumentation bug instead.
	KindSpanError Kind = "obs.span_error"

	// KindProgress is the live progress stream: an instant event per
	// lifecycle transition and per completed iteration, carrying the
	// engine's typed Progress value as its Data payload (pages/bytes
	// remaining, observed dirty/transfer rates, ETA).
	KindProgress Kind = "migration.progress"

	// KindTransfer spans one arbitrated fabric transfer on its flow's track
	// ("fabric/<src>-><dst>"): begin at admission, end at completion with the
	// contended duration, queueing and stall attached.
	KindTransfer Kind = "fabric.transfer"
	// KindContention marks a change in a shared trunk's concurrent-transfer
	// count, emitted on the trunk's own fabric track ("fabric/<link>").
	KindContention Kind = "fabric.contention"
)

// Track names group events onto separate timelines (Chrome trace threads).
// Span begin/end pairs nest within their track.
const (
	TrackMigration = "migration"
	TrackLKM       = "lkm"
	TrackNetlink   = "netlink"
	TrackJVM       = "jvm"
	TrackWorkload  = "workload"
	TrackFaults    = "faults"
	// TrackFabric prefixes the shared-fabric timelines: per-flow transfer
	// spans live on TrackFabric + "/<src>-><dst>" and per-link contention
	// instants on TrackFabric + "/<link>".
	TrackFabric = "fabric"
)

// Phase distinguishes instant events from span boundaries.
type Phase string

// Event phases.
const (
	PhaseInstant Phase = "instant"
	PhaseBegin   Phase = "begin"
	PhaseEnd     Phase = "end"
)

// Attr is one key/value attribute on an event. Values are restricted to
// bool, string, signed/unsigned integers, float64 and time.Duration; the
// exporters render anything else with %v.
type Attr struct {
	Key string
	Val any
}

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: int64(v)} }

// Int64 returns an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// Uint64 returns a uint64 attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Val: v} }

// Float returns a float64 attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// Dur returns a duration attribute (exported as integer nanoseconds).
func Dur(k string, v time.Duration) Attr { return Attr{Key: k, Val: v} }

// Event is one recorded trace event. At is virtual time; Seq is the
// emission order (total within a Tracer), which breaks ties between events
// at the same virtual instant.
type Event struct {
	Seq   int
	At    time.Duration
	Track string
	Kind  Kind
	Name  string
	Phase Phase
	Attrs []Attr

	// Data optionally carries the producer's typed payload for in-process
	// subscribers (e.g. the engine's IterationStats). It is not exported
	// to JSONL/Chrome output; everything export-worthy goes in Attrs.
	Data any
}

// Tracer records events against a virtual clock and fans them out to
// subscribers. The zero of *Tracer (nil) is a valid no-op sink. Tracer is
// not safe for concurrent use: the simulator is single-threaded by design.
type Tracer struct {
	clock  *simclock.Clock
	events []Event
	subs   []*subscriber
	seq    int
	// open is the per-track stack of not-yet-ended spans, used to detect
	// closes that would corrupt the nesting the exporters rely on.
	open map[string][]*Span
}

type subscriber struct{ fn func(Event) }

// New returns a tracer recording against clock.
func New(clock *simclock.Clock) *Tracer {
	if clock == nil {
		panic("obs: New requires a clock")
	}
	return &Tracer{clock: clock}
}

// Events returns the events recorded so far, in emission order. The slice
// is the tracer's own backing store; treat it as read-only.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Subscribe registers fn to receive every subsequent event as it is
// emitted, and returns a cancel function that removes the subscription.
// Subscribers run synchronously in registration order.
func (t *Tracer) Subscribe(fn func(Event)) (cancel func()) {
	if t == nil {
		return func() {}
	}
	s := &subscriber{fn: fn}
	t.subs = append(t.subs, s)
	return func() {
		for i, x := range t.subs {
			if x == s {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				return
			}
		}
	}
}

// record stamps, stores and fans out one event.
func (t *Tracer) record(track string, kind Kind, name string, phase Phase, data any, attrs []Attr) {
	e := Event{
		Seq:   t.seq,
		At:    t.clock.Now(),
		Track: track,
		Kind:  kind,
		Name:  name,
		Phase: phase,
		Attrs: attrs,
		Data:  data,
	}
	t.seq++
	t.events = append(t.events, e)
	for _, s := range t.subs {
		s.fn(e)
	}
}

// Emit records an instant event. data may carry a typed payload for
// subscribers (nil for none).
func (t *Tracer) Emit(track string, kind Kind, name string, data any, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(track, kind, name, PhaseInstant, data, attrs)
}

// Begin opens a span: a begin event now, and an end event when the returned
// span's End is called. Spans on the same track must close in LIFO order
// (they nest); spans on different tracks are independent. The tracer
// enforces the nesting: a misplaced End is refused and recorded as a
// KindSpanError event (see Span.End).
func (t *Tracer) Begin(track string, kind Kind, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.record(track, kind, name, PhaseBegin, nil, attrs)
	sp := &Span{t: t, track: track, kind: kind, name: name}
	if t.open == nil {
		t.open = make(map[string][]*Span)
	}
	t.open[track] = append(t.open[track], sp)
	return sp
}

// Span is an open interval on one track. End is nil-safe.
type Span struct {
	t     *Tracer
	track string
	kind  Kind
	name  string
	ended bool
}

// End closes the span at the current virtual time, attaching any final
// attributes to the end event.
//
// A span may be ended exactly once, and only while it is the innermost open
// span on its track. A violating End — double close, or out-of-order close
// — would silently corrupt the begin/end nesting every trace consumer
// assumes, so the tracer refuses it: no end event is recorded, a
// KindSpanError event marks the bug in the trace, and the error describes
// it. An out-of-order close leaves the span open; it may still be ended
// legitimately once the spans nested inside it have closed.
func (s *Span) End(attrs ...Attr) error {
	if s == nil {
		return nil
	}
	if s.ended {
		err := fmt.Errorf("obs: span %q on track %q closed twice", s.name, s.track)
		s.t.Emit(s.track, KindSpanError, "double-close", nil, Str("span", s.name))
		return err
	}
	stack := s.t.open[s.track]
	if n := len(stack); n == 0 || stack[n-1] != s {
		innermost := "<none>"
		if n > 0 {
			innermost = stack[n-1].name
		}
		err := fmt.Errorf("obs: span %q on track %q closed out of order (innermost open span is %q)",
			s.name, s.track, innermost)
		s.t.Emit(s.track, KindSpanError, "out-of-order-close", nil,
			Str("span", s.name), Str("innermost", innermost))
		return err
	}
	s.t.open[s.track] = stack[:len(stack)-1]
	s.ended = true
	s.t.record(s.track, s.kind, s.name, PhaseEnd, nil, attrs)
	return nil
}
