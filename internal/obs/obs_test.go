package obs

import (
	"testing"
	"time"

	"javmm/internal/simclock"
)

func TestEmitRecordsVirtualTimeAndOrder(t *testing.T) {
	c := simclock.New()
	tr := New(c)

	tr.Emit(TrackMigration, KindSuspend, "suspend", nil)
	c.Advance(5 * time.Millisecond)
	tr.Emit(TrackMigration, KindResume, "resume", nil, Int("n", 3))

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 0 || evs[1].At != 5*time.Millisecond {
		t.Fatalf("timestamps %v, %v", evs[0].At, evs[1].At)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seq %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].Attrs[0].Key != "n" || evs[1].Attrs[0].Val != int64(3) {
		t.Fatalf("attr = %+v", evs[1].Attrs[0])
	}
}

func TestSpanBeginEnd(t *testing.T) {
	c := simclock.New()
	tr := New(c)

	sp := tr.Begin(TrackJVM, KindGC, "minor GC", Bool("enforced", false))
	c.Advance(70 * time.Millisecond)
	if err := sp.End(Uint64("garbage", 42)); err != nil {
		t.Fatal(err)
	}

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Phase != PhaseBegin || evs[1].Phase != PhaseEnd {
		t.Fatalf("phases %v, %v", evs[0].Phase, evs[1].Phase)
	}
	if evs[1].At-evs[0].At != 70*time.Millisecond {
		t.Fatalf("span duration %v", evs[1].At-evs[0].At)
	}
	if evs[0].Name != evs[1].Name || evs[0].Track != evs[1].Track {
		t.Fatal("begin/end name or track mismatch")
	}
}

func TestSubscribeAndCancel(t *testing.T) {
	c := simclock.New()
	tr := New(c)

	var got []Event
	cancel := tr.Subscribe(func(e Event) { got = append(got, e) })
	tr.Emit(TrackLKM, KindLKMState, "MIGRATION_STARTED", nil)
	cancel()
	cancel() // double-cancel is harmless
	tr.Emit(TrackLKM, KindLKMState, "RESUMED", nil)

	if len(got) != 1 || got[0].Name != "MIGRATION_STARTED" {
		t.Fatalf("subscriber saw %v", got)
	}
	if tr.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", tr.Len())
	}
}

func TestSubscriberReceivesTypedPayload(t *testing.T) {
	type payload struct{ N int }
	c := simclock.New()
	tr := New(c)

	var seen payload
	tr.Subscribe(func(e Event) {
		if p, ok := e.Data.(payload); ok {
			seen = p
		}
	})
	tr.Emit(TrackMigration, KindIterationStats, "iteration 1", payload{N: 7})
	if seen.N != 7 {
		t.Fatalf("payload not delivered: %+v", seen)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(TrackMigration, KindSuspend, "x", nil)
	sp := tr.Begin(TrackMigration, KindIteration, "y")
	sp.End()
	tr.Subscribe(func(Event) {})()
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestCounter(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	ctr := m.Counter("pages")
	ctr.Add(10)
	ctr.Inc()
	ctr.AddDuration(5 * time.Nanosecond)
	if got := m.Counter("pages").Value(); got != 16 {
		t.Fatalf("counter = %d, want 16", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	ctr.Add(-1)
}

func TestGaugeTimeWeightedMean(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	g := m.Gauge("util")

	g.Set(1.0)
	c.Advance(9 * time.Second)
	g.Set(0.0)
	c.Advance(1 * time.Second)

	if got := g.Value(); got != 0 {
		t.Fatalf("last value = %v", got)
	}
	if got := g.TimeWeightedMean(); got < 0.899 || got > 0.901 {
		t.Fatalf("time-weighted mean = %v, want 0.9", got)
	}
}

func TestGaugeSetOnceMeanIsValue(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	g := m.Gauge("x")
	g.Set(3.5)
	if got := g.TimeWeightedMean(); got != 3.5 {
		t.Fatalf("mean = %v, want 3.5 (zero elapsed)", got)
	}
	c.Advance(time.Second)
	if got := g.TimeWeightedMean(); got != 3.5 {
		t.Fatalf("mean = %v, want 3.5", got)
	}
}

func TestHistogramWeighted(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	h := m.Histogram("bw")
	h.ObserveWeighted(100, 3*time.Second)
	h.ObserveWeighted(200, 1*time.Second)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 150 {
		t.Fatalf("mean = %v, want 150", got)
	}
	if got := h.WeightedMean(); got != 125 {
		t.Fatalf("weighted mean = %v, want 125 (=(100*3+200*1)/4)", got)
	}
	if h.min != 100 || h.max != 200 {
		t.Fatalf("min/max = %v/%v", h.min, h.max)
	}
}

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.Counter("a").Add(1)
	m.Gauge("b").Set(2)
	m.Histogram("c").Observe(3)
	if m.Counter("a").Value() != 0 || m.Gauge("b").TimeWeightedMean() != 0 || m.Histogram("c").Mean() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	snap := m.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil snapshot must be empty")
	}
}

func TestSnapshotSortedAndLookup(t *testing.T) {
	c := simclock.New()
	m := NewMetrics(c)
	m.Counter("zebra").Add(1)
	m.Counter("alpha").Add(2)
	m.Gauge("mid").Set(5)
	c.Advance(time.Second)

	s := m.Snapshot()
	if s.At != time.Second {
		t.Fatalf("snapshot At = %v", s.At)
	}
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zebra" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Counter("zebra"); !ok || v != 1 {
		t.Fatalf("lookup zebra = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Fatal("missing counter reported present")
	}
}

func TestSpanDoubleCloseRefused(t *testing.T) {
	c := simclock.New()
	tr := New(c)

	sp := tr.Begin(TrackJVM, KindGC, "gc")
	if err := sp.End(); err != nil {
		t.Fatal(err)
	}
	err := sp.End()
	if err == nil {
		t.Fatal("double close not reported")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want begin+end+error", len(evs))
	}
	last := evs[2]
	if last.Kind != KindSpanError || last.Phase != PhaseInstant || last.Name != "double-close" {
		t.Fatalf("error event = %+v", last)
	}
	// A later span on the track is unaffected.
	sp2 := tr.Begin(TrackJVM, KindGC, "gc2")
	if err := sp2.End(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanOutOfOrderCloseRefused(t *testing.T) {
	c := simclock.New()
	tr := New(c)

	outer := tr.Begin(TrackMigration, KindMigration, "run")
	inner := tr.Begin(TrackMigration, KindIteration, "iteration 1")

	err := outer.End()
	if err == nil {
		t.Fatal("out-of-order close not reported")
	}
	// The refused close recorded an error event, no end event: nesting holds.
	evs := tr.Events()
	if got := evs[len(evs)-1]; got.Kind != KindSpanError || got.Name != "out-of-order-close" {
		t.Fatalf("error event = %+v", got)
	}
	for _, e := range evs {
		if e.Phase == PhaseEnd {
			t.Fatalf("refused close emitted an end event: %+v", e)
		}
	}
	// Closing in the right order still works — the outer span was left open.
	if err := inner.End(); err != nil {
		t.Fatal(err)
	}
	if err := outer.End(); err != nil {
		t.Fatal(err)
	}
	// Different tracks do not interfere.
	a := tr.Begin(TrackJVM, KindGC, "gc")
	b := tr.Begin(TrackLKM, KindLKMState, "state")
	if err := a.End(); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
}
