package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Interchange formats: reading traces and metrics back from their exported
// forms (for offline tooling like javmm-analyze), and rendering a metrics
// snapshot in Prometheus text exposition format. Everything here is
// deterministic: parsed attributes are sorted by key, and all output is
// fixed-format — same input, byte-identical output.

// jsonlEvent mirrors one WriteJSONL line for decoding.
type jsonlEvent struct {
	Seq   int                        `json:"seq"`
	AtNs  int64                      `json:"at_ns"`
	Track string                     `json:"track"`
	Kind  string                     `json:"kind"`
	Name  string                     `json:"name"`
	Phase string                     `json:"phase"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

// ReadJSONL parses a trace written by WriteJSONL back into events.
// Attribute values come back as the JSON types allow: bool, string, int64
// (integral numbers) or float64 — Duration attrs, exported as integer
// nanoseconds, read back as int64. Attrs are sorted by key (JSON objects
// carry no order), and Data payloads are gone: they were never exported.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(raw), &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		e := Event{
			Seq:   je.Seq,
			At:    time.Duration(je.AtNs),
			Track: je.Track,
			Kind:  Kind(je.Kind),
			Name:  je.Name,
			Phase: Phase(je.Phase),
		}
		if len(je.Attrs) > 0 {
			keys := make([]string, 0, len(je.Attrs))
			for k := range je.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v, err := decodeAttrValue(je.Attrs[k])
				if err != nil {
					return nil, fmt.Errorf("obs: trace line %d, attr %q: %w", line, k, err)
				}
				e.Attrs = append(e.Attrs, Attr{Key: k, Val: v})
			}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

func decodeAttrValue(raw json.RawMessage) (any, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	if n, ok := v.(json.Number); ok {
		if i, err := strconv.ParseInt(n.String(), 10, 64); err == nil {
			return i, nil
		}
		return n.Float64()
	}
	return v, nil
}

// AttrValue returns the value of the named attribute, or nil when absent.
func (e Event) AttrValue(key string) any {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return nil
}

// WriteMetricsJSON writes a snapshot as indented JSON, the machine-readable
// companion of the CLI's metrics table. Sections are sorted by construction,
// so the output is byte-deterministic.
func WriteMetricsJSON(w io.Writer, s MetricsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadMetricsJSON parses a snapshot written by WriteMetricsJSON.
func ReadMetricsJSON(r io.Reader) (MetricsSnapshot, error) {
	var s MetricsSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return MetricsSnapshot{}, fmt.Errorf("obs: reading metrics snapshot: %w", err)
	}
	return s, nil
}

// WritePrometheus renders a snapshot in Prometheus text exposition format
// (version 0.0.4), for scraping or offline ingestion. Instrument names are
// prefixed javmm_ and sanitized (dots become underscores). Counters map to
// counter metrics; gauges to a gauge plus a _timeweighted_mean companion;
// histograms to a summary with exact quantiles plus _min and _max gauges.
//
// Emission order is name-sorted per section regardless of the snapshot's
// slice order: Metrics.Snapshot sorts already, but snapshots also arrive
// from JSON files and hand construction, and the byte-identical-output
// guarantee (the trajectory tooling diffs this text) must not depend on the
// producer.
//
// WritePrometheus is the single-snapshot, unlabeled form of
// WritePrometheusLabeled; the two produce identical bytes for one snapshot
// with no labels.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error {
	return WritePrometheusLabeled(w, []LabeledSnapshot{{Snapshot: s}})
}

// Label is one name/value pair identifying a labeled snapshot's origin,
// e.g. {vm derby-0} or {link backbone}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// LabeledSnapshot pairs a metrics snapshot with the label set stamped onto
// every series rendered from it. A fleet exports one per VM registry plus
// one for the fleet-scoped registry.
type LabeledSnapshot struct {
	Labels   []Label         `json:"labels,omitempty"`
	Snapshot MetricsSnapshot `json:"snapshot"`
}

// WritePrometheusLabeled renders N labeled snapshots as one Prometheus text
// exposition: series sharing an instrument name merge into a single metric
// family (one # TYPE header) distinguished by their label sets — no
// name-mangling like vm0_downtime_ns. The output is fully deterministic
// regardless of producer order: sections run counters, gauges, histograms;
// family names sort within a section; rows within a family sort by their
// canonical (key-sorted) label rendering, ties broken by input order. Label
// keys are sanitized to the Prometheus alphabet and values escaped per the
// exposition format.
func WritePrometheusLabeled(w io.Writer, snaps []LabeledSnapshot) error {
	type source struct {
		labels string
		snap   MetricsSnapshot
	}
	srcs := make([]source, len(snaps))
	for i, ls := range snaps {
		srcs[i] = source{labels: canonicalLabels(ls.Labels), snap: ls.Snapshot.sortedCopy()}
	}

	// rows collects, per family name, every (labelset, source) pair holding
	// the instrument, pre-sorted for emission.
	type row struct {
		labels string
		src    int
	}
	collect := func(has func(MetricsSnapshot) []string) (names []string, rows map[string][]row) {
		rows = make(map[string][]row)
		for i, s := range srcs {
			for _, name := range has(s.snap) {
				if _, ok := rows[name]; !ok {
					names = append(names, name)
				}
				rows[name] = append(rows[name], row{labels: s.labels, src: i})
			}
		}
		sort.Strings(names)
		for _, rs := range rows {
			sort.SliceStable(rs, func(i, j int) bool { return rs[i].labels < rs[j].labels })
		}
		return names, rows
	}

	bw := bufio.NewWriter(w)
	series := func(name, labels, extraK, extraV, value string) {
		bw.WriteString(name)
		if labels != "" || extraK != "" {
			bw.WriteByte('{')
			bw.WriteString(labels)
			if extraK != "" {
				if labels != "" {
					bw.WriteByte(',')
				}
				bw.WriteString(extraK)
				bw.WriteString(`="`)
				bw.WriteString(extraV)
				bw.WriteByte('"')
			}
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
		bw.WriteString(value)
		bw.WriteByte('\n')
	}

	names, rows := collect(func(s MetricsSnapshot) []string {
		out := make([]string, len(s.Counters))
		for i, c := range s.Counters {
			out[i] = c.Name
		}
		return out
	})
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		for _, r := range rows[name] {
			v, _ := srcs[r.src].snap.Counter(name)
			series(n, r.labels, "", "", strconv.FormatInt(v, 10))
		}
	}

	names, rows = collect(func(s MetricsSnapshot) []string {
		out := make([]string, len(s.Gauges))
		for i, g := range s.Gauges {
			out[i] = g.Name
		}
		return out
	})
	gauge := func(s MetricsSnapshot, name string) GaugeSample {
		for _, g := range s.Gauges {
			if g.Name == name {
				return g
			}
		}
		return GaugeSample{}
	}
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		for _, r := range rows[name] {
			series(n, r.labels, "", "", promFloat(gauge(srcs[r.src].snap, name).Value))
		}
		fmt.Fprintf(bw, "# TYPE %s_timeweighted_mean gauge\n", n)
		for _, r := range rows[name] {
			series(n+"_timeweighted_mean", r.labels, "", "",
				promFloat(gauge(srcs[r.src].snap, name).TimeWeightedMean))
		}
	}

	names, rows = collect(func(s MetricsSnapshot) []string {
		out := make([]string, len(s.Histograms))
		for i, h := range s.Histograms {
			out[i] = h.Name
		}
		return out
	})
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		for _, r := range rows[name] {
			h, _ := srcs[r.src].snap.Histogram(name)
			series(n, r.labels, "quantile", "0.5", promFloat(h.P50))
			series(n, r.labels, "quantile", "0.95", promFloat(h.P95))
			series(n, r.labels, "quantile", "0.99", promFloat(h.P99))
			series(n+"_sum", r.labels, "", "", promFloat(h.Sum))
			series(n+"_count", r.labels, "", "", strconv.FormatUint(h.Count, 10))
		}
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n", n)
		for _, r := range rows[name] {
			h, _ := srcs[r.src].snap.Histogram(name)
			series(n+"_min", r.labels, "", "", promFloat(h.Min))
		}
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n", n)
		for _, r := range rows[name] {
			h, _ := srcs[r.src].snap.Histogram(name)
			series(n+"_max", r.labels, "", "", promFloat(h.Max))
		}
	}
	return bw.Flush()
}

// canonicalLabels renders a label set in its canonical form: key-sorted,
// keys sanitized to the Prometheus alphabet, values escaped (backslash,
// quote, newline per the text exposition format). The empty set renders "".
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelKey(l.Key))
		b.WriteString(`="`)
		b.WriteString(promLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// promLabelKey sanitizes a label key into [a-zA-Z0-9_] (no javmm_ prefix:
// label keys are not metric names).
func promLabelKey(k string) string {
	var b strings.Builder
	for _, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promName sanitizes an instrument name into the Prometheus alphabet
// [a-zA-Z0-9_:], with the javmm_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("javmm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
