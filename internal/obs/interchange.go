package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Interchange formats: reading traces and metrics back from their exported
// forms (for offline tooling like javmm-analyze), and rendering a metrics
// snapshot in Prometheus text exposition format. Everything here is
// deterministic: parsed attributes are sorted by key, and all output is
// fixed-format — same input, byte-identical output.

// jsonlEvent mirrors one WriteJSONL line for decoding.
type jsonlEvent struct {
	Seq   int                        `json:"seq"`
	AtNs  int64                      `json:"at_ns"`
	Track string                     `json:"track"`
	Kind  string                     `json:"kind"`
	Name  string                     `json:"name"`
	Phase string                     `json:"phase"`
	Attrs map[string]json.RawMessage `json:"attrs"`
}

// ReadJSONL parses a trace written by WriteJSONL back into events.
// Attribute values come back as the JSON types allow: bool, string, int64
// (integral numbers) or float64 — Duration attrs, exported as integer
// nanoseconds, read back as int64. Attrs are sorted by key (JSON objects
// carry no order), and Data payloads are gone: they were never exported.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(raw), &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		e := Event{
			Seq:   je.Seq,
			At:    time.Duration(je.AtNs),
			Track: je.Track,
			Kind:  Kind(je.Kind),
			Name:  je.Name,
			Phase: Phase(je.Phase),
		}
		if len(je.Attrs) > 0 {
			keys := make([]string, 0, len(je.Attrs))
			for k := range je.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v, err := decodeAttrValue(je.Attrs[k])
				if err != nil {
					return nil, fmt.Errorf("obs: trace line %d, attr %q: %w", line, k, err)
				}
				e.Attrs = append(e.Attrs, Attr{Key: k, Val: v})
			}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

func decodeAttrValue(raw json.RawMessage) (any, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	if n, ok := v.(json.Number); ok {
		if i, err := strconv.ParseInt(n.String(), 10, 64); err == nil {
			return i, nil
		}
		return n.Float64()
	}
	return v, nil
}

// AttrValue returns the value of the named attribute, or nil when absent.
func (e Event) AttrValue(key string) any {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return nil
}

// WriteMetricsJSON writes a snapshot as indented JSON, the machine-readable
// companion of the CLI's metrics table. Sections are sorted by construction,
// so the output is byte-deterministic.
func WriteMetricsJSON(w io.Writer, s MetricsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadMetricsJSON parses a snapshot written by WriteMetricsJSON.
func ReadMetricsJSON(r io.Reader) (MetricsSnapshot, error) {
	var s MetricsSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return MetricsSnapshot{}, fmt.Errorf("obs: reading metrics snapshot: %w", err)
	}
	return s, nil
}

// WritePrometheus renders a snapshot in Prometheus text exposition format
// (version 0.0.4), for scraping or offline ingestion. Instrument names are
// prefixed javmm_ and sanitized (dots become underscores). Counters map to
// counter metrics; gauges to a gauge plus a _timeweighted_mean companion;
// histograms to a summary with exact quantiles plus _min and _max gauges.
//
// Emission order is name-sorted per section regardless of the snapshot's
// slice order: Metrics.Snapshot sorts already, but snapshots also arrive
// from JSON files and hand construction, and the byte-identical-output
// guarantee (the trajectory tooling diffs this text) must not depend on the
// producer.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error {
	s = s.sortedCopy()
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s %s\n", n, strconv.FormatInt(c.Value, 10))
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		fmt.Fprintf(bw, "%s %s\n", n, promFloat(g.Value))
		fmt.Fprintf(bw, "# TYPE %s_timeweighted_mean gauge\n", n)
		fmt.Fprintf(bw, "%s_timeweighted_mean %s\n", n, promFloat(g.TimeWeightedMean))
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", n, promFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", n, promFloat(h.P95))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", n, promFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %s\n", n, strconv.FormatUint(h.Count, 10))
		fmt.Fprintf(bw, "# TYPE %s_min gauge\n", n)
		fmt.Fprintf(bw, "%s_min %s\n", n, promFloat(h.Min))
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n", n)
		fmt.Fprintf(bw, "%s_max %s\n", n, promFloat(h.Max))
	}
	return bw.Flush()
}

// promName sanitizes an instrument name into the Prometheus alphabet
// [a-zA-Z0-9_:], with the javmm_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("javmm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
