package jvm

import (
	"errors"
	"fmt"
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs"
)

// gcSpanName renders the span name for a collection.
func gcSpanName(kind GCKind, enforced bool) string {
	switch {
	case kind == FullGC:
		return "full GC"
	case enforced:
		return "enforced GC"
	default:
		return "minor GC"
	}
}

// ErrHeapExhausted is returned when a promotion cannot fit in the old
// generation even at its maximum size — the simulator's OutOfMemoryError.
var ErrHeapExhausted = errors.New("jvm: old generation exhausted (OutOfMemoryError)")

// Allocate bump-allocates up to n bytes of new objects in Eden, dirtying the
// pages the allocation touches, and returns how many bytes were actually
// allocated before Eden filled. A zero return means a minor GC is needed.
// Allocation is refused (returns 0) while a GC is in progress or threads are
// held at a Safepoint.
func (j *JVM) Allocate(n uint64) uint64 {
	if j.gc != nil || j.held {
		return 0
	}
	if free := j.EdenFree(); n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	// Touch every page the bump pointer crosses; objects are initialized
	// as they are allocated, which is what continuously re-dirties the
	// young generation (paper Observation 1).
	first := (j.edenUsed) / mem.PageSize
	last := (j.edenUsed + n - 1) / mem.PageSize
	for pg := first; pg <= last; pg++ {
		j.proc.Write(j.edenStart() + mem.VA(pg*mem.PageSize))
	}
	j.edenUsed += n
	j.TotalAllocated += n
	return n
}

// NeedsMinorGC reports whether Eden is full.
func (j *JVM) NeedsMinorGC() bool { return j.EdenFree() == 0 }

// NeedsFullGC reports whether the old generation is nearly full (≥ 90 % of
// its maximum) and a full collection should run before more promotions.
func (j *JVM) NeedsFullGC() bool {
	return float64(j.oldUsed) >= 0.9*float64(j.cfg.MaxOldBytes)
}

// RequestEnforcedGC asks for a minor GC that must not be silently ignored
// (paper §4.3.2 and its footnote on coalesced GC requests). The driver
// observes EnforcePending, walks the threads to a Safepoint, and runs the
// collection with enforced=true. Requesting twice is idempotent.
func (j *JVM) RequestEnforcedGC() {
	if j.held {
		// Already post-collection with threads held: nothing to do, but
		// the requester still gets its completion callback.
		if j.OnEnforcedDone != nil {
			j.OnEnforcedDone()
		}
		return
	}
	j.enforcePending = true
	j.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "enforced-gc-request", nil)
}

// ReleaseFromSafepoint releases Java threads held after an enforced GC —
// called when the migrated VM has resumed at the destination.
func (j *JVM) ReleaseFromSafepoint() {
	if j.held {
		j.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "safepoint-release", nil,
			obs.Bool("held", false))
	}
	j.held = false
}

// survive applies a survival fraction with multiplicative noise, clamped to
// [0, 1], and returns the surviving byte count.
func (j *JVM) survive(bytes uint64, frac float64) uint64 {
	f := frac * (1 + j.cfg.SurvivalNoise*(2*j.rng.Float64()-1))
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return uint64(float64(bytes) * f)
}

// BeginMinorGC plans a minor collection and returns its duration. Java
// threads are paused from Begin until Complete; the driver charges the
// duration to virtual time in between. Begin panics if a GC is already in
// progress (the driver's state machine must prevent that).
func (j *JVM) BeginMinorGC(enforced bool) time.Duration {
	if j.gc != nil {
		panic("jvm: BeginMinorGC during active GC")
	}
	if enforced {
		j.enforcePending = false
	}

	st := GCStats{
		Kind:            MinorGC,
		Enforced:        enforced,
		YoungUsedBefore: j.edenUsed + j.fromUsed,
		OldUsedBefore:   j.oldUsed,
	}

	edenLive := j.survive(j.edenUsed, j.cfg.EdenSurvival)
	var newFrom []cohort
	var promoted uint64
	for _, c := range j.fromCohorts {
		s := j.survive(c.bytes, j.cfg.SurvivorSurvival)
		if s == 0 {
			continue
		}
		if c.age+1 >= j.cfg.TenureThreshold {
			promoted += s
		} else {
			newFrom = append(newFrom, cohort{bytes: s, age: c.age + 1})
		}
	}
	if edenLive > 0 {
		newFrom = append(newFrom, cohort{bytes: edenLive, age: 1})
	}
	var toLive uint64
	for _, c := range newFrom {
		toLive += c.bytes
	}
	// Survivor overflow: oldest cohorts promote early until the To space
	// can hold the rest.
	for toLive > j.survivorBytes && len(newFrom) > 0 {
		oldest := newFrom[0]
		need := toLive - j.survivorBytes
		if oldest.bytes <= need {
			newFrom = newFrom[1:]
			promoted += oldest.bytes
			toLive -= oldest.bytes
		} else {
			newFrom[0].bytes -= need
			promoted += need
			toLive -= need
		}
	}

	st.LiveAfter = toLive
	st.Promoted = promoted
	st.Garbage = st.YoungUsedBefore - toLive - promoted

	d := j.cfg.MinorGCBase +
		time.Duration(float64(toLive+promoted)*j.cfg.MinorCopyNsPB)*time.Nanosecond +
		time.Duration(float64(j.youngCommitted)*j.cfg.MinorScanNsPB)*time.Nanosecond
	st.Duration = d

	j.gc = &pendingGC{
		kind:     MinorGC,
		enforced: enforced,
		duration: d,
		stats:    st,
		newFrom:  newFrom,
		toLive:   toLive,
		promoted: promoted,
		span: j.tracer.Begin(obs.TrackJVM, obs.KindGC, gcSpanName(MinorGC, enforced),
			obs.Bool("enforced", enforced),
			obs.Uint64("young_used_before", st.YoungUsedBefore),
			obs.Dur("planned_pause", d)),
	}
	return d
}

// GCCopyTick advances the in-flight collection by adv of virtual time,
// writing the proportional share of its copy traffic: the To-space
// evacuation for a minor GC, the old-generation compaction for a full GC.
// The workload driver calls it as it charges GC time, so a migration
// observing the guest sees the collector's writes spread across the pause
// rather than a burst at the end — as a real stop-the-world collector
// behaves. Ticks outside any GC are ignored.
func (j *JVM) GCCopyTick(adv time.Duration) {
	if j.gc == nil || j.gc.duration <= 0 {
		return
	}
	plan := j.gc
	plan.elapsed += adv
	frac := float64(plan.elapsed) / float64(plan.duration)
	if frac > 1 {
		frac = 1
	}
	var total uint64
	var base mem.VA
	switch plan.kind {
	case MinorGC:
		total, base = plan.toLive, j.toStart()
	case FullGC:
		total, base = plan.oldAfter, j.oldBase
	}
	target := uint64(float64(total) * frac)
	if target > plan.copiedBytes {
		j.writeRange(base+mem.VA(plan.copiedBytes), target-plan.copiedBytes)
		plan.copiedBytes = target
	}
}

// CompleteMinorGC applies the planned collection: copies live data to the To
// space (dirtying its pages), promotes tenured data into the old generation,
// empties Eden, swaps the survivor spaces and resizes the young generation
// under the adaptive policy. At completion the Eden and To spaces are empty
// (paper §4.1) — the post-collection state JAVMM migrates.
func (j *JVM) CompleteMinorGC() (GCStats, error) {
	if j.gc == nil || j.gc.kind != MinorGC {
		panic("jvm: CompleteMinorGC without BeginMinorGC")
	}
	plan := j.gc
	spanClosed := false
	defer func() { // backstop: the error returns below leave the span open
		if !spanClosed {
			plan.span.End()
		}
	}()

	// Copy any remainder of the live data into the To space (most of it
	// was already written by GCCopyTick during the pause).
	if plan.toLive > plan.copiedBytes {
		j.writeRange(j.toStart()+mem.VA(plan.copiedBytes), plan.toLive-plan.copiedBytes)
	}

	// Promote into the old generation, growing it as needed.
	if plan.promoted > 0 {
		for j.oldUsed+plan.promoted > j.oldCommitted {
			if err := j.growOld(oldGrowChunk); err != nil {
				j.gc = nil
				return GCStats{}, fmt.Errorf("%w: promoting %d bytes", ErrHeapExhausted, plan.promoted)
			}
		}
		j.writeRange(j.oldBase+mem.VA(j.oldUsed), plan.promoted)
		j.oldUsed += plan.promoted
		j.TotalPromoted += plan.promoted
	}

	// Eden empties; survivors swap roles.
	j.edenUsed = 0
	j.fromIsFirst = !j.fromIsFirst
	j.fromUsed = plan.toLive
	j.fromCohorts = plan.newFrom
	j.TotalGarbage += plan.stats.Garbage

	now := j.clock.Now()
	// Application-Level Ballooning overrides adaptive sizing: pin the
	// committed young generation at the ALB target (floored by live data).
	if j.albTarget > 0 && !plan.enforced {
		livePages := (j.fromUsed + mem.PageSize - 1) / mem.PageSize
		minForLive := livePages * uint64(j.cfg.SurvivorRatio+2) * mem.PageSize
		desired := j.albTarget
		if desired < minForLive {
			desired = minForLive
		}
		if desired > pageCeil(j.cfg.MaxYoungBytes) {
			desired = pageCeil(j.cfg.MaxYoungBytes)
		}
		if desired != j.youngCommitted {
			if err := j.commitYoung(desired); err != nil {
				j.gc = nil
				return GCStats{}, err
			}
		}
	}
	// Adaptive sizing (skipped for enforced GCs: the young range must stay
	// stable through the migration handshake; and while ALB pins the size).
	if !j.cfg.DisableAdaptiveSizing && !plan.enforced && j.albTarget == 0 && j.MinorGCs > 0 {
		interval := now - j.lastMinorGCAt
		maxY := pageCeil(j.cfg.MaxYoungBytes)
		switch {
		case interval < j.cfg.GrowBelow && j.youngCommitted < maxY:
			next := j.youngCommitted * 2
			if next > maxY {
				next = maxY
			}
			if err := j.commitYoung(next); err != nil {
				j.gc = nil
				return GCStats{}, err
			}
		case interval > j.cfg.ShrinkAbove && j.youngCommitted > pageCeil(j.cfg.InitialYoungBytes):
			next := j.youngCommitted / 2
			if next < pageCeil(j.cfg.InitialYoungBytes) {
				next = pageCeil(j.cfg.InitialYoungBytes)
			}
			// Never shrink below what live survivor data needs: the
			// survivor space is committed/(ratio+2) rounded DOWN to pages,
			// so compute the floor in pages.
			livePages := (j.fromUsed + mem.PageSize - 1) / mem.PageSize
			minForLive := livePages * uint64(j.cfg.SurvivorRatio+2) * mem.PageSize
			if next < minForLive {
				next = minForLive
			}
			if next < j.youngCommitted {
				if err := j.commitYoung(next); err != nil {
					j.gc = nil
					return GCStats{}, err
				}
			}
		}
	}
	j.lastMinorGCAt = now

	st := plan.stats
	st.At = now
	st.YoungCommittedAfter = j.youngCommitted
	j.MinorGCs++
	j.History = append(j.History, st)
	j.gc = nil

	spanClosed = true
	plan.span.End(
		obs.Uint64("garbage", st.Garbage),
		obs.Uint64("promoted", st.Promoted),
		obs.Dur("pause", st.Duration))
	if m := j.metrics; m != nil {
		m.Counter("jvm.gc.minor").Inc()
		m.Counter("jvm.gc.pause_ns").AddDuration(st.Duration)
		m.Counter("jvm.gc.garbage_bytes").Add(int64(st.Garbage))
		m.Counter("jvm.gc.promoted_bytes").Add(int64(st.Promoted))
		if plan.enforced {
			m.Counter("jvm.gc.enforced").Inc()
			m.Counter("jvm.gc.enforced_pause_ns").AddDuration(st.Duration)
		}
	}

	if j.OnGCEnd != nil {
		j.OnGCEnd(st)
	}
	if plan.enforced {
		// Java threads stay at the Safepoint: the Eden and To spaces must
		// remain empty until VM suspension completes (paper §4.3.2).
		j.held = true
		j.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "safepoint-hold", nil,
			obs.Bool("held", true))
		if j.OnEnforcedDone != nil {
			j.OnEnforcedDone()
		}
	}
	return st, nil
}

// BeginFullGC plans a full (old-generation) collection and returns its
// duration. Full GCs are markedly slower per byte than minor GCs
// (paper §4.2: 93 MB in ~4 s).
func (j *JVM) BeginFullGC() time.Duration {
	if j.gc != nil {
		panic("jvm: BeginFullGC during active GC")
	}
	garbage := j.survive(j.oldUsed, j.cfg.OldGarbageFraction)
	st := GCStats{
		Kind:          FullGC,
		OldUsedBefore: j.oldUsed,
		OldUsedAfter:  j.oldUsed - garbage,
		Garbage:       garbage,
	}
	d := j.cfg.FullGCBase + time.Duration(float64(j.oldUsed)*j.cfg.FullNsPB)*time.Nanosecond
	st.Duration = d
	j.gc = &pendingGC{kind: FullGC, duration: d, stats: st, oldAfter: st.OldUsedAfter,
		span: j.tracer.Begin(obs.TrackJVM, obs.KindGC, gcSpanName(FullGC, false),
			obs.Uint64("old_used_before", st.OldUsedBefore),
			obs.Dur("planned_pause", d))}
	return d
}

// CompleteFullGC applies the planned full collection: the old generation is
// compacted in place (dirtying its live region).
func (j *JVM) CompleteFullGC() GCStats {
	if j.gc == nil || j.gc.kind != FullGC {
		panic("jvm: CompleteFullGC without BeginFullGC")
	}
	plan := j.gc
	// Compaction rewrites live data; most of it was already written by
	// GCCopyTick during the pause.
	if plan.oldAfter > plan.copiedBytes {
		j.writeRange(j.oldBase+mem.VA(plan.copiedBytes), plan.oldAfter-plan.copiedBytes)
	}
	j.oldUsed = plan.oldAfter
	j.TotalGarbage += plan.stats.Garbage

	st := plan.stats
	st.At = j.clock.Now()
	st.YoungCommittedAfter = j.youngCommitted
	j.FullGCs++
	j.History = append(j.History, st)
	j.gc = nil
	plan.span.End(obs.Uint64("garbage", st.Garbage), obs.Dur("pause", st.Duration))
	if m := j.metrics; m != nil {
		m.Counter("jvm.gc.full").Inc()
		m.Counter("jvm.gc.pause_ns").AddDuration(st.Duration)
		m.Counter("jvm.gc.garbage_bytes").Add(int64(st.Garbage))
	}
	if j.OnGCEnd != nil {
		j.OnGCEnd(st)
	}
	return st
}
