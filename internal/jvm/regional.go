package jvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// RegionalHeap is a garbage-first-style heap (paper §6: "We are particularly
// interested in porting JAVMM to run with collectors that use non-contiguous
// VA ranges for the Young generation ... HotSpot's garbage-first garbage
// collector is one such example").
//
// The heap is carved into fixed-size regions. Eden and survivor regions are
// taken from a free list, so the young generation is a churning, scattered
// SET of VA ranges rather than one contiguous block: after every minor GC the
// old eden/survivor regions are freed (young-gen shrink notifications, one
// per freed range) and fresh regions take their place. A JAVMM agent driving
// this collector must therefore re-report its skip-over areas as they move —
// the behaviour the X11 experiment studies.
//
// RegionalHeap implements the same runtime surface as JVM (allocation, GC
// begin/complete, Safepoint holds, TI callbacks), so the workload driver and
// the agent work against either collector.
type RegionalHeap struct {
	cfg   RegionalConfig
	proc  *guestos.Process
	clock *simclock.Clock
	rng   *rand.Rand

	regions []region
	free    []int // LIFO free list of region indexes
	eden    []int // allocation regions, current last
	surv    []int // survivor regions holding live data
	old     []int // old-generation regions

	codeBase  mem.VA
	codeBytes uint64
	codeDirty mem.VA

	gc             *pendingRegionalGC
	lastMinorGCAt  time.Duration
	enforcePending bool
	held           bool

	onShrink       func(mem.VARange)
	onGCEnd        func(GCStats)
	onEnforcedDone func()
	onYoungGrow    func(mem.VARange)

	// Cumulative accounting.
	TotalAllocated uint64
	TotalGarbage   uint64
	TotalPromoted  uint64
	MinorGCs       int
	FullGCs        int
	History        []GCStats

	tracer  *obs.Tracer
	metrics *obs.Metrics
}

// SetObs mirrors JVM.SetObs for the regional collector.
func (h *RegionalHeap) SetObs(t *obs.Tracer, m *obs.Metrics) {
	h.tracer = t
	h.metrics = m
}

type regionClass uint8

const (
	regFree regionClass = iota
	regEden
	regSurvivor
	regOld
)

type region struct {
	class regionClass
	used  uint64
	age   int // survivor cohort age (one cohort per survivor region)
}

// RegionalConfig parameterizes a RegionalHeap.
type RegionalConfig struct {
	Proc  *guestos.Process
	Clock *simclock.Clock
	Rand  *rand.Rand

	HeapBase mem.VA // default 1 GiB
	// RegionBytes is the fixed region size (default 32 MiB; page-aligned).
	RegionBytes uint64
	// HeapBytes is the heap's total VA footprint (default 1.5 GiB).
	HeapBytes uint64
	// MaxYoungRegions caps eden+survivor regions (default: half the heap).
	MaxYoungRegions int

	TenureThreshold  int     // default 4
	EdenSurvival     float64 // default 0.03
	SurvivorSurvival float64 // default 0.5
	SurvivalNoise    float64 // default 0.1

	MinorGCBase   time.Duration // default 50 ms
	MinorCopyNsPB float64       // default 15
	MinorScanNsPB float64       // default 0.6 (per committed young byte)

	FullGCBase         time.Duration // default 200 ms
	FullNsPB           float64       // default 8
	OldGarbageFraction float64       // default 0.3

	SafepointDelay time.Duration // default 20 ms
	CodeCacheBytes uint64        // default 48 MiB
}

func (c *RegionalConfig) fillDefaults() error {
	if c.Proc == nil {
		return errors.New("jvm: RegionalConfig.Proc is required")
	}
	if c.Clock == nil {
		return errors.New("jvm: RegionalConfig.Clock is required")
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	if c.HeapBase == 0 {
		c.HeapBase = 1 << 30
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = 32 << 20
	}
	c.RegionBytes = pageCeil(c.RegionBytes)
	if c.HeapBytes == 0 {
		c.HeapBytes = 1536 << 20
	}
	if c.HeapBytes < 4*c.RegionBytes {
		return fmt.Errorf("jvm: heap %d too small for %d-byte regions", c.HeapBytes, c.RegionBytes)
	}
	if c.MaxYoungRegions == 0 {
		c.MaxYoungRegions = int(c.HeapBytes / c.RegionBytes / 2)
	}
	if c.TenureThreshold == 0 {
		c.TenureThreshold = 4
	}
	if c.EdenSurvival == 0 {
		c.EdenSurvival = 0.03
	}
	if c.SurvivorSurvival == 0 {
		c.SurvivorSurvival = 0.5
	}
	if c.SurvivalNoise == 0 {
		c.SurvivalNoise = 0.1
	}
	if c.MinorGCBase == 0 {
		c.MinorGCBase = 50 * time.Millisecond
	}
	if c.MinorCopyNsPB == 0 {
		c.MinorCopyNsPB = 15
	}
	if c.MinorScanNsPB == 0 {
		c.MinorScanNsPB = 0.6
	}
	if c.FullGCBase == 0 {
		c.FullGCBase = 200 * time.Millisecond
	}
	if c.FullNsPB == 0 {
		c.FullNsPB = 8
	}
	if c.OldGarbageFraction == 0 {
		c.OldGarbageFraction = 0.3
	}
	if c.SafepointDelay == 0 {
		c.SafepointDelay = 20 * time.Millisecond
	}
	if c.CodeCacheBytes == 0 {
		c.CodeCacheBytes = 48 << 20
	}
	return nil
}

type pendingRegionalGC struct {
	kind     GCKind
	enforced bool
	stats    GCStats
	// survivors[age] = live bytes of that age to place into survivor
	// regions; promoted goes to old regions.
	survivors map[int]uint64
	promoted  uint64
	oldAfter  uint64

	span *obs.Span // open GC span, ended at Complete time
}

// NewRegional boots a regional heap: the region pool is laid out at HeapBase
// and the code cache above it. Regions are mapped when taken from the free
// list and unmapped when returned.
func NewRegional(cfg RegionalConfig) (*RegionalHeap, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	n := int(cfg.HeapBytes / cfg.RegionBytes)
	h := &RegionalHeap{
		cfg:     cfg,
		proc:    cfg.Proc,
		clock:   cfg.Clock,
		rng:     cfg.Rand,
		regions: make([]region, n),
	}
	for i := n - 1; i >= 0; i-- {
		h.free = append(h.free, i)
	}
	h.codeBase = cfg.HeapBase + mem.VA(uint64(n)*cfg.RegionBytes)
	h.codeBytes = pageCeil(cfg.CodeCacheBytes)
	h.codeDirty = h.codeBase
	if err := h.proc.Alloc(mem.VARange{Start: h.codeBase, End: h.codeBase + mem.VA(h.codeBytes)}); err != nil {
		return nil, fmt.Errorf("jvm: mapping code cache: %w", err)
	}
	if _, err := h.takeRegion(regEden); err != nil {
		return nil, err
	}
	return h, nil
}

// regionRange returns region i's VA range.
func (h *RegionalHeap) regionRange(i int) mem.VARange {
	start := h.cfg.HeapBase + mem.VA(uint64(i)*h.cfg.RegionBytes)
	return mem.VARange{Start: start, End: start + mem.VA(h.cfg.RegionBytes)}
}

// takeRegion maps a free region for the given class.
func (h *RegionalHeap) takeRegion(class regionClass) (int, error) {
	if len(h.free) == 0 {
		return -1, errors.New("jvm: regional heap exhausted")
	}
	i := h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	if err := h.proc.Alloc(h.regionRange(i)); err != nil {
		h.free = append(h.free, i)
		return -1, fmt.Errorf("jvm: mapping region %d: %w", i, err)
	}
	h.regions[i] = region{class: class}
	switch class {
	case regEden:
		h.eden = append(h.eden, i)
	case regSurvivor:
		h.surv = append(h.surv, i)
	case regOld:
		h.old = append(h.old, i)
	}
	if (class == regEden || class == regSurvivor) && h.onYoungGrow != nil {
		// The young generation just expanded into this region. Contiguous
		// collectors can defer expansion to the final bitmap update
		// (§3.3.4); a region-churning collector cannot — by the next GC
		// the "expansion" IS the young generation, so the agent must learn
		// about it immediately to keep skipping effective.
		h.onYoungGrow(h.regionRange(i))
	}
	return i, nil
}

// SetYoungGrowCallback installs a hook fired when the young generation
// expands into a fresh region. The JAVMM agent uses it to report the new
// skip-over range immediately.
func (h *RegionalHeap) SetYoungGrowCallback(fn func(mem.VARange)) { h.onYoungGrow = fn }

// freeRegion unmaps a region and returns it to the pool. Young regions fire
// the shrink callback: their pages left the young generation (§3.3.4).
func (h *RegionalHeap) freeRegion(i int, wasYoung bool) {
	h.proc.Free(h.regionRange(i))
	h.regions[i] = region{}
	h.free = append(h.free, i)
	if wasYoung && h.onShrink != nil {
		h.onShrink(h.regionRange(i))
	}
}

// --- runtime surface (shared with *JVM) -----------------------------------

// Allocate bump-allocates in the current eden region, taking fresh regions
// as they fill, up to the young cap. Returns bytes actually allocated.
func (h *RegionalHeap) Allocate(n uint64) uint64 {
	if h.gc != nil || h.held {
		return 0
	}
	var done uint64
	for done < n {
		cur := h.eden[len(h.eden)-1]
		r := &h.regions[cur]
		space := h.cfg.RegionBytes - r.used
		if space == 0 {
			if len(h.eden)+len(h.surv) >= h.cfg.MaxYoungRegions {
				break // young full: minor GC needed
			}
			if _, err := h.takeRegion(regEden); err != nil {
				break
			}
			continue
		}
		take := n - done
		if take > space {
			take = space
		}
		base := h.regionRange(cur).Start
		first := r.used / mem.PageSize
		last := (r.used + take - 1) / mem.PageSize
		for pg := first; pg <= last; pg++ {
			h.proc.Write(base + mem.VA(pg*mem.PageSize))
		}
		r.used += take
		done += take
	}
	h.TotalAllocated += done
	return done
}

// NeedsMinorGC reports whether the young generation is at its region cap
// with a full allocation region.
func (h *RegionalHeap) NeedsMinorGC() bool {
	if len(h.eden)+len(h.surv) < h.cfg.MaxYoungRegions {
		return false
	}
	cur := h.eden[len(h.eden)-1]
	return h.regions[cur].used == h.cfg.RegionBytes
}

// NeedsFullGC reports whether old regions occupy ≥ 90 % of the pool.
func (h *RegionalHeap) NeedsFullGC() bool {
	return float64(len(h.old)) >= 0.9*float64(len(h.regions))
}

// RequestEnforcedGC mirrors JVM.RequestEnforcedGC.
func (h *RegionalHeap) RequestEnforcedGC() {
	if h.held {
		if h.onEnforcedDone != nil {
			h.onEnforcedDone()
		}
		return
	}
	h.enforcePending = true
	h.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "enforced-gc-request", nil)
}

// ReleaseFromSafepoint releases threads held after an enforced GC.
func (h *RegionalHeap) ReleaseFromSafepoint() {
	if h.held {
		h.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "safepoint-release", nil,
			obs.Bool("held", false))
	}
	h.held = false
}

// HeldAtSafepoint mirrors JVM.HeldAtSafepoint.
func (h *RegionalHeap) HeldAtSafepoint() bool { return h.held }

// EnforcePending mirrors JVM.EnforcePending.
func (h *RegionalHeap) EnforcePending() bool { return h.enforcePending }

// SafepointDelay mirrors JVM.SafepointDelay.
func (h *RegionalHeap) SafepointDelay() time.Duration { return h.cfg.SafepointDelay }

// InGC reports whether a collection is in progress.
func (h *RegionalHeap) InGC() bool { return h.gc != nil }

func (h *RegionalHeap) survive(bytes uint64, frac float64) uint64 {
	f := frac * (1 + h.cfg.SurvivalNoise*(2*h.rng.Float64()-1))
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return uint64(float64(bytes) * f)
}

// BeginMinorGC plans an evacuation: live eden data is copied into fresh
// survivor regions, aged survivor data is copied forward or promoted, and
// every previous young region is freed.
func (h *RegionalHeap) BeginMinorGC(enforced bool) time.Duration {
	if h.gc != nil {
		panic("jvm: BeginMinorGC during active GC")
	}
	if enforced {
		h.enforcePending = false
	}
	st := GCStats{Kind: MinorGC, Enforced: enforced, OldUsedBefore: h.OldUsed()}

	var edenUsed uint64
	for _, i := range h.eden {
		edenUsed += h.regions[i].used
	}
	var survUsed uint64
	survivors := make(map[int]uint64)
	var promoted uint64
	for _, i := range h.surv {
		r := h.regions[i]
		survUsed += r.used
		s := h.survive(r.used, h.cfg.SurvivorSurvival)
		if s == 0 {
			continue
		}
		if r.age+1 >= h.cfg.TenureThreshold {
			promoted += s
		} else {
			survivors[r.age+1] += s
		}
	}
	edenLive := h.survive(edenUsed, h.cfg.EdenSurvival)
	if edenLive > 0 {
		survivors[1] += edenLive
	}

	st.YoungUsedBefore = edenUsed + survUsed
	var toLive uint64
	for _, b := range survivors {
		toLive += b
	}
	st.LiveAfter = toLive
	st.Promoted = promoted
	st.Garbage = st.YoungUsedBefore - toLive - promoted

	d := h.cfg.MinorGCBase +
		time.Duration(float64(toLive+promoted)*h.cfg.MinorCopyNsPB)*time.Nanosecond +
		time.Duration(float64(h.YoungCommitted())*h.cfg.MinorScanNsPB)*time.Nanosecond
	st.Duration = d
	h.gc = &pendingRegionalGC{kind: MinorGC, enforced: enforced, stats: st, survivors: survivors, promoted: promoted,
		span: h.tracer.Begin(obs.TrackJVM, obs.KindGC, gcSpanName(MinorGC, enforced),
			obs.Bool("enforced", enforced),
			obs.Uint64("young_used_before", st.YoungUsedBefore),
			obs.Dur("planned_pause", d))}
	return d
}

// CompleteMinorGC applies the evacuation: new survivor regions are written,
// promotions land in old regions, and the previous young regions are freed
// (firing one shrink notification per region).
func (h *RegionalHeap) CompleteMinorGC() (GCStats, error) {
	if h.gc == nil || h.gc.kind != MinorGC {
		panic("jvm: CompleteMinorGC without BeginMinorGC")
	}
	plan := h.gc
	spanClosed := false
	defer func() { // backstop: the error returns below leave the span open
		if !spanClosed {
			plan.span.End()
		}
	}()
	oldEden, oldSurv := h.eden, h.surv
	h.eden, h.surv = nil, nil

	// Place surviving cohorts into fresh survivor regions, oldest first
	// for determinism.
	ages := make([]int, 0, len(plan.survivors))
	for age := range plan.survivors {
		ages = append(ages, age)
	}
	sort.Ints(ages)
	for _, age := range ages {
		remaining := plan.survivors[age]
		for remaining > 0 {
			idx, err := h.takeRegion(regSurvivor)
			if err != nil {
				h.gc = nil
				return GCStats{}, fmt.Errorf("%w: evacuating survivors", ErrHeapExhausted)
			}
			take := remaining
			if take > h.cfg.RegionBytes {
				take = h.cfg.RegionBytes
			}
			h.regions[idx].used = take
			h.regions[idx].age = age
			h.writeRegionPrefix(idx, take)
			remaining -= take
		}
	}

	// Promote into old regions, filling the most recent partial one first.
	if err := h.placeOld(plan.promoted); err != nil {
		h.gc = nil
		return GCStats{}, err
	}
	h.TotalPromoted += plan.promoted

	// Free every previous young region: the young generation's VA set
	// changes wholesale — the churn that makes G1-style collectors
	// interesting for JAVMM (§6).
	for _, i := range oldEden {
		h.freeRegion(i, true)
	}
	for _, i := range oldSurv {
		h.freeRegion(i, true)
	}

	// Fresh allocation region.
	if _, err := h.takeRegion(regEden); err != nil {
		h.gc = nil
		return GCStats{}, err
	}

	h.TotalGarbage += plan.stats.Garbage
	st := plan.stats
	st.At = h.clock.Now()
	st.OldUsedAfter = h.OldUsed()
	st.YoungCommittedAfter = h.YoungCommitted()
	h.MinorGCs++
	h.History = append(h.History, st)
	h.lastMinorGCAt = st.At
	h.gc = nil

	spanClosed = true
	plan.span.End(
		obs.Uint64("garbage", st.Garbage),
		obs.Uint64("promoted", st.Promoted),
		obs.Dur("pause", st.Duration))
	if m := h.metrics; m != nil {
		m.Counter("jvm.gc.minor").Inc()
		m.Counter("jvm.gc.pause_ns").AddDuration(st.Duration)
		m.Counter("jvm.gc.garbage_bytes").Add(int64(st.Garbage))
		m.Counter("jvm.gc.promoted_bytes").Add(int64(st.Promoted))
		if plan.enforced {
			m.Counter("jvm.gc.enforced").Inc()
			m.Counter("jvm.gc.enforced_pause_ns").AddDuration(st.Duration)
		}
	}

	if h.onGCEnd != nil {
		h.onGCEnd(st)
	}
	if plan.enforced {
		h.held = true
		h.tracer.Emit(obs.TrackJVM, obs.KindSafepoint, "safepoint-hold", nil,
			obs.Bool("held", true))
		if h.onEnforcedDone != nil {
			h.onEnforcedDone()
		}
	}
	return st, nil
}

// writeRegionPrefix dirties the first `bytes` of region idx.
func (h *RegionalHeap) writeRegionPrefix(idx int, bytes uint64) {
	if bytes == 0 {
		return
	}
	base := h.regionRange(idx).Start
	for pg := uint64(0); pg*mem.PageSize < bytes; pg++ {
		h.proc.Write(base + mem.VA(pg*mem.PageSize))
	}
}

// placeOld appends bytes into old regions.
func (h *RegionalHeap) placeOld(bytes uint64) error {
	for bytes > 0 {
		var idx int
		if len(h.old) > 0 && h.regions[h.old[len(h.old)-1]].used < h.cfg.RegionBytes {
			idx = h.old[len(h.old)-1]
		} else {
			var err error
			idx, err = h.takeRegion(regOld)
			if err != nil {
				return fmt.Errorf("%w: promoting %d bytes", ErrHeapExhausted, bytes)
			}
		}
		r := &h.regions[idx]
		take := h.cfg.RegionBytes - r.used
		if take > bytes {
			take = bytes
		}
		base := h.regionRange(idx).Start
		first := r.used / mem.PageSize
		last := (r.used + take - 1) / mem.PageSize
		for pg := first; pg <= last; pg++ {
			h.proc.Write(base + mem.VA(pg*mem.PageSize))
		}
		r.used += take
		bytes -= take
	}
	return nil
}

// BeginFullGC plans an old-region collection.
func (h *RegionalHeap) BeginFullGC() time.Duration {
	if h.gc != nil {
		panic("jvm: BeginFullGC during active GC")
	}
	used := h.OldUsed()
	garbage := h.survive(used, h.cfg.OldGarbageFraction)
	st := GCStats{
		Kind:          FullGC,
		OldUsedBefore: used,
		OldUsedAfter:  used - garbage,
		Garbage:       garbage,
	}
	d := h.cfg.FullGCBase + time.Duration(float64(used)*h.cfg.FullNsPB)*time.Nanosecond
	st.Duration = d
	h.gc = &pendingRegionalGC{kind: FullGC, stats: st, oldAfter: st.OldUsedAfter,
		span: h.tracer.Begin(obs.TrackJVM, obs.KindGC, gcSpanName(FullGC, false),
			obs.Uint64("old_used_before", st.OldUsedBefore),
			obs.Dur("planned_pause", d))}
	return d
}

// CompleteFullGC compacts old data into the minimum number of regions and
// frees the rest.
func (h *RegionalHeap) CompleteFullGC() GCStats {
	if h.gc == nil || h.gc.kind != FullGC {
		panic("jvm: CompleteFullGC without BeginFullGC")
	}
	plan := h.gc
	// Compact: rewrite the surviving bytes into the leading old regions.
	remaining := plan.oldAfter
	keep := 0
	for _, idx := range h.old {
		if remaining == 0 {
			break
		}
		take := h.cfg.RegionBytes
		if take > remaining {
			take = remaining
		}
		h.regions[idx].used = take
		h.writeRegionPrefix(idx, take)
		remaining -= take
		keep++
	}
	for _, idx := range h.old[keep:] {
		h.freeRegion(idx, false)
	}
	h.old = h.old[:keep]
	h.TotalGarbage += plan.stats.Garbage

	st := plan.stats
	st.At = h.clock.Now()
	st.YoungCommittedAfter = h.YoungCommitted()
	h.FullGCs++
	h.History = append(h.History, st)
	h.gc = nil
	plan.span.End(obs.Uint64("garbage", st.Garbage), obs.Dur("pause", st.Duration))
	if m := h.metrics; m != nil {
		m.Counter("jvm.gc.full").Inc()
		m.Counter("jvm.gc.pause_ns").AddDuration(st.Duration)
		m.Counter("jvm.gc.garbage_bytes").Add(int64(st.Garbage))
	}
	if h.onGCEnd != nil {
		h.onGCEnd(st)
	}
	return st
}

// MutateOld dirties n pages uniformly across used old-region bytes.
func (h *RegionalHeap) MutateOld(n int) {
	if len(h.old) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		idx := h.old[h.rng.Intn(len(h.old))]
		r := h.regions[idx]
		if r.used == 0 {
			continue
		}
		pages := (r.used + mem.PageSize - 1) / mem.PageSize
		pg := uint64(h.rng.Int63n(int64(pages)))
		h.proc.Write(h.regionRange(idx).Start + mem.VA(pg*mem.PageSize))
	}
}

// JITChurn dirties n code-cache pages round-robin.
func (h *RegionalHeap) JITChurn(n int) {
	for i := 0; i < n; i++ {
		h.proc.Write(h.codeDirty)
		h.codeDirty += mem.PageSize
		if h.codeDirty >= h.codeBase+mem.VA(h.codeBytes) {
			h.codeDirty = h.codeBase
		}
	}
}

// SeedOld fills old regions with long-lived startup data.
func (h *RegionalHeap) SeedOld(bytes uint64) error {
	if err := h.placeOld(bytes); err != nil {
		return err
	}
	h.TotalAllocated += bytes
	return nil
}

// --- agent surface ---------------------------------------------------------

// YoungAreas returns the current young generation as merged, sorted VA
// ranges — genuinely non-contiguous for this collector.
func (h *RegionalHeap) YoungAreas() []mem.VARange {
	idxs := make([]int, 0, len(h.eden)+len(h.surv))
	idxs = append(idxs, h.eden...)
	idxs = append(idxs, h.surv...)
	return h.mergeRegionRanges(idxs)
}

// ReadyAreas returns the post-enforced-GC skip areas: young regions minus
// the occupied survivor prefixes.
func (h *RegionalHeap) ReadyAreas() []mem.VARange {
	var out []mem.VARange
	for _, areas := range [][]int{h.eden, h.surv} {
		for _, i := range areas {
			r := h.regions[i]
			full := h.regionRange(i)
			if r.used == 0 {
				out = append(out, full)
				continue
			}
			liveEnd := (full.Start + mem.VA(r.used) + mem.PageMask).PageBase()
			if liveEnd < full.End {
				out = append(out, mem.VARange{Start: liveEnd, End: full.End})
			}
		}
	}
	return out
}

// SetTICallbacks installs the agent hooks.
func (h *RegionalHeap) SetTICallbacks(onShrink func(mem.VARange), onGCEnd func(GCStats), onEnforcedDone func()) {
	h.onShrink = onShrink
	h.onGCEnd = onGCEnd
	h.onEnforcedDone = onEnforcedDone
}

// GCHistory returns completed collections.
func (h *RegionalHeap) GCHistory() []GCStats { return h.History }

// HintAreas mirrors JVM.HintAreas for the regional collector: occupied old
// regions hint strong, the code cache fast.
func (h *RegionalHeap) HintAreas() (strong, fast []mem.VARange) {
	for _, i := range h.old {
		r := h.regions[i]
		if r.used == 0 {
			continue
		}
		full := h.regionRange(i)
		strong = append(strong, mem.VARange{Start: full.Start, End: full.Start + mem.VA(r.used)})
	}
	fast = append(fast, mem.VARange{Start: h.codeBase, End: h.codeBase + mem.VA(h.codeBytes)})
	return strong, fast
}

// mergeRegionRanges merges adjacent regions into maximal ranges.
func (h *RegionalHeap) mergeRegionRanges(idxs []int) []mem.VARange {
	if len(idxs) == 0 {
		return nil
	}
	sort.Ints(idxs)
	var out []mem.VARange
	cur := h.regionRange(idxs[0])
	for _, i := range idxs[1:] {
		r := h.regionRange(i)
		if r.Start == cur.End {
			cur.End = r.End
			continue
		}
		out = append(out, cur)
		cur = r
	}
	return append(out, cur)
}

// --- reporting -------------------------------------------------------------

// YoungCommitted returns the young generation's committed bytes.
func (h *RegionalHeap) YoungCommitted() uint64 {
	return uint64(len(h.eden)+len(h.surv)) * h.cfg.RegionBytes
}

// YoungUsed returns occupied young bytes.
func (h *RegionalHeap) YoungUsed() uint64 {
	var t uint64
	for _, i := range h.eden {
		t += h.regions[i].used
	}
	for _, i := range h.surv {
		t += h.regions[i].used
	}
	return t
}

// OldUsed returns occupied old bytes.
func (h *RegionalHeap) OldUsed() uint64 {
	var t uint64
	for _, i := range h.old {
		t += h.regions[i].used
	}
	return t
}

// FreeRegions returns the free-pool size.
func (h *RegionalHeap) FreeRegions() int { return len(h.free) }

// CheckConservation verifies the allocation ledger.
func (h *RegionalHeap) CheckConservation() error {
	live := h.YoungUsed() + h.OldUsed()
	if h.TotalAllocated != live+h.TotalGarbage {
		return fmt.Errorf("jvm: regional conservation violated: allocated %d != live %d + garbage %d",
			h.TotalAllocated, live, h.TotalGarbage)
	}
	return nil
}
