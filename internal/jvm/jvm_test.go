package jvm

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

// newTestJVM boots a JVM inside a 256 MiB guest.
func newTestJVM(t *testing.T, cfg Config) (*JVM, *guestos.Guest, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(65536), 4)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	proc := g.NewProcess("java")
	cfg.Proc = proc
	cfg.Clock = clock
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(7))
	}
	if cfg.MaxYoungBytes == 0 {
		cfg.MaxYoungBytes = 64 << 20
	}
	if cfg.InitialYoungBytes == 0 {
		cfg.InitialYoungBytes = 16 << 20
	}
	if cfg.MaxOldBytes == 0 {
		cfg.MaxOldBytes = 64 << 20
	}
	if cfg.CodeCacheBytes == 0 {
		cfg.CodeCacheBytes = 4 << 20
	}
	j, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j, g, clock
}

func TestNewLayout(t *testing.T) {
	j, _, _ := newTestJVM(t, Config{})
	yr := j.YoungRange()
	if yr.Len() != 16<<20 {
		t.Fatalf("young committed = %d, want 16 MiB", yr.Len())
	}
	// Survivor ratio 8: eden 8/10 of committed (up to page rounding).
	if j.edenBytes < uint64(float64(j.youngCommitted)*0.75) {
		t.Fatalf("eden = %d of %d committed", j.edenBytes, j.youngCommitted)
	}
	if j.edenBytes+2*j.survivorBytes != j.youngCommitted {
		t.Fatal("eden + 2*survivor != committed")
	}
	// Old and code mappings exist beyond the young max extent.
	if j.oldBase < yr.Start+mem.VA(j.cfg.MaxYoungBytes) {
		t.Fatal("old generation overlaps young extent")
	}
	if j.CodeCacheRange().Len() != 4<<20 {
		t.Fatalf("code cache = %d", j.CodeCacheRange().Len())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Proc succeeded")
	}
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(65536), 1)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	if _, err := New(Config{Proc: g.NewProcess("x")}); err == nil {
		t.Fatal("New without Clock succeeded")
	}
	if _, err := New(Config{
		Proc: g.NewProcess("y"), Clock: clock,
		InitialYoungBytes: 2 << 20, MaxYoungBytes: 1 << 20,
	}); err == nil {
		t.Fatal("initial young > max young accepted")
	}
}

func TestAllocateFillsEdenAndDirtiesPages(t *testing.T) {
	j, g, _ := newTestJVM(t, Config{})
	g.Dom.EnableLogDirty()
	got := j.Allocate(1 << 20)
	if got != 1<<20 {
		t.Fatalf("Allocate = %d", got)
	}
	if j.TotalAllocated != 1<<20 {
		t.Fatalf("TotalAllocated = %d", j.TotalAllocated)
	}
	// 1 MiB = 256 pages dirtied.
	if d := g.Dom.DirtyCount(); d != 256 {
		t.Fatalf("dirty pages = %d, want 256", d)
	}
	// Fill the rest of Eden: the return value caps at EdenFree.
	free := j.EdenFree()
	if got := j.Allocate(free + 12345); got != free {
		t.Fatalf("overfill Allocate = %d, want %d", got, free)
	}
	if !j.NeedsMinorGC() {
		t.Fatal("full Eden does not demand a GC")
	}
	if got := j.Allocate(1); got != 0 {
		t.Fatalf("Allocate on full Eden = %d", got)
	}
}

func TestMinorGCLifecycle(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.1, SurvivalNoise: 0.0001})
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	if d < j.cfg.MinorGCBase {
		t.Fatalf("GC duration %v below base", d)
	}
	if !j.InGC() {
		t.Fatal("InGC = false during GC")
	}
	if j.Allocate(100) != 0 {
		t.Fatal("allocation succeeded during GC")
	}
	clock.Advance(d)
	st, err := j.CompleteMinorGC()
	if err != nil {
		t.Fatal(err)
	}
	if j.InGC() {
		t.Fatal("InGC after completion")
	}
	if j.edenUsed != 0 {
		t.Fatal("Eden not empty after minor GC")
	}
	// ~10% of eden survived into From.
	if j.fromUsed == 0 || j.fromUsed > j.survivorBytes {
		t.Fatalf("fromUsed = %d", j.fromUsed)
	}
	if st.Garbage+st.LiveAfter+st.Promoted != st.YoungUsedBefore {
		t.Fatal("GC stats do not add up")
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if j.MinorGCs != 1 {
		t.Fatalf("MinorGCs = %d", j.MinorGCs)
	}
}

func TestSurvivorAgingAndPromotion(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{
		EdenSurvival:     0.2,
		SurvivorSurvival: 0.999999, // effectively everything survives
		SurvivalNoise:    1e-9,
		TenureThreshold:  3,
	})
	for i := 0; i < 6; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
		if err := j.CheckConservation(); err != nil {
			t.Fatalf("after GC %d: %v", i, err)
		}
	}
	// With tenure 3 and near-total survivor survival, promotions must have
	// happened.
	if j.TotalPromoted == 0 {
		t.Fatal("no promotions after 6 GCs with tenure threshold 3")
	}
	if j.oldUsed == 0 {
		t.Fatal("old generation empty despite promotions")
	}
	// No cohort in From can be older than the tenure threshold.
	for _, c := range j.fromCohorts {
		if c.age >= j.cfg.TenureThreshold {
			t.Fatalf("cohort age %d survived past tenure threshold", c.age)
		}
	}
}

func TestSurvivorOverflowPromotesEarly(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{
		EdenSurvival:  0.9, // survivor space cannot hold 90% of Eden
		SurvivalNoise: 1e-9,
	})
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	st, err := j.CompleteMinorGC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted == 0 {
		t.Fatal("survivor overflow did not promote")
	}
	if j.fromUsed > j.survivorBytes {
		t.Fatal("From space over capacity")
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveGrowthUnderPressure(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.02})
	before := j.YoungCommitted()
	// Rapid refills: every GC happens well inside GrowBelow (3s).
	for i := 0; i < 4; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(100 * time.Millisecond)
	}
	if j.YoungCommitted() <= before {
		t.Fatalf("young did not grow under allocation pressure: %d", j.YoungCommitted())
	}
	// Growth caps at the maximum.
	for i := 0; i < 10; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	if j.YoungCommitted() != pageCeil(j.cfg.MaxYoungBytes) {
		t.Fatalf("young = %d, want max %d", j.YoungCommitted(), j.cfg.MaxYoungBytes)
	}
}

func TestAdaptiveShrinkWhenIdle(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.02})
	var shrunk []mem.VARange
	j.OnYoungShrink = func(r mem.VARange) { shrunk = append(shrunk, r) }

	// Grow first.
	for i := 0; i < 3; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.YoungCommitted()
	// Then a long-idle GC: interval > ShrinkAbove (30s).
	clock.Advance(40 * time.Second)
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if j.YoungCommitted() >= grown {
		t.Fatalf("young did not shrink after idle: %d", j.YoungCommitted())
	}
	if len(shrunk) == 0 {
		t.Fatal("OnYoungShrink not invoked")
	}
	// The freed range is the committed tail.
	last := shrunk[len(shrunk)-1]
	if last.End != j.youngBase+mem.VA(grown) {
		t.Fatalf("freed range %v does not end at old committed boundary", last)
	}
}

func TestEnforcedGCHoldsThreads(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{})
	var done int
	j.OnEnforcedDone = func() { done++ }
	j.Allocate(4 << 20)
	j.RequestEnforcedGC()
	if !j.EnforcePending() {
		t.Fatal("EnforcePending = false after request")
	}
	d := j.BeginMinorGC(true)
	if j.EnforcePending() {
		t.Fatal("EnforcePending still true after Begin")
	}
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("OnEnforcedDone calls = %d", done)
	}
	if !j.HeldAtSafepoint() {
		t.Fatal("threads not held after enforced GC")
	}
	if j.Allocate(100) != 0 {
		t.Fatal("allocation succeeded while held at Safepoint")
	}
	// Eden and To are empty: the post-collection state JAVMM ships.
	if j.edenUsed != 0 {
		t.Fatal("Eden not empty")
	}
	j.ReleaseFromSafepoint()
	if j.HeldAtSafepoint() {
		t.Fatal("still held after release")
	}
	if j.Allocate(100) != 100 {
		t.Fatal("allocation failed after release")
	}
}

func TestEnforcedGCWhileHeldCompletesImmediately(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{})
	var done int
	j.OnEnforcedDone = func() { done++ }
	j.Allocate(1 << 20)
	d := j.BeginMinorGC(true)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	j.RequestEnforcedGC() // already held: callback fires, no new GC needed
	if done != 2 {
		t.Fatalf("OnEnforcedDone calls = %d, want 2", done)
	}
	if j.EnforcePending() {
		t.Fatal("EnforcePending set while held")
	}
}

func TestEnforcedGCSkipsAdaptiveResizing(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.02})
	// Warm up so an interval exists.
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	committed := j.YoungCommitted()
	// Enforced GC right after (interval < GrowBelow would normally grow).
	j.Allocate(1 << 20)
	d = j.BeginMinorGC(true)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if j.YoungCommitted() != committed {
		t.Fatal("enforced GC resized the young generation")
	}
	j.ReleaseFromSafepoint()
}

func TestFullGCCollectsOld(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{
		EdenSurvival: 0.5, TenureThreshold: 1, SurvivalNoise: 1e-9,
		OldGarbageFraction: 0.4,
	})
	// Build up old data via promotion (tenure 1 promotes all survivors).
	for i := 0; i < 4; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	before := j.OldUsed()
	if before == 0 {
		t.Fatal("no old data to collect")
	}
	d := j.BeginFullGC()
	if d < j.cfg.FullGCBase {
		t.Fatalf("full GC duration %v below base", d)
	}
	clock.Advance(d)
	st := j.CompleteFullGC()
	if st.OldUsedAfter >= before {
		t.Fatal("full GC reclaimed nothing")
	}
	if j.OldUsed() != st.OldUsedAfter {
		t.Fatal("OldUsed inconsistent with stats")
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if j.FullGCs != 1 {
		t.Fatalf("FullGCs = %d", j.FullGCs)
	}
}

func TestHeapExhaustionReturnsError(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{
		EdenSurvival: 0.9, TenureThreshold: 1, SurvivalNoise: 1e-9,
		MaxOldBytes: 8 << 20, // tiny old gen
	})
	var last error
	for i := 0; i < 50 && last == nil; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		_, last = j.CompleteMinorGC()
	}
	if !errors.Is(last, ErrHeapExhausted) {
		t.Fatalf("err = %v, want ErrHeapExhausted", last)
	}
}

func TestGCPanicsOnMisuse(t *testing.T) {
	j, _, _ := newTestJVM(t, Config{})
	j.Allocate(1 << 20)
	j.BeginMinorGC(false)
	for name, fn := range map[string]func(){
		"double begin": func() { j.BeginMinorGC(false) },
		"full during":  func() { j.BeginFullGC() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CompleteFullGC after BeginMinorGC did not panic")
			}
		}()
		j.CompleteFullGC()
	}()
}

func TestGCEndCallbackAndHistory(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{})
	var events []GCStats
	j.OnGCEnd = func(st GCStats) { events = append(events, st) }
	j.Allocate(1 << 20)
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || len(j.History) != 1 {
		t.Fatalf("events = %d history = %d", len(events), len(j.History))
	}
	if events[0].Kind != MinorGC || events[0].Duration != d {
		t.Fatalf("event = %+v", events[0])
	}
	if events[0].At != clock.Now() {
		t.Fatal("event timestamp wrong")
	}
}

func TestMutateOldAndJITChurnDirtyPages(t *testing.T) {
	j, g, clock := newTestJVM(t, Config{EdenSurvival: 0.5, TenureThreshold: 1, SurvivalNoise: 1e-9})
	// Promote something first so old has content.
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	g.Dom.EnableLogDirty()
	j.MutateOld(10)
	if g.Dom.DirtyCount() == 0 {
		t.Fatal("MutateOld dirtied nothing")
	}
	snap := mem.NewBitmap(g.Dom.NumPages())
	g.Dom.PeekAndClear(snap)
	j.JITChurn(5)
	if g.Dom.DirtyCount() != 5 {
		t.Fatalf("JITChurn dirtied %d pages, want 5", g.Dom.DirtyCount())
	}
}

func TestFromLiveRangeWithinYoung(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.1, SurvivalNoise: 1e-9})
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	fl := j.FromLiveRange()
	yr := j.YoungRange()
	if fl.Empty() {
		t.Fatal("no From live range after GC with survivors")
	}
	if fl.Start < yr.Start || fl.End > yr.End {
		t.Fatalf("From live %v outside young %v", fl, yr)
	}
	if fl.Len() != j.fromUsed {
		t.Fatalf("From live len %d != fromUsed %d", fl.Len(), j.fromUsed)
	}
}

// Property: across randomized GC sequences the conservation ledger holds and
// occupancy never exceeds capacity.
func TestRandomizedGCConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		cfg := Config{
			EdenSurvival:     0.01 + rng.Float64()*0.5,
			SurvivorSurvival: 0.2 + rng.Float64()*0.7,
			TenureThreshold:  1 + rng.Intn(5),
			SurvivalNoise:    rng.Float64() * 0.2,
			Rand:             rand.New(rand.NewSource(int64(trial))),
		}
		j, _, clock := newTestJVM(t, cfg)
		for i := 0; i < 30; i++ {
			j.Allocate(uint64(rng.Int63n(int64(j.EdenFree() + 1))))
			if j.NeedsMinorGC() || rng.Intn(3) == 0 {
				d := j.BeginMinorGC(false)
				clock.Advance(d)
				if _, err := j.CompleteMinorGC(); err != nil {
					if errors.Is(err, ErrHeapExhausted) {
						break
					}
					t.Fatal(err)
				}
			}
			if j.NeedsFullGC() {
				d := j.BeginFullGC()
				clock.Advance(d)
				j.CompleteFullGC()
			}
			if err := j.CheckConservation(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
			if j.edenUsed > j.edenBytes || j.fromUsed > j.survivorBytes {
				t.Fatalf("trial %d: occupancy exceeds capacity", trial)
			}
			clock.Advance(time.Duration(rng.Intn(2000)) * time.Millisecond)
		}
	}
}

func TestALBShrinkAndRelease(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.02})
	// Grow under pressure first.
	for i := 0; i < 3; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.YoungCommitted()
	if grown <= 16<<20 {
		t.Fatalf("young did not grow: %d", grown)
	}

	j.ALBShrink(16 << 20)
	if !j.ALBActive() {
		t.Fatal("ALB not active after shrink request")
	}
	// The next GC applies the balloon.
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if j.YoungCommitted() != 16<<20 {
		t.Fatalf("young = %d MiB under ALB, want 16", j.YoungCommitted()>>20)
	}
	// Pinned: rapid refills do NOT regrow it while ALB is active.
	for i := 0; i < 3; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	if j.YoungCommitted() != 16<<20 {
		t.Fatalf("ALB pin broken: young = %d MiB", j.YoungCommitted()>>20)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	// Release: allocation pressure regrows the young generation.
	j.ALBRelease()
	if j.ALBActive() {
		t.Fatal("ALB still active after release")
	}
	for i := 0; i < 3; i++ {
		j.Allocate(j.EdenFree())
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	if j.YoungCommitted() <= 16<<20 {
		t.Fatal("young did not regrow after ALB release")
	}
}

func TestALBShrinkFloorsAtLiveData(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.9, SurvivalNoise: 1e-9})
	j.Allocate(j.EdenFree())
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	// Request an absurdly small balloon; live survivor data floors it.
	j.ALBShrink(1)
	j.Allocate(j.EdenFree())
	d = j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if j.fromUsed > j.survivorBytes {
		t.Fatal("ALB shrank survivor space below live data")
	}
}

func TestHeapInterfaceSurface(t *testing.T) {
	j, _, clock := newTestJVM(t, Config{EdenSurvival: 0.1, SurvivalNoise: 1e-9})
	// YoungAreas: exactly the contiguous young range.
	areas := j.YoungAreas()
	if len(areas) != 1 || areas[0] != j.YoungRange() {
		t.Fatalf("YoungAreas = %v", areas)
	}
	// GCHistory mirrors History.
	j.Allocate(4 << 20)
	d := j.BeginMinorGC(false)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if len(j.GCHistory()) != 1 {
		t.Fatalf("GCHistory = %d entries", len(j.GCHistory()))
	}
	// ReadyAreas tile the young generation together with the page-rounded
	// live range.
	ready := j.ReadyAreas()
	var covered uint64
	for _, a := range ready {
		covered += a.Len()
	}
	live := j.FromLiveRange()
	liveAligned := mem.VARange{Start: live.Start.PageBase(), End: (live.End + mem.PageMask).PageBase()}
	if covered+liveAligned.Len() != j.YoungRange().Len() {
		t.Fatalf("ReadyAreas %v + live %v do not tile young", ready, liveAligned)
	}
	// SetTICallbacks installs all three hooks.
	var shrinks, gcs, dones int
	j.SetTICallbacks(
		func(mem.VARange) { shrinks++ },
		func(GCStats) { gcs++ },
		func() { dones++ },
	)
	j.Allocate(1 << 20)
	d = j.BeginMinorGC(true)
	clock.Advance(d)
	if _, err := j.CompleteMinorGC(); err != nil {
		t.Fatal(err)
	}
	if gcs != 1 || dones != 1 {
		t.Fatalf("hooks: gcs=%d dones=%d", gcs, dones)
	}
	j.ReleaseFromSafepoint()
}

// SeedOld is exercised by the workload package; its invariants are here.
func TestSeedOld(t *testing.T) {
	j, _, _ := newTestJVM(t, Config{})
	if err := j.SeedOld(10 << 20); err != nil {
		t.Fatal(err)
	}
	if j.OldUsed() != 10<<20 {
		t.Fatalf("OldUsed = %d", j.OldUsed())
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := j.SeedOld(1 << 40); err == nil {
		t.Fatal("absurd seed accepted")
	}
}
