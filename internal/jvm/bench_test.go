package jvm

import (
	"math/rand"
	"testing"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

func benchJVM(b *testing.B) (*JVM, *simclock.Clock) {
	b.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(262144), 4) // 1 GiB
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	j, err := New(Config{
		Proc:              g.NewProcess("java"),
		Clock:             clock,
		Rand:              rand.New(rand.NewSource(1)),
		InitialYoungBytes: 128 << 20,
		MaxYoungBytes:     256 << 20,
		MaxOldBytes:       256 << 20,
		CodeCacheBytes:    8 << 20,
		EdenSurvival:      0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	return j, clock
}

// collectIfNeeded runs the GCs a workload driver would, so long benchmark
// loops do not exhaust the old generation.
func collectIfNeeded(b *testing.B, j *JVM, clock *simclock.Clock) {
	b.Helper()
	if j.NeedsFullGC() {
		d := j.BeginFullGC()
		clock.Advance(d)
		j.CompleteFullGC()
	}
	if j.NeedsMinorGC() {
		d := j.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := j.CompleteMinorGC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocate measures bump allocation with page touching — the hot
// loop behind every workload's dirtying.
func BenchmarkAllocate(b *testing.B) {
	j, clock := benchJVM(b)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if j.Allocate(1<<20) < 1<<20 {
			collectIfNeeded(b, j, clock)
		}
	}
}

// BenchmarkMinorGCCycle measures a full fill-and-collect cycle.
func BenchmarkMinorGCCycle(b *testing.B) {
	j, clock := benchJVM(b)
	for i := 0; i < b.N; i++ {
		j.Allocate(j.EdenFree())
		collectIfNeeded(b, j, clock)
	}
}

// BenchmarkRegionalMinorGCCycle measures the G1-style evacuation cycle.
func BenchmarkRegionalMinorGCCycle(b *testing.B) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(262144), 4)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	h, err := NewRegional(RegionalConfig{
		Proc:           g.NewProcess("java-g1"),
		Clock:          clock,
		Rand:           rand.New(rand.NewSource(1)),
		RegionBytes:    16 << 20,
		HeapBytes:      512 << 20,
		CodeCacheBytes: 8 << 20,
		EdenSurvival:   0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Allocate(64 << 20)
		d := h.BeginMinorGC(false)
		clock.Advance(d)
		if _, err := h.CompleteMinorGC(); err != nil {
			b.Fatal(err)
		}
	}
}
