package jvm

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/simclock"
)

func newTestRegional(t *testing.T, cfg RegionalConfig) (*RegionalHeap, *guestos.Guest, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(131072), 4) // 512 MiB
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	proc := g.NewProcess("java-g1")
	cfg.Proc = proc
	cfg.Clock = clock
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(5))
	}
	if cfg.RegionBytes == 0 {
		cfg.RegionBytes = 8 << 20
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 256 << 20
	}
	if cfg.CodeCacheBytes == 0 {
		cfg.CodeCacheBytes = 4 << 20
	}
	h, err := NewRegional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, g, clock
}

func (h *RegionalHeap) runMinorGC(t *testing.T, clock *simclock.Clock, enforced bool) GCStats {
	t.Helper()
	d := h.BeginMinorGC(enforced)
	clock.Advance(d)
	st, err := h.CompleteMinorGC()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRegionalValidation(t *testing.T) {
	if _, err := NewRegional(RegionalConfig{}); err == nil {
		t.Fatal("missing proc accepted")
	}
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(1024), 1)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	if _, err := NewRegional(RegionalConfig{Proc: g.NewProcess("x")}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewRegional(RegionalConfig{
		Proc: g.NewProcess("y"), Clock: clock,
		RegionBytes: 8 << 20, HeapBytes: 8 << 20,
	}); err == nil {
		t.Fatal("heap smaller than 4 regions accepted")
	}
}

func TestRegionalAllocateTakesRegions(t *testing.T) {
	h, g, _ := newTestRegional(t, RegionalConfig{})
	g.Dom.EnableLogDirty()
	got := h.Allocate(20 << 20) // crosses two 8 MiB regions into a third
	if got != 20<<20 {
		t.Fatalf("Allocate = %d", got)
	}
	if len(h.eden) != 3 {
		t.Fatalf("eden regions = %d, want 3", len(h.eden))
	}
	// 20 MiB of allocation writes, but taking regions 2 and 3 zeroed their
	// full 8 MiB each: total dirty = 3 regions × 2048 pages.
	if g.Dom.DirtyCount() != 6144 {
		t.Fatalf("dirty pages = %d, want 6144", g.Dom.DirtyCount())
	}
	if err := h.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalYoungAreasNonContiguous(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{EdenSurvival: 0.3, SurvivalNoise: 1e-9})
	// Allocate and GC a few times so regions churn and survivors appear.
	for i := 0; i < 3; i++ {
		h.Allocate(40 << 20)
		h.runMinorGC(t, clock, false)
	}
	h.Allocate(40 << 20)
	areas := h.YoungAreas()
	if len(areas) == 0 {
		t.Fatal("no young areas")
	}
	var total uint64
	for _, a := range areas {
		if a.Len()%h.cfg.RegionBytes != 0 {
			t.Fatalf("area %v is not region-aligned", a)
		}
		total += a.Len()
	}
	if total != h.YoungCommitted() {
		t.Fatalf("areas cover %d, committed %d", total, h.YoungCommitted())
	}
	// With LIFO region recycling and churn, the young set fragments.
	if len(areas) < 2 {
		t.Logf("young areas = %v (contiguous this run; acceptable but unusual)", areas)
	}
}

func TestRegionalMinorGCFreesAndEvacuates(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{EdenSurvival: 0.25, SurvivalNoise: 1e-9})
	var freed []mem.VARange
	h.SetTICallbacks(func(r mem.VARange) { freed = append(freed, r) }, nil, nil)

	h.Allocate(30 << 20)
	edenBefore := len(h.eden)
	st := h.runMinorGC(t, clock, false)

	if st.Garbage == 0 || st.LiveAfter == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Garbage+st.LiveAfter+st.Promoted != st.YoungUsedBefore {
		t.Fatal("GC stats do not add up")
	}
	// All previous young regions were freed (one shrink per region).
	if len(freed) < edenBefore {
		t.Fatalf("freed %d regions, had %d eden", len(freed), edenBefore)
	}
	// Survivors live in fresh survivor regions.
	if len(h.surv) == 0 {
		t.Fatal("no survivor regions after GC with survivors")
	}
	if h.YoungUsed() != st.LiveAfter {
		t.Fatalf("young used %d != live %d", h.YoungUsed(), st.LiveAfter)
	}
	if err := h.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalPromotionAndTenure(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{
		EdenSurvival: 0.3, SurvivorSurvival: 0.999999, SurvivalNoise: 1e-9,
		TenureThreshold: 2,
	})
	for i := 0; i < 4; i++ {
		h.Allocate(30 << 20)
		h.runMinorGC(t, clock, false)
	}
	if h.TotalPromoted == 0 {
		t.Fatal("no promotions")
	}
	if len(h.old) == 0 {
		t.Fatal("no old regions despite promotions")
	}
	for _, i := range h.surv {
		if h.regions[i].age >= h.cfg.TenureThreshold {
			t.Fatalf("survivor region with age %d past tenure", h.regions[i].age)
		}
	}
	if err := h.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalNeedsMinorGCAtCap(t *testing.T) {
	h, _, _ := newTestRegional(t, RegionalConfig{MaxYoungRegions: 4})
	if h.NeedsMinorGC() {
		t.Fatal("fresh heap demands GC")
	}
	// Fill exactly 4 regions.
	if got := h.Allocate(64 << 20); got != 32<<20 {
		t.Fatalf("Allocate = %d, want capped at 4 regions (32 MiB)", got)
	}
	if !h.NeedsMinorGC() {
		t.Fatal("young at cap does not demand GC")
	}
	if h.Allocate(1) != 0 {
		t.Fatal("allocation continued past the young cap")
	}
}

func TestRegionalEnforcedGCHoldsThreads(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{EdenSurvival: 0.2, SurvivalNoise: 1e-9})
	var done int
	h.SetTICallbacks(nil, nil, func() { done++ })
	h.Allocate(20 << 20)
	h.RequestEnforcedGC()
	if !h.EnforcePending() {
		t.Fatal("enforce not pending")
	}
	h.runMinorGC(t, clock, true)
	if done != 1 {
		t.Fatalf("enforced-done calls = %d", done)
	}
	if !h.HeldAtSafepoint() {
		t.Fatal("threads not held")
	}
	if h.Allocate(1) != 0 {
		t.Fatal("allocation while held")
	}
	// Ready areas: young regions minus live survivor prefixes.
	ready := h.ReadyAreas()
	var readyBytes uint64
	for _, a := range ready {
		readyBytes += a.Len()
	}
	liveAligned := uint64(0)
	for _, i := range h.surv {
		liveAligned += pageCeil(h.regions[i].used)
	}
	if readyBytes+liveAligned != h.YoungCommitted() {
		t.Fatalf("ready %d + live %d != committed %d", readyBytes, liveAligned, h.YoungCommitted())
	}
	h.ReleaseFromSafepoint()
	if h.Allocate(1<<20) != 1<<20 {
		t.Fatal("allocation failed after release")
	}
}

func TestRegionalFullGCCompacts(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{
		EdenSurvival: 0.4, SurvivorSurvival: 0.9, SurvivalNoise: 1e-9,
		TenureThreshold: 1, OldGarbageFraction: 0.5,
	})
	for i := 0; i < 3; i++ {
		h.Allocate(30 << 20)
		h.runMinorGC(t, clock, false)
	}
	oldBefore := h.OldUsed()
	regionsBefore := len(h.old)
	if oldBefore == 0 {
		t.Fatal("no old data")
	}
	d := h.BeginFullGC()
	clock.Advance(d)
	st := h.CompleteFullGC()
	if st.OldUsedAfter >= oldBefore {
		t.Fatal("full GC reclaimed nothing")
	}
	if len(h.old) > regionsBefore {
		t.Fatal("compaction grew the old region set")
	}
	if err := h.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalSeedOld(t *testing.T) {
	h, _, _ := newTestRegional(t, RegionalConfig{})
	if err := h.SeedOld(50 << 20); err != nil {
		t.Fatal(err)
	}
	if h.OldUsed() != 50<<20 {
		t.Fatalf("OldUsed = %d", h.OldUsed())
	}
	if err := h.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalHeapExhaustion(t *testing.T) {
	h, _, clock := newTestRegional(t, RegionalConfig{
		HeapBytes: 64 << 20, RegionBytes: 8 << 20, MaxYoungRegions: 4,
		EdenSurvival: 0.9, TenureThreshold: 1, SurvivalNoise: 1e-9,
	})
	var last error
	for i := 0; i < 40 && last == nil; i++ {
		h.Allocate(32 << 20)
		d := h.BeginMinorGC(false)
		clock.Advance(d)
		_, last = h.CompleteMinorGC()
	}
	if !errors.Is(last, ErrHeapExhausted) {
		t.Fatalf("err = %v, want ErrHeapExhausted", last)
	}
}

func TestRegionalMutateOldAndJIT(t *testing.T) {
	h, g, _ := newTestRegional(t, RegionalConfig{})
	if err := h.SeedOld(20 << 20); err != nil {
		t.Fatal(err)
	}
	g.Dom.EnableLogDirty()
	h.MutateOld(50)
	if g.Dom.DirtyCount() == 0 {
		t.Fatal("MutateOld dirtied nothing")
	}
	snap := mem.NewBitmap(g.Dom.NumPages())
	g.Dom.PeekAndClear(snap)
	h.JITChurn(7)
	if g.Dom.DirtyCount() != 7 {
		t.Fatalf("JITChurn dirtied %d", g.Dom.DirtyCount())
	}
}

func TestRegionalRandomizedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		h, _, clock := newTestRegional(t, RegionalConfig{
			EdenSurvival:     0.02 + rng.Float64()*0.4,
			SurvivorSurvival: 0.2 + rng.Float64()*0.6,
			TenureThreshold:  1 + rng.Intn(4),
			SurvivalNoise:    rng.Float64() * 0.2,
			Rand:             rand.New(rand.NewSource(int64(trial))),
		})
		for i := 0; i < 25; i++ {
			h.Allocate(uint64(rng.Intn(40 << 20)))
			if h.NeedsMinorGC() || rng.Intn(3) == 0 {
				d := h.BeginMinorGC(false)
				clock.Advance(d)
				if _, err := h.CompleteMinorGC(); err != nil {
					if errors.Is(err, ErrHeapExhausted) {
						break
					}
					t.Fatal(err)
				}
			}
			if h.NeedsFullGC() {
				d := h.BeginFullGC()
				clock.Advance(d)
				h.CompleteFullGC()
			}
			if err := h.CheckConservation(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
			// Region ledger: every region is in exactly one list.
			if len(h.free)+len(h.eden)+len(h.surv)+len(h.old) != len(h.regions) {
				t.Fatalf("trial %d: region ledger broken", trial)
			}
			clock.Advance(time.Duration(rng.Intn(1000)) * time.Millisecond)
		}
	}
}
