// Package jvm simulates the slice of HotSpot that JAVMM interacts with: a
// generational heap (Eden, two survivor semi-spaces, Old generation) managed
// by a stop-the-world copying minor collector, Safepoint mechanics, adaptive
// young-generation sizing, and the Tool-Interface-style callbacks the JAVMM
// agent plugs into (paper §4.1, §4.3).
//
// The simulation operates at the granularity JAVMM cares about: which pages
// of the guest's memory the heap occupies and dirties, how much of the young
// generation is garbage at each minor GC, how long collections pause the
// application, and where live data sits after a collection. Individual
// objects are aggregated into cohorts (bytes allocated in the same inter-GC
// epoch), which is exactly the granularity of the weak generational
// hypothesis the heap design rests on [Ungar84].
package jvm

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Config describes a HotSpot instance. Survival fractions and GC cost
// coefficients are per-workload knobs; defaults model a typical
// allocation-heavy server workload.
type Config struct {
	Proc  *guestos.Process // required: the JVM's OS process
	Clock *simclock.Clock  // required
	Rand  *rand.Rand       // deterministic noise source; defaults to seed 1

	// HeapBase is the VA where the heap mapping starts. Default 1 GiB.
	HeapBase mem.VA

	// Young generation sizing (bytes; page-aligned internally).
	InitialYoungBytes uint64 // committed at startup (default 64 MiB)
	MaxYoungBytes     uint64 // -Xmn ceiling (default 1 GiB)
	// SurvivorRatio is HotSpot's -XX:SurvivorRatio: Eden is Ratio times
	// the size of one survivor space (default 8, so Eden:From:To = 8:1:1).
	SurvivorRatio int

	// MaxOldBytes caps the old generation (default 1 GiB).
	MaxOldBytes uint64

	// TenureThreshold is the number of minor GCs an object must survive
	// before promotion (default 4).
	TenureThreshold int

	// EdenSurvival is the fraction of Eden bytes that survive a minor GC
	// (the complement is the Figure 5(b) garbage). Default 0.03.
	EdenSurvival float64
	// SurvivorSurvival is the per-GC survival fraction of data already in
	// a survivor space. Default 0.5.
	SurvivorSurvival float64
	// SurvivalNoise jitters survival fractions by ±noise relative.
	// Default 0.1.
	SurvivalNoise float64

	// OldGarbageFraction is the fraction of the old generation found dead
	// by a full GC. Default 0.3.
	OldGarbageFraction float64

	// Minor GC duration model: Base + live*CopyPerByte +
	// committedYoung*ScanPerByte (see DESIGN.md §6).
	MinorGCBase   time.Duration // default 50 ms
	MinorCopyNsPB float64       // ns per live byte copied, default 15
	MinorScanNsPB float64       // ns per committed young byte, default 0.6
	// Full GC duration model: Base + oldUsed*FullNsPB. The default gives
	// the multi-second full-GC pauses the paper observes (§4.2: ~4 s for
	// a few hundred MB of old generation).
	FullGCBase time.Duration // default 200 ms
	FullNsPB   float64       // ns per old byte, default 8

	// SafepointDelay is how long Java threads take to reach a Safepoint
	// when a GC is requested (paper Figure 8(b): 0.7 s for compiler).
	SafepointDelay time.Duration

	// AdaptiveSizing grows the committed young generation when Eden
	// refills quickly and shrinks it when refills are slow, the behaviour
	// behind the paper's observation that allocation-heavy workloads grow
	// the young gen to its maximum (§4.2). Default on.
	DisableAdaptiveSizing bool
	// GrowBelow / ShrinkAbove are the inter-GC interval thresholds for
	// adaptive sizing (defaults 3 s / 30 s).
	GrowBelow   time.Duration
	ShrinkAbove time.Duration

	// OldHotBytes, when non-zero, confines MutateOld to a hot region of
	// that size at the base of the old generation, rewritten cyclically —
	// the access pattern of numeric kernels like scimark's LU
	// factorization. Zero spreads mutations uniformly over the used old
	// generation.
	OldHotBytes uint64

	// CodeCacheBytes sizes the JIT code cache mapping (default 48 MiB);
	// JAVMM migrates it as usual (§4: skipping it costs too much
	// performance).
	CodeCacheBytes uint64
}

func (c *Config) fillDefaults() error {
	if c.Proc == nil {
		return errors.New("jvm: Config.Proc is required")
	}
	if c.Clock == nil {
		return errors.New("jvm: Config.Clock is required")
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	if c.HeapBase == 0 {
		c.HeapBase = 1 << 30
	}
	if c.InitialYoungBytes == 0 {
		c.InitialYoungBytes = 64 << 20
	}
	if c.MaxYoungBytes == 0 {
		c.MaxYoungBytes = 1 << 30
	}
	if c.SurvivorRatio == 0 {
		c.SurvivorRatio = 8
	}
	if c.MaxOldBytes == 0 {
		c.MaxOldBytes = 1 << 30
	}
	if c.TenureThreshold == 0 {
		c.TenureThreshold = 4
	}
	if c.EdenSurvival == 0 {
		c.EdenSurvival = 0.03
	}
	if c.SurvivorSurvival == 0 {
		c.SurvivorSurvival = 0.5
	}
	if c.SurvivalNoise == 0 {
		c.SurvivalNoise = 0.1
	}
	if c.OldGarbageFraction == 0 {
		c.OldGarbageFraction = 0.3
	}
	if c.MinorGCBase == 0 {
		c.MinorGCBase = 50 * time.Millisecond
	}
	if c.MinorCopyNsPB == 0 {
		c.MinorCopyNsPB = 15
	}
	if c.MinorScanNsPB == 0 {
		c.MinorScanNsPB = 0.6
	}
	if c.FullGCBase == 0 {
		c.FullGCBase = 200 * time.Millisecond
	}
	if c.FullNsPB == 0 {
		c.FullNsPB = 8
	}
	if c.SafepointDelay == 0 {
		c.SafepointDelay = 20 * time.Millisecond
	}
	if c.GrowBelow == 0 {
		c.GrowBelow = 3 * time.Second
	}
	if c.ShrinkAbove == 0 {
		c.ShrinkAbove = 30 * time.Second
	}
	if c.CodeCacheBytes == 0 {
		c.CodeCacheBytes = 48 << 20
	}
	if c.InitialYoungBytes > c.MaxYoungBytes {
		return fmt.Errorf("jvm: initial young %d exceeds max %d", c.InitialYoungBytes, c.MaxYoungBytes)
	}
	return nil
}

// cohort aggregates the bytes allocated within one inter-GC epoch that are
// currently alive in a survivor space, tagged with the number of minor GCs
// they have survived.
type cohort struct {
	bytes uint64
	age   int
}

// JVM is one simulated HotSpot instance.
type JVM struct {
	cfg   Config
	proc  *guestos.Process
	clock *simclock.Clock
	rng   *rand.Rand

	// Young generation layout. The committed young range is
	// [youngBase, youngBase+youngCommitted): Eden first, then the two
	// survivor spaces.
	youngBase      mem.VA
	youngCommitted uint64
	edenBytes      uint64 // current Eden capacity
	survivorBytes  uint64 // capacity of ONE survivor space
	fromIsFirst    bool   // true: survivor #1 is From (holds live data)

	edenUsed    uint64
	fromUsed    uint64
	fromCohorts []cohort

	// Old generation: committed grows in chunks as promotions demand.
	oldBase      mem.VA
	oldCommitted uint64
	oldUsed      uint64

	// Code cache.
	codeBase  mem.VA
	codeBytes uint64
	codeDirty mem.VA // next code page to dirty (JIT churn)

	oldHotCursor uint64 // cyclic sweep position for hot-region mutation

	// albTarget, when non-zero, caps the committed young generation at the
	// next GC boundaries — Application-Level Ballooning (Salomie et al.,
	// EuroSys'13), the alternative the paper's §2 compares against:
	// shrink the Java heap before migration so less dirty data is sent,
	// at the cost of more frequent collections.
	albTarget uint64

	// Collection state.
	gc             *pendingGC
	lastMinorGCAt  time.Duration
	enforcePending bool // an enforced GC was requested (Safepoint en route)
	held           bool // Java threads held at Safepoint after enforced GC

	// TI-style callbacks (paper §4.3.1: provided by the agent).
	OnGCEnd        func(GCStats)           // notification interface of GC events
	OnYoungShrink  func(freed mem.VARange) // pages freed from the young gen
	OnEnforcedDone func()                  // enforced GC finished, threads held

	// Cumulative accounting (conservation-checked in tests).
	TotalAllocated uint64
	TotalGarbage   uint64 // collected by minor+full GCs
	TotalPromoted  uint64
	MinorGCs       int
	FullGCs        int
	History        []GCStats

	tracer  *obs.Tracer
	metrics *obs.Metrics
}

// SetObs attaches a tracer and metrics registry: collections become spans on
// the JVM track (minor/enforced/full GC), Safepoint requests/holds/releases
// become instants, and pause totals accumulate under jvm.gc.* counters.
// Either argument may be nil.
func (j *JVM) SetObs(t *obs.Tracer, m *obs.Metrics) {
	j.tracer = t
	j.metrics = m
}

// GCKind distinguishes minor from full collections.
type GCKind int

// Collection kinds.
const (
	MinorGC GCKind = iota
	FullGC
)

// GCStats describes one completed collection — the raw material of
// Figure 5(b) and 5(c).
type GCStats struct {
	Kind     GCKind
	Enforced bool
	At       time.Duration // virtual time at completion
	Duration time.Duration

	YoungUsedBefore uint64 // Eden+From occupancy before (minor)
	LiveAfter       uint64 // bytes copied to To (minor)
	Garbage         uint64 // reclaimed bytes
	Promoted        uint64

	OldUsedBefore uint64
	OldUsedAfter  uint64

	YoungCommittedAfter uint64
}

// pendingGC holds a collection computed at Begin time and applied at
// Complete time, so the driver can charge its duration to virtual time in
// between.
type pendingGC struct {
	kind     GCKind
	enforced bool
	duration time.Duration
	stats    GCStats
	newFrom  []cohort
	toLive   uint64
	promoted uint64
	oldAfter uint64 // full GC result

	// Incremental copy progress: a real scavenger writes the To space
	// throughout the pause, not in one burst at the end — which is what
	// keeps the guest's dirtying rate visible to a migration running
	// concurrently with a collection.
	elapsed     time.Duration
	copiedBytes uint64

	span *obs.Span // open GC span, ended at Complete time
}

// oldGrowChunk is the granularity at which old-generation memory is
// committed.
const oldGrowChunk = 32 << 20

// New boots a JVM: maps the initial young generation, an initial old chunk
// and the code cache into the process address space.
func New(cfg Config) (*JVM, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	j := &JVM{
		cfg:         cfg,
		proc:        cfg.Proc,
		clock:       cfg.Clock,
		rng:         cfg.Rand,
		youngBase:   cfg.HeapBase,
		fromIsFirst: true,
	}
	// Old generation sits above the maximum young extent so young growth
	// never collides with it.
	j.oldBase = j.youngBase + mem.VA(pageCeil(cfg.MaxYoungBytes))
	j.codeBase = j.oldBase + mem.VA(pageCeil(cfg.MaxOldBytes))
	j.codeBytes = pageCeil(cfg.CodeCacheBytes)
	j.codeDirty = j.codeBase

	if err := j.commitYoung(pageCeil(cfg.InitialYoungBytes)); err != nil {
		return nil, err
	}
	if err := j.growOld(oldGrowChunk); err != nil {
		return nil, err
	}
	if err := j.proc.Alloc(mem.VARange{Start: j.codeBase, End: j.codeBase + mem.VA(j.codeBytes)}); err != nil {
		return nil, fmt.Errorf("jvm: mapping code cache: %w", err)
	}
	return j, nil
}

func pageCeil(b uint64) uint64 {
	return (b + mem.PageSize - 1) &^ uint64(mem.PageMask)
}

// commitYoung grows the committed young generation to newSize bytes
// (page-aligned), mapping the added pages and recomputing the Eden/survivor
// layout. Growing while survivor data is live relocates it (HotSpot resizes
// spaces at GC end when this is cheap).
func (j *JVM) commitYoung(newSize uint64) error {
	newSize = pageCeil(newSize)
	if newSize > j.youngCommitted {
		add := mem.VARange{
			Start: j.youngBase + mem.VA(j.youngCommitted),
			End:   j.youngBase + mem.VA(newSize),
		}
		if err := j.proc.Alloc(add); err != nil {
			return fmt.Errorf("jvm: growing young gen: %w", err)
		}
	} else if newSize < j.youngCommitted {
		freed := mem.VARange{
			Start: j.youngBase + mem.VA(newSize),
			End:   j.youngBase + mem.VA(j.youngCommitted),
		}
		j.proc.Free(freed)
		if j.OnYoungShrink != nil {
			j.OnYoungShrink(freed)
		}
	}
	j.youngCommitted = newSize
	j.layoutYoung()
	return nil
}

// layoutYoung recomputes Eden/survivor boundaries for the committed size.
func (j *JVM) layoutYoung() {
	pages := j.youngCommitted / mem.PageSize
	survPages := pages / uint64(j.cfg.SurvivorRatio+2)
	if survPages == 0 {
		survPages = 1
	}
	j.survivorBytes = survPages * mem.PageSize
	j.edenBytes = j.youngCommitted - 2*j.survivorBytes
	// Relocate live survivor data into the (possibly moved) From space.
	if j.fromUsed > 0 {
		j.writeRange(j.fromStart(), j.fromUsed)
	}
	if j.fromUsed > j.survivorBytes {
		// Shrinking below live data would corrupt the heap; callers only
		// shrink when usage is low, so this is a simulator bug.
		panic("jvm: young layout leaves survivor data homeless")
	}
}

func (j *JVM) edenStart() mem.VA { return j.youngBase }

// fromStart returns the base VA of the survivor space currently holding
// live data.
func (j *JVM) fromStart() mem.VA {
	if j.fromIsFirst {
		return j.youngBase + mem.VA(j.edenBytes)
	}
	return j.youngBase + mem.VA(j.edenBytes+j.survivorBytes)
}

// toStart returns the base VA of the empty survivor space.
func (j *JVM) toStart() mem.VA {
	if j.fromIsFirst {
		return j.youngBase + mem.VA(j.edenBytes+j.survivorBytes)
	}
	return j.youngBase + mem.VA(j.edenBytes)
}

// growOld commits more old-generation memory.
func (j *JVM) growOld(add uint64) error {
	add = pageCeil(add)
	if j.oldCommitted+add > pageCeil(j.cfg.MaxOldBytes) {
		add = pageCeil(j.cfg.MaxOldBytes) - j.oldCommitted
	}
	if add == 0 {
		return errors.New("jvm: old generation exhausted")
	}
	r := mem.VARange{
		Start: j.oldBase + mem.VA(j.oldCommitted),
		End:   j.oldBase + mem.VA(j.oldCommitted+add),
	}
	if err := j.proc.Alloc(r); err != nil {
		return fmt.Errorf("jvm: growing old gen: %w", err)
	}
	j.oldCommitted += add
	return nil
}

// SeedOld allocates long-lived startup data directly into the old generation
// (application data structures, caches, interned strings). Workloads use it
// to reproduce the paper's observed old-generation sizes (Table 2).
func (j *JVM) SeedOld(bytes uint64) error {
	for j.oldUsed+bytes > j.oldCommitted {
		if err := j.growOld(oldGrowChunk); err != nil {
			return fmt.Errorf("jvm: seeding %d old bytes: %w", bytes, err)
		}
	}
	j.writeRange(j.oldBase+mem.VA(j.oldUsed), bytes)
	j.oldUsed += bytes
	j.TotalAllocated += bytes
	return nil
}

// writeRange dirties every page of [start, start+bytes).
func (j *JVM) writeRange(start mem.VA, bytes uint64) {
	if bytes == 0 {
		return
	}
	end := start + mem.VA(bytes)
	for va := start.PageBase(); va < end; va += mem.PageSize {
		j.proc.Write(va)
	}
}

// --- accessors -----------------------------------------------------------

// YoungRange returns the committed young generation VA range — the skip-over
// area the JAVMM agent reports (paper §4.3.2).
func (j *JVM) YoungRange() mem.VARange {
	return mem.VARange{Start: j.youngBase, End: j.youngBase + mem.VA(j.youngCommitted)}
}

// FromLiveRange returns the occupied portion of the From space: the live
// data that survived the last collection and must be transferred in the last
// iteration.
func (j *JVM) FromLiveRange() mem.VARange {
	s := j.fromStart()
	return mem.VARange{Start: s, End: s + mem.VA(j.fromUsed)}
}

// YoungAreas returns the young generation as a list of VA ranges — a single
// contiguous range for this collector. The JAVMM agent works against this
// list-shaped surface so that region-based collectors (RegionalHeap) plug in
// unchanged (paper §6 future work).
func (j *JVM) YoungAreas() []mem.VARange { return []mem.VARange{j.YoungRange()} }

// ReadyAreas returns the post-enforced-GC skip-over areas: the young
// generation minus the page-rounded occupied From space, so the surviving
// objects are transferred in the last iteration (paper §4.3.2). Valid while
// threads are held after an enforced GC.
func (j *JVM) ReadyAreas() []mem.VARange {
	live := j.FromLiveRange()
	liveAligned := mem.VARange{
		Start: live.Start.PageBase(),
		End:   (live.End + mem.PageMask).PageBase(),
	}
	return j.YoungRange().Subtract(liveAligned)
}

// SetTICallbacks installs the Tool-Interface hooks the JAVMM agent uses.
// Passing nil clears a hook.
func (j *JVM) SetTICallbacks(onShrink func(mem.VARange), onGCEnd func(GCStats), onEnforcedDone func()) {
	j.OnYoungShrink = onShrink
	j.OnGCEnd = onGCEnd
	j.OnEnforcedDone = onEnforcedDone
}

// GCHistory returns the completed collections, oldest first.
func (j *JVM) GCHistory() []GCStats { return j.History }

// HintAreas returns the memory the JVM knows to be strongly and lightly
// compressible (§6 extension): the old generation's occupied range (long-
// lived, pointer- and string-heavy) compresses well; the JIT code cache only
// modestly.
func (j *JVM) HintAreas() (strong, fast []mem.VARange) {
	if j.oldUsed > 0 {
		strong = append(strong, mem.VARange{Start: j.oldBase, End: j.oldBase + mem.VA(j.oldUsed)})
	}
	fast = append(fast, j.CodeCacheRange())
	return strong, fast
}

// YoungCommitted returns committed young-generation bytes.
func (j *JVM) YoungCommitted() uint64 { return j.youngCommitted }

// YoungUsed returns Eden+From occupancy in bytes.
func (j *JVM) YoungUsed() uint64 { return j.edenUsed + j.fromUsed }

// OldUsed returns old-generation occupancy in bytes.
func (j *JVM) OldUsed() uint64 { return j.oldUsed }

// OldCommitted returns committed old-generation bytes.
func (j *JVM) OldCommitted() uint64 { return j.oldCommitted }

// EdenFree returns the bytes left before Eden fills.
func (j *JVM) EdenFree() uint64 { return j.edenBytes - j.edenUsed }

// HeldAtSafepoint reports whether Java threads are held at the Safepoint
// after an enforced GC, awaiting VM resumption (paper §4.3.2).
func (j *JVM) HeldAtSafepoint() bool { return j.held }

// InGC reports whether a collection is in progress.
func (j *JVM) InGC() bool { return j.gc != nil }

// EnforcePending reports whether an enforced GC has been requested but not
// yet started.
func (j *JVM) EnforcePending() bool { return j.enforcePending }

// SafepointDelay returns how long threads take to reach a Safepoint.
func (j *JVM) SafepointDelay() time.Duration { return j.cfg.SafepointDelay }

// CodeCacheRange returns the JIT code cache mapping.
func (j *JVM) CodeCacheRange() mem.VARange {
	return mem.VARange{Start: j.codeBase, End: j.codeBase + mem.VA(j.codeBytes)}
}

// JITChurn dirties n code-cache pages, round-robin — background compilation
// activity.
func (j *JVM) JITChurn(n int) {
	for i := 0; i < n; i++ {
		j.proc.Write(j.codeDirty)
		j.codeDirty += mem.PageSize
		if j.codeDirty >= j.codeBase+mem.VA(j.codeBytes) {
			j.codeDirty = j.codeBase
		}
	}
}

// MutateOld dirties n old-generation pages — long-lived data being updated
// in place. With Config.OldHotBytes set, writes sweep a hot region
// cyclically; otherwise they land uniformly over the used old generation.
func (j *JVM) MutateOld(n int) {
	if j.oldUsed == 0 {
		return
	}
	usedPages := (j.oldUsed + mem.PageSize - 1) / mem.PageSize
	hotPages := usedPages
	if j.cfg.OldHotBytes > 0 {
		hotPages = pageCeil(j.cfg.OldHotBytes) / mem.PageSize
		if hotPages > usedPages {
			hotPages = usedPages
		}
	}
	if j.cfg.OldHotBytes > 0 {
		for i := 0; i < n; i++ {
			j.proc.Write(j.oldBase + mem.VA(j.oldHotCursor*mem.PageSize))
			j.oldHotCursor++
			if j.oldHotCursor >= hotPages {
				j.oldHotCursor = 0
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		pg := uint64(j.rng.Int63n(int64(usedPages)))
		j.proc.Write(j.oldBase + mem.VA(pg*mem.PageSize))
	}
}

// ALBShrink requests Application-Level Ballooning: from the next minor GC
// onwards the committed young generation is shrunk toward target bytes (never
// below what live survivor data needs) and held there until ALBRelease. The
// young generation keeps collecting normally — just more often, since Eden is
// smaller; that GC-frequency increase is ALB's performance tradeoff (§2).
func (j *JVM) ALBShrink(target uint64) {
	if target < 4*mem.PageSize*uint64(j.cfg.SurvivorRatio+2) {
		target = 4 * mem.PageSize * uint64(j.cfg.SurvivorRatio+2)
	}
	j.albTarget = pageCeil(target)
}

// ALBRelease ends ballooning; adaptive sizing resumes and the young
// generation regrows under allocation pressure.
func (j *JVM) ALBRelease() { j.albTarget = 0 }

// ALBActive reports whether ballooning is in force.
func (j *JVM) ALBActive() bool { return j.albTarget != 0 }

// CheckConservation verifies the allocation ledger: everything ever
// allocated is now live in the heap or was collected as garbage. Property
// tests call this after arbitrary operation sequences.
func (j *JVM) CheckConservation() error {
	live := j.edenUsed + j.fromUsed + j.oldUsed
	if j.TotalAllocated != live+j.TotalGarbage {
		return fmt.Errorf("jvm: conservation violated: allocated %d != live %d + garbage %d",
			j.TotalAllocated, live, j.TotalGarbage)
	}
	return nil
}
