// Package faults is the deterministic fault-injection plane of the
// simulator: a declarative set of rules that fire at a virtual time or on the
// Nth occurrence of an injection site, evaluated by an Injector that every
// fault-aware layer (the network link, the netlink bus, the LKM handshake,
// the destination, the post-copy fetch path) consults at its own site.
//
// The paper's workflow assumes a cooperative guest and a healthy link
// (§4.2, §5.1) but its design anticipates failure: when the JVM or LKM does
// not respond, migration must degrade to unmodified pre-copy rather than
// stall the VM. This package provides the controlled adversity those
// recovery paths are tested against. Everything is keyed to the virtual
// clock, so a fault plan plus a seed reproduces the exact same failure
// sequence — and therefore the exact same recovery trace — on every run.
//
// Like obs.Tracer and the provenance ledger, a nil *Injector is a valid
// no-op: instrumented code needs no guards, and a simulation without faults
// behaves byte-for-byte as before.
package faults

import (
	"fmt"
	"time"

	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Site identifies one injection point in the migration pipeline.
type Site string

// Injection sites. Discrete sites fire per occurrence (a send attempt, a
// message delivery); windowed sites (link partition, bandwidth collapse)
// are active for a [At, At+For) span of virtual time.
const (
	// SiteLinkPartition takes the migration link down for a window: sends
	// fail with netsim.ErrPartitioned until the window passes (windowed).
	SiteLinkPartition Site = "link.partition"
	// SiteLinkBandwidth collapses the link's bandwidth to Factor of its
	// base rate for a window (windowed).
	SiteLinkBandwidth Site = "link.bandwidth"
	// SiteNetlinkLoss drops a netlink message (kernel-bound send or one
	// multicast delivery).
	SiteNetlinkLoss Site = "netlink.loss"
	// SiteNetlinkDelay delivers a netlink message late, after Delay of
	// virtual time.
	SiteNetlinkDelay Site = "netlink.delay"
	// SiteLKMHandshake swallows the LKM's suspension-ready notification to
	// the migration daemon: the engine's handshake wait times out and the
	// run degrades to vanilla pre-copy (paper §4.2's non-responsive-app
	// contingency).
	SiteLKMHandshake Site = "lkm.handshake"
	// SiteDestReceive fails one page receive at the destination with a
	// transient error; the engine retries with backoff.
	SiteDestReceive Site = "dest.receive"
	// SiteDestCrash crashes the destination mid-stream: every receive from
	// then on fails permanently and the engine aborts cleanly (source
	// resumed, destination discarded).
	SiteDestCrash Site = "dest.crash"
	// SitePostCopyFetch fails one demand fetch in the post-copy/hybrid lazy
	// phase; the faulting vCPU stalls through the retry backoff.
	SitePostCopyFetch Site = "postcopy.fetch"
	// SiteCorruptPage flips bits in one page payload in flight: the transfer
	// succeeds at the wire level but the destination receives (and digests)
	// wrong content. Only the end-to-end integrity audit can catch it.
	SiteCorruptPage Site = "corrupt-page-stream"
	// SiteHostCrash takes a destination host down for a window: every
	// receive at the host fails permanently (the destination behaves as
	// crashed) and fabric ports dialled to it refuse transfers, killing
	// every in-flight move targeting the host. Rule.Host scopes the crash to
	// one named host; an empty Host matches any (windowed).
	SiteHostCrash Site = "host.crash"
	// SiteHostFlaky makes every page receive at a host fail transiently for
	// a window; engines ride it out with retry/backoff. Rule.Host scopes it
	// like SiteHostCrash (windowed).
	SiteHostFlaky Site = "host.flaky"
)

// Sites returns every site in deterministic presentation order.
func Sites() []Site {
	return []Site{SiteLinkPartition, SiteLinkBandwidth, SiteNetlinkLoss,
		SiteNetlinkDelay, SiteLKMHandshake, SiteDestReceive, SiteDestCrash,
		SitePostCopyFetch, SiteCorruptPage, SiteHostCrash, SiteHostFlaky}
}

// Windowed reports whether the site is window-activated (time span) rather
// than occurrence-activated.
func (s Site) Windowed() bool {
	return s == SiteLinkPartition || s == SiteLinkBandwidth ||
		s == SiteHostCrash || s == SiteHostFlaky
}

// HostScoped reports whether the site targets a host (Rule.Host applies).
func (s Site) HostScoped() bool {
	return s == SiteHostCrash || s == SiteHostFlaky
}

// valid reports whether s names a known site.
func (s Site) valid() bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return false
}

// Rule is one declarative fault. At is relative to the moment the injector
// is armed (Injector.Begin, called by the engine when migration starts), so
// "10s" means ten virtual seconds into the migration regardless of warmup.
type Rule struct {
	Site Site
	// At is the virtual time (from arming) at which the rule becomes
	// eligible; zero means immediately.
	At time.Duration
	// Nth, for discrete sites, fires the rule on the Nth occurrence of the
	// site (1-based); zero behaves like 1 (the first eligible occurrence).
	Nth uint64
	// Count, for discrete sites, is how many occurrences the rule affects
	// once it starts firing (0 means 1).
	Count uint64
	// For is the window length of windowed sites (partition, bandwidth).
	For time.Duration
	// Factor is the bandwidth multiplier in (0,1) during a SiteLinkBandwidth
	// window.
	Factor float64
	// Delay is the late-delivery latency of SiteNetlinkDelay.
	Delay time.Duration
	// Host scopes a host fault (SiteHostCrash, SiteHostFlaky) to one named
	// host; empty matches any host, which is how single-VM runs (whose
	// destination has no name) see host faults too.
	Host string
}

// matchesHost reports whether the rule covers the named host.
func (r Rule) matchesHost(host string) bool {
	return r.Host == "" || r.Host == host
}

// Validate checks the rule for internal consistency.
func (r Rule) Validate() error {
	if !r.Site.valid() {
		return fmt.Errorf("faults: unknown site %q", r.Site)
	}
	if r.Site.Windowed() {
		if r.For <= 0 {
			return fmt.Errorf("faults: %s rule needs a window (for=<duration>)", r.Site)
		}
		if r.Nth != 0 || r.Count != 0 {
			return fmt.Errorf("faults: %s is window-activated; #nth/count do not apply", r.Site)
		}
	}
	if r.Host != "" && !r.Site.HostScoped() {
		return fmt.Errorf("faults: %s is not host-scoped; host= does not apply", r.Site)
	}
	if r.Site == SiteLinkBandwidth && (r.Factor <= 0 || r.Factor >= 1) {
		return fmt.Errorf("faults: %s factor %v out of (0,1)", r.Site, r.Factor)
	}
	if r.Site == SiteNetlinkDelay && r.Delay <= 0 {
		return fmt.Errorf("faults: %s rule needs delay=<duration>", r.Site)
	}
	return nil
}

// Plan is an ordered set of rules, evaluated first-match per occurrence.
type Plan []Rule

// Validate checks every rule in the plan.
func (p Plan) Validate() error {
	for i, r := range p {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i+1, err)
		}
	}
	return nil
}

// Event is one audit-log entry: a fault that actually fired.
type Event struct {
	Site       Site
	At         time.Duration // virtual time the fault fired
	Occurrence uint64        // site occurrence counter (0 for windowed sites)
}

// ruleState is a rule plus its runtime bookkeeping.
type ruleState struct {
	Rule
	fired  uint64 // discrete: occurrences affected so far
	logged bool   // windowed: activation recorded once
}

// Injector evaluates a Plan against the virtual clock. The zero of
// *Injector (nil) is a valid no-op: no site ever fires.
//
// The injector is inert until Begin arms it (the migration engine arms it
// when a run starts, exactly like the provenance ledger), so rule times are
// relative to migration start and occurrence counters reset per run.
type Injector struct {
	clock *simclock.Clock
	rules []*ruleState
	occ   map[Site]uint64
	armed bool
	base  time.Duration
	log   []Event

	tracer  *obs.Tracer
	metrics *obs.Metrics
}

// NewInjector returns an injector for the plan. The plan must validate.
func NewInjector(clock *simclock.Clock, plan Plan) (*Injector, error) {
	if clock == nil {
		return nil, fmt.Errorf("faults: clock required")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{clock: clock, occ: make(map[Site]uint64)}
	for _, r := range plan {
		rs := &ruleState{Rule: r}
		inj.rules = append(inj.rules, rs)
	}
	return inj, nil
}

// SetObs attaches a tracer and metrics registry: every injected fault is
// emitted as a fault.injected event on the faults track and counted under
// faults.injected (plus a per-site counter). Either argument may be nil.
func (i *Injector) SetObs(t *obs.Tracer, m *obs.Metrics) {
	if i == nil {
		return
	}
	i.tracer = t
	i.metrics = m
}

// Begin arms the injector for one migration: rule times become relative to
// now, occurrence counters and the audit log reset. A nil injector ignores
// the call.
func (i *Injector) Begin() {
	if i == nil {
		return
	}
	i.armed = true
	i.base = i.clock.Now()
	i.occ = make(map[Site]uint64)
	i.log = i.log[:0]
	for _, rs := range i.rules {
		rs.fired = 0
		rs.logged = false
	}
}

// Armed reports whether Begin has been called.
func (i *Injector) Armed() bool { return i != nil && i.armed }

// record appends to the audit log and mirrors the fault to obs.
func (i *Injector) record(site Site, occ uint64) {
	now := i.clock.Now()
	i.log = append(i.log, Event{Site: site, At: now, Occurrence: occ})
	i.tracer.Emit(obs.TrackFaults, obs.KindFault, string(site), nil,
		obs.Str("site", string(site)), obs.Uint64("occurrence", occ))
	if m := i.metrics; m != nil {
		m.Counter("faults.injected").Inc()
		m.Counter("faults." + string(site)).Inc()
	}
}

// Fire reports whether a discrete fault at site fires for this occurrence.
// Every call counts one occurrence of the site.
func (i *Injector) Fire(site Site) bool {
	_, ok := i.FireRule(site)
	return ok
}

// FireRule is Fire returning the matched rule (for Delay and friends).
func (i *Injector) FireRule(site Site) (Rule, bool) {
	if !i.Armed() {
		return Rule{}, false
	}
	i.occ[site]++
	n := i.occ[site]
	now := i.clock.Now()
	for _, rs := range i.rules {
		if rs.Site != site || rs.Site.Windowed() {
			continue
		}
		if now < i.base+rs.At {
			continue
		}
		limit := rs.Count
		if limit == 0 {
			limit = 1
		}
		if rs.fired >= limit {
			continue
		}
		if rs.Nth > 0 && n < rs.Nth {
			continue
		}
		rs.fired++
		i.record(site, n)
		return rs.Rule, true
	}
	return Rule{}, false
}

// windowActive reports whether any rule of the windowed site covers now,
// returning the first covering rule.
func (i *Injector) windowActive(site Site) (*ruleState, bool) {
	if !i.Armed() {
		return nil, false
	}
	now := i.clock.Now()
	for _, rs := range i.rules {
		if rs.Site != site {
			continue
		}
		start := i.base + rs.At
		if now >= start && now < start+rs.For {
			if !rs.logged {
				rs.logged = true
				i.record(site, 0)
			}
			return rs, true
		}
	}
	return nil, false
}

// LinkDown reports whether a partition window covers the current virtual
// time: the link refuses transfers until it heals.
func (i *Injector) LinkDown() bool {
	_, down := i.windowActive(SiteLinkPartition)
	return down
}

// BandwidthFactor returns the product of the factors of all active
// bandwidth-collapse windows (1 when none is active).
func (i *Injector) BandwidthFactor() float64 {
	if !i.Armed() {
		return 1
	}
	f := 1.0
	now := i.clock.Now()
	for _, rs := range i.rules {
		if rs.Site != SiteLinkBandwidth {
			continue
		}
		start := i.base + rs.At
		if now >= start && now < start+rs.For {
			if !rs.logged {
				rs.logged = true
				i.record(SiteLinkBandwidth, 0)
			}
			f *= rs.Factor
		}
	}
	return f
}

// HostDown reports whether a host.crash window covers the named host at the
// current virtual time. While down, every receive at the host fails
// permanently and fabric ports dialled to it refuse transfers.
func (i *Injector) HostDown(host string) bool {
	_, down := i.hostWindow(SiteHostCrash, host)
	return down
}

// HostDownUntil returns the latest end of the host.crash windows covering
// the named host now — the instant the host is expected back — and whether
// any window is active. The healing layer blacklists the host from
// destination re-selection until then.
func (i *Injector) HostDownUntil(host string) (time.Duration, bool) {
	if !i.Armed() {
		return 0, false
	}
	now := i.clock.Now()
	var until time.Duration
	down := false
	for _, rs := range i.rules {
		if rs.Site != SiteHostCrash || !rs.matchesHost(host) {
			continue
		}
		start := i.base + rs.At
		if now >= start && now < start+rs.For {
			down = true
			if end := start + rs.For; end > until {
				until = end
			}
		}
	}
	return until, down
}

// HostFlaky reports whether a host.flaky window covers the named host:
// every page receive at the host fails transiently until it passes.
func (i *Injector) HostFlaky(host string) bool {
	_, flaky := i.hostWindow(SiteHostFlaky, host)
	return flaky
}

// hostWindow is windowActive with host matching: the first covering rule of
// the host-scoped site wins, and its activation is recorded once.
func (i *Injector) hostWindow(site Site, host string) (*ruleState, bool) {
	if !i.Armed() {
		return nil, false
	}
	now := i.clock.Now()
	for _, rs := range i.rules {
		if rs.Site != site || !rs.matchesHost(host) {
			continue
		}
		start := i.base + rs.At
		if now >= start && now < start+rs.For {
			if !rs.logged {
				rs.logged = true
				i.record(site, 0)
			}
			return rs, true
		}
	}
	return nil, false
}

// After schedules fn on the injector's virtual clock — the delayed-delivery
// primitive the netlink bus uses, kept here so the bus stays clock-free.
func (i *Injector) After(d time.Duration, fn func()) {
	i.clock.AfterFunc(d, func(time.Duration) { fn() })
}

// Events returns the audit log of faults that fired this run, in firing
// order.
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	return append([]Event(nil), i.log...)
}
