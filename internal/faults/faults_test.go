package faults

import (
	"reflect"
	"testing"
	"time"

	"javmm/internal/obs"
	"javmm/internal/simclock"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	inj.Begin()
	inj.SetObs(nil, nil)
	if inj.Armed() {
		t.Fatal("nil injector reports armed")
	}
	if inj.Fire(SiteDestReceive) {
		t.Fatal("nil injector fired")
	}
	if inj.LinkDown() {
		t.Fatal("nil injector partitioned")
	}
	if f := inj.BandwidthFactor(); f != 1 {
		t.Fatalf("nil injector bandwidth factor = %v, want 1", f)
	}
	if ev := inj.Events(); ev != nil {
		t.Fatalf("nil injector has events: %v", ev)
	}
}

func TestInjectorInertUntilBegin(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{{Site: SiteDestReceive}})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fire(SiteDestReceive) {
		t.Fatal("unarmed injector fired")
	}
	inj.Begin()
	if !inj.Fire(SiteDestReceive) {
		t.Fatal("armed injector did not fire the first occurrence")
	}
}

func TestDiscreteNthAndCount(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{{Site: SiteDestReceive, Nth: 3, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	var fired []int
	for i := 1; i <= 6; i++ {
		if inj.Fire(SiteDestReceive) {
			fired = append(fired, i)
		}
	}
	if want := []int{3, 4}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired on occurrences %v, want %v", fired, want)
	}
	ev := inj.Events()
	if len(ev) != 2 || ev[0].Occurrence != 3 || ev[1].Occurrence != 4 {
		t.Fatalf("audit log %+v, want occurrences 3 and 4", ev)
	}
}

func TestDiscreteAtGatesEligibility(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{{Site: SitePostCopyFetch, At: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour) // arming time, not absolute time, is what counts
	inj.Begin()
	if inj.Fire(SitePostCopyFetch) {
		t.Fatal("fired before At elapsed")
	}
	clock.Advance(time.Second)
	if !inj.Fire(SitePostCopyFetch) {
		t.Fatal("did not fire after At elapsed")
	}
}

func TestPartitionWindow(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{
		{Site: SiteLinkPartition, At: time.Second, For: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	if inj.LinkDown() {
		t.Fatal("down before window")
	}
	clock.Advance(time.Second)
	if !inj.LinkDown() {
		t.Fatal("up inside window")
	}
	clock.Advance(2 * time.Second)
	if inj.LinkDown() {
		t.Fatal("down after window healed")
	}
	// Window activation is logged exactly once.
	if ev := inj.Events(); len(ev) != 1 || ev[0].Site != SiteLinkPartition {
		t.Fatalf("audit log %+v, want one link.partition event", ev)
	}
}

func TestBandwidthFactorCompounds(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{
		{Site: SiteLinkBandwidth, For: 10 * time.Second, Factor: 0.5},
		{Site: SiteLinkBandwidth, At: time.Second, For: time.Second, Factor: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	if f := inj.BandwidthFactor(); f != 0.5 {
		t.Fatalf("factor = %v, want 0.5", f)
	}
	clock.Advance(time.Second)
	if f := inj.BandwidthFactor(); f != 0.5*0.1 {
		t.Fatalf("overlapping factor = %v, want 0.05", f)
	}
	clock.Advance(2 * time.Second)
	if f := inj.BandwidthFactor(); f != 0.5 {
		t.Fatalf("factor after short window = %v, want 0.5", f)
	}
}

func TestBeginResetsState(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{{Site: SiteLKMHandshake}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	if !inj.Fire(SiteLKMHandshake) {
		t.Fatal("run 1: no fire")
	}
	if inj.Fire(SiteLKMHandshake) {
		t.Fatal("run 1: fired twice with count 1")
	}
	inj.Begin() // second migration: counters reset
	if !inj.Fire(SiteLKMHandshake) {
		t.Fatal("run 2: no fire after re-arm")
	}
	if n := len(inj.Events()); n != 1 {
		t.Fatalf("audit log carries %d events across Begin, want 1", n)
	}
}

func TestObsMirroring(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{{Site: SiteDestReceive}})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(clock)
	m := obs.NewMetrics(clock)
	inj.SetObs(tr, m)
	inj.Begin()
	inj.Fire(SiteDestReceive)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != obs.KindFault || evs[0].Track != obs.TrackFaults {
		t.Fatalf("trace events %+v, want one fault.injected on faults track", evs)
	}
	snap := m.Snapshot()
	found := map[string]int64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found["faults.injected"] != 1 || found["faults.dest.receive"] != 1 {
		t.Fatalf("counters %v, want faults.injected=1 and faults.dest.receive=1", found)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Rule{
		{Site: "no.such.site"},
		{Site: SiteLinkPartition},                              // windowed without For
		{Site: SiteLinkPartition, For: time.Second, Nth: 2},    // windowed with #nth
		{Site: SiteLinkBandwidth, For: time.Second},            // factor unset
		{Site: SiteLinkBandwidth, For: time.Second, Factor: 2}, // factor out of range
		{Site: SiteNetlinkDelay},                               // delay unset
		{Site: SiteHostCrash},                                  // windowed without For
		{Site: SiteDestReceive, Host: "d1"},                    // host= on a non-host-scoped site
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %+v validated, want error", r)
		}
	}
	good := Plan{
		{Site: SiteLinkPartition, At: time.Second, For: time.Second},
		{Site: SiteLinkBandwidth, For: time.Second, Factor: 0.5},
		{Site: SiteNetlinkDelay, Delay: time.Millisecond},
		{Site: SiteLKMHandshake},
		{Site: SiteDestCrash, At: 30 * time.Second},
		{Site: SiteHostCrash, At: time.Second, For: time.Minute, Host: "d1"},
		{Site: SiteHostFlaky, For: time.Second}, // unscoped: matches any host
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"lkm.handshake", Rule{Site: SiteLKMHandshake}},
		{"link.partition@10s,for=2s", Rule{Site: SiteLinkPartition, At: 10 * time.Second, For: 2 * time.Second}},
		{"link.bandwidth@5s,for=1s,factor=0.1", Rule{Site: SiteLinkBandwidth, At: 5 * time.Second, For: time.Second, Factor: 0.1}},
		{"dest.receive#3,count=2", Rule{Site: SiteDestReceive, Nth: 3, Count: 2}},
		{"netlink.delay#1,delay=50ms", Rule{Site: SiteNetlinkDelay, Nth: 1, Delay: 50 * time.Millisecond}},
		{"dest.crash@30s", Rule{Site: SiteDestCrash, At: 30 * time.Second}},
		{"postcopy.fetch@1s#2", Rule{Site: SitePostCopyFetch, At: time.Second, Nth: 2}},
		{"host.crash@30s,for=2m,host=d1", Rule{Site: SiteHostCrash, At: 30 * time.Second, For: 2 * time.Minute, Host: "d1"}},
		{"host.flaky,for=45s", Rule{Site: SiteHostFlaky, For: 45 * time.Second}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical String form round-trips.
		back, err := ParseRule(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip %q -> %q -> %+v (%v)", c.spec, got.String(), back, err)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"no.such.site",
		"link.partition",            // missing for=
		"link.partition@ten,for=1s", // bad duration
		"dest.receive#zero",         // bad nth
		"dest.receive#0",            // nth must be positive
		"dest.receive,count=0",      // count must be positive
		"dest.receive,bogus=1",      // unknown key
		"dest.receive,count",        // not key=value
		"link.bandwidth@1s,for=1s,factor=1.5",
		"netlink.delay#1",         // missing delay=
		"host.crash,for=1s,host=", // empty host=
		"dest.receive,host=d1",    // host= on a non-host-scoped site
		"host.crash@1s,host=d1",   // windowed without for=
	}
	for _, s := range bad {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", s)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]string{"lkm.handshake", "dest.receive#2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("plan has %d rules, want 2", len(p))
	}
	if _, err := ParsePlan([]string{"lkm.handshake", "broken"}); err == nil {
		t.Fatal("bad plan parsed")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Event {
		clock := simclock.New()
		inj, err := NewInjector(clock, Plan{
			{Site: SiteDestReceive, Nth: 2, Count: 3},
			{Site: SiteLinkPartition, At: time.Second, For: time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		inj.Begin()
		for i := 0; i < 4; i++ {
			inj.Fire(SiteDestReceive)
			clock.Advance(500 * time.Millisecond)
			inj.LinkDown()
		}
		return inj.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical plans diverged:\n%v\n%v", a, b)
	}
}

func TestHostWindowsScopeToNamedHost(t *testing.T) {
	clock := simclock.New()
	inj, err := NewInjector(clock, Plan{
		{Site: SiteHostCrash, At: time.Second, For: 2 * time.Second, Host: "d1"},
		{Site: SiteHostFlaky, At: time.Second, For: 2 * time.Second}, // unscoped
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Begin()
	if inj.HostDown("d1") || inj.HostFlaky("d1") {
		t.Fatal("host faults active before their windows")
	}
	clock.Advance(time.Second)
	if !inj.HostDown("d1") {
		t.Fatal("d1 up inside its crash window")
	}
	if inj.HostDown("d2") {
		t.Fatal("crash scoped to d1 took d2 down")
	}
	// The unscoped flaky window covers every host.
	if !inj.HostFlaky("d1") || !inj.HostFlaky("d2") {
		t.Fatal("unscoped flaky window missed a host")
	}
	if until, ok := inj.HostDownUntil("d1"); !ok || until != 3*time.Second {
		t.Fatalf("HostDownUntil(d1) = %v,%v, want 3s", until, ok)
	}
	if _, ok := inj.HostDownUntil("d2"); ok {
		t.Fatal("HostDownUntil(d2) reported a window")
	}
	clock.Advance(2 * time.Second)
	if inj.HostDown("d1") || inj.HostFlaky("d2") {
		t.Fatal("host faults outlived their windows")
	}
}
