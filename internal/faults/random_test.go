package faults

import (
	"reflect"
	"testing"
)

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomPlan(seed, 5)
		b := RandomPlan(seed, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%v\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(RandomPlan(1, 5), RandomPlan(2, 5)) {
		t.Fatal("seeds 1 and 2 produced identical plans; rng not seeded")
	}
}

func TestRandomPlanAlwaysValidates(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		p := RandomPlan(seed, 6)
		if len(p) == 0 || len(p) > 6 {
			t.Fatalf("seed %d: plan size %d out of [1,6]", seed, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan %v: %v", seed, p, err)
		}
		// Every rule must survive the CLI round-trip the shrinker prints.
		for _, r := range p {
			back, err := ParseRule(r.String())
			if err != nil {
				t.Fatalf("seed %d: rule %v does not re-parse from %q: %v", seed, r, r.String(), err)
			}
			if !reflect.DeepEqual(back, r) {
				t.Fatalf("seed %d: round-trip mismatch: %v -> %q -> %v", seed, r, r.String(), back)
			}
		}
	}
}

func TestRandomPlanZeroBudget(t *testing.T) {
	if p := RandomPlan(1, 0); p != nil {
		t.Fatalf("budget 0 should yield nil plan, got %v", p)
	}
}
