package faults

import (
	"reflect"
	"testing"
)

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomPlan(seed, 5)
		b := RandomPlan(seed, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%v\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(RandomPlan(1, 5), RandomPlan(2, 5)) {
		t.Fatal("seeds 1 and 2 produced identical plans; rng not seeded")
	}
}

func TestRandomPlanAlwaysValidates(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		p := RandomPlan(seed, 6)
		if len(p) == 0 || len(p) > 6 {
			t.Fatalf("seed %d: plan size %d out of [1,6]", seed, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan %v: %v", seed, p, err)
		}
		// Every rule must survive the CLI round-trip the shrinker prints.
		for _, r := range p {
			back, err := ParseRule(r.String())
			if err != nil {
				t.Fatalf("seed %d: rule %v does not re-parse from %q: %v", seed, r, r.String(), err)
			}
			if !reflect.DeepEqual(back, r) {
				t.Fatalf("seed %d: round-trip mismatch: %v -> %q -> %v", seed, r, r.String(), back)
			}
		}
	}
}

func TestRandomPlanZeroBudget(t *testing.T) {
	if p := RandomPlan(1, 0); p != nil {
		t.Fatalf("budget 0 should yield nil plan, got %v", p)
	}
}

// The published repro-seed compatibility guarantee: with no host universe,
// RandomPlanHosts must generate the exact pre-host-fault sequence, and
// RandomPlan must never emit a host-scoped site.
func TestRandomPlanHostsEmptyUniverseMatchesRandomPlan(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		if !reflect.DeepEqual(RandomPlan(seed, 6), RandomPlanHosts(seed, 6, nil)) {
			t.Fatalf("seed %d: nil-universe RandomPlanHosts diverged from RandomPlan", seed)
		}
		for _, r := range RandomPlan(seed, 6) {
			if r.Site.HostScoped() {
				t.Fatalf("seed %d: RandomPlan drew host-scoped site %s", seed, r.Site)
			}
		}
	}
}

func TestRandomPlanHostsValidatesAndAims(t *testing.T) {
	hosts := []string{"d1", "d2"}
	sawHostSite, sawNamedHost, sawUnscoped := false, false, false
	for seed := int64(0); seed < 500; seed++ {
		p := RandomPlanHosts(seed, 6, hosts)
		if !reflect.DeepEqual(p, RandomPlanHosts(seed, 6, hosts)) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan %v: %v", seed, p, err)
		}
		for _, r := range p {
			if r.Host != "" && r.Host != "d1" && r.Host != "d2" {
				t.Fatalf("seed %d: rule aims at %q outside the universe", seed, r.Host)
			}
			if r.Site.HostScoped() {
				sawHostSite = true
				if r.Host != "" {
					sawNamedHost = true
				} else {
					sawUnscoped = true
				}
			}
			// Repro round-trip through the CLI grammar.
			back, err := ParseRule(r.String())
			if err != nil || !reflect.DeepEqual(back, r) {
				t.Fatalf("seed %d: round-trip %v -> %q -> %v (%v)", seed, r, r.String(), back, err)
			}
		}
	}
	if !sawHostSite || !sawNamedHost || !sawUnscoped {
		t.Fatalf("500 seeds never exercised host sites fully: site=%v named=%v unscoped=%v",
			sawHostSite, sawNamedHost, sawUnscoped)
	}
}
