package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseRule parses the CLI fault-rule syntax:
//
//	site[@at][#nth][,key=value...]
//
// where site is one of Sites(), @at is the virtual time offset from migration
// start at which the rule becomes eligible, #nth (discrete sites) selects the
// Nth occurrence, and key=value pairs set the remaining fields: for=<dur>
// (window length), factor=<0..1> (bandwidth multiplier), delay=<dur> (late
// delivery), count=<n> (occurrences affected), host=<name> (host-scoped
// sites: which host the fault hits; omit to hit any). Examples:
//
//	link.partition@10s,for=2s       partition the link for 2s, 10s in
//	link.bandwidth@5s,for=1s,factor=0.1
//	dest.receive#3,count=2          fail the 3rd and 4th page receives
//	netlink.delay#1,delay=50ms      deliver the 1st netlink message 50ms late
//	lkm.handshake                   swallow the first suspension handshake
//	dest.crash@30s                  crash the destination after 30s
//	host.crash@30s,for=2m,host=d1   host d1 dies at 30s, back after 2m
//	host.flaky@10s,for=45s          every receive (any host) fails for 45s
func ParseRule(spec string) (Rule, error) {
	var r Rule
	head, rest, _ := strings.Cut(spec, ",")
	head = strings.TrimSpace(head)
	if head == "" {
		return r, fmt.Errorf("faults: empty rule spec")
	}
	if head, nth, ok := cutLast(head, "#"); ok {
		n, err := strconv.ParseUint(nth, 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("faults: bad #nth in %q (want positive integer)", spec)
		}
		r.Nth = n
		if head2, at, ok := cutLast(head, "@"); ok {
			d, err := time.ParseDuration(at)
			if err != nil {
				return r, fmt.Errorf("faults: bad @at in %q: %v", spec, err)
			}
			r.At = d
			head = head2
		}
		r.Site = Site(head)
	} else if head2, at, ok := cutLast(head, "@"); ok {
		d, err := time.ParseDuration(at)
		if err != nil {
			return r, fmt.Errorf("faults: bad @at in %q: %v", spec, err)
		}
		r.At = d
		r.Site = Site(head2)
	} else {
		r.Site = Site(head)
	}

	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return r, fmt.Errorf("faults: bad option %q in %q (want key=value)", kv, spec)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch key {
			case "for":
				d, err := time.ParseDuration(val)
				if err != nil {
					return r, fmt.Errorf("faults: bad for=%q: %v", val, err)
				}
				r.For = d
			case "factor":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return r, fmt.Errorf("faults: bad factor=%q: %v", val, err)
				}
				r.Factor = f
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil {
					return r, fmt.Errorf("faults: bad delay=%q: %v", val, err)
				}
				r.Delay = d
			case "count":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n == 0 {
					return r, fmt.Errorf("faults: bad count=%q (want positive integer)", val)
				}
				r.Count = n
			case "host":
				if val == "" {
					return r, fmt.Errorf("faults: empty host= in %q", spec)
				}
				r.Host = val
			default:
				return r, fmt.Errorf("faults: unknown option %q in %q", key, spec)
			}
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// ParsePlan parses each spec with ParseRule and validates the result.
func ParsePlan(specs []string) (Plan, error) {
	var p Plan
	for _, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			return nil, err
		}
		p = append(p, r)
	}
	return p, nil
}

// String renders the rule back into the ParseRule syntax (a round-trippable
// canonical form).
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(string(r.Site))
	if r.At > 0 {
		fmt.Fprintf(&b, "@%v", r.At)
	}
	if r.Nth > 0 {
		fmt.Fprintf(&b, "#%d", r.Nth)
	}
	if r.For > 0 {
		fmt.Fprintf(&b, ",for=%v", r.For)
	}
	if r.Factor > 0 {
		fmt.Fprintf(&b, ",factor=%g", r.Factor)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ",delay=%v", r.Delay)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ",count=%d", r.Count)
	}
	if r.Host != "" {
		fmt.Fprintf(&b, ",host=%s", r.Host)
	}
	return b.String()
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}
