package faults

import (
	"math/rand"
	"time"
)

// RandomPlan generates a seeded random fault plan of up to budget rules, for
// the chaos-search harness (internal/chaos). The same (seed, budget) pair
// always yields the same plan, so a failing plan found by the search is
// reproducible from its seed alone, and the shrinker can re-run subsets
// deterministically.
//
// Every generated rule passes Validate: windowed sites get a window, the
// bandwidth site a factor in (0,1), the delay site a positive delay. Field
// ranges are tuned to the simulator's migration timescale (runs of a few
// virtual seconds to a few minutes): windows of 10ms–2s, rule onsets inside
// the first 20 virtual seconds, occurrence triggers within the first few
// hundred events of a site.
func RandomPlan(seed int64, budget int) Plan {
	return RandomPlanHosts(seed, budget, nil)
}

// RandomPlanHosts is RandomPlan with a host universe: the host-scoped sites
// (host.crash, host.flaky) join the draw, and their rules aim at a host from
// hosts half the time (staying unscoped — matching any host — otherwise), so
// fleet chaos searches can point crashes at named destinations. A nil or
// empty universe removes the host-scoped sites from the draw entirely, which
// keeps RandomPlan's sequence byte-identical to the pre-host-fault catalog:
// published repro seeds keep reproducing.
func RandomPlanHosts(seed int64, budget int, hosts []string) Plan {
	if budget <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	sites := Sites()
	if len(hosts) == 0 {
		kept := make([]Site, 0, len(sites))
		for _, s := range sites {
			if !s.HostScoped() {
				kept = append(kept, s)
			}
		}
		sites = kept
	}
	n := 1 + rng.Intn(budget)
	plan := make(Plan, 0, n)
	for i := 0; i < n; i++ {
		site := sites[rng.Intn(len(sites))]
		r := Rule{Site: site}
		// Onset: 0 (immediate) a third of the time, else inside [0, 20s).
		if rng.Intn(3) > 0 {
			r.At = time.Duration(rng.Int63n(int64(20 * time.Second)))
		}
		if site.HostScoped() && len(hosts) > 0 && rng.Intn(2) == 0 {
			r.Host = hosts[rng.Intn(len(hosts))]
		}
		if site.Windowed() {
			r.For = 10*time.Millisecond + time.Duration(rng.Int63n(int64(2*time.Second)))
			if site == SiteLinkBandwidth {
				r.Factor = 0.05 + 0.9*rng.Float64()
			}
		} else {
			// Discrete: trigger on an early-to-mid occurrence, affect a
			// small burst.
			if rng.Intn(2) == 0 {
				r.Nth = 1 + uint64(rng.Intn(200))
			}
			if rng.Intn(2) == 0 {
				r.Count = 1 + uint64(rng.Intn(3))
			}
			if site == SiteNetlinkDelay {
				r.Delay = time.Millisecond + time.Duration(rng.Int63n(int64(100*time.Millisecond)))
			}
		}
		plan = append(plan, r)
	}
	return plan
}
