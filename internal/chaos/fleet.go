package chaos

import (
	"fmt"
	"strings"
	"time"

	"javmm/internal/faults"
	"javmm/internal/fleet"
	"javmm/internal/migration"
)

// Fleet-plan chaos: the same seeded fault search, aimed at the batch
// orchestrator instead of a single engine. Each trial executes a small
// evacuation plan with a random fault plan active mid-batch and checks the
// fleet-level invariants: every VM either completes to a verified image or
// aborts cleanly with a resumable token (and the resume converges), the
// admission controller never over-commits a link or destination, and the
// fabric conserves bytes (Orchestrate itself enforces the last one).
// A failing fault plan shrinks to a 1-minimal reproducer, reported as the
// javmm-migrate -cluster/-plan/-fault CLI strings that replay it.

// FleetOptions parameterizes a SearchFleet.
type FleetOptions struct {
	// Plans is the number of seeded fault plans to execute (default 8).
	Plans int
	// Seed is the base seed: trial i uses faults.RandomPlan(Seed+i, Budget)
	// and runs in mode i mod 4.
	Seed int64
	// Budget bounds the rules per fault plan (default 3).
	Budget int
	// VMs is the trial evacuation's size (default 2).
	VMs int
	// DisableIntegrityAudit turns the digest audit off in every trial — the
	// planted invariant bug that proves the fleet search has teeth (an
	// unhealed in-flight corruption then reaches the final image, which the
	// per-move verification must flag). Leave false for real searches.
	DisableIntegrityAudit bool
	// Heal turns on the healing search: fault plans draw host-scoped sites
	// (host.crash, host.flaky) aimed at the trial destinations, trials run
	// with the self-healing layer enabled, and the healing invariants are
	// checked — every move ends in a terminal outcome (completed
	// digest-verified on an admissible host, or failed with the source
	// cleanly resumed), admission caps hold across every retry and
	// relocation, and the whole healing run replays byte-identically at the
	// same seed.
	Heal bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o *FleetOptions) fillDefaults() {
	if o.Plans <= 0 {
		o.Plans = 8
	}
	if o.Budget <= 0 {
		o.Budget = 3
	}
	if o.VMs <= 0 {
		o.VMs = 2
	}
}

func (o *FleetOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// TrialFleetPlan is the batch plan every fleet trial executes.
const TrialFleetPlan = "evacuate host src"

// TrialFleetCluster is the one-line cluster the fleet trials run on: n VMs
// on one source host, two destinations, the default backbone. One line so a
// violation's reproducer fits on a javmm-migrate command line.
func TrialFleetCluster(n int) string {
	s := "host src ram 64G; host d1 ram 64G; host d2 ram 64G"
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("; vm fv%d on src workload mpeg mem 512M", i)
	}
	return s
}

// trialPolicy serializes the evacuation behind a one-per-link cap, so later
// moves are still in flight deep into the fault-activation window.
var trialPolicy = fleet.AdmissionPolicy{MaxPerLink: 1, MaxPerHost: 1}

// trialFleetWarmup is the trial plans' warmup; short, so the whole batch
// executes inside the fault plans' activation window.
const trialFleetWarmup = 2 * time.Second

// trialFleetHosts is the destination universe healing fault plans aim
// host-scoped rules at.
var trialFleetHosts = []string{"d1", "d2"}

// trialRetry is the healing policy every Heal trial (and its CLI repro)
// runs: backoff and jitter seed stay at the policy defaults so the repro
// flags (-retry/-max-attempts/-move-deadline/-plan-deadline/-breaker) pin
// the run completely. The breaker thresholds are tightened to trial
// timescale so host-crash plans actually exercise open/cooldown transitions.
var trialRetry = fleet.RetryPolicy{
	Enabled:      true,
	MaxAttempts:  3,
	MoveDeadline: 4 * time.Minute,
	PlanDeadline: 10 * time.Minute,
	Breaker:      fleet.BreakerPolicy{Threshold: 2, Window: 30 * time.Second, Cooldown: 5 * time.Second},
}

// FleetViolation is one fleet-invariant breach with its minimal reproducer.
type FleetViolation struct {
	Violation
	// VMs sizes the trial cluster; VM names the breaching move (empty for
	// plan-level breaches such as admission over-commit).
	VMs int
	VM  string
	// BaseSeed is the search's workload seed (every trial boots with it);
	// AuditDisabled records a search run with the digest audit off; Heal a
	// search run with the self-healing layer enabled.
	BaseSeed      int64
	AuditDisabled bool
	Heal          bool
}

// Repro returns the exact javmm-migrate arguments that replay the shrunk
// fault plan against the trial cluster and batch plan, flag for flag.
func (v *FleetViolation) Repro() []string {
	args := []string{
		"-cluster", TrialFleetCluster(v.VMs),
		"-plan", TrialFleetPlan,
		"-ordering", fleet.OrderAdmission.String(),
		"-mode", v.Mode.String(),
		"-seed", fmt.Sprintf("%d", v.BaseSeed),
		"-warmup", trialFleetWarmup.String(),
		"-max-per-link", fmt.Sprintf("%d", trialPolicy.MaxPerLink),
		"-max-per-host", fmt.Sprintf("%d", trialPolicy.MaxPerHost),
		"-resume=true",
	}
	if v.AuditDisabled {
		args = append(args, "-verify=false")
	}
	if v.Heal {
		args = append(args,
			"-retry",
			"-max-attempts", fmt.Sprintf("%d", trialRetry.MaxAttempts),
			"-move-deadline", trialRetry.MoveDeadline.String(),
			"-plan-deadline", trialRetry.PlanDeadline.String(),
			"-breaker", trialRetry.Breaker.String(),
		)
	}
	for _, r := range v.Shrunk {
		args = append(args, "-fault", r.String())
	}
	return args
}

// FleetResult summarizes one SearchFleet.
type FleetResult struct {
	// PlansRun counts executed trials (stops early at the first violation).
	PlansRun int
	// Violation is the first breach found, already shrunk; nil when every
	// trial upheld the invariants.
	Violation *FleetViolation
}

// SearchFleet executes opts.Plans seeded fleet trials and returns the first
// shrunk violation, if any. Same options, same outcome.
func SearchFleet(opts FleetOptions) *FleetResult {
	opts.fillDefaults()
	res := &FleetResult{}
	for i := 0; i < opts.Plans; i++ {
		seed := opts.Seed + int64(i)
		mode := modes[i%len(modes)]
		var plan faults.Plan
		if opts.Heal {
			plan = faults.RandomPlanHosts(seed, opts.Budget, trialFleetHosts)
		} else {
			plan = faults.RandomPlan(seed, opts.Budget)
		}
		res.PlansRun++
		inv, detail, vm := runFleetTrial(&opts, mode, plan)
		if inv == "" {
			continue
		}
		opts.logf("chaos: fleet seed %d (%s): %s: %s — shrinking %d rules",
			seed, mode, inv, detail, len(plan))
		res.Violation = &FleetViolation{
			Violation: Violation{
				Seed: seed, Mode: mode,
				Invariant: inv, Detail: detail,
				Plan: plan, Shrunk: shrinkFleet(&opts, mode, plan),
			},
			VMs: opts.VMs, VM: vm,
			BaseSeed: opts.Seed, AuditDisabled: opts.DisableIntegrityAudit,
			Heal: opts.Heal,
		}
		return res
	}
	return res
}

// shrinkFleet greedily removes one fault rule at a time while the fleet
// trial still violates some invariant, yielding a 1-minimal reproducer.
func shrinkFleet(opts *FleetOptions, mode migration.Mode, plan faults.Plan) faults.Plan {
	cur := plan
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if len(cur) == 1 {
				break
			}
			cand := make(faults.Plan, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if inv, _, _ := runFleetTrial(opts, mode, cand); inv != "" {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// runFleetOrch executes the trial evacuation once.
func runFleetOrch(opts *FleetOptions, mode migration.Mode, plan faults.Plan) (*fleet.PlanResult, error) {
	cluster, err := fleet.ParseCluster(TrialFleetCluster(opts.VMs))
	if err != nil {
		return nil, fmt.Errorf("trial-setup: %w", err)
	}
	batch, err := fleet.ParseMigrationPlan(TrialFleetPlan)
	if err != nil {
		return nil, fmt.Errorf("trial-setup: %w", err)
	}
	oo := fleet.OrchestratorOptions{
		Cluster:   cluster,
		Plan:      batch,
		Mode:      mode,
		Seed:      opts.Seed,
		Ordering:  fleet.OrderAdmission,
		Admission: trialPolicy,
		Warmup:    trialFleetWarmup,
		FaultPlan: plan,
	}
	if opts.Heal {
		oo.Retry = trialRetry
	}
	oo.Engine.Recovery.EnableResume = true
	oo.Engine.Integrity.Disable = opts.DisableIntegrityAudit
	return fleet.Orchestrate(oo)
}

// fleetFingerprint reduces a plan result to a replay-comparable string:
// every scheduling decision, attempt window, outcome and healing byte count
// lands in it, so two runs of the same seed must produce the same string.
func fleetFingerprint(res *fleet.PlanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%d\n", res.MakeSpan)
	for i := range res.Moves {
		m := &res.Moves[i]
		fmt.Fprintf(&b, "%s to=%s outcome=%s start=%d end=%d launched=%d defer=%d reloc=%d backoff=%d saved=%d err=%v\n",
			m.Name, m.To, m.Outcome, m.StartAt, m.EndAt, m.LaunchedAt,
			m.Deferrals, m.Relocations, m.HealBackoff, m.TokenSavedBytes, m.Err)
		for _, a := range m.Attempts {
			fmt.Fprintf(&b, "  attempt to=%s start=%d end=%d backoff=%d reuse=%v saved=%d refetch=%d err=%s\n",
				a.To, a.StartAt, a.EndAt, a.Backoff, a.TokenReused, a.SavedBytes, a.RefetchPages, a.Err)
		}
	}
	return b.String()
}

// runFleetTrial executes one evacuation under the fault plan and checks the
// fleet invariants. Returns ("", "", "") when every invariant holds, else
// the breached invariant, a detail line, and the breaching VM (if any).
func runFleetTrial(opts *FleetOptions, mode migration.Mode, plan faults.Plan) (string, string, string) {
	res, err := runFleetOrch(opts, mode, plan)
	if err != nil {
		// Orchestrate only fails outright on setup errors or a fabric
		// byte-conservation breach; under an arbitrary fault plan both are
		// invariant violations.
		return "plan-failed", err.Error(), ""
	}

	// Invariant: the admission controller never over-committed a link's or
	// destination's cap, faults or no faults — and with healing enabled,
	// every retry and relocation attempt is held to the same caps.
	if err := fleet.VerifyAdmission(res.Moves, trialPolicy); err != nil {
		return "admission-overcommit", err.Error(), ""
	}

	if opts.Heal {
		// Invariant: the same seed replays byte-identically, healing
		// decisions (backoff draws, relocations, breaker trips) included.
		res2, err2 := runFleetOrch(opts, mode, plan)
		if err2 != nil {
			return "replay-diverged", fmt.Sprintf("replay failed outright: %v", err2), ""
		}
		if a, b := fleetFingerprint(res), fleetFingerprint(res2); a != b {
			return "replay-diverged", fmt.Sprintf("fingerprints differ:\n--- run1\n%s--- run2\n%s", a, b), ""
		}
		return checkHealTrial(res)
	}

	for i := range res.Moves {
		m := &res.Moves[i]
		// Invariant: whatever happened, every launched move has a report.
		if m.Report == nil {
			return "report-missing",
				fmt.Sprintf("move %s finished with neither report nor outcome (err: %v)", m.Name, m.Err), m.Name
		}
		if m.Err != nil {
			// Invariant: aborts are clean — recovery metadata names the
			// reason and minted a resume token.
			rec := m.Report.Recovery
			if rec == nil || !rec.Aborted || rec.AbortReason == "" {
				return "abort-metadata",
					fmt.Sprintf("move %s aborted (%v) without recovery metadata", m.Name, m.Err), m.Name
			}
			if rec.Token == nil {
				return "abort-metadata",
					fmt.Sprintf("move %s: resumable abort (%v) minted no token", m.Name, m.Err), m.Name
			}
			// Invariant: the aborted move resumes (fault plane detached) to
			// a verified completion.
			if _, rerr := res.ResumeAborted(i); rerr != nil {
				return "resume-diverged",
					fmt.Sprintf("move %s: %v", m.Name, rerr), m.Name
			}
			continue
		}
		// Invariant: a completed pre-copy move's image verified at the
		// completion instant.
		if m.VerifyErr != nil {
			return "image-diverged",
				fmt.Sprintf("move %s completed but: %v", m.Name, m.VerifyErr), m.Name
		}
		// Invariant: a completed run healed every mismatch it detected.
		if ic := m.Report.Integrity; ic != nil && ic.Repairs != ic.Mismatches {
			return "unhealed-mismatch",
				fmt.Sprintf("move %s completed with %d repairs for %d mismatches", m.Name, ic.Repairs, ic.Mismatches), m.Name
		}
	}
	return "", "", ""
}

// checkHealTrial verifies the healing invariants over a completed plan:
// every planned move reached a terminal outcome; successful outcomes are
// digest-verified images on an admissible destination (never the evacuated
// host); failed outcomes left the source VM cleanly resumed and — when an
// attempt actually aborted — carry clean recovery metadata and a token a
// post-plan operator resume completes from.
func checkHealTrial(res *fleet.PlanResult) (string, string, string) {
	for i := range res.Moves {
		m := &res.Moves[i]
		switch m.Outcome {
		case fleet.OutcomeCompleted, fleet.OutcomeRetried, fleet.OutcomeRelocated:
			if m.Err != nil {
				return "healed-outcome",
					fmt.Sprintf("move %s outcome %s yet err: %v", m.Name, m.Outcome, m.Err), m.Name
			}
			if m.Report == nil {
				return "healed-outcome",
					fmt.Sprintf("move %s outcome %s without a report", m.Name, m.Outcome), m.Name
			}
			if m.VerifyErr != nil {
				return "image-diverged",
					fmt.Sprintf("move %s (%s) completed but: %v", m.Name, m.Outcome, m.VerifyErr), m.Name
			}
			if m.To == m.From || m.To == "src" {
				return "healed-outcome",
					fmt.Sprintf("move %s landed on inadmissible host %s", m.Name, m.To), m.Name
			}
			if (m.Outcome == fleet.OutcomeRelocated) != (m.Relocations > 0) {
				return "healed-outcome",
					fmt.Sprintf("move %s outcome %s with %d relocations", m.Name, m.Outcome, m.Relocations), m.Name
			}
		case fleet.OutcomeFailed:
			if m.Err == nil {
				return "healed-outcome",
					fmt.Sprintf("move %s failed without an error", m.Name), m.Name
			}
			// The paper's contract survives healing: a failed migration
			// leaves the source VM running where it was.
			if !m.SourceRunning() {
				return "source-not-resumed",
					fmt.Sprintf("move %s failed (%v) with its source still paused", m.Name, m.Err), m.Name
			}
			if m.Report == nil {
				continue // abandoned before its first attempt: nothing aborted
			}
			rec := m.Report.Recovery
			if rec == nil || !rec.Aborted || rec.AbortReason == "" || rec.Token == nil {
				return "abort-metadata",
					fmt.Sprintf("move %s failed (%v) without clean recovery metadata", m.Name, m.Err), m.Name
			}
			if _, rerr := res.ResumeAborted(i); rerr != nil {
				return "resume-diverged",
					fmt.Sprintf("move %s: %v", m.Name, rerr), m.Name
			}
		default:
			return "healed-outcome",
				fmt.Sprintf("move %s ended without a terminal outcome (%s)", m.Name, m.Outcome), m.Name
		}
	}
	return "", "", ""
}
