// Package chaos searches the fault-plan space for migrations that violate
// the engine's standing invariants. Each trial draws a random-but-seeded
// fault plan (faults.RandomPlan), executes a full migration under it on a
// small deterministic VM, and checks that the run either completed correctly
// or aborted cleanly — and that an aborted resumable run actually resumes to
// a verified completion. A failing plan is shrunk to a minimal reproducer
// (greedy one-rule-at-a-time ddmin) and reported as the exact -fault CLI
// strings that replay it.
//
// Everything runs under the virtual clock, so a search over hundreds of
// plans takes seconds of wall time and the same seed always finds the same
// violation, shrunk to the same minimal plan.
package chaos

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs/ledger"
	"javmm/internal/simclock"
)

// Options parameterizes a Search.
type Options struct {
	// Plans is the number of seeded plans to execute (default 12; the CI
	// nightly job runs 200).
	Plans int
	// Seed is the base seed: plan i is faults.RandomPlan(Seed+i, Budget) and
	// runs in mode i mod 4.
	Seed int64
	// Budget bounds the rules per plan (default 3).
	Budget int
	// Pages is the trial VM's size (default 1024).
	Pages uint64
	// Bandwidth is the trial link's bandwidth in bytes/sec. The default
	// (1.5 MB/s) is deliberately slow: a trial migration then spans several
	// seconds of virtual time, inside the [0, 20s) window RandomPlan draws
	// fault activation times from, so timed rules actually land mid-run.
	Bandwidth uint64
	// DisableIntegrityAudit runs every trial with the digest audit turned
	// off. It exists to prove the search works: with the audit disabled, an
	// in-flight corruption completes silently and the search must find and
	// shrink it. Leave false for real searches.
	DisableIntegrityAudit bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o *Options) fillDefaults() {
	if o.Plans <= 0 {
		o.Plans = 12
	}
	if o.Budget <= 0 {
		o.Budget = 3
	}
	if o.Pages == 0 {
		o.Pages = 1024
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = 1500 * 1000
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Violation is one invariant breach, with its minimal reproducer.
type Violation struct {
	// Seed reproduces the plan via faults.RandomPlan(Seed, Budget).
	Seed int64
	// Mode the trial ran in.
	Mode migration.Mode
	// Invariant names the breached invariant; Detail explains the breach.
	Invariant string
	Detail    string
	// Plan is the original failing plan; Shrunk the minimal subset that
	// still fails.
	Plan   faults.Plan
	Shrunk faults.Plan
}

// Repro returns the exact CLI arguments that replay the shrunk plan with
// javmm-migrate.
func (v *Violation) Repro() []string {
	args := []string{"-mode", v.Mode.String()}
	for _, r := range v.Shrunk {
		args = append(args, "-fault", r.String())
	}
	return args
}

// Result summarizes one Search.
type Result struct {
	// PlansRun counts executed plans (stops early at the first violation).
	PlansRun int
	// Violation is the first breach found, already shrunk; nil when every
	// plan upheld the invariants.
	Violation *Violation
}

// modes is the rotation trials cycle through, covering all four engines.
var modes = []migration.Mode{
	migration.ModeVanilla, migration.ModeAppAssisted,
	migration.ModePostCopy, migration.ModeHybrid,
}

// Search executes opts.Plans seeded trials and returns the first shrunk
// violation, if any. Same options, same outcome.
func Search(opts Options) *Result {
	opts.fillDefaults()
	res := &Result{}
	for i := 0; i < opts.Plans; i++ {
		seed := opts.Seed + int64(i)
		mode := modes[i%len(modes)]
		plan := faults.RandomPlan(seed, opts.Budget)
		res.PlansRun++
		inv, detail := runTrial(&opts, mode, plan)
		if inv == "" {
			continue
		}
		opts.logf("chaos: seed %d (%s): %s: %s — shrinking %d rules",
			seed, mode, inv, detail, len(plan))
		shrunk := shrink(&opts, mode, plan)
		res.Violation = &Violation{
			Seed: seed, Mode: mode,
			Invariant: inv, Detail: detail,
			Plan: plan, Shrunk: shrunk,
		}
		return res
	}
	return res
}

// shrink greedily removes one rule at a time while the plan still violates
// some invariant, yielding a minimal (1-minimal) reproducer.
func shrink(opts *Options, mode migration.Mode, plan faults.Plan) faults.Plan {
	cur := plan
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if len(cur) == 1 {
				break
			}
			cand := make(faults.Plan, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if inv, _ := runTrial(opts, mode, cand); inv != "" {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// dirtier is the trial guest workload: it rewrites a hot range continuously
// and, in assisted mode, plays a cooperative application with a skip-over
// area (the hot range itself, reporting ready after a short delay).
type dirtier struct {
	clock *simclock.Clock
	proc  *guestos.Process
	hot   mem.VARange
	sock  *guestos.Socket
}

const trialDirtyRate = 100 // pages/sec — slow enough to converge on the slow trial link

func newDirtier(g *guestos.Guest, clock *simclock.Clock, pages uint64) *dirtier {
	hotPages := pages / 8
	if hotPages == 0 {
		hotPages = 1
	}
	d := &dirtier{
		clock: clock,
		proc:  g.NewProcess("chaos-dirtier"),
		hot:   mem.VARange{Start: 0x1000000, End: 0x1000000 + mem.VA(hotPages)*mem.PageSize},
	}
	if err := d.proc.Alloc(d.hot); err != nil {
		panic(err)
	}
	d.proc.WriteRange(d.hot)
	return d
}

func (d *dirtier) register(g *guestos.Guest) {
	skip := []mem.VARange{d.hot}
	d.sock = g.LKM.RegisterApp(d.proc, func(msg any) {
		switch msg.(type) {
		case guestos.MsgQuerySkipAreas:
			d.sock.Send(guestos.MsgReportAreas{App: d.sock.App(), Areas: skip})
		case guestos.MsgPrepareSuspension:
			d.clock.AfterFunc(5*time.Millisecond, func(time.Duration) {
				d.sock.Send(guestos.MsgSuspensionReady{App: d.sock.App(), Areas: skip})
			})
		}
	})
}

// Run implements migration.GuestExecutor.
func (d *dirtier) Run(dur time.Duration) {
	target := d.clock.Now() + dur
	cursor := d.hot.Start
	for d.clock.Now() < target {
		step := time.Millisecond
		if rem := target - d.clock.Now(); rem < step {
			step = rem
		}
		n := int(trialDirtyRate * step.Seconds())
		for i := 0; i < n; i++ {
			d.proc.Write(cursor)
			cursor += mem.PageSize
			if cursor >= d.hot.End {
				cursor = d.hot.Start
			}
		}
		d.clock.Advance(step)
	}
}

// runTrial executes one migration under the plan and checks the standing
// invariants. It returns ("", "") when every invariant holds, else the
// breached invariant's name and a human-readable detail.
func runTrial(opts *Options, mode migration.Mode, plan faults.Plan) (string, string) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("chaos-vm", clock, mem.NewVersionStore(opts.Pages), 4)
	guest := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	exec := newDirtier(guest, clock, opts.Pages)
	if mode == migration.ModeAppAssisted {
		exec.register(guest)
	}
	inj, err := faults.NewInjector(clock, plan)
	if err != nil {
		return "plan-invalid", err.Error()
	}
	link := netsim.NewLink(clock, opts.Bandwidth, 100*time.Microsecond)
	link.SetFaults(inj)
	dest := migration.NewDestination(opts.Pages)
	dest.SetFaults(inj)
	guest.LKM.SetFaults(inj)
	guest.Bus.SetFaults(inj)
	led := ledger.New()
	cfg := migration.Config{Mode: mode, Faults: inj, Ledger: led}
	cfg.Recovery.EnableResume = true
	cfg.Integrity.Disable = opts.DisableIntegrityAudit
	src := &migration.Source{
		Dom: dom, LKM: guest.LKM, Link: link, Clock: clock,
		Exec: exec, Dest: dest, Cfg: cfg,
	}
	rep, err := src.Migrate()

	// Invariant: whatever happened, the engine hands back a report.
	if rep == nil {
		if err == nil {
			return "report-missing", "run returned neither report nor error"
		}
		return "report-missing", fmt.Sprintf("error without partial report: %v", err)
	}
	// Invariant: the provenance ledger reconciles with the report
	// byte-for-byte — completed or aborted.
	if inv, detail := checkLedger(led, rep, "run"); inv != "" {
		return inv, detail
	}
	if err != nil {
		// Invariant: aborts are clean — recovery metadata names the reason
		// and (with EnableResume) a token exists.
		rec := rep.Recovery
		if rec == nil || !rec.Aborted || rec.AbortReason == "" {
			return "abort-metadata", fmt.Sprintf("aborted (%v) without recovery metadata", err)
		}
		if rec.Token == nil {
			return "abort-metadata", fmt.Sprintf("resumable abort (%v) minted no token", err)
		}
		// Invariant: a resumed run (fault plane detached) converges to a
		// verified completion.
		return checkResume(opts, src, link, dest, guest, rec.Token)
	}
	// Invariant: a completed run's destination holds the source's content
	// for every page of the final transfer set (pre-copy engines; after a
	// post-copy switchover the guest legitimately outruns the image).
	if rep.PostCopy == nil {
		if inv, detail := checkImage(dom, dest, rep, "run"); inv != "" {
			return inv, detail
		}
	}
	// Invariant: a completed run healed every mismatch it detected.
	if ic := rep.Integrity; ic != nil && ic.Repairs != ic.Mismatches {
		return "unhealed-mismatch",
			fmt.Sprintf("completed with %d repairs for %d mismatches", ic.Repairs, ic.Mismatches)
	}
	return "", ""
}

// checkLedger verifies ledger/report reconciliation.
func checkLedger(led *ledger.Ledger, rep *migration.Report, phase string) (string, string) {
	sum := led.Summary()
	if sum.TotalBytes != rep.TotalBytes() || sum.TotalSends != rep.TotalPagesSent {
		return "ledger-reconcile", fmt.Sprintf(
			"%s: ledger %d bytes/%d sends vs report %d/%d",
			phase, sum.TotalBytes, sum.TotalSends, rep.TotalBytes(), rep.TotalPagesSent)
	}
	return "", ""
}

// checkImage verifies the destination against the source for every page the
// destination received out of the final transfer set. The comparison runs on
// the digest tables, so silent in-flight corruption is exactly what it
// catches.
func checkImage(dom *hypervisor.Domain, dest *migration.Destination, rep *migration.Report, phase string) (string, string) {
	if rep.FinalTransfer == nil {
		return "", ""
	}
	store := dom.Store()
	var bad []mem.PFN
	rep.FinalTransfer.Range(func(p mem.PFN) bool {
		got, ok := dest.PageDigestAt(p)
		if ok && got != mem.PageDigest(store.Export(p)) {
			bad = append(bad, p)
		}
		return len(bad) < 8
	})
	if len(bad) > 0 {
		return "silent-corruption", fmt.Sprintf(
			"%s: %d+ destination pages diverge from the source (first: %v)",
			phase, len(bad), bad)
	}
	return "", ""
}

// checkResume detaches the fault plane and resumes from the token; the
// resumed run must complete, reconcile, and leave a faithful image.
func checkResume(opts *Options, src *migration.Source, link *netsim.Link,
	dest *migration.Destination, guest *guestos.Guest, tok *migration.ResumeToken) (string, string) {
	link.SetFaults(nil)
	dest.SetFaults(nil)
	guest.LKM.SetFaults(nil)
	guest.Bus.SetFaults(nil)
	led := ledger.New()
	cfg := src.Cfg
	cfg.Faults = nil
	cfg.Ledger = led
	cfg.Integrity.Disable = opts.DisableIntegrityAudit
	re := &migration.Source{
		Dom: src.Dom, LKM: guest.LKM, Link: link, Clock: src.Clock,
		Exec: src.Exec, Dest: dest, Cfg: cfg,
	}
	rep, err := re.Resume(tok)
	if err != nil {
		return "resume-diverged", fmt.Sprintf("fault-free resume failed: %v", err)
	}
	if rep.Resume == nil {
		return "resume-diverged", "resumed run carries no resume section"
	}
	if inv, detail := checkLedger(led, rep, "resume"); inv != "" {
		return inv, detail
	}
	if rep.PostCopy == nil {
		return checkImage(src.Dom, dest, rep, "resume")
	}
	return "", ""
}
