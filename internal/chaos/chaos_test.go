package chaos

import (
	"reflect"
	"testing"

	"javmm/internal/faults"
)

// With the digest audit disabled (the planted invariant bug), a random plan
// containing an in-flight corruption completes silently — the search must
// find it, shrink it to a minimal plan, and do so deterministically.
func TestSearchFindsPlantedIntegrityBug(t *testing.T) {
	opts := Options{Seed: 1, Plans: 40, DisableIntegrityAudit: true, Log: t.Logf}
	res := Search(opts)
	v := res.Violation
	if v == nil {
		t.Fatalf("no violation found in %d plans despite the disabled audit", res.PlansRun)
	}
	if v.Invariant != "silent-corruption" {
		t.Fatalf("invariant = %q (%s), want silent-corruption", v.Invariant, v.Detail)
	}
	if len(v.Shrunk) == 0 || len(v.Shrunk) > len(v.Plan) {
		t.Fatalf("shrunk plan has %d rules (original %d)", len(v.Shrunk), len(v.Plan))
	}
	hasCorrupt := false
	for _, r := range v.Shrunk {
		if r.Site == faults.SiteCorruptPage {
			hasCorrupt = true
		}
	}
	if !hasCorrupt {
		t.Fatalf("shrunk plan %v lost the corruption rule", v.Shrunk)
	}
	// The repro is replayable: every -fault string parses back to its rule.
	repro := v.Repro()
	if len(repro) < 4 || repro[0] != "-mode" {
		t.Fatalf("repro = %v", repro)
	}
	ri := 0
	for i := 2; i < len(repro); i += 2 {
		if repro[i] != "-fault" {
			t.Fatalf("repro[%d] = %q, want -fault", i, repro[i])
		}
		rule, err := faults.ParseRule(repro[i+1])
		if err != nil {
			t.Fatalf("repro rule %q does not parse: %v", repro[i+1], err)
		}
		if !reflect.DeepEqual(rule, v.Shrunk[ri]) {
			t.Fatalf("repro rule %v != shrunk rule %v", rule, v.Shrunk[ri])
		}
		ri++
	}

	// Determinism: the same options find the same violation, shrunk the
	// same way.
	again := Search(Options{Seed: 1, Plans: 40, DisableIntegrityAudit: true})
	if again.Violation == nil || !reflect.DeepEqual(again.Violation, v) {
		t.Fatalf("search is not deterministic:\n first %+v\nsecond %+v", v, again.Violation)
	}
}

// With the audit enabled, the same plan population upholds every invariant:
// corruption is repaired or aborts cleanly, aborts mint tokens, resumes
// converge, ledgers reconcile.
func TestSearchCleanWithAuditEnabled(t *testing.T) {
	res := Search(Options{Seed: 1, Plans: 40, Log: t.Logf})
	if v := res.Violation; v != nil {
		t.Fatalf("invariant %q violated by seed %d (%s): %s\nplan: %v",
			v.Invariant, v.Seed, v.Mode, v.Detail, v.Plan)
	}
	if res.PlansRun != 40 {
		t.Fatalf("ran %d plans, want 40", res.PlansRun)
	}
}
