package chaos

import (
	"reflect"
	"strings"
	"testing"

	"javmm/internal/faults"
	"javmm/internal/fleet"
)

// With the audit enabled, seeded fault plans dropped mid-batch uphold every
// fleet invariant: each VM completes to a verified image or aborts cleanly
// and resumes, and admission never over-commits.
func TestSearchFleetClean(t *testing.T) {
	res := SearchFleet(FleetOptions{Seed: 1, Plans: 8, Log: t.Logf})
	if v := res.Violation; v != nil {
		t.Fatalf("fleet invariant %q violated by seed %d (%s, move %q): %s\nplan: %v",
			v.Invariant, v.Seed, v.Mode, v.VM, v.Detail, v.Plan)
	}
	if res.PlansRun != 8 {
		t.Fatalf("ran %d plans, want 8", res.PlansRun)
	}
}

// The planted invariant bug: with the digest audit disabled, an in-flight
// corruption survives to the final image and the fleet search must find it,
// shrink the fault plan to a minimal reproducer, and do so deterministically.
func TestSearchFleetFindsPlantedIntegrityBug(t *testing.T) {
	opts := FleetOptions{Seed: 1, Plans: 64, DisableIntegrityAudit: true, Log: t.Logf}
	res := SearchFleet(opts)
	v := res.Violation
	if v == nil {
		t.Fatalf("no violation found in %d fleet trials despite the disabled audit", res.PlansRun)
	}
	if v.Invariant != "image-diverged" {
		t.Fatalf("invariant = %q (%s), want image-diverged", v.Invariant, v.Detail)
	}
	if len(v.Shrunk) == 0 || len(v.Shrunk) > len(v.Plan) {
		t.Fatalf("shrunk plan has %d rules (original %d)", len(v.Shrunk), len(v.Plan))
	}
	hasCorrupt := false
	for _, r := range v.Shrunk {
		if r.Site == faults.SiteCorruptPage {
			hasCorrupt = true
		}
	}
	if !hasCorrupt {
		t.Fatalf("shrunk plan %v lost the corruption rule", v.Shrunk)
	}

	// The repro replays end to end: cluster and batch plan parse, the
	// ordering is a real ordering, every -fault string parses back, and the
	// boolean flags use the one-token -flag=value form the flag package
	// requires.
	repro := v.Repro()
	got := map[string]string{}
	var rules []faults.Rule
	for i := 0; i < len(repro); i++ {
		tok := repro[i]
		if tok == "-fault" {
			rule, err := faults.ParseRule(repro[i+1])
			if err != nil {
				t.Fatalf("repro rule %q does not parse: %v", repro[i+1], err)
			}
			rules = append(rules, rule)
			i++
			continue
		}
		if k := strings.IndexByte(tok, '='); k >= 0 {
			got[tok[:k]] = tok[k+1:]
			continue
		}
		got[tok] = repro[i+1]
		i++
	}
	if _, err := fleet.ParseCluster(got["-cluster"]); err != nil {
		t.Fatalf("repro cluster does not parse: %v", err)
	}
	if _, err := fleet.ParseMigrationPlan(got["-plan"]); err != nil {
		t.Fatalf("repro plan does not parse: %v", err)
	}
	if _, err := fleet.ParseOrdering(got["-ordering"]); err != nil {
		t.Fatalf("repro ordering: %v", err)
	}
	if got["-seed"] != "1" || got["-warmup"] != "2s" {
		t.Fatalf("repro seed/warmup = %q/%q, want the trial's 1/2s", got["-seed"], got["-warmup"])
	}
	if got["-resume"] != "true" || got["-verify"] != "false" {
		t.Fatalf("repro resume/verify = %q/%q, want true/false", got["-resume"], got["-verify"])
	}
	if !reflect.DeepEqual(faults.Plan(rules), v.Shrunk) {
		t.Fatalf("repro rules %v != shrunk plan %v", rules, v.Shrunk)
	}

	// Determinism: the same options find the same violation, shrunk the
	// same way.
	again := SearchFleet(FleetOptions{Seed: 1, Plans: 64, DisableIntegrityAudit: true})
	if again.Violation == nil || !reflect.DeepEqual(again.Violation, v) {
		t.Fatalf("fleet search is not deterministic:\n first %+v\nsecond %+v", v, again.Violation)
	}
}
