// Package simclock provides a deterministic virtual clock for the migration
// simulator.
//
// Every duration reported by the simulator — migration completion time,
// per-iteration durations, GC pauses, workload downtime — is measured against
// a Clock rather than the host's wall clock. This makes experiments exactly
// reproducible and lets a full "66 second" migration of a 2 GB VM run in
// microseconds of host time.
//
// The zero value of Clock is ready to use and starts at time zero.
package simclock

import (
	"fmt"
	"sort"
	"time"
)

// Clock is a virtual clock. It only moves when Advance is called; there is no
// background ticking. Clock is not safe for concurrent use: the simulator is
// single-threaded by design (see DESIGN.md §6). With a Scheduler attached
// (see sched.go) the same discipline holds — exactly one process runs at a
// time — but Advance calls made from inside a process become cooperative
// sleeps, so N processes interleave deterministically on one clock.
type Clock struct {
	now       time.Duration
	timers    []*Timer
	seq       int
	sched     *Scheduler
	advancing bool
}

// New returns a clock positioned at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the clock's origin.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d, firing any timers that expire in the
// interval in deadline order. Advancing by a negative duration panics: virtual
// time, like real time, does not run backwards.
//
// When the caller is a scheduler process, Advance is a cooperative sleep:
// the process parks for d of virtual time while the scheduler runs other
// processes and timers, totally ordered by (deadline, seq). Code written
// against the caller-driven contract therefore runs unchanged inside a
// process.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance(%v): negative duration", d))
	}
	if s := c.sched; s != nil && s.active != nil {
		s.Sleep(d)
		return
	}
	c.advanceDirect(d)
}

// advanceDirect is the caller-driven Advance: fire expiring timers in
// (deadline, seq) order, then set the clock to the target. A timer callback
// that re-enters Advance would move time underneath the interrupted caller's
// arithmetic, so re-entry panics; callbacks that need to advance time must
// run as scheduler processes instead.
func (c *Clock) advanceDirect(d time.Duration) {
	if c.advancing {
		panic("simclock: re-entrant Advance: a timer callback advanced the clock (run it as a scheduler process instead)")
	}
	c.advancing = true
	defer func() { c.advancing = false }()
	target := c.now + d
	for {
		t := c.nextTimer(target)
		if t == nil {
			break
		}
		c.now = t.when
		c.remove(t)
		t.fired = true
		t.fn(c.now)
	}
	c.now = target
}

// fireNext fires the single earliest pending timer, advancing the clock to
// its deadline. It reports false when no timers are pending. The scheduler
// drive loop uses it to move time forward exactly one event at a time, so
// process wakeups and plain timers stay totally ordered by (deadline, seq).
func (c *Clock) fireNext() bool {
	if c.advancing {
		panic("simclock: re-entrant Advance: a timer callback advanced the clock (run it as a scheduler process instead)")
	}
	t := c.nextTimer(1<<63 - 1)
	if t == nil {
		return false
	}
	c.advancing = true
	c.now = t.when
	c.remove(t)
	t.fired = true
	t.fn(c.now)
	c.advancing = false
	return true
}

// AdvanceTo moves the clock forward to the absolute virtual time t.
// It panics if t is in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: AdvanceTo(%v): time is %v, cannot rewind", t, c.now))
	}
	c.Advance(t - c.now)
}

// nextTimer returns the earliest pending timer with a deadline at or before
// limit, or nil if none. Ties break by creation order for determinism.
func (c *Clock) nextTimer(limit time.Duration) *Timer {
	var best *Timer
	for _, t := range c.timers {
		if t.when > limit {
			continue
		}
		if best == nil || t.when < best.when || (t.when == best.when && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

func (c *Clock) remove(t *Timer) {
	for i, x := range c.timers {
		if x == t {
			c.timers = append(c.timers[:i], c.timers[i+1:]...)
			return
		}
	}
}

// Timer is a one-shot virtual timer created by AfterFunc.
type Timer struct {
	when  time.Duration
	seq   int
	fn    func(now time.Duration)
	fired bool
	clock *Clock
}

// AfterFunc registers fn to run when the clock passes the current time plus d.
// The callback receives the virtual time at which it fired. Timers fire during
// Advance, in deadline order.
func (c *Clock) AfterFunc(d time.Duration, fn func(now time.Duration)) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("simclock: AfterFunc(%v): negative duration", d))
	}
	t := &Timer{when: c.now + d, seq: c.seq, fn: fn, clock: c}
	c.seq++
	c.timers = append(c.timers, t)
	return t
}

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t.fired {
		return false
	}
	for _, x := range t.clock.timers {
		if x == t {
			t.clock.remove(t)
			t.fired = true
			return true
		}
	}
	return false
}

// Pending returns the deadlines of all outstanding timers, sorted. It exists
// for tests and debugging.
func (c *Clock) Pending() []time.Duration {
	out := make([]time.Duration, 0, len(c.timers))
	for _, t := range c.timers {
		out = append(out, t.when)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stopwatch measures elapsed virtual time, with support for excluding paused
// intervals. The workload analyzer uses one to observe throughput from
// "outside the VM" (paper §5.1): the observation clock keeps running while the
// VM is suspended.
type Stopwatch struct {
	clock   *Clock
	start   time.Duration
	paused  time.Duration
	pauseAt time.Duration
	inPause bool
}

// NewStopwatch starts a stopwatch at the clock's current time.
func NewStopwatch(c *Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Pause marks the start of an excluded interval. Pausing twice is a no-op.
func (s *Stopwatch) Pause() {
	if s.inPause {
		return
	}
	s.inPause = true
	s.pauseAt = s.clock.Now()
}

// Resume ends an excluded interval. Resuming while not paused is a no-op.
func (s *Stopwatch) Resume() {
	if !s.inPause {
		return
	}
	s.inPause = false
	s.paused += s.clock.Now() - s.pauseAt
}

// Elapsed returns total virtual time since the stopwatch started, including
// paused intervals.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Active returns elapsed time excluding paused intervals.
func (s *Stopwatch) Active() time.Duration {
	p := s.paused
	if s.inPause {
		p += s.clock.Now() - s.pauseAt
	}
	return s.Elapsed() - p
}
