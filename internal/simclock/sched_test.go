package simclock

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Same-instant timers must fire in registration (seq) order, including a
// timer registered from inside another callback mid-Advance ("nested"
// registration lands at the same deadline with a later seq, so it fires
// last), and regardless of whether the instant is reached by one Advance,
// several chained ones, or AdvanceTo.
func TestSameInstantRegistrationOrder(t *testing.T) {
	build := func(c *Clock, got *[]string) {
		log := func(s string) func(time.Duration) {
			return func(time.Duration) { *got = append(*got, s) }
		}
		c.AfterFunc(10*time.Millisecond, log("A"))
		c.AfterFunc(5*time.Millisecond, func(time.Duration) {
			*got = append(*got, "early")
			// Registered mid-Advance: same deadline as A and B, later seq.
			c.AfterFunc(5*time.Millisecond, log("C"))
		})
		c.AfterFunc(10*time.Millisecond, log("B"))
	}
	want := []string{"early", "A", "B", "C"}

	cases := map[string]func(c *Clock){
		"one-advance":      func(c *Clock) { c.Advance(20 * time.Millisecond) },
		"exact-boundary":   func(c *Clock) { c.Advance(10 * time.Millisecond) },
		"chained-advances": func(c *Clock) { c.Advance(5 * time.Millisecond); c.Advance(5 * time.Millisecond) },
		"advance-to":       func(c *Clock) { c.AdvanceTo(7 * time.Millisecond); c.AdvanceTo(10 * time.Millisecond) },
	}
	for name, drive := range cases {
		c := New()
		var got []string
		build(c, &got)
		drive(c)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fired %v, want %v", name, got, want)
		}
	}
}

// Process wakeups ride the timer queue, so timers and processes waking at
// one instant interleave purely by seq: a timer registered before the
// processes went to sleep fires before them.
func TestSchedulerSameInstantOrder(t *testing.T) {
	c := New()
	s := NewScheduler(c)
	var got []string
	c.AfterFunc(10*time.Millisecond, func(time.Duration) { got = append(got, "timer") })
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		s.Go(name, func() {
			c.Advance(10 * time.Millisecond) // cooperative sleep
			got = append(got, name)
		})
	}
	s.Run()
	want := []string{"timer", "p0", "p1", "p2", "p3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wakeup order %v, want %v", got, want)
	}
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v after Run, want 10ms", c.Now())
	}
}

// Property: a seeded random mix of sleeping processes and timers produces an
// identical event log on every execution — determinism cannot depend on
// goroutine scheduling because only one goroutine ever runs at a time.
func TestSchedulerDeterminismProperty(t *testing.T) {
	trace := func(seed int64) []string {
		c := New()
		s := NewScheduler(c)
		rng := rand.New(rand.NewSource(seed))
		var got []string
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("p%d", i)
			steps := make([]time.Duration, 4+rng.Intn(4))
			for j := range steps {
				steps[j] = time.Duration(rng.Intn(5)) * time.Millisecond
			}
			s.Go(name, func() {
				for j, d := range steps {
					c.Advance(d)
					got = append(got, fmt.Sprintf("%s.%d@%v", name, j, c.Now()))
				}
			})
		}
		for i := 0; i < 8; i++ {
			at := time.Duration(rng.Intn(12)) * time.Millisecond
			name := fmt.Sprintf("t%d", i)
			c.AfterFunc(at, func(now time.Duration) {
				got = append(got, fmt.Sprintf("%s@%v", name, now))
			})
		}
		s.Run()
		return got
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := trace(seed), trace(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs diverged:\n%v\n%v", seed, a, b)
		}
		var last time.Duration
		for _, ev := range a {
			var d time.Duration
			if _, err := fmt.Sscanf(ev[strings.LastIndexByte(ev, '@')+1:], "%v", &d); err == nil {
				if d < last {
					t.Fatalf("seed %d: time ran backwards in %v", seed, a)
				}
				last = d
			}
		}
	}
}

// A timer callback that re-enters Advance would move time underneath the
// interrupted caller; the clock must refuse with a clear message, both under
// a caller-driven Advance and under the scheduler's drive loop.
func TestReentrantAdvancePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), "re-entrant Advance") {
				t.Fatalf("%s: panic %q does not name re-entrant Advance", name, r)
			}
		}()
		fn()
	}
	mustPanic("caller-driven", func() {
		c := New()
		c.AfterFunc(time.Millisecond, func(time.Duration) { c.Advance(time.Millisecond) })
		c.Advance(2 * time.Millisecond)
	})
	mustPanic("scheduler-driven", func() {
		c := New()
		s := NewScheduler(c)
		c.AfterFunc(time.Millisecond, func(time.Duration) { c.Advance(time.Millisecond) })
		s.Go("sleeper", func() { c.Advance(5 * time.Millisecond) })
		s.Run()
	})
}

// Park/Ready build event-driven waits; a process no one will ever wake is a
// bug, and the scheduler names it instead of hanging.
func TestSchedulerParkReadyAndDeadlock(t *testing.T) {
	c := New()
	s := NewScheduler(c)
	var p1 *Proc
	var order []string
	p1 = s.Go("waiter", func() {
		p1.Park()
		order = append(order, fmt.Sprintf("waiter@%v", c.Now()))
	})
	s.Go("waker", func() {
		c.Advance(3 * time.Millisecond)
		order = append(order, "waker")
		s.Ready(p1)
	})
	s.Run()
	want := []string{"waker", "waiter@3ms"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}

	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("expected deadlock panic naming the parked process, got %v", r)
		}
		if !strings.Contains(fmt.Sprint(r), "stuck") {
			t.Fatalf("deadlock panic %q does not name the parked process", r)
		}
	}()
	c2 := New()
	s2 := NewScheduler(c2)
	var stuck *Proc
	stuck = s2.Go("stuck", func() { stuck.Park() })
	s2.Run()
}

// A panic inside a process surfaces on the Run caller, annotated with the
// process name.
func TestSchedulerPropagatesProcPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), `process "bad"`) {
			t.Fatalf("expected annotated panic from process, got %v", r)
		}
	}()
	c := New()
	s := NewScheduler(c)
	s.Go("bad", func() {
		c.Advance(time.Millisecond)
		panic("boom")
	})
	s.Run()
}
