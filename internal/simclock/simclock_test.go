package simclock

import (
	"testing"
	"time"
)

func TestZeroClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(250 * time.Millisecond)
	if got, want := c.Now(), 3250*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Nanosecond)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(5 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestAdvanceToPastPanics(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(500 * time.Millisecond)
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	c := New()
	var firedAt time.Duration = -1
	c.AfterFunc(2*time.Second, func(now time.Duration) { firedAt = now })
	c.Advance(time.Second)
	if firedAt != -1 {
		t.Fatalf("timer fired early at %v", firedAt)
	}
	c.Advance(3 * time.Second)
	if firedAt != 2*time.Second {
		t.Fatalf("timer fired at %v, want 2s", firedAt)
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(3*time.Second, func(time.Duration) { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func(time.Duration) { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func(time.Duration) { order = append(order, 2) })
	c.Advance(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestSameDeadlineFiresInCreationOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("fire order = %v, want ascending", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Second, func(time.Duration) { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := New()
	tm := c.AfterFunc(time.Second, func(time.Duration) {})
	c.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop() = true on fired timer")
	}
}

func TestTimerFiringCanScheduleTimers(t *testing.T) {
	c := New()
	var times []time.Duration
	c.AfterFunc(time.Second, func(now time.Duration) {
		times = append(times, now)
		c.AfterFunc(time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	c.Advance(5 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("chained timers fired at %v, want [1s 2s]", times)
	}
}

func TestPendingSorted(t *testing.T) {
	c := New()
	c.AfterFunc(3*time.Second, func(time.Duration) {})
	c.AfterFunc(1*time.Second, func(time.Duration) {})
	got := c.Pending()
	if len(got) != 2 || got[0] != time.Second || got[1] != 3*time.Second {
		t.Fatalf("Pending() = %v", got)
	}
}

func TestStopwatchElapsed(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	sw := NewStopwatch(c)
	c.Advance(4 * time.Second)
	if got := sw.Elapsed(); got != 4*time.Second {
		t.Fatalf("Elapsed() = %v, want 4s", got)
	}
}

func TestStopwatchExcludesPauses(t *testing.T) {
	c := New()
	sw := NewStopwatch(c)
	c.Advance(2 * time.Second)
	sw.Pause()
	c.Advance(3 * time.Second)
	sw.Resume()
	c.Advance(1 * time.Second)
	if got := sw.Elapsed(); got != 6*time.Second {
		t.Fatalf("Elapsed() = %v, want 6s", got)
	}
	if got := sw.Active(); got != 3*time.Second {
		t.Fatalf("Active() = %v, want 3s", got)
	}
}

func TestStopwatchActiveDuringPause(t *testing.T) {
	c := New()
	sw := NewStopwatch(c)
	c.Advance(time.Second)
	sw.Pause()
	c.Advance(time.Second)
	if got := sw.Active(); got != time.Second {
		t.Fatalf("Active() mid-pause = %v, want 1s", got)
	}
}

func TestStopwatchDoublePauseResumeAreIdempotent(t *testing.T) {
	c := New()
	sw := NewStopwatch(c)
	sw.Pause()
	sw.Pause()
	c.Advance(time.Second)
	sw.Resume()
	sw.Resume()
	c.Advance(time.Second)
	if got := sw.Active(); got != time.Second {
		t.Fatalf("Active() = %v, want 1s", got)
	}
}
