package simclock

import (
	"fmt"
	"strings"
	"time"
)

// Scheduler runs cooperative processes against one Clock, deterministically.
//
// Exactly one process executes at any moment; control passes between the
// scheduler and a process over unbuffered channels, so every handoff is a
// happens-before edge and a scheduled run is race-free by construction. A
// process that calls Clock.Advance (directly or through any code written
// against the caller-driven contract) parks for that much virtual time while
// other processes and timers run. Wakeups ride the clock's existing timer
// queue, so everything that happens at one virtual instant — timer callbacks
// and process resumptions alike — fires in registration (seq) order. The
// result: a same-seed run is byte-identical regardless of goroutine
// interleaving, because goroutines never actually interleave.
//
// The zero Scheduler is not usable; build one with NewScheduler, spawn
// processes with Go, then call Run to drive everything to completion.
type Scheduler struct {
	clock   *Clock
	procs   []*Proc // every spawned, not-yet-finished process
	runq    []*Proc // runnable, in wakeup order
	active  *Proc   // the process currently executing, if any
	running bool
}

// NewScheduler attaches a new scheduler to the clock. A clock carries at most
// one scheduler; attaching a second panics.
func NewScheduler(c *Clock) *Scheduler {
	if c.sched != nil {
		panic("simclock: clock already has a scheduler")
	}
	s := &Scheduler{clock: c}
	c.sched = s
	return s
}

// Scheduler returns the scheduler attached to the clock, or nil.
func (c *Clock) Scheduler() *Scheduler { return c.sched }

// Clock returns the clock the scheduler drives.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Active returns the process currently executing, or nil when control is
// with the scheduler (or no Run is in progress).
func (s *Scheduler) Active() *Proc { return s.active }

// Proc is one cooperative process. It runs on its own goroutine but only
// while it holds the scheduler's baton; between Park and Unpark (or during a
// Sleep) the goroutine is blocked on a channel and consumes no CPU.
type Proc struct {
	name   string
	sched  *Scheduler
	resume chan struct{} // scheduler -> process: run
	yield  chan struct{} // process -> scheduler: parked or finished
	done   bool
	queued bool // in runq (guards against double-Ready)
	pan    any  // panic captured from the process body
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Go spawns fn as a new process. The process is runnable immediately but does
// not execute until Run (or the next scheduling point) hands it the baton;
// same-instant processes start in Go-call order.
func (s *Scheduler) Go(name string, fn func()) *Proc {
	p := &Proc{
		name:   name,
		sched:  s,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	s.procs = append(s.procs, p)
	s.ready(p)
	go func() {
		<-p.resume
		defer func() {
			p.pan = recover()
			p.done = true
			s.active = nil
			p.yield <- struct{}{}
		}()
		fn()
	}()
	return p
}

// Run drives the system until every process has finished: it resumes
// runnable processes in wakeup order and, when none are runnable, fires the
// single earliest timer (which may wake processes). Run panics if processes
// remain but nothing can ever wake them, and re-raises (annotated) any panic
// escaping a process body.
func (s *Scheduler) Run() {
	if s.running {
		panic("simclock: re-entrant Scheduler.Run")
	}
	if s.active != nil {
		panic("simclock: Scheduler.Run called from inside a process")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if len(s.runq) > 0 {
			p := s.runq[0]
			s.runq = s.runq[1:]
			p.queued = false
			s.step(p)
			continue
		}
		s.reap()
		if len(s.procs) == 0 {
			return
		}
		if !s.clock.fireNext() {
			panic(fmt.Sprintf("simclock: deadlock: no runnable process and no pending timer; parked: %s",
				strings.Join(s.names(), ", ")))
		}
	}
}

// step hands the baton to p and blocks until p parks or finishes.
func (s *Scheduler) step(p *Proc) {
	s.active = p
	p.resume <- struct{}{}
	<-p.yield
	if p.pan != nil {
		panic(fmt.Sprintf("simclock: process %q panicked: %v", p.name, p.pan))
	}
}

// reap drops finished processes from the live set.
func (s *Scheduler) reap() {
	live := s.procs[:0]
	for _, p := range s.procs {
		if !p.done {
			live = append(live, p)
		}
	}
	s.procs = live
}

func (s *Scheduler) names() []string {
	var out []string
	for _, p := range s.procs {
		if !p.done {
			out = append(out, p.name)
		}
	}
	return out
}

// ready queues p for execution. Queuing an already-queued process is a no-op
// so multiple wake sources cannot run a process twice for one park.
func (s *Scheduler) ready(p *Proc) {
	if p.done || p.queued {
		return
	}
	p.queued = true
	s.runq = append(s.runq, p)
}

// Ready marks a parked process runnable at the current virtual instant. It is
// the wakeup half of Park; callers outside the package use it to build
// condition-style waits (park until some event, then Ready from the event's
// timer callback).
func (s *Scheduler) Ready(p *Proc) { s.ready(p) }

// Park yields the baton until another party calls Scheduler.Ready(p). It must
// be called from the running process itself.
func (p *Proc) Park() {
	s := p.sched
	if s.active != p {
		panic(fmt.Sprintf("simclock: Park of %q from outside the process", p.name))
	}
	s.active = nil
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep parks the calling process for d of virtual time. The wakeup is a
// clock timer, so it is ordered against every other same-instant event by
// seq. Sleep(0) yields: the process re-queues behind everything already
// scheduled at the current instant. Must be called from a running process;
// Clock.Advance forwards here automatically, so most code never calls Sleep
// explicitly.
func (s *Scheduler) Sleep(d time.Duration) {
	p := s.active
	if p == nil {
		panic("simclock: Sleep called from outside a process")
	}
	if d < 0 {
		panic(fmt.Sprintf("simclock: Sleep(%v): negative duration", d))
	}
	s.clock.AfterFunc(d, func(time.Duration) { s.ready(p) })
	p.Park()
}

// Wait parks the calling process until pred() holds, re-checking every time
// it is woken by recheck timers registered at interval. It is a convenience
// for polling-style conditions; event-driven code should Park and Ready
// explicitly.
func (s *Scheduler) Wait(pred func() bool, interval time.Duration) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	for !pred() {
		s.Sleep(interval)
	}
}
