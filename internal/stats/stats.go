// Package stats provides the small statistical toolkit the experiment
// harness uses: means, standard deviations and the 90 % confidence intervals
// the paper reports on its bar graphs (§5.1: "we report the average of the
// measurements, and show 90% confidence intervals").
package stats

import (
	"math"
	"time"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tTable holds two-sided 90 % critical values of Student's t distribution by
// degrees of freedom; experiments repeat runs at least three times (df ≥ 2).
var tTable = map[int]float64{
	1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015,
	6: 1.943, 7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812,
}

// tCrit returns the 90 % two-sided critical value for df degrees of freedom,
// falling back to the normal approximation for large df.
func tCrit(df int) float64 {
	if df <= 0 {
		return 0
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	return 1.645
}

// CI90 returns the mean and the half-width of its 90 % confidence interval.
func CI90(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = tCrit(len(xs)-1) * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// MeanDuration returns the mean of durations.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

// DurationsToSeconds converts durations to float seconds for CI math.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
