package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-value StdDev != 0")
	}
}

func TestCI90KnownValues(t *testing.T) {
	// Three runs: mean 10, sd 1 → half = 2.920 * 1/sqrt(3) = 1.6859.
	mean, half := CI90([]float64{9, 10, 11})
	if !almost(mean, 10) {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(half-2.920/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("half = %v", half)
	}
	_, zero := CI90([]float64{5})
	if zero != 0 {
		t.Fatal("single-value CI not zero")
	}
}

func TestCIShrinksWithMoreSamples(t *testing.T) {
	three := []float64{9, 10, 11}
	nine := []float64{9, 10, 11, 9, 10, 11, 9, 10, 11}
	_, h3 := CI90(three)
	_, h9 := CI90(nine)
	if h9 >= h3 {
		t.Fatalf("CI did not shrink: %v -> %v", h3, h9)
	}
}

func TestTCritFallback(t *testing.T) {
	if tCrit(0) != 0 {
		t.Fatal("df=0 crit nonzero")
	}
	if tCrit(50) != 1.645 {
		t.Fatal("large-df fallback wrong")
	}
}

func TestTCritEdgeCases(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-5, 0},     // nonsensical df clamps to 0
		{-1, 0},     // nonsensical df clamps to 0
		{0, 0},      // zero-sample / one-sample CI has no width
		{1, 6.314},  // smallest tabulated df
		{2, 2.920},  // the paper's three-run repeats
		{10, 1.812}, // largest tabulated df
		{11, 1.645}, // first df past the table: normal approximation
		{1000, 1.645},
	}
	for _, c := range cases {
		if got := tCrit(c.df); got != c.want {
			t.Errorf("tCrit(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// The critical value must be non-increasing in df (the t distribution
	// tightens toward the normal).
	prev := tCrit(1)
	for df := 2; df <= 15; df++ {
		cur := tCrit(df)
		if cur > prev {
			t.Fatalf("tCrit not monotone at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestCI90EdgeCases(t *testing.T) {
	// Empty input: both mean and half-width are zero.
	if mean, half := CI90(nil); mean != 0 || half != 0 {
		t.Fatalf("CI90(nil) = %v ± %v", mean, half)
	}
	// Single sample: the mean is the sample, the interval has no width
	// (df would be 0).
	if mean, half := CI90([]float64{42}); mean != 42 || half != 0 {
		t.Fatalf("CI90(single) = %v ± %v", mean, half)
	}
	// Constant samples: zero stddev, zero half-width, any df.
	if mean, half := CI90([]float64{7, 7, 7, 7}); mean != 7 || half != 0 {
		t.Fatalf("CI90(constant) = %v ± %v", mean, half)
	}
	// Two samples exercise the df=1 row: half = 6.314 * sd / sqrt(2).
	sd := StdDev([]float64{9, 11})
	if _, half := CI90([]float64{9, 11}); math.Abs(half-6.314*sd/math.Sqrt(2)) > 1e-9 {
		t.Fatalf("CI90 df=1 half = %v", half)
	}
	// Twelve samples exercise the normal fallback: half = 1.645 * sd / sqrt(12).
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if _, half := CI90(xs); math.Abs(half-1.645*StdDev(xs)/math.Sqrt(12)) > 1e-9 {
		t.Fatalf("CI90 fallback half = %v", half)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("MeanDuration(nil) != 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Fatalf("MeanDuration = %v", got)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	got := DurationsToSeconds([]time.Duration{1500 * time.Millisecond})
	if len(got) != 1 || !almost(got[0], 1.5) {
		t.Fatalf("DurationsToSeconds = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max not zero")
	}
}

// Property: mean lies within [min, max]; stddev is non-negative and zero for
// constant slices.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
