package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestStdDev(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-value StdDev != 0")
	}
}

func TestCI90KnownValues(t *testing.T) {
	// Three runs: mean 10, sd 1 → half = 2.920 * 1/sqrt(3) = 1.6859.
	mean, half := CI90([]float64{9, 10, 11})
	if !almost(mean, 10) {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(half-2.920/math.Sqrt(3)) > 1e-9 {
		t.Fatalf("half = %v", half)
	}
	_, zero := CI90([]float64{5})
	if zero != 0 {
		t.Fatal("single-value CI not zero")
	}
}

func TestCIShrinksWithMoreSamples(t *testing.T) {
	three := []float64{9, 10, 11}
	nine := []float64{9, 10, 11, 9, 10, 11, 9, 10, 11}
	_, h3 := CI90(three)
	_, h9 := CI90(nine)
	if h9 >= h3 {
		t.Fatalf("CI did not shrink: %v -> %v", h3, h9)
	}
}

func TestTCritFallback(t *testing.T) {
	if tCrit(0) != 0 {
		t.Fatal("df=0 crit nonzero")
	}
	if tCrit(50) != 1.645 {
		t.Fatal("large-df fallback wrong")
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("MeanDuration(nil) != 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Fatalf("MeanDuration = %v", got)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	got := DurationsToSeconds([]time.Duration{1500 * time.Millisecond})
	if len(got) != 1 || !almost(got[0], 1.5) {
		t.Fatalf("DurationsToSeconds = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max not zero")
	}
}

// Property: mean lies within [min, max]; stddev is non-negative and zero for
// constant slices.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
