package workload

import (
	"fmt"
	"time"
)

// CycleSpec models a workload's periodic activity cycle: most production
// services breathe — a busy phase (full allocation, operation and dirtying
// rates) alternating with a quiet phase (batch windows, off-peak hours,
// checkpoint lulls) in which the mutator runs at a fraction of its rates.
// The fleet orchestrator exploits exactly this structure (cf. "Exploiting
// Workload Cycles for Orchestration of VM Live Migrations in Clouds"):
// launching a migration inside the quiet window shrinks the dirty rate the
// pre-copy race has to beat, which shrinks both downtime and the throughput
// dip the SLA model prices.
//
// The zero value is a flat profile (no cycle): ActivityAt is 1 everywhere,
// so every existing workload behaves exactly as before.
type CycleSpec struct {
	// Period is the cycle length. Zero disables the cycle entirely.
	Period time.Duration
	// QuietStart is the offset within the period at which the quiet window
	// opens; QuietLen is its length. The window may wrap the period
	// boundary (QuietStart+QuietLen > Period).
	QuietStart time.Duration
	QuietLen   time.Duration
	// QuietFactor is the activity multiplier inside the quiet window
	// (0 < QuietFactor ≤ 1); activity outside the window is 1.
	QuietFactor float64
	// Phase shifts the cycle origin, so a fleet of VMs sharing one clock
	// can have staggered quiet windows.
	Phase time.Duration
}

// Enabled reports whether the spec describes an actual cycle.
func (c CycleSpec) Enabled() bool { return c.Period > 0 }

// Validate rejects malformed specs. The zero value is valid.
func (c CycleSpec) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.QuietLen <= 0 || c.QuietLen > c.Period {
		return fmt.Errorf("workload: cycle quiet length %v outside (0, period %v]", c.QuietLen, c.Period)
	}
	if c.QuietStart < 0 || c.QuietStart >= c.Period {
		return fmt.Errorf("workload: cycle quiet start %v outside [0, period %v)", c.QuietStart, c.Period)
	}
	if c.QuietFactor <= 0 || c.QuietFactor > 1 {
		return fmt.Errorf("workload: cycle quiet factor %v outside (0, 1]", c.QuietFactor)
	}
	return nil
}

// pos maps an absolute virtual time onto the cycle position in [0, Period).
func (c CycleSpec) pos(t time.Duration) time.Duration {
	p := (t + c.Phase) % c.Period
	if p < 0 {
		p += c.Period
	}
	return p
}

// QuietAt reports whether t falls inside the quiet window.
func (c CycleSpec) QuietAt(t time.Duration) bool {
	if !c.Enabled() {
		return false
	}
	p := c.pos(t)
	end := c.QuietStart + c.QuietLen
	if end <= c.Period {
		return p >= c.QuietStart && p < end
	}
	// Window wraps the period boundary.
	return p >= c.QuietStart || p < end-c.Period
}

// ActivityAt returns the mutator activity multiplier at t: QuietFactor
// inside the quiet window, 1 elsewhere (and always 1 for a flat spec).
func (c CycleSpec) ActivityAt(t time.Duration) float64 {
	if c.QuietAt(t) {
		return c.QuietFactor
	}
	return 1
}

// NextQuiet returns the earliest time ≥ t at which the quiet window is
// open: t itself when already inside the window. A flat spec is "always
// quiet" — there is no busy phase to avoid — so NextQuiet returns t.
func (c CycleSpec) NextQuiet(t time.Duration) time.Duration {
	if !c.Enabled() || c.QuietAt(t) {
		return t
	}
	p := c.pos(t)
	if p < c.QuietStart {
		return t + (c.QuietStart - p)
	}
	return t + (c.Period - p) + c.QuietStart
}

// QuietRemaining returns how much of the current quiet window is left at t
// (zero when t is outside the window).
func (c CycleSpec) QuietRemaining(t time.Duration) time.Duration {
	if !c.QuietAt(t) {
		return 0
	}
	p := c.pos(t)
	end := c.QuietStart + c.QuietLen
	if end <= c.Period {
		return end - p
	}
	if p >= c.QuietStart {
		return end - p // tail still runs past the period boundary
	}
	return end - c.Period - p
}
