package workload

import (
	"fmt"
	"math/rand"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/javmm"
	"javmm/internal/jvm"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Sample is one per-second throughput observation taken by the external
// analyzer (paper §5.1: "a custom analyzer that sends out the number of
// operations completed by the workload once every second", observed with a
// time source unaffected by VM suspension).
type Sample struct {
	Second int     // virtual seconds since the driver started
	Ops    float64 // operations completed during that second
}

// HeapRuntime is the collector surface the driver executes against. Both
// the contiguous parallel-scavenge heap (*jvm.JVM) and the garbage-first-
// style regional heap (*jvm.RegionalHeap) implement it.
type HeapRuntime interface {
	Allocate(uint64) uint64
	NeedsMinorGC() bool
	NeedsFullGC() bool
	BeginMinorGC(enforced bool) time.Duration
	CompleteMinorGC() (jvm.GCStats, error)
	BeginFullGC() time.Duration
	CompleteFullGC() jvm.GCStats
	HeldAtSafepoint() bool
	EnforcePending() bool
	SafepointDelay() time.Duration
	MutateOld(n int)
	JITChurn(n int)
	SeedOld(bytes uint64) error
	YoungCommitted() uint64
	OldUsed() uint64
	GCHistory() []jvm.GCStats
	CheckConservation() error
}

// gcIncremental is optionally implemented by collectors that spread their
// copy writes across the pause (the parallel scavenger does; the regional
// collector writes at evacuation end).
type gcIncremental interface {
	GCCopyTick(adv time.Duration)
}

// Driver executes a workload profile against a simulated JVM under virtual
// time. It implements migration.GuestExecutor: the migration engine hands it
// slices of virtual time during which the guest runs, allocates (dirtying
// young-generation pages), completes operations, performs GCs and reacts to
// the JAVMM agent's enforced-GC requests.
type Driver struct {
	Clock   *simclock.Clock
	Guest   *guestos.Guest
	Proc    *guestos.Process
	Heap    HeapRuntime
	Profile Profile

	throttle float64

	// GC execution state.
	gcRemaining time.Duration
	gcIsFull    bool
	// Safepoint walk toward an enforced GC.
	safepointArmed     bool
	safepointRemaining time.Duration

	// Fractional-rate accumulators.
	allocCarry, oldCarry, jitCarry, kernCarry float64
	kernelCursor                              uint64

	// Throughput accounting.
	TotalOps       float64
	samples        []Sample
	nextSampleAt   time.Duration
	startAt        time.Duration
	sampleOpsBase  float64
	lastDirtyEvent uint64

	// Fatal workload errors (heap exhaustion) surface here; the driver
	// stops executing once set.
	Err error

	tracer  *obs.Tracer
	metrics *obs.Metrics
}

// SetObs attaches a tracer and metrics registry: each per-second analyzer
// sample becomes a workload.sample instant on the workload track and updates
// the workload.ops_per_sec gauge. Either argument may be nil.
func (d *Driver) SetObs(t *obs.Tracer, m *obs.Metrics) {
	d.tracer = t
	d.metrics = m
}

// step is the driver's execution quantum.
const step = time.Millisecond

// NewDriver wires a driver for the given components. The heap must belong to
// proc.
func NewDriver(clock *simclock.Clock, g *guestos.Guest, proc *guestos.Process, h HeapRuntime, prof Profile) *Driver {
	d := &Driver{
		Clock:    clock,
		Guest:    g,
		Proc:     proc,
		Heap:     h,
		Profile:  prof,
		throttle: 1.0,
		startAt:  clock.Now(),
	}
	d.nextSampleAt = d.startAt + time.Second
	d.lastDirtyEvent = g.Dom.DirtyEvents()
	return d
}

// SetThrottle implements migration.Throttleable (Clark-style write
// throttling).
func (d *Driver) SetThrottle(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("workload: throttle factor %v out of (0,1]", f))
	}
	d.throttle = f
}

// Samples returns the per-second throughput series collected so far.
func (d *Driver) Samples() []Sample { return d.samples }

// Run implements migration.GuestExecutor: execute the guest for exactly dur
// of virtual time.
func (d *Driver) Run(dur time.Duration) {
	end := d.Clock.Now() + dur
	for d.Clock.Now() < end {
		q := step
		if rem := end - d.Clock.Now(); rem < q {
			q = rem
		}
		d.tick(q)
		d.takeSamples()
	}
}

// tick advances one quantum of guest execution.
func (d *Driver) tick(q time.Duration) {
	switch {
	case d.Err != nil:
		// Workload crashed (OutOfMemory): the guest idles.
		d.Clock.Advance(q)

	case d.gcRemaining > 0:
		// Stop-the-world collection in progress: no ops, no allocation —
		// but the collector itself keeps writing (copying live data), so
		// a concurrent migration still observes dirtying.
		adv := q
		if d.gcRemaining < adv {
			adv = d.gcRemaining
		}
		if inc, ok := d.Heap.(gcIncremental); ok {
			inc.GCCopyTick(adv)
		}
		d.Clock.Advance(adv)
		d.gcRemaining -= adv
		if d.gcRemaining == 0 {
			d.completeGC()
		}

	case d.Heap.HeldAtSafepoint():
		// Post-enforced-GC: Java threads held until the VM resumes at the
		// destination. Only background kernel activity continues.
		d.backgroundKernel(q)
		d.Clock.Advance(q)

	default:
		if d.Heap.EnforcePending() && !d.safepointArmed {
			d.safepointArmed = true
			d.safepointRemaining = d.Heap.SafepointDelay()
		}
		d.execute(q)
		if d.safepointArmed {
			d.safepointRemaining -= q
			if d.safepointRemaining <= 0 {
				d.safepointArmed = false
				d.startMinorGC(true)
				return
			}
		}
		if d.Heap.NeedsFullGC() {
			d.startFullGC()
			return
		}
		if d.Heap.NeedsMinorGC() {
			d.startMinorGC(false)
		}
	}
}

// cpuShare models the guest-side overhead of log-dirty write faults while
// migration is tracking dirty pages: each first-write-per-round traps into
// the hypervisor, stealing mutator CPU. Without log-dirty mode the share
// is 1.
func (d *Driver) cpuShare(q time.Duration) float64 {
	traps := d.Guest.Dom.DirtyEvents() - d.lastDirtyEvent
	d.lastDirtyEvent = d.Guest.Dom.DirtyEvents()
	if !d.Guest.Dom.LogDirtyEnabled() || d.Profile.WriteTrapCost == 0 {
		return 1
	}
	overhead := time.Duration(traps) * d.Profile.WriteTrapCost
	share := 1 - float64(overhead)/float64(q)
	if share < 0.5 {
		share = 0.5
	}
	if share > 1 {
		share = 1
	}
	return share
}

// execute runs the mutator for q: allocation, operations and background
// dirtying.
func (d *Driver) execute(q time.Duration) {
	// The activity cycle scales every mutator rate: inside the quiet
	// window the workload allocates, completes ops and dirties at
	// QuietFactor of its calibrated rates. Flat profiles get factor 1.
	share := d.cpuShare(q) * d.throttle * d.Profile.Cycle.ActivityAt(d.Clock.Now())
	secs := q.Seconds()

	// Object allocation (bump pointer in Eden; dirties pages).
	alloc := float64(d.Profile.AllocBytesPerSec)*share*secs + d.allocCarry
	if alloc >= 1 {
		want := uint64(alloc)
		got := d.Heap.Allocate(want)
		d.allocCarry = alloc - float64(got)
		// Cap the carry at Eden capacity: allocation stalls, it does not
		// accumulate unboundedly while a GC is pending.
		if max := float64(d.Profile.MaxYoungBytes); d.allocCarry > max {
			d.allocCarry = max
		}
	} else {
		d.allocCarry = alloc
	}

	// Operations complete in proportion to mutator CPU.
	d.TotalOps += d.Profile.OpsPerSec * share * secs

	// Old-generation in-place mutation.
	old := d.Profile.OldMutatePagesPerSec*share*secs + d.oldCarry
	if n := int(old); n > 0 {
		d.Heap.MutateOld(n)
	}
	d.oldCarry = old - float64(int(old))

	// JIT churn.
	jit := d.Profile.JITPagesPerSec*share*secs + d.jitCarry
	if n := int(jit); n > 0 {
		d.Heap.JITChurn(n)
	}
	d.jitCarry = jit - float64(int(jit))

	d.backgroundKernel(q)
	d.Clock.Advance(q)
}

// backgroundKernel dirties guest-kernel pages: timers, slab churn, network
// buffers. It runs even while Java threads are held.
func (d *Driver) backgroundKernel(q time.Duration) {
	kern := d.Profile.KernelPagesPerSec*q.Seconds() + d.kernCarry
	n := int(kern)
	d.kernCarry = kern - float64(n)
	limit := uint64(guestos.KernelReservedPages)
	if dp := d.Guest.Dom.NumPages(); dp < limit {
		limit = dp
	}
	for i := 0; i < n; i++ {
		d.Guest.DirtyKernelPage(d.kernelCursor % limit)
		d.kernelCursor++
	}
}

func (d *Driver) startMinorGC(enforced bool) {
	d.gcRemaining = d.Heap.BeginMinorGC(enforced)
	d.gcIsFull = false
}

func (d *Driver) startFullGC() {
	d.gcRemaining = d.Heap.BeginFullGC()
	d.gcIsFull = true
}

func (d *Driver) completeGC() {
	if d.gcIsFull {
		d.Heap.CompleteFullGC()
		return
	}
	if _, err := d.Heap.CompleteMinorGC(); err != nil {
		d.Err = fmt.Errorf("workload %s: %w", d.Profile.Name, err)
	}
}

// takeSamples records per-second throughput at each virtual-second boundary
// the clock has crossed. The analyzer's clock keeps running during VM
// suspension, so suspended seconds appear as zero-op samples.
func (d *Driver) takeSamples() {
	for d.Clock.Now() >= d.nextSampleAt {
		// Second is the 0-based index of the interval the sample covers.
		sec := int((d.nextSampleAt-d.startAt)/time.Second) - 1
		s := Sample{Second: sec, Ops: d.TotalOps - d.sampleOpsBase}
		d.samples = append(d.samples, s)
		d.tracer.Emit(obs.TrackWorkload, obs.KindSample, "sample", s,
			obs.Int("second", s.Second), obs.Float("ops", s.Ops))
		d.metrics.Gauge("workload.ops_per_sec").Set(s.Ops)
		d.sampleOpsBase = d.TotalOps
		d.nextSampleAt += time.Second
	}
}

// LongestStall returns the longest run of consecutive seconds in which the
// workload completed fewer than threshold operations — how an external
// observer of the Figure 11 timelines reads off downtime.
func LongestStall(samples []Sample, threshold float64) int {
	bySec := make(map[int]float64, len(samples))
	minSec, maxSec := 0, 0
	for i, s := range samples {
		bySec[s.Second] = s.Ops
		if i == 0 || s.Second < minSec {
			minSec = s.Second
		}
		if s.Second > maxSec {
			maxSec = s.Second
		}
	}
	longest, cur := 0, 0
	for sec := minSec; sec <= maxSec; sec++ {
		if bySec[sec] < threshold {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return longest
}

// VM bundles a fully assembled guest: domain, guest OS, JVM, optional JAVMM
// agent and the workload driver. It is the unit the experiments (and the
// public API) migrate.
type VM struct {
	Clock *simclock.Clock
	Dom   *hypervisor.Domain
	Guest *guestos.Guest
	Proc  *guestos.Process
	// Heap is the collector the workload runs against; JVM additionally
	// holds the concrete parallel-scavenge instance when the default
	// collector is in use (nil under CollectorG1), and Regional the
	// region-based instance when it is.
	Heap     HeapRuntime
	JVM      *jvm.JVM
	Regional *jvm.RegionalHeap
	Agent    *javmm.Agent // nil unless assisted
	Driver   *Driver
}

// AttachObs threads a tracer and metrics registry through every instrumented
// guest-side layer of the VM: the LKM workflow (state transitions, final
// updates), the netlink bus, the collector (GC spans, Safepoint events) and
// the workload driver (per-second throughput samples). Callers migrating the
// VM should also pass the same pair via migration.Config so the engine's
// iteration spans land in the same trace. Nil arguments detach.
func (vm *VM) AttachObs(t *obs.Tracer, m *obs.Metrics) {
	vm.Guest.LKM.SetObs(t, m)
	vm.Guest.Bus.SetTracer(t)
	if vm.JVM != nil {
		vm.JVM.SetObs(t, m)
	}
	if vm.Regional != nil {
		vm.Regional.SetObs(t, m)
	}
	vm.Driver.SetObs(t, m)
}

// BootConfig parameterizes VM assembly.
type BootConfig struct {
	Name     string
	MemBytes uint64 // VM memory (paper: 2 GiB)
	VCPUs    int
	Profile  Profile
	// Assisted loads the JAVMM TI agent so the VM can be migrated in
	// app-assisted mode. A VM booted without the agent can still be
	// migrated by vanilla pre-copy.
	Assisted bool
	Seed     int64
	// LKMRewalk selects the LKM's alternative full-rewalk final update
	// (ablation X5; see guestos.LKMConfig.FinalUpdateRewalk).
	LKMRewalk bool
	// Collector selects the garbage collector: CollectorParallel (default)
	// or CollectorG1.
	Collector string
	// AgentReReport forces the agent's per-GC area re-reporting on or off;
	// nil uses the collector's default (off for parallel, on for G1) —
	// the knob experiment X11 sweeps.
	AgentReReport *bool
	// AgentHints makes the agent label the old generation and code cache
	// with compression hints (§6 hinted-compression extension, X2).
	AgentHints bool
	// Clock, when non-nil, is the virtual clock the VM runs on. Fleets boot
	// N VMs onto one shared clock (with a simclock.Scheduler) so their
	// migrations interleave deterministically; nil boots a private clock,
	// the single-VM default.
	Clock *simclock.Clock
}

// Collector names for BootConfig.Collector.
const (
	// CollectorParallel is the contiguous-young-generation parallel
	// scavenger the paper prototypes against (§4.1).
	CollectorParallel = "parallel"
	// CollectorG1 is the garbage-first-style regional collector of the
	// paper's §6 future work.
	CollectorG1 = "g1"
)

// Boot assembles a VM: domain, guest OS with LKM, the JVM process with the
// profile's heap settings, seeded old-generation data, and (optionally) the
// JAVMM agent.
func Boot(cfg BootConfig) (*VM, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 2 << 30
	}
	if cfg.VCPUs == 0 {
		cfg.VCPUs = 4
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Profile.Name + "-vm"
	}
	// Upfront memory budget: the boot-time footprint must fit, or the
	// frame allocator would fail deep inside heap mapping with a less
	// helpful error.
	const codeCache = 48 << 20
	kernel := uint64(0)
	if cfg.MemBytes/mem.PageSize > guestos.KernelReservedPages {
		kernel = guestos.KernelReservedPages * mem.PageSize
	}
	boot := cfg.Profile.InitialYoungBytes + cfg.Profile.OldSeedBytes + codeCache + kernel
	if boot > cfg.MemBytes {
		return nil, fmt.Errorf("workload: %s boot footprint %d MiB exceeds VM memory %d MiB",
			cfg.Profile.Name, boot>>20, cfg.MemBytes>>20)
	}
	if err := cfg.Profile.Cycle.Validate(); err != nil {
		return nil, fmt.Errorf("workload: booting %s: %w", cfg.Profile.Name, err)
	}

	clock := cfg.Clock
	if clock == nil {
		clock = simclock.New()
	}
	dom := hypervisor.NewDomain(cfg.Name, clock, mem.NewVersionStore(cfg.MemBytes/mem.PageSize), cfg.VCPUs)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock, FinalUpdateRewalk: cfg.LKMRewalk})
	proc := g.NewProcess("java-" + cfg.Profile.Name)

	p := cfg.Profile
	vm := &VM{
		Clock: clock,
		Dom:   dom,
		Guest: g,
		Proc:  proc,
	}

	var agentHeap javmm.Heap
	reReport := false
	switch cfg.Collector {
	case "", CollectorParallel:
		j, err := jvm.New(jvm.Config{
			Proc:              proc,
			Clock:             clock,
			Rand:              rand.New(rand.NewSource(cfg.Seed + 1)),
			InitialYoungBytes: p.InitialYoungBytes,
			MaxYoungBytes:     p.MaxYoungBytes,
			MaxOldBytes:       p.MaxOldBytes,
			TenureThreshold:   p.TenureThreshold,
			EdenSurvival:      p.EdenSurvival,
			SurvivorSurvival:  p.SurvivorSurvival,
			SafepointDelay:    p.SafepointDelay,
			MinorGCBase:       p.MinorGCBase,
			MinorCopyNsPB:     p.MinorCopyNsPB,
			MinorScanNsPB:     p.MinorScanNsPB,
			OldHotBytes:       p.OldHotBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: booting %s: %w", cfg.Profile.Name, err)
		}
		vm.JVM = j
		vm.Heap = j
		agentHeap = j
	case CollectorG1:
		const regionBytes = 32 << 20
		h, err := jvm.NewRegional(jvm.RegionalConfig{
			Proc:             proc,
			Clock:            clock,
			Rand:             rand.New(rand.NewSource(cfg.Seed + 1)),
			RegionBytes:      regionBytes,
			HeapBytes:        p.MaxYoungBytes + p.MaxOldBytes,
			MaxYoungRegions:  int(p.MaxYoungBytes / regionBytes),
			TenureThreshold:  p.TenureThreshold,
			EdenSurvival:     p.EdenSurvival,
			SurvivorSurvival: p.SurvivorSurvival,
			SafepointDelay:   p.SafepointDelay,
			MinorGCBase:      p.MinorGCBase,
			MinorCopyNsPB:    p.MinorCopyNsPB,
			MinorScanNsPB:    p.MinorScanNsPB,
		})
		if err != nil {
			return nil, fmt.Errorf("workload: booting %s (g1): %w", cfg.Profile.Name, err)
		}
		vm.Regional = h
		vm.Heap = h
		agentHeap = h
		reReport = true // region churn demands re-reporting by default
	default:
		return nil, fmt.Errorf("workload: unknown collector %q", cfg.Collector)
	}

	if p.OldSeedBytes > 0 {
		if err := vm.Heap.SeedOld(p.OldSeedBytes); err != nil {
			return nil, fmt.Errorf("workload: seeding %s: %w", cfg.Profile.Name, err)
		}
	}
	if cfg.AgentReReport != nil {
		reReport = *cfg.AgentReReport
	}
	if cfg.Assisted {
		vm.Agent = javmm.AttachHeap(agentHeap, g, proc, javmm.Options{
			ReReportOnGC: reReport,
			SendHints:    cfg.AgentHints,
		})
	}
	vm.Driver = NewDriver(clock, g, proc, vm.Heap, p)
	return vm, nil
}
