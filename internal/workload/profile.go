// Package workload provides synthetic equivalents of the SPECjvm2008
// workloads the paper evaluates (Table 1), a driver that executes them
// against the simulated JVM under virtual time, and the external throughput
// analyzer of §5.1.
//
// Each profile is calibrated against the paper's measurements: the observed
// young/old generation sizes of Tables 2 and 3, the garbage ratios and GC
// durations of Figure 5, and the category taxonomy of §5.3 (category 1: high
// allocation rate, short-lived objects; category 2: medium allocation rate;
// category 3: low allocation rate, long-lived objects).
package workload

import (
	"fmt"
	"time"
)

// Category is the paper's §5.3 workload taxonomy.
type Category int

// Workload categories.
const (
	// Category1 workloads have high object allocation rates and mostly
	// short-lived objects; the young generation grows to its maximum.
	Category1 Category = 1
	// Category2 workloads have medium allocation rates and mostly
	// short-lived objects.
	Category2 Category = 2
	// Category3 workloads have low allocation rates and mostly long-lived
	// objects: small young generation, large old generation.
	Category3 Category = 3
)

// Profile describes one workload's heap behaviour and execution rates.
type Profile struct {
	Name        string
	Description string // Table 1 text
	Category    Category

	// AllocBytesPerSec is the object allocation rate.
	AllocBytesPerSec uint64
	// OpsPerSec is the benchmark operation completion rate at full speed
	// (the y-axis of Figure 11).
	OpsPerSec float64

	// Survival model.
	EdenSurvival     float64
	SurvivorSurvival float64
	TenureThreshold  int

	// Heap sizing.
	InitialYoungBytes uint64
	MaxYoungBytes     uint64 // -Xmn (varied in Table 3)
	MaxOldBytes       uint64
	OldSeedBytes      uint64 // long-lived data resident at migration time

	// Background dirtying.
	OldMutatePagesPerSec float64 // in-place updates of old-gen data
	// OldHotBytes confines old-gen mutation to a cyclically-rewritten hot
	// region (numeric kernels); zero spreads it uniformly.
	OldHotBytes       uint64
	JITPagesPerSec    float64 // code cache churn
	KernelPagesPerSec float64 // guest kernel housekeeping

	// SafepointDelay is the time Java threads take to reach a Safepoint
	// (0.7 s for compiler in Figure 8(b)).
	SafepointDelay time.Duration

	// GC duration model overrides (zero = jvm package defaults).
	MinorGCBase   time.Duration
	MinorCopyNsPB float64
	MinorScanNsPB float64

	// WriteTrapCost is the guest-side cost of one log-dirty write fault,
	// which degrades throughput while migration runs (§1 reports >20 %
	// degradation for derby under vanilla Xen migration).
	WriteTrapCost time.Duration

	// Cycle is the workload's periodic activity cycle (busy/quiet phases
	// the fleet orchestrator schedules around). The zero value — every
	// catalog profile — is flat: no behavioural change.
	Cycle CycleSpec
}

const (
	mib = 1 << 20
	gib = 1 << 30
)

// Catalog returns the nine SPECjvm2008-like workloads of Table 1, calibrated
// to the paper's heap profile (Figure 5) and experimental settings (Tables 2
// and 3).
func Catalog() []Profile {
	return []Profile{
		{
			Name:        "derby",
			Description: "Apache Derby database with business logic",
			Category:    Category1,

			AllocBytesPerSec: 280 * mib,
			OpsPerSec:        0.65,
			EdenSurvival:     0.013,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       768 * mib,
			OldSeedBytes:      140 * mib,

			OldMutatePagesPerSec: 400,
			JITPagesPerSec:       20,
			KernelPagesPerSec:    200,
			SafepointDelay:       120 * time.Millisecond,
			WriteTrapCost:        2500 * time.Nanosecond,
		},
		{
			Name:        "compiler",
			Description: "OpenJDK 7 front-end compiler",
			Category:    Category1,

			AllocBytesPerSec: 230 * mib,
			OpsPerSec:        1.4,
			EdenSurvival:     0.05,
			SurvivorSurvival: 0.55,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       512 * mib,
			OldSeedBytes:      50 * mib,

			OldMutatePagesPerSec: 150,
			JITPagesPerSec:       40,
			KernelPagesPerSec:    200,
			SafepointDelay:       700 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "xml",
			Description: "Apply style sheets to XML documents",
			Category:    Category1,

			AllocBytesPerSec: 410 * mib,
			OpsPerSec:        2.1,
			EdenSurvival:     0.01,
			SurvivorSurvival: 0.4,
			TenureThreshold:  4,

			InitialYoungBytes: 96 * mib,
			MaxYoungBytes:     1536 * mib,
			MaxOldBytes:       256 * mib,
			OldSeedBytes:      20 * mib,

			OldMutatePagesPerSec: 80,
			JITPagesPerSec:       20,
			KernelPagesPerSec:    200,
			SafepointDelay:       80 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "sunflow",
			Description: "An open-source image rendering system",
			Category:    Category1,

			AllocBytesPerSec: 250 * mib,
			OpsPerSec:        1.8,
			EdenSurvival:     0.02,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       384 * mib,
			OldSeedBytes:      40 * mib,

			OldMutatePagesPerSec: 120,
			JITPagesPerSec:       30,
			KernelPagesPerSec:    200,
			SafepointDelay:       100 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "serial",
			Description: "Serialize and deserialize primitives and objects",
			Category:    Category2,

			AllocBytesPerSec: 130 * mib,
			OpsPerSec:        3.2,
			EdenSurvival:     0.02,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       256 * mib,
			OldSeedBytes:      35 * mib,

			OldMutatePagesPerSec: 150,
			JITPagesPerSec:       20,
			KernelPagesPerSec:    200,
			SafepointDelay:       60 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "crypto",
			Description: "Sign and verify with cryptographic hashes",
			Category:    Category2,

			AllocBytesPerSec: 132 * mib,
			OpsPerSec:        2.7,
			EdenSurvival:     0.015,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       256 * mib,
			OldSeedBytes:      16 * mib,

			OldMutatePagesPerSec: 60,
			JITPagesPerSec:       15,
			KernelPagesPerSec:    200,
			SafepointDelay:       50 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "scimark",
			Description: "Compute the LU factorization of matrices",
			Category:    Category3,

			AllocBytesPerSec: 25 * mib,
			OpsPerSec:        0.3,
			EdenSurvival:     0.3,
			SurvivorSurvival: 0.3,
			TenureThreshold:  2,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       640 * mib,
			OldSeedBytes:      420 * mib,

			OldMutatePagesPerSec: 44000,
			OldHotBytes:          128 * mib,
			JITPagesPerSec:       10,
			KernelPagesPerSec:    200,
			// Tight JIT-compiled numeric loops poll for Safepoints
			// coarsely; time-to-safepoint is long for LU factorization.
			SafepointDelay: time.Second,
			WriteTrapCost:  2 * time.Microsecond,
		},
		{
			Name:        "mpeg",
			Description: "MP3 decoding",
			Category:    Category2,

			AllocBytesPerSec: 55 * mib,
			OpsPerSec:        4.5,
			EdenSurvival:     0.02,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       256 * mib,
			OldSeedBytes:      30 * mib,

			OldMutatePagesPerSec: 100,
			JITPagesPerSec:       15,
			KernelPagesPerSec:    200,
			SafepointDelay:       40 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
		{
			Name:        "compress",
			Description: "Compression by a modified Lempel-Ziv method",
			Category:    Category2,

			AllocBytesPerSec: 90 * mib,
			OpsPerSec:        3.8,
			EdenSurvival:     0.025,
			SurvivorSurvival: 0.5,
			TenureThreshold:  4,

			InitialYoungBytes: 64 * mib,
			MaxYoungBytes:     1 * gib,
			MaxOldBytes:       256 * mib,
			OldSeedBytes:      45 * mib,

			OldMutatePagesPerSec: 200,
			JITPagesPerSec:       15,
			KernelPagesPerSec:    200,
			SafepointDelay:       50 * time.Millisecond,
			WriteTrapCost:        2 * time.Microsecond,
		},
	}
}

// Lookup returns the catalog profile with the given name.
func Lookup(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns the catalog workload names in catalog order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, p := range cat {
		out[i] = p.Name
	}
	return out
}
