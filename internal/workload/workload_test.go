package workload

import (
	"testing"
	"time"

	"javmm/internal/mem"
)

func TestCatalogIsThePaperTable1(t *testing.T) {
	want := []string{"derby", "compiler", "xml", "sunflow", "serial", "crypto", "scimark", "mpeg", "compress"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCatalogCategories(t *testing.T) {
	wantCat := map[string]Category{
		"derby": Category1, "compiler": Category1, "xml": Category1, "sunflow": Category1,
		"serial": Category2, "crypto": Category2, "mpeg": Category2, "compress": Category2,
		"scimark": Category3,
	}
	for _, p := range Catalog() {
		if p.Category != wantCat[p.Name] {
			t.Errorf("%s category = %d, want %d", p.Name, p.Category, wantCat[p.Name])
		}
		if p.AllocBytesPerSec == 0 || p.OpsPerSec == 0 {
			t.Errorf("%s has zero rates", p.Name)
		}
		if p.Description == "" {
			t.Errorf("%s has no description", p.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	p, err := Lookup("derby")
	if err != nil || p.Name != "derby" {
		t.Fatalf("Lookup(derby) = %v, %v", p.Name, err)
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Fatal("Lookup of unknown workload succeeded")
	}
}

func bootSmall(t *testing.T, prof Profile, assisted bool) *VM {
	t.Helper()
	vm, err := Boot(BootConfig{
		MemBytes: 512 << 20,
		Profile:  prof,
		Assisted: assisted,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// smallProfile is a scaled-down category-1 workload for fast unit tests.
func smallProfile() Profile {
	return Profile{
		Name:              "small",
		Description:       "scaled-down test workload",
		Category:          Category1,
		AllocBytesPerSec:  40 << 20,
		OpsPerSec:         10,
		EdenSurvival:      0.02,
		SurvivorSurvival:  0.5,
		TenureThreshold:   4,
		InitialYoungBytes: 16 << 20,
		MaxYoungBytes:     128 << 20,
		MaxOldBytes:       128 << 20,
		OldSeedBytes:      16 << 20,
		KernelPagesPerSec: 50,
		SafepointDelay:    30 * time.Millisecond,
		WriteTrapCost:     2 * time.Microsecond,
	}
}

func TestDriverRunAdvancesExactly(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	start := vm.Clock.Now()
	vm.Driver.Run(2500 * time.Millisecond)
	if got := vm.Clock.Now() - start; got != 2500*time.Millisecond {
		t.Fatalf("Run advanced %v, want 2.5s", got)
	}
}

func TestDriverAllocatesAndCollects(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	vm.Driver.Run(10 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	if vm.JVM.TotalAllocated < 100<<20 {
		t.Fatalf("allocated only %d bytes in 10s at 40 MiB/s", vm.JVM.TotalAllocated)
	}
	if vm.JVM.MinorGCs == 0 {
		t.Fatal("no minor GCs in 10s of heavy allocation")
	}
	if err := vm.JVM.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if vm.Driver.TotalOps < 50 {
		t.Fatalf("ops = %v, want ~100", vm.Driver.TotalOps)
	}
}

func TestDriverSamplesPerSecond(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	vm.Driver.Run(5 * time.Second)
	samples := vm.Driver.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for i, s := range samples {
		if s.Second != i {
			t.Fatalf("sample %d has Second %d", i, s.Second)
		}
		if s.Ops <= 0 {
			t.Fatalf("sample %d has no ops", i)
		}
	}
}

func TestDriverThrottleReducesThroughput(t *testing.T) {
	a := bootSmall(t, smallProfile(), false)
	a.Driver.Run(5 * time.Second)
	b := bootSmall(t, smallProfile(), false)
	b.Driver.SetThrottle(0.5)
	b.Driver.Run(5 * time.Second)
	if b.Driver.TotalOps >= a.Driver.TotalOps {
		t.Fatalf("throttled ops %v >= unthrottled %v", b.Driver.TotalOps, a.Driver.TotalOps)
	}
	if b.JVM.TotalAllocated >= a.JVM.TotalAllocated {
		t.Fatal("throttle did not slow allocation")
	}
}

func TestDriverThrottleValidation(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid throttle accepted")
		}
	}()
	vm.Driver.SetThrottle(0)
}

func TestYoungGrowsToMaxUnderPressure(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	vm.Driver.Run(30 * time.Second)
	if vm.JVM.YoungCommitted() != 128<<20 {
		t.Fatalf("young = %d MiB, want max 128 MiB", vm.JVM.YoungCommitted()>>20)
	}
}

func TestLogDirtyOverheadSlowsGuest(t *testing.T) {
	a := bootSmall(t, smallProfile(), false)
	a.Driver.Run(5 * time.Second)

	b := bootSmall(t, smallProfile(), false)
	b.Dom.EnableLogDirty()
	// Drain the dirty bitmap each second like a migration round would, so
	// traps keep firing.
	snap := mem.NewBitmap(b.Dom.NumPages())
	for i := 0; i < 5; i++ {
		b.Driver.Run(time.Second)
		b.Dom.PeekAndClear(snap)
	}
	if b.Driver.TotalOps >= a.Driver.TotalOps {
		t.Fatalf("log-dirty ops %v >= untracked %v", b.Driver.TotalOps, a.Driver.TotalOps)
	}
}

func TestBootAssistedAttachesAgent(t *testing.T) {
	vm := bootSmall(t, smallProfile(), true)
	if vm.Agent == nil {
		t.Fatal("assisted boot has no agent")
	}
	vmPlain := bootSmall(t, smallProfile(), false)
	if vmPlain.Agent != nil {
		t.Fatal("plain boot has an agent")
	}
}

func TestBootDefaults(t *testing.T) {
	vm, err := Boot(BootConfig{Profile: smallProfile()})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Dom.MemoryBytes() != 2<<30 {
		t.Fatalf("default memory = %d", vm.Dom.MemoryBytes())
	}
	if vm.Dom.VCPUs() != 4 {
		t.Fatalf("default vcpus = %d", vm.Dom.VCPUs())
	}
	if vm.Dom.Name() != "small-vm" {
		t.Fatalf("default name = %q", vm.Dom.Name())
	}
}

func TestBootSeedsOldGen(t *testing.T) {
	vm := bootSmall(t, smallProfile(), false)
	if vm.JVM.OldUsed() != 16<<20 {
		t.Fatalf("OldUsed = %d, want seed 16 MiB", vm.JVM.OldUsed())
	}
}

// TestCatalogProfilesRunCleanly boots every paper workload in a 2 GiB VM and
// runs it for 30 virtual seconds: no heap exhaustion, conservation holds,
// throughput is positive.
func TestCatalogProfilesRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("2 GiB VM warmups are slow in -short mode")
	}
	for _, prof := range Catalog() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			vm, err := Boot(BootConfig{Profile: prof, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			vm.Driver.Run(30 * time.Second)
			if vm.Driver.Err != nil {
				t.Fatal(vm.Driver.Err)
			}
			if err := vm.JVM.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if vm.Driver.TotalOps <= 0 {
				t.Fatal("no operations completed")
			}
			if vm.JVM.MinorGCs == 0 {
				t.Fatal("no minor GCs")
			}
		})
	}
}

func TestLongestStall(t *testing.T) {
	samples := []Sample{
		{0, 1.0}, {1, 1.0}, {2, 0.0}, {3, 0.01}, {4, 0.0}, {5, 1.0},
		{6, 0.0}, {7, 1.0},
	}
	if got := LongestStall(samples, 0.05); got != 3 {
		t.Fatalf("LongestStall = %d, want 3", got)
	}
	if got := LongestStall(samples, 2.0); got != 8 {
		t.Fatalf("all-below threshold = %d, want 8", got)
	}
	if got := LongestStall(nil, 0.05); got != 1 {
		// Empty timeline: the single implicit second 0 has no ops.
		t.Fatalf("empty = %d", got)
	}
	// Missing seconds count as zero-op seconds (suspension gaps).
	gappy := []Sample{{0, 1.0}, {5, 1.0}}
	if got := LongestStall(gappy, 0.05); got != 4 {
		t.Fatalf("gappy = %d, want 4", got)
	}
}

func TestBootG1Collector(t *testing.T) {
	vm, err := Boot(BootConfig{
		MemBytes:  512 << 20,
		Profile:   smallProfile(),
		Assisted:  true,
		Seed:      9,
		Collector: CollectorG1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.JVM != nil || vm.Regional == nil || vm.Heap == nil {
		t.Fatal("G1 boot wiring wrong")
	}
	vm.Driver.Run(20 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	if vm.Regional.MinorGCs == 0 {
		t.Fatal("no collections under allocation pressure")
	}
	if err := vm.Heap.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestBootUnknownCollector(t *testing.T) {
	_, err := Boot(BootConfig{Profile: smallProfile(), Collector: "zgc"})
	if err == nil {
		t.Fatal("unknown collector accepted")
	}
}

func TestBootRejectsOversizedFootprint(t *testing.T) {
	p := smallProfile()
	p.InitialYoungBytes = 1 << 30
	p.OldSeedBytes = 1 << 30
	_, err := Boot(BootConfig{MemBytes: 512 << 20, Profile: p})
	if err == nil {
		t.Fatal("boot footprint beyond VM memory accepted")
	}
}

// TestCategorySizing reproduces the §5.3 taxonomy: after warmup, category-1
// workloads saturate their young generation; scimark keeps a small young and
// a large old generation.
func TestCategorySizing(t *testing.T) {
	if testing.Short() {
		t.Skip("warmups are slow in -short mode")
	}
	run := func(name string, warmup time.Duration) *VM {
		prof, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := Boot(BootConfig{Profile: prof, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		vm.Driver.Run(warmup)
		if vm.Driver.Err != nil {
			t.Fatal(vm.Driver.Err)
		}
		return vm
	}

	derby := run("derby", 60*time.Second)
	if derby.JVM.YoungCommitted() != 1<<30 {
		t.Errorf("derby young = %d MiB, want 1024", derby.JVM.YoungCommitted()>>20)
	}

	scimark := run("scimark", 60*time.Second)
	if y := scimark.JVM.YoungCommitted(); y > 256<<20 {
		t.Errorf("scimark young = %d MiB, want small (<=256)", y>>20)
	}
	if old := scimark.JVM.OldUsed(); old < 300<<20 {
		t.Errorf("scimark old = %d MiB, want large (>=300)", old>>20)
	}
	if scimark.JVM.OldUsed() <= scimark.JVM.YoungCommitted() {
		t.Error("scimark should use more old than young memory")
	}
}
