package migration

import (
	"fmt"
	"io"

	"javmm/internal/mem"
	"javmm/internal/netsim"
)

// Tee mirrors every page the destination receives onto a page-stream writer,
// so a real remote process (connected over TCP, a pipe, or any io.Writer)
// can reconstruct the VM's memory from the stream. Integration tests use it
// to check end-to-end byte equality of a migration across an actual network
// connection; the simulated Link still governs timing.
//
// The caller owns stream termination: after Migrate returns, call
// (*netsim.PageWriter).EndStream to flush and finish the remote side.
func (d *Destination) Tee(w *netsim.PageWriter) { d.tee = w }

// TeeErrors returns the number of frames that failed to write to the tee.
func (d *Destination) TeeErrors() int { return d.teeErrors }

// ReceiveIntoStore drains a page stream into store until end-of-stream,
// returning the number of page frames applied. It is the receive loop a real
// destination host runs.
func ReceiveIntoStore(r io.Reader, store mem.PageStore) (uint64, error) {
	pr := netsim.NewPageReader(r)
	var pages uint64
	for {
		f, err := pr.Next()
		if err != nil {
			return pages, fmt.Errorf("migration: receiving page stream: %w", err)
		}
		switch f.Kind {
		case netsim.FramePage:
			if uint64(f.PFN) >= store.NumPages() {
				return pages, fmt.Errorf("migration: stream carries PFN %d beyond memory (%d pages)",
					f.PFN, store.NumPages())
			}
			if err := store.Import(f.PFN, f.Payload); err != nil {
				return pages, fmt.Errorf("migration: importing page %d: %w", f.PFN, err)
			}
			pages++
		case netsim.FrameEndIteration:
			// Round boundaries are informational on the receive side.
		case netsim.FrameEndStream:
			return pages, nil
		}
	}
}
