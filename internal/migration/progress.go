package migration

import (
	"time"

	"javmm/internal/obs"
)

// The live progress stream: typed lifecycle events the engine emits as a
// migration moves through its phases, riding the same event bus as every
// other obs consumer (obs.KindProgress instants with a Progress Data
// payload). MigrateMany fans these out per VM and `javmm-migrate -peers
// -progress` renders them as a fleet status line; because they are ordinary
// virtual-clock events, the stream is as deterministic as the migration
// itself.

// ProgressPhase names a migration lifecycle phase in the progress stream.
type ProgressPhase string

// Progress phases, in the order a run moves through them. Pre-copy runs go
// start → pre-copy* → [prepare] → stop-and-copy → done; lazy runs go
// start → [pre-copy* warm rounds] → post-copy → done; any run may end in
// aborted instead.
const (
	ProgressStart       ProgressPhase = "start"
	ProgressPreCopy     ProgressPhase = "pre-copy"
	ProgressPrepare     ProgressPhase = "prepare"
	ProgressStopAndCopy ProgressPhase = "stop-and-copy"
	ProgressPostCopy    ProgressPhase = "post-copy"
	ProgressDone        ProgressPhase = "done"
	ProgressAborted     ProgressPhase = "aborted"
)

// Progress is one point of the live progress stream.
type Progress struct {
	// VM is the source domain's name.
	VM string
	// Phase is the lifecycle phase this point belongs to.
	Phase ProgressPhase
	// At is the virtual time of the emission.
	At time.Duration
	// Iteration is the current iteration index (0 for the start marker).
	Iteration int

	// PagesSent/BytesSent are cumulative over the run so far.
	PagesSent uint64
	BytesSent uint64
	// PagesRemaining/BytesRemaining estimate the outstanding work: for a
	// live pre-copy round, the pages dirtied while it ran (the next round's
	// workload); for a post-copy phase, the non-resident pages.
	PagesRemaining uint64
	BytesRemaining uint64

	// DirtyRate (pages/sec) and TransferRate (bytes/sec) are the rates
	// observed over the most recent iteration; zero on pure lifecycle
	// markers.
	DirtyRate    float64
	TransferRate float64

	// ETA estimates the remaining transfer time from the observed rates
	// (see EstimateETA). Converging is false when the dirty rate matches or
	// outruns the transfer rate: pre-copy cannot finish at these rates and
	// ETA is clamped to MaxETA rather than negative or overflowed.
	ETA        time.Duration
	Converging bool
}

// MaxETA is the ETA clamp: estimates at or beyond it (including the
// non-converging case, where the naive formula goes negative or infinite)
// are pinned here.
const MaxETA = time.Hour

// EstimateETA estimates the time to move bytesRemaining at the observed
// transferRate while the guest re-dirties at dirtyByteRate (both bytes/sec).
// The estimate models the pre-copy race: the net drain rate is transfer
// minus dirtying. When the drain rate is non-positive — the dirty rate
// matches or exceeds the transfer rate — the migration does not converge at
// these rates: EstimateETA returns (MaxETA, false) instead of a negative or
// overflowing duration. Converging-but-slow estimates are clamped to MaxETA
// with converging still true.
func EstimateETA(bytesRemaining uint64, transferRate, dirtyByteRate float64) (eta time.Duration, converging bool) {
	if bytesRemaining == 0 {
		return 0, true
	}
	if transferRate <= 0 {
		return MaxETA, false
	}
	net := transferRate - dirtyByteRate
	if net <= 0 {
		return MaxETA, false
	}
	secs := float64(bytesRemaining) / net
	if secs >= MaxETA.Seconds() {
		return MaxETA, true
	}
	return time.Duration(secs * float64(time.Second)), true
}

// emitProgress publishes one progress point. With a tracer configured it is
// an obs.KindProgress instant (Data carries the typed Progress; attrs carry
// the exportable view) and OnProgress rides the bus via its subscription;
// with only OnProgress configured the callback is invoked directly.
func (s *Source) emitProgress(phase ProgressPhase, iter int, pagesRemaining uint64, dirtyRate, transferRate float64) {
	if s.Cfg.Tracer == nil && s.Cfg.OnProgress == nil {
		return
	}
	wire := s.Dom.Store().WireSize()
	p := Progress{
		VM:             s.Dom.Name(),
		Phase:          phase,
		At:             s.Clock.Now(),
		Iteration:      iter,
		PagesSent:      s.report.TotalPagesSent,
		BytesSent:      s.report.TotalBytes(),
		PagesRemaining: pagesRemaining,
		BytesRemaining: pagesRemaining * wire,
		DirtyRate:      dirtyRate,
		TransferRate:   transferRate,
	}
	p.ETA, p.Converging = EstimateETA(p.BytesRemaining, transferRate, dirtyRate*float64(wire))
	if t := s.Cfg.Tracer; t != nil {
		t.Emit(obs.TrackMigration, obs.KindProgress, string(phase), p,
			obs.Str("phase", string(phase)),
			obs.Int("iteration", iter),
			obs.Uint64("pages_sent", p.PagesSent),
			obs.Uint64("bytes_sent", p.BytesSent),
			obs.Uint64("pages_remaining", p.PagesRemaining),
			obs.Uint64("bytes_remaining", p.BytesRemaining),
			obs.Float("dirty_rate", p.DirtyRate),
			obs.Float("transfer_rate", p.TransferRate),
			obs.Dur("eta", p.ETA),
			obs.Bool("converging", p.Converging))
		return
	}
	s.Cfg.OnProgress(p)
}

// subscribeProgress wires Cfg.OnProgress onto the event bus when a tracer is
// configured, exactly like the OnIteration subscription: the callback sees
// the same typed payloads every other subscriber sees. The returned cancel
// is a no-op when no subscription was needed.
func (s *Source) subscribeProgress() (cancel func()) {
	if s.Cfg.OnProgress == nil || s.Cfg.Tracer == nil {
		return func() {}
	}
	return s.Cfg.Tracer.Subscribe(func(e obs.Event) {
		if p, ok := e.Data.(Progress); ok {
			s.Cfg.OnProgress(p)
		}
	})
}
