package migration

import (
	"testing"

	"javmm/internal/guestos"
	"javmm/internal/mem"
)

// Wire-codec chain benchmarks: one Encode per page crossing the link, so
// chain overhead multiplies directly into migration CPU cost. Each chain is
// built through Config.NewWireCodec — the exact constructor bindStages uses.

// benchWireSink defeats dead-code elimination of the codec benchmarks.
var benchWireSink uint64

func benchCodec(b *testing.B, cfg Config, hintFor func(mem.PFN) uint8) {
	b.Helper()
	cfg.FillDefaults()
	const pages = 1024
	codec, _ := cfg.NewWireCodec(pages, hintFor, nil)
	// Warm the delta cache so the steady state (resends) is what's measured.
	for p := mem.PFN(0); p < pages; p++ {
		codec.Encode(p, mem.PageSize)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := codec.Encode(mem.PFN(i)%pages, mem.PageSize)
		benchWireSink += w
	}
}

func BenchmarkWireCodecRaw(b *testing.B) {
	benchCodec(b, Config{}, nil)
}

func BenchmarkWireCodecCompress(b *testing.B) {
	benchCodec(b, Config{Compress: true}, nil)
}

func BenchmarkWireCodecHinted(b *testing.B) {
	hintFor := func(p mem.PFN) uint8 {
		switch p % 4 {
		case 0:
			return guestos.HintDefault
		case 1:
			return guestos.HintFast
		case 2:
			return guestos.HintStrong
		default:
			return guestos.HintNone
		}
	}
	benchCodec(b, Config{Compress: true}, hintFor)
}

func BenchmarkWireCodecDelta(b *testing.B) {
	benchCodec(b, Config{Compress: true, DeltaCompression: true}, nil)
}
