package migration

import (
	"math/rand"
	"testing"
	"time"

	"javmm/internal/mem"
)

// TestMigrationInvariantRandomized fuzzes the engine across random VM sizes,
// link speeds, working sets, skip-over areas and engine knobs, checking the
// correctness invariant after every run: each page that was not legitimately
// skipped (consented skip-over area, or freed frame) is identical at the
// destination.
func TestMigrationInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		pages := uint64(1024 + rng.Intn(8)*1024)
		bw := uint64(2+rng.Intn(40)) * 1000 * 1000
		r := newRig(pages, bw)

		avail := r.guest.Frames.Free()
		hotPages := uint64(64 + rng.Intn(int(avail/2)))
		hot := mem.VARange{
			Start: 0x1000000,
			End:   0x1000000 + mem.VA(hotPages*mem.PageSize),
		}
		rate := float64(1000 + rng.Intn(40000))
		sc := newScribbler(r.guest, r.clock, hot, rate)

		mode := ModeVanilla
		if rng.Intn(2) == 1 {
			mode = ModeAppAssisted
			sc.skip = []mem.VARange{hot}
			if rng.Intn(2) == 1 {
				// Sometimes the app keeps a live head, like From-space
				// survivors (written by the app as it becomes ready).
				liveHead := mem.VARange{Start: hot.Start, End: hot.Start + mem.VA((1+rng.Intn(16))*mem.PageSize)}
				sc.readySkip = hot.Subtract(liveHead)
				sc.liveHead = liveHead
			}
			sc.readyDelay = time.Duration(rng.Intn(200)) * time.Millisecond
			sc.register(r.guest)
		}

		cfg := Config{
			Mode:               mode,
			MaxIterations:      2 + rng.Intn(29),
			DirtyPageThreshold: uint64(1 + rng.Intn(200)),
			ChunkPages:         uint64(32 << rng.Intn(6)),
			MaxTrafficFactor:   []float64{-1, 2, 3, 5}[rng.Intn(4)],
			Compress:           rng.Intn(4) == 0,
		}
		rep, err := r.source(cfg, sc).Migrate()
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		r.verify(t, rep)

		// Structural invariants of the report.
		var sum uint64
		for i, it := range rep.Iterations {
			sum += it.BytesOnWire
			if (i == len(rep.Iterations)-1) != it.Last {
				t.Fatalf("trial %d: Last flag misplaced", trial)
			}
			if it.Duration < 0 {
				t.Fatalf("trial %d: negative duration", trial)
			}
		}
		if sum != rep.TotalBytes() {
			t.Fatalf("trial %d: TotalBytes %d != Σ iterations %d", trial, rep.TotalBytes(), sum)
		}
		if rep.VMDowntime < rep.Resumption {
			t.Fatalf("trial %d: downtime %v < resumption %v", trial, rep.VMDowntime, rep.Resumption)
		}
		if rep.TotalTime < rep.VMDowntime {
			t.Fatalf("trial %d: total %v < downtime %v", trial, rep.TotalTime, rep.VMDowntime)
		}
		if r.dom.Paused() {
			t.Fatalf("trial %d: domain left paused", trial)
		}
		if r.dom.LogDirtyEnabled() {
			t.Fatalf("trial %d: log-dirty left enabled", trial)
		}
	}
}

// TestPostCopyInvariantRandomized fuzzes post-copy: after every run, all
// pages are resident and the fault/prefetch split covers the memory exactly.
func TestPostCopyInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pages := uint64(1024 + rng.Intn(4)*1024)
		r := newRig(pages, uint64(5+rng.Intn(40))*1000*1000)
		hotPages := uint64(64 + rng.Intn(512))
		hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + mem.VA(hotPages*mem.PageSize)}
		sc := newScribbler(r.guest, r.clock, hot, float64(1000+rng.Intn(30000)))

		rep, err := r.source(Config{}, sc).MigratePostCopy()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pc := rep.PostCopy
		if pc.Faults+pc.PrefetchPages != pages {
			t.Fatalf("trial %d: faults %d + prefetch %d != %d", trial, pc.Faults, pc.PrefetchPages, pages)
		}
		if r.dest.PagesReceived != pages {
			t.Fatalf("trial %d: destination received %d of %d", trial, r.dest.PagesReceived, pages)
		}
		if r.dom.Paused() {
			t.Fatalf("trial %d: domain left paused", trial)
		}
	}
}
