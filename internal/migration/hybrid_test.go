package migration

import (
	"errors"
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
)

// Regression: a nil source domain must fail the same way Migrate does, not
// masquerade as a missing destination.
func TestPostCopyNilSourceDomain(t *testing.T) {
	r := newRig(64, 1000)
	src := r.source(Config{}, nil)
	src.Dom = nil
	_, err := src.MigratePostCopy()
	if !errors.Is(err, ErrNoSource) {
		t.Fatalf("nil source domain: err = %v, want ErrNoSource", err)
	}
	if _, err := (&Source{}).MigrateHybrid(); !errors.Is(err, ErrNoSource) {
		t.Fatalf("hybrid nil source domain: err = %v, want ErrNoSource", err)
	}
}

// An idle guest dirties nothing after the warm phase, so a hybrid migration
// is a complete pre-copy followed by an empty lazy phase — and the full
// store-equality invariant holds at the destination.
func TestHybridIdleGuestVerifies(t *testing.T) {
	r := newRig(4096, 50*1000*1000)
	rep, err := r.source(Config{Mode: ModeHybrid}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeHybrid {
		t.Fatalf("report mode = %v", rep.Mode)
	}
	pc := rep.PostCopy
	if pc == nil {
		t.Fatal("hybrid run carries no post-copy stats")
	}
	if pc.WarmPages != 4096 {
		t.Fatalf("warm phase left %d pages resident, want all 4096", pc.WarmPages)
	}
	if pc.Faults != 0 || pc.PrefetchPages != 0 {
		t.Fatalf("idle guest needed lazy work: faults %d prefetch %d", pc.Faults, pc.PrefetchPages)
	}
	if r.dest.PagesReceived != 4096 {
		t.Fatalf("destination received %d pages", r.dest.PagesReceived)
	}
	r.verify(t, rep)
}

// With a dirtying guest the warm phase, demand faults and pre-paging must
// jointly account for every page exactly once past switchover, and the
// engine must restore the domain (log-dirty off, unpaused).
func TestHybridDirtyingGuestInvariants(t *testing.T) {
	r := newRig(8192, 20*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 2048*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 30000)
	rep, err := r.source(Config{Mode: ModeHybrid}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	pc := rep.PostCopy
	if pc == nil {
		t.Fatal("no post-copy stats")
	}
	if pc.WarmPages == 0 {
		t.Fatal("warm phase left nothing resident")
	}
	if got := pc.WarmPages + pc.Faults + pc.PrefetchPages; got != 8192 {
		t.Fatalf("warm %d + faults %d + prefetch %d = %d, want 8192",
			pc.WarmPages, pc.Faults, pc.PrefetchPages, got)
	}
	// A fast dirtier must leave lazy work behind — otherwise the test
	// degenerates into the idle case.
	if pc.Faults+pc.PrefetchPages == 0 {
		t.Fatal("dirtying guest needed no lazy phase")
	}
	if len(rep.Iterations) < 2 {
		t.Fatalf("iterations = %d, want warm rounds plus the lazy round", len(rep.Iterations))
	}
	if last := rep.Iterations[len(rep.Iterations)-1]; !last.Last {
		t.Fatal("final iteration not marked Last")
	}
	if r.dom.Paused() {
		t.Fatal("domain left paused")
	}
	if r.dom.LogDirtyEnabled() {
		t.Fatal("log-dirty left enabled")
	}
	if pc.ResidentAt <= 0 || pc.ResidentAt > rep.TotalTime {
		t.Fatalf("ResidentAt = %v of %v", pc.ResidentAt, rep.TotalTime)
	}
}

// The warm phase trades pre-copy traffic for a shorter degradation tail:
// against the same dirtier, hybrid must stall the guest less than pure
// post-copy.
func TestHybridShortensDegradationTail(t *testing.T) {
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}

	post := newRig(8192, 20*1000*1000)
	scPost := newScribbler(post.guest, post.clock, hot, 20000)
	postRep, err := post.source(Config{}, scPost).MigratePostCopy()
	if err != nil {
		t.Fatal(err)
	}

	hyb := newRig(8192, 20*1000*1000)
	scHyb := newScribbler(hyb.guest, hyb.clock, hot, 20000)
	hybRep, err := hyb.source(Config{}, scHyb).MigrateHybrid()
	if err != nil {
		t.Fatal(err)
	}
	if hybRep.PostCopy.FaultStall >= postRep.PostCopy.FaultStall {
		t.Fatalf("hybrid stall %v not below post-copy %v",
			hybRep.PostCopy.FaultStall, postRep.PostCopy.FaultStall)
	}
}

// The engine's backstop against a guest that never reports suspension-ready
// is configurable, so this failure path runs in milliseconds of virtual time
// instead of the old hardwired minute.
func TestSuspensionBackstopConfigurable(t *testing.T) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(4096), 4)
	// Disable the LKM's own prepare timeout so its fallback never fires
	// and the engine-side backstop is what trips.
	guest := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock, PrepareTimeout: -1})

	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 512*mem.PageSize}
	sc := newScribbler(guest, clock, hot, 1000)
	sc.skip = []mem.VARange{hot}
	sc.readyDelay = time.Hour // far beyond the backstop
	sc.register(guest)

	src := &Source{
		Dom:   dom,
		LKM:   guest.LKM,
		Link:  netsim.NewLink(clock, 50*1000*1000, 0),
		Clock: clock,
		Exec:  sc,
		Dest:  NewDestination(4096),
		Cfg:   Config{Mode: ModeAppAssisted, SuspensionBackstop: 500 * time.Millisecond},
	}
	before := clock.Now()
	_, err := src.Migrate()
	if !errors.Is(err, ErrSuspensionTimeout) {
		t.Fatalf("err = %v, want ErrSuspensionTimeout", err)
	}
	// The wait itself must be bounded by the configured backstop (plus the
	// migration work before it), not the old one-minute constant.
	if elapsed := clock.Now() - before; elapsed > 30*time.Second {
		t.Fatalf("backstop took %v of virtual time", elapsed)
	}
}
