package migration

import (
	"errors"
	"math/rand"
	"testing"

	"javmm/internal/faults"
	"javmm/internal/mem"
)

// injector compiles a fault plan against the rig's clock or fails the test.
func (r *testRig) injector(t *testing.T, plan faults.Plan) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(r.clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// A payload corrupted in flight must be detected by the switchover digest
// audit and healed by re-fetch before the run may report success.
func TestCorruptPageStreamRepairedPreCopy(t *testing.T) {
	r := newRig(2048, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteCorruptPage, Nth: 5, Count: 3},
	})
	rep, err := r.source(Config{Mode: ModeVanilla, Faults: inj}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	ic := rep.Integrity
	if ic == nil {
		t.Fatal("no integrity section on a digest-capable run")
	}
	if ic.Mismatches != 3 || ic.Repairs != 3 {
		t.Fatalf("mismatches/repairs = %d/%d, want 3/3", ic.Mismatches, ic.Repairs)
	}
	if ic.RepairBytes == 0 {
		t.Fatal("repairs recorded but no repair bytes")
	}
	if ic.AuditRounds < 2 {
		t.Fatalf("audit rounds = %d, want >= 2 (detect round + verify round)", ic.AuditRounds)
	}
	if ic.RollingDigest != r.dest.RollingDigest() {
		t.Fatalf("report rolling digest %x != destination's %x", ic.RollingDigest, r.dest.RollingDigest())
	}
	r.verify(t, rep)
	// Repair traffic is folded into the stop-and-copy iteration, so the
	// report still reconciles: total sends include the 3 re-deliveries.
	if rep.TotalPagesSent != 2048+3 {
		t.Fatalf("total pages sent = %d, want 2051", rep.TotalPagesSent)
	}
}

// Corruption that persists through every repair attempt must exhaust the
// bounded repair budget and abort cleanly with ErrIntegrity — never complete.
func TestCorruptPageStreamExhaustsRepairBudget(t *testing.T) {
	r := newRig(512, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteCorruptPage, Nth: 1, Count: 1 << 40},
	})
	rep, err := r.source(Config{Mode: ModeVanilla, Faults: inj}, nil).Migrate()
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
	if rep == nil || rep.Recovery == nil || !rep.Recovery.Aborted {
		t.Fatal("aborted run carries no recovery section")
	}
	if rep.Recovery.AbortReason == "" {
		t.Fatal("abort reason empty")
	}
	if !r.dest.Discarded() {
		t.Fatal("destination not discarded after integrity abort")
	}
	if rep.Integrity == nil || rep.Integrity.Mismatches == 0 {
		t.Fatal("aborted run's integrity section missing its mismatch count")
	}
}

// The lazy engine verifies each fetch inline: a corrupted demand fetch or
// prefetch is re-sent by the retry machinery and counted as a repair.
func TestCorruptPageStreamLazyRepairs(t *testing.T) {
	for _, mode := range []Mode{ModePostCopy, ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(1024, 100*1000*1000)
			inj := r.injector(t, faults.Plan{
				{Site: faults.SiteCorruptPage, Nth: 10, Count: 2},
			})
			rep, err := r.source(Config{Mode: mode, Faults: inj}, nil).Migrate()
			if err != nil {
				t.Fatal(err)
			}
			ic := rep.Integrity
			if ic == nil {
				t.Fatal("no integrity section")
			}
			if ic.Mismatches == 0 {
				t.Fatal("corruption fired but no mismatch recorded")
			}
			if ic.Repairs != ic.Mismatches {
				t.Fatalf("repairs %d != mismatches %d on a completed run", ic.Repairs, ic.Mismatches)
			}
		})
	}
}

// A hybrid warm-phase page corrupted in flight is caught by the switchover
// resident audit and refetched by the lazy phase instead of surviving as
// resident.
func TestCorruptWarmPageRefetchedHybrid(t *testing.T) {
	r := newRig(1024, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteCorruptPage, Nth: 7, Count: 1},
	})
	rep, err := r.source(Config{Mode: ModeHybrid, Faults: inj}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	ic := rep.Integrity
	if ic == nil || ic.Mismatches != 1 {
		t.Fatalf("integrity = %+v, want exactly one mismatch", ic)
	}
	if ic.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1 (refetch of the dropped warm page)", ic.Repairs)
	}
	if rep.PostCopy == nil || rep.PostCopy.WarmPages >= 1024 {
		t.Fatal("corrupted warm page was not dropped from the resident set")
	}
}

// With the integrity plane explicitly disabled, in-flight corruption
// completes silently and the destination provably diverges — this is the
// failure mode the audit exists to prevent (and the planted bug the chaos
// search test hunts).
func TestIntegrityDisableIsSilent(t *testing.T) {
	r := newRig(512, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteCorruptPage, Nth: 3, Count: 2},
	})
	cfg := Config{Mode: ModeVanilla, Faults: inj}
	cfg.Integrity.Disable = true
	rep, err := r.source(cfg, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Integrity != nil {
		t.Fatal("disabled integrity plane still produced a report section")
	}
	if len(inj.Events()) == 0 {
		t.Fatal("corruption never fired")
	}
	// The destination silently diverges: its recorded digests no longer match
	// the source's content for the corrupted pages.
	diverged := 0
	for p := mem.PFN(0); uint64(p) < 512; p++ {
		if got, ok := r.dest.PageDigestAt(p); ok && got != mem.PageDigest(r.dom.Store().Export(p)) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("corruption went undetected AND the destination matches — impossible")
	}
}

// Property: across seeds and modes, an in-flight corruption never completes
// silently — either the run completes with every mismatch repaired and a
// verified destination, or it aborts cleanly with recovery metadata.
func TestCorruptionNeverSilentAcrossSeeds(t *testing.T) {
	modes := []Mode{ModeVanilla, ModeAppAssisted, ModePostCopy, ModeHybrid}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mode := modes[seed%int64(len(modes))]
		plan := faults.Plan{{
			Site:  faults.SiteCorruptPage,
			Nth:   uint64(1 + rng.Intn(300)),
			Count: uint64(1 + rng.Intn(4)),
		}}
		r := newRig(1024, 100*1000*1000)
		inj := r.injector(t, plan)
		rep, err := r.source(Config{Mode: mode, Faults: inj}, nil).Migrate()
		fired := len(inj.Events()) > 0
		if err != nil {
			if rep == nil || rep.Recovery == nil || !rep.Recovery.Aborted {
				t.Fatalf("seed %d (%v): abort without recovery metadata: %v", seed, mode, err)
			}
			continue
		}
		if !fired {
			continue // corruption scheduled past the run's end: nothing to check
		}
		ic := rep.Integrity
		if ic == nil || ic.Mismatches == 0 {
			t.Fatalf("seed %d (%v): corruption fired but no mismatch detected", seed, mode)
		}
		if ic.Repairs != ic.Mismatches {
			t.Fatalf("seed %d (%v): completed with %d repairs for %d mismatches",
				seed, mode, ic.Repairs, ic.Mismatches)
		}
		if rep.PostCopy == nil {
			r.verify(t, rep)
		}
	}
}
