package migration

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
)

func TestReceiveIntoStoreRoundTrip(t *testing.T) {
	src := mem.NewByteStore(8)
	for p := mem.PFN(0); p < 8; p++ {
		src.Write(p)
	}
	var buf bytes.Buffer
	w := netsim.NewPageWriter(&buf)
	for p := mem.PFN(0); p < 8; p++ {
		if err := w.WritePage(p, src.Export(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndIteration(); err != nil {
		t.Fatal(err)
	}
	if err := w.EndStream(); err != nil {
		t.Fatal(err)
	}
	dst := mem.NewByteStore(8)
	pages, err := ReceiveIntoStore(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 8 {
		t.Fatalf("pages = %d", pages)
	}
	for p := mem.PFN(0); p < 8; p++ {
		if !bytes.Equal(src.Page(p), dst.Page(p)) {
			t.Fatalf("page %d differs", p)
		}
	}
}

func TestReceiveIntoStoreRejectsBadPFN(t *testing.T) {
	var buf bytes.Buffer
	w := netsim.NewPageWriter(&buf)
	payload := mem.NewByteStore(10).Export(0)
	if err := w.WritePage(9, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.EndStream(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReceiveIntoStore(&buf, mem.NewByteStore(4)); err == nil {
		t.Fatal("out-of-range PFN accepted")
	}
}

func TestReceiveIntoStoreTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := netsim.NewPageWriter(&buf)
	if err := w.WritePage(0, mem.NewByteStore(1).Export(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// No EndStream: the reader must surface the EOF as an error.
	if _, err := ReceiveIntoStore(&buf, mem.NewByteStore(1)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestStreamedMigrationOverTCP runs a full app-assisted migration with
// byte-backed pages, teeing every received page over a real TCP connection
// to a "remote destination" goroutine, then checks byte equality between the
// source, the local destination and the remote reconstruction.
func TestStreamedMigrationOverTCP(t *testing.T) {
	const pages = 8192 // 32 MiB keeps ByteStore costs low
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewByteStore(pages), 2)
	guest := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})

	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(guest, clock, hot, 20000)
	sc.skip = []mem.VARange{hot}
	sc.readyDelay = 20 * time.Millisecond
	sc.register(guest)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()

	type remoteResult struct {
		store *mem.ByteStore
		pages uint64
		err   error
	}
	done := make(chan remoteResult, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- remoteResult{err: err}
			return
		}
		defer conn.Close()
		store := mem.NewByteStore(pages)
		n, err := ReceiveIntoStore(conn, store)
		done <- remoteResult{store: store, pages: n, err: err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pw := netsim.NewPageWriter(conn)

	dest := NewDestinationWithStore(mem.NewByteStore(pages))
	dest.Tee(pw)
	src := &Source{
		Dom:   dom,
		LKM:   guest.LKM,
		Link:  netsim.NewLink(clock, 20*1000*1000, 0),
		Clock: clock,
		Exec:  sc,
		Dest:  dest,
		Cfg:   Config{Mode: ModeAppAssisted},
	}
	rep, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.EndStream(); err != nil {
		t.Fatal(err)
	}
	remote := <-done
	if remote.err != nil {
		t.Fatal(remote.err)
	}
	if dest.TeeErrors() != 0 {
		t.Fatalf("tee errors = %d", dest.TeeErrors())
	}
	if remote.pages != dest.PagesReceived {
		t.Fatalf("remote applied %d pages, local %d", remote.pages, dest.PagesReceived)
	}

	// Remote reconstruction must equal the local destination byte-for-byte.
	local := dest.Store.(*mem.ByteStore)
	for p := mem.PFN(0); p < pages; p++ {
		if !bytes.Equal(local.Page(p), remote.store.Page(p)) {
			t.Fatalf("page %d differs between local and remote destinations", p)
		}
	}
	// And the standard correctness invariant holds against the source.
	err = VerifyMigration(dom.Store(), remote.store, rep.FinalTransfer,
		func(p mem.PFN) bool { return guest.Frames.Allocated(p) })
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrationCancelledByDeadline(t *testing.T) {
	r := newRig(4096, 5*1000*1000) // slow link: never converges quickly
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 20000)
	sc.skip = []mem.VARange{hot}
	sc.register(r.guest)

	src := r.source(Config{Mode: ModeAppAssisted, CancelAfter: 2 * time.Second}, sc)
	rep, err := src.Migrate()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if rep == nil || len(rep.Iterations) == 0 {
		t.Fatal("no partial report returned")
	}
	// The abort happens shortly after the deadline (chunk granularity).
	if rep.TotalTime > 4*time.Second {
		t.Fatalf("cancelled migration ran %v past a 2s deadline", rep.TotalTime)
	}
	// The guest is back to normal: LKM reset, log-dirty off, VM running.
	if r.guest.LKM.State() != guestos.StateInitialized {
		t.Fatalf("LKM state after abort = %v", r.guest.LKM.State())
	}
	if r.dom.LogDirtyEnabled() {
		t.Fatal("log-dirty still enabled after abort")
	}
	if r.dom.Paused() {
		t.Fatal("domain paused after abort")
	}
	tb := r.guest.LKM.TransferBitmap()
	if tb.Count() != tb.Len() {
		t.Fatal("transfer bitmap not reset after abort")
	}

	// A fresh migration after the abort succeeds end-to-end.
	r.dest = NewDestination(4096)
	src2 := r.source(Config{Mode: ModeAppAssisted}, sc)
	rep2, err := src2.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	r.verify(t, rep2)
}

func TestMigrationCancelledByHook(t *testing.T) {
	r := newRig(2048, 5*1000*1000)
	calls := 0
	cfg := Config{
		Mode: ModeVanilla,
		ShouldCancel: func() bool {
			calls++
			return calls > 1 // abort at the second chunk of iteration 1
		},
	}
	_, err := r.source(cfg, nil).Migrate()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestCancelDuringPrepareWaitReleasesApps(t *testing.T) {
	r := newRig(2048, 50*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 1000)
	sc.skip = []mem.VARange{hot}
	sc.readyDelay = 30 * time.Second // very slow app
	sc.register(r.guest)

	src := r.source(Config{Mode: ModeAppAssisted, CancelAfter: 3 * time.Second}, sc)
	if _, err := src.Migrate(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if r.guest.LKM.State() != guestos.StateInitialized {
		t.Fatalf("LKM state = %v", r.guest.LKM.State())
	}
}

// failingWriter accepts the first n bytes, then rejects everything.
type failingWriter struct {
	n    int
	took int
}

var errSinkFull = errors.New("sink full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.took+len(p) > f.n {
		return 0, errSinkFull
	}
	f.took += len(p)
	return len(p), nil
}

// A tee whose underlying writer fails must not fail the migration: the
// destination keeps importing pages and only the error counter moves.
func TestTeeErrorsCountWriterFailures(t *testing.T) {
	const pages = 2048
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewByteStore(pages), 2)
	guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})

	// Full 4 KiB payloads overflow the page writer's buffer on every frame,
	// so the failure surfaces inside WritePage after ~32 KiB.
	fw := &failingWriter{n: 32 << 10}
	pw := netsim.NewPageWriter(fw)
	dest := NewDestinationWithStore(mem.NewByteStore(pages))
	dest.Tee(pw)

	src := &Source{
		Dom:   dom,
		Link:  netsim.NewLink(clock, 50*1000*1000, 0),
		Clock: clock,
		Dest:  dest,
		Cfg:   Config{Mode: ModeVanilla},
	}
	rep, err := src.Migrate()
	if err != nil {
		t.Fatalf("migration failed on tee errors: %v", err)
	}
	if dest.TeeErrors() == 0 {
		t.Fatal("failing tee writer recorded no errors")
	}
	if dest.PagesReceived != rep.TotalPagesSent {
		t.Fatalf("destination imported %d of %d pages despite tee failure",
			dest.PagesReceived, rep.TotalPagesSent)
	}
	if err := VerifyMigration(dom.Store(), dest.Store, rep.FinalTransfer, nil); err != nil {
		t.Fatalf("destination diverged: %v", err)
	}
}

// The same failure on a version-backed store, whose tiny payloads sit in
// the writer's buffer: the sticky bufio error must still reach the error
// counter once the buffer drains.
func TestTeeErrorsWithBufferedPayloads(t *testing.T) {
	r := newRig(4096, 50*1000*1000)
	pw := netsim.NewPageWriter(&failingWriter{n: 4 << 10})
	r.dest.Tee(pw)

	rep, err := r.source(Config{Mode: ModeVanilla}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if pw.Flush() == nil && r.dest.TeeErrors() == 0 {
		t.Fatal("no tee error surfaced from the failed underlying writer")
	}
	r.verify(t, rep)
}
