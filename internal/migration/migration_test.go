package migration

import (
	"testing"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
)

// scribbler is a synthetic guest executor: it rewrites a fixed working set of
// pages at a configurable rate, via real page-table mappings, and can play
// the role of a cooperative application with a skip-over area.
type scribbler struct {
	clock *simclock.Clock
	proc  *guestos.Process
	// hot is the VA range rewritten continuously.
	hot mem.VARange
	// pagesPerSec is the dirtying rate.
	pagesPerSec float64
	throttle    float64
	cursor      mem.VA
	carry       float64

	// When acting as an app: skip-over area and prepare behaviour.
	sock       *guestos.Socket
	skip       []mem.VARange
	readySkip  []mem.VARange
	liveHead   mem.VARange // data excluded from readySkip; rewritten at ready
	readyDelay time.Duration
}

func newScribbler(g *guestos.Guest, clock *simclock.Clock, hot mem.VARange, rate float64) *scribbler {
	s := &scribbler{
		clock:       clock,
		proc:        g.NewProcess("scribbler"),
		hot:         hot,
		pagesPerSec: rate,
		throttle:    1.0,
		cursor:      hot.Start,
	}
	if err := s.proc.Alloc(hot); err != nil {
		panic(err)
	}
	return s
}

func (s *scribbler) register(g *guestos.Guest) {
	s.sock = g.LKM.RegisterApp(s.proc, func(msg any) {
		switch msg.(type) {
		case guestos.MsgQuerySkipAreas:
			if len(s.skip) > 0 {
				s.sock.Send(guestos.MsgReportAreas{App: s.sock.App(), Areas: s.skip})
			}
		case guestos.MsgPrepareSuspension:
			if len(s.skip) == 0 {
				return
			}
			areas := s.readySkip
			if areas == nil {
				areas = s.skip
			}
			respond := func() {
				// The framework's correctness contract (§3.3.4): data
				// leaving the skip-over area at the final update must have
				// been produced after the handshake began — like the
				// enforced GC copying survivors into the From space. The
				// app therefore writes its live head before reporting
				// ready.
				if !s.liveHead.Empty() {
					s.proc.WriteRange(s.liveHead)
				}
				s.sock.Send(guestos.MsgSuspensionReady{App: s.sock.App(), Areas: areas})
			}
			if s.readyDelay > 0 {
				s.clock.AfterFunc(s.readyDelay, func(time.Duration) { respond() })
			} else {
				respond()
			}
		}
	})
}

// Run implements GuestExecutor: dirty pages round-robin across the hot set.
func (s *scribbler) Run(d time.Duration) {
	target := s.clock.Now() + d
	// Advance in 1 ms steps so timers interleave with writes.
	for s.clock.Now() < target {
		step := time.Millisecond
		if rem := target - s.clock.Now(); rem < step {
			step = rem
		}
		writes := s.pagesPerSec*s.throttle*step.Seconds() + s.carry
		n := int(writes)
		s.carry = writes - float64(n)
		for i := 0; i < n; i++ {
			s.proc.Write(s.cursor)
			s.cursor += mem.PageSize
			if s.cursor >= s.hot.End {
				s.cursor = s.hot.Start
			}
		}
		s.clock.Advance(step)
	}
}

func (s *scribbler) SetThrottle(f float64) { s.throttle = f }

// testRig bundles a small VM ready to migrate.
type testRig struct {
	clock *simclock.Clock
	dom   *hypervisor.Domain
	guest *guestos.Guest
	link  *netsim.Link
	dest  *Destination
}

// newRig builds a VM with `pages` pages and a link of `bw` bytes/sec.
func newRig(pages uint64, bw uint64) *testRig {
	clock := simclock.New()
	dom := hypervisor.NewDomain("vm", clock, mem.NewVersionStore(pages), 4)
	guest := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	return &testRig{
		clock: clock,
		dom:   dom,
		guest: guest,
		link:  netsim.NewLink(clock, bw, 0),
		dest:  NewDestination(pages),
	}
}

func (r *testRig) source(cfg Config, exec GuestExecutor) *Source {
	return &Source{
		Dom:   r.dom,
		LKM:   r.guest.LKM,
		Link:  r.link,
		Clock: r.clock,
		Exec:  exec,
		Dest:  r.dest,
		Cfg:   cfg,
	}
}

func (r *testRig) verify(t *testing.T, rep *Report) {
	t.Helper()
	err := VerifyMigration(r.dom.Store(), r.dest.Store, rep.FinalTransfer,
		func(p mem.PFN) bool { return r.guest.Frames.Allocated(p) })
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrateIdleGuestVanilla(t *testing.T) {
	r := newRig(8192, 100*1000*1000)
	rep, err := r.source(Config{Mode: ModeVanilla}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	// Idle guest: iteration 1 sends everything, iteration 2 sends nothing
	// (which is what tells the engine it converged, as in xc_domain_save),
	// then stop-and-copy is empty.
	if len(rep.Iterations) != 3 {
		t.Fatalf("iterations = %d, want 3", len(rep.Iterations))
	}
	if rep.Iterations[0].PagesSent != 8192 {
		t.Fatalf("iter 1 sent %d pages, want 8192", rep.Iterations[0].PagesSent)
	}
	if rep.Iterations[1].PagesSent != 0 {
		t.Fatalf("iter 2 sent %d pages, want 0", rep.Iterations[1].PagesSent)
	}
	if !rep.Iterations[2].Last {
		t.Fatal("final iteration not marked Last")
	}
	if rep.Iterations[2].PagesSent != 0 {
		t.Fatalf("stop-and-copy sent %d pages, want 0", rep.Iterations[2].PagesSent)
	}
	r.verify(t, rep)
	// Downtime is just resumption.
	if rep.VMDowntime != rep.Resumption {
		t.Fatalf("VMDowntime = %v, Resumption = %v", rep.VMDowntime, rep.Resumption)
	}
	// Total traffic ≈ memory size.
	if rep.TotalBytes() != 8192*mem.PageSize {
		t.Fatalf("traffic = %d, want one memory size", rep.TotalBytes())
	}
}

func TestMigrateDirtyingGuestVanillaConverges(t *testing.T) {
	r := newRig(8192, 200*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	// Slow dirtying: 1000 pages/s against ~48k pages/s of link: converges.
	sc := newScribbler(r.guest, r.clock, hot, 1000)
	rep, err := r.source(Config{Mode: ModeVanilla}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) >= 30 {
		t.Fatalf("slow dirtier should converge before cap, took %d iterations", len(rep.Iterations))
	}
	r.verify(t, rep)
}

func TestMigrateFastDirtierHitsIterationCap(t *testing.T) {
	r := newRig(4096, 10*1000*1000) // slow link: 2441 pages/s
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 20000) // dirties far faster
	// Disable the traffic cap so the iteration cap is what stops pre-copy.
	rep, err := r.source(Config{Mode: ModeVanilla, MaxTrafficFactor: -1}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	// 30 live iterations + stop-and-copy.
	if len(rep.Iterations) != 31 {
		t.Fatalf("iterations = %d, want 31 (30 live + last)", len(rep.Iterations))
	}
	if rep.LastIterBytes == 0 {
		t.Fatal("fast dirtier should leave dirty pages for stop-and-copy")
	}
	r.verify(t, rep)
}

func TestMigrateTrafficCap(t *testing.T) {
	r := newRig(4096, 10*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 20000)
	cfg := Config{Mode: ModeVanilla, MaxTrafficFactor: 1.5}
	rep, err := r.source(cfg, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) >= 31 {
		t.Fatal("traffic cap did not trigger before iteration cap")
	}
	// Cap applies to pre-copy; stop-and-copy may exceed it slightly.
	limit := 2.2 * float64(4096*mem.PageSize)
	if got := rep.TotalBytes(); float64(got) > limit {
		t.Fatalf("traffic = %d, way beyond cap", got)
	}
	r.verify(t, rep)
}

func TestSkipAlreadyDirtiedWithinRound(t *testing.T) {
	r := newRig(2048, 5*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 512*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 50000) // rewrites hot set fast
	// Small chunks so guest writes interleave within a round.
	rep, err := r.source(Config{Mode: ModeVanilla, MaxIterations: 5, ChunkPages: 64}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	var skipped uint64
	for _, it := range rep.Iterations {
		skipped += it.PagesSkippedDirty
	}
	if skipped == 0 {
		t.Fatal("no pages skipped as already-dirtied despite rapid rewriting")
	}
	r.verify(t, rep)
}

func TestMigrateAppAssistedSkipsArea(t *testing.T) {
	r := newRig(8192, 50*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 2048*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 30000)
	sc.skip = []mem.VARange{hot} // the entire hot set is skippable
	sc.readyDelay = 50 * time.Millisecond
	sc.register(r.guest)

	rep, err := r.source(Config{Mode: ModeAppAssisted}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	var skippedBitmap uint64
	for _, it := range rep.Iterations {
		skippedBitmap += it.PagesSkippedBitmap
	}
	if skippedBitmap == 0 {
		t.Fatal("no pages skipped via transfer bitmap")
	}
	// The hot pages must not have been transferred at all after iteration 1
	// — and not even in iteration 1, since the first bitmap update precedes
	// it.
	if rep.Iterations[0].PagesSent > 8192-2048 {
		t.Fatalf("iter 1 sent %d pages; young-gen-like area not skipped", rep.Iterations[0].PagesSent)
	}
	r.verify(t, rep)
	if rep.PrepareWait < 50*time.Millisecond {
		t.Fatalf("PrepareWait = %v, want >= 50ms", rep.PrepareWait)
	}
	if rep.FinalUpdate <= 0 {
		t.Fatal("FinalUpdate not recorded")
	}
}

func TestAppAssistedBeatsVanillaOnHotSkippableSet(t *testing.T) {
	run := func(mode Mode) *Report {
		r := newRig(8192, 20*1000*1000)
		hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 4096*mem.PageSize}
		sc := newScribbler(r.guest, r.clock, hot, 40000)
		if mode == ModeAppAssisted {
			sc.skip = []mem.VARange{hot}
			sc.register(r.guest)
		}
		rep, err := r.source(Config{Mode: mode}, sc).Migrate()
		if err != nil {
			panic(err)
		}
		r.verify(&testing.T{}, rep)
		return rep
	}
	xen := run(ModeVanilla)
	jav := run(ModeAppAssisted)
	if jav.TotalTime >= xen.TotalTime {
		t.Fatalf("app-assisted (%v) not faster than vanilla (%v)", jav.TotalTime, xen.TotalTime)
	}
	if jav.TotalBytes() >= xen.TotalBytes() {
		t.Fatalf("app-assisted traffic (%d) not below vanilla (%d)", jav.TotalBytes(), xen.TotalBytes())
	}
	if jav.VMDowntime >= xen.VMDowntime {
		t.Fatalf("app-assisted downtime (%v) not below vanilla (%v)", jav.VMDowntime, xen.VMDowntime)
	}
}

func TestAppAssistedRequiresLKM(t *testing.T) {
	r := newRig(64, 1000)
	src := r.source(Config{Mode: ModeAppAssisted}, nil)
	src.LKM = nil
	if _, err := src.Migrate(); err != ErrNoLKM {
		t.Fatalf("err = %v, want ErrNoLKM", err)
	}
}

func TestMigrateValidation(t *testing.T) {
	r := newRig(64, 1000)
	cases := map[string]func(*Source){
		"no dest":  func(s *Source) { s.Dest = nil },
		"no link":  func(s *Source) { s.Link = nil },
		"no clock": func(s *Source) { s.Clock = nil },
		"no dom":   func(s *Source) { s.Dom = nil },
		"mismatch": func(s *Source) { s.Dest = NewDestination(32) },
	}
	for name, mutate := range cases {
		src := r.source(Config{}, nil)
		mutate(src)
		if _, err := src.Migrate(); err == nil {
			t.Errorf("%s: Migrate succeeded", name)
		}
	}
}

func TestThrottleAppliedAndRestored(t *testing.T) {
	// Dirtying at 2000 pages/s against a ~1220 pages/s link never
	// converges; throttled to 25 % (500 pages/s) it does — the whole point
	// of Clark-style write throttling.
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}

	r := newRig(2048, 5*1000*1000)
	sc := newScribbler(r.guest, r.clock, hot, 2000)
	cfg := Config{Mode: ModeVanilla, ThrottleFactor: 0.25, MaxTrafficFactor: -1}
	rep, err := r.source(cfg, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if sc.throttle != 1.0 {
		t.Fatalf("throttle not restored: %v", sc.throttle)
	}
	r.verify(t, rep)
	if rep.LiveIterations() >= 30 {
		t.Fatalf("throttled migration did not converge (%d live iterations)", rep.LiveIterations())
	}

	r2 := newRig(2048, 5*1000*1000)
	sc2 := newScribbler(r2.guest, r2.clock, hot, 2000)
	rep2, err := r2.source(Config{Mode: ModeVanilla, MaxTrafficFactor: -1}, sc2).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LiveIterations() < 30 {
		t.Fatalf("unthrottled migration converged in %d iterations; expected iteration cap", rep2.LiveIterations())
	}
}

func TestSkipFreePages(t *testing.T) {
	r := newRig(8192, 50*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 512*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 1000)

	src := r.source(Config{Mode: ModeVanilla, SkipFreePages: true}, sc)
	src.GuestFree = func(p mem.PFN) bool { return !r.guest.Frames.Allocated(p) }
	rep, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	r.verify(t, rep)
	var freeSkipped uint64
	for _, it := range rep.Iterations {
		freeSkipped += it.PagesSkippedFree
	}
	if freeSkipped == 0 {
		t.Fatal("no free pages skipped on a mostly-empty VM")
	}
	// Only the kernel reservation (4096 pages) and the scribbler's 512
	// pages are allocated: iteration 1 must not ship the ~3.5k free pages.
	if rep.Iterations[0].PagesSent > 4700 {
		t.Fatalf("iteration 1 sent %d pages despite free skipping", rep.Iterations[0].PagesSent)
	}

	// Without free skipping, the same VM ships everything.
	r2 := newRig(8192, 50*1000*1000)
	sc2 := newScribbler(r2.guest, r2.clock, hot, 1000)
	rep2, err := r2.source(Config{Mode: ModeVanilla}, sc2).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() >= rep2.TotalBytes() {
		t.Fatalf("free skipping saved nothing: %d vs %d", rep.TotalBytes(), rep2.TotalBytes())
	}
}

func TestSkipFreePagesCorrectAcrossReallocation(t *testing.T) {
	// Frames freed mid-migration and reallocated must still arrive
	// correctly (the zero-on-alloc write re-dirties them).
	r := newRig(4096, 10*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 5000)
	src := r.source(Config{Mode: ModeVanilla, SkipFreePages: true, MaxIterations: 6}, sc)
	src.GuestFree = func(p mem.PFN) bool { return !r.guest.Frames.Allocated(p) }

	// Churn mappings during migration via a clock timer: free and
	// reallocate a range between iterations.
	churn := mem.VARange{Start: 0x2000000, End: 0x2000000 + 128*mem.PageSize}
	if err := sc.proc.Alloc(churn); err != nil {
		t.Fatal(err)
	}
	r.clock.AfterFunc(2*time.Second, func(time.Duration) {
		sc.proc.Free(churn)
	})
	r.clock.AfterFunc(4*time.Second, func(time.Duration) {
		if err := sc.proc.Alloc(churn); err != nil {
			t.Error(err)
		}
	})
	rep, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	r.verify(t, rep)
}

func TestCompressionReducesWireBytes(t *testing.T) {
	run := func(compress bool) *Report {
		r := newRig(2048, 10*1000*1000)
		cfg := Config{Mode: ModeVanilla, Compress: compress}
		rep, err := r.source(cfg, nil).Migrate()
		if err != nil {
			panic(err)
		}
		return rep
	}
	plain := run(false)
	comp := run(true)
	if comp.TotalBytes() >= plain.TotalBytes() {
		t.Fatalf("compressed traffic %d >= plain %d", comp.TotalBytes(), plain.TotalBytes())
	}
	if comp.CPUTime <= plain.CPUTime {
		t.Fatalf("compression CPU %v <= plain %v", comp.CPUTime, plain.CPUTime)
	}
}

func TestDeltaCompressionResends(t *testing.T) {
	// A fast dirtier makes pre-copy resend the hot set repeatedly; deltas
	// shrink every resend.
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}

	run := func(delta bool) *Report {
		r := newRig(2048, 5*1000*1000)
		sc := newScribbler(r.guest, r.clock, hot, 20000)
		cfg := Config{Mode: ModeVanilla, MaxIterations: 6, MaxTrafficFactor: -1, DeltaCompression: delta}
		rep, err := r.source(cfg, sc).Migrate()
		if err != nil {
			t.Fatal(err)
		}
		r.verify(t, rep)
		return rep
	}
	plain := run(false)
	d := run(true)
	if d.DeltaResends == 0 {
		t.Fatal("no delta resends recorded")
	}
	if plain.DeltaResends != 0 || plain.DeltaCacheBytes != 0 {
		t.Fatal("delta stats recorded without delta mode")
	}
	if d.TotalBytes() >= plain.TotalBytes() {
		t.Fatalf("delta traffic %d >= plain %d", d.TotalBytes(), plain.TotalBytes())
	}
	if d.DeltaCacheBytes != 2048*mem.PageSize {
		t.Fatalf("DeltaCacheBytes = %d", d.DeltaCacheBytes)
	}
}

func TestHintedCompressionWireSizes(t *testing.T) {
	// An idle 2048-page VM with three hinted regions: the wire volume must
	// reflect per-page ratios.
	r := newRig(2048, 100*1000*1000)
	proc := r.guest.NewProcess("app")
	strong := mem.VARange{Start: 0x100000, End: 0x100000 + 256*mem.PageSize}
	none := mem.VARange{Start: 0x400000, End: 0x400000 + 256*mem.PageSize}
	for _, a := range []mem.VARange{strong, none} {
		if err := proc.Alloc(a); err != nil {
			t.Fatal(err)
		}
	}
	sock := r.guest.LKM.RegisterApp(proc, func(any) {})
	daemonSide := r.guest.LKM.DaemonEndpoint()
	daemonSide.Bind(func(any) {})

	hints := map[mem.PFN]uint8{}
	collect := func(a mem.VARange, level uint8) {
		proc.AS.Walk(a, func(va mem.VA, p mem.PFN) { hints[p] = level })
	}
	collect(strong, guestos.HintStrong)
	collect(none, guestos.HintNone)

	cfg := Config{
		Mode:              ModeVanilla,
		Compress:          true,
		HintedCompression: true,
	}
	src := r.source(cfg, nil)
	src.HintFor = func(p mem.PFN) uint8 { return hints[p] }
	rep, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	r.verify(t, rep)
	// Expected iteration-1 wire: 256 pages at 0.35, 256 at 1.0, the
	// remaining 1536 at the uniform 0.45.
	pageF := float64(mem.PageSize)
	want := uint64(256*pageF*0.35) + uint64(256*pageF) + uint64(1536*pageF*0.45)
	got := rep.Iterations[0].BytesOnWire
	diff := float64(got) - float64(want)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(want) > 0.01 {
		t.Fatalf("iteration 1 wire = %d, want ≈%d", got, want)
	}
	_ = sock
}

func TestIterationStatsRates(t *testing.T) {
	st := IterationStats{Duration: 2 * time.Second, BytesOnWire: 4000, PagesDirtiedDuring: 100}
	if got := st.TransferRate(); got != 2000 {
		t.Fatalf("TransferRate = %v", got)
	}
	if got := st.DirtyRate(); got != 50 {
		t.Fatalf("DirtyRate = %v", got)
	}
	zero := IterationStats{}
	if zero.TransferRate() != 0 || zero.DirtyRate() != 0 {
		t.Fatal("zero-duration rates not zero")
	}
}

func TestVerifyMigrationDetectsDivergence(t *testing.T) {
	src := mem.NewVersionStore(8)
	dst := mem.NewVersionStore(8)
	all := mem.NewBitmap(8)
	all.SetAll()
	src.Write(3)
	if err := VerifyMigration(src, dst, all, nil); err == nil {
		t.Fatal("divergence not detected")
	}
	// Cleared transfer bit exempts the page.
	tb := all.Clone()
	tb.Clear(3)
	if err := VerifyMigration(src, dst, tb, nil); err != nil {
		t.Fatal(err)
	}
	// required predicate exempts the page.
	if err := VerifyMigration(src, dst, all, func(p mem.PFN) bool { return p != 3 }); err != nil {
		t.Fatal(err)
	}
	// Size mismatch.
	if err := VerifyMigration(src, mem.NewVersionStore(4), all, nil); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestOnIterationStreamsProgress(t *testing.T) {
	r := newRig(2048, 50*1000*1000)
	var seen []IterationStats
	cfg := Config{
		Mode:        ModeVanilla,
		OnIteration: func(st IterationStats) { seen = append(seen, st) },
	}
	rep, err := r.source(cfg, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(rep.Iterations) {
		t.Fatalf("streamed %d iterations, report has %d", len(seen), len(rep.Iterations))
	}
	for i := range seen {
		if seen[i].Index != rep.Iterations[i].Index {
			t.Fatal("streamed iterations out of order")
		}
	}
	if !seen[len(seen)-1].Last {
		t.Fatal("final streamed iteration not marked Last")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeVanilla.String() != "xen" || ModeAppAssisted.String() != "javmm" {
		t.Fatal("mode names wrong")
	}
}

func TestModeStringRoundTrip(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
		// parses reports whether ParseMode maps the string back; the
		// default-branch rendering of unknown modes must not parse.
		parses bool
	}{
		{ModeVanilla, "xen", true},
		{ModeAppAssisted, "javmm", true},
		{ModePostCopy, "post-copy", true},
		{ModeHybrid, "hybrid", true},
		{Mode(4), "Mode(4)", false},
		{Mode(-1), "Mode(-1)", false},
		{Mode(99), "Mode(99)", false},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(c.mode), got, c.want)
		}
		back, err := ParseMode(c.mode.String())
		if c.parses {
			if err != nil {
				t.Errorf("ParseMode(%q) failed: %v", c.mode.String(), err)
			} else if back != c.mode {
				t.Errorf("ParseMode(%q) = %v, want %v", c.mode.String(), back, c.mode)
			}
		} else if err == nil {
			t.Errorf("ParseMode(%q) accepted an unknown mode", c.mode.String())
		}
	}
}

func TestParseModeRejectsJunk(t *testing.T) {
	for _, s := range []string{"", "kvm", "Xen", "JAVMM", " javmm"} {
		if _, err := ParseMode(s); err == nil {
			t.Errorf("ParseMode(%q) did not fail", s)
		}
	}
}

func TestDownTimeIncludesStopAndCopyTransfer(t *testing.T) {
	r := newRig(4096, 5*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 30000)
	rep, err := r.source(Config{Mode: ModeVanilla, MaxIterations: 3}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Iterations[len(rep.Iterations)-1]
	if rep.VMDowntime != last.Duration+rep.Resumption {
		t.Fatalf("VMDowntime = %v, want last iter %v + resumption %v",
			rep.VMDowntime, last.Duration, rep.Resumption)
	}
}

// A silent straggler: the app reports a skip-over area but never answers
// prepare-suspension, so the LKM's timeout restores its areas to full
// transfer (the fallback of paper §6). The engine must then actually send
// the restored pages — they were skipped in earlier rounds and are not
// dirty, so dirty tracking alone would strand stale content at the
// destination. Regression test for the fleet chaos finding where a resumed
// migration of a frozen guest left every restored page behind.
func TestAssistedStragglerFallbackTransfersRestoredPages(t *testing.T) {
	r := newRig(2048, 100*1000*1000)
	proc := r.guest.NewProcess("straggler")
	skip := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	if err := proc.Alloc(skip); err != nil {
		t.Fatal(err)
	}
	// The area's content exists before migration and never changes again.
	proc.WriteRange(skip)
	var sock *guestos.Socket
	sock = r.guest.LKM.RegisterApp(proc, func(msg any) {
		if _, ok := msg.(guestos.MsgQuerySkipAreas); ok {
			sock.Send(guestos.MsgReportAreas{App: sock.App(), Areas: []mem.VARange{skip}})
		}
		// MsgPrepareSuspension goes unanswered — the straggler.
	})
	rep, err := r.source(Config{Mode: ModeAppAssisted}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", rep.Fallbacks)
	}
	// The restored pages ride the stop-and-copy round.
	last := rep.Iterations[len(rep.Iterations)-1]
	if !last.Last || last.PagesSent < 256 {
		t.Fatalf("stop-and-copy sent %d pages (want ≥ the 256 restored)", last.PagesSent)
	}
	// FinalTransfer covers the restored area again, and the image matches
	// page for page.
	r.verify(t, rep)
}
