package migration

import (
	"errors"
	"strings"
	"testing"
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/obs/ledger"
)

// resumeCfg is the base config of the resume tests: resumable aborts on.
func resumeCfg(mode Mode) Config {
	cfg := Config{Mode: mode}
	cfg.Recovery.EnableResume = true
	return cfg
}

// cleanRunBytes measures a from-scratch migration of an identical idle VM —
// the baseline a resume must beat.
func cleanRunBytes(t *testing.T, pages uint64, mode Mode) uint64 {
	t.Helper()
	r := newRig(pages, 100*1000*1000)
	rep, err := r.source(Config{Mode: mode}, nil).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	return rep.TotalBytes()
}

// An aborted run with EnableResume keeps the destination image and mints a
// token; Resume transfers strictly less than a from-scratch run, re-dirtied
// pages included, and the pair reconciles through the ledger.
func TestAbortResumePreCopyConverges(t *testing.T) {
	const pages = 2048
	r := newRig(pages, 100*1000*1000)
	// Receives 1..99 land, the 100th and everything after fail: the retry
	// budget exhausts and the run aborts mid-first-copy.
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteDestReceive, Nth: 100, Count: 1 << 40},
	})
	r.dest.SetFaults(inj)
	ledA := ledger.New()
	cfgA := resumeCfg(ModeVanilla)
	cfgA.Faults = inj
	cfgA.Ledger = ledA
	repA, err := r.source(cfgA, nil).Migrate()
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if r.dest.Discarded() {
		t.Fatal("EnableResume abort still discarded the destination")
	}
	tok := repA.Recovery.Token
	if tok == nil {
		t.Fatal("aborted run minted no token")
	}
	if tok.Mode != ModeVanilla || tok.NumPages != pages || tok.Reason == "" {
		t.Fatalf("token = %+v", tok)
	}
	// Ledger A still reconciles with the partial report.
	if sum := ledA.Summary(); sum.TotalBytes != repA.TotalBytes() {
		t.Fatalf("aborted ledger bytes %d != report %d", sum.TotalBytes, repA.TotalBytes())
	}

	// The guest keeps running between abort and resume: re-dirty some pages
	// the destination already received, so the token cannot vouch for them.
	proc := r.guest.NewProcess("writer")
	warm := mem.VARange{Start: 0x2000000, End: 0x2000000 + 16*mem.PageSize}
	if err := proc.Alloc(warm); err != nil {
		t.Fatal(err)
	}
	proc.WriteRange(warm)

	// Resume with the fault plane detached.
	r.dest.SetFaults(nil)
	ledB := ledger.New()
	cfgB := resumeCfg(ModeVanilla)
	cfgB.Ledger = ledB
	repB, err := r.source(cfgB, nil).Resume(tok)
	if err != nil {
		t.Fatal(err)
	}
	rs := repB.Resume
	if rs == nil {
		t.Fatal("resumed run carries no resume section")
	}
	if rs.FullFirstCopy {
		t.Fatalf("resume degraded to full first copy: %s", rs.Reason)
	}
	if rs.TrustedPages == 0 || rs.SavedBytes == 0 {
		t.Fatalf("resume trusted nothing: %+v", rs)
	}
	if rs.TrustedPages+rs.RefetchPages != pages {
		t.Fatalf("trusted %d + refetch %d != %d", rs.TrustedPages, rs.RefetchPages, pages)
	}
	r.verify(t, repB)

	// Strictly fewer bytes than from scratch.
	clean := cleanRunBytes(t, pages, ModeVanilla)
	if repB.TotalBytes() >= clean {
		t.Fatalf("resume moved %d bytes, from-scratch moves %d", repB.TotalBytes(), clean)
	}

	// The refetched pages are tagged resume-refetch, the pair reconciles.
	sumB := ledB.Summary()
	if got := sumB.SendsByReason[ledger.ReasonResumeRefetch].Count; got != rs.RefetchPages {
		t.Fatalf("resume-refetch sends = %d, want %d", got, rs.RefetchPages)
	}
	if sumB.TotalBytes != repB.TotalBytes() || sumB.TotalSends != repB.TotalPagesSent {
		t.Fatalf("resume ledger (%d bytes/%d sends) != report (%d/%d)",
			sumB.TotalBytes, sumB.TotalSends, repB.TotalBytes(), repB.TotalPagesSent)
	}
}

// A destination that crashed is always discarded — its image generation
// changes and the token's digest table describes a dead image. Resume must
// detect that and degrade to a full first copy (satellite: resume against a
// crashed destination).
func TestResumeAfterDestinationCrashDegradesToFullCopy(t *testing.T) {
	const pages = 1024
	r := newRig(pages, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteDestCrash, Nth: 200},
	})
	r.dest.SetFaults(inj)
	cfgA := resumeCfg(ModeVanilla)
	cfgA.Faults = inj
	repA, err := r.source(cfgA, nil).Migrate()
	if !errors.Is(err, ErrDestinationLost) {
		t.Fatalf("err = %v, want ErrDestinationLost", err)
	}
	if !r.dest.Discarded() {
		t.Fatal("crashed destination was not discarded")
	}
	tok := repA.Recovery.Token
	if tok == nil {
		t.Fatal("no token after destination crash")
	}

	r.dest.SetFaults(nil)
	repB, err := r.source(resumeCfg(ModeVanilla), nil).Resume(tok)
	if err != nil {
		t.Fatal(err)
	}
	rs := repB.Resume
	if rs == nil || !rs.FullFirstCopy {
		t.Fatalf("resume against a crashed destination must be a full first copy, got %+v", rs)
	}
	if repB.TotalPagesSent < pages {
		t.Fatalf("full first copy sent %d < %d pages", repB.TotalPagesSent, pages)
	}
	r.verify(t, repB)
}

// A stale token presented against a brand-new destination (regression for
// the satellite case: stale token vs new destination) finds no provable
// pages — generation aside, every per-page digest probe fails — and the run
// degrades to a full first copy instead of trusting ghosts.
func TestResumeStaleTokenAgainstNewDestination(t *testing.T) {
	const pages = 1024
	r := newRig(pages, 100*1000*1000)
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteDestReceive, Nth: 50, Count: 1 << 40},
	})
	r.dest.SetFaults(inj)
	cfgA := resumeCfg(ModeVanilla)
	cfgA.Faults = inj
	repA, err := r.source(cfgA, nil).Migrate()
	if err == nil {
		t.Fatal("expected abort")
	}
	tok := repA.Recovery.Token

	// The original destination disappears; a fresh empty one takes its place.
	r.dest = NewDestination(pages)
	repB, err := r.source(resumeCfg(ModeVanilla), nil).Resume(tok)
	if err != nil {
		t.Fatal(err)
	}
	if rs := repB.Resume; rs == nil || !rs.FullFirstCopy {
		t.Fatalf("stale token against a new destination must degrade, got %+v", repB.Resume)
	}
	r.verify(t, repB)
}

// A cancelled run (CancelAfter) with EnableResume also mints a token, and the
// resumed run completes in the same mode with less traffic.
func TestResumeAfterCancel(t *testing.T) {
	const pages = 4096
	r := newRig(pages, 20*1000*1000)
	cfgA := resumeCfg(ModeVanilla)
	cfgA.CancelAfter = 100 * time.Millisecond
	repA, err := r.source(cfgA, nil).Migrate()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	tok := repA.Recovery.Token
	if tok == nil {
		t.Fatal("cancelled resumable run minted no token")
	}
	repB, err := r.source(resumeCfg(ModeVanilla), nil).Resume(tok)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Resume == nil || repB.Resume.FullFirstCopy {
		t.Fatalf("resume after cancel degraded: %+v", repB.Resume)
	}
	if repB.TotalBytes() >= cleanRunBytes(t, pages, ModeVanilla) {
		t.Fatal("resume after cancel saved nothing")
	}
	r.verify(t, repB)
}

// Resume input validation: nil token, geometry mismatch.
func TestResumeRejectsBadTokens(t *testing.T) {
	r := newRig(128, 100*1000*1000)
	src := r.source(resumeCfg(ModeVanilla), nil)
	if _, err := src.Resume(nil); err == nil {
		t.Fatal("nil token accepted")
	}
	if _, err := src.Resume(&ResumeToken{Mode: ModeVanilla, NumPages: 64}); err == nil {
		t.Fatal("wrong-geometry token accepted")
	}
}

// A resumed lazy run skips the warm phase and seeds residency from the
// token: only the pages the token cannot vouch for are fetched.
func TestResumeLazyModes(t *testing.T) {
	for _, mode := range []Mode{ModePostCopy, ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			const pages = 1024
			r := newRig(pages, 100*1000*1000)
			inj := r.injector(t, faults.Plan{
				{Site: faults.SiteDestReceive, Nth: 300, Count: 1 << 40},
			})
			r.dest.SetFaults(inj)
			cfgA := resumeCfg(mode)
			cfgA.Faults = inj
			repA, err := r.source(cfgA, nil).Migrate()
			if err == nil {
				t.Fatal("expected abort")
			}
			tok := repA.Recovery.Token
			if tok == nil {
				t.Fatal("no token")
			}
			if len(repA.Iterations) == 0 {
				t.Fatal("aborted lazy run sealed no iteration stats")
			}

			r.dest.SetFaults(nil)
			ledB := ledger.New()
			cfgB := resumeCfg(mode)
			cfgB.Ledger = ledB
			repB, err := r.source(cfgB, nil).Resume(tok)
			if err != nil {
				t.Fatal(err)
			}
			rs := repB.Resume
			if rs == nil || rs.FullFirstCopy || rs.TrustedPages == 0 {
				t.Fatalf("lazy resume trusted nothing: %+v", rs)
			}
			if repB.Mode != mode {
				t.Fatalf("resumed in %v, want %v", repB.Mode, mode)
			}
			// Only the untrusted remainder moved.
			if repB.TotalPagesSent >= pages {
				t.Fatalf("lazy resume moved %d pages of %d", repB.TotalPagesSent, pages)
			}
			if got := ledB.Summary().SendsByReason[ledger.ReasonResumeRefetch].Count; got == 0 {
				t.Fatal("lazy resume recorded no resume-refetch sends")
			}
		})
	}
}

// Satellite: abort metadata parity across all four modes. Wherever the abort
// strikes — pre-copy live loop, post-copy demand-fetch phase — the partial
// report must carry the same shape of metadata: recovery section with reason,
// sealed iteration stats, and a ledger that reconciles byte-for-byte.
func TestAbortMetadataParityAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeAppAssisted, ModePostCopy, ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(2048, 100*1000*1000)
			inj := r.injector(t, faults.Plan{
				{Site: faults.SiteDestReceive, Nth: 100, Count: 1 << 40},
			})
			r.dest.SetFaults(inj)
			led := ledger.New()
			cfg := Config{Mode: mode, Faults: inj, Ledger: led}
			rep, err := r.source(cfg, nil).Migrate()
			if !errors.Is(err, ErrRetriesExhausted) {
				t.Fatalf("err = %v, want ErrRetriesExhausted", err)
			}
			if rep == nil {
				t.Fatal("no partial report")
			}
			rec := rep.Recovery
			if rec == nil || !rec.Aborted || rec.AbortReason == "" {
				t.Fatalf("recovery metadata missing or incomplete: %+v", rec)
			}
			if len(rec.Retries) == 0 {
				t.Fatal("no retry records for an exhausted-retries abort")
			}
			if len(rep.Iterations) == 0 {
				t.Fatalf("%v: aborted run sealed no iteration stats", mode)
			}
			sum := led.Summary()
			if sum.TotalBytes != rep.TotalBytes() || sum.TotalSends != rep.TotalPagesSent {
				t.Fatalf("%v: aborted ledger (%d bytes/%d sends) != report (%d/%d)",
					mode, sum.TotalBytes, sum.TotalSends, rep.TotalBytes(), rep.TotalPagesSent)
			}
			if !r.dest.Discarded() {
				t.Fatal("abort without EnableResume must discard the destination")
			}
		})
	}
}

// Destination binding (regression for healing relocation): a token minted at
// one named host must not be honoured at another, even when the image it
// describes is intact and the generation counters still match. The binding
// check alone forces the full first copy.
func TestResumeTokenBoundToOtherDestinationDegrades(t *testing.T) {
	const pages = 1024
	r := newRig(pages, 100*1000*1000)
	r.dest.SetHostName("d1")
	inj := r.injector(t, faults.Plan{
		{Site: faults.SiteDestReceive, Nth: 50, Count: 1 << 40},
	})
	r.dest.SetFaults(inj)
	cfgA := resumeCfg(ModeVanilla)
	cfgA.Faults = inj
	repA, err := r.source(cfgA, nil).Migrate()
	if err == nil {
		t.Fatal("expected abort")
	}
	tok := repA.Recovery.Token
	if tok == nil {
		t.Fatal("aborted run minted no token")
	}
	if tok.Dest != "d1" {
		t.Fatalf("token bound to %q, want d1", tok.Dest)
	}
	if r.dest.Discarded() {
		t.Fatal("abort discarded the image the binding test needs intact")
	}

	// Same destination object — intact image, unchanged generation — wearing
	// a different host identity: the binding check must fire on its own.
	r.dest.SetFaults(nil)
	r.dest.SetHostName("d2")
	repB, err := r.source(resumeCfg(ModeVanilla), nil).Resume(tok)
	if err != nil {
		t.Fatal(err)
	}
	rs := repB.Resume
	if rs == nil || !rs.FullFirstCopy {
		t.Fatalf("cross-destination resume trusted the token: %+v", rs)
	}
	if !strings.Contains(rs.Reason, "different destination") {
		t.Fatalf("reason = %q, want the destination-binding reason", rs.Reason)
	}
	if repB.TotalPagesSent < pages {
		t.Fatalf("full first copy sent %d < %d pages", repB.TotalPagesSent, pages)
	}
	r.verify(t, repB)
}
