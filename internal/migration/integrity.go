package migration

import (
	"errors"
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/perf"
)

// The end-to-end integrity plane. Every page payload crossing the link is
// digested at both ends: the source records the digest of what it exported,
// the destination recomputes one over what it actually received (so a
// payload corrupted in flight — the corrupt-page-stream fault site — lands
// in the destination's table with the wrong digest). Switchover then audits
// the two tables against each other while the VM is paused and repairs
// mismatches by bounded re-fetch; the lazy (post-copy) engine, whose pages
// go live at the destination immediately, verifies each fetch inline
// instead. Either way a corrupted transfer can complete only by being
// repaired — never silently.

// ErrIntegrity reports a switchover digest audit that could not be healed
// within Integrity.MaxRepairRounds: the destination's memory provably
// diverges from the source and the run aborts cleanly.
var ErrIntegrity = errors.New("migration: destination integrity verification failed")

// errPageCorrupt is the transient error the lazy engine's per-fetch
// verification raises on a digest mismatch; the retry machinery re-sends the
// page.
var errPageCorrupt = errors.New("migration: page digest mismatch at destination")

// integrityState is the source-side half of the integrity plane for one run.
type integrityState struct {
	dsink DigestSink
	// expect holds, per PFN, the digest of the payload the source last
	// handed to the sink (or, on a resumed run, the token digest of a
	// trusted page).
	expect []uint64
	// sent marks the pages expect is valid for: everything delivered this
	// run plus the trusted pages a ResumeToken vouched for.
	sent *mem.Bitmap
	// pendingRepair marks pages whose last verification failed; the next
	// verified delivery of such a page counts as a repair.
	pendingRepair *mem.Bitmap
	stats         IntegrityStats
}

// beginIntegrity resets the per-run integrity state. It requires the run's
// sink to be bound already; a sink without digests disables the plane (the
// engine cannot verify what it cannot ask about).
func (s *Source) beginIntegrity() {
	s.integ = nil
	ds, ok := s.sink.(DigestSink)
	if !ok {
		return
	}
	n := s.Dom.NumPages()
	s.integ = &integrityState{
		dsink:         ds,
		expect:        make([]uint64, n),
		sent:          mem.NewBitmap(n),
		pendingRepair: mem.NewBitmap(n),
	}
}

// corruptPayload returns a copy of payload with one bit flipped — same
// length, so the import succeeds and only the content (and therefore the
// digest) is wrong.
func corruptPayload(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := append([]byte(nil), payload...)
	out[len(out)-1] ^= 0x01
	return out
}

// wirePayload applies the corrupt-page-stream fault site to one delivery
// attempt and counts what it corrupted.
func (s *Source) wirePayload(p mem.PFN, payload []byte) []byte {
	if !s.Cfg.Faults.Fire(faults.SiteCorruptPage) {
		return payload
	}
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.pages_corrupted").Inc()
	}
	_ = p
	return corruptPayload(payload)
}

// recordExpected notes what the sink should now hold for p.
func (s *Source) recordExpected(p mem.PFN, payload []byte) {
	if s.integ == nil {
		return
	}
	s.integ.expect[p] = mem.PageDigest(payload)
	s.integ.sent.Set(p)
}

// verifyFetch is the lazy engine's inline check: immediately after a
// demand fetch or prefetch lands, compare the destination's recomputed
// digest against the source's expectation. A mismatch is transient —
// errPageCorrupt sends the retry machinery back for another attempt — and
// the eventual verified delivery is counted as a repair.
func (s *Source) verifyFetch(p mem.PFN) error {
	ig := s.integ
	if ig == nil || s.Cfg.Integrity.Disable {
		return nil
	}
	s.Cfg.Perf.Enter(perf.StageDigestAudit)
	defer s.Cfg.Perf.Exit()
	ig.stats.PagesAudited++
	got, ok := ig.dsink.PageDigestAt(p)
	if !ok || got != ig.expect[p] {
		// One mismatch episode per page: a retry corrupted again extends the
		// episode rather than opening a new one, so a completed run always
		// balances Mismatches == Repairs.
		if !ig.pendingRepair.Test(p) {
			ig.stats.Mismatches++
			if m := s.Cfg.Metrics; m != nil {
				m.Counter("migration.integrity_mismatches").Inc()
			}
		}
		ig.pendingRepair.Set(p)
		s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindIntegrityAudit, "fetch-digest-mismatch", nil,
			obs.Uint64("pfn", uint64(p)))
		return errPageCorrupt
	}
	if ig.pendingRepair.Test(p) {
		ig.pendingRepair.Clear(p)
		ig.stats.Repairs++
		if m := s.Cfg.Metrics; m != nil {
			m.Counter("migration.integrity_repairs").Inc()
		}
	}
	return nil
}

// lazyDeliver pushes page p's current content into the sink through the
// corrupt-page-stream site and verifies the destination's recomputed digest
// inline. A digest mismatch surfaces as the transient errPageCorrupt so the
// lazy engine's retry machinery re-sends the page; the verified re-delivery
// counts as a repair.
func (s *Source) lazyDeliver(p mem.PFN) error {
	payload := s.Dom.Store().Export(p)
	if err := s.sink.ReceivePage(p, s.wirePayload(p, payload)); err != nil {
		return err
	}
	s.recordExpected(p, payload)
	return s.verifyFetch(p)
}

// auditResident cross-checks the pages believed resident at a lazy
// switchover — hybrid warm sends and resume-trusted pages — against the
// expectation table, and drops every mismatch back into the to-fetch set: a
// corrupted warm send must not survive as resident. Dropped pages are marked
// pending repair, so the refetch that follows counts as a repair once it
// verifies.
func (s *Source) auditResident(resident *mem.Bitmap) {
	ig := s.integ
	if ig == nil || s.Cfg.Integrity.Disable || resident.Count() == 0 {
		return
	}
	s.Cfg.Perf.Enter(perf.StageDigestAudit)
	defer s.Cfg.Perf.Exit()
	ig.stats.AuditRounds++
	var bad []mem.PFN
	resident.Range(func(p mem.PFN) bool {
		ig.stats.PagesAudited++
		got, ok := ig.dsink.PageDigestAt(p)
		if !ok || got != ig.expect[p] {
			bad = append(bad, p)
		}
		return true
	})
	if len(bad) == 0 {
		return
	}
	ig.stats.Mismatches += uint64(len(bad))
	for _, p := range bad {
		resident.Clear(p)
		ig.pendingRepair.Set(p)
	}
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindIntegrityAudit, "switchover-audit", nil,
		obs.Int("mismatches", len(bad)))
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.integrity_mismatches").Add(int64(len(bad)))
	}
}

// auditIntegrity is the pre-copy engines' switchover digest audit, run with
// the VM paused after the stop-and-copy iteration and before resumption.
// Each round compares every sent (or token-trusted) page's expected digest
// against the destination's table and re-fetches the mismatches; repair
// traffic is folded into st so the report, ledger and metrics keep
// reconciling byte-for-byte. Exhausting Integrity.MaxRepairRounds fails the
// run with ErrIntegrity (the caller aborts cleanly).
func (s *Source) auditIntegrity(st *IterationStats, iter int) {
	ig := s.integ
	if ig == nil || s.Cfg.Integrity.Disable {
		return
	}
	// Repair traffic re-enters the codec and sink stages from inside this
	// one; self-time attribution keeps the accounts disjoint.
	s.Cfg.Perf.Enter(perf.StageDigestAudit)
	defer s.Cfg.Perf.Exit()
	stats := &ig.stats
	stats.PagesAudited += ig.sent.Count()
	span := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindIntegrityAudit, "integrity-audit",
		obs.Uint64("pages", ig.sent.Count()))
	rawWire := s.Dom.Store().WireSize()
	for round := 0; ; round++ {
		stats.AuditRounds++
		var bad []mem.PFN
		ig.sent.Range(func(p mem.PFN) bool {
			got, ok := ig.dsink.PageDigestAt(p)
			if !ok || got != ig.expect[p] {
				bad = append(bad, p)
			}
			return true
		})
		if len(bad) == 0 {
			break
		}
		stats.Mismatches += uint64(len(bad))
		if m := s.Cfg.Metrics; m != nil {
			m.Counter("migration.integrity_mismatches").Add(int64(len(bad)))
		}
		if round >= s.Cfg.Integrity.MaxRepairRounds {
			span.End(obs.Int("rounds", stats.AuditRounds), obs.Str("outcome", "exhausted"),
				obs.Int("unrepaired", len(bad)))
			s.fail(fmt.Errorf("%w: %d pages still mismatched after %d repair rounds",
				ErrIntegrity, len(bad), round))
			s.sealIntegrity()
			return
		}
		for _, p := range bad {
			payload := s.Dom.Store().Export(p)
			w, encodeCPU := s.codec.Encode(p, rawWire)
			var d time.Duration
			send := func() error {
				var err error
				d, err = s.Link.SendErr(w)
				return err
			}
			if err := s.withRetry("integrity-repair", send); err != nil {
				s.fail(err)
				span.End(obs.Str("outcome", "aborted"), obs.Str("error", err.Error()))
				s.sealIntegrity()
				return
			}
			if err := s.deliverPage(p, payload); err != nil {
				s.fail(err)
				span.End(obs.Str("outcome", "aborted"), obs.Str("error", err.Error()))
				s.sealIntegrity()
				return
			}
			st.PagesSent++
			st.BytesOnWire += w
			s.sentBytes += w
			s.report.TotalPagesSent++
			s.report.CPUTime += s.Cfg.PageCopyCost + encodeCPU
			s.Cfg.Ledger.PageSent(p, iter, w, ledger.ClassFinal)
			stats.Repairs++
			stats.RepairBytes += w
			if m := s.Cfg.Metrics; m != nil {
				m.Counter("migration.integrity_repairs").Inc()
			}
			s.advance(d)
		}
	}
	span.End(obs.Int("rounds", stats.AuditRounds),
		obs.Uint64("mismatches", stats.Mismatches), obs.Uint64("repairs", stats.Repairs))
	s.sealIntegrity()
}

// sealIntegrity publishes the integrity account (with the destination's final
// rolling digest) into the report.
func (s *Source) sealIntegrity() {
	if s.integ == nil || s.Cfg.Integrity.Disable {
		return
	}
	s.integ.stats.RollingDigest = s.integ.dsink.RollingDigest()
	ic := s.integ.stats
	s.report.Integrity = &ic
}
