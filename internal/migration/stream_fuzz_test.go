package migration

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"javmm/internal/mem"
	"javmm/internal/netsim"
)

// validStream encodes a small well-formed page stream: two pages, an
// iteration boundary, one more page, end-of-stream.
func validStream(tb testing.TB) []byte {
	tb.Helper()
	src := mem.NewByteStore(8)
	for p := mem.PFN(0); p < 3; p++ {
		src.Write(p)
	}
	var buf bytes.Buffer
	w := netsim.NewPageWriter(&buf)
	for _, p := range []mem.PFN{0, 1} {
		if err := w.WritePage(p, src.Export(p)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.EndIteration(); err != nil {
		tb.Fatal(err)
	}
	if err := w.WritePage(2, src.Export(2)); err != nil {
		tb.Fatal(err)
	}
	if err := w.EndStream(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReceiveIntoStore feeds arbitrary byte streams — seeded with valid
// encodings plus truncated, duplicated and bit-flipped mutations — into the
// real destination receive loop. The contract under attack: a malformed
// stream must produce an error, never a panic, and never an allocation
// beyond the protocol's frame-payload bound.
func FuzzReceiveIntoStore(f *testing.F) {
	valid := validStream(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                         // truncated mid-stream
	f.Add(append(append([]byte{}, valid...), valid...)) // duplicated (trailing junk)
	flipped := append([]byte{}, valid...)
	flipped[0] ^= 0xff // corrupt the first frame kind
	f.Add(flipped)
	flipped2 := append([]byte{}, valid...)
	flipped2[9] ^= 0x80 // corrupt a length byte: huge declared payload
	f.Add(flipped2)
	// A header declaring a payload beyond the 1 MiB protocol bound.
	huge := make([]byte, 13)
	huge[0] = netsim.FramePage
	binary.BigEndian.PutUint32(huge[9:13], 1<<30)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{netsim.FrameEndStream})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := mem.NewByteStore(8)
		pages, err := ReceiveIntoStore(bytes.NewReader(data), store)
		// Every applied page consumed at least a 13-byte header plus the
		// 8+PageSize payload ByteStore.Import insists on; anything more
		// means the receive loop invented frames.
		frameCost := uint64(13 + 8 + mem.PageSize)
		if max := uint64(len(data))/frameCost + 1; pages > max {
			t.Fatalf("%d pages applied from %d input bytes", pages, len(data))
		}
		if err == nil {
			// Clean termination requires an end-of-stream frame on the wire.
			if !bytes.Contains(data, []byte{netsim.FrameEndStream}) {
				t.Fatalf("nil error from a stream with no end-of-stream marker")
			}
		}
	})
}

func TestReceiveIntoStoreOversizedPayloadHeader(t *testing.T) {
	// A corrupt header declaring a 1 GiB payload must be refused before
	// allocation, not swallowed into a huge make([]byte, n).
	frame := make([]byte, 13)
	frame[0] = netsim.FramePage
	binary.BigEndian.PutUint32(frame[9:13], 1<<30)
	_, err := ReceiveIntoStore(bytes.NewReader(frame), mem.NewByteStore(1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized payload header not refused: %v", err)
	}
}

func TestReceiveIntoStoreDuplicatedFramesAreTrailingJunk(t *testing.T) {
	// A duplicated stream ends at the first end-of-stream frame; the copy
	// behind it is unread, and the pages applied match the first stream.
	valid := validStream(t)
	doubled := append(append([]byte{}, valid...), valid...)
	store := mem.NewByteStore(8)
	pages, err := ReceiveIntoStore(bytes.NewReader(doubled), store)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 3 {
		t.Fatalf("applied %d pages, want 3 (duplicate is past end-of-stream)", pages)
	}
}
