// Package migration implements the live-migration engines: Xen's iterative
// pre-copy dirty-page transfer loop, extended with the transfer-bitmap
// consultation that makes it application-assisted (paper §3.3.3), the
// post-copy baseline of paper §2, and a hybrid of the two.
//
// The pre-copy engine reproduces xc_domain_save's structure:
//
//   - Iteration 1 sends every page of the VM.
//   - Each following iteration sends the pages dirtied during the previous
//     iteration (read-and-clear of the hypervisor's log-dirty bitmap).
//   - Within an iteration, a page that has already been re-dirtied in the
//     current round is skipped — it would be resent anyway (the
//     "skipped (already dirtied)" series of Figure 9).
//   - Migration enters the stop-and-copy phase when the pending dirty set is
//     small, when the iteration cap (Xen default: 30) is reached, or when a
//     configured traffic cap is exceeded.
//
// In application-assisted mode the engine additionally skips any page whose
// transfer bit is cleared, coordinates the pre-suspension handshake with the
// in-guest LKM, and charges the final bitmap update to downtime.
//
// The engine itself is a thin orchestrator over the pluggable stages of
// stages.go (SkipPolicy, WireCodec, StopPolicy, SuspensionProtocol,
// PageSink); every Mode is a composition of stage implementations.
package migration

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
	"javmm/internal/simclock"
)

// Source drives a migration from the source host.
type Source struct {
	Dom   *hypervisor.Domain
	LKM   *guestos.LKM // required in ModeAppAssisted (unless Protocol is set)
	Link  *netsim.Link
	Clock *simclock.Clock
	Exec  GuestExecutor // may be nil for an idle guest
	Dest  *Destination
	Cfg   Config
	// GuestFree reports whether a frame is on the guest kernel's free list;
	// required when Cfg.SkipFreePages is set (typically
	// guest.Frames.Allocated negated).
	GuestFree func(p mem.PFN) bool
	// HintFor returns a page's compression hint (guestos.Hint*); required
	// when Cfg.HintedCompression is set (typically the LKM's HintFor).
	HintFor func(p mem.PFN) uint8

	// Stage overrides. Each nil field selects the default implementation
	// derived from Cfg (see stages.go): custom engines and future assisted
	// applications plug in here without touching the orchestrator.
	Skip     SkipPolicy
	Codec    WireCodec
	Stop     StopPolicy
	Protocol SuspensionProtocol // ModeAppAssisted only; default LKM.Protocol()
	Sink     PageSink           // default: Dest

	// mutable state during one migration
	report    *Report
	sentBytes uint64
	startedAt time.Duration
	aborted   bool
	// failure is the permanent error that aborted the run (nil for a plain
	// cancel); rng drives the retry jitter (seeded, deterministic).
	failure error
	rng     *rand.Rand
	// skippedEver accumulates every page skipped by application consent,
	// maintained only while a degradation to vanilla is still possible;
	// degradePending is its snapshot after a downgrade — pages that must be
	// transferred after all, cleared as they are sent.
	skippedEver    *mem.Bitmap
	degradePending *mem.Bitmap

	// stages bound for the current run
	skip  SkipPolicy
	codec WireCodec
	stop  StopPolicy
	proto SuspensionProtocol
	sink  PageSink
	// residentTrack, when non-nil, records every page the sink receives —
	// the hybrid engine's warm phase uses it to seed post-copy residency.
	residentTrack *mem.Bitmap
	// integ is the run's integrity-plane state (nil when the sink carries no
	// digests); pendingResume is the token a Source.Resume call is honouring;
	// resumeRefetch marks pages whose next send the ledger tags
	// resume-refetch.
	integ         *integrityState
	pendingResume *ResumeToken
	resumeRefetch *mem.Bitmap
}

// Errors returned by the migration engines.
var (
	ErrNoSource = errors.New("migration: source domain required")
	ErrNoLKM    = errors.New("migration: app-assisted mode requires an LKM")
	ErrNoDest   = errors.New("migration: destination required")
	ErrNoLink   = errors.New("migration: link required")
	ErrNoClock  = errors.New("migration: clock required")
	// ErrCancelled reports a migration aborted by CancelAfter or
	// ShouldCancel. Migrate returns it together with the partial report;
	// the VM keeps running at the source.
	ErrCancelled = errors.New("migration: cancelled")
	// ErrSuspensionTimeout reports that the guest never became
	// suspension-ready within Config.SuspensionBackstop after the prepare
	// notification.
	ErrSuspensionTimeout = errors.New("migration: guest never became suspension-ready")
)

// Migrate runs the migration selected by Cfg.Mode and returns its report.
// The source domain is left unpaused ("resumed at the destination"): in this
// simulator the domain object represents the VM wherever it runs, while Dest
// holds the destination host's copy of its memory for verification.
func (s *Source) Migrate() (*Report, error) {
	switch s.Cfg.Mode {
	case ModePostCopy:
		return s.MigratePostCopy()
	case ModeHybrid:
		return s.MigrateHybrid()
	}
	return s.migratePreCopy()
}

// validate checks the pieces every engine needs.
func (s *Source) validate() error {
	switch {
	case s.Dom == nil:
		return ErrNoSource
	case s.Dest == nil && s.Sink == nil:
		return ErrNoDest
	case s.Link == nil:
		return ErrNoLink
	case s.Clock == nil:
		return ErrNoClock
	}
	return nil
}

// checkDestSize rejects a destination whose memory does not match the
// source's.
func (s *Source) checkDestSize() error {
	if s.Dest != nil && s.Dest.Store.NumPages() != s.Dom.NumPages() {
		return fmt.Errorf("migration: destination has %d pages, source %d",
			s.Dest.Store.NumPages(), s.Dom.NumPages())
	}
	return nil
}

// migratePreCopy is the iterative pre-copy orchestrator (ModeVanilla and
// ModeAppAssisted).
func (s *Source) migratePreCopy() (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Cfg.Mode == ModeAppAssisted && s.LKM == nil && s.Protocol == nil {
		return nil, ErrNoLKM
	}
	if err := s.checkDestSize(); err != nil {
		return nil, err
	}
	s.Cfg.FillDefaults()
	s.report = &Report{Mode: s.Cfg.Mode}
	s.sentBytes = 0
	s.aborted = false
	s.Cfg.Ledger.Begin(s.Dom.NumPages())
	s.beginRecovery()

	// The legacy OnIteration callback rides the event bus: when a tracer is
	// configured it becomes a subscription to the per-iteration stats
	// events, seeing exactly the data every other subscriber sees.
	if s.Cfg.OnIteration != nil && s.Cfg.Tracer != nil {
		cancel := s.Cfg.Tracer.Subscribe(func(e obs.Event) {
			if st, ok := e.Data.(IterationStats); ok {
				s.Cfg.OnIteration(st)
			}
		})
		defer cancel()
	}
	cancelProgress := s.subscribeProgress()
	defer cancelProgress()
	runSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindMigration,
		"migrate "+s.Cfg.Mode.String(), obs.Str("mode", s.Cfg.Mode.String()))
	defer runSpan.End()

	start := s.Clock.Now()
	s.startedAt = start
	if err := s.Dom.EnableLogDirty(); err != nil {
		return nil, err
	}
	defer s.Dom.DisableLogDirty()

	// The suspension protocol is the app-assisted workflow's handle on the
	// guest; vanilla runs have none.
	s.proto = nil
	var transfer *mem.Bitmap
	if s.Cfg.Mode == ModeAppAssisted {
		s.proto = s.Protocol
		if s.proto == nil {
			s.proto = s.LKM.Protocol()
		}
		// Wrap before Begin so the whole handshake, first call included, is
		// attributed to the suspension-protocol stage.
		s.proto = profileProto(s.proto, s.Cfg.Perf)
		transfer = s.proto.Begin()
	}
	s.bindStages(transfer)
	s.beginIntegrity()

	if f := s.Cfg.ThrottleFactor; f > 0 && f < 1 {
		if th, ok := s.Exec.(Throttleable); ok {
			th.SetThrottle(f)
			s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindThrottle, "throttle", nil,
				obs.Float("factor", f))
			defer func() {
				th.SetThrottle(1.0)
				s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindThrottle, "throttle", nil,
					obs.Float("factor", 1.0))
			}()
		}
	}

	n := s.Dom.NumPages()
	toSend := mem.NewBitmap(n)
	toSend.SetAll() // iteration 1: all pages
	if s.pendingResume != nil {
		// A resumed run's first iteration covers only the pages the token
		// cannot prove intact at the destination.
		s.planResume(s.pendingResume, toSend)
	}
	if s.proto != nil {
		// Track consent-skipped pages in every assisted run: they are the
		// pages a degraded run — or the LKM's straggler fallback, which
		// restores an unready application's areas to full transfer — must
		// transfer after all (their staleness is invisible to dirty
		// tracking, which was cleared while they were being skipped).
		s.skippedEver = mem.NewBitmap(n)
	}

	s.emitProgress(ProgressStart, 0, toSend.Count(), 0, 0)

	var everDirty *mem.Bitmap
	if s.Cfg.ConservativeLastIter {
		everDirty = mem.NewBitmap(n)
	}
	newRound := func() {
		s.Dom.PeekAndClear(toSend)
		if everDirty != nil {
			everDirty.Or(toSend)
		}
	}

	abort := func() (*Report, error) { return s.abortRun(start) }

	iter := 0
	for {
		// Live pre-copy rounds until the stop policy fires.
		for {
			iter++
			st := s.runIteration(iter, toSend, false)
			s.report.Iterations = append(s.report.Iterations, st)
			s.notifyIteration(st)
			if s.aborted {
				return abort()
			}
			if s.stop.Stop(iter, st, s.sentBytes, s.Dom.MemoryBytes()) {
				break
			}
			newRound()
		}
		if s.proto == nil {
			// Vanilla semantics — native or degraded — go straight to
			// stop-and-copy.
			break
		}

		// Pre-suspension handshake (app-assisted): notify the guest, run one
		// more live round, then wait — without starting new dirty rounds —
		// until the applications are suspension-ready and the final bitmap
		// update is done.
		prepStart := s.Clock.Now()
		// The span closes on the success path below with its outcome attrs;
		// every early return closes it explicitly first (double-closing is a
		// recorded tracer misuse, so no backstop defer).
		prepSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindPrepare, "prepare-suspension")
		s.emitProgress(ProgressPrepare, iter, 0, 0, 0)
		s.proto.EnterLastIter()
		iter++
		newRound()
		st := s.runIteration(iter, toSend, false)
		if s.aborted {
			prepSpan.End()
			return abort()
		}
		// The LKM's PrepareTimeout bounds this wait; the engine adds a hard
		// backstop against a misconfigured (disabled) timeout. With fault
		// injection configured the backstop instead degrades the run to
		// vanilla pre-copy (§4.2): a wedged handshake must not wedge the VM.
		waitDeadline := s.Clock.Now() + s.Cfg.SuspensionBackstop
		timedOut := false
		for !s.proto.Ready() {
			if s.cancelRequested() {
				prepSpan.End()
				return abort()
			}
			if s.Clock.Now() >= waitDeadline {
				if !s.degradeEnabled() {
					prepSpan.End()
					return nil, ErrSuspensionTimeout
				}
				timedOut = true
				break
			}
			s.advance(s.Cfg.IdleQuantum)
		}
		// The second-last iteration's duration includes the wait for the
		// workload to reach a Safepoint and finish the enforced GC
		// (Figure 8(b)) — or, on a timeout, the exhausted backstop.
		st.Duration = s.Clock.Now() - st.Start
		s.report.Iterations = append(s.report.Iterations, st)
		s.notifyIteration(st)
		s.report.PrepareWait = s.Clock.Now() - prepStart
		if timedOut {
			prepSpan.End(obs.Str("outcome", "degraded"))
			s.degradeToVanilla("suspension handshake timed out")
			// Fold the next dirty round in, then every page ever skipped by
			// application consent and not sent since: with the handshake dead
			// their content is only at the source, and vanilla semantics
			// promise the destination all of it.
			newRound()
			toSend.Or(s.degradePending)
			continue
		}
		s.report.FinalUpdate, s.report.Fallbacks = s.proto.Outcome()
		// The final bitmap update runs with applications held; charge its
		// (sub-millisecond) cost before pausing the VM.
		fuSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindFinalUpdate, "final-update")
		s.Clock.Advance(s.report.FinalUpdate)
		fuSpan.End(obs.Dur("duration", s.report.FinalUpdate))
		prepSpan.End(obs.Dur("prepare_wait", s.report.PrepareWait),
			obs.Int("fallbacks", s.report.Fallbacks))
		break
	}

	// Stop-and-copy.
	s.report.FinalTransfer = s.skip.FinalTransfer(n)
	s.Dom.Pause()
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindSuspend, "vm-suspend", nil)
	pausedSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindVMPaused, "vm-paused")
	pauseStart := s.Clock.Now()
	s.Dom.PeekAndClear(toSend)
	if everDirty != nil {
		// Conservative mode: stop-and-copy considers every page dirtied
		// at any point during migration.
		toSend.Or(everDirty)
	}
	if s.degradePending != nil {
		// Degraded run: consent-skipped pages not sent since must still
		// move (PeekAndClear overwrote the set, so re-fold them here).
		toSend.Or(s.degradePending)
	}
	if s.report.Fallbacks > 0 && s.skippedEver != nil {
		// Straggler fallback: the LKM restored unready applications' skip
		// areas to full transfer, but pages skipped in earlier rounds need
		// not be dirty, so dirty tracking alone would leave them behind.
		// Fold every consent-skipped page not sent since back in; the live
		// transfer bitmap re-filters whatever remains legitimately
		// skippable (ready applications' areas).
		toSend.Or(s.skippedEver)
	}
	iter++
	st := s.runIteration(iter, toSend, true)
	if !s.aborted {
		// End-to-end digest audit while the VM is still paused: repair
		// traffic folds into the stop-and-copy iteration (and its downtime)
		// before the stats are published anywhere.
		s.auditIntegrity(&st, iter)
		st.Duration = s.Clock.Now() - st.Start
	}
	s.report.Iterations = append(s.report.Iterations, st)
	s.notifyIteration(st)
	s.report.LastIterBytes = st.BytesOnWire
	if s.aborted {
		// A permanent failure during stop-and-copy (a crashed destination,
		// an unhealable integrity audit) aborts even here: the source
		// resumes as if never paused.
		pausedSpan.End()
		return abort()
	}

	// Resumption: reconnect devices, activate at destination.
	resSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindResumption, "resumption")
	s.Clock.Advance(s.Cfg.ResumptionTime)
	resSpan.End()
	s.report.Resumption = s.Cfg.ResumptionTime
	s.report.VMDowntime = s.Clock.Now() - pauseStart
	s.Dom.Unpause()
	pausedSpan.End(obs.Dur("downtime", s.report.VMDowntime))
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindResume, "vm-resume", nil)
	s.emitProgress(ProgressDone, iter, 0, 0, 0)

	if s.proto != nil {
		s.proto.Resumed()
	}

	s.report.TotalTime = s.Clock.Now() - start
	return s.report, nil
}

// iterationName labels an iteration in traces and progress output.
func iterationName(index int, last bool) string {
	if last {
		return "stop-and-copy"
	}
	return fmt.Sprintf("iteration %d", index)
}

// notifyIteration streams a completed iteration to the event bus (which
// carries the OnIteration subscription when a tracer is configured) and
// accumulates the iteration's counters. Every iteration appended to the
// report passes through here exactly once, so the counters reconcile with
// the report's sums.
func (s *Source) notifyIteration(st IterationStats) {
	if t := s.Cfg.Tracer; t != nil {
		t.Emit(obs.TrackMigration, obs.KindIterationStats, iterationName(st.Index, st.Last), st,
			obs.Int("index", st.Index),
			obs.Bool("last", st.Last),
			obs.Dur("duration", st.Duration),
			obs.Uint64("pages_considered", st.PagesConsidered),
			obs.Uint64("pages_sent", st.PagesSent),
			obs.Uint64("bytes_on_wire", st.BytesOnWire),
			obs.Uint64("pages_skipped_dirty", st.PagesSkippedDirty),
			obs.Uint64("pages_skipped_bitmap", st.PagesSkippedBitmap),
			obs.Uint64("pages_skipped_free", st.PagesSkippedFree),
			obs.Uint64("pages_dirtied_during", st.PagesDirtiedDuring))
	} else if s.Cfg.OnIteration != nil {
		s.Cfg.OnIteration(st)
	}
	// Each iteration also yields a progress point: the pages dirtied while a
	// live round ran are exactly the next round's workload, so they are the
	// outstanding estimate the ETA races against.
	phase := ProgressPreCopy
	remaining := st.PagesDirtiedDuring
	if st.Last {
		remaining = 0
		phase = ProgressStopAndCopy
		if s.report.PostCopy != nil {
			phase = ProgressPostCopy
		}
	}
	s.emitProgress(phase, st.Index, remaining, st.DirtyRate(), st.TransferRate())
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.iterations").Inc()
		m.Counter("migration.pages_examined").Add(int64(st.PagesConsidered))
		m.Counter("migration.pages_sent").Add(int64(st.PagesSent))
		m.Counter("migration.bytes_on_wire").Add(int64(st.BytesOnWire))
		m.Counter("migration.pages_skipped_dirty").Add(int64(st.PagesSkippedDirty))
		m.Counter("migration.pages_skipped_bitmap").Add(int64(st.PagesSkippedBitmap))
		m.Counter("migration.pages_skipped_free").Add(int64(st.PagesSkippedFree))
		m.Counter("migration.pages_dirtied").Add(int64(st.PagesDirtiedDuring))
	}
}

// cancelRequested reports whether the migration should abort now.
func (s *Source) cancelRequested() bool {
	if s.Cfg.CancelAfter > 0 && s.Clock.Now()-s.startedAt >= s.Cfg.CancelAfter {
		return true
	}
	return s.Cfg.ShouldCancel != nil && s.Cfg.ShouldCancel()
}

// advance moves virtual time forward by d, running the guest if it is not
// paused.
func (s *Source) advance(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Exec != nil && !s.Dom.Paused() {
		s.Exec.Run(d)
		return
	}
	s.Clock.Advance(d)
}

// sendBulk moves n payload bytes over the link. On a plain link it is
// SendErr: the caller owns the clock and pays the returned duration itself
// (elapsed=false), which keeps every single-migration run byte-identical.
// On an arbitrated fabric port the transfer contends with every other tenant
// of its path: sendBulk blocks until completion — cooperatively under a
// scheduler, so other engines and guests run meanwhile — and returns the
// contended duration with elapsed=true, the clock having already moved.
func (s *Source) sendBulk(n uint64) (d time.Duration, elapsed bool, err error) {
	if !s.Link.Arbitrated() {
		d, err = s.Link.SendErr(n)
		return d, false, err
	}
	tr, err := s.Link.Transfer(n)
	if err != nil {
		return 0, false, err
	}
	d, err = tr.Wait()
	return d, true, err
}

// runIteration scans the to-send set once, pushing transferable pages to the
// sink in chunks and interleaving guest execution. The skip policy and wire
// codec bound for this run decide what moves and at what cost.
func (s *Source) runIteration(index int, toSend *mem.Bitmap, last bool) IterationStats {
	st := IterationStats{
		Index:           index,
		Start:           s.Clock.Now(),
		Last:            last,
		PagesConsidered: toSend.Count(),
	}
	span := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindIteration,
		iterationName(index, last),
		obs.Int("index", index), obs.Uint64("pages_considered", st.PagesConsidered))
	dirtyBefore := s.Dom.DirtyEvents()

	rawWire := s.Dom.Store().WireSize()

	type pagePayload struct {
		pfn     mem.PFN
		payload []byte
		wire    uint64
	}
	chunk := make([]pagePayload, 0, s.Cfg.ChunkPages)
	var chunkWire uint64

	sendClass := ledger.ClassLive
	if last {
		sendClass = ledger.ClassFinal
	}

	flush := func() {
		if len(chunk) == 0 {
			return
		}
		fail := func(cs *obs.Span, err error) {
			// Permanent failure: the undelivered remainder was never
			// accounted (report, ledger and metrics all count at delivery),
			// so totals keep reconciling on the aborted run.
			s.fail(err)
			cs.End(obs.Str("error", err.Error()))
			chunk = chunk[:0]
			chunkWire = 0
		}
		cs := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindChunk, "chunk",
			obs.Int("pages", len(chunk)), obs.Uint64("wire_bytes", chunkWire))
		var d time.Duration
		var elapsed bool
		send := func() error {
			var err error
			d, elapsed, err = s.sendBulk(chunkWire)
			return err
		}
		if err := send(); err != nil {
			if err = s.retryAfter("chunk-send", err, s.advance, send); err != nil {
				fail(cs, err)
				return
			}
		}
		for _, pp := range chunk {
			if err := s.deliverPage(pp.pfn, pp.payload); err != nil {
				fail(cs, err)
				return
			}
			st.PagesSent++
			st.BytesOnWire += pp.wire
			s.sentBytes += pp.wire
			s.report.TotalPagesSent++
			s.report.CPUTime += s.Cfg.PageCopyCost
			s.Cfg.Ledger.PageSent(pp.pfn, index, pp.wire, s.sendClassFor(pp.pfn, sendClass))
			if s.residentTrack != nil {
				s.residentTrack.Set(pp.pfn)
			}
			if s.skippedEver != nil {
				s.skippedEver.Clear(pp.pfn)
			}
			if s.degradePending != nil {
				s.degradePending.Clear(pp.pfn)
			}
		}
		chunk = chunk[:0]
		chunkWire = 0
		if !elapsed {
			s.advance(d)
		}
		cs.End()
		// Cancellation is honoured at chunk boundaries during live
		// iterations; stop-and-copy always runs to completion.
		if !last && s.cancelRequested() {
			s.aborted = true
		}
	}
	toSend.Range(func(p mem.PFN) bool {
		if s.aborted {
			return false
		}
		s.report.CPUTime += s.Cfg.PageExamineCost
		switch r := s.skip.Skip(p); r {
		case SkipBitmap:
			st.PagesSkippedBitmap++
			s.Cfg.Ledger.PageSkipped(p, index, rawWire, r.ledgerReason())
			if s.skippedEver != nil {
				s.skippedEver.Set(p)
			}
			return true
		case SkipFree:
			st.PagesSkippedFree++
			s.Cfg.Ledger.PageSkipped(p, index, rawWire, r.ledgerReason())
			if s.skippedEver != nil {
				s.skippedEver.Set(p)
			}
			return true
		}
		if !last && s.Dom.DirtyNow(p) {
			// Already re-dirtied this round: sending now would be wasted —
			// the next round resends it (Figure 9, "already dirtied").
			st.PagesSkippedDirty++
			s.Cfg.Ledger.PageSkipped(p, index, rawWire, ledger.SkipDirty)
			return true
		}
		w, encodeCPU := s.codec.Encode(p, rawWire)
		chunkWire += w
		s.report.CPUTime += encodeCPU
		// Provenance and iteration counters both account at delivery time
		// (inside flush): a chunk lost to a permanent failure is then
		// invisible to report, ledger and metrics alike, so the three keep
		// reconciling even on an aborted run.
		chunk = append(chunk, pagePayload{pfn: p, payload: s.Dom.Store().Export(p), wire: w})
		if uint64(len(chunk)) >= s.Cfg.ChunkPages {
			flush()
		}
		return true
	})
	flush()

	st.Duration = s.Clock.Now() - st.Start
	st.PagesDirtiedDuring = s.Dom.DirtyEvents() - dirtyBefore
	span.End(obs.Uint64("pages_sent", st.PagesSent), obs.Uint64("bytes_on_wire", st.BytesOnWire))
	return st
}
