// Package migration implements the pre-copy live-migration engine: Xen's
// iterative dirty-page transfer loop, extended with the transfer-bitmap
// consultation that makes it application-assisted (paper §3.3.3).
//
// The engine reproduces xc_domain_save's structure:
//
//   - Iteration 1 sends every page of the VM.
//   - Each following iteration sends the pages dirtied during the previous
//     iteration (read-and-clear of the hypervisor's log-dirty bitmap).
//   - Within an iteration, a page that has already been re-dirtied in the
//     current round is skipped — it would be resent anyway (the
//     "skipped (already dirtied)" series of Figure 9).
//   - Migration enters the stop-and-copy phase when the pending dirty set is
//     small, when the iteration cap (Xen default: 30) is reached, or when a
//     configured traffic cap is exceeded.
//
// In application-assisted mode the engine additionally skips any page whose
// transfer bit is cleared, coordinates the pre-suspension handshake with the
// in-guest LKM, and charges the final bitmap update to downtime.
package migration

import (
	"errors"
	"fmt"
	"time"

	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/obs"
	"javmm/internal/simclock"
)

// Mode selects the migration algorithm.
type Mode int

const (
	// ModeVanilla is unmodified Xen pre-copy: application-agnostic.
	ModeVanilla Mode = iota
	// ModeAppAssisted consults the LKM's transfer bitmap and runs the
	// collaborative workflow of paper §3.3.5.
	ModeAppAssisted
)

// String names the mode as in the paper's evaluation.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "xen"
	case ModeAppAssisted:
		return "javmm"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String: it resolves the mode names the
// CLIs and experiment configs use ("xen", "javmm").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "xen":
		return ModeVanilla, nil
	case "javmm":
		return ModeAppAssisted, nil
	default:
		return 0, fmt.Errorf("migration: unknown mode %q (want xen or javmm)", s)
	}
}

// GuestExecutor runs guest activity for a span of virtual time. The
// implementation must advance the source clock by exactly d, performing the
// guest's memory writes, GCs and op completions along the way. This is the
// interleaving that races the guest's dirtying rate against the migration
// link (Figure 1).
type GuestExecutor interface {
	Run(d time.Duration)
}

// Throttleable is optionally implemented by executors that support Clark-
// style write throttling (paper §2: slow down dirtying by stalling write-
// heavy processes). Factor 1.0 is full speed.
type Throttleable interface {
	SetThrottle(factor float64)
}

// Config tunes the engine. The zero value plus FillDefaults matches the
// paper's testbed: Xen defaults over gigabit Ethernet.
type Config struct {
	Mode Mode

	// MaxIterations forces stop-and-copy after this many live iterations
	// (Xen default 30, the cap the paper's Figure 8(a) run hits).
	MaxIterations int
	// DirtyPageThreshold enters stop-and-copy once the pending dirty set
	// (intersected with the transfer bitmap) is at most this many pages
	// (Xen uses 50).
	DirtyPageThreshold uint64
	// MaxTrafficFactor aborts pre-copy once total traffic exceeds this
	// multiple of VM memory. Xen's xc_domain_save default is 3; zero
	// selects that default and a negative value disables the cap.
	MaxTrafficFactor float64
	// ChunkPages is the transfer granularity at which the engine
	// interleaves guest execution with page pushes. Default 1024 pages
	// (4 MiB ≈ 34 ms on gigabit).
	ChunkPages uint64
	// ResumptionTime models reconnecting devices and activating the VM at
	// the destination; the paper measures ~170 ms (§5.3).
	ResumptionTime time.Duration

	// PageExamineCost and PageCopyCost model the daemon's CPU time per
	// page considered and per page actually sent; used for the §5.3 CPU
	// comparison (X1).
	PageExamineCost time.Duration
	PageCopyCost    time.Duration

	// Compress enables the §6 extension: pages that are not skipped are
	// compressed before transmission. CompressionRatio is the modelled
	// wire-size factor in (0,1]; CompressCostPerPage is daemon CPU per
	// compressed page.
	Compress            bool
	CompressionRatio    float64
	CompressCostPerPage time.Duration

	// DeltaCompression enables the XBZRLE-style baseline of Svärd et al.
	// (paper §2): the daemon keeps a cache of previously-sent pages and
	// transmits only the delta when a page is resent. Attacks exactly the
	// repeated-resend problem JAVMM removes at the source — ablation X13
	// compares them. DeltaRatio is the modelled wire factor for a resend
	// (default 0.15); DeltaCostPerPage is the daemon CPU per delta encode.
	// Report.DeltaCacheBytes carries the daemon-side cache cost (one full
	// page copy per VM page).
	DeltaCompression bool
	DeltaRatio       float64
	DeltaCostPerPage time.Duration

	// HintedCompression refines Compress with the per-page hints the LKM
	// collects from applications (§6: "multiple bits per VM memory page to
	// indicate the suitable compression methods"). Requires Source.HintFor.
	// Hinted-strong pages compress harder, hinted-none pages go raw with
	// zero CPU.
	HintedCompression bool

	// ThrottleFactor, if in (0,1), applies Clark-style write throttling to
	// the guest while migration cannot keep up with dirtying (baseline of
	// paper §2).
	ThrottleFactor float64

	// IdleQuantum paces the engine's waiting loop while the LKM prepares
	// applications for suspension.
	IdleQuantum time.Duration

	// ConservativeLastIter makes the stop-and-copy iteration consider
	// every page dirtied at any point during migration, not just the
	// final round. Required when the LKM runs its full-rewalk final
	// update (guestos.LKMConfig.FinalUpdateRewalk), which learns about
	// shrunk skip-over areas only at the end (paper §3.3.4, the deferred
	// alternative design).
	ConservativeLastIter bool

	// OnIteration, if non-nil, is invoked after each completed iteration
	// with its statistics — live progress for tools (like `xl migrate`'s
	// console output). It is the legacy form of the event bus below: with a
	// Tracer configured the engine registers OnIteration as a subscription
	// to the obs.KindIterationStats events it emits, so both surfaces see
	// identical data.
	OnIteration func(IterationStats)

	// Tracer, if non-nil, receives the engine's structured trace: a span
	// per migration run, per iteration and per page-chunk push, the
	// pre-suspension handshake, the final bitmap update, suspension and
	// resumption, and an instant event per completed iteration carrying
	// IterationStats as its Data payload. All timestamps are virtual.
	Tracer *obs.Tracer

	// Metrics, if non-nil, accumulates the engine's counters
	// (migration.pages_examined, .pages_sent, .pages_skipped_*,
	// .bytes_on_wire, ...). The totals reconcile exactly with the Report of
	// the same run.
	Metrics *obs.Metrics

	// SkipFreePages enables the OS-assisted baseline of Koto et al.
	// (paper §1/§2): pages the guest kernel holds on its free list are not
	// transferred. Requires Source.GuestFree. The paper's assessment —
	// "skipping free pages may only benefit the migration of
	// lightly-loaded VMs" — is what ablation X12 measures.
	SkipFreePages bool

	// CancelAfter aborts the migration once it has run for this much
	// virtual time without reaching stop-and-copy. Pre-copy is naturally
	// abortable: the source VM has kept running throughout, so an abort
	// just tears down dirty tracking and tells the guest the migration is
	// over. Zero disables the deadline.
	CancelAfter time.Duration
	// ShouldCancel, if non-nil, is polled at chunk boundaries; returning
	// true aborts like CancelAfter.
	ShouldCancel func() bool
}

// FillDefaults populates unset fields with the paper's testbed defaults.
func (c *Config) FillDefaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 30
	}
	if c.DirtyPageThreshold == 0 {
		c.DirtyPageThreshold = 50
	}
	if c.MaxTrafficFactor == 0 {
		c.MaxTrafficFactor = 3.0
	}
	if c.ChunkPages == 0 {
		c.ChunkPages = 1024
	}
	if c.ResumptionTime == 0 {
		c.ResumptionTime = 170 * time.Millisecond
	}
	if c.PageExamineCost == 0 {
		c.PageExamineCost = 200 * time.Nanosecond
	}
	if c.PageCopyCost == 0 {
		c.PageCopyCost = 2 * time.Microsecond
	}
	if c.Compress && c.CompressionRatio == 0 {
		c.CompressionRatio = 0.45
	}
	if c.Compress && c.CompressCostPerPage == 0 {
		c.CompressCostPerPage = 8 * time.Microsecond
	}
	if c.DeltaCompression && c.DeltaRatio == 0 {
		c.DeltaRatio = 0.15
	}
	if c.DeltaCompression && c.DeltaCostPerPage == 0 {
		c.DeltaCostPerPage = 5 * time.Microsecond
	}
	if c.IdleQuantum == 0 {
		c.IdleQuantum = time.Millisecond
	}
}

// IterationStats describes one migration iteration — the boxes of Figure 8
// and the stacked bars of Figure 9.
type IterationStats struct {
	Index    int
	Start    time.Duration // virtual time at iteration start
	Duration time.Duration
	Last     bool // the stop-and-copy iteration

	PagesConsidered    uint64 // size of the round's to-send set
	PagesSent          uint64
	BytesOnWire        uint64
	PagesSkippedDirty  uint64 // re-dirtied mid-round, deferred to next round
	PagesSkippedBitmap uint64 // transfer bit cleared (e.g. young gen)
	PagesSkippedFree   uint64 // on the guest's free list (SkipFreePages)
	PagesDirtiedDuring uint64 // new dirtying while this iteration ran
}

// TransferRate returns the iteration's payload rate in bytes/sec.
func (s IterationStats) TransferRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesOnWire) / s.Duration.Seconds()
}

// DirtyRate returns the guest dirtying rate during the iteration in
// pages/sec.
func (s IterationStats) DirtyRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.PagesDirtiedDuring) / s.Duration.Seconds()
}

// Report is the outcome of one migration.
type Report struct {
	Mode       Mode
	Iterations []IterationStats

	TotalTime   time.Duration // migrate start to VM active at destination
	VMDowntime  time.Duration // VM paused (stop-and-copy + resumption)
	PrepareWait time.Duration // LKM prepare handshake (safepoint + GC wait)
	FinalUpdate time.Duration // final transfer bitmap update (downtime part)
	Resumption  time.Duration

	TotalPagesSent uint64
	LastIterBytes  uint64

	// DeltaResends counts pages sent as deltas and DeltaCacheBytes the
	// daemon-side page cache cost (DeltaCompression runs only).
	DeltaResends    uint64
	DeltaCacheBytes uint64
	CPUTime         time.Duration // daemon CPU model (X1)
	Fallbacks       int           // apps that timed out during prepare

	// FinalTransfer is the transfer bitmap snapshot at VM pause: set bits
	// are the pages the destination must have faithfully. Vanilla
	// migrations have every bit set.
	FinalTransfer *mem.Bitmap

	// PostCopy is set for post-copy runs (MigratePostCopy). Post-copy
	// semantics differ: the domain's memory IS the destination memory
	// after switchover, so Dest.Store is a transport record and the
	// correctness invariant is "every page became resident", not store
	// equality.
	PostCopy *PostCopyStats
}

// TotalBytes returns the migration's total payload traffic.
func (r *Report) TotalBytes() uint64 {
	var t uint64
	for _, it := range r.Iterations {
		t += it.BytesOnWire
	}
	return t
}

// LiveIterations returns the number of pre-copy iterations (excluding
// stop-and-copy).
func (r *Report) LiveIterations() int {
	n := 0
	for _, it := range r.Iterations {
		if !it.Last {
			n++
		}
	}
	return n
}

// Source drives a migration from the source host.
type Source struct {
	Dom   *hypervisor.Domain
	LKM   *guestos.LKM // required in ModeAppAssisted
	Link  *netsim.Link
	Clock *simclock.Clock
	Exec  GuestExecutor // may be nil for an idle guest
	Dest  *Destination
	Cfg   Config
	// GuestFree reports whether a frame is on the guest kernel's free list;
	// required when Cfg.SkipFreePages is set (typically
	// guest.Frames.Allocated negated).
	GuestFree func(p mem.PFN) bool
	// HintFor returns a page's compression hint (guestos.Hint*); required
	// when Cfg.HintedCompression is set (typically the LKM's HintFor).
	HintFor func(p mem.PFN) uint8

	// mutable state during one migration
	transfer  *mem.Bitmap
	ready     bool
	readyEv   guestos.EvSuspensionReady
	report    *Report
	sentBytes uint64
	startedAt time.Duration
	aborted   bool
	sentOnce  *mem.Bitmap // pages already sent (delta-compression cache)
}

// Errors returned by Migrate.
var (
	ErrNoLKM   = errors.New("migration: app-assisted mode requires an LKM")
	ErrNoDest  = errors.New("migration: destination required")
	ErrNoLink  = errors.New("migration: link required")
	ErrNoClock = errors.New("migration: clock required")
	// ErrCancelled reports a migration aborted by CancelAfter or
	// ShouldCancel. Migrate returns it together with the partial report;
	// the VM keeps running at the source.
	ErrCancelled = errors.New("migration: cancelled")
)

// Migrate runs the full migration and returns its report. The source domain
// is left unpaused ("resumed at the destination"): in this simulator the
// domain object represents the VM wherever it runs, while Dest holds the
// destination host's copy of its memory for verification.
func (s *Source) Migrate() (*Report, error) {
	switch {
	case s.Dom == nil:
		return nil, errors.New("migration: source domain required")
	case s.Dest == nil:
		return nil, ErrNoDest
	case s.Link == nil:
		return nil, ErrNoLink
	case s.Clock == nil:
		return nil, ErrNoClock
	case s.Cfg.Mode == ModeAppAssisted && s.LKM == nil:
		return nil, ErrNoLKM
	}
	if s.Dest.Store.NumPages() != s.Dom.NumPages() {
		return nil, fmt.Errorf("migration: destination has %d pages, source %d",
			s.Dest.Store.NumPages(), s.Dom.NumPages())
	}
	s.Cfg.FillDefaults()
	s.report = &Report{Mode: s.Cfg.Mode}
	s.sentBytes = 0
	s.ready = false
	s.aborted = false

	// The legacy OnIteration callback rides the event bus: when a tracer is
	// configured it becomes a subscription to the per-iteration stats
	// events, seeing exactly the data every other subscriber sees.
	if s.Cfg.OnIteration != nil && s.Cfg.Tracer != nil {
		cancel := s.Cfg.Tracer.Subscribe(func(e obs.Event) {
			if st, ok := e.Data.(IterationStats); ok {
				s.Cfg.OnIteration(st)
			}
		})
		defer cancel()
	}
	runSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindMigration,
		"migrate "+s.Cfg.Mode.String(), obs.Str("mode", s.Cfg.Mode.String()))
	defer runSpan.End()

	start := s.Clock.Now()
	s.startedAt = start
	if err := s.Dom.EnableLogDirty(); err != nil {
		return nil, err
	}
	defer s.Dom.DisableLogDirty()

	var ep *hypervisor.Endpoint
	if s.Cfg.Mode == ModeAppAssisted {
		ep = s.LKM.DaemonEndpoint()
		ep.Bind(func(msg any) {
			if ev, ok := msg.(guestos.EvSuspensionReady); ok {
				s.ready = true
				s.readyEv = ev
			}
		})
		s.transfer = s.LKM.TransferBitmap()
		ep.Notify(guestos.EvMigrationBegin{})
	} else {
		s.transfer = nil
	}

	if f := s.Cfg.ThrottleFactor; f > 0 && f < 1 {
		if th, ok := s.Exec.(Throttleable); ok {
			th.SetThrottle(f)
			s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindThrottle, "throttle", nil,
				obs.Float("factor", f))
			defer func() {
				th.SetThrottle(1.0)
				s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindThrottle, "throttle", nil,
					obs.Float("factor", 1.0))
			}()
		}
	}

	n := s.Dom.NumPages()
	toSend := mem.NewBitmap(n)
	toSend.SetAll() // iteration 1: all pages

	s.sentOnce = nil
	if s.Cfg.DeltaCompression {
		s.sentOnce = mem.NewBitmap(n)
		s.report.DeltaCacheBytes = n * mem.PageSize // one cached copy per page
	}

	var everDirty *mem.Bitmap
	if s.Cfg.ConservativeLastIter {
		everDirty = mem.NewBitmap(n)
	}
	newRound := func() {
		s.Dom.PeekAndClear(toSend)
		if everDirty != nil {
			everDirty.Or(toSend)
		}
	}

	abort := func() (*Report, error) {
		if ep != nil {
			ep.Notify(guestos.EvMigrationAborted{})
		}
		s.report.TotalTime = s.Clock.Now() - start
		return s.report, ErrCancelled
	}

	iter := 1
	for {
		st := s.runIteration(iter, toSend, false)
		s.report.Iterations = append(s.report.Iterations, st)
		s.notifyIteration(st)
		if s.aborted {
			return abort()
		}
		if s.stopConditionMet(iter, st) {
			break
		}
		iter++
		newRound()
	}

	// Pre-suspension handshake (app-assisted): notify the LKM, run one more
	// live round, then wait — without starting new dirty rounds — until the
	// applications are suspension-ready and the final bitmap update is done.
	if s.Cfg.Mode == ModeAppAssisted {
		prepStart := s.Clock.Now()
		prepSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindPrepare, "prepare-suspension")
		defer prepSpan.End()
		ep.Notify(guestos.EvEnteringLastIter{})
		iter++
		newRound()
		st := s.runIteration(iter, toSend, false)
		if s.aborted {
			return abort()
		}
		// The LKM's PrepareTimeout bounds this wait; the engine adds a hard
		// backstop against a misconfigured (disabled) timeout.
		waitDeadline := s.Clock.Now() + time.Minute
		for !s.ready {
			if s.cancelRequested() {
				return abort()
			}
			if s.Clock.Now() >= waitDeadline {
				return nil, errors.New("migration: guest never became suspension-ready")
			}
			s.advance(s.Cfg.IdleQuantum)
		}
		// The second-last iteration's duration includes the wait for the
		// workload to reach a Safepoint and finish the enforced GC
		// (Figure 8(b)).
		st.Duration = s.Clock.Now() - st.Start
		s.report.Iterations = append(s.report.Iterations, st)
		s.notifyIteration(st)
		s.report.PrepareWait = s.Clock.Now() - prepStart
		s.report.FinalUpdate = s.readyEv.FinalUpdate
		s.report.Fallbacks = s.readyEv.Fallbacks
		// The final bitmap update runs with applications held; charge its
		// (sub-millisecond) cost before pausing the VM.
		fuSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindFinalUpdate, "final-update")
		s.Clock.Advance(s.report.FinalUpdate)
		fuSpan.End(obs.Dur("duration", s.report.FinalUpdate))
		prepSpan.End(obs.Dur("prepare_wait", s.report.PrepareWait),
			obs.Int("fallbacks", s.report.Fallbacks))
	}

	// Stop-and-copy.
	if s.transfer != nil {
		s.report.FinalTransfer = s.transfer.Clone()
	} else {
		s.report.FinalTransfer = mem.NewBitmap(n)
		s.report.FinalTransfer.SetAll()
	}
	s.Dom.Pause()
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindSuspend, "vm-suspend", nil)
	pausedSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindVMPaused, "vm-paused")
	pauseStart := s.Clock.Now()
	s.Dom.PeekAndClear(toSend)
	if everDirty != nil {
		// Conservative mode: stop-and-copy considers every page dirtied
		// at any point during migration.
		toSend.Or(everDirty)
	}
	iter++
	st := s.runIteration(iter, toSend, true)
	s.report.Iterations = append(s.report.Iterations, st)
	s.notifyIteration(st)
	s.report.LastIterBytes = st.BytesOnWire

	// Resumption: reconnect devices, activate at destination.
	resSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindResumption, "resumption")
	s.Clock.Advance(s.Cfg.ResumptionTime)
	resSpan.End()
	s.report.Resumption = s.Cfg.ResumptionTime
	s.report.VMDowntime = s.Clock.Now() - pauseStart
	s.Dom.Unpause()
	pausedSpan.End(obs.Dur("downtime", s.report.VMDowntime))
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindResume, "vm-resume", nil)

	if s.Cfg.Mode == ModeAppAssisted {
		ep.Notify(guestos.EvVMResumed{})
	}

	s.report.TotalTime = s.Clock.Now() - start
	return s.report, nil
}

// stopConditionMet decides, after a live iteration, whether to proceed to
// stop-and-copy, using xc_domain_save's rules: few pages sent this round,
// the iteration cap, or the traffic cap. (Xen keys on pages sent in the
// round just finished, which is robust against momentary quiescence — a
// guest paused inside a GC looks converged on an instantaneous dirty count
// but not on round volume.)
func (s *Source) stopConditionMet(iter int, st IterationStats) bool {
	if iter >= s.Cfg.MaxIterations {
		return true
	}
	if s.Cfg.MaxTrafficFactor > 0 &&
		float64(s.sentBytes) >= s.Cfg.MaxTrafficFactor*float64(s.Dom.MemoryBytes()) {
		return true
	}
	return st.PagesSent <= s.Cfg.DirtyPageThreshold
}

func scaleWire(w uint64, ratio float64) uint64 {
	out := uint64(float64(w) * ratio)
	if out == 0 {
		out = 1
	}
	return out
}

// iterationName labels an iteration in traces and progress output.
func iterationName(index int, last bool) string {
	if last {
		return "stop-and-copy"
	}
	return fmt.Sprintf("iteration %d", index)
}

// notifyIteration streams a completed iteration to the event bus (which
// carries the OnIteration subscription when a tracer is configured) and
// accumulates the iteration's counters. Every iteration appended to the
// report passes through here exactly once, so the counters reconcile with
// the report's sums.
func (s *Source) notifyIteration(st IterationStats) {
	if t := s.Cfg.Tracer; t != nil {
		t.Emit(obs.TrackMigration, obs.KindIterationStats, iterationName(st.Index, st.Last), st,
			obs.Int("index", st.Index),
			obs.Bool("last", st.Last),
			obs.Dur("duration", st.Duration),
			obs.Uint64("pages_considered", st.PagesConsidered),
			obs.Uint64("pages_sent", st.PagesSent),
			obs.Uint64("bytes_on_wire", st.BytesOnWire),
			obs.Uint64("pages_skipped_dirty", st.PagesSkippedDirty),
			obs.Uint64("pages_skipped_bitmap", st.PagesSkippedBitmap),
			obs.Uint64("pages_skipped_free", st.PagesSkippedFree),
			obs.Uint64("pages_dirtied_during", st.PagesDirtiedDuring))
	} else if s.Cfg.OnIteration != nil {
		s.Cfg.OnIteration(st)
	}
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.iterations").Inc()
		m.Counter("migration.pages_examined").Add(int64(st.PagesConsidered))
		m.Counter("migration.pages_sent").Add(int64(st.PagesSent))
		m.Counter("migration.bytes_on_wire").Add(int64(st.BytesOnWire))
		m.Counter("migration.pages_skipped_dirty").Add(int64(st.PagesSkippedDirty))
		m.Counter("migration.pages_skipped_bitmap").Add(int64(st.PagesSkippedBitmap))
		m.Counter("migration.pages_skipped_free").Add(int64(st.PagesSkippedFree))
		m.Counter("migration.pages_dirtied").Add(int64(st.PagesDirtiedDuring))
	}
}

// cancelRequested reports whether the migration should abort now.
func (s *Source) cancelRequested() bool {
	if s.Cfg.CancelAfter > 0 && s.Clock.Now()-s.startedAt >= s.Cfg.CancelAfter {
		return true
	}
	return s.Cfg.ShouldCancel != nil && s.Cfg.ShouldCancel()
}

// transferAllowed consults the transfer bitmap (paper §3.3.3): a cleared bit
// means skip, even if dirty.
func (s *Source) transferAllowed(p mem.PFN) bool {
	return s.transfer == nil || s.transfer.Test(p)
}

// advance moves virtual time forward by d, running the guest if it is not
// paused.
func (s *Source) advance(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Exec != nil && !s.Dom.Paused() {
		s.Exec.Run(d)
		return
	}
	s.Clock.Advance(d)
}

// runIteration scans the to-send set once, pushing transferable pages to the
// destination in chunks and interleaving guest execution.
func (s *Source) runIteration(index int, toSend *mem.Bitmap, last bool) IterationStats {
	st := IterationStats{
		Index:           index,
		Start:           s.Clock.Now(),
		Last:            last,
		PagesConsidered: toSend.Count(),
	}
	span := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindIteration,
		iterationName(index, last),
		obs.Int("index", index), obs.Uint64("pages_considered", st.PagesConsidered))
	dirtyBefore := s.Dom.DirtyEvents()

	rawWire := s.Dom.Store().WireSize()
	// pageWire returns a page's wire size and compression CPU cost under
	// the active policy.
	pageWire := func(p mem.PFN) (uint64, time.Duration) {
		if s.sentOnce != nil {
			if s.sentOnce.Test(p) {
				s.report.DeltaResends++
				return scaleWire(rawWire, s.Cfg.DeltaRatio), s.Cfg.DeltaCostPerPage
			}
			s.sentOnce.Set(p)
		}
		if s.Cfg.HintedCompression && s.HintFor != nil {
			switch s.HintFor(p) {
			case guestos.HintFast:
				return scaleWire(rawWire, 0.6), 3 * time.Microsecond
			case guestos.HintStrong:
				return scaleWire(rawWire, 0.35), 12 * time.Microsecond
			case guestos.HintNone:
				return rawWire, 0
			}
		}
		if s.Cfg.Compress {
			return scaleWire(rawWire, s.Cfg.CompressionRatio), s.Cfg.CompressCostPerPage
		}
		return rawWire, 0
	}

	type pagePayload struct {
		pfn     mem.PFN
		payload []byte
	}
	chunk := make([]pagePayload, 0, s.Cfg.ChunkPages)
	var chunkWire uint64

	flush := func() {
		if len(chunk) == 0 {
			return
		}
		cs := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindChunk, "chunk",
			obs.Int("pages", len(chunk)), obs.Uint64("wire_bytes", chunkWire))
		d := s.Link.Send(chunkWire)
		st.PagesSent += uint64(len(chunk))
		st.BytesOnWire += chunkWire
		s.sentBytes += chunkWire
		s.report.TotalPagesSent += uint64(len(chunk))
		s.report.CPUTime += time.Duration(len(chunk)) * s.Cfg.PageCopyCost
		for _, pp := range chunk {
			s.Dest.receive(pp.pfn, pp.payload)
		}
		chunk = chunk[:0]
		chunkWire = 0
		s.advance(d)
		cs.End()
		// Cancellation is honoured at chunk boundaries during live
		// iterations; stop-and-copy always runs to completion.
		if !last && s.cancelRequested() {
			s.aborted = true
		}
	}

	toSend.Range(func(p mem.PFN) bool {
		if s.aborted {
			return false
		}
		s.report.CPUTime += s.Cfg.PageExamineCost
		if !s.transferAllowed(p) {
			st.PagesSkippedBitmap++
			return true
		}
		if s.Cfg.SkipFreePages && s.GuestFree != nil && s.GuestFree(p) {
			// Free-list pages carry no meaningful content; if the guest
			// reallocates one it is zeroed (written) and caught by a later
			// round.
			st.PagesSkippedFree++
			return true
		}
		if !last && s.Dom.DirtyNow(p) {
			// Already re-dirtied this round: sending now would be wasted —
			// the next round resends it (Figure 9, "already dirtied").
			st.PagesSkippedDirty++
			return true
		}
		w, compressCPU := pageWire(p)
		chunkWire += w
		s.report.CPUTime += compressCPU
		chunk = append(chunk, pagePayload{pfn: p, payload: s.Dom.Store().Export(p)})
		if uint64(len(chunk)) >= s.Cfg.ChunkPages {
			flush()
		}
		return true
	})
	flush()

	st.Duration = s.Clock.Now() - st.Start
	st.PagesDirtiedDuring = s.Dom.DirtyEvents() - dirtyBefore
	span.End(obs.Uint64("pages_sent", st.PagesSent), obs.Uint64("bytes_on_wire", st.BytesOnWire))
	return st
}

// Destination is the receiving host's view of the migration: its own copy of
// the VM's memory.
type Destination struct {
	Store          mem.PageStore
	PagesReceived  uint64
	BytesReceived  uint64
	ImportFailures int

	tee       *netsim.PageWriter
	teeErrors int
	metrics   *obs.Metrics
}

// SetMetrics attaches a metrics registry to the destination's receive path
// (dest.pages_received, dest.bytes_received, dest.import_failures,
// dest.tee_errors). A nil registry detaches.
func (d *Destination) SetMetrics(m *obs.Metrics) { d.metrics = m }

// NewDestination returns a destination with zeroed memory of n pages,
// version-backed like the simulated source.
func NewDestination(n uint64) *Destination {
	return &Destination{Store: mem.NewVersionStore(n)}
}

// NewDestinationWithStore uses a caller-provided store (e.g. a byte-backed
// store in the TCP integration tests).
func NewDestinationWithStore(store mem.PageStore) *Destination {
	return &Destination{Store: store}
}

// ReceiveCheckpointPage imports a page pushed outside a migration — the
// replication package's checkpoint stream uses the same destination
// machinery (and Tee mirroring) as migration.
func (d *Destination) ReceiveCheckpointPage(p mem.PFN, payload []byte) {
	d.receive(p, payload)
}

func (d *Destination) receive(p mem.PFN, payload []byte) {
	if err := d.Store.Import(p, payload); err != nil {
		d.ImportFailures++
		d.metrics.Counter("dest.import_failures").Inc()
		return
	}
	d.PagesReceived++
	d.BytesReceived += uint64(len(payload))
	d.metrics.Counter("dest.pages_received").Inc()
	d.metrics.Counter("dest.bytes_received").Add(int64(len(payload)))
	if d.tee != nil {
		if err := d.tee.WritePage(p, payload); err != nil {
			d.teeErrors++
			d.metrics.Counter("dest.tee_errors").Inc()
		}
	}
}

// VerifyMigration checks the migration correctness invariant (DESIGN.md §6):
// every page the destination may legally observe must carry the source's
// final content. required(p) reports whether page p's content matters after
// resume (typically: the frame is still allocated in the guest); pages with
// a cleared final transfer bit were declared skippable by their application
// and are exempt.
func VerifyMigration(src, dst mem.PageStore, finalTransfer *mem.Bitmap, required func(mem.PFN) bool) error {
	if src.NumPages() != dst.NumPages() {
		return fmt.Errorf("migration: page count mismatch: src %d dst %d", src.NumPages(), dst.NumPages())
	}
	var bad []mem.PFN
	for p := mem.PFN(0); uint64(p) < src.NumPages(); p++ {
		if !finalTransfer.Test(p) {
			continue // skipped by application consent
		}
		if required != nil && !required(p) {
			continue // e.g. freed frame: content irrelevant until rewritten
		}
		if src.Version(p) != dst.Version(p) {
			bad = append(bad, p)
			if len(bad) >= 8 {
				break
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("migration: %d+ pages diverge at destination (first: %v)", len(bad), bad)
	}
	return nil
}
