package migration

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/obs"
)

// The robustness layer: transient stage failures (a partitioned link, a
// destination that refused a page, a failed demand fetch) are retried with
// seeded exponential backoff while the guest keeps running; permanent
// failures (a crashed destination, an exhausted retry budget, a blown stage
// deadline) abort the migration cleanly — the source VM resumes untouched
// and the destination's half-received memory is discarded.

// Errors surfaced by the robustness layer.
var (
	// ErrDestinationLost reports a destination that crashed mid-stream.
	// It is permanent: retrying cannot help, the run aborts immediately.
	ErrDestinationLost = errors.New("migration: destination lost")
	// ErrRetriesExhausted wraps the last transient error once the retry
	// budget or the stage deadline is exhausted.
	ErrRetriesExhausted = errors.New("migration: retries exhausted")
	// ErrFetchFaulted is the transient error injected at the post-copy
	// demand-fetch site.
	ErrFetchFaulted = errors.New("migration: demand fetch failed")
)

// beginRecovery resets the per-run robustness state: a fresh jitter PRNG
// (so identical seeds reproduce identical backoff schedules) and a cleared
// failure. Runs after FillDefaults.
func (s *Source) beginRecovery() {
	s.rng = rand.New(rand.NewSource(s.Cfg.Recovery.Seed))
	s.failure = nil
	s.skippedEver = nil
	s.degradePending = nil
	s.resumeRefetch = nil
	s.Cfg.Faults.Begin()
}

// recovery lazily allocates the report's recovery section.
func (s *Source) recovery() *RecoveryStats {
	if s.report.Recovery == nil {
		s.report.Recovery = &RecoveryStats{}
	}
	return s.report.Recovery
}

// fail records a permanent failure and flags the run aborted.
func (s *Source) fail(err error) {
	if s.failure == nil {
		s.failure = err
	}
	s.aborted = true
}

// nextBackoff returns attempt k's backoff: uniformly random in
// [cap/2, cap] where cap = BaseBackoff·2ᵏ⁻¹ clamped to MaxBackoff. The
// jitter comes from the run's seeded PRNG, so it is deterministic.
func (s *Source) nextBackoff(attempt int) time.Duration {
	pol := &s.Cfg.Recovery
	ceil := pol.BaseBackoff
	for i := 1; i < attempt; i++ {
		ceil *= 2
		if ceil >= pol.MaxBackoff || ceil <= 0 {
			ceil = pol.MaxBackoff
			break
		}
	}
	if ceil > pol.MaxBackoff {
		ceil = pol.MaxBackoff
	}
	half := ceil / 2
	return half + time.Duration(s.rng.Int63n(int64(half)+1))
}

// retryAfter re-attempts op after an initial failure err0, backing off
// between attempts. sleep advances virtual time during a backoff: the
// engine paths pass s.advance (the guest keeps running while migration
// waits); the demand-fetch path accumulates stall debt instead, because the
// faulting vCPU is frozen. Returns nil once op succeeds, ErrDestinationLost
// immediately (permanent), or ErrRetriesExhausted wrapping the last error.
func (s *Source) retryAfter(stage string, err0 error, sleep func(time.Duration), op func() error) error {
	err := err0
	pol := &s.Cfg.Recovery
	deadline := s.Clock.Now() + pol.StageDeadline
	for attempt := 1; ; attempt++ {
		if errors.Is(err, netsim.ErrHostDown) {
			// The fabric refused the flow because the destination host is
			// inside a crash window: permanent for this attempt, like a
			// destination crash — the healing layer decides whether to wait
			// the window out or relocate.
			return fmt.Errorf("%w: %s: %w", ErrDestinationLost, stage, err)
		}
		if errors.Is(err, ErrDestinationLost) {
			return err
		}
		if attempt > pol.MaxRetries {
			return fmt.Errorf("%w: %s failed %d attempts: %w", ErrRetriesExhausted, stage, pol.MaxRetries, err)
		}
		if s.Clock.Now() >= deadline {
			return fmt.Errorf("%w: %s stage deadline %v blown: %w", ErrRetriesExhausted, stage, pol.StageDeadline, err)
		}
		d := s.nextBackoff(attempt)
		rec := s.recovery()
		rec.Retries = append(rec.Retries, RetryRecord{
			Stage:   stage,
			Attempt: attempt,
			At:      s.Clock.Now(),
			Backoff: d,
			Err:     err.Error(),
		})
		rec.BackoffTotal += d
		s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindRetry, stage, nil,
			obs.Str("stage", stage), obs.Int("attempt", attempt),
			obs.Dur("backoff", d), obs.Str("error", err.Error()))
		if m := s.Cfg.Metrics; m != nil {
			m.Counter("migration.retries").Inc()
		}
		sleep(d)
		if err = op(); err == nil {
			return nil
		}
	}
}

// withRetry runs op, retrying transient failures with backoff (guest
// running). The success fast path costs one call.
func (s *Source) withRetry(stage string, op func() error) error {
	if err := op(); err != nil {
		return s.retryAfter(stage, err, s.advance, op)
	}
	return nil
}

// deliverPage pushes one page into the sink, retrying transient receive
// failures with backoff. Each delivery attempt passes through the
// corrupt-page-stream fault site, so what the sink digests may differ from
// what the source expects — exactly the divergence the switchover audit
// exists to catch. The expected digest is recorded on success.
func (s *Source) deliverPage(p mem.PFN, payload []byte) error {
	deliver := func() error {
		return s.sink.ReceivePage(p, s.wirePayload(p, payload))
	}
	if err := deliver(); err != nil {
		if err = s.retryAfter("page-receive", err, s.advance, deliver); err != nil {
			return err
		}
	}
	s.recordExpected(p, payload)
	return nil
}

// abortRun finalizes an aborted migration (shared by the pre-copy and lazy
// engines). A plain cancel returns ErrCancelled with the partial report —
// the source VM never stopped running and the destination keeps what it has
// (a re-migration overwrites it). A permanent failure rolls back instead:
// the source resumes if the failure struck while it was paused, the
// destination's half-received memory is discarded — unless
// Recovery.EnableResume asked to keep it for a later Resume and the
// destination did not crash — and the reason lands in the report's recovery
// section. Either way the abort mints a ResumeToken (snapshotted AFTER the
// discard decision, so a discarded image yields a worthless token that
// Resume correctly degrades on).
func (s *Source) abortRun(start time.Duration) (*Report, error) {
	if s.proto != nil {
		s.proto.Aborted()
	}
	s.report.TotalTime = s.Clock.Now() - start
	s.emitProgress(ProgressAborted, len(s.report.Iterations), 0, 0, 0)
	if s.failure == nil {
		if s.Cfg.Recovery.EnableResume {
			s.recovery().Token = s.mintResumeToken("cancelled")
		}
		return s.report, ErrCancelled
	}
	if s.Dom.Paused() {
		s.Dom.Unpause()
	}
	keep := s.Cfg.Recovery.EnableResume && !errors.Is(s.failure, ErrDestinationLost)
	if s.Dest != nil && !keep {
		s.Dest.Discard()
	}
	rec := s.recovery()
	rec.Aborted = true
	rec.AbortReason = s.failure.Error()
	rec.Token = s.mintResumeToken(s.failure.Error())
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindAbort, "abort", nil,
		obs.Str("reason", s.failure.Error()), obs.Bool("destination_kept", keep))
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.aborts").Inc()
	}
	return s.report, s.failure
}

// degradeEnabled reports whether a failed suspension handshake downgrades
// the run instead of failing it. Degradation is an explicit part of the
// fault story: without an injector configured the strict
// ErrSuspensionTimeout contract is preserved.
func (s *Source) degradeEnabled() bool {
	return s.Cfg.Faults != nil && !s.Cfg.Recovery.DisableDegrade
}

// degradeToVanilla downgrades a wedged assisted run to vanilla pre-copy
// semantics mid-flight (§4.2): release the guest-side workflow, stop
// consulting the transfer bitmap, and arrange for every page ever skipped
// by application consent — and not sent since — to be transferred after
// all. The caller re-enters the live loop afterwards.
func (s *Source) degradeToVanilla(reason string) {
	deg := &Degradation{From: s.Cfg.Mode, To: ModeVanilla, At: s.Clock.Now(), Reason: reason}
	s.recovery().Degraded = deg
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindDegrade, "degrade-to-"+deg.To.String(), nil,
		obs.Str("from", deg.From.String()), obs.Str("to", deg.To.String()),
		obs.Str("reason", reason))
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.degraded").Inc()
	}
	// Tell the guest the assisted workflow is over — the LKM releases any
	// held applications and resets, exactly as on an abort.
	s.proto.Aborted()
	s.proto = nil
	s.skip = profileSkip(transferAll{}, s.Cfg.Perf)
	s.degradePending = s.skippedEver
	s.skippedEver = nil
}
