package migration

import (
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/perf"
)

// The lazy (post-switchover) engine: move the VM first, bring its memory
// over afterwards. Pages the guest touches before they arrive are
// demand-fetched from the source, while a background pre-paging stream
// pushes the rest.
//
// ModePostCopy is the related-work baseline of paper §2 (Hines & Gopalan;
// Hirofuchi et al.): no pre-copy at all. Downtime is minimal by construction
// (only the CPU/device state moves synchronously), but the resumed VM runs
// degraded until its working set is resident: every fault costs a network
// round trip plus a page transfer. The paper's framing — post-copy "skips
// over all memory pages ... incurring performance penalties" — is exactly
// what the X8 ablation measures against JAVMM.
//
// ModeHybrid composes the stages of both engines: a bounded pre-copy warm
// phase (runIteration with a warmStop policy) seeds residency, then the same
// switchover and demand-fetch machinery finishes the job on the pages that
// were never sent or were re-dirtied after their last send.

// PostCopyStats extends a Report for runs with a post-copy phase.
type PostCopyStats struct {
	// Faults is the number of demand fetches (guest touched a
	// not-yet-resident page).
	Faults uint64
	// FaultStall is the cumulative guest stall from demand fetches.
	FaultStall time.Duration
	// PrefetchPages is the number of pages moved by background pre-paging.
	PrefetchPages uint64
	// ResidentAt is the virtual time (from migration start) at which every
	// page had arrived at the destination.
	ResidentAt time.Duration
	// WarmPages is the number of pages still resident from the hybrid warm
	// phase at switchover (zero for pure post-copy).
	WarmPages uint64
}

// cpuStateBytes models the vCPU/device state moved during the post-copy
// switchover.
const cpuStateBytes = 2 << 20

// MigratePostCopy migrates the VM post-copy style and returns the report
// (with Report.PostCopy set). The transfer bitmap is not consulted: this is
// the application-agnostic baseline.
func (s *Source) MigratePostCopy() (*Report, error) {
	s.Cfg.Mode = ModePostCopy
	return s.migrateLazy(false)
}

// MigrateHybrid runs Cfg.HybridWarmIterations pre-copy rounds, then
// switches over post-copy style: only pages never sent — or re-dirtied
// since their last send — are demand-fetched or pre-paged. It trades a
// little pre-copy traffic for a much shorter degradation tail than pure
// post-copy.
func (s *Source) MigrateHybrid() (*Report, error) {
	s.Cfg.Mode = ModeHybrid
	return s.migrateLazy(true)
}

// migrateLazy is the shared engine behind ModePostCopy (warm == false) and
// ModeHybrid (warm == true).
func (s *Source) migrateLazy(warm bool) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := s.checkDestSize(); err != nil {
		return nil, err
	}
	s.Cfg.FillDefaults()
	n := s.Dom.NumPages()
	s.report = &Report{Mode: s.Cfg.Mode}
	s.sentBytes = 0
	s.aborted = false
	s.proto = nil
	s.Cfg.Ledger.Begin(n)
	s.beginRecovery()
	pc := &PostCopyStats{}
	s.report.PostCopy = pc

	if s.Cfg.OnIteration != nil && s.Cfg.Tracer != nil {
		cancel := s.Cfg.Tracer.Subscribe(func(e obs.Event) {
			if st, ok := e.Data.(IterationStats); ok {
				s.Cfg.OnIteration(st)
			}
		})
		defer cancel()
	}
	cancelProgress := s.subscribeProgress()
	defer cancelProgress()
	start := s.Clock.Now()
	s.startedAt = start
	runSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindMigration,
		"migrate "+s.Cfg.Mode.String(), obs.Str("mode", s.Cfg.Mode.String()))
	defer runSpan.End()
	s.emitProgress(ProgressStart, 0, n, 0, 0)

	// resident tracks which pages the destination already holds at their
	// final content. The warm phase seeds it; the demand-fetch phase
	// completes it.
	resident := mem.NewBitmap(n)
	iter := 0

	// A resumed lazy run skips the warm phase: the token's trusted pages
	// seed residency directly and only the remainder is fetched (tagged
	// resume-refetch in the ledger).
	resumed := s.pendingResume != nil
	if warm && !resumed {
		s.bindStages(nil)
		s.beginIntegrity()
		if err := s.Dom.EnableLogDirty(); err != nil {
			return nil, err
		}
		defer s.Dom.DisableLogDirty()
		s.residentTrack = resident
		defer func() { s.residentTrack = nil }()

		toSend := mem.NewBitmap(n)
		toSend.SetAll()
		stop := warmStop{warmIters: s.Cfg.HybridWarmIterations, next: s.stop}
		for {
			iter++
			st := s.runIteration(iter, toSend, false)
			s.report.Iterations = append(s.report.Iterations, st)
			s.notifyIteration(st)
			if s.aborted {
				return s.abortRun(start)
			}
			if stop.Stop(iter, st, s.sentBytes, s.Dom.MemoryBytes()) {
				break
			}
			s.Dom.PeekAndClear(toSend)
		}
	} else {
		s.sink = s.Sink
		if s.sink == nil {
			s.sink = s.Dest
		}
		s.sink = profileSink(s.sink, s.Cfg.Perf)
		s.beginIntegrity()
		if resumed {
			s.planResumeLazy(s.pendingResume, resident)
		}
	}

	// Switchover: pause, move CPU/device state, resume at the destination.
	s.Dom.Pause()
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindSuspend, "vm-suspend", nil)
	pausedSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindVMPaused, "vm-paused")
	pauseStart := s.Clock.Now()
	if warm && !resumed {
		// Pages dirtied since their last send are stale at the destination:
		// drop them from the resident set so the lazy phase refetches them.
		dirty := mem.NewBitmap(n)
		s.Dom.PeekAndClear(dirty)
		resident.AndNot(dirty)
	}
	// Audit what we believe resident (warm sends, resume-trusted pages)
	// against the destination's digest table while the VM is paused: a
	// corrupted warm transfer is dropped here and refetched by the lazy phase.
	s.auditResident(resident)
	if warm {
		pc.WarmPages = resident.Count()
	}
	var stateTime time.Duration
	var stateElapsed bool
	sendState := func() error {
		var err error
		stateTime, stateElapsed, err = s.sendBulk(cpuStateBytes)
		return err
	}
	if err := s.withRetry("switchover", sendState); err != nil {
		// The CPU/device state never made it across: resume at the source.
		s.fail(err)
		pausedSpan.End()
		return s.abortRun(start)
	}
	if !stateElapsed {
		s.Clock.Advance(stateTime)
	}
	s.Clock.Advance(s.Cfg.ResumptionTime)
	s.report.Resumption = s.Cfg.ResumptionTime
	s.report.VMDowntime = s.Clock.Now() - pauseStart
	s.Dom.Unpause()
	pausedSpan.End(obs.Dur("downtime", s.report.VMDowntime))
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindResume, "vm-resume", nil)

	missing := n - resident.Count()
	// Switchover marker: the VM now runs at the destination with `missing`
	// pages still to fetch — the quantity the lazy phase's ETA drains.
	s.emitProgress(ProgressPostCopy, iter+1, missing, 0, 0)
	var stallDebt time.Duration
	wire := s.Dom.Store().WireSize()
	lazyIter := iter + 1 // the ledger iteration index of the whole lazy phase

	fetch := func(p mem.PFN) (time.Duration, error) {
		s.Cfg.Perf.Enter(perf.StageLazyFetch)
		defer s.Cfg.Perf.Exit()
		var d, backoffStall time.Duration
		op := func() error {
			if s.Cfg.Faults.Fire(faults.SitePostCopyFetch) {
				return ErrFetchFaulted
			}
			var err error
			d, err = s.Link.SendErr(wire)
			if err != nil {
				return err
			}
			d += s.Link.RoundTrip()
			return s.lazyDeliver(p)
		}
		if err := op(); err != nil {
			// The faulting vCPU is frozen: retry backoffs accumulate as
			// stall debt rather than advancing the clock (which would run
			// the guest and could recurse into this very hook).
			err = s.retryAfter("demand-fetch", err,
				func(b time.Duration) { backoffStall += b }, op)
			if err != nil {
				return 0, err
			}
		}
		resident.Set(p)
		return d + backoffStall, nil
	}

	s.Dom.SetPageFaultHook(func(p mem.PFN) {
		if s.aborted || resident.Test(p) {
			return
		}
		// The faulting vCPU stalls for a round trip plus the transfer
		// (plus any retry backoff); the debt is charged to guest time
		// between prefetch chunks.
		d, err := fetch(p)
		if err != nil {
			s.fail(err)
			return
		}
		pc.Faults++
		stallDebt += d
		s.Cfg.Ledger.PageSent(p, lazyIter, wire, s.sendClassFor(p, ledger.ClassFault))
		s.Cfg.Metrics.Histogram("migration.fault_stall_ns").Observe(float64(d))
	})
	defer s.Dom.SetPageFaultHook(nil)

	// Background pre-paging: push non-resident pages in ascending order,
	// interleaving guest execution (which triggers demand faults).
	st := IterationStats{Index: iter + 1, Start: s.Clock.Now(), Last: true}
	cursor := mem.PFN(0)
	chunk := s.Cfg.ChunkPages
prefetch:
	for resident.Count() < n {
		var pushed uint64
		for pushed < chunk && cursor < mem.PFN(n) {
			if s.aborted {
				break prefetch
			}
			if !resident.Test(cursor) {
				var d time.Duration
				var elapsed bool
				push := func() error {
					s.Cfg.Perf.Enter(perf.StageLazyFetch)
					defer s.Cfg.Perf.Exit()
					var err error
					d, elapsed, err = s.sendBulk(wire)
					if err != nil {
						return err
					}
					return s.lazyDeliver(cursor)
				}
				if err := s.withRetry("prefetch", push); err != nil {
					s.fail(err)
					break prefetch
				}
				resident.Set(cursor)
				s.Cfg.Ledger.PageSent(cursor, lazyIter, wire, s.sendClassFor(cursor, ledger.ClassPrefetch))
				pc.PrefetchPages++
				pushed++
				st.PagesSent++
				st.BytesOnWire += wire
				s.report.TotalPagesSent++
				s.report.CPUTime += s.Cfg.PageCopyCost
				// The guest runs while the push is in flight (on an
				// arbitrated port the wait itself already elapsed that
				// time, with other processes running)...
				if !elapsed {
					s.advance(d)
				}
				// ...and pays off any fault stalls it accumulated.
				if stallDebt > 0 {
					s.Clock.Advance(stallDebt)
					pc.FaultStall += stallDebt
					stallDebt = 0
				}
			}
			cursor++
		}
		if cursor >= mem.PFN(n) {
			cursor = 0 // demand faults may have left holes behind the cursor
		}
	}
	// Fault fetches moved pages outside the iteration accounting; fold
	// their traffic in for TotalBytes consistency. This sealing runs on the
	// abort path too: an aborted lazy run's partial report must reconcile
	// with the ledger (and carry the same abort metadata) exactly like an
	// aborted pre-copy run, so the lazy-phase iteration cannot be dropped on
	// the floor just because the run failed mid-fetch.
	st.BytesOnWire += pc.Faults * wire
	st.PagesSent += pc.Faults
	s.report.TotalPagesSent += pc.Faults
	st.Duration = s.Clock.Now() - st.Start
	st.PagesConsidered = missing
	s.report.Iterations = append(s.report.Iterations, st)
	s.notifyIteration(st)
	s.report.LastIterBytes = st.BytesOnWire
	if s.aborted {
		// A demand fetch or prefetch failed permanently after switchover:
		// the run rolls back to the source (whose domain retains every
		// page) and the destination's partial image is discarded (or kept
		// for Resume when Recovery.EnableResume asks for it).
		s.sealIntegrity()
		return s.abortRun(start)
	}
	pc.ResidentAt = s.Clock.Now() - start
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.postcopy_faults").Add(int64(pc.Faults))
		m.Counter("migration.postcopy_prefetch_pages").Add(int64(pc.PrefetchPages))
	}

	s.sealIntegrity()
	s.report.FinalTransfer = mem.NewBitmap(n)
	s.report.FinalTransfer.SetAll()
	s.report.TotalTime = s.Clock.Now() - start
	s.emitProgress(ProgressDone, iter+1, 0, 0, 0)
	return s.report, nil
}
