package migration

import (
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs"
)

// Post-copy live migration, the related-work baseline of paper §2 (Hines &
// Gopalan; Hirofuchi et al.): skip the pre-copy stage entirely, move the VM
// immediately, and bring its memory over afterwards — pages the guest
// touches before they arrive are demand-fetched from the source, while a
// background pre-paging stream pushes the rest.
//
// Downtime is minimal by construction (only the CPU/device state moves
// synchronously), but the resumed VM runs degraded until its working set is
// resident: every fault costs a network round trip plus a page transfer.
// The paper's framing — post-copy "skips over all memory pages ... incurring
// performance penalties" — is exactly what the X8 ablation measures against
// JAVMM.

// PostCopyStats extends a Report for post-copy runs.
type PostCopyStats struct {
	// Faults is the number of demand fetches (guest touched a
	// not-yet-resident page).
	Faults uint64
	// FaultStall is the cumulative guest stall from demand fetches.
	FaultStall time.Duration
	// PrefetchPages is the number of pages moved by background pre-paging.
	PrefetchPages uint64
	// ResidentAt is the virtual time (from migration start) at which every
	// page had arrived at the destination.
	ResidentAt time.Duration
}

// cpuStateBytes models the vCPU/device state moved during the post-copy
// switchover.
const cpuStateBytes = 2 << 20

// MigratePostCopy migrates the VM post-copy style and returns the report
// (with Report.PostCopy set). The transfer bitmap is not consulted: this is
// the application-agnostic baseline.
func (s *Source) MigratePostCopy() (*Report, error) {
	switch {
	case s.Dom == nil:
		return nil, ErrNoDest
	case s.Dest == nil:
		return nil, ErrNoDest
	case s.Link == nil:
		return nil, ErrNoLink
	case s.Clock == nil:
		return nil, ErrNoClock
	}
	s.Cfg.FillDefaults()
	n := s.Dom.NumPages()
	s.report = &Report{Mode: s.Cfg.Mode}
	pc := &PostCopyStats{}
	s.report.PostCopy = pc
	start := s.Clock.Now()
	runSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindMigration, "migrate post-copy",
		obs.Str("mode", "post-copy"))
	defer runSpan.End()

	// Switchover: pause, move CPU/device state, resume at the destination.
	s.Dom.Pause()
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindSuspend, "vm-suspend", nil)
	pausedSpan := s.Cfg.Tracer.Begin(obs.TrackMigration, obs.KindVMPaused, "vm-paused")
	pauseStart := s.Clock.Now()
	s.Clock.Advance(s.Link.Send(cpuStateBytes))
	s.Clock.Advance(s.Cfg.ResumptionTime)
	s.report.Resumption = s.Cfg.ResumptionTime
	s.report.VMDowntime = s.Clock.Now() - pauseStart
	s.Dom.Unpause()
	pausedSpan.End(obs.Dur("downtime", s.report.VMDowntime))
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindResume, "vm-resume", nil)

	resident := mem.NewBitmap(n)
	var stallDebt time.Duration
	wire := s.Dom.Store().WireSize()

	fetch := func(p mem.PFN) time.Duration {
		d := s.Link.RoundTrip() + s.Link.Send(wire)
		s.Dest.receive(p, s.Dom.Store().Export(p))
		resident.Set(p)
		return d
	}

	s.Dom.SetPageFaultHook(func(p mem.PFN) {
		if resident.Test(p) {
			return
		}
		pc.Faults++
		// The faulting vCPU stalls for a round trip plus the transfer;
		// the debt is charged to guest time between prefetch chunks.
		stallDebt += fetch(p)
	})
	defer s.Dom.SetPageFaultHook(nil)

	// Background pre-paging: push non-resident pages in ascending order,
	// interleaving guest execution (which triggers demand faults).
	st := IterationStats{Index: 1, Start: s.Clock.Now(), Last: true}
	cursor := mem.PFN(0)
	chunk := s.Cfg.ChunkPages
	for resident.Count() < n {
		var pushed uint64
		for pushed < chunk && cursor < mem.PFN(n) {
			if !resident.Test(cursor) {
				d := s.Link.Send(wire)
				s.Dest.receive(cursor, s.Dom.Store().Export(cursor))
				resident.Set(cursor)
				pc.PrefetchPages++
				pushed++
				st.PagesSent++
				st.BytesOnWire += wire
				s.report.TotalPagesSent++
				s.report.CPUTime += s.Cfg.PageCopyCost
				// The guest runs while the push is in flight...
				s.advance(d)
				// ...and pays off any fault stalls it accumulated.
				if stallDebt > 0 {
					s.Clock.Advance(stallDebt)
					pc.FaultStall += stallDebt
					stallDebt = 0
				}
			}
			cursor++
		}
		if cursor >= mem.PFN(n) {
			cursor = 0 // demand faults may have left holes behind the cursor
		}
	}
	pc.ResidentAt = s.Clock.Now() - start

	// Fault fetches moved pages outside the iteration accounting; fold
	// their traffic in for TotalBytes consistency.
	st.BytesOnWire += pc.Faults * wire
	st.PagesSent += pc.Faults
	s.report.TotalPagesSent += pc.Faults
	st.Duration = s.Clock.Now() - st.Start
	st.PagesConsidered = n
	s.report.Iterations = append(s.report.Iterations, st)
	s.notifyIteration(st)
	s.report.LastIterBytes = st.BytesOnWire
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.postcopy_faults").Add(int64(pc.Faults))
		m.Counter("migration.postcopy_prefetch_pages").Add(int64(pc.PrefetchPages))
	}

	s.report.FinalTransfer = mem.NewBitmap(n)
	s.report.FinalTransfer.SetAll()
	s.report.TotalTime = s.Clock.Now() - start
	return s.report, nil
}
