package migration

import "fmt"

// Mode selects the migration engine. The engines are compositions of the
// stage interfaces in stages.go: the pre-copy orchestrator (ModeVanilla,
// ModeAppAssisted), the lazy post-switchover engine (ModePostCopy), and the
// hybrid of the two (ModeHybrid).
type Mode int

const (
	// ModeVanilla is unmodified Xen pre-copy: application-agnostic.
	ModeVanilla Mode = iota
	// ModeAppAssisted consults the LKM's transfer bitmap and runs the
	// collaborative workflow of paper §3.3.5.
	ModeAppAssisted
	// ModePostCopy is the related-work baseline of paper §2 (Hines &
	// Gopalan): no pre-copy at all — the VM moves immediately and its
	// memory follows via demand faults and background pre-paging.
	ModePostCopy
	// ModeHybrid composes the two engines: a short pre-copy warm phase
	// pushes a first pass of memory, then the VM switches over post-copy
	// style and only the pages dirtied since their last send (plus the
	// never-sent remainder) are demand-fetched or pre-paged.
	ModeHybrid
)

// String names the mode as in the paper's evaluation.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "xen"
	case ModeAppAssisted:
		return "javmm"
	case ModePostCopy:
		return "post-copy"
	case ModeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String: it resolves the mode names the
// CLIs and experiment configs use ("xen", "javmm", "post-copy", "hybrid").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "xen":
		return ModeVanilla, nil
	case "javmm":
		return ModeAppAssisted, nil
	case "post-copy":
		return ModePostCopy, nil
	case "hybrid":
		return ModeHybrid, nil
	default:
		return 0, fmt.Errorf("migration: unknown mode %q (want xen, javmm, post-copy or hybrid)", s)
	}
}
