package migration

import (
	"errors"
	"testing"
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs"
)

func TestEstimateETA(t *testing.T) {
	cases := []struct {
		name      string
		remaining uint64
		xfer      float64
		dirty     float64
		wantETA   time.Duration
		wantConv  bool
		exactETA  bool // compare ETA exactly, not just the clamp/flag
	}{
		{"nothing-left", 0, 0, 0, 0, true, true},
		{"no-transfer-rate", 1 << 20, 0, 0, MaxETA, false, true},
		{"negative-transfer-rate", 1 << 20, -5, 0, MaxETA, false, true},
		{"dirty-equals-transfer", 1 << 20, 1e6, 1e6, MaxETA, false, true},
		{"dirty-outruns-transfer", 1 << 20, 1e6, 2e6, MaxETA, false, true},
		{"converging-but-slow", 1 << 60, 1.0, 0, MaxETA, true, true},
		{"normal", 100 * 1000 * 1000, 100e6, 50e6, 2 * time.Second, true, true},
		{"near-overflow-remaining", 1<<64 - 1, 1e-300, 0, MaxETA, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eta, conv := EstimateETA(c.remaining, c.xfer, c.dirty)
			if conv != c.wantConv {
				t.Fatalf("converging = %v, want %v", conv, c.wantConv)
			}
			if c.exactETA && eta != c.wantETA {
				t.Fatalf("eta = %v, want %v", eta, c.wantETA)
			}
			// Satellite 2's contract: never negative, never past the clamp.
			if eta < 0 || eta > MaxETA {
				t.Fatalf("eta %v outside [0, MaxETA]", eta)
			}
		})
	}
}

// collectProgress runs a migration with OnProgress collecting the stream.
func collectProgress(t *testing.T, r *testRig, cfg Config, exec GuestExecutor, useTracer bool) ([]Progress, *Report, error) {
	t.Helper()
	var stream []Progress
	cfg.OnProgress = func(p Progress) { stream = append(stream, p) }
	if useTracer {
		cfg.Tracer = obs.New(r.clock)
	}
	rep, err := r.source(cfg, exec).Migrate()
	return stream, rep, err
}

func checkStreamInvariants(t *testing.T, stream []Progress) {
	t.Helper()
	if len(stream) == 0 {
		t.Fatal("no progress points")
	}
	if stream[0].Phase != ProgressStart {
		t.Fatalf("first phase = %q, want start", stream[0].Phase)
	}
	var lastAt time.Duration
	var lastBytes uint64
	for i, p := range stream {
		if p.VM != "vm" {
			t.Fatalf("point %d: VM = %q, want vm", i, p.VM)
		}
		if p.At < lastAt {
			t.Fatalf("point %d: time went backwards (%v after %v)", i, p.At, lastAt)
		}
		if p.BytesSent < lastBytes {
			t.Fatalf("point %d: cumulative bytes shrank (%d after %d)", i, p.BytesSent, lastBytes)
		}
		if p.ETA < 0 || p.ETA > MaxETA {
			t.Fatalf("point %d: ETA %v outside [0, MaxETA]", i, p.ETA)
		}
		if p.BytesRemaining != p.PagesRemaining*mem.PageSize {
			t.Fatalf("point %d: bytes remaining %d != pages %d × page size", i, p.BytesRemaining, p.PagesRemaining)
		}
		lastAt, lastBytes = p.At, p.BytesSent
	}
}

func TestProgressStreamVanilla(t *testing.T) {
	r := newRig(4096, 100*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 256*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 1000)
	stream, rep, err := collectProgress(t, r, Config{Mode: ModeVanilla}, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamInvariants(t, stream)
	last := stream[len(stream)-1]
	if last.Phase != ProgressDone {
		t.Fatalf("last phase = %q, want done", last.Phase)
	}
	// One start, one point per iteration, one stop-and-copy, one done.
	if want := 2 + len(rep.Iterations); len(stream) != want {
		t.Fatalf("stream has %d points, want %d (start + %d iterations + done)",
			len(stream), want, len(rep.Iterations))
	}
	var sawStopCopy bool
	for _, p := range stream {
		if p.Phase == ProgressStopAndCopy {
			sawStopCopy = true
		}
	}
	if !sawStopCopy {
		t.Fatal("no stop-and-copy point in stream")
	}
	if last.PagesSent != rep.TotalPagesSent || last.BytesSent != rep.TotalBytes() {
		t.Fatalf("done point (%d pages, %d bytes) does not match report (%d, %d)",
			last.PagesSent, last.BytesSent, rep.TotalPagesSent, rep.TotalBytes())
	}
	// The start point's outstanding estimate is the whole VM.
	if stream[0].PagesRemaining != 4096 {
		t.Fatalf("start point remaining = %d pages, want 4096", stream[0].PagesRemaining)
	}
}

func TestProgressRidesEventBus(t *testing.T) {
	run := func(useTracer bool) []Progress {
		r := newRig(2048, 100*1000*1000)
		hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 128*mem.PageSize}
		sc := newScribbler(r.guest, r.clock, hot, 500)
		stream, _, err := collectProgress(t, r, Config{Mode: ModeVanilla}, sc, useTracer)
		if err != nil {
			t.Fatal(err)
		}
		return stream
	}
	direct := run(false)
	viaBus := run(true)
	if len(direct) != len(viaBus) {
		t.Fatalf("direct stream has %d points, via event bus %d", len(direct), len(viaBus))
	}
	for i := range direct {
		if direct[i] != viaBus[i] {
			t.Fatalf("point %d differs: direct %+v, via bus %+v", i, direct[i], viaBus[i])
		}
	}
}

func TestProgressEventsInTrace(t *testing.T) {
	r := newRig(1024, 100*1000*1000)
	tr := obs.New(r.clock)
	var fromBus []Progress
	cancel := tr.Subscribe(func(e obs.Event) {
		if e.Kind != obs.KindProgress {
			return
		}
		p, ok := e.Data.(Progress)
		if !ok {
			t.Fatalf("KindProgress event carries %T, want Progress", e.Data)
		}
		fromBus = append(fromBus, p)
	})
	defer cancel()
	if _, err := r.source(Config{Mode: ModeVanilla, Tracer: tr}, nil).Migrate(); err != nil {
		t.Fatal(err)
	}
	checkStreamInvariants(t, fromBus)
	for _, e := range tr.Events() {
		if e.Kind == obs.KindProgress && e.Track != obs.TrackMigration {
			t.Fatalf("progress event on track %q, want %q", e.Track, obs.TrackMigration)
		}
	}
}

func TestProgressStreamPostCopy(t *testing.T) {
	r := newRig(2048, 100*1000*1000)
	stream, rep, err := collectProgress(t, r, Config{Mode: ModePostCopy}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamInvariants(t, stream)
	var sawSwitch bool
	for _, p := range stream {
		if p.Phase == ProgressPostCopy && p.PagesRemaining == 2048 {
			sawSwitch = true // switchover marker: everything still to fetch
		}
	}
	if !sawSwitch {
		t.Fatal("no post-copy switchover marker with the full VM outstanding")
	}
	last := stream[len(stream)-1]
	if last.Phase != ProgressDone {
		t.Fatalf("last phase = %q, want done", last.Phase)
	}
	if last.BytesSent != rep.TotalBytes() {
		t.Fatalf("done point bytes %d != report %d", last.BytesSent, rep.TotalBytes())
	}
}

func TestProgressStreamHybridPhases(t *testing.T) {
	r := newRig(2048, 100*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 128*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 500)
	stream, _, err := collectProgress(t, r, Config{Mode: ModeHybrid}, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamInvariants(t, stream)
	var sawWarm, sawLazy bool
	for _, p := range stream {
		if p.Phase == ProgressPreCopy {
			sawWarm = true
		}
		if p.Phase == ProgressPostCopy {
			sawLazy = true
		}
	}
	if !sawWarm || !sawLazy {
		t.Fatalf("hybrid stream missing phases: warm=%v lazy=%v", sawWarm, sawLazy)
	}
}

func TestProgressStreamAborted(t *testing.T) {
	r := newRig(8192, 10*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 20000)
	stream, _, err := collectProgress(t, r,
		Config{Mode: ModeVanilla, CancelAfter: 500 * time.Millisecond, MaxTrafficFactor: -1}, sc, false)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	last := stream[len(stream)-1]
	if last.Phase != ProgressAborted {
		t.Fatalf("last phase = %q, want aborted", last.Phase)
	}
}

func TestProgressNonConvergingFlagged(t *testing.T) {
	// Slow link, fast dirtier: live rounds cannot drain the dirty set, so
	// the stream must flag non-convergence with the ETA clamped — never a
	// negative or overflowed duration (satellite 2).
	r := newRig(4096, 10*1000*1000) // ~2441 pages/s of link
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 20000)
	stream, _, err := collectProgress(t, r,
		Config{Mode: ModeVanilla, MaxTrafficFactor: -1}, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	checkStreamInvariants(t, stream)
	var flagged bool
	for _, p := range stream {
		if p.Phase != ProgressPreCopy || p.PagesRemaining == 0 {
			continue
		}
		if !p.Converging {
			flagged = true
			if p.ETA != MaxETA {
				t.Fatalf("non-converging point has ETA %v, want MaxETA", p.ETA)
			}
		}
	}
	if !flagged {
		t.Fatal("fast dirtier never flagged as non-converging")
	}
}
