package migration

import (
	"fmt"
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
)

// Resumable migration. A failed (or cancelled) run's abortRun mints a
// ResumeToken describing what the destination verifiably holds; a later
// Source.Resume re-opens the migration and transfers only the pages the
// token cannot vouch for — dirty-since-the-epoch ∪ digest-mismatch ∪
// never-received — instead of paying the whole first copy again. The ledger
// tags those sends resume-refetch, so the abort+resume pair still reconciles
// byte-for-byte through the attribution layer.

// ResumeToken is the resume credential minted by an aborted run. It is a
// claim about the destination, not a capability: Resume re-validates every
// part of it (image generation, dirty epoch, per-page digests) and degrades
// to a full first copy whenever the claim cannot be proven.
type ResumeToken struct {
	// RunID identifies the aborted run (mode + virtual start/abort times —
	// deterministic, like everything under the virtual clock).
	RunID string
	// Mode is the mode the aborted run was started in; Resume restarts in
	// the same mode.
	Mode Mode
	// NumPages is the VM's size; a token for a different geometry is
	// rejected outright.
	NumPages uint64
	// Epoch is the hypervisor dirty epoch armed at the abort instant: pages
	// the guest wrote after it are stale at the destination.
	Epoch uint64
	// Generation is the destination image generation the digest table
	// describes. A destination discarded (or crashed and rebuilt) since
	// carries a different generation and the table is worthless.
	Generation uint64
	// Received is the set of PFNs the destination held at abort; Digests
	// their per-PFN content digests. Nil when the aborted run's sink carried
	// no digests.
	Received *mem.Bitmap
	Digests  []uint64
	// Dest is the host identity of the destination the token describes
	// (empty for single-VM runs, whose destination has no name). A token
	// presented to a different destination is worthless — the pages it
	// vouches for live on another machine — and degrades to a full first
	// copy. This is what makes relocation after a host crash safe.
	Dest string
	// AbortedAt is the virtual time of the abort; Reason its cause.
	AbortedAt time.Duration
	Reason    string
}

// mintResumeToken snapshots the resume credential at abort time. It runs
// AFTER the discard decision: a discarded destination yields a token with an
// empty table and a bumped generation, which a later Resume correctly treats
// as worthless (full first copy). The hypervisor's dirty epoch is armed here
// — the instant the source resumes ownership — so the token's epoch covers
// exactly the writes the destination missed.
func (s *Source) mintResumeToken(reason string) *ResumeToken {
	tok := &ResumeToken{
		RunID:     fmt.Sprintf("%s@%d-%d", s.Cfg.Mode, s.startedAt.Nanoseconds(), s.Clock.Now().Nanoseconds()),
		Mode:      s.Cfg.Mode,
		NumPages:  s.Dom.NumPages(),
		Epoch:     s.Dom.BeginDirtyEpoch(),
		AbortedAt: s.Clock.Now(),
		Reason:    reason,
	}
	if ig := s.integ; ig != nil {
		tok.Generation = ig.dsink.Generation()
		tok.Received = ig.dsink.ReceivedPages().Clone()
		tok.Digests = ig.dsink.DigestSnapshot()
	}
	if s.Dest != nil {
		tok.Dest = s.Dest.HostName()
	}
	return tok
}

// Resume re-opens an aborted migration from its token: same mode, same
// destination, but a first iteration seeded with only the pages the token
// cannot prove intact. The guest-side handshake (app-assisted mode) is
// re-opened from scratch — the LKM reset itself when the abort was
// announced. The caller decides what to do about the fault plane; a resume
// that re-arms the same injector will replay the same faults.
func (s *Source) Resume(token *ResumeToken) (*Report, error) {
	if token == nil {
		return nil, fmt.Errorf("migration: resume requires a token")
	}
	if s.Dom != nil && token.NumPages != s.Dom.NumPages() {
		return nil, fmt.Errorf("migration: token describes a %d-page VM, source has %d",
			token.NumPages, s.Dom.NumPages())
	}
	s.Cfg.Mode = token.Mode
	s.pendingResume = token
	defer func() { s.pendingResume = nil }()
	return s.Migrate()
}

// resumeTrust decides how much of the token to believe. It returns the set
// of trusted pages (destination content proven identical to the source's
// current content) or nil when the token is worthless and the run must
// degrade to a full first copy; reason explains the decision either way.
func (s *Source) resumeTrust(token *ResumeToken) (trusted *mem.Bitmap, reason string) {
	ig := s.integ
	switch {
	case ig == nil:
		return nil, "sink carries no digests"
	case token.Received == nil:
		return nil, "token carries no digest table"
	case s.Dest != nil && token.Dest != s.Dest.HostName():
		// Destination binding: the token describes pages held by another
		// host. After a relocation the new destination holds nothing of the
		// old image, whatever the generation counters happen to say.
		return nil, "token bound to a different destination"
	case token.Generation != ig.dsink.Generation():
		// The destination was discarded or rebuilt since the token was
		// minted (a crashed destination is always discarded): whatever the
		// table says describes a previous image.
		return nil, "destination image generation changed"
	case token.Received.Len() != s.Dom.NumPages():
		return nil, "token bitmap geometry mismatch"
	}
	dirty, ok := s.Dom.DirtySince(token.Epoch)
	if !ok {
		return nil, "dirty epoch lost"
	}
	n := s.Dom.NumPages()
	trusted = mem.NewBitmap(n)
	store := s.Dom.Store()
	token.Received.Range(func(p mem.PFN) bool {
		if dirty.Test(p) {
			return true // written since the abort: destination copy is stale
		}
		got, ok := ig.dsink.PageDigestAt(p)
		if !ok || got != token.Digests[p] {
			return true // destination no longer holds what the token claims
		}
		if got != mem.PageDigest(store.Export(p)) {
			return true // digest mismatch vs the source's current content
		}
		trusted.Set(p)
		return true
	})
	if trusted.Count() == 0 {
		// A token minted against a discarded (or never-filled) image — e.g.
		// after a destination crash — vouches for nothing: make the full
		// first copy explicit rather than reporting zero trusted pages.
		return nil, "token vouches for no pages"
	}
	return trusted, "token honoured"
}

// planResume seeds a resumed pre-copy run: shrink the first iteration's
// to-send set to the untrusted pages, register them for resume-refetch
// ledger tagging, and seed the integrity expectation table with the trusted
// digests so the switchover audit covers the whole image, reused pages
// included.
func (s *Source) planResume(token *ResumeToken, toSend *mem.Bitmap) {
	st := &ResumeStats{TokenEpoch: token.Epoch}
	s.report.Resume = st
	trusted, reason := s.resumeTrust(token)
	st.Reason = reason
	n := s.Dom.NumPages()
	rawWire := s.Dom.Store().WireSize()
	if trusted == nil {
		st.FullFirstCopy = true
		st.RefetchPages = n
		s.emitResumePlan(st)
		return
	}
	st.TrustedPages = trusted.Count()
	st.SavedBytes = st.TrustedPages * rawWire
	toSend.SetAll()
	toSend.AndNot(trusted)
	st.RefetchPages = toSend.Count()
	s.resumeRefetch = toSend.Clone()
	if ig := s.integ; ig != nil {
		trusted.Range(func(p mem.PFN) bool {
			ig.expect[p] = token.Digests[p]
			ig.sent.Set(p)
			return true
		})
	}
	s.emitResumePlan(st)
}

// planResumeLazy seeds a resumed lazy (post-copy / hybrid) run: trusted
// pages start out resident, so the demand-fetch phase only moves the rest
// (tagged resume-refetch in the ledger).
func (s *Source) planResumeLazy(token *ResumeToken, resident *mem.Bitmap) {
	st := &ResumeStats{TokenEpoch: token.Epoch}
	s.report.Resume = st
	trusted, reason := s.resumeTrust(token)
	st.Reason = reason
	n := s.Dom.NumPages()
	rawWire := s.Dom.Store().WireSize()
	if trusted == nil {
		st.FullFirstCopy = true
		st.RefetchPages = n
		s.emitResumePlan(st)
		return
	}
	st.TrustedPages = trusted.Count()
	st.SavedBytes = st.TrustedPages * rawWire
	resident.Or(trusted)
	refetch := mem.NewBitmap(n)
	refetch.SetAll()
	refetch.AndNot(trusted)
	st.RefetchPages = refetch.Count()
	s.resumeRefetch = refetch
	if ig := s.integ; ig != nil {
		trusted.Range(func(p mem.PFN) bool {
			ig.expect[p] = token.Digests[p]
			ig.sent.Set(p)
			return true
		})
	}
	s.emitResumePlan(st)
}

// emitResumePlan traces and counts the trust decision.
func (s *Source) emitResumePlan(st *ResumeStats) {
	s.Cfg.Tracer.Emit(obs.TrackMigration, obs.KindResumePlan, "resume-plan", nil,
		obs.Str("reason", st.Reason),
		obs.Uint64("trusted_pages", st.TrustedPages),
		obs.Uint64("refetch_pages", st.RefetchPages),
		obs.Bool("full_first_copy", st.FullFirstCopy))
	if m := s.Cfg.Metrics; m != nil {
		m.Counter("migration.resumes").Inc()
		m.Counter("migration.resume_trusted_pages").Add(int64(st.TrustedPages))
		m.Counter("migration.resume_refetch_pages").Add(int64(st.RefetchPages))
		m.Counter("migration.resume_saved_bytes").Add(int64(st.SavedBytes))
	}
}

// sendClassFor maps one page push onto its ledger class, honouring the
// resume-refetch registry: the first send of a page the resume plan queued
// is tagged ClassResume, later sends of the same page fall back to the
// engine's default class (a re-dirtied page is re-dirtied, resumed or not).
func (s *Source) sendClassFor(p mem.PFN, def ledger.SendClass) ledger.SendClass {
	if s.resumeRefetch != nil && s.resumeRefetch.Test(p) {
		s.resumeRefetch.Clear(p)
		return ledger.ClassResume
	}
	return def
}
