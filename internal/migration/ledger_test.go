package migration

import (
	"testing"
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs/ledger"
)

// The provenance ledger is only useful if it is exact: its totals must match
// the Report byte-for-byte in every mode, or the attribution tooling built on
// it is lying. This is the reconciliation half of the PR's acceptance
// criteria at the engine level (javmm_obs_test.go re-checks it end to end).
func TestLedgerReconcilesWithReportAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeAppAssisted, ModePostCopy, ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(4096, 20*1000*1000)
			hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
			sc := newScribbler(r.guest, r.clock, hot, 20000)
			if mode == ModeAppAssisted {
				sc.skip = []mem.VARange{hot}
				sc.readyDelay = 10 * time.Millisecond
				sc.register(r.guest)
			}
			led := ledger.New()
			rep, err := r.source(Config{Mode: mode, Ledger: led}, sc).Migrate()
			if err != nil {
				t.Fatal(err)
			}
			sum := led.Summary()
			if sum.TotalBytes != rep.TotalBytes() {
				t.Fatalf("ledger bytes %d != report bytes %d", sum.TotalBytes, rep.TotalBytes())
			}
			if sum.TotalSends != rep.TotalPagesSent {
				t.Fatalf("ledger sends %d != report pages sent %d", sum.TotalSends, rep.TotalPagesSent)
			}
			if sum.NumPages != 4096 {
				t.Fatalf("ledger sized for %d pages", sum.NumPages)
			}
			// Mode-specific provenance shape.
			switch mode {
			case ModeVanilla:
				if sum.SendBytes(ledger.ReasonFinalIter) == 0 {
					t.Fatal("vanilla run recorded no final-iteration traffic")
				}
				if sum.SkipsByReason[ledger.SkipBitmap].Count != 0 {
					t.Fatal("vanilla run recorded bitmap skips")
				}
			case ModeAppAssisted:
				if sum.SkipsByReason[ledger.SkipBitmap].Count == 0 {
					t.Fatal("app-assisted run saved nothing via the transfer bitmap")
				}
				if sum.SavedBytes == 0 {
					t.Fatal("app-assisted run reports zero saved bytes")
				}
			case ModePostCopy:
				if sum.SendBytes(ledger.ReasonFinalIter) != 0 {
					t.Fatal("pure post-copy has no final iteration")
				}
				got := sum.SendsByReason[ledger.ReasonFirstCopy].Count +
					sum.SendsByReason[ledger.ReasonDemandFault].Count
				if got != sum.TotalSends {
					t.Fatalf("post-copy sends beyond first-copy/demand-fault: %d of %d", got, sum.TotalSends)
				}
			case ModeHybrid:
				if sum.SendsByReason[ledger.ReasonFirstCopy].Count == 0 {
					t.Fatal("hybrid warm phase recorded no first copies")
				}
			}
		})
	}
}

// Aborted runs must leave the ledger describing exactly what was sent before
// the cancel — not a stale previous run, and nothing beyond the Report.
func TestLedgerTracksAbortedRun(t *testing.T) {
	r := newRig(2048, 100*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 50000)
	led := ledger.New()
	rep, err := r.source(Config{
		Mode:        ModeVanilla,
		Ledger:      led,
		CancelAfter: 2 * time.Second,
	}, sc).Migrate()
	if err != ErrCancelled {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	sum := led.Summary()
	if sum.TotalBytes != rep.TotalBytes() {
		t.Fatalf("aborted ledger bytes %d != report bytes %d", sum.TotalBytes, rep.TotalBytes())
	}
	if sum.TotalSends != rep.TotalPagesSent {
		t.Fatalf("aborted ledger sends %d != report sends %d", sum.TotalSends, rep.TotalPagesSent)
	}
	if sum.SendBytes(ledger.ReasonFinalIter) != 0 {
		t.Fatal("aborted run recorded a final iteration")
	}
}
