package migration

import (
	"time"

	"javmm/internal/mem"
	"javmm/internal/obs/perf"
)

// Real-clock stage decorators. When Config.Perf is set, bindStages wraps
// every bound stage in one of these so each call is bracketed by
// perf.Profiler Enter/Exit — attributing the simulator's own wall time and
// allocations to the stage taxonomy. With Perf nil nothing is wrapped and
// the engine runs exactly as before; the profiler's deterministic
// transparency (identical reports with and without it) is asserted by
// TestPerfProfilerTransparent and by the bench harness on every run.

type profiledSkip struct {
	next SkipPolicy
	p    *perf.Profiler
}

func (w profiledSkip) Skip(pfn mem.PFN) SkipReason {
	w.p.Enter(perf.StageSkipPolicy)
	r := w.next.Skip(pfn)
	w.p.Exit()
	return r
}

func (w profiledSkip) FinalTransfer(n uint64) *mem.Bitmap {
	w.p.Enter(perf.StageSkipPolicy)
	bm := w.next.FinalTransfer(n)
	w.p.Exit()
	return bm
}

// profileSkip wraps a skip policy when a profiler is present.
func profileSkip(next SkipPolicy, p *perf.Profiler) SkipPolicy {
	if p == nil {
		return next
	}
	return profiledSkip{next: next, p: p}
}

type profiledCodec struct {
	next WireCodec
	p    *perf.Profiler
}

func (w profiledCodec) Encode(pfn mem.PFN, raw uint64) (uint64, time.Duration) {
	w.p.Enter(perf.StageWireCodec)
	wire, cpu := w.next.Encode(pfn, raw)
	w.p.Exit()
	return wire, cpu
}

type profiledStop struct {
	next StopPolicy
	p    *perf.Profiler
}

func (w profiledStop) Stop(iter int, st IterationStats, sentBytes, memoryBytes uint64) bool {
	w.p.Enter(perf.StageStopPolicy)
	stop := w.next.Stop(iter, st, sentBytes, memoryBytes)
	w.p.Exit()
	return stop
}

type profiledProto struct {
	next SuspensionProtocol
	p    *perf.Profiler
}

func (w profiledProto) Begin() *mem.Bitmap {
	w.p.Enter(perf.StageSuspension)
	bm := w.next.Begin()
	w.p.Exit()
	return bm
}

func (w profiledProto) EnterLastIter() {
	w.p.Enter(perf.StageSuspension)
	w.next.EnterLastIter()
	w.p.Exit()
}

func (w profiledProto) Ready() bool {
	w.p.Enter(perf.StageSuspension)
	r := w.next.Ready()
	w.p.Exit()
	return r
}

func (w profiledProto) Outcome() (time.Duration, int) {
	w.p.Enter(perf.StageSuspension)
	d, f := w.next.Outcome()
	w.p.Exit()
	return d, f
}

func (w profiledProto) Resumed() {
	w.p.Enter(perf.StageSuspension)
	w.next.Resumed()
	w.p.Exit()
}

func (w profiledProto) Aborted() {
	w.p.Enter(perf.StageSuspension)
	w.next.Aborted()
	w.p.Exit()
}

// profileProto wraps a suspension protocol when a profiler is present.
func profileProto(next SuspensionProtocol, p *perf.Profiler) SuspensionProtocol {
	if p == nil || next == nil {
		return next
	}
	return profiledProto{next: next, p: p}
}

type profiledSink struct {
	next PageSink
	p    *perf.Profiler
}

func (w profiledSink) ReceivePage(pfn mem.PFN, payload []byte) error {
	w.p.Enter(perf.StagePageSink)
	err := w.next.ReceivePage(pfn, payload)
	w.p.Exit()
	return err
}

// profiledDigestSink preserves the DigestSink extension through the profiled
// wrapper: beginIntegrity type-asserts the bound sink, and a plain
// profiledSink would silently disable the whole integrity plane. Receives
// are profiled; the digest queries are audit-side reads and pass through
// unprofiled (they are accounted to the digest-audit stage by their
// callers).
type profiledDigestSink struct {
	profiledSink
	ds DigestSink
}

func (w profiledDigestSink) PageDigestAt(pfn mem.PFN) (uint64, bool) { return w.ds.PageDigestAt(pfn) }
func (w profiledDigestSink) ReceivedPages() *mem.Bitmap              { return w.ds.ReceivedPages() }
func (w profiledDigestSink) DigestSnapshot() []uint64                { return w.ds.DigestSnapshot() }
func (w profiledDigestSink) RollingDigest() uint64                   { return w.ds.RollingDigest() }
func (w profiledDigestSink) Generation() uint64                      { return w.ds.Generation() }

// profileSink wraps a page sink when a profiler is present, keeping the
// DigestSink extension visible when the inner sink carries it.
func profileSink(next PageSink, p *perf.Profiler) PageSink {
	if p == nil {
		return next
	}
	inner := profiledSink{next: next, p: p}
	if ds, ok := next.(DigestSink); ok {
		return profiledDigestSink{profiledSink: inner, ds: ds}
	}
	return inner
}
