package migration

import (
	"reflect"
	"testing"

	"javmm/internal/mem"
	"javmm/internal/obs/perf"
)

// stageSet collects the stage names a profiler recorded.
func stageSet(p *perf.Profiler) map[string]bool {
	out := make(map[string]bool)
	for _, s := range p.Snapshot() {
		out[s.Stage] = true
	}
	return out
}

func TestPerfRecordsPreCopyStages(t *testing.T) {
	r := newRig(4096, 100*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 128*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 500)
	sc.skip = []mem.VARange{hot}
	sc.register(r.guest)
	prof := perf.NewProfiler(perf.WithAllocs())
	rep, err := r.source(Config{Mode: ModeAppAssisted, Perf: prof}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	got := stageSet(prof)
	for _, want := range []string{
		"skip-policy", "wire-codec", "stop-policy", "suspension-protocol",
		"page-sink", "digest-audit",
	} {
		if !got[want] {
			t.Errorf("stage %q not recorded; got %v", want, got)
		}
	}
	// The profiled sink must keep the DigestSink extension visible, or the
	// integrity plane silently disappears.
	if rep.Integrity == nil {
		t.Fatal("integrity audit did not run under the profiled sink")
	}
	if rep.Integrity.PagesAudited == 0 {
		t.Fatal("integrity audit examined no pages")
	}
	// Per-page stages were called at least once per page sent/considered.
	for _, s := range prof.Snapshot() {
		if s.Calls == 0 || s.SelfNs < 0 || s.TotalNs < s.SelfNs {
			t.Errorf("implausible stage account: %+v", s)
		}
	}
}

func TestPerfRecordsLazyFetchStage(t *testing.T) {
	r := newRig(2048, 100*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 64*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 2000)
	prof := perf.NewProfiler()
	rep, err := r.source(Config{Mode: ModePostCopy, Perf: prof}, sc).Migrate()
	if err != nil {
		t.Fatal(err)
	}
	got := stageSet(prof)
	if !got["lazy-fetch"] {
		t.Errorf("lazy-fetch not recorded; got %v", got)
	}
	if !got["page-sink"] {
		t.Errorf("page-sink not recorded in lazy mode; got %v", got)
	}
	if rep.PostCopy == nil || rep.PostCopy.PrefetchPages == 0 {
		t.Fatal("post-copy run moved no pages")
	}
}

// TestPerfProfilerTransparent is the plane's core contract: attaching the
// profiler must not change the deterministic outcome in any way. Identical
// rigs with and without Perf must produce deeply equal reports.
func TestPerfProfilerTransparent(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeAppAssisted, ModePostCopy, ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(prof *perf.Profiler) *Report {
				r := newRig(2048, 100*1000*1000)
				hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 64*mem.PageSize}
				sc := newScribbler(r.guest, r.clock, hot, 1000)
				if mode == ModeAppAssisted {
					sc.skip = []mem.VARange{hot}
					sc.register(r.guest)
				}
				rep, err := r.source(Config{Mode: mode, Perf: prof}, sc).Migrate()
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			plain := run(nil)
			profiled := run(perf.NewProfiler(perf.WithAllocs(), perf.WithPprofLabels()))
			if !reflect.DeepEqual(plain, profiled) {
				t.Errorf("profiler changed the report:\nplain:    %+v\nprofiled: %+v", plain, profiled)
			}
		})
	}
}

func TestNewWireCodecMatchesBindStages(t *testing.T) {
	// The exported constructor must build the same chain bindStages uses:
	// encode a resent page through a full delta+hint+compress chain both
	// ways and compare wire sizes.
	cfg := Config{Compress: true, DeltaCompression: true}
	cfg.FillDefaults()
	var resends uint64
	codec, cache := cfg.NewWireCodec(128, nil, &resends)
	if cache != 128*mem.PageSize {
		t.Fatalf("delta cache = %d, want %d", cache, 128*mem.PageSize)
	}
	w1, _ := codec.Encode(7, mem.PageSize)
	w2, _ := codec.Encode(7, mem.PageSize)
	if w1 != scaleWire(mem.PageSize, cfg.CompressionRatio) {
		t.Errorf("first send wire = %d, want compressed size", w1)
	}
	if w2 != scaleWire(mem.PageSize, cfg.DeltaRatio) {
		t.Errorf("resend wire = %d, want delta size", w2)
	}
	if resends != 1 {
		t.Errorf("resends = %d, want 1", resends)
	}

	// Raw chain: no delta cache, identity encode.
	raw := Config{}
	raw.FillDefaults()
	rc, cache := raw.NewWireCodec(128, nil, nil)
	if cache != 0 {
		t.Errorf("raw chain reported delta cache %d", cache)
	}
	if w, cpu := rc.Encode(0, mem.PageSize); w != mem.PageSize || cpu != 0 {
		t.Errorf("raw encode = (%d, %v), want identity", w, cpu)
	}
}
