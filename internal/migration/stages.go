package migration

import (
	"time"

	"javmm/internal/guestos"
	"javmm/internal/mem"
	"javmm/internal/obs/ledger"
)

// The engine is a thin orchestrator over five pluggable stages. Each stage
// captures one axis of the paper's design space, and every migration mode is
// a composition of stage implementations rather than its own monolith:
//
//	SkipPolicy         which pages need not move (transfer bitmap, free list)
//	WireCodec          what a page costs on the wire (delta, hints, compress)
//	StopPolicy         when pre-copy gives up and stops the VM
//	SuspensionProtocol how the guest is told to prepare for suspension
//	PageSink           where transferred pages land (Destination, Tee, ...)
//
// A Source field left nil selects the default implementation derived from
// its Config (see bindStages); setting it plugs a custom stage into the
// unchanged orchestrator — the paper's "the application can specify"
// genericity, now first-class in the engine.

// SkipReason classifies why a dirty page is not transferred this round.
type SkipReason int

const (
	// SkipNone: the page must be sent.
	SkipNone SkipReason = iota
	// SkipBitmap: the page's transfer bit is cleared (application consent,
	// paper §3.3.3) — counted as PagesSkippedBitmap.
	SkipBitmap
	// SkipFree: the page is on the guest kernel's free list (Koto-style
	// OS assistance) — counted as PagesSkippedFree.
	SkipFree
)

// ledgerReason maps a stage skip decision onto the provenance ledger's
// taxonomy. Only policy skips appear here; the engine's own mid-round dirty
// deferral is tagged ledger.SkipDirty directly.
func (r SkipReason) ledgerReason() ledger.SkipReason {
	if r == SkipFree {
		return ledger.SkipFree
	}
	return ledger.SkipBitmap
}

// SkipPolicy decides, page by page, what the engine may leave behind. It
// also produces the FinalTransfer snapshot recorded at VM pause: the set of
// pages the destination must hold faithfully.
type SkipPolicy interface {
	Skip(p mem.PFN) SkipReason
	// FinalTransfer returns the transfer set to record at pause for a VM
	// of n pages. Implementations backed by a live bitmap must snapshot
	// (clone) it.
	FinalTransfer(n uint64) *mem.Bitmap
}

// transferAll is the application-agnostic policy: every page moves.
type transferAll struct{}

func (transferAll) Skip(mem.PFN) SkipReason { return SkipNone }

func (transferAll) FinalTransfer(n uint64) *mem.Bitmap {
	bm := mem.NewBitmap(n)
	bm.SetAll()
	return bm
}

// bitmapSkip consults a live transfer bitmap (the LKM's, or any
// application's): a cleared bit means skip, even if dirty.
type bitmapSkip struct {
	transfer *mem.Bitmap
}

func (b bitmapSkip) Skip(p mem.PFN) SkipReason {
	if !b.transfer.Test(p) {
		return SkipBitmap
	}
	return SkipNone
}

func (b bitmapSkip) FinalTransfer(uint64) *mem.Bitmap { return b.transfer.Clone() }

// freeSkip layers free-list skipping over another policy. The inner policy
// is consulted first, preserving the engine's historical counter order
// (bitmap before free).
type freeSkip struct {
	next SkipPolicy
	free func(mem.PFN) bool
}

func (f freeSkip) Skip(p mem.PFN) SkipReason {
	if r := f.next.Skip(p); r != SkipNone {
		return r
	}
	if f.free(p) {
		// Free-list pages carry no meaningful content; if the guest
		// reallocates one it is zeroed (written) and caught by a later
		// round.
		return SkipFree
	}
	return SkipNone
}

func (f freeSkip) FinalTransfer(n uint64) *mem.Bitmap { return f.next.FinalTransfer(n) }

// WireCodec models what one page costs to transmit: its wire size and the
// daemon CPU spent encoding it. rawWire is the page's uncompressed wire
// size. Codecs may keep per-run state (the delta cache); a fresh chain is
// built per migration.
type WireCodec interface {
	Encode(p mem.PFN, rawWire uint64) (wire uint64, cpu time.Duration)
}

// rawCodec ships pages uncompressed.
type rawCodec struct{}

func (rawCodec) Encode(_ mem.PFN, raw uint64) (uint64, time.Duration) { return raw, 0 }

// compressCodec applies the §6 uniform compression extension.
type compressCodec struct {
	ratio float64
	cost  time.Duration
}

func (c compressCodec) Encode(_ mem.PFN, raw uint64) (uint64, time.Duration) {
	return scaleWire(raw, c.ratio), c.cost
}

// hintedCodec refines compression with the per-page hints applications
// report through the LKM (§6). HintDefault falls through to the next codec.
type hintedCodec struct {
	hintFor func(mem.PFN) uint8
	next    WireCodec
}

func (c *hintedCodec) Encode(p mem.PFN, raw uint64) (uint64, time.Duration) {
	switch c.hintFor(p) {
	case guestos.HintFast:
		return scaleWire(raw, 0.6), 3 * time.Microsecond
	case guestos.HintStrong:
		return scaleWire(raw, 0.35), 12 * time.Microsecond
	case guestos.HintNone:
		return raw, 0
	}
	return c.next.Encode(p, raw)
}

// deltaCodec is the XBZRLE-style baseline (Svärd et al., §2): the first
// send of a page populates the cache and delegates; every resend ships as a
// delta. resends points into the live Report so aborted runs keep their
// partial count.
type deltaCodec struct {
	sentOnce *mem.Bitmap
	ratio    float64
	cost     time.Duration
	resends  *uint64
	next     WireCodec
}

func (c *deltaCodec) Encode(p mem.PFN, raw uint64) (uint64, time.Duration) {
	if c.sentOnce.Test(p) {
		*c.resends++
		return scaleWire(raw, c.ratio), c.cost
	}
	c.sentOnce.Set(p)
	return c.next.Encode(p, raw)
}

func scaleWire(w uint64, ratio float64) uint64 {
	out := uint64(float64(w) * ratio)
	if out == 0 {
		out = 1
	}
	return out
}

// StopPolicy decides, after each live iteration, whether pre-copy proceeds
// to stop-and-copy. st is the iteration just finished; sentBytes and
// memoryBytes feed the traffic cap.
type StopPolicy interface {
	Stop(iter int, st IterationStats, sentBytes, memoryBytes uint64) bool
}

// xenStop is xc_domain_save's rule set: the iteration cap, the traffic cap,
// then convergence on round volume. (Xen keys on pages sent in the round
// just finished, which is robust against momentary quiescence — a guest
// paused inside a GC looks converged on an instantaneous dirty count but
// not on round volume.)
type xenStop struct {
	maxIterations int
	threshold     uint64
	trafficFactor float64
}

func (x xenStop) Stop(iter int, st IterationStats, sentBytes, memoryBytes uint64) bool {
	if iter >= x.maxIterations {
		return true
	}
	if x.trafficFactor > 0 &&
		float64(sentBytes) >= x.trafficFactor*float64(memoryBytes) {
		return true
	}
	return st.PagesSent <= x.threshold
}

// warmStop bounds a hybrid migration's warm phase: stop after warmIters
// rounds, or earlier if the inner policy already considers it converged.
type warmStop struct {
	warmIters int
	next      StopPolicy
}

func (w warmStop) Stop(iter int, st IterationStats, sentBytes, memoryBytes uint64) bool {
	return iter >= w.warmIters || w.next.Stop(iter, st, sentBytes, memoryBytes)
}

// SuspensionProtocol is the engine's view of the guest-side pre-suspension
// workflow — for the LKM, the five-state machine of the paper's Figure 4.
// The orchestrator calls it at exactly the four points the monolithic engine
// used to special-case on Mode:
//
//	Begin          migration starts; returns the transfer bitmap (nil for
//	               a protocol without one)
//	EnterLastIter  pre-copy converged; guest should prepare for suspension
//	Ready          polled while the engine waits for suspension-readiness
//	Outcome        final-update duration and fallback count, once Ready
//	Resumed        VM resumed at the destination
//	Aborted        migration cancelled; guest returns to normal operation
//
// guestos.(*LKM).Protocol() is the canonical implementation; custom
// frameworks satisfy the interface structurally.
type SuspensionProtocol interface {
	Begin() *mem.Bitmap
	EnterLastIter()
	Ready() bool
	Outcome() (finalUpdate time.Duration, fallbacks int)
	Resumed()
	Aborted()
}

var _ SuspensionProtocol = (*guestos.DaemonProtocol)(nil)

// PageSink receives transferred pages. Destination is the default sink
// (with optional Tee mirroring); replication and tests may substitute their
// own. A non-nil error means the page did NOT land: the engine retries
// transient errors with backoff and aborts on ErrDestinationLost.
type PageSink interface {
	ReceivePage(p mem.PFN, payload []byte) error
}

// DigestSink is the optional integrity extension of PageSink: a sink that
// recomputes a content digest for every received payload and can answer what
// it holds. Destination implements it; when the active sink does, the engine
// runs the switchover digest audit and abortRun can mint a trustworthy
// ResumeToken. A sink without digests silently disables both (the engine
// cannot verify what it cannot ask about).
type DigestSink interface {
	PageSink
	// PageDigestAt returns the digest of the payload last received for p
	// (ok=false when p was never received into the current image).
	PageDigestAt(p mem.PFN) (uint64, bool)
	// ReceivedPages is the set of PFNs received into the current image
	// (read-only for callers).
	ReceivedPages() *mem.Bitmap
	// DigestSnapshot copies the per-PFN digest table.
	DigestSnapshot() []uint64
	// RollingDigest is the run-level summary of the receive sequence.
	RollingDigest() uint64
	// Generation identifies the image: it changes whenever the sink's state
	// is torn down (Destination bumps it on Discard).
	Generation() uint64
}

var _ DigestSink = (*Destination)(nil)

// NewWireCodec builds the default codec chain Cfg describes for a VM of n
// pages: raw, optionally compressed, refined by per-page hints (hintFor may
// be nil, disabling the hint layer), with delta resend caching outermost.
// resends, when non-nil, receives the running delta-resend count (the engine
// points it into the live Report). The second return is the daemon-side
// delta cache cost in bytes (zero without DeltaCompression). Call after
// FillDefaults. Exposed so the bench harness can measure each codec chain in
// isolation with exactly the construction the engine uses.
func (c *Config) NewWireCodec(n uint64, hintFor func(mem.PFN) uint8, resends *uint64) (WireCodec, uint64) {
	var codec WireCodec = rawCodec{}
	if c.Compress {
		codec = compressCodec{ratio: c.CompressionRatio, cost: c.CompressCostPerPage}
	}
	if c.HintedCompression && hintFor != nil {
		codec = &hintedCodec{hintFor: hintFor, next: codec}
	}
	var cacheBytes uint64
	if c.DeltaCompression {
		if resends == nil {
			resends = new(uint64)
		}
		codec = &deltaCodec{
			sentOnce: mem.NewBitmap(n),
			ratio:    c.DeltaRatio,
			cost:     c.DeltaCostPerPage,
			resends:  resends,
			next:     codec,
		}
		cacheBytes = n * mem.PageSize // one cached copy per page
	}
	return codec, cacheBytes
}

// bindStages resolves the active stage set for one run: explicit Source
// overrides win, otherwise defaults are derived from Cfg. transfer is the
// suspension protocol's bitmap (nil when there is none). Must run after
// FillDefaults and report initialization. With Cfg.Perf set, every bound
// stage is additionally wrapped in its real-clock profiling decorator.
func (s *Source) bindStages(transfer *mem.Bitmap) {
	s.sink = s.Sink
	if s.sink == nil {
		s.sink = s.Dest
	}

	s.skip = s.Skip
	if s.skip == nil {
		var sp SkipPolicy = transferAll{}
		if transfer != nil {
			sp = bitmapSkip{transfer: transfer}
		}
		if s.Cfg.SkipFreePages && s.GuestFree != nil {
			sp = freeSkip{next: sp, free: s.GuestFree}
		}
		s.skip = sp
	}

	s.codec = s.Codec
	if s.codec == nil {
		codec, cacheBytes := s.Cfg.NewWireCodec(s.Dom.NumPages(), s.HintFor, &s.report.DeltaResends)
		s.codec = codec
		if cacheBytes > 0 {
			s.report.DeltaCacheBytes = cacheBytes
		}
	}

	s.stop = s.Stop
	if s.stop == nil {
		s.stop = xenStop{
			maxIterations: s.Cfg.MaxIterations,
			threshold:     s.Cfg.DirtyPageThreshold,
			trafficFactor: s.Cfg.MaxTrafficFactor,
		}
	}

	if p := s.Cfg.Perf; p != nil {
		s.skip = profileSkip(s.skip, p)
		s.codec = profiledCodec{next: s.codec, p: p}
		s.stop = profiledStop{next: s.stop, p: p}
		s.sink = profileSink(s.sink, p)
	}
}
