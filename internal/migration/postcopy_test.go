package migration

import (
	"testing"
	"time"

	"javmm/internal/mem"
)

func TestPostCopyIdleGuest(t *testing.T) {
	r := newRig(4096, 50*1000*1000)
	rep, err := r.source(Config{}, nil).MigratePostCopy()
	if err != nil {
		t.Fatal(err)
	}
	pc := rep.PostCopy
	if pc == nil {
		t.Fatal("no post-copy stats")
	}
	if pc.Faults != 0 {
		t.Fatalf("idle guest faulted %d times", pc.Faults)
	}
	if pc.PrefetchPages != 4096 {
		t.Fatalf("prefetched %d pages, want all 4096", pc.PrefetchPages)
	}
	// Every page reached the destination transport record.
	if r.dest.PagesReceived != 4096 {
		t.Fatalf("destination received %d pages", r.dest.PagesReceived)
	}
	// Downtime is only the switchover: CPU state + resumption.
	if rep.VMDowntime > time.Second {
		t.Fatalf("post-copy downtime = %v", rep.VMDowntime)
	}
}

func TestPostCopyDemandFaults(t *testing.T) {
	r := newRig(8192, 20*1000*1000)
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 2048*mem.PageSize}
	sc := newScribbler(r.guest, r.clock, hot, 30000)
	rep, err := r.source(Config{}, sc).MigratePostCopy()
	if err != nil {
		t.Fatal(err)
	}
	pc := rep.PostCopy
	if pc.Faults == 0 {
		t.Fatal("write-heavy guest never faulted")
	}
	if pc.FaultStall <= 0 {
		t.Fatal("faults produced no stall")
	}
	if pc.Faults+pc.PrefetchPages != 8192 {
		t.Fatalf("faults %d + prefetch %d != 8192 pages", pc.Faults, pc.PrefetchPages)
	}
	if pc.ResidentAt <= 0 || pc.ResidentAt > rep.TotalTime {
		t.Fatalf("ResidentAt = %v of %v", pc.ResidentAt, rep.TotalTime)
	}
	// Post-copy moves each page exactly once: traffic ≈ memory size
	// (plus the switchover state).
	limit := float64(8192*mem.PageSize) * 1.05
	if got := rep.TotalBytes(); float64(got) > limit {
		t.Fatalf("post-copy traffic %d well above one memory size", got)
	}
}

func TestPostCopyDowntimeBeatsPreCopyForFastDirtier(t *testing.T) {
	hot := mem.VARange{Start: 0x1000000, End: 0x1000000 + 1024*mem.PageSize}

	pre := newRig(4096, 10*1000*1000)
	scPre := newScribbler(pre.guest, pre.clock, hot, 20000)
	preRep, err := pre.source(Config{Mode: ModeVanilla}, scPre).Migrate()
	if err != nil {
		t.Fatal(err)
	}

	post := newRig(4096, 10*1000*1000)
	scPost := newScribbler(post.guest, post.clock, hot, 20000)
	postRep, err := post.source(Config{}, scPost).MigratePostCopy()
	if err != nil {
		t.Fatal(err)
	}
	if postRep.VMDowntime >= preRep.VMDowntime {
		t.Fatalf("post-copy downtime %v not below pre-copy %v",
			postRep.VMDowntime, preRep.VMDowntime)
	}
	// But the guest pays: stalls while the working set is non-resident.
	if postRep.PostCopy.FaultStall == 0 {
		t.Fatal("no degradation recorded for post-copy")
	}
}

func TestPostCopyValidation(t *testing.T) {
	r := newRig(64, 1000)
	src := r.source(Config{}, nil)
	src.Link = nil
	if _, err := src.MigratePostCopy(); err == nil {
		t.Fatal("missing link accepted")
	}
}
